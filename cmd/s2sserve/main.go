// Command s2sserve is the measurement query service: a long-running
// daemon pair (plus a coordinator) answering HTTP/JSON queries over an
// archived dataset store, replicated primary/backup so a killed server
// costs availability only until the next view change:
//
//	s2sserve view    the view service: tracks replica liveness by pings
//	                 and publishes numbered (primary, backup) views
//	s2sserve serve   one query replica: serves /api/{series,paths,summary,
//	                 pairs,meta} over a store when primary, absorbs
//	                 forwarded state when backup
//	s2sserve loadgen a synthetic client fleet against a running service:
//	                 concurrent querents with seeded zipfian pair
//	                 popularity, reporting throughput and latency
//	                 percentiles
//	s2sserve bench   in-process benchmark: view service + two replicas +
//	                 fleet sweeps (cache on/off), JSON to -o
//	s2sserve chaos   chaos drill: an in-process deployment under a seeded
//	                 network-fault schedule, a scripted partition of the
//	                 primary mid-load, and a safety verdict (no
//	                 acknowledged digest contradicted, bounded recovery)
//
// Every daemon carries the standard ops surface on its listen address —
// /metrics, /healthz, /runz, /flight/tail, /debug/pprof — next to its
// protocol endpoints, and drains gracefully on SIGINT/SIGTERM: in-flight
// requests finish, the flight record is flushed, exit status 0.
//
// Exit codes: 0 success (including signal-initiated shutdown), 1 error,
// 2 bad usage.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/alert"
	"repro/internal/obs/flight"
	"repro/internal/obs/ops"
	"repro/internal/serve"
	"repro/internal/serve/chaos"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "s2sserve: %v\n", err)
		os.Exit(1)
	}
}

func usage() error {
	fmt.Fprintf(os.Stderr, `usage:
  s2sserve view    -addr :7400 [-dead-pings N] [-tick D] [-trace F]
  s2sserve serve   -data DIR -view URL [-addr :7401] [-name URL] [-cache N]
                   [-max-inflight N] [-interval D] [-ping D] [-trace F] [-metrics F]
  s2sserve loadgen -view URL [-fleet N] [-requests N] [-seed N] [-zipf S] [-o F]
  s2sserve bench   -data DIR [-o BENCH_009.json] [-seed N] [-per N] [-fleets CSV]
  s2sserve chaos   -data DIR [-seed N] [-replicas N] [-fleet N] [-max-inflight N]
                   [-horizon D] [-partition-after D] [-partition-for D]
                   [-trace F] [-o F]
`)
	os.Exit(2)
	return nil
}

func run(args []string) error {
	if len(args) < 1 {
		return usage()
	}
	switch args[0] {
	case "view":
		return runView(args[1:])
	case "serve":
		return runServe(args[1:])
	case "loadgen":
		return runLoadgen(args[1:])
	case "bench":
		return runBench(args[1:])
	case "chaos":
		return runChaos(args[1:])
	default:
		return usage()
	}
}

func newFlagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	fs.SetOutput(os.Stderr)
	return fs
}

// newRecorder builds the daemon's flight recorder: to a file with -trace,
// else into the void so /flight/tail and the alert engine still work.
func newRecorder(path, tool string, reg *obs.Registry, iv time.Duration) (*flight.Recorder, error) {
	if path != "" {
		return flight.Create(path, flight.Options{Tool: tool, Registry: reg, MetricsInterval: iv})
	}
	return flight.New(io.Discard, flight.Options{Tool: tool, Registry: reg, MetricsInterval: iv}), nil
}

// heartbeat drives the metric-snapshot clock with wall time: every
// interval it emits a serve_tick event, which advances the recorder's
// snapshot boundary — /flight/tail gets deltas, `s2sobs watch` gets a
// pulse, and the attached alert engine evaluates its rules.
func heartbeat(rec *flight.Recorder, iv time.Duration, shutdown func() bool) {
	start := time.Now()
	for !shutdown() {
		time.Sleep(iv)
		rec.Event(serve.PhServeTick, time.Since(start), flight.Attrs{})
	}
}

func runView(args []string) error {
	fs := newFlagSet("view")
	var (
		addr      = fs.String("addr", ":7400", "listen address")
		deadPings = fs.Int("dead-pings", serve.DefaultDeadPings, "ticks of silence before a replica is dead")
		tick      = fs.Duration("tick", time.Second, "liveness tick (= expected replica ping interval)")
		tracePath = fs.String("trace", "", "write a flight record to this file")
		metricsIV = fs.Duration("metrics-interval", 5*time.Second, "metric snapshot cadence")
		quiet     = fs.Bool("q", false, "suppress progress output")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	log := obs.NewLogger("s2sserve", *quiet)
	reg := obs.NewRegistry()
	rec, err := newRecorder(*tracePath, "s2sserve-view", reg, *metricsIV)
	if err != nil {
		return err
	}
	vs := serve.NewViewService(serve.ViewOptions{
		DeadPings: *deadPings, Registry: reg, Recorder: rec, Logger: log,
	})
	vh := vs.Handler()
	srv, err := ops.Start(*addr, ops.Options{
		Tool: "s2sserve-view", Registry: reg, Recorder: rec, Logger: log,
		Extra: map[string]http.Handler{"/view": vh, "/ping": vh},
	})
	if err != nil {
		return err
	}
	alert.New(alert.Options{Registry: reg, Logger: log, Health: srv.Health()}).Attach(rec)

	shutdown := obs.TrapShutdown()
	go heartbeat(rec, *metricsIV, shutdown)
	t := time.NewTicker(*tick)
	defer t.Stop()
	for !shutdown() {
		<-t.C
		vs.Tick()
	}
	return drain(srv, rec, log, "view service")
}

func runServe(args []string) error {
	fs := newFlagSet("serve")
	var (
		dataPath  = fs.String("data", "", "dataset store directory (required)")
		viewURL   = fs.String("view", "", "view service base URL (required)")
		addr      = fs.String("addr", ":7401", "listen address (ops + query endpoints)")
		name      = fs.String("name", "", "advertised base URL (default derived from -addr)")
		cacheN    = fs.Int("cache", 1024, "hot-pair cache entries (0 disables)")
		maxInF    = fs.Int("max-inflight", 0, "bound on concurrent /api/* queries; excess is shed with 503 (0 = unlimited)")
		interval  = fs.Duration("interval", 3*time.Hour, "dataset measurement cadence (summary slot width)")
		pingIV    = fs.Duration("ping", time.Second, "view service ping interval")
		workers   = fs.Int("workers", runtime.NumCPU(), "store scan workers")
		tracePath = fs.String("trace", "", "write a flight record to this file")
		metricsIV = fs.Duration("metrics-interval", 5*time.Second, "metric snapshot cadence")
		quiet     = fs.Bool("q", false, "suppress progress output")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataPath == "" || *viewURL == "" {
		return fmt.Errorf("serve: -data and -view are required")
	}
	self := *name
	if self == "" {
		var err error
		if self, err = deriveName(*addr); err != nil {
			return err
		}
	}
	log := obs.NewLogger("s2sserve", *quiet)
	reg := obs.NewRegistry()
	rec, err := newRecorder(*tracePath, "s2sserve", reg, *metricsIV)
	if err != nil {
		return err
	}
	be, err := serve.OpenBackend(*dataPath, serve.BackendConfig{Workers: *workers, Interval: *interval})
	if err != nil {
		return err
	}
	be.Store().Instrument(reg)
	be.Store().Trace(rec)
	meta, _ := be.Meta()
	log.Printf("store %s: %d records, %d shards, bgp=%t", *dataPath, meta.Records, meta.Shards, meta.HasBGP)

	r := serve.NewReplica(serve.ReplicaOptions{
		Name: self, ViewURL: *viewURL, Backend: be,
		CacheEntries: *cacheN, MaxInFlight: *maxInF,
		Registry: reg, Recorder: rec, Logger: log,
	})
	srv, err := ops.Start(*addr, ops.Options{
		Tool: "s2sserve", Registry: reg, Recorder: rec, Logger: log,
		Extra: r.Handlers(),
	})
	if err != nil {
		return err
	}
	alert.New(alert.Options{Registry: reg, Logger: log, Health: srv.Health()}).Attach(rec)
	log.Printf("replica %s pinging view service %s every %v", self, *viewURL, *pingIV)
	r.Start(*pingIV)

	shutdown := obs.TrapShutdown()
	heartbeat(rec, *metricsIV, shutdown)
	r.Close()
	return drain(srv, rec, log, fmt.Sprintf("replica %s", self))
}

// drain is the daemons' graceful exit: stop accepting, finish in-flight
// requests, flush the flight record, exit 0.
func drain(srv *ops.Server, rec *flight.Recorder, log *obs.Logger, what string) error {
	log.Printf("shutdown requested: draining %s", what)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		srv.Close()
	}
	rec.WriteManifest(flight.Manifest{Tool: "s2sserve", Flags: flight.FlagsSet()})
	if err := rec.Close(); err != nil {
		return err
	}
	log.Printf("%s stopped cleanly", what)
	return nil
}

// deriveName turns a listen address into the advertised URL. An explicit
// host is kept; a bare ":port" advertises loopback. Ephemeral ports need
// -name.
func deriveName(addr string) (string, error) {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return "", fmt.Errorf("serve: cannot derive -name from -addr %q: %v", addr, err)
	}
	if port == "0" || port == "" {
		return "", fmt.Errorf("serve: -addr %q has an ephemeral port; set -name explicitly", addr)
	}
	if host == "" || host == "::" || host == "0.0.0.0" {
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port), nil
}

// fetchPairs pulls the popularity-ranked pair universe from the service.
func fetchPairs(cl *serve.Client) ([]trace.PairKey, error) {
	resp, err := cl.Get("/api/pairs", nil)
	if err != nil {
		return nil, err
	}
	var pr serve.PairsResponse
	if err := json.Unmarshal(resp.Body, &pr); err != nil {
		return nil, err
	}
	keys := make([]trace.PairKey, len(pr.Pairs))
	for i, p := range pr.Pairs {
		keys[i] = trace.PairKey{SrcID: p.Src, DstID: p.Dst, V6: p.V6}
	}
	return keys, nil
}

func runLoadgen(args []string) error {
	fs := newFlagSet("loadgen")
	var (
		viewURL  = fs.String("view", "", "view service base URL (required)")
		fleet    = fs.Int("fleet", 100, "concurrent clients")
		requests = fs.Int("requests", 1000, "total requests across the fleet")
		seed     = fs.Int64("seed", 1, "request-schedule seed")
		zipfS    = fs.Float64("zipf", serve.DefaultZipfS, "pair-popularity zipf skew (> 1)")
		timeout  = fs.Duration("timeout", 30*time.Second, "per-request timeout including failover retries")
		outPath  = fs.String("o", "", "write the result JSON to this file")
		quiet    = fs.Bool("q", false, "suppress progress output")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *viewURL == "" {
		return fmt.Errorf("loadgen: -view is required")
	}
	log := obs.NewLogger("s2sserve", *quiet)
	cl := &serve.Client{VS: *viewURL, Timeout: *timeout}
	pairs, err := fetchPairs(cl)
	if err != nil {
		return fmt.Errorf("loadgen: listing pairs: %w", err)
	}
	if len(pairs) == 0 {
		return fmt.Errorf("loadgen: service reports no pairs")
	}
	log.Printf("fleet %d x %d requests over %d pairs (seed %d, zipf %.2f)",
		*fleet, *requests, len(pairs), *seed, *zipfS)
	res, err := serve.RunFleet(serve.LoadConfig{
		VS: *viewURL, Fleet: *fleet, Requests: *requests,
		Seed: *seed, ZipfS: *zipfS, Pairs: pairs, Timeout: *timeout,
	})
	if err != nil {
		return err
	}
	printResult(log, res)
	if *outPath != "" {
		if err := writeJSONFile(*outPath, res); err != nil {
			return err
		}
		log.Printf("wrote %s", *outPath)
	}
	return nil
}

func printResult(log *obs.Logger, r *serve.LoadResult) {
	log.Printf("fleet=%d ok=%d errors=%d cache_hits=%d | %.0f req/s | p50=%s p95=%s p99=%s max=%s",
		r.Fleet, r.OK, r.Errors, r.CacheHits, r.RPS,
		us(r.P50us), us(r.P95us), us(r.P99us), us(r.MaxUs))
}

func us(v int64) string { return (time.Duration(v) * time.Microsecond).String() }

// benchRun is one fleet sweep in the BENCH_009 output.
type benchRun struct {
	Name  string `json:"name"`
	Cache bool   `json:"cache"`
	serve.LoadResult
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// benchOut is the BENCH_009.json schema.
type benchOut struct {
	Schema    string     `json:"schema"`
	Workload  string     `json:"workload"`
	GoVersion string     `json:"go_version"`
	GOOS      string     `json:"goos"`
	GOARCH    string     `json:"goarch"`
	CPUs      int        `json:"cpus"`
	Seed      int64      `json:"seed"`
	Pairs     int        `json:"pairs"`
	Records   int64      `json:"records"`
	PerClient int        `json:"requests_per_client"`
	Runs      []benchRun `json:"benchmarks"`
}

func runBench(args []string) error {
	fs := newFlagSet("bench")
	var (
		dataPath = fs.String("data", "", "dataset store directory (required)")
		outPath  = fs.String("o", "BENCH_009.json", "output file")
		seed     = fs.Int64("seed", 1, "request-schedule seed")
		perC     = fs.Int("per", 10, "requests per client")
		fleets   = fs.String("fleets", "100,1000,4000", "fleet sizes to sweep")
		cacheN   = fs.Int("cache", 4096, "cache entries for the cache-on arms")
		interval = fs.Duration("interval", 3*time.Hour, "dataset measurement cadence")
		quiet    = fs.Bool("q", false, "suppress progress output")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataPath == "" {
		return fmt.Errorf("bench: -data is required")
	}
	log := obs.NewLogger("s2sserve", *quiet)
	var sizes []int
	for _, s := range strings.Split(*fleets, ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &n); err != nil || n <= 0 {
			return fmt.Errorf("bench: bad fleet size %q", s)
		}
		sizes = append(sizes, n)
	}
	openBackend := func() (*serve.Backend, error) {
		return serve.OpenBackend(*dataPath, serve.BackendConfig{Interval: *interval})
	}
	// One backend just for the universe + manifest.
	be, err := openBackend()
	if err != nil {
		return err
	}
	keys, _ := be.Store().PairKeys()
	meta, _ := be.Meta()
	if len(keys) == 0 {
		return fmt.Errorf("bench: store has no indexed pairs")
	}
	out := benchOut{
		Schema:    "s2s-serve-bench/1",
		Workload:  "replicated query service, synthetic zipfian fleet (see internal/serve/loadgen.go)",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Seed:      *seed,
		Pairs:     len(keys),
		Records:   meta.Records,
		PerClient: *perC,
	}
	for _, cache := range []bool{true, false} {
		entries := 0
		if cache {
			entries = *cacheN
		}
		d, err := serve.StartDeployment(serve.DeployConfig{
			Replicas: 2, OpenBackend: openBackend, CacheEntries: entries,
		})
		if err != nil {
			return err
		}
		for _, fleet := range sizes {
			res, err := serve.RunFleet(serve.LoadConfig{
				VS: d.VSURL, Fleet: fleet, Requests: fleet * *perC,
				Seed: *seed, Pairs: keys,
			})
			if err != nil {
				d.Close()
				return err
			}
			run := benchRun{
				Name:       fmt.Sprintf("fleet=%d/cache=%t", fleet, cache),
				Cache:      cache,
				LoadResult: *res,
			}
			if res.OK > 0 {
				run.CacheHitRate = float64(res.CacheHits) / float64(res.OK)
			}
			out.Runs = append(out.Runs, run)
			log.Printf("cache=%t %s", cache, resultLine(res))
		}
		d.Close()
	}
	if err := writeJSONFile(*outPath, out); err != nil {
		return err
	}
	log.Printf("wrote %s", *outPath)
	return nil
}

// runChaos is the chaos drill: an in-process deployment under a seeded
// fault schedule, a scripted partition of the primary, and a safety
// verdict — see internal/serve/chaos.RunDrill.
func runChaos(args []string) error {
	fs := newFlagSet("chaos")
	var (
		dataPath    = fs.String("data", "", "dataset store directory (required)")
		seed        = fs.Int64("seed", 1, "fault-schedule and fleet seed")
		replicas    = fs.Int("replicas", 3, "replicas to deploy")
		fleetN      = fs.Int("fleet", 12, "concurrent chaos clients")
		maxInflight = fs.Int("max-inflight", 2, "per-replica admission bound")
		cacheN      = fs.Int("cache", 0, "hot-pair cache entries per replica")
		horizon     = fs.Duration("horizon", 2*time.Second, "generated-noise horizon")
		partAfter   = fs.Duration("partition-after", 600*time.Millisecond, "when to isolate the primary")
		partFor     = fs.Duration("partition-for", 500*time.Millisecond, "how long the partition lasts")
		pingIV      = fs.Duration("ping", 25*time.Millisecond, "view service ping interval")
		deadPings   = fs.Int("dead-pings", 4, "ticks of silence before a replica is dead")
		settle      = fs.Uint64("settle-views", 2, "view changes tolerated after the heal")
		interval    = fs.Duration("interval", 3*time.Hour, "dataset measurement cadence")
		tracePath   = fs.String("trace", "", "write the drill's flight record to this file")
		metricsIV   = fs.Duration("metrics-interval", 250*time.Millisecond, "metric snapshot / alert cadence")
		outPath     = fs.String("o", "", "write the drill report JSON to this file")
		quiet       = fs.Bool("q", false, "suppress progress output")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataPath == "" {
		return fmt.Errorf("chaos: -data is required")
	}
	log := obs.NewLogger("s2sserve", *quiet)
	rep, err := chaos.RunDrill(chaos.DrillConfig{
		OpenBackend: func() (*serve.Backend, error) {
			return serve.OpenBackend(*dataPath, serve.BackendConfig{Interval: *interval})
		},
		Seed:            *seed,
		Replicas:        *replicas,
		Fleet:           *fleetN,
		MaxInFlight:     *maxInflight,
		CacheEntries:    *cacheN,
		PingInterval:    *pingIV,
		DeadPings:       *deadPings,
		Horizon:         *horizon,
		PartitionAfter:  *partAfter,
		PartitionFor:    *partFor,
		SettleViews:     *settle,
		TracePath:       *tracePath,
		MetricsInterval: *metricsIV,
		Logger:          log,
	})
	if err != nil {
		return err
	}
	log.Printf("drill seed %d: %d acked / %d requests, %d shed, %d ping failures, %d retries, %d breaker trips",
		rep.Seed, rep.Acked, rep.Requests, rep.Shed, rep.PingFailures, rep.Retries, rep.BreakerTrips)
	log.Printf("chaos injected: %d drops, %d delays, %d dup deliveries, %d replies lost",
		rep.Drops, rep.Delays, rep.Dups, rep.RepliesLost)
	log.Printf("views: %d at partition, %d at heal, %d final (%d post-heal); healed=%t safety_ok=%t",
		rep.ViewAtPartition, rep.ViewAtHeal, rep.FinalView, rep.PostHealViews, rep.Healed, rep.SafetyOK)
	if *outPath != "" {
		if err := writeJSONFile(*outPath, rep); err != nil {
			return err
		}
		log.Printf("wrote %s", *outPath)
	}
	if !rep.SafetyOK {
		return fmt.Errorf("chaos: drill failed: contradictions=%d requery_errors=%d healed=%t post_heal_views=%d",
			rep.Contradictions, rep.RequeryErrors, rep.Healed, rep.PostHealViews)
	}
	return nil
}

func resultLine(r *serve.LoadResult) string {
	return fmt.Sprintf("fleet=%d ok=%d errors=%d hits=%d %.0f req/s p50=%s p95=%s p99=%s",
		r.Fleet, r.OK, r.Errors, r.CacheHits, r.RPS, us(r.P50us), us(r.P95us), us(r.P99us))
}

func writeJSONFile(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
