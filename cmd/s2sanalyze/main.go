// Command s2sanalyze runs the paper's analyses over a dataset written by
// s2sgen, reconstructing the IP-to-AS view from the .bgp.tsv sidecar. It
// does not need the simulator: any dataset in the record format works.
//
// -data accepts all three dataset formats and detects which it got:
// a binary record file (.bin), a JSON-lines file (.jsonl), or a sharded
// store directory (<stem>.store/, written by s2sgen -store). Stores load
// on a parallel shard scan sized by -workers; -pairs restricts the load
// to chosen src-dst timelines, which on a store is pushed down to the
// shard indexes so non-matching shards are never read. The .bgp.tsv
// sidecar is found next to the dataset under the extension-stripped stem
// for every format.
//
// Analysis output goes to stdout; diagnostics go to stderr (silence them
// with -q). -metrics writes a final telemetry snapshot (including the
// store read counters when the dataset is a store), -trace records a
// flight record of the load and analysis phases with one span per shard
// scan (inspect with s2sobs), -ops serves the live run state over HTTP
// while the analysis runs (see s2sgen's doc for the endpoints), and
// -cpuprofile/-memprofile/-blockprofile/-mutexprofile capture pprof
// profiles of the run. SIGQUIT dumps goroutine stacks without killing it.
//
// -live-equivalent TRACE replays the dataset through the same streaming
// operators a live `s2sgen -analyze` run attaches (internal/analysis) and
// asserts the finding stream matches the findings recorded in TRACE, the
// live run's flight record. A match prints a one-line summary; any
// divergence (missing, extra, or different finding at any position) exits
// nonzero with the first mismatch. This pins the determinism contract:
// live and replay produce the same findings in the same order.
//
// Usage:
//
//	s2sanalyze -data dataset.bin|dataset.jsonl|dataset.store
//	           [-analysis table1|paths|changes|dualstack|congestion]
//	           [-live-equivalent TRACE]
//	           [-pairs SRC-DST[,SRC-DST...]] [-workers N]
//	           [-metrics PATH] [-trace PATH] [-metrics-interval D] [-ops ADDR]
//	           [-cpuprofile PATH] [-memprofile PATH]
//	           [-blockprofile PATH] [-mutexprofile PATH] [-q]
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/core/aspath"
	"repro/internal/core/congest"
	"repro/internal/core/dualstack"
	"repro/internal/core/stats"
	"repro/internal/core/timeline"
	"repro/internal/ipam"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/ops"
	"repro/internal/report"
	"repro/internal/store"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "s2sanalyze: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		data         = flag.String("data", "dataset.bin", "dataset path: .bin, .jsonl, or a store directory")
		analysisKind = flag.String("analysis", "table1", "analysis: summary, table1, paths, changes, dualstack, congestion")
		liveEq       = flag.String("live-equivalent", "", "replay the dataset through the streaming operators and assert the findings match this live flight record")
		pairsSpec    = flag.String("pairs", "", "load only these src-dst timelines, e.g. 3-7,12-0 (store datasets prune shards)")
		interval     = flag.Duration("interval", 3*time.Hour, "measurement interval of the dataset")
		workers      = flag.Int("workers", 0, "store-scan and detector workers (0 = all cores, 1 = sequential)")
		metrics      = flag.String("metrics", "", "write a final metrics snapshot to this path (.json = JSON, else Prometheus text)")
		opsAddr      = flag.String("ops", "", "serve live ops endpoints (/metrics, /healthz, /runz, /flight/tail, /debug/pprof) on this address, e.g. :6060")
		quiet        = flag.Bool("q", false, "suppress progress output on stderr")
		cpuprofile   = flag.String("cpuprofile", "", "write a CPU profile to this path")
		memprofile   = flag.String("memprofile", "", "write a heap profile to this path")
		blockprof    = flag.String("blockprofile", "", "write a goroutine blocking profile to this path")
		mutexprof    = flag.String("mutexprofile", "", "write a mutex contention profile to this path")
		tracePath    = flag.String("trace", "", "write a flight record (JSONL) to this path; inspect with s2sobs")
		metricsIV    = flag.Duration("metrics-interval", 24*time.Hour, "virtual time between metric snapshots in the flight record")
	)
	flag.Parse()
	if err := obs.ValidateRunFlags(*metricsIV, *opsAddr); err != nil {
		fmt.Fprintf(os.Stderr, "s2sanalyze: %v\n", err)
		os.Exit(2)
	}
	log := obs.NewLogger("s2sanalyze", *quiet)

	obs.DumpOnSIGQUIT()
	stopProfiles, err := obs.StartProfiles(obs.Profiles{
		CPU: *cpuprofile, Mem: *memprofile, Block: *blockprof, Mutex: *mutexprof,
	})
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil {
			log.Errorf("profiles: %v", perr)
		}
	}()

	start := time.Now()
	reg := obs.NewRegistry()
	recordsC := reg.Counter(obs.MetricRunRecords, "records the run read")

	var rec *flight.Recorder
	switch {
	case *tracePath != "":
		rec, err = flight.Create(*tracePath, flight.Options{
			Tool:            "s2sanalyze",
			Registry:        reg,
			MetricsInterval: *metricsIV,
		})
		if err != nil {
			return err
		}
	case *opsAddr != "":
		rec = flight.New(io.Discard, flight.Options{
			Tool:            "s2sanalyze",
			Registry:        reg,
			MetricsInterval: *metricsIV,
		})
	}
	table, err := loadBGP(dataStem(*data) + ".bgp.tsv")
	if err != nil {
		return err
	}
	mapper := aspath.NewMapper(table)

	// Live-equivalence replay: the archived store streams through the
	// identical operators a live `s2sgen -analyze` run attaches; the
	// resulting findings are compared against the live flight record.
	var (
		stage *analysis.Stage
		got   []analysis.Finding
	)
	if *liveEq != "" {
		stage = analysis.NewStage(analysis.Config{
			Mapper:   mapper,
			Interval: *interval,
			Sink:     func(f analysis.Finding) { got = append(got, f) },
		}, reg, rec)
	}
	var analysisSrc ops.AnalysisSource
	if stage != nil {
		analysisSrc = stage // avoid a typed-nil interface
	}

	stopOps, err := ops.StartRun(*opsAddr, "s2sanalyze", reg, rec, analysisSrc, log)
	if err != nil {
		return err
	}
	defer stopOps()

	keys, err := parsePairs(*pairsSpec)
	if err != nil {
		return err
	}

	// The loader is a record consumer shared by all three dataset formats.
	// The dataset's record timestamps drive the flight recorder's virtual
	// clock, so metric snapshots land on the same virtual-day boundaries a
	// generating run uses.
	ld := &loader{
		builder:  timeline.NewBuilder(mapper, *interval),
		diffs:    dualstack.NewDiffCollector(mapper),
		stage:    stage,
		recordsC: recordsC,
		rec:      rec,
	}
	stop := obs.Every(2*time.Second, func() {
		log.Progress("%d records read, %.0f records/s",
			recordsC.Value(), float64(recordsC.Value())/time.Since(start).Seconds())
	})
	loadSpan := rec.Begin("load", 0)
	if err := loadDataset(*data, *workers, keys, reg, rec, ld); err != nil {
		stop()
		return err
	}
	loadSpan.End(flight.Attrs{N: recordsC.Value()})
	stop()
	log.EndProgress()
	log.Printf("%d records from %s", recordsC.Value(), *data)
	builder, diffs, pings, lastAt := ld.builder, ld.diffs, ld.pings, ld.lastAt

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	kind := *analysisKind
	if *liveEq != "" {
		kind = "live-equivalent"
	}
	anSpan := rec.Begin("analysis", lastAt)
	switch kind {
	case "live-equivalent":
		stage.Finish()
		want, err := analysis.FindingsFromTrace(*liveEq)
		if err != nil {
			return err
		}
		if err := analysis.DiffStreams(want, got); err != nil {
			return fmt.Errorf("live-equivalence vs %s: %w", *liveEq, err)
		}
		fmt.Fprintf(w, "live-equivalent: %d findings match %s\n", len(got), *liveEq)
	case "summary":
		tls := builder.Timelines()
		v4, v6 := timeline.ByProtocol(tls)
		var span time.Duration
		obsCount := 0
		for _, tl := range tls {
			obsCount += len(tl.Obs)
			if n := len(tl.Obs); n > 0 && tl.Obs[n-1].At > span {
				span = tl.Obs[n-1].At
			}
		}
		report.KeyValues(w, "Dataset summary", map[string]float64{
			"traceroute records":     float64(builder.TallyV4.Total + builder.TallyV6.Total + builder.Incomplete),
			"incomplete traceroutes": float64(builder.Incomplete),
			"ping records":           float64(len(pings)),
			"trace timelines (v4)":   float64(len(v4)),
			"trace timelines (v6)":   float64(len(v6)),
			"usable observations":    float64(obsCount),
			"span (days)":            span.Hours() / 24,
			"paired v4/v6 diffs":     float64(len(diffs.All)),
		})
	case "table1":
		c4, a4, i4 := builder.TallyV4.Fractions()
		c6, a6, i6 := builder.TallyV6.Fractions()
		report.Table(w, "Traceroute completeness", []string{"", "IPv4", "IPv6"}, [][]string{
			{"complete AS-level data", pc(c4), pc(c6)},
			{"missing AS-level data", pc(a4), pc(a6)},
			{"missing IP-level data", pc(i4), pc(i6)},
		})
	case "paths":
		v4, v6 := timeline.ByProtocol(builder.Timelines())
		report.ECDFQuantiles(w, "Unique AS paths per timeline", []report.Series{
			{Name: "IPv4", Values: timeline.PathsPerTimeline(v4, *interval)},
			{Name: "IPv6", Values: timeline.PathsPerTimeline(v6, *interval)},
		}, nil)
		report.ECDFQuantiles(w, "Prevalence of the most popular path", []report.Series{
			{Name: "IPv4", Values: timeline.PopularPrevalence(v4, *interval)},
			{Name: "IPv6", Values: timeline.PopularPrevalence(v6, *interval)},
		}, nil)
	case "changes":
		v4, v6 := timeline.ByProtocol(builder.Timelines())
		report.ECDFQuantiles(w, "Routing changes per timeline", []report.Series{
			{Name: "IPv4", Values: timeline.ChangesPerTimeline(v4)},
			{Name: "IPv6", Values: timeline.ChangesPerTimeline(v6)},
		}, nil)
		life4, delta4 := timeline.LifetimeDeltaSamples(v4, *interval, timeline.ByP10)
		if len(life4) > 0 {
			h, err := stats.DecileHeatmap(life4, delta4, 10)
			if err != nil {
				return err
			}
			report.Heatmap(w, "Lifetime vs Δ10th-pct RTT (IPv4)", h, report.DurationLabel, report.MsLabel)
		}
	case "dualstack":
		report.ECDFQuantiles(w, "RTTv4 − RTTv6 (ms)", []report.Series{
			{Name: "All", Values: diffs.All},
			{Name: "Same AS-paths", Values: diffs.SamePath},
		}, []float64{0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95})
		v6s, v4s := dualstack.TailFractions(diffs.All, 50)
		report.KeyValues(w, "Summary", map[string]float64{
			"similar (±10ms) frac": dualstack.SimilarFraction(diffs.All, 10),
			"v6 saves >=50ms frac": v6s,
			"v4 saves >=50ms frac": v4s,
		})
	case "congestion":
		if len(pings) == 0 {
			fmt.Fprintln(w, "no ping records in dataset (use -campaign pings)")
			break
		}
		// Infer cadence and span from the data.
		span := time.Duration(0)
		for _, p := range pings {
			if p.At > span {
				span = p.At
			}
		}
		iv := 15 * time.Minute
		slots := int(span/iv) + 1
		series := congest.BuildSeries(pings, iv, time.Duration(slots)*iv, slots*80/100)
		det := congest.DefaultDetector().WithMetrics(reg)
		v4, v6 := congest.SummarizeParallel(series, det, *workers)
		report.Table(w, "Consistent congestion", []string{"", "IPv4", "IPv6"}, [][]string{
			{"pairs", itoa(v4.Pairs), itoa(v6.Pairs)},
			{"high variation", pc(v4.HighVariationFrac()), pc(v6.HighVariationFrac())},
			{"congested", pc(v4.CongestedFrac()), pc(v6.CongestedFrac())},
		})
	default:
		return fmt.Errorf("unknown analysis %q", *analysisKind)
	}
	anSpan.End(flight.Attrs{S: kind})

	wall := time.Since(start)
	reg.Gauge(obs.MetricRunWallSeconds, "wall-clock duration of the run").Set(wall.Seconds())
	reg.Gauge(obs.MetricRunRecordsPerSec, "records read per wall-clock second").Set(float64(recordsC.Value()) / wall.Seconds())
	if *metrics != "" {
		if err := obs.WriteFile(*metrics, reg); err != nil {
			return err
		}
		log.Printf("wrote metrics snapshot to %s", *metrics)
	}
	if rec != nil {
		rec.WriteManifest(flight.Manifest{
			Tool:    "s2sanalyze",
			Flags:   flight.FlagsSet(),
			Records: recordsC.Value(),
		})
		if err := rec.Close(); err != nil {
			return err
		}
		if *tracePath != "" {
			log.Printf("wrote flight record to %s", *tracePath)
		}
	}
	return nil
}

// dataStem strips the dataset extension (.bin, .jsonl, or .store) so the
// sidecar files resolve to the same <stem>.bgp.tsv for every format. This
// is also the fix for the old behavior that only stripped ".bin" and broke
// sidecar lookup for -jsonl datasets.
func dataStem(path string) string {
	for _, ext := range []string{".bin", ".jsonl", ".store"} {
		if strings.HasSuffix(path, ext) {
			return strings.TrimSuffix(path, ext)
		}
	}
	return path
}

// parsePairs expands a "SRC-DST[,SRC-DST...]" spec into timeline keys,
// both protocols per directed pair (the dualstack analysis needs v4 and
// v6 together). An empty spec selects everything.
func parsePairs(spec string) ([]trace.PairKey, error) {
	if spec == "" {
		return nil, nil
	}
	var keys []trace.PairKey
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		src, dst, ok := strings.Cut(part, "-")
		if !ok {
			return nil, fmt.Errorf("bad pair %q (want SRC-DST)", part)
		}
		s, err := strconv.Atoi(src)
		if err != nil {
			return nil, fmt.Errorf("bad pair %q: %v", part, err)
		}
		d, err := strconv.Atoi(dst)
		if err != nil {
			return nil, fmt.Errorf("bad pair %q: %v", part, err)
		}
		keys = append(keys,
			trace.PairKey{SrcID: s, DstID: d},
			trace.PairKey{SrcID: s, DstID: d, V6: true})
	}
	return keys, nil
}

// loader feeds records into the analysis collectors; it satisfies both
// the store consumer and the flat-read dispatch.
type loader struct {
	builder  *timeline.Builder
	diffs    *dualstack.DiffCollector
	stage    *analysis.Stage // non-nil only in -live-equivalent replay
	pings    []*trace.Ping
	recordsC *obs.Counter
	rec      *flight.Recorder
	lastAt   time.Duration
}

func (l *loader) OnTraceroute(tr *trace.Traceroute) {
	l.recordsC.Inc()
	l.builder.Add(tr)
	l.diffs.Add(tr)
	l.stage.OnTraceroute(tr)
	l.lastAt = tr.At
	l.rec.Advance(tr.At)
}

func (l *loader) OnPing(p *trace.Ping) {
	l.recordsC.Inc()
	l.pings = append(l.pings, p)
	l.stage.OnPing(p)
	l.lastAt = p.At
	l.rec.Advance(p.At)
}

// loadDataset streams a dataset of any format into the loader. Store
// directories scan shards on a worker pool with pair pushdown; flat files
// (.bin or .jsonl) stream front to back with the pair filter applied
// record by record.
func loadDataset(path string, workers int, keys []trace.PairKey, reg *obs.Registry, rec *flight.Recorder, ld *loader) error {
	if store.IsStore(path) {
		s, err := store.Open(path)
		if err != nil {
			return err
		}
		s.Instrument(reg)
		s.Trace(rec)
		if len(keys) > 0 {
			return s.Pairs(workers, keys, ld)
		}
		return s.Scan(workers, ld)
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var next func() (any, error)
	if strings.HasSuffix(path, ".jsonl") {
		next = trace.NewJSONLReader(f).Next
	} else {
		next = trace.NewBinaryReader(f).Next
	}
	var want map[trace.PairKey]bool
	if len(keys) > 0 {
		want = make(map[trace.PairKey]bool, len(keys))
		for _, k := range keys {
			want[k] = true
		}
	}
	for {
		v, err := next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		switch v := v.(type) {
		case *trace.Traceroute:
			if want == nil || want[v.Key()] {
				ld.OnTraceroute(v)
			}
		case *trace.Ping:
			if want == nil || want[v.Key()] {
				ld.OnPing(v)
			}
		}
	}
}

func loadBGP(path string) (*ipam.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ipam.ReadTSV(f)
}

func pc(f float64) string { return fmt.Sprintf("%.2f%%", f*100) }

func itoa(n int) string { return strconv.Itoa(n) }
