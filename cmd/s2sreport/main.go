// Command s2sreport regenerates every table and figure of the paper at a
// chosen scale, printing each artifact's rendered output and a
// paper-vs-measured summary — the data behind EXPERIMENTS.md.
//
// Rendered artifacts go to stdout; progress and timing go to stderr
// (silence them with -q). -metrics writes a final telemetry snapshot
// covering every experiment the run executed, -trace records a flight
// record with one span per experiment (inspect with s2sobs), -ops serves
// the live run state over HTTP while the report runs (see s2sgen's doc
// for the endpoints), and -cpuprofile/-memprofile/-blockprofile/
// -mutexprofile capture pprof profiles of the run. SIGQUIT dumps
// goroutine stacks without killing it.
//
// Usage:
//
//	s2sreport [-scale test|default|full] [-seed N] [-only ID[,ID...]]
//	          [-days N] [-mesh N] [-svgdir DIR] [-archive DIR] [-list]
//	          [-metrics PATH] [-trace PATH] [-metrics-interval D] [-ops ADDR]
//	          [-cpuprofile PATH] [-memprofile PATH]
//	          [-blockprofile PATH] [-mutexprofile PATH] [-q]
//
// -archive persists the long-term campaign's record stream into a sharded
// store directory (see internal/store) while the experiments consume it,
// so the exact dataset behind a report can be re-analyzed with
// s2sanalyze -data DIR without re-running the simulation.
//
// Exit codes: 0 success, 1 generic error, 3 archive sink write failure.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/ops"
	"repro/internal/store"
)

func main() {
	if err := run(); err != nil {
		var sinkErr *campaign.SinkError
		if errors.As(err, &sinkErr) {
			fmt.Fprintf(os.Stderr, "s2sreport: dataset sink write failed: %v\n", sinkErr.Err)
			os.Exit(3)
		}
		fmt.Fprintf(os.Stderr, "s2sreport: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scaleName  = flag.String("scale", "default", "simulation scale: test, default, or full")
		seed       = flag.Int64("seed", 1, "master random seed")
		only       = flag.String("only", "", "comma-separated experiment ids (default: all)")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		svgDir     = flag.String("svgdir", "", "write rendered figures (SVG) into this directory")
		archive    = flag.String("archive", "", "persist the long-term campaign into a store directory at this path")
		days       = flag.Int("days", 0, "override the long-term campaign length (days)")
		mesh       = flag.Int("mesh", 0, "override the long-term mesh size")
		metrics    = flag.String("metrics", "", "write a final metrics snapshot to this path (.json = JSON, else Prometheus text)")
		opsAddr    = flag.String("ops", "", "serve live ops endpoints (/metrics, /healthz, /runz, /flight/tail, /debug/pprof) on this address, e.g. :6060")
		quiet      = flag.Bool("q", false, "suppress progress output on stderr")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this path")
		memprofile = flag.String("memprofile", "", "write a heap profile to this path")
		blockprof  = flag.String("blockprofile", "", "write a goroutine blocking profile to this path")
		mutexprof  = flag.String("mutexprofile", "", "write a mutex contention profile to this path")
		tracePath  = flag.String("trace", "", "write a flight record (JSONL) to this path; inspect with s2sobs")
		metricsIV  = flag.Duration("metrics-interval", 24*time.Hour, "virtual time between metric snapshots in the flight record")
	)
	flag.Parse()
	if err := obs.ValidateRunFlags(*metricsIV, *opsAddr); err != nil {
		fmt.Fprintf(os.Stderr, "s2sreport: %v\n", err)
		os.Exit(2)
	}
	log := obs.NewLogger("s2sreport", *quiet)

	obs.DumpOnSIGQUIT()
	stopProfiles, err := obs.StartProfiles(obs.Profiles{
		CPU: *cpuprofile, Mem: *memprofile, Block: *blockprof, Mutex: *mutexprof,
	})
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil {
			log.Errorf("profiles: %v", perr)
		}
	}()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return nil
	}

	var sc experiments.Scale
	switch *scaleName {
	case "test":
		sc = experiments.TestScale(*seed)
	case "default":
		sc = experiments.DefaultScale(*seed)
	case "full":
		sc = experiments.FullScale(*seed)
	default:
		return fmt.Errorf("unknown scale %q", *scaleName)
	}
	if *days > 0 {
		sc.LongTermDays = *days
	}
	if *mesh > 0 {
		sc.MeshSize = *mesh
	}
	reg := obs.NewRegistry()
	sc.Metrics = reg

	// The archive store receives the long-term campaign's records alongside
	// the streaming analyses; provenance is stamped once the topology digest
	// is known, and the manifest is written after the experiments ran.
	var (
		archiveW    *store.Writer
		archiveSink *campaign.WriteSink
	)
	if *archive != "" {
		archiveW, err = store.Create(*archive, store.Options{})
		if err != nil {
			return err
		}
		archiveW.Instrument(reg)
		archiveSink = campaign.NewWriteSink(archiveW)
		archiveSink.Instrument(reg)
		sc.Archive = archiveSink
	}

	var rec *flight.Recorder
	switch {
	case *tracePath != "":
		rec, err = flight.Create(*tracePath, flight.Options{
			Tool:            "s2sreport",
			Registry:        reg,
			MetricsInterval: *metricsIV,
		})
		if err != nil {
			return err
		}
	case *opsAddr != "":
		rec = flight.New(io.Discard, flight.Options{
			Tool:            "s2sreport",
			Registry:        reg,
			MetricsInterval: *metricsIV,
		})
	}
	if rec != nil {
		sc.Trace = rec
		if archiveSink != nil {
			archiveSink.Trace(rec)
		}
	}
	stopOps, err := ops.StartRun(*opsAddr, "s2sreport", reg, rec, nil, log)
	if err != nil {
		return err
	}
	defer stopOps()

	var selected []experiments.Experiment
	if *only == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.ByID(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			selected = append(selected, e)
		}
	}

	start := time.Now()
	log.Printf("scale=%s seed=%d experiments=%d", *scaleName, *seed, len(selected))
	env, err := experiments.NewEnv(sc)
	if err != nil {
		return err
	}
	if archiveW != nil {
		archiveW.SetProvenance("s2sreport", *seed, env.Topo.Digest())
	}
	for _, e := range selected {
		t0 := time.Now()
		sp := rec.Begin("experiment", 0)
		res, err := e.Run(env)
		sp.End(flight.Attrs{S: e.ID})
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Println(strings.Repeat("=", 72))
		fmt.Println(res.Text)
		fmt.Println(res.Summary())
		if *svgDir != "" && len(res.SVGs) > 0 {
			if err := os.MkdirAll(*svgDir, 0o755); err != nil {
				return err
			}
			for stem, svg := range res.SVGs {
				path := filepath.Join(*svgDir, stem+".svg")
				if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
					return err
				}
				log.Printf("wrote %s", path)
			}
		}
		log.Printf("%s done in %v", e.ID, time.Since(t0).Round(time.Millisecond))
	}

	if archiveW != nil {
		if err := archiveSink.Err(); err != nil {
			return &campaign.SinkError{Err: err}
		}
		if err := archiveW.Close(); err != nil {
			return err
		}
		if archiveSink.Count() == 0 {
			log.Printf("archive %s is empty (no selected experiment ran the long-term campaign)", *archive)
		} else {
			log.Printf("archived %d long-term records to %s", archiveSink.Count(), *archive)
		}
	}

	wall := time.Since(start)
	reg.Gauge(obs.MetricRunWallSeconds, "wall-clock duration of the run").Set(wall.Seconds())
	if *metrics != "" {
		if err := obs.WriteFile(*metrics, reg); err != nil {
			return err
		}
		log.Printf("wrote metrics snapshot to %s", *metrics)
	}
	if rec != nil {
		rec.WriteManifest(flight.Manifest{
			Tool:       "s2sreport",
			Seed:       *seed,
			Flags:      flight.FlagsSet(),
			TopoDigest: env.Topo.Digest(),
		})
		if err := rec.Close(); err != nil {
			return err
		}
		if *tracePath != "" {
			log.Printf("wrote flight record to %s", *tracePath)
		}
	}
	log.Printf("done in %v", wall.Round(time.Millisecond))
	return nil
}
