// Command s2sreport regenerates every table and figure of the paper at a
// chosen scale, printing each artifact's rendered output and a
// paper-vs-measured summary — the data behind EXPERIMENTS.md.
//
// Usage:
//
//	s2sreport [-scale test|default|full] [-seed N] [-only ID[,ID...]]
//	          [-days N] [-mesh N] [-svgdir DIR] [-list]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		scaleName = flag.String("scale", "default", "simulation scale: test, default, or full")
		seed      = flag.Int64("seed", 1, "master random seed")
		only      = flag.String("only", "", "comma-separated experiment ids (default: all)")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		svgDir    = flag.String("svgdir", "", "write rendered figures (SVG) into this directory")
		days      = flag.Int("days", 0, "override the long-term campaign length (days)")
		mesh      = flag.Int("mesh", 0, "override the long-term mesh size")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	var sc experiments.Scale
	switch *scaleName {
	case "test":
		sc = experiments.TestScale(*seed)
	case "default":
		sc = experiments.DefaultScale(*seed)
	case "full":
		sc = experiments.FullScale(*seed)
	default:
		fmt.Fprintf(os.Stderr, "s2sreport: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	if *days > 0 {
		sc.LongTermDays = *days
	}
	if *mesh > 0 {
		sc.MeshSize = *mesh
	}

	var selected []experiments.Experiment
	if *only == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "s2sreport: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	start := time.Now()
	fmt.Printf("s2sreport: scale=%s seed=%d experiments=%d\n\n", *scaleName, *seed, len(selected))
	env, err := experiments.NewEnv(sc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "s2sreport: %v\n", err)
		os.Exit(1)
	}
	for _, e := range selected {
		t0 := time.Now()
		res, err := e.Run(env)
		if err != nil {
			fmt.Fprintf(os.Stderr, "s2sreport: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println(strings.Repeat("=", 72))
		fmt.Println(res.Text)
		fmt.Println(res.Summary())
		if *svgDir != "" && len(res.SVGs) > 0 {
			if err := os.MkdirAll(*svgDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "s2sreport: %v\n", err)
				os.Exit(1)
			}
			for stem, svg := range res.SVGs {
				path := filepath.Join(*svgDir, stem+".svg")
				if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "s2sreport: %v\n", err)
					os.Exit(1)
				}
				fmt.Printf("  wrote %s\n", path)
			}
		}
		fmt.Printf("  (%s in %v)\n\n", e.ID, time.Since(t0).Round(time.Millisecond))
	}
	fmt.Printf("s2sreport: done in %v\n", time.Since(start).Round(time.Millisecond))
}
