// Command s2sgen builds a simulated platform, runs a measurement campaign,
// and writes the dataset plus the sidecar files an external analyzer needs:
//
//	<out>.bin      compact binary records (or <out>.jsonl with -jsonl)
//	<out>.bgp.tsv  the BGP IP-to-AS view  (prefix <TAB> asn)
//	<out>.rel.tsv  AS relationships       (a <TAB> b <TAB> c2p|p2p)
//	<out>.loc.tsv  cluster locations      (id <TAB> lat <TAB> lon <TAB> country)
//
// With -store the dataset is written as a sharded store directory
// (<out>.store/) instead of a flat record file: records are routed into
// per-(day, pair-shard) files with footer indexes and a manifest, which
// s2sanalyze scans in parallel and prunes per-pair (see internal/store).
// -compress gzips the shard payloads; -store-shards sets the pair-hash
// column count. Sidecars keep the <out>.*.tsv names either way.
//
// All diagnostics go to stderr (silence them with -q); stdout carries
// nothing, so the command composes in pipelines. -metrics writes a final
// telemetry snapshot (Prometheus text, or JSON for .json paths), -trace
// records a flight record (inspect with s2sobs), and -cpuprofile/
// -memprofile/-blockprofile/-mutexprofile capture pprof profiles of the
// run. -ops serves live run state over HTTP while the campaign runs:
// /metrics (Prometheus), /healthz (degraded while alert rules fire),
// /runz (JSON run state), /analysisz (streaming-analysis state),
// /flight/tail (streaming flight record; attach `s2sobs watch
// http://ADDR`), and /debug/pprof. SIGQUIT dumps all goroutine stacks to
// stderr without killing the run.
//
// -analyze attaches the streaming-analysis operators (internal/analysis)
// to the record stream: incremental routing-change, congestion, and
// dual-stack delta detection over the live campaign. Findings and
// windowed partial results land in the flight record (watch them with
// `s2sobs watch` or /flight/tail), live state is served on /analysisz,
// and the operators observe only — the dataset is byte-identical with
// -analyze on or off.
//
// Fault injection and resilience: -faults standard|heavy generates a
// deterministic fault schedule (cluster outages, agent crashes, link
// brownouts, ICMP rate limiters) from the seed and threads it through the
// network, the prober, and the platform; -retry and -watchdog arm the
// campaign runtime's recovery machinery. -checkpoint writes periodic
// resume points next to the dataset and -resume continues an interrupted
// run from the last one, producing byte-identical output to an
// uninterrupted run. -crash-at injects a crash at a virtual time (CI uses
// it to exercise resume).
//
// SIGINT/SIGTERM stop the campaign gracefully: the run finishes its
// current round, flushes the dataset, sidecars, and manifest, and exits
// 0 — every delivered record is coherent, and a -checkpoint run resumes
// from its last checkpoint like any interrupted campaign.
//
// Exit codes: 0 success, 1 generic error, 3 dataset sink write failure,
// 7 injected crash.
//
// Usage:
//
//	s2sgen -campaign longterm|pings|short [-seed N] [-days N] [-mesh N] [-o PATH]
//	       [-store] [-compress] [-store-shards N] [-churn X]
//	       [-faults standard|heavy] [-retry N] [-watchdog D]
//	       [-checkpoint D] [-resume] [-crash-at D] [-analyze]
//	       [-metrics PATH] [-trace PATH] [-metrics-interval D] [-ops ADDR]
//	       [-cpuprofile PATH] [-memprofile PATH]
//	       [-blockprofile PATH] [-mutexprofile PATH] [-q]
//	s2sgen -benchjson PATH [-bench-baseline PATH] [-q]
//
// The second form runs a fixed end-to-end campaign benchmark and writes
// a machine-readable trajectory point (see cmd/s2sgen/bench.go and the
// checked-in BENCH_*.json files); with -bench-baseline it exits nonzero
// if allocation volume regressed more than 10% against the named file.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/analysis"
	"repro/internal/astopo"
	"repro/internal/bgp"
	"repro/internal/campaign"
	"repro/internal/cdn"
	"repro/internal/congestion"
	"repro/internal/core/aspath"
	"repro/internal/faults"
	"repro/internal/geo"
	"repro/internal/ipam"
	"repro/internal/itopo"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/ops"
	"repro/internal/probe"
	"repro/internal/simnet"
	"repro/internal/store"
	"repro/internal/trace"
)

func main() {
	err := run()
	if err == nil {
		return
	}
	var sinkErr *campaign.SinkError
	switch {
	case errors.As(err, &sinkErr):
		fmt.Fprintf(os.Stderr, "s2sgen: dataset sink write failed: %v\n", sinkErr.Err)
		os.Exit(3)
	case errors.Is(err, campaign.ErrInjectedCrash):
		fmt.Fprintf(os.Stderr, "s2sgen: %v\n", err)
		os.Exit(7)
	default:
		fmt.Fprintf(os.Stderr, "s2sgen: %v\n", err)
		os.Exit(1)
	}
}

// flatWriter is the flat-file dataset writer (binary or JSONL framing).
type flatWriter interface {
	campaign.RecordWriter
	Flush() error
}

// flatCheckpointWriter adds checkpointing to a flat-file writer: flush
// the framing, fsync the file, and report the byte offset — a resume
// truncates the file back to it.
type flatCheckpointWriter struct {
	flatWriter
	f *os.File
}

func (w *flatCheckpointWriter) Checkpoint() (int64, error) {
	if err := w.Flush(); err != nil {
		return 0, err
	}
	if err := w.f.Sync(); err != nil {
		return 0, err
	}
	return w.f.Seek(0, io.SeekCurrent)
}

func run() error {
	var (
		seed       = flag.Int64("seed", 1, "random seed")
		ases       = flag.Int("ases", 300, "number of ASes")
		clusters   = flag.Int("clusters", 400, "number of CDN clusters")
		mesh       = flag.Int("mesh", 24, "measurement mesh size")
		days       = flag.Int("days", 30, "campaign duration in days")
		kind       = flag.String("campaign", "longterm", "campaign: longterm, pings, or short")
		out        = flag.String("o", "dataset", "output path prefix")
		jsonl      = flag.Bool("jsonl", false, "write JSON lines instead of binary records")
		useStore   = flag.Bool("store", false, "write a sharded store directory (<out>.store/) instead of a flat file")
		compress   = flag.Bool("compress", false, "gzip store shard payloads (requires -store)")
		storePS    = flag.Int("store-shards", 0, "pair-shard columns per virtual day (0 = store default)")
		workers    = flag.Int("workers", 0, "measurement workers (0 = all cores, 1 = sequential)")
		churn      = flag.Float64("churn", 1, "multiply routing-event rates (1 = default schedule)")
		analyze    = flag.Bool("analyze", false, "attach streaming-analysis operators (routing/congestion/dualstack) to the record stream")
		metrics    = flag.String("metrics", "", "write a final metrics snapshot to this path (.json = JSON, else Prometheus text)")
		opsAddr    = flag.String("ops", "", "serve live ops endpoints (/metrics, /healthz, /runz, /analysisz, /flight/tail, /debug/pprof) on this address, e.g. :6060")
		quiet      = flag.Bool("q", false, "suppress progress output on stderr")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this path")
		memprofile = flag.String("memprofile", "", "write a heap profile to this path")
		blockprof  = flag.String("blockprofile", "", "write a goroutine blocking profile to this path")
		mutexprof  = flag.String("mutexprofile", "", "write a mutex contention profile to this path")
		tracePath  = flag.String("trace", "", "write a flight record (JSONL) to this path; inspect with s2sobs")
		metricsIV  = flag.Duration("metrics-interval", 24*time.Hour, "virtual time between metric snapshots in the flight record")
		faultSpec  = flag.String("faults", "", "inject a deterministic fault schedule: standard or heavy")
		retries    = flag.Int("retry", 0, "retries per failed measurement (virtual-time backoff)")
		watchdog   = flag.Duration("watchdog", 0, "wall-clock budget per round before it is abandoned as degraded (0 = off)")
		ckptIV     = flag.Duration("checkpoint", 0, "virtual time between campaign checkpoints (<out>.ckpt; 0 = off)")
		resume     = flag.Bool("resume", false, "resume an interrupted campaign from <out>.ckpt")
		crashAt    = flag.Duration("crash-at", 0, "inject a crash at this virtual time (exit 7; for resume testing)")
		benchJSON  = flag.String("benchjson", "", "run the fixed campaign benchmark and write a trajectory point (JSON) to this path, then exit")
		benchBase  = flag.String("bench-baseline", "", "with -benchjson: compare B/op against this trajectory file, fail on >10% regression")
	)
	flag.Parse()
	if err := obs.ValidateRunFlags(*metricsIV, *opsAddr); err != nil {
		fmt.Fprintf(os.Stderr, "s2sgen: %v\n", err)
		os.Exit(2)
	}
	log := obs.NewLogger("s2sgen", *quiet)
	if *benchJSON != "" {
		return runBench(*benchJSON, *benchBase, log)
	}
	if *benchBase != "" {
		return fmt.Errorf("-bench-baseline requires -benchjson")
	}
	var campIV time.Duration
	switch *kind {
	case "longterm":
		campIV = 3 * time.Hour
	case "pings":
		campIV = 15 * time.Minute
	case "short":
		campIV = 30 * time.Minute
	default:
		return fmt.Errorf("unknown campaign %q", *kind)
	}

	obs.DumpOnSIGQUIT()
	stopProfiles, err := obs.StartProfiles(obs.Profiles{
		CPU: *cpuprofile, Mem: *memprofile, Block: *blockprof, Mutex: *mutexprof,
	})
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil {
			log.Errorf("profiles: %v", perr)
		}
	}()

	start := time.Now()
	duration := time.Duration(*days) * 24 * time.Hour
	acfg := astopo.DefaultConfig(*seed)
	acfg.NumASes = *ases
	topo, err := astopo.Generate(acfg)
	if err != nil {
		return err
	}
	net, err := itopo.Build(topo, itopo.DefaultConfig(*seed))
	if err != nil {
		return err
	}
	dcfg := bgp.DefaultDynConfig(*seed, duration)
	if *churn > 1 {
		dcfg.LinkMTBF = time.Duration(float64(dcfg.LinkMTBF) / *churn)
		dcfg.FlipMTBF = time.Duration(float64(dcfg.FlipMTBF) / *churn)
	}
	dyn, err := bgp.NewDynamics(topo, dcfg)
	if err != nil {
		return err
	}
	cong, err := congestion.NewModel(net, congestion.DefaultConfig(*seed, duration))
	if err != nil {
		return err
	}
	plat, err := cdn.Deploy(net, cdn.DefaultConfig(*seed, *clusters))
	if err != nil {
		return err
	}
	sim := simnet.New(net, dyn, cong, simnet.DefaultConfig(*seed))
	prober := probe.New(sim)
	servers := campaign.SelectMesh(plat, *mesh, *seed)

	// Fault plan: regenerated deterministically from the seed and platform
	// sizes, so a resumed run reconstructs the exact same schedule.
	var plan *faults.Plan
	if *faultSpec != "" {
		var fcfg faults.Config
		switch *faultSpec {
		case "standard":
			fcfg = faults.Standard(*seed, duration, len(plat.Clusters), len(net.Routers), len(net.Links))
		case "heavy":
			fcfg = faults.Heavy(*seed, duration, len(plat.Clusters), len(net.Routers), len(net.Links))
		default:
			return fmt.Errorf("unknown -faults %q (want standard or heavy)", *faultSpec)
		}
		if plan, err = faults.Generate(fcfg); err != nil {
			return err
		}
		sim.SetFaults(plan)
		prober.Faults = plan
		plat.SetLiveness(plan)
		log.Printf("fault plan: %s", plan)
	}

	// Telemetry: every subsystem registers its counters here; the engine
	// joins in through the campaign config. Metrics only observe, so the
	// record stream is byte-identical with or without them.
	reg := obs.NewRegistry()
	sim.Instrument(reg)
	dyn.Instrument(reg)
	prober.Instrument(reg)

	// Flight recorder: spans and periodic metric snapshots, same
	// observation-only contract. A nil recorder threads through every
	// subsystem as a no-op.
	var rec *flight.Recorder
	switch {
	case *tracePath != "":
		rec, err = flight.Create(*tracePath, flight.Options{
			Tool:            "s2sgen",
			Registry:        reg,
			MetricsInterval: *metricsIV,
		})
		if err != nil {
			return err
		}
	case *opsAddr != "":
		// No trace file, but the live ops endpoint still needs the stream
		// for /flight/tail and the alert engine: record into the void.
		rec = flight.New(io.Discard, flight.Options{
			Tool:            "s2sgen",
			Registry:        reg,
			MetricsInterval: *metricsIV,
		})
	}
	if rec != nil {
		sim.Trace(rec)
		dyn.Trace(rec)
		prober.Trace(rec)
		if plan != nil {
			plan.Emit(rec)
		}
	}

	// Streaming analysis: routing-change, congestion, and dual-stack
	// operators attached to the record stream. Like metrics and the
	// recorder they only observe — the dataset and the rest of the flight
	// record are byte-identical with or without them (see
	// TestAnalysisDoesNotPerturbRecords).
	var stage *analysis.Stage
	if *analyze {
		table := ipam.NewTable()
		for _, e := range net.BGPEntries() {
			if err := table.Insert(e.Prefix, e.Origin); err != nil {
				return err
			}
		}
		stage = analysis.NewStage(analysis.Config{
			Mapper:   aspath.NewMapper(table),
			Interval: campIV,
		}, reg, rec)
	}
	var analysisSrc ops.AnalysisSource
	if stage != nil {
		analysisSrc = stage // avoid a typed-nil interface when -analyze is off
	}

	// Live telemetry: ops HTTP server and/or alert engine. Both observe the
	// same registry and recorder the run already feeds, so turning them on
	// cannot change the dataset (see TestOpsDoesNotPerturbRecords).
	stopOps, err := ops.StartRun(*opsAddr, "s2sgen", reg, rec, analysisSrc, log)
	if err != nil {
		return err
	}
	defer stopOps()

	// Dataset sink. Both paths go through campaign.WriteSink: the first
	// write error is remembered and reported after the campaign; later
	// writes are skipped.
	if *useStore && *jsonl {
		return fmt.Errorf("-store and -jsonl are mutually exclusive (store shards use the binary framing)")
	}
	if *compress && !*useStore {
		return fmt.Errorf("-compress requires -store")
	}
	// Resume: load and validate the checkpoint before touching the sink.
	ckptPath := *out + ".ckpt"
	var resumeCP *campaign.Checkpoint
	if *resume {
		if resumeCP, err = campaign.LoadCheckpoint(ckptPath); err != nil {
			return err
		}
		if err := resumeCP.Compatible("s2sgen", *seed, topo.Digest(), *faultSpec); err != nil {
			return err
		}
		log.Printf("resuming at virtual %v (%d rounds, %d records committed)",
			resumeCP.ResumeAt(), resumeCP.Rounds, resumeCP.Records)
	}
	var (
		sink    *campaign.WriteSink
		finish  func() error // flush/close the dataset after the campaign
		dataOut string       // where the records went, for the final log line
	)
	if *useStore {
		dataOut = *out + ".store"
		var sw *store.Writer
		if *resume {
			// Drop uncommitted segments and continue from the manifest.
			if sw, err = store.Resume(dataOut); err != nil {
				return err
			}
			if sw.Records() != resumeCP.SinkPos {
				return fmt.Errorf("store holds %d committed records, checkpoint expects %d",
					sw.Records(), resumeCP.SinkPos)
			}
		} else {
			compression := ""
			if *compress {
				compression = store.CompressionGzip
			}
			sw, err = store.Create(dataOut, store.Options{
				PairShards:  *storePS,
				Compression: compression,
				Tool:        "s2sgen",
				Seed:        *seed,
				TopoDigest:  topo.Digest(),
			})
			if err != nil {
				return err
			}
		}
		sw.Instrument(reg)
		sink = campaign.NewWriteSink(sw)
		finish = sw.Close
	} else {
		ext := ".bin"
		if *jsonl {
			ext = ".jsonl"
		}
		dataOut = *out + ext
		var f *os.File
		if *resume {
			// Truncate back to the checkpoint's durable offset; everything
			// after it is regenerated byte-identically.
			if f, err = os.OpenFile(dataOut, os.O_RDWR, 0); err != nil {
				return err
			}
			if err := f.Truncate(resumeCP.SinkPos); err != nil {
				return err
			}
			if _, err := f.Seek(0, io.SeekEnd); err != nil {
				return err
			}
		} else {
			if f, err = os.Create(dataOut); err != nil {
				return err
			}
		}
		defer f.Close()
		var w flatWriter
		if *jsonl {
			w = trace.NewJSONLWriter(f)
		} else {
			w = trace.NewBinaryWriter(f)
		}
		sink = campaign.NewWriteSink(&flatCheckpointWriter{flatWriter: w, f: f})
		finish = w.Flush
	}
	sink.Instrument(reg)
	sink.Trace(rec)
	if *resume {
		sink.SetCount(resumeCP.Records)
	}
	consumer := campaign.Consumer(sink)
	if stage != nil {
		// Both members stream, so the engine keeps recycling records.
		consumer = campaign.Multi{sink, stage}
	}

	var ck *campaign.Checkpointer
	if *ckptIV > 0 {
		ck = &campaign.Checkpointer{
			Path:       ckptPath,
			Interval:   *ckptIV,
			Sink:       sink,
			Records:    sink.Count,
			Tool:       "s2sgen",
			Seed:       *seed,
			TopoDigest: topo.Digest(),
			Faults:     *faultSpec,
			Metrics:    reg,
			Trace:      rec,
		}
	}
	// Graceful shutdown: the first SIGINT/SIGTERM stops the campaign at the
	// next round boundary; the run then flushes the dataset, sidecars, and
	// flight record and exits 0. A second signal kills immediately.
	shutdown := obs.TrapShutdown()
	abort := func() error {
		if werr := sink.Err(); werr != nil {
			return werr
		}
		if shutdown() {
			return campaign.ErrShutdown
		}
		return nil
	}

	res := campaign.Resilience{Faults: plan, Watchdog: *watchdog}
	if *retries > 0 {
		res.Retry.MaxAttempts = *retries + 1
	}
	if plan != nil {
		// Under a fault plan, persistently dead pairs go on the quarantine
		// list instead of burning probes every round.
		res.QuarantineAfter = 3
	}

	// Progress line: virtual-clock position and cumulative throughput,
	// read from the same registry series the engine updates.
	tasksC := reg.Counter(campaign.MetricTasks, "measurement tasks executed")
	virtualG := reg.Gauge(campaign.MetricVirtualNS, "virtual-clock position of the campaign (nanoseconds since start)")
	stop := obs.Every(2*time.Second, func() {
		el := time.Since(start).Seconds()
		log.Progress("virtual day %.1f/%d, %d records, %.0f records/s",
			virtualG.Value()/86400e9, *days, tasksC.Value(), float64(tasksC.Value())/el)
	})

	switch *kind {
	case "longterm":
		err = campaign.LongTerm(prober, campaign.LongTermConfig{
			Servers:       servers,
			Duration:      duration,
			Interval:      campIV,
			ParisSwitchAt: time.Duration(float64(duration) * 0.62),
			Workers:       *workers,
			Metrics:       reg,
			Trace:         rec,
			Resilience:    res,
			Checkpoint:    ck,
			Resume:        resumeCP,
			CrashAt:       *crashAt,
			Abort:         abort,
		}, consumer)
	case "pings":
		err = campaign.PingMesh(prober, campaign.PingMeshConfig{
			Pairs:      campaign.FullMeshPairs(servers),
			Duration:   duration,
			Interval:   campIV,
			Workers:    *workers,
			Metrics:    reg,
			Trace:      rec,
			Resilience: res,
			Checkpoint: ck,
			Resume:     resumeCP,
			CrashAt:    *crashAt,
			Abort:      abort,
		}, consumer)
	case "short":
		err = campaign.TracerouteCampaign(prober, campaign.TracerouteCampaignConfig{
			Pairs:          campaign.UnorderedPairs(servers),
			Duration:       duration,
			Interval:       campIV,
			BothDirections: true,
			Paris:          true,
			V6:             true,
			Workers:        *workers,
			Metrics:        reg,
			Trace:          rec,
			Resilience:     res,
			Checkpoint:     ck,
			Resume:         resumeCP,
			CrashAt:        *crashAt,
			Abort:          abort,
		}, consumer)
	default:
		stop()
		return fmt.Errorf("unknown campaign %q", *kind)
	}
	stop()
	log.EndProgress()
	if errors.Is(err, campaign.ErrShutdown) {
		// Graceful SIGINT/SIGTERM: the campaign stopped at a round
		// boundary, so every delivered record is coherent. Flush the
		// dataset and sidecars like a normal finish and exit 0 — the run
		// resumes from its last checkpoint like any interrupted campaign.
		log.Printf("shutdown requested: stopping at virtual day %.1f, flushing dataset",
			virtualG.Value()/86400e9)
		err = nil
	}
	if err != nil {
		// An injected crash returns without flushing or writing sidecars —
		// the point is to leave the debris a real crash would.
		return err
	}
	if werr := sink.Err(); werr != nil {
		return &campaign.SinkError{Err: werr}
	}
	if err := finish(); err != nil {
		return err
	}
	count := sink.Count()

	// Close out the streaming analysis: flush remaining finding buckets
	// and open windows into the flight record before the manifest.
	if stage != nil {
		stage.Finish()
		log.Printf("streaming analysis: %d findings", stage.Total())
	}

	// Sidecars.
	if err := writeBGP(*out+".bgp.tsv", net, plat); err != nil {
		return err
	}
	if err := writeRels(*out+".rel.tsv", topo); err != nil {
		return err
	}
	if err := writeLocations(*out+".loc.tsv", plat); err != nil {
		return err
	}

	wall := time.Since(start)
	reg.Gauge(obs.MetricRunWallSeconds, "wall-clock duration of the run").Set(wall.Seconds())
	reg.Counter(obs.MetricRunRecords, "records the run wrote").Add(count)
	reg.Gauge(obs.MetricRunRecordsPerSec, "records written per wall-clock second").Set(float64(count) / wall.Seconds())
	if *metrics != "" {
		if err := obs.WriteFile(*metrics, reg); err != nil {
			return err
		}
		log.Printf("wrote metrics snapshot to %s", *metrics)
	}
	if rec != nil {
		rec.WriteManifest(flight.Manifest{
			Tool:       "s2sgen",
			Seed:       *seed,
			Flags:      flight.FlagsSet(),
			TopoDigest: topo.Digest(),
			Records:    count,
		})
		if err := rec.Close(); err != nil {
			return err
		}
		if *tracePath != "" {
			log.Printf("wrote flight record to %s", *tracePath)
		}
	}

	log.Printf("wrote %d records to %s (+ .bgp.tsv, .rel.tsv, .loc.tsv) in %v",
		count, dataOut, wall.Round(time.Millisecond))
	return nil
}

// writeBGP dumps the announced-prefix view as "prefix\tASN" lines.
func writeBGP(path string, net *itopo.Network, plat *cdn.Platform) error {
	_ = plat
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return ipam.WriteTSV(f, net.BGPEntries())
}

func writeRels(path string, topo *astopo.Topology) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for _, l := range topo.Links {
		fmt.Fprintf(w, "%s\t%s\t%s\n", l.A, l.B, l.Rel)
	}
	return w.Flush()
}

func writeLocations(path string, plat *cdn.Platform) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for _, c := range plat.Clusters {
		city := geo.Cities[c.City]
		fmt.Fprintf(w, "%d\t%.4f\t%.4f\t%s\n", c.ID, city.Lat, city.Lon, city.Country)
	}
	return w.Flush()
}
