// Command s2sgen builds a simulated platform, runs a measurement campaign,
// and writes the dataset plus the sidecar files an external analyzer needs:
//
//	<out>.bin      compact binary records (or <out>.jsonl with -jsonl)
//	<out>.bgp.tsv  the BGP IP-to-AS view  (prefix <TAB> asn)
//	<out>.rel.tsv  AS relationships       (a <TAB> b <TAB> c2p|p2p)
//	<out>.loc.tsv  cluster locations      (id <TAB> lat <TAB> lon <TAB> country)
//
// Usage:
//
//	s2sgen -campaign longterm|pings|short [-seed N] [-days N] [-mesh N] [-o PATH]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/astopo"
	"repro/internal/bgp"
	"repro/internal/campaign"
	"repro/internal/cdn"
	"repro/internal/congestion"
	"repro/internal/geo"
	"repro/internal/ipam"
	"repro/internal/itopo"
	"repro/internal/probe"
	"repro/internal/simnet"
	"repro/internal/trace"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "random seed")
		ases     = flag.Int("ases", 300, "number of ASes")
		clusters = flag.Int("clusters", 400, "number of CDN clusters")
		mesh     = flag.Int("mesh", 24, "measurement mesh size")
		days     = flag.Int("days", 30, "campaign duration in days")
		kind     = flag.String("campaign", "longterm", "campaign: longterm, pings, or short")
		out      = flag.String("o", "dataset", "output path prefix")
		jsonl    = flag.Bool("jsonl", false, "write JSON lines instead of binary records")
		workers  = flag.Int("workers", 0, "measurement workers (0 = all cores, 1 = sequential)")
	)
	flag.Parse()

	duration := time.Duration(*days) * 24 * time.Hour
	acfg := astopo.DefaultConfig(*seed)
	acfg.NumASes = *ases
	topo, err := astopo.Generate(acfg)
	check(err)
	net, err := itopo.Build(topo, itopo.DefaultConfig(*seed))
	check(err)
	dyn, err := bgp.NewDynamics(topo, bgp.DefaultDynConfig(*seed, duration))
	check(err)
	cong, err := congestion.NewModel(net, congestion.DefaultConfig(*seed, duration))
	check(err)
	plat, err := cdn.Deploy(net, cdn.DefaultConfig(*seed, *clusters))
	check(err)
	prober := probe.New(simnet.New(net, dyn, cong, simnet.DefaultConfig(*seed)))
	servers := campaign.SelectMesh(plat, *mesh, *seed)

	// Dataset writer.
	ext := ".bin"
	if *jsonl {
		ext = ".jsonl"
	}
	f, err := os.Create(*out + ext)
	check(err)
	defer f.Close()
	var consumer campaign.Consumer
	var flush func() error
	count := 0
	if *jsonl {
		w := trace.NewJSONLWriter(f)
		consumer = campaign.Funcs{
			Traceroute: func(tr *trace.Traceroute) { count++; check(w.WriteTraceroute(tr)) },
			Ping:       func(p *trace.Ping) { count++; check(w.WritePing(p)) },
		}
		flush = w.Flush
	} else {
		w := trace.NewBinaryWriter(f)
		consumer = campaign.Funcs{
			Traceroute: func(tr *trace.Traceroute) { count++; check(w.WriteTraceroute(tr)) },
			Ping:       func(p *trace.Ping) { count++; check(w.WritePing(p)) },
		}
		flush = w.Flush
	}

	switch *kind {
	case "longterm":
		check(campaign.LongTerm(prober, campaign.LongTermConfig{
			Servers:       servers,
			Duration:      duration,
			Interval:      3 * time.Hour,
			ParisSwitchAt: time.Duration(float64(duration) * 0.62),
			Workers:       *workers,
		}, consumer))
	case "pings":
		check(campaign.PingMesh(prober, campaign.PingMeshConfig{
			Pairs:    campaign.FullMeshPairs(servers),
			Duration: duration,
			Interval: 15 * time.Minute,
			Workers:  *workers,
		}, consumer))
	case "short":
		check(campaign.TracerouteCampaign(prober, campaign.TracerouteCampaignConfig{
			Pairs:          campaign.UnorderedPairs(servers),
			Duration:       duration,
			Interval:       30 * time.Minute,
			BothDirections: true,
			Paris:          true,
			V6:             true,
			Workers:        *workers,
		}, consumer))
	default:
		fmt.Fprintf(os.Stderr, "s2sgen: unknown campaign %q\n", *kind)
		os.Exit(2)
	}
	check(flush())

	// Sidecars.
	check(writeBGP(*out+".bgp.tsv", net, plat))
	check(writeRels(*out+".rel.tsv", topo))
	check(writeLocations(*out+".loc.tsv", plat))

	fmt.Printf("s2sgen: wrote %d records to %s%s (+ .bgp.tsv, .rel.tsv, .loc.tsv)\n", count, *out, ext)
}

// writeBGP dumps the announced-prefix view as "prefix\tASN" lines.
func writeBGP(path string, net *itopo.Network, plat *cdn.Platform) error {
	_ = plat
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return ipam.WriteTSV(f, net.BGPEntries())
}

func writeRels(path string, topo *astopo.Topology) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for _, l := range topo.Links {
		fmt.Fprintf(w, "%s\t%s\t%s\n", l.A, l.B, l.Rel)
	}
	return w.Flush()
}

func writeLocations(path string, plat *cdn.Platform) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for _, c := range plat.Clusters {
		city := geo.Cities[c.City]
		fmt.Fprintf(w, "%d\t%.4f\t%.4f\t%s\n", c.ID, city.Lat, city.Lon, city.Country)
	}
	return w.Flush()
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "s2sgen: %v\n", err)
		os.Exit(1)
	}
}
