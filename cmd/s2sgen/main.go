// Command s2sgen builds a simulated platform, runs a measurement campaign,
// and writes the dataset plus the sidecar files an external analyzer needs:
//
//	<out>.bin      compact binary records (or <out>.jsonl with -jsonl)
//	<out>.bgp.tsv  the BGP IP-to-AS view  (prefix <TAB> asn)
//	<out>.rel.tsv  AS relationships       (a <TAB> b <TAB> c2p|p2p)
//	<out>.loc.tsv  cluster locations      (id <TAB> lat <TAB> lon <TAB> country)
//
// With -store the dataset is written as a sharded store directory
// (<out>.store/) instead of a flat record file: records are routed into
// per-(day, pair-shard) files with footer indexes and a manifest, which
// s2sanalyze scans in parallel and prunes per-pair (see internal/store).
// -compress gzips the shard payloads; -store-shards sets the pair-hash
// column count. Sidecars keep the <out>.*.tsv names either way.
//
// All diagnostics go to stderr (silence them with -q); stdout carries
// nothing, so the command composes in pipelines. -metrics writes a final
// telemetry snapshot (Prometheus text, or JSON for .json paths), -trace
// records a flight record (inspect with s2sobs), and
// -cpuprofile/-memprofile capture pprof profiles of the run.
//
// Usage:
//
//	s2sgen -campaign longterm|pings|short [-seed N] [-days N] [-mesh N] [-o PATH]
//	       [-store] [-compress] [-store-shards N] [-churn X]
//	       [-metrics PATH] [-trace PATH] [-metrics-interval D]
//	       [-cpuprofile PATH] [-memprofile PATH] [-q]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/astopo"
	"repro/internal/bgp"
	"repro/internal/campaign"
	"repro/internal/cdn"
	"repro/internal/congestion"
	"repro/internal/geo"
	"repro/internal/ipam"
	"repro/internal/itopo"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/probe"
	"repro/internal/simnet"
	"repro/internal/store"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "s2sgen: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed       = flag.Int64("seed", 1, "random seed")
		ases       = flag.Int("ases", 300, "number of ASes")
		clusters   = flag.Int("clusters", 400, "number of CDN clusters")
		mesh       = flag.Int("mesh", 24, "measurement mesh size")
		days       = flag.Int("days", 30, "campaign duration in days")
		kind       = flag.String("campaign", "longterm", "campaign: longterm, pings, or short")
		out        = flag.String("o", "dataset", "output path prefix")
		jsonl      = flag.Bool("jsonl", false, "write JSON lines instead of binary records")
		useStore   = flag.Bool("store", false, "write a sharded store directory (<out>.store/) instead of a flat file")
		compress   = flag.Bool("compress", false, "gzip store shard payloads (requires -store)")
		storePS    = flag.Int("store-shards", 0, "pair-shard columns per virtual day (0 = store default)")
		workers    = flag.Int("workers", 0, "measurement workers (0 = all cores, 1 = sequential)")
		churn      = flag.Float64("churn", 1, "multiply routing-event rates (1 = default schedule)")
		metrics    = flag.String("metrics", "", "write a final metrics snapshot to this path (.json = JSON, else Prometheus text)")
		quiet      = flag.Bool("q", false, "suppress progress output on stderr")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this path")
		memprofile = flag.String("memprofile", "", "write a heap profile to this path")
		tracePath  = flag.String("trace", "", "write a flight record (JSONL) to this path; inspect with s2sobs")
		metricsIV  = flag.Duration("metrics-interval", 24*time.Hour, "virtual time between metric snapshots in the flight record")
	)
	flag.Parse()
	log := obs.NewLogger("s2sgen", *quiet)

	stopProfiles, err := obs.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil {
			log.Errorf("profiles: %v", perr)
		}
	}()

	start := time.Now()
	duration := time.Duration(*days) * 24 * time.Hour
	acfg := astopo.DefaultConfig(*seed)
	acfg.NumASes = *ases
	topo, err := astopo.Generate(acfg)
	if err != nil {
		return err
	}
	net, err := itopo.Build(topo, itopo.DefaultConfig(*seed))
	if err != nil {
		return err
	}
	dcfg := bgp.DefaultDynConfig(*seed, duration)
	if *churn > 1 {
		dcfg.LinkMTBF = time.Duration(float64(dcfg.LinkMTBF) / *churn)
		dcfg.FlipMTBF = time.Duration(float64(dcfg.FlipMTBF) / *churn)
	}
	dyn, err := bgp.NewDynamics(topo, dcfg)
	if err != nil {
		return err
	}
	cong, err := congestion.NewModel(net, congestion.DefaultConfig(*seed, duration))
	if err != nil {
		return err
	}
	plat, err := cdn.Deploy(net, cdn.DefaultConfig(*seed, *clusters))
	if err != nil {
		return err
	}
	sim := simnet.New(net, dyn, cong, simnet.DefaultConfig(*seed))
	prober := probe.New(sim)
	servers := campaign.SelectMesh(plat, *mesh, *seed)

	// Telemetry: every subsystem registers its counters here; the engine
	// joins in through the campaign config. Metrics only observe, so the
	// record stream is byte-identical with or without them.
	reg := obs.NewRegistry()
	sim.Instrument(reg)
	dyn.Instrument(reg)
	prober.Instrument(reg)

	// Flight recorder: spans and periodic metric snapshots, same
	// observation-only contract. A nil recorder threads through every
	// subsystem as a no-op.
	var rec *flight.Recorder
	if *tracePath != "" {
		rec, err = flight.Create(*tracePath, flight.Options{
			Tool:            "s2sgen",
			Registry:        reg,
			MetricsInterval: *metricsIV,
		})
		if err != nil {
			return err
		}
		sim.Trace(rec)
		dyn.Trace(rec)
		prober.Trace(rec)
	}

	// Dataset sink. Both paths go through campaign.WriteSink: the first
	// write error is remembered and reported after the campaign; later
	// writes are skipped.
	if *useStore && *jsonl {
		return fmt.Errorf("-store and -jsonl are mutually exclusive (store shards use the binary framing)")
	}
	if *compress && !*useStore {
		return fmt.Errorf("-compress requires -store")
	}
	var (
		sink    *campaign.WriteSink
		finish  func() error // flush/close the dataset after the campaign
		dataOut string       // where the records went, for the final log line
	)
	if *useStore {
		dataOut = *out + ".store"
		compression := ""
		if *compress {
			compression = store.CompressionGzip
		}
		sw, err := store.Create(dataOut, store.Options{
			PairShards:  *storePS,
			Compression: compression,
			Tool:        "s2sgen",
			Seed:        *seed,
			TopoDigest:  topo.Digest(),
		})
		if err != nil {
			return err
		}
		sw.Instrument(reg)
		sink = campaign.NewWriteSink(sw)
		finish = sw.Close
	} else {
		ext := ".bin"
		if *jsonl {
			ext = ".jsonl"
		}
		dataOut = *out + ext
		f, err := os.Create(dataOut)
		if err != nil {
			return err
		}
		defer f.Close()
		type flatWriter interface {
			campaign.RecordWriter
			Flush() error
		}
		var w flatWriter
		if *jsonl {
			w = trace.NewJSONLWriter(f)
		} else {
			w = trace.NewBinaryWriter(f)
		}
		sink = campaign.NewWriteSink(w)
		finish = w.Flush
	}
	consumer := campaign.Consumer(sink)

	// Progress line: virtual-clock position and cumulative throughput,
	// read from the same registry series the engine updates.
	tasksC := reg.Counter(campaign.MetricTasks, "measurement tasks executed")
	virtualG := reg.Gauge(campaign.MetricVirtualNS, "virtual-clock position of the campaign (nanoseconds since start)")
	stop := obs.Every(2*time.Second, func() {
		el := time.Since(start).Seconds()
		log.Progress("virtual day %.1f/%d, %d records, %.0f records/s",
			virtualG.Value()/86400e9, *days, tasksC.Value(), float64(tasksC.Value())/el)
	})

	switch *kind {
	case "longterm":
		err = campaign.LongTerm(prober, campaign.LongTermConfig{
			Servers:       servers,
			Duration:      duration,
			Interval:      3 * time.Hour,
			ParisSwitchAt: time.Duration(float64(duration) * 0.62),
			Workers:       *workers,
			Metrics:       reg,
			Trace:         rec,
		}, consumer)
	case "pings":
		err = campaign.PingMesh(prober, campaign.PingMeshConfig{
			Pairs:    campaign.FullMeshPairs(servers),
			Duration: duration,
			Interval: 15 * time.Minute,
			Workers:  *workers,
			Metrics:  reg,
			Trace:    rec,
		}, consumer)
	case "short":
		err = campaign.TracerouteCampaign(prober, campaign.TracerouteCampaignConfig{
			Pairs:          campaign.UnorderedPairs(servers),
			Duration:       duration,
			Interval:       30 * time.Minute,
			BothDirections: true,
			Paris:          true,
			V6:             true,
			Workers:        *workers,
			Metrics:        reg,
			Trace:          rec,
		}, consumer)
	default:
		stop()
		return fmt.Errorf("unknown campaign %q", *kind)
	}
	stop()
	log.EndProgress()
	if err != nil {
		return err
	}
	if werr := sink.Err(); werr != nil {
		return werr
	}
	if err := finish(); err != nil {
		return err
	}
	count := sink.Count()

	// Sidecars.
	if err := writeBGP(*out+".bgp.tsv", net, plat); err != nil {
		return err
	}
	if err := writeRels(*out+".rel.tsv", topo); err != nil {
		return err
	}
	if err := writeLocations(*out+".loc.tsv", plat); err != nil {
		return err
	}

	wall := time.Since(start)
	reg.Gauge(obs.MetricRunWallSeconds, "wall-clock duration of the run").Set(wall.Seconds())
	reg.Counter(obs.MetricRunRecords, "records the run wrote").Add(count)
	reg.Gauge(obs.MetricRunRecordsPerSec, "records written per wall-clock second").Set(float64(count) / wall.Seconds())
	if *metrics != "" {
		if err := obs.WriteFile(*metrics, reg); err != nil {
			return err
		}
		log.Printf("wrote metrics snapshot to %s", *metrics)
	}
	if rec != nil {
		rec.WriteManifest(flight.Manifest{
			Tool:       "s2sgen",
			Seed:       *seed,
			Flags:      flight.FlagsSet(),
			TopoDigest: topo.Digest(),
			Records:    count,
		})
		if err := rec.Close(); err != nil {
			return err
		}
		log.Printf("wrote flight record to %s", *tracePath)
	}

	log.Printf("wrote %d records to %s (+ .bgp.tsv, .rel.tsv, .loc.tsv) in %v",
		count, dataOut, wall.Round(time.Millisecond))
	return nil
}

// writeBGP dumps the announced-prefix view as "prefix\tASN" lines.
func writeBGP(path string, net *itopo.Network, plat *cdn.Platform) error {
	_ = plat
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return ipam.WriteTSV(f, net.BGPEntries())
}

func writeRels(path string, topo *astopo.Topology) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for _, l := range topo.Links {
		fmt.Fprintf(w, "%s\t%s\t%s\n", l.A, l.B, l.Rel)
	}
	return w.Flush()
}

func writeLocations(path string, plat *cdn.Platform) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for _, c := range plat.Clusters {
		city := geo.Cities[c.City]
		fmt.Fprintf(w, "%d\t%.4f\t%.4f\t%s\n", c.ID, city.Lat, city.Lon, city.Country)
	}
	return w.Flush()
}
