package main

// The -benchjson mode: an end-to-end campaign benchmark with memory
// accounting, recorded as a machine-readable trajectory point.
//
// `go test -bench` numbers live and die with the CI log; this runner
// writes them to a JSON file (BENCH_006.json and successors) that is
// checked in next to the code, so every future change can be compared
// against the trajectory with -bench-baseline. The benchmarked workload
// is fixed — same seed, same world, same schedule — because the point is
// comparing builds, not worlds:
//
//	world:    600 ASes, 1600 clusters (4x the default platform; the AS
//	          count is capped by the IPv4 pool), 24-server mesh
//	campaign: longterm, 5 virtual days, 3h interval, Paris switch at 62%
//	workers:  1 and 8
//
// Per variant the runner reports wall time, allocated bytes and
// allocation count (runtime.MemStats deltas), sampled peak heap, the
// record count, and an FNV-64a digest of the encoded record stream. The
// digests double as a determinism check: every variant must produce the
// same bytes, or the runner fails. Process peak RSS (VmHWM) is recorded
// once at the end where the platform exposes it.
//
// With -bench-baseline PATH the runner compares its B/op against the
// named trajectory file and fails if any variant regressed more than 10%
// — the CI guard against silently re-fattening the hot path.

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/astopo"
	"repro/internal/bgp"
	"repro/internal/campaign"
	"repro/internal/cdn"
	"repro/internal/congestion"
	"repro/internal/itopo"
	"repro/internal/obs"
	"repro/internal/probe"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// The fixed benchmark workload. Changing any of these invalidates every
// checked-in trajectory file, so bump the schema version if you must.
const (
	benchSchema   = "s2s-bench/1"
	benchSeed     = 41
	benchASes     = 600
	benchClusters = 1600
	benchMesh     = 24
	benchDays     = 5
)

// benchVariants are the worker counts measured, slowest first so the
// sampler warms up on the long run.
var benchVariants = []int{1, 8}

// benchResult is one measured campaign variant.
type benchResult struct {
	Name          string `json:"name"`
	Workers       int    `json:"workers"`
	NsPerOp       int64  `json:"ns_per_op"`
	BPerOp        int64  `json:"b_per_op"`
	AllocsPerOp   int64  `json:"allocs_per_op"`
	PeakHeapBytes int64  `json:"peak_heap_bytes"`
	Records       int64  `json:"records"`
	Digest        string `json:"digest"`
}

// benchFile is the on-disk trajectory point.
type benchFile struct {
	Schema    string `json:"schema"`
	Workload  string `json:"workload"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`

	Seed     int64 `json:"seed"`
	ASes     int   `json:"ases"`
	Clusters int   `json:"clusters"`
	Mesh     int   `json:"mesh"`
	Days     int   `json:"days"`

	PeakRSSBytes int64         `json:"peak_rss_bytes,omitempty"`
	Benchmarks   []benchResult `json:"benchmarks"`
}

// hashWriter digests and counts everything written through it. The
// campaign's record stream flows through the real binary encoder into
// this sink, so the benchmark pays full encode cost without disk I/O,
// and the digest pins byte identity across worker counts.
type hashWriter struct {
	h interface {
		Write([]byte) (int, error)
		Sum64() uint64
	}
	n int64
}

func newHashWriter() *hashWriter { return &hashWriter{h: fnv.New64a()} }

func (w *hashWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return w.h.Write(p)
}

func (w *hashWriter) sum() string { return fmt.Sprintf("%016x", w.h.Sum64()) }

// benchWorld builds the fixed benchmark world from scratch. Each variant
// gets a fresh world so no routing or path cache is shared between
// measurements and every variant replays identical work.
func benchWorld() (*probe.Prober, []*cdn.Cluster, error) {
	dur := benchDays * 24 * time.Hour
	acfg := astopo.DefaultConfig(benchSeed)
	acfg.NumASes = benchASes
	topo, err := astopo.Generate(acfg)
	if err != nil {
		return nil, nil, err
	}
	net, err := itopo.Build(topo, itopo.DefaultConfig(benchSeed))
	if err != nil {
		return nil, nil, err
	}
	dyn, err := bgp.NewDynamics(topo, bgp.DefaultDynConfig(benchSeed, dur))
	if err != nil {
		return nil, nil, err
	}
	cong, err := congestion.NewModel(net, congestion.DefaultConfig(benchSeed, dur))
	if err != nil {
		return nil, nil, err
	}
	plat, err := cdn.Deploy(net, cdn.DefaultConfig(benchSeed, benchClusters))
	if err != nil {
		return nil, nil, err
	}
	prober := probe.New(simnet.New(net, dyn, cong, simnet.DefaultConfig(benchSeed)))
	return prober, campaign.SelectMesh(plat, benchMesh, benchSeed), nil
}

// sampleHeap polls HeapAlloc until stop is closed and reports the peak
// it saw. 10ms is frequent enough to catch the between-GC high-water
// mark of a multi-second run without perturbing it.
func sampleHeap(stop <-chan struct{}, peak *uint64, wg *sync.WaitGroup) {
	defer wg.Done()
	var ms runtime.MemStats
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > *peak {
				*peak = ms.HeapAlloc
			}
		}
	}
}

// runBenchVariant builds a fresh world and runs the fixed campaign once
// at the given worker count, measuring the campaign phase only.
func runBenchVariant(workers int) (benchResult, error) {
	prober, servers, err := benchWorld()
	if err != nil {
		return benchResult{}, err
	}
	hw := newHashWriter()
	bw := trace.NewBinaryWriter(hw)
	sink := campaign.NewWriteSink(bw)
	cfg := campaign.LongTermConfig{
		Servers:       servers,
		Duration:      benchDays * 24 * time.Hour,
		Interval:      3 * time.Hour,
		ParisSwitchAt: time.Duration(float64(benchDays*24*time.Hour) * 0.62),
		Workers:       workers,
	}

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	peak := before.HeapAlloc
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go sampleHeap(stop, &peak, &wg)

	start := time.Now()
	err = campaign.LongTerm(prober, cfg, sink)
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()
	if err != nil {
		return benchResult{}, err
	}
	if err := sink.Err(); err != nil {
		return benchResult{}, err
	}
	if err := bw.Flush(); err != nil {
		return benchResult{}, err
	}
	runtime.ReadMemStats(&after)
	if after.HeapAlloc > peak {
		peak = after.HeapAlloc
	}
	return benchResult{
		Name:          fmt.Sprintf("campaign/workers=%d", workers),
		Workers:       workers,
		NsPerOp:       elapsed.Nanoseconds(),
		BPerOp:        int64(after.TotalAlloc - before.TotalAlloc),
		AllocsPerOp:   int64(after.Mallocs - before.Mallocs),
		PeakHeapBytes: int64(peak),
		Records:       sink.Count(),
		Digest:        hw.sum(),
	}, nil
}

// peakRSSBytes reads the process high-water RSS from /proc/self/status
// (VmHWM). Returns 0 where the platform does not expose it.
func peakRSSBytes() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		var kb int64
		if _, err := fmt.Sscanf(strings.TrimPrefix(line, "VmHWM:"), "%d kB", &kb); err == nil {
			return kb << 10
		}
	}
	return 0
}

// runBench executes every variant, writes the trajectory point to
// jsonPath, and (when baselinePath is set) enforces the B/op budget.
func runBench(jsonPath, baselinePath string, log *obs.Logger) error {
	out := benchFile{
		Schema:    benchSchema,
		Workload:  "longterm campaign, fixed world (see cmd/s2sgen/bench.go)",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Seed:      benchSeed,
		ASes:      benchASes,
		Clusters:  benchClusters,
		Mesh:      benchMesh,
		Days:      benchDays,
	}
	for _, workers := range benchVariants {
		res, err := runBenchVariant(workers)
		if err != nil {
			return fmt.Errorf("bench %s: %w", fmt.Sprintf("campaign/workers=%d", workers), err)
		}
		log.Printf("%-20s %12d ns/op %14d B/op %10d allocs/op peak heap %s records %d digest %s",
			res.Name, res.NsPerOp, res.BPerOp, res.AllocsPerOp,
			fmtBytes(res.PeakHeapBytes), res.Records, res.Digest)
		out.Benchmarks = append(out.Benchmarks, res)
	}
	// Byte identity across worker counts is part of the contract the
	// benchmark exists to protect; a digest mismatch is a hard failure.
	for _, b := range out.Benchmarks[1:] {
		first := out.Benchmarks[0]
		if b.Digest != first.Digest || b.Records != first.Records {
			return fmt.Errorf("bench: %s produced %d records digest %s, %s produced %d records digest %s — record stream depends on worker count",
				first.Name, first.Records, first.Digest, b.Name, b.Records, b.Digest)
		}
	}
	out.PeakRSSBytes = peakRSSBytes()

	data, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
		return err
	}
	log.Printf("wrote bench trajectory to %s", jsonPath)

	if baselinePath == "" {
		return nil
	}
	return compareBaseline(&out, baselinePath, log)
}

// compareBaseline fails if any variant's B/op regressed more than 10%
// against the named trajectory file. ns/op is reported but not enforced
// (CI machines vary); allocation volume is machine-independent.
func compareBaseline(cur *benchFile, path string, log *obs.Logger) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("bench baseline: %w", err)
	}
	var base benchFile
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("bench baseline %s: %w", path, err)
	}
	if base.Schema != cur.Schema {
		return fmt.Errorf("bench baseline %s: schema %q, runner speaks %q", path, base.Schema, cur.Schema)
	}
	byName := make(map[string]benchResult, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		byName[b.Name] = b
	}
	var regressed []string
	for _, b := range cur.Benchmarks {
		bl, ok := byName[b.Name]
		if !ok {
			log.Printf("bench baseline: no entry for %s, skipping", b.Name)
			continue
		}
		ratio := float64(b.BPerOp) / float64(bl.BPerOp)
		log.Printf("%-20s B/op %14d vs baseline %14d (%+.1f%%)",
			b.Name, b.BPerOp, bl.BPerOp, (ratio-1)*100)
		if ratio > 1.10 {
			regressed = append(regressed, fmt.Sprintf("%s: %d B/op vs baseline %d (+%.1f%%)",
				b.Name, b.BPerOp, bl.BPerOp, (ratio-1)*100))
		}
	}
	if len(regressed) > 0 {
		return fmt.Errorf("bench: B/op regressed >10%% against %s:\n  %s",
			path, strings.Join(regressed, "\n  "))
	}
	return nil
}

// fmtBytes renders a byte count for the log line.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
