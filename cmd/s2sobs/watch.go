package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flight"
)

// utilWindow is how many refresh ticks of per-worker utilization history
// the sparklines keep.
const utilWindow = 30

// maxWorkerRows caps the per-worker section of the dashboard.
const maxWorkerRows = 16

// maxAlertRows caps the scrolling alert feed.
const maxAlertRows = 8

// maxFindingRows caps the scrolling findings feed.
const maxFindingRows = 6

// watchState digests a live flight stream into the dashboard's view. One
// goroutine ingests lines; the render ticker reads under the mutex.
type watchState struct {
	mu sync.Mutex

	tool     string
	campaign string
	lastPh   string
	rounds   int64
	tasks    int64
	records  int64 // from the manifest, when the run has ended
	snaps    int
	alertsOn int // currently-firing alert rules
	alertLog []string
	maxVT    int64 // ns, virtual clock high-water mark
	lastT    int64 // ns, wall offset of the newest record
	workers  int
	busyNS   map[int]int64 // cumulative per-worker busy time
	done     bool          // manifest seen: the run is over

	// Per-refresh deltas for rate and utilization sparklines.
	prevVT   int64
	prevT    int64
	prevBusy map[int]int64
	vtRate   float64 // virtual seconds per wall second
	utilHist map[int][]float64
	active   map[string]bool // firing alert rules

	// Streaming-analysis findings (finding / analysis_partial events).
	findTotal int64
	findByOp  map[string]int64 // per-analysis finding counts (v6 folded in)
	findLog   []string
	partials  map[string]string // latest partial-result line per analysis
}

func newWatchState() *watchState {
	return &watchState{
		busyNS:   make(map[int]int64),
		prevBusy: make(map[int]int64),
		utilHist: make(map[int][]float64),
		active:   make(map[string]bool),
		findByOp: make(map[string]int64),
		partials: make(map[string]string),
	}
}

// ingest folds one JSONL line into the state. Undecodable lines (a torn
// tail mid-write) are skipped: a live view tolerates what a strict reader
// would not.
func (s *watchState) ingest(line []byte) {
	var rec flight.Record
	if err := json.Unmarshal(line, &rec); err != nil || rec.K == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if rec.T > s.lastT {
		s.lastT = rec.T
	}
	if rec.VT > s.maxVT {
		s.maxVT = rec.VT
	}
	switch rec.K {
	case flight.KMeta:
		s.tool = rec.Tool
	case flight.KSnap:
		s.snaps++
	case flight.KSpan:
		s.lastPh = rec.Ph
		switch rec.Ph {
		case flight.PhRound:
			s.rounds++
			s.tasks += rec.N
		case flight.PhWorker:
			s.busyNS[int(rec.ID)] += rec.D
			if int(rec.ID)+1 > s.workers {
				s.workers = int(rec.ID) + 1
			}
		case flight.PhCampaign:
			s.campaign = rec.S
		}
	case flight.KEvent:
		s.lastPh = rec.Ph
		switch rec.Ph {
		case flight.PhEngine:
			if int(rec.N) > s.workers {
				s.workers = int(rec.N)
			}
		case flight.PhAlert:
			s.ingestAlertLocked(&rec)
		case flight.PhFinding:
			s.ingestFindingLocked(&rec)
		case flight.PhAnalysisPartial:
			s.partials[rec.S] = fmt.Sprintf("  %-10s %4d pairs  %4d windows  %4d findings",
				rec.S, rec.N, rec.ID, rec.M)
		}
	case flight.KManifest:
		if rec.Man != nil {
			s.records = rec.Man.Records
			if s.tool == "" {
				s.tool = rec.Man.Tool
			}
		}
		s.done = true
	}
}

func (s *watchState) ingestAlertLocked(rec *flight.Record) {
	sev := "warn"
	if rec.ID >= 1 {
		sev = "crit"
	}
	state := "resolved"
	if rec.N == 1 {
		state = "FIRING"
		s.active[rec.S] = true
	} else {
		delete(s.active, rec.S)
	}
	s.alertsOn = len(s.active)
	entry := fmt.Sprintf("  %-8s [%s] %-18s %s", fmtDays(time.Duration(rec.VT)), sev, rec.S, state)
	s.alertLog = append(s.alertLog, entry)
	if len(s.alertLog) > maxAlertRows {
		s.alertLog = s.alertLog[len(s.alertLog)-maxAlertRows:]
	}
}

// ingestFindingLocked folds one streaming-analysis finding into the feed.
// The finding's analysis name carries a "_v6" suffix for IPv6 timelines;
// the per-analysis tallies fold both protocols together.
func (s *watchState) ingestFindingLocked(rec *flight.Record) {
	name := strings.TrimSuffix(rec.S, "_v6")
	s.findTotal++
	s.findByOp[name]++
	entry := fmt.Sprintf("  %-8s %-12s %d->%d  %+d", fmtDays(time.Duration(rec.VT)), rec.S, rec.N, rec.M, rec.ID)
	s.findLog = append(s.findLog, entry)
	if len(s.findLog) > maxFindingRows {
		s.findLog = s.findLog[len(s.findLog)-maxFindingRows:]
	}
}

// tick computes the per-refresh derived values: virtual-vs-wall rate and
// per-worker utilization fractions, bucketed by record wall offsets so the
// view works identically on live streams and replayed files.
func (s *watchState) tick() {
	s.mu.Lock()
	defer s.mu.Unlock()
	dT := s.lastT - s.prevT
	if dT <= 0 {
		return
	}
	s.vtRate = float64(s.maxVT-s.prevVT) / float64(dT)
	for id, busy := range s.busyNS {
		f := float64(busy-s.prevBusy[id]) / float64(dT)
		if f > 1 {
			f = 1
		}
		if f < 0 {
			f = 0
		}
		hist := append(s.utilHist[id], f)
		if len(hist) > utilWindow {
			hist = hist[len(hist)-utilWindow:]
		}
		s.utilHist[id] = hist
		s.prevBusy[id] = busy
	}
	s.prevT = s.lastT
	s.prevVT = s.maxVT
}

func fmtDays(d time.Duration) string {
	if d >= 24*time.Hour {
		return fmt.Sprintf("%.2fd", d.Hours()/24)
	}
	return d.Round(time.Second).String()
}

// render builds the dashboard block.
func (s *watchState) render() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var lines []string
	tool := s.tool
	if tool == "" {
		tool = "?"
	}
	status := "live"
	if s.done {
		status = "finished"
	}
	head := fmt.Sprintf("%s %s", tool, status)
	if s.campaign != "" {
		head += "  campaign " + s.campaign
	}
	if s.lastPh != "" {
		head += "  phase " + s.lastPh
	}
	lines = append(lines, head)
	rate := ""
	if s.vtRate > 0 {
		rate = fmt.Sprintf("  rate %.0fx", s.vtRate)
	}
	line2 := fmt.Sprintf("vt %s%s  wall %s  rounds %d  tasks %d  snapshots %d",
		fmtDays(time.Duration(s.maxVT)), rate,
		time.Duration(s.lastT).Round(time.Millisecond), s.rounds, s.tasks, s.snaps)
	if s.done {
		line2 += fmt.Sprintf("  records %d", s.records)
	}
	lines = append(lines, line2)

	if len(s.utilHist) > 0 {
		ids := make([]int, 0, len(s.utilHist))
		for id := range s.utilHist {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		lines = append(lines, fmt.Sprintf("workers (%d):", s.workers))
		for i, id := range ids {
			if i >= maxWorkerRows {
				lines = append(lines, fmt.Sprintf("  … %d more workers", len(ids)-maxWorkerRows))
				break
			}
			hist := s.utilHist[id]
			cur := 0.0
			if len(hist) > 0 {
				cur = hist[len(hist)-1]
			}
			lines = append(lines, fmt.Sprintf("  w%-3d %-*s %3.0f%%",
				id, utilWindow, flight.Sparkline(hist, 1), cur*100))
		}
	}

	if len(s.alertLog) > 0 {
		lines = append(lines, fmt.Sprintf("alerts (%d firing):", s.alertsOn))
		lines = append(lines, s.alertLog...)
	} else {
		lines = append(lines, "alerts: none")
	}

	if s.findTotal > 0 || len(s.partials) > 0 {
		lines = append(lines, fmt.Sprintf("findings (%d):", s.findTotal))
		names := make([]string, 0, len(s.partials))
		for name := range s.partials {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			lines = append(lines, s.partials[name])
		}
		lines = append(lines, s.findLog...)
	}
	return lines
}

func (s *watchState) finished() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.done
}

// watch runs the `s2sobs watch` subcommand: follow a growing trace file or
// an ops server's /flight/tail stream and draw a live dashboard. In -once
// mode it ingests what is available now, prints one snapshot, and exits —
// for CI and non-TTY use.
func watch(args []string) error {
	fs := newFlagSet("watch")
	once := fs.Bool("once", false, "render one snapshot of the current state and exit")
	interval := fs.Duration("interval", time.Second, "dashboard refresh interval")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return usage()
	}
	src := fs.Arg(0)

	log := obs.NewLogger("s2sobs", false)
	log.SetOutput(os.Stdout)
	if fi, err := os.Stdout.Stat(); err == nil && fi.Mode()&os.ModeCharDevice != 0 && !*once {
		log.SetANSI(true)
	}

	st := newWatchState()
	lines := make(chan []byte, 256)
	readErr := make(chan error, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		go func() { readErr <- tailHTTP(ctx, src, *once, lines) }()
	} else {
		go func() { readErr <- tailFile(ctx, src, *once, st, lines) }()
	}

	tick := time.NewTicker(*interval)
	defer tick.Stop()
	var ingestDone bool
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				if !ingestDone {
					ingestDone = true
					if err := <-readErr; err != nil {
						return err
					}
				}
				st.tick()
				log.Block(st.render())
				log.EndBlock()
				return nil
			}
			st.ingest(line)
		case <-tick.C:
			if *once {
				continue // once mode renders exactly one final frame
			}
			st.tick()
			log.Block(st.render())
			if st.finished() {
				log.EndBlock()
				// Drain whatever the reader still has, then exit.
				cancel()
				return nil
			}
		}
	}
}

// tailFile streams the trace at path into out. In follow mode it keeps
// reading as the file grows until a manifest line lands; in once mode it
// stops at the current end of file. Torn trailing bytes are passed through
// (ingest skips undecodable lines).
func tailFile(ctx context.Context, path string, once bool, st *watchState, out chan<- []byte) error {
	defer close(out)
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	var partial []byte
	for {
		chunk, err := r.ReadBytes('\n')
		if len(chunk) > 0 {
			partial = append(partial, chunk...)
			if partial[len(partial)-1] == '\n' {
				line := append([]byte(nil), partial...)
				partial = partial[:0]
				select {
				case out <- line:
				case <-ctx.Done():
					return nil
				}
			}
		}
		if err == io.EOF {
			if once || st.finished() {
				return nil
			}
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(200 * time.Millisecond):
			}
			continue
		}
		if err != nil {
			return err
		}
	}
}

// tailHTTP streams an ops server's /flight/tail into out. src may be the
// server root (http://host:port) or the full tail URL. In once mode the
// request asks the server to close the stream after a bounded number of
// lines, so the snapshot terminates on quiet runs too.
func tailHTTP(ctx context.Context, src string, once bool, out chan<- []byte) error {
	defer close(out)
	u, err := url.Parse(src)
	if err != nil {
		return fmt.Errorf("watch: bad URL %q: %v", src, err)
	}
	if !strings.Contains(u.Path, "/flight/tail") {
		u.Path = strings.TrimSuffix(u.Path, "/") + "/flight/tail"
	}
	if once {
		q := u.Query()
		if q.Get("max") == "" {
			q.Set("max", "64")
		}
		u.RawQuery = q.Encode()
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, 15*time.Second)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u.String(), nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("watch: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("watch: %s returned %s", u, resp.Status)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := append([]byte(nil), sc.Bytes()...)
		line = append(line, '\n')
		select {
		case out <- line:
		case <-ctx.Done():
			return nil
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return fmt.Errorf("watch: stream: %v", err)
	}
	return nil
}
