// Command s2sobs inspects flight records written by the other commands'
// -trace flag:
//
//	s2sobs summary RUN.trace         per-phase wall-time breakdown, span
//	                                 histograms, worker-utilization sparkline
//	s2sobs series RUN.trace [MATCH]  metric time series reconstructed from
//	                                 the delta snapshots (MATCH filters
//	                                 metric families by substring)
//	s2sobs diff A.trace B.trace      manifests and phase timings of two
//	                                 runs side by side
//	s2sobs fsck STOREDIR             integrity-check a sharded dataset
//	                                 store (exits non-zero on problems)
//
// The report goes to stdout; any parse error names the offending line.
package main

import (
	"bufio"
	"fmt"
	"os"

	"repro/internal/obs/flight"
	"repro/internal/store"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "s2sobs: %v\n", err)
		os.Exit(1)
	}
}

func usage() error {
	return fmt.Errorf("usage: s2sobs summary RUN.trace | series RUN.trace [MATCH] | diff A.trace B.trace | fsck STOREDIR")
}

func run(args []string) error {
	if len(args) < 2 {
		return usage()
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	switch args[0] {
	case "summary":
		tr, err := flight.ReadFile(args[1])
		if err != nil {
			return err
		}
		flight.Summarize(tr).WriteSummary(w)
	case "series":
		tr, err := flight.ReadFile(args[1])
		if err != nil {
			return err
		}
		match := ""
		if len(args) > 2 {
			match = args[2]
		}
		flight.WriteSeries(w, tr, match)
	case "diff":
		if len(args) < 3 {
			return usage()
		}
		a, err := flight.ReadFile(args[1])
		if err != nil {
			return err
		}
		b, err := flight.ReadFile(args[2])
		if err != nil {
			return err
		}
		flight.WriteDiff(w, a, b, args[1], args[2])
	case "fsck":
		rep, err := store.Verify(args[1])
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s: %s\n", args[1], rep)
		if !rep.OK() {
			w.Flush()
			return fmt.Errorf("store %s failed verification", args[1])
		}
	default:
		return usage()
	}
	return nil
}
