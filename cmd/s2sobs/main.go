// Command s2sobs inspects flight records written by the other commands'
// -trace flag:
//
//	s2sobs summary RUN.trace         per-phase wall-time breakdown, span
//	                                 histograms, worker-utilization sparkline;
//	                                 exits 4 on a truncated/torn trace
//	s2sobs series RUN.trace [MATCH]  metric time series reconstructed from
//	                                 the delta snapshots (MATCH filters
//	                                 metric families by substring)
//	s2sobs diff A.trace B.trace      manifests and phase timings of two
//	                                 runs side by side
//	s2sobs fsck STOREDIR             integrity-check a sharded dataset
//	                                 store (exits non-zero on problems)
//	s2sobs watch SOURCE              live dashboard over a growing trace
//	                                 file or an ops server URL
//	                                 (http://host:port attaches to
//	                                 /flight/tail); -once renders a single
//	                                 snapshot for CI / non-TTY use
//
// The report goes to stdout; any parse error names the offending line.
//
// Exit codes: 0 success, 1 error, 4 truncated trace (summary only).
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/obs/flight"
	"repro/internal/store"
)

// exitTruncated is the exit code for a trace whose tail is torn or whose
// manifest is missing: the data is readable but the run did not finish
// cleanly, which callers scripting summaries must be able to tell apart
// from success (0) and unreadable input (1).
const exitTruncated = 4

// exitError carries a specific exit code out of run.
type exitError struct {
	code int
	err  error
}

func (e *exitError) Error() string { return e.err.Error() }

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "s2sobs: %v\n", err)
		var ee *exitError
		if errors.As(err, &ee) {
			os.Exit(ee.code)
		}
		os.Exit(1)
	}
}

func usage() error {
	return fmt.Errorf("usage: s2sobs summary RUN.trace | series RUN.trace [MATCH] | diff A.trace B.trace | fsck STOREDIR | watch [-once] [-interval D] SOURCE")
}

// newFlagSet returns a subcommand flag set that reports errors instead of
// exiting.
func newFlagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	return fs
}

func run(args []string) error {
	if len(args) < 2 {
		return usage()
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	switch args[0] {
	case "summary":
		tr, tn, err := flight.ReadFileTolerant(args[1])
		if err != nil {
			return err
		}
		flight.Summarize(tr).WriteSummary(w)
		if tn.Truncated() {
			w.Flush()
			var what, repair string
			switch {
			case tn.Torn && tn.NoManifest:
				what = fmt.Sprintf("torn final line (line %d) and no manifest", tn.LineNo)
			case tn.Torn:
				what = fmt.Sprintf("torn final line (line %d)", tn.LineNo)
			default:
				what = "no manifest record"
			}
			if tn.Torn {
				repair = fmt.Sprintf("; if it crashed, drop the torn tail (keep lines 1..%d) to repair it", tn.LineNo-1)
			}
			return &exitError{code: exitTruncated, err: fmt.Errorf(
				"%s is truncated: %s — the summary above covers only the decodable prefix. "+
					"If the run is still going, follow it with `s2sobs watch %s`%s",
				args[1], what, args[1], repair)}
		}
	case "series":
		tr, err := flight.ReadFile(args[1])
		if err != nil {
			return err
		}
		match := ""
		if len(args) > 2 {
			match = args[2]
		}
		flight.WriteSeries(w, tr, match)
	case "diff":
		if len(args) < 3 {
			return usage()
		}
		a, err := flight.ReadFile(args[1])
		if err != nil {
			return err
		}
		b, err := flight.ReadFile(args[2])
		if err != nil {
			return err
		}
		flight.WriteDiff(w, a, b, args[1], args[2])
	case "fsck":
		rep, err := store.Verify(args[1])
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s: %s\n", args[1], rep)
		if !rep.OK() {
			w.Flush()
			return fmt.Errorf("store %s failed verification", args[1])
		}
	case "watch":
		return watch(args[1:])
	default:
		return usage()
	}
	return nil
}
