// Command s2stopo generates a simulated Internet topology and prints a
// summary: tier and relationship mix, IXPs, router-level size, address
// plan, and the CDN platform footprint.
//
// The summary is the product and goes to stdout; diagnostics go to stderr
// (silence them with -q). -metrics writes a telemetry snapshot with the
// generated topology's sizes and the build's wall time, -trace records a
// flight record with one span per build phase (inspect with s2sobs), -ops
// serves the live run state over HTTP (see s2sgen's doc for the
// endpoints), and -cpuprofile/-memprofile/-blockprofile/-mutexprofile
// capture pprof profiles of the run.
//
// Usage:
//
//	s2stopo [-seed N] [-ases N] [-clusters N] [-links] [-platform]
//	        [-metrics PATH] [-trace PATH] [-ops ADDR] [-cpuprofile PATH]
//	        [-memprofile PATH] [-blockprofile PATH] [-mutexprofile PATH] [-q]
//	s2stopo -store DIR [-shards] [-verify]
//
// -store prints the manifest of a sharded dataset store (written by
// s2sgen -store or s2sreport -archive) instead of generating a topology:
// the producing run's provenance (tool, seed, topology digest), the shard
// layout, and the record totals. -shards additionally dumps the per-shard
// table. -verify instead fscks the store — every listed shard is decoded
// and cross-checked against its footer and the manifest — and exits
// non-zero when the store has integrity problems.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/astopo"
	"repro/internal/cdn"
	"repro/internal/geo"
	"repro/internal/itopo"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/ops"
	"repro/internal/store"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "s2stopo: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed       = flag.Int64("seed", 1, "random seed")
		ases       = flag.Int("ases", 300, "number of ASes")
		clusters   = flag.Int("clusters", 400, "number of CDN clusters")
		links      = flag.Bool("links", false, "dump every AS-level link")
		platform   = flag.Bool("platform", false, "dump every cluster")
		storeDir   = flag.String("store", "", "print the manifest of this dataset store and exit")
		shards     = flag.Bool("shards", false, "with -store, dump the per-shard table")
		verify     = flag.Bool("verify", false, "with -store, run an integrity check (fsck) instead of printing the manifest")
		metrics    = flag.String("metrics", "", "write a final metrics snapshot to this path (.json = JSON, else Prometheus text)")
		opsAddr    = flag.String("ops", "", "serve live ops endpoints (/metrics, /healthz, /runz, /flight/tail, /debug/pprof) on this address, e.g. :6060")
		quiet      = flag.Bool("q", false, "suppress progress output on stderr")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this path")
		memprofile = flag.String("memprofile", "", "write a heap profile to this path")
		blockprof  = flag.String("blockprofile", "", "write a goroutine blocking profile to this path")
		mutexprof  = flag.String("mutexprofile", "", "write a mutex contention profile to this path")
		tracePath  = flag.String("trace", "", "write a flight record (JSONL) to this path; inspect with s2sobs")
	)
	flag.Parse()
	if err := obs.ValidateOpsAddr(*opsAddr); err != nil {
		fmt.Fprintf(os.Stderr, "s2stopo: %v\n", err)
		os.Exit(2)
	}
	log := obs.NewLogger("s2stopo", *quiet)

	if *storeDir != "" {
		if *verify {
			return verifyStore(*storeDir)
		}
		return printStore(*storeDir, *shards)
	}

	obs.DumpOnSIGQUIT()
	stopProfiles, err := obs.StartProfiles(obs.Profiles{
		CPU: *cpuprofile, Mem: *memprofile, Block: *blockprof, Mutex: *mutexprof,
	})
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil {
			log.Errorf("profiles: %v", perr)
		}
	}()

	reg := obs.NewRegistry()
	var rec *flight.Recorder
	switch {
	case *tracePath != "":
		rec, err = flight.Create(*tracePath, flight.Options{Tool: "s2stopo", Registry: reg})
		if err != nil {
			return err
		}
	case *opsAddr != "":
		rec = flight.New(io.Discard, flight.Options{Tool: "s2stopo", Registry: reg})
	}
	stopOps, err := ops.StartRun(*opsAddr, "s2stopo", reg, rec, nil, log)
	if err != nil {
		return err
	}
	defer stopOps()

	start := time.Now()
	sp := rec.Begin("as_topology", 0)
	acfg := astopo.DefaultConfig(*seed)
	acfg.NumASes = *ases
	topo, err := astopo.Generate(acfg)
	if err != nil {
		return err
	}
	sp.End(flight.Attrs{N: int64(len(topo.ASes)), M: int64(len(topo.Links))})
	sp = rec.Begin("router_network", 0)
	net, err := itopo.Build(topo, itopo.DefaultConfig(*seed))
	if err != nil {
		return err
	}
	sp.End(flight.Attrs{N: int64(len(net.Routers)), M: int64(len(net.Links))})
	sp = rec.Begin("platform", 0)
	plat, err := cdn.Deploy(net, cdn.DefaultConfig(*seed, *clusters))
	if err != nil {
		return err
	}
	sp.End(flight.Attrs{N: int64(len(plat.Clusters))})
	log.Printf("built topology in %v", time.Since(start).Round(time.Millisecond))

	tiers := map[astopo.Tier]int{}
	dual := 0
	for _, as := range topo.ASes {
		tiers[as.Tier]++
		if topo.DualStack(as.ASN) {
			dual++
		}
	}
	rels := map[astopo.LinkKind]int{}
	v6links := 0
	for _, l := range topo.Links {
		rels[l.Kind]++
		if topo.LinkHasV6(l.A, l.B) {
			v6links++
		}
	}

	fmt.Printf("AS-level topology (seed %d)\n", *seed)
	fmt.Printf("  ASes: %d (tier1 %d, tier2 %d, stub %d, cdn %d); dual-stack %d (%.0f%%)\n",
		len(topo.ASes), tiers[astopo.Tier1], tiers[astopo.Tier2], tiers[astopo.Stub], tiers[astopo.CDN],
		dual, 100*float64(dual)/float64(len(topo.ASes)))
	fmt.Printf("  links: %d (transit %d, private peering %d, IXP peering %d); v6-capable %d\n",
		len(topo.Links), rels[astopo.Transit], rels[astopo.PrivatePeering], rels[astopo.IXPPeering], v6links)
	fmt.Printf("  IXPs: %d\n", len(topo.IXPs))
	for i, ixp := range topo.IXPs {
		fmt.Printf("    %-16s %-14s members %d\n", ixp.Name, geo.Cities[ixp.City].Name, len(topo.IXPMembers(i)))
	}

	internal, xconn := 0, 0
	for _, l := range net.Links {
		if l.Kind == itopo.Internal {
			internal++
		} else {
			xconn++
		}
	}
	fmt.Printf("\nRouter-level network\n")
	fmt.Printf("  routers: %d; links: %d (internal %d, interconnect %d)\n",
		len(net.Routers), len(net.Links), internal, xconn)
	fmt.Printf("  BGP table: %d prefixes; ground-truth table: %d prefixes\n",
		net.BGP.Len(), net.Truth.Len())

	mix := plat.CountryMix()
	fmt.Printf("\nCDN platform\n")
	fmt.Printf("  clusters: %d in %d countries; dual-stack %d\n",
		len(plat.Clusters), len(mix), len(plat.DualStackClusters()))
	fmt.Printf("  top countries: US %.1f%%, DE %.1f%%, JP %.1f%%, AU %.1f%%, IN %.1f%%, CA %.1f%%\n",
		100*mix["US"], 100*mix["DE"], 100*mix["JP"], 100*mix["AU"], 100*mix["IN"], 100*mix["CA"])

	if *links {
		fmt.Printf("\nAS-level links\n")
		for _, l := range topo.Links {
			fmt.Printf("  %-8s %-8s %-4s %-16s %s\n",
				l.A, l.B, l.Rel, l.Kind, geo.Cities[l.City].Name)
		}
	}
	if *platform {
		fmt.Printf("\nClusters\n")
		for _, c := range plat.Clusters {
			v6 := "-"
			if c.DualStack() {
				v6 = c.Server6.String()
			}
			fmt.Printf("  %4d %-14s %-8s v4 %-16s v6 %s\n",
				c.ID, geo.Cities[c.City].Name, c.HostAS, c.Server4, v6)
		}
	}

	if *metrics != "" || *opsAddr != "" {
		reg.Gauge(obs.MetricRunWallSeconds, "wall-clock duration of the run").Set(time.Since(start).Seconds())
		reg.Gauge("s2s_topo_ases", "ASes in the generated topology").Set(float64(len(topo.ASes)))
		reg.Gauge("s2s_topo_as_links", "AS-level links in the generated topology").Set(float64(len(topo.Links)))
		reg.Gauge("s2s_topo_routers", "routers in the generated network").Set(float64(len(net.Routers)))
		reg.Gauge("s2s_topo_router_links", "router-level links in the generated network").Set(float64(len(net.Links)))
		reg.Gauge("s2s_topo_clusters", "CDN clusters deployed").Set(float64(len(plat.Clusters)))
		if *metrics != "" {
			if err := obs.WriteFile(*metrics, reg); err != nil {
				return err
			}
			log.Printf("wrote metrics snapshot to %s", *metrics)
		}
	}
	if rec != nil {
		rec.WriteManifest(flight.Manifest{
			Tool:       "s2stopo",
			Seed:       *seed,
			Flags:      flight.FlagsSet(),
			TopoDigest: topo.Digest(),
		})
		if err := rec.Close(); err != nil {
			return err
		}
		if *tracePath != "" {
			log.Printf("wrote flight record to %s", *tracePath)
		}
	}
	return nil
}

// verifyStore fscks a dataset store and prints the report; a store with
// integrity problems makes the command exit non-zero.
func verifyStore(dir string) error {
	rep, err := store.Verify(dir)
	if err != nil {
		return err
	}
	fmt.Printf("Dataset store %s\n  %s\n", dir, rep)
	if !rep.OK() {
		return fmt.Errorf("store %s failed verification (%d problems)", dir, len(rep.Problems))
	}
	return nil
}

// printStore summarizes a dataset store's manifest: the producing run's
// provenance, the shard layout, and the record totals.
func printStore(dir string, dumpShards bool) error {
	m, err := store.ReadManifest(dir)
	if err != nil {
		return err
	}
	fmt.Printf("Dataset store %s\n", dir)
	fmt.Printf("  produced by: %s (seed %d)\n", orDash(m.Tool), m.Seed)
	fmt.Printf("  topology:    %s\n", orDash(m.TopoDigest))
	compression := m.Compression
	if compression == "" {
		compression = "none"
	}
	fmt.Printf("  layout:      day length %v, %d pair shards, compression %s\n",
		m.DayLength(), m.PairShards, compression)
	min, max := m.Span()
	days := make(map[int]bool)
	var bytes int64
	segments := 0
	for _, e := range m.Shards {
		days[e.Day] = true
		bytes += e.Bytes
		if e.Seq > 0 {
			segments++
		}
	}
	fmt.Printf("  records:     %d (%d traceroutes, %d pings) over days %.1f-%.1f\n",
		m.Records, m.Traceroutes, m.Pings, min.Hours()/24, max.Hours()/24)
	fmt.Printf("  shards:      %d files (%d follow-up segments) across %d virtual days, %d bytes\n",
		len(m.Shards), segments, len(days), bytes)
	if dumpShards {
		fmt.Printf("\n  %-22s %10s %12s %12s %10s\n", "file", "records", "min day", "max day", "bytes")
		for _, e := range m.Shards {
			fmt.Printf("  %-22s %10d %12.2f %12.2f %10d\n",
				e.File, e.Records,
				time.Duration(e.MinAtNS).Hours()/24, time.Duration(e.MaxAtNS).Hours()/24, e.Bytes)
		}
	}
	return nil
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
