package s2s_test

import (
	"fmt"
	"log"
	"time"

	s2s "repro"
)

// ExampleNewStudy builds a small simulated world and issues one ping and
// one Paris traceroute between two measurement servers, then infers the
// AS-level path the way the paper's Section 4 does.
func ExampleNewStudy() {
	study, err := s2s.NewStudy(s2s.StudyConfig{Seed: 42, ASes: 120, Clusters: 80, Days: 7})
	if err != nil {
		log.Fatal(err)
	}
	mesh := study.SelectMesh(2, 42)
	src, dst := mesh[0], mesh[1]

	ping := study.Prober.Ping(src, dst, false, time.Hour)
	tr := study.Prober.Traceroute(src, dst, false, true, time.Hour)
	res := study.NewMapper().Infer(tr)

	fmt.Println("ping lost:", ping.Lost)
	fmt.Println("traceroute complete:", tr.Complete)
	fmt.Println("usable AS path:", res.Usable())
	// Output:
	// ping lost: false
	// traceroute complete: true
	// usable AS path: true
}

// ExampleMustExperiment reproduces Table 1 at a tiny scale and checks the
// shape of the result programmatically.
func ExampleMustExperiment() {
	sc := s2s.TestScale(7)
	sc.LongTermDays = 4
	sc.MeshSize = 5
	env, err := s2s.NewEnv(sc)
	if err != nil {
		log.Fatal(err)
	}
	res, err := s2s.MustExperiment("T1").Run(env)
	if err != nil {
		log.Fatal(err)
	}
	sum := res.Measured["v4_complete_frac"] +
		res.Measured["v4_missingAS_frac"] +
		res.Measured["v4_missingIP_frac"]
	fmt.Printf("fractions sum to one: %v\n", sum > 0.999 && sum < 1.001)
	// Output:
	// fractions sum to one: true
}

// ExampleDiurnalRatio shows the paper's §5.1 detector flagging a daily
// oscillation in a week-long 15-minute RTT series.
func ExampleDiurnalRatio() {
	series := make([]float64, 672) // one week at 15 minutes
	for i := range series {
		hour := float64(i%96) / 4
		series[i] = 80
		if hour >= 18 && hour < 23 {
			series[i] += 25 // busy-hour congestion
		}
	}
	ratio := s2s.DiurnalRatio(series, 15*time.Minute)
	fmt.Println("strong diurnal pattern:", ratio >= 0.3)
	// Output:
	// strong diurnal pattern: true
}

// ExampleDetectLevelShifts finds the Figure 1 level shifts in a noisy RTT
// series with a route-change step.
func ExampleDetectLevelShifts() {
	series := make([]float64, 400)
	for i := range series {
		series[i] = 60
		if i >= 200 {
			series[i] = 165 // route regime change
		}
		series[i] += float64(i%7) * 0.3 // deterministic "noise"
	}
	cuts := s2s.DetectLevelShifts(series, 10, 5)
	fmt.Println("level shifts detected:", len(cuts))
	fmt.Println("near the route change:", cuts[0] >= 195 && cuts[0] <= 205)
	// Output:
	// level shifts detected: 1
	// near the route change: true
}
