package itopo

import (
	"testing"

	"repro/internal/astopo"
	"repro/internal/bgp"
	"repro/internal/ipam"
)

func buildTestNet(t *testing.T, seed int64) *Network {
	t.Helper()
	topo, err := astopo.Generate(astopo.DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	n, err := Build(topo, DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestBuildBasicShape(t *testing.T) {
	n := buildTestNet(t, 1)
	if len(n.Routers) == 0 || len(n.Links) == 0 {
		t.Fatal("empty network")
	}
	// Every AS has at least one router, one per footprint city.
	for _, as := range n.Topo.ASes {
		rs := n.RoutersOf(as.ASN)
		if len(rs) < len(as.Footprint) {
			t.Errorf("%v: %d routers < %d footprint cities", as.ASN, len(rs), len(as.Footprint))
		}
		for _, city := range as.Footprint {
			if _, ok := n.RouterAt(as.ASN, city); !ok {
				t.Errorf("%v missing router at city %d", as.ASN, city)
			}
		}
	}
}

func TestRouterOwnership(t *testing.T) {
	n := buildTestNet(t, 2)
	for _, r := range n.Routers {
		if _, ok := n.Topo.AS(r.Owner); !ok {
			t.Errorf("router %d owned by unknown %v", r.ID, r.Owner)
		}
	}
	// Internal links never cross AS boundaries; interconnects always do.
	for _, l := range n.Links {
		oa, ob := n.Routers[l.A].Owner, n.Routers[l.B].Owner
		if l.Kind == Internal && oa != ob {
			t.Errorf("internal link %d crosses %v-%v", l.ID, oa, ob)
		}
		if l.Kind != Internal && oa == ob {
			t.Errorf("interconnect %d within %v", l.ID, oa)
		}
		if l.Delay <= 0 {
			t.Errorf("link %d has non-positive delay", l.ID)
		}
	}
}

func TestTransitAddressingConvention(t *testing.T) {
	n := buildTestNet(t, 3)
	checked := 0
	for _, l := range n.Links {
		if l.Kind != Transit {
			continue
		}
		// Identify provider and customer sides.
		provider := n.Routers[l.B].Owner
		customer := n.Routers[l.A].Owner
		if l.RelAB == astopo.RelProvider {
			provider, customer = customer, provider
		}
		// Both interface addresses must come from provider-allocated space.
		for i := 0; i < 2; i++ {
			origin, ok := n.Truth.Lookup(l.Addr4[i])
			if !ok {
				t.Errorf("transit link %d addr %v not in Truth table", l.ID, l.Addr4[i])
				continue
			}
			if origin != provider {
				t.Errorf("transit link %d addr %v allocated by %v, want provider %v (customer %v)",
					l.ID, l.Addr4[i], origin, provider, customer)
			}
		}
		// The customer-side interface is on a router operated by the
		// customer even though the address is provider space — the core
		// ambiguity the ownership heuristics must untangle.
		custSide := 0
		if n.Routers[l.B].Owner == customer {
			custSide = 1
		}
		r := l.A
		if custSide == 1 {
			r = l.B
		}
		owner, ok := n.IfaceOwner(l.Addr4[custSide])
		if !ok || owner != customer || n.Routers[r].Owner != customer {
			t.Errorf("transit link %d customer-side ownership broken", l.ID)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no transit links to check")
	}
}

func TestIXPAddressing(t *testing.T) {
	n := buildTestNet(t, 4)
	checked := 0
	for _, l := range n.Links {
		if l.Kind != IXPPeering {
			continue
		}
		if l.IXP < 0 {
			t.Fatalf("IXP link %d has no exchange index", l.ID)
		}
		p := n.IXPPrefix(l.IXP, false)
		for i := 0; i < 2; i++ {
			if !p.Contains(l.Addr4[i]) {
				t.Errorf("IXP link %d addr %v outside fabric %v", l.ID, l.Addr4[i], p)
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no IXP links to check")
	}
}

func TestFabricAddressStablePerMember(t *testing.T) {
	n := buildTestNet(t, 5)
	// A router with several peerings on the same IXP uses one fabric addr.
	type key struct {
		ix int
		r  RouterID
	}
	seen := map[key]map[string]bool{}
	for _, l := range n.Links {
		if l.Kind != IXPPeering {
			continue
		}
		for i, r := range [2]RouterID{l.A, l.B} {
			k := key{l.IXP, r}
			if seen[k] == nil {
				seen[k] = map[string]bool{}
			}
			seen[k][l.Addr4[i].String()] = true
		}
	}
	for k, addrs := range seen {
		if len(addrs) != 1 {
			t.Errorf("router %d has %d fabric addresses on IXP %d", k.r, len(addrs), k.ix)
		}
	}
}

func TestBGPTableVsTruth(t *testing.T) {
	// Hidden infrastructure is probabilistic and rare (the paper's 1.58%
	// missing-AS row); scan a few seeds and require at least one world
	// with unannounced interface space, while Truth must always be total.
	hiddenSomewhere := false
	for seed := int64(6); seed <= 9; seed++ {
		n := buildTestNet(t, seed)
		if n.BGP.Len() == 0 || n.Truth.Len() < n.BGP.Len() {
			t.Fatalf("seed %d: table sizes: bgp=%d truth=%d", seed, n.BGP.Len(), n.Truth.Len())
		}
		for _, l := range n.Links {
			for i := 0; i < 2; i++ {
				a := l.Addr4[i]
				if !a.IsValid() {
					continue
				}
				if _, ok := n.Truth.Lookup(a); !ok {
					t.Errorf("seed %d: addr %v missing from Truth", seed, a)
				}
				if _, ok := n.BGP.Lookup(a); !ok {
					hiddenSomewhere = true
				}
			}
		}
	}
	if !hiddenSomewhere {
		t.Error("expected some interface addresses to be unannounced in BGP across seeds")
	}
}

func TestIntraASConnectivity(t *testing.T) {
	n := buildTestNet(t, 7)
	for _, as := range n.Topo.ASes {
		rs := n.RoutersOf(as.ASN)
		if len(rs) < 2 {
			continue
		}
		// Every router reaches the first router of the AS.
		tree := n.sptTo(rs[0], false)
		for _, r := range rs {
			if _, ok := tree.dist[r]; !ok {
				t.Errorf("%v: router %d cannot reach router %d internally", as.ASN, r, rs[0])
			}
		}
	}
}

func TestResolvePathFollowsASPath(t *testing.T) {
	n := buildTestNet(t, 8)
	routing := bgp.NewRouting(n.Topo, nil, bgp.V4)
	pairs := 0
	ases := n.Topo.ASes
	for i := 0; i < len(ases) && pairs < 25; i += 17 {
		for j := 5; j < len(ases) && pairs < 25; j += 23 {
			src, dst := ases[i].ASN, ases[j].ASN
			if src == dst {
				continue
			}
			asPath := routing.Path(src, dst)
			if asPath == nil {
				continue
			}
			sr := n.RoutersOf(src)[0]
			dr := n.RoutersOf(dst)[0]
			hops, err := n.ResolvePath(sr, dr, asPath, false, 99)
			if err != nil {
				t.Errorf("%v→%v: %v", src, dst, err)
				continue
			}
			// Hop owners must follow asPath order without revisiting.
			ai := 0
			for _, h := range hops {
				owner := n.Routers[h.Router].Owner
				for ai < len(asPath) && asPath[ai] != owner {
					ai++
				}
				if ai == len(asPath) {
					t.Errorf("%v→%v: hop owner %v not on AS path %v", src, dst, owner, asPath)
					break
				}
			}
			// Cumulative delays must be non-decreasing and start at zero.
			if hops[0].Cum != 0 || hops[0].Router != sr || hops[len(hops)-1].Router != dr {
				t.Errorf("%v→%v: bad endpoints", src, dst)
			}
			for k := 1; k < len(hops); k++ {
				if hops[k].Cum < hops[k-1].Cum {
					t.Errorf("%v→%v: delay decreased at hop %d", src, dst, k)
				}
			}
			pairs++
		}
	}
	if pairs == 0 {
		t.Fatal("no pairs resolved")
	}
}

func TestResolvePathDeterministicPerFlow(t *testing.T) {
	n := buildTestNet(t, 9)
	routing := bgp.NewRouting(n.Topo, nil, bgp.V4)
	src := n.Topo.ASes[0].ASN
	dst := n.Topo.ASes[len(n.Topo.ASes)-1].ASN
	asPath := routing.Path(src, dst)
	if asPath == nil {
		t.Skip("pair unreachable")
	}
	sr, dr := n.RoutersOf(src)[0], n.RoutersOf(dst)[0]
	a, err := n.ResolvePath(sr, dr, asPath, false, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.ResolvePath(sr, dr, asPath, false, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("same flow resolved to different path lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same flow resolved differently at hop %d", i)
		}
	}
}

func TestECMPDiamondsCreateFlowDependence(t *testing.T) {
	n := buildTestNet(t, 10)
	routing := bgp.NewRouting(n.Topo, nil, bgp.V4)
	// Search for any pair whose router path differs across flow IDs.
	differ := false
	ases := n.Topo.ASes
search:
	for i := 0; i < len(ases); i += 3 {
		for j := 1; j < len(ases); j += 7 {
			src, dst := ases[i].ASN, ases[j].ASN
			if src == dst {
				continue
			}
			asPath := routing.Path(src, dst)
			if asPath == nil {
				continue
			}
			sr, dr := n.RoutersOf(src)[0], n.RoutersOf(dst)[0]
			base, err := n.ResolvePath(sr, dr, asPath, false, 0)
			if err != nil {
				continue
			}
			for f := uint64(1); f < 16; f++ {
				p, err := n.ResolvePath(sr, dr, asPath, false, f)
				if err != nil {
					continue
				}
				if !samePath(base, p) {
					differ = true
					break search
				}
			}
		}
	}
	if !differ {
		t.Error("no flow-dependent paths found; ECMP diamonds ineffective")
	}
}

func samePath(a, b []PathHop) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Router != b[i].Router {
			return false
		}
	}
	return true
}

func TestAllocCluster(t *testing.T) {
	n := buildTestNet(t, 11)
	cdn := n.Topo.CDNASN
	cdnAS, _ := n.Topo.AS(cdn)
	net4, net6, attach, err := n.AllocCluster(cdn, cdnAS.HomeCity)
	if err != nil {
		t.Fatal(err)
	}
	if net4.Bits() != 28 {
		t.Errorf("cluster v4 = %v, want /28", net4)
	}
	if net6.Bits() != 48 {
		t.Errorf("cluster v6 = %v, want /48", net6)
	}
	if n.Routers[attach].Owner != cdn {
		t.Errorf("attach router owned by %v", n.Routers[attach].Owner)
	}
	// Cluster space maps to the host AS in BGP.
	server, err := ipam.HostSeq(net4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := n.BGP.Lookup(server); !ok || got != cdn {
		t.Errorf("cluster addr maps to %v, %v; want %v", got, ok, cdn)
	}
	// Distinct clusters get distinct subnets.
	net4b, _, _, err := n.AllocCluster(cdn, cdnAS.HomeCity)
	if err != nil {
		t.Fatal(err)
	}
	if net4.Overlaps(net4b) {
		t.Errorf("cluster subnets overlap: %v / %v", net4, net4b)
	}
	if _, _, _, err := n.AllocCluster(99999, 0); err == nil {
		t.Error("unknown AS should error")
	}
}

func TestRouterResponseMix(t *testing.T) {
	n := buildTestNet(t, 12)
	never, flaky, always := 0, 0, 0
	for _, r := range n.Routers {
		switch r.ResponseProb {
		case 0:
			never++
		case 1:
			always++
		default:
			flaky++
			if r.ResponseProb <= 0 || r.ResponseProb >= 1 {
				t.Fatalf("bad flaky probability %v", r.ResponseProb)
			}
		}
	}
	total := float64(len(n.Routers))
	if f := float64(never) / total; f < 0.002 || f > 0.06 {
		t.Errorf("never-responding fraction = %.3f, want ~0.02", f)
	}
	if f := float64(flaky) / total; f < 0.05 || f > 0.25 {
		t.Errorf("flaky fraction = %.3f, want ~0.12", f)
	}
	if always == 0 {
		t.Error("no always-responding routers")
	}
}

func TestBuildDeterministic(t *testing.T) {
	a := buildTestNet(t, 13)
	b := buildTestNet(t, 13)
	if len(a.Routers) != len(b.Routers) || len(a.Links) != len(b.Links) {
		t.Fatalf("sizes differ: %d/%d routers, %d/%d links",
			len(a.Routers), len(b.Routers), len(a.Links), len(b.Links))
	}
	for i := range a.Links {
		la, lb := a.Links[i], b.Links[i]
		if la.A != lb.A || la.B != lb.B || la.Delay != lb.Delay || la.Addr4 != lb.Addr4 {
			t.Fatalf("link %d differs", i)
		}
	}
}

func TestV6OnlyOnDualStackInfrastructure(t *testing.T) {
	n := buildTestNet(t, 14)
	for _, l := range n.Links {
		if !l.V6 {
			continue
		}
		oa, ob := n.Routers[l.A].Owner, n.Routers[l.B].Owner
		if !n.Topo.DualStack(oa) || !n.Topo.DualStack(ob) {
			t.Errorf("v6 link %d between non-dual-stack ASes %v/%v", l.ID, oa, ob)
		}
		if !l.Addr6[0].IsValid() || !l.Addr6[1].IsValid() {
			t.Errorf("v6 link %d missing v6 addresses", l.ID)
		}
	}
}

func TestInterconnectsIndexed(t *testing.T) {
	n := buildTestNet(t, 15)
	for _, al := range n.Topo.Links {
		lids := n.Interconnects(al.A, al.B)
		if len(lids) == 0 {
			t.Errorf("AS link %v-%v has no physical interconnect", al.A, al.B)
			continue
		}
		for _, lid := range lids {
			l := n.Links[lid]
			owners := map[ipam.ASN]bool{n.Routers[l.A].Owner: true, n.Routers[l.B].Owner: true}
			if !owners[al.A] || !owners[al.B] {
				t.Errorf("interconnect %d endpoints %v don't match AS link %v-%v", lid, owners, al.A, al.B)
			}
		}
	}
}

func TestResolvePathErrors(t *testing.T) {
	n := buildTestNet(t, 16)
	sr := n.RoutersOf(n.Topo.ASes[0].ASN)[0]
	dr := n.RoutersOf(n.Topo.ASes[1].ASN)[0]
	if _, err := n.ResolvePath(sr, dr, nil, false, 0); err == nil {
		t.Error("empty AS path should error")
	}
	if _, err := n.ResolvePath(sr, dr, []ipam.ASN{12345}, false, 0); err == nil {
		t.Error("mismatched src AS should error")
	}
	if _, err := n.ResolvePath(sr, dr, []ipam.ASN{n.Topo.ASes[0].ASN}, false, 0); err == nil {
		t.Error("AS path not ending at dst owner should error")
	}
}

func TestIsIXPAddr(t *testing.T) {
	n := buildTestNet(t, 17)
	found := false
	for _, l := range n.Links {
		if l.Kind != IXPPeering {
			continue
		}
		found = true
		ix, ok := n.IsIXPAddr(l.Addr4[0])
		if !ok || ix != l.IXP {
			t.Errorf("IsIXPAddr(%v) = %d, %v; want %d", l.Addr4[0], ix, ok, l.IXP)
		}
	}
	if !found {
		t.Skip("no IXP links under this seed")
	}
	// A cluster/server address is never fabric space.
	net4, _, _, err := n.AllocCluster(n.Topo.CDNASN, n.Topo.ASes[0].Footprint[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := n.IsIXPAddr(net4.Addr()); ok {
		t.Error("cluster space misidentified as IXP fabric")
	}
}

func TestBGPEntriesCoverServersAndAnnouncements(t *testing.T) {
	n := buildTestNet(t, 18)
	entries := n.BGPEntries()
	if len(entries) == 0 {
		t.Fatal("no BGP entries recorded")
	}
	if len(entries) != n.BGP.Len() {
		t.Errorf("entries = %d, table len = %d", len(entries), n.BGP.Len())
	}
	// Every recorded entry must answer lookups with its own origin.
	limit := 50
	if len(entries) < limit {
		limit = len(entries)
	}
	for _, e := range entries[:limit] {
		got, ok := n.BGP.Lookup(e.Prefix.Addr())
		if !ok {
			t.Errorf("entry %v not found in table", e.Prefix)
			continue
		}
		// A more-specific may shadow; accept any successful lookup.
		_ = got
	}
}
