package itopo

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"time"

	"repro/internal/astopo"
	"repro/internal/geo"
	"repro/internal/ipam"
)

// Config parameterizes router-level materialization.
type Config struct {
	Seed int64

	// NeverRespProb is the fraction of routers that never answer probes;
	// FlakyProb the fraction that rate-limit ICMP, answering each probe
	// with FlakyResponseProb. The rest always answer. With typical path
	// lengths this yields the paper's ~28-33% of traceroutes containing at
	// least one unresponsive hop (Table 1).
	NeverRespProb     float64
	FlakyProb         float64
	FlakyResponseProb float64

	// UnannouncedInfraProb is the probability that an AS numbers its
	// infrastructure (internal links, link subnets it supplies) from space
	// it does not announce in BGP — the paper's "missing AS-level data".
	UnannouncedInfraProb float64

	// IXPAnnouncedProb is the probability that an IXP's fabric prefix is
	// announced in BGP (by the IXP's own ASN).
	IXPAnnouncedProb float64

	// LBDiamondProb is the per-AS probability of deploying an equal-cost
	// load-balanced "diamond" in its backbone, which makes classic and
	// Paris traceroute disagree.
	LBDiamondProb float64

	// ExtraXconnectProb adds a second physical interconnect to non-tier-1
	// AS links; T1Parallel is the interconnect count between tier-1s.
	ExtraXconnectProb float64
	T1Parallel        int

	// StretchMin/StretchMax bound the fiber path stretch over the great
	// circle for long-haul links.
	StretchMin, StretchMax float64
}

// DefaultConfig returns the standard build parameters.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:                 seed,
		NeverRespProb:        0.008,
		FlakyProb:            0.055,
		FlakyResponseProb:    0.85,
		UnannouncedInfraProb: 0.008,
		IXPAnnouncedProb:     0.85,
		LBDiamondProb:        0.35,
		ExtraXconnectProb:    0.15,
		T1Parallel:           2,
		StretchMin:           1.1,
		StretchMax:           1.7,
	}
}

// Address plan: disjoint pools for announced AS space, unannounced
// infrastructure space, and IXP fabrics.
const (
	asPool4    = "4.0.0.0/6"      // /16 per AS, announced
	infraPool4 = "80.0.0.0/8"     // /18 per AS that hides its infra
	ixpPool4   = "193.200.0.0/16" // /22 per IXP
	asPool6    = "2400::/12"      // /32 per AS, announced
	infraPool6 = "fd00::/8"       // /40 per AS that hides its infra
	ixpPool6   = "2001:7f8::/32"  // /48 per IXP (real-world IXP space)
	ixpBaseASN = ipam.ASN(59000)  // pseudo-ASNs for IXP fabrics
)

type clusterAlloc struct {
	sub4 *ipam.Subnetter
	sub6 *ipam.Subnetter // nil for v4-only ASes
}

// asPlan carries an AS's address allocators during the build.
type asPlan struct {
	prefix4, prefix6 netip.Prefix
	infra4, infra6   *ipam.Subnetter
}

// Build materializes topo into a router-level network.
func Build(topo *astopo.Topology, cfg Config) (*Network, error) {
	if cfg.T1Parallel < 1 {
		return nil, fmt.Errorf("itopo: T1Parallel must be >= 1")
	}
	if cfg.StretchMin < 1 || cfg.StretchMax < cfg.StretchMin {
		return nil, fmt.Errorf("itopo: invalid stretch bounds [%v, %v]", cfg.StretchMin, cfg.StretchMax)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := &Network{
		Topo:        topo,
		BGP:         ipam.NewTable(),
		Truth:       ipam.NewTable(),
		ifaceOwner:  make(map[netip.Addr]ipam.ASN),
		ifaceRouter: make(map[netip.Addr]RouterID),
		routersOfAS: make(map[ipam.ASN][]RouterID),
		routerAt:    make(map[asCity]RouterID),
		xconnects:   make(map[[2]ipam.ASN][]LinkID),
		clusterSubs: make(map[ipam.ASN]*clusterAlloc),
	}

	pool4 := ipam.MustPool(asPool4, 16)
	poolInfra4 := ipam.MustPool(infraPool4, 18)
	poolIXP4 := ipam.MustPool(ixpPool4, 22)
	pool6 := ipam.MustPool(asPool6, 32)
	poolInfra6 := ipam.MustPool(infraPool6, 40)
	poolIXP6 := ipam.MustPool(ixpPool6, 48)

	// ---- Per-AS address plans, routers, internal backbones. ----
	plans := make(map[ipam.ASN]*asPlan, len(topo.ASes))
	for _, as := range topo.ASes {
		plan, err := n.planAS(topo, as, rng, cfg, pool4, pool6, poolInfra4, poolInfra6)
		if err != nil {
			return nil, err
		}
		plans[as.ASN] = plan
		n.addRouters(as, rng, cfg)
	}
	for _, as := range topo.ASes {
		if err := n.buildBackbone(as, plans[as.ASN], rng, cfg); err != nil {
			return nil, err
		}
	}

	// ---- IXP fabrics. ----
	ixpSub4 := make([]*ipam.Subnetter, len(topo.IXPs))
	ixpSub6 := make([]*ipam.Subnetter, len(topo.IXPs))
	for ix := range topo.IXPs {
		p4, err := poolIXP4.Next()
		if err != nil {
			return nil, err
		}
		p6, err := poolIXP6.Next()
		if err != nil {
			return nil, err
		}
		n.ixpPrefix4 = append(n.ixpPrefix4, p4)
		n.ixpPrefix6 = append(n.ixpPrefix6, p6)
		ixpASN := ixpBaseASN + ipam.ASN(ix)
		if err := n.Truth.Insert(p4, ixpASN); err != nil {
			return nil, err
		}
		if err := n.Truth.Insert(p6, ixpASN); err != nil {
			return nil, err
		}
		if rng.Float64() < cfg.IXPAnnouncedProb {
			if err := n.announce(p4, ixpASN); err != nil {
				return nil, err
			}
			if err := n.announce(p6, ixpASN); err != nil {
				return nil, err
			}
		}
		s4, err := ipam.NewSubnetter(p4, 32)
		if err != nil {
			return nil, err
		}
		// Skip the network address itself.
		if _, err := s4.NextSubnet(); err != nil {
			return nil, err
		}
		s6, err := ipam.NewSubnetter(p6, 128)
		if err != nil {
			return nil, err
		}
		if _, err := s6.NextSubnet(); err != nil {
			return nil, err
		}
		ixpSub4[ix], ixpSub6[ix] = s4, s6
	}
	// Fabric interface addresses are per (IXP, router), shared across all
	// peerings of that member on that fabric.
	fabric4 := make(map[[2]int32]netip.Addr)
	fabric6 := make(map[[2]int32]netip.Addr)

	// ---- Physical interconnects per AS-level link. ----
	for _, al := range topo.Links {
		count := 1
		asA, _ := topo.AS(al.A)
		asB, _ := topo.AS(al.B)
		if asA.Tier == astopo.Tier1 && asB.Tier == astopo.Tier1 {
			count = cfg.T1Parallel
		} else if rng.Float64() < cfg.ExtraXconnectProb {
			count = 2
		}
		shared := astopo.SharedCities(asA, asB)
		for i := 0; i < count; i++ {
			city := al.City
			if i > 0 && len(shared) > 1 {
				city = shared[rng.Intn(len(shared))]
			}
			if err := n.buildInterconnect(topo, al, city, rng, cfg, plans, ixpSub4, ixpSub6, fabric4, fabric6); err != nil {
				return nil, err
			}
		}
	}
	return n, nil
}

// announce inserts a prefix into the BGP view and records the entry.
func (n *Network) announce(p netip.Prefix, origin ipam.ASN) error {
	if err := n.BGP.Insert(p, origin); err != nil {
		return err
	}
	n.bgpEntries = append(n.bgpEntries, ipam.Entry{Prefix: p, Origin: origin})
	return nil
}

// planAS allocates the AS's announced prefixes and infrastructure
// allocators, and registers them in the BGP/Truth tables.
func (n *Network) planAS(topo *astopo.Topology, as *astopo.AS, rng *rand.Rand, cfg Config,
	pool4, pool6, poolInfra4, poolInfra6 *ipam.Pool) (*asPlan, error) {

	plan := &asPlan{}
	p4, err := pool4.Next()
	if err != nil {
		return nil, err
	}
	plan.prefix4 = p4
	if err := n.announce(p4, as.ASN); err != nil {
		return nil, err
	}
	if err := n.Truth.Insert(p4, as.ASN); err != nil {
		return nil, err
	}

	dual := topo.DualStack(as.ASN)
	if dual {
		p6, err := pool6.Next()
		if err != nil {
			return nil, err
		}
		plan.prefix6 = p6
		if err := n.announce(p6, as.ASN); err != nil {
			return nil, err
		}
		if err := n.Truth.Insert(p6, as.ASN); err != nil {
			return nil, err
		}
	}

	hideInfra := rng.Float64() < cfg.UnannouncedInfraProb
	if hideInfra {
		i4, err := poolInfra4.Next()
		if err != nil {
			return nil, err
		}
		if err := n.Truth.Insert(i4, as.ASN); err != nil {
			return nil, err
		}
		if plan.infra4, err = ipam.NewSubnetter(i4, 30); err != nil {
			return nil, err
		}
		if dual {
			i6, err := poolInfra6.Next()
			if err != nil {
				return nil, err
			}
			if err := n.Truth.Insert(i6, as.ASN); err != nil {
				return nil, err
			}
			if plan.infra6, err = ipam.NewSubnetter(i6, 126); err != nil {
				return nil, err
			}
		}
	} else {
		// Infrastructure from the first /18 (first /40) of announced space.
		i4 := netip.PrefixFrom(p4.Addr(), 18)
		if plan.infra4, err = ipam.NewSubnetter(i4, 30); err != nil {
			return nil, err
		}
		if dual {
			i6 := netip.PrefixFrom(plan.prefix6.Addr(), 40)
			if plan.infra6, err = ipam.NewSubnetter(i6, 126); err != nil {
				return nil, err
			}
		}
	}

	// Cluster space: upper half of the announced block, so it never
	// collides with announced-space infrastructure.
	cl4 := upperHalf(p4)
	sub4, err := ipam.NewSubnetter(cl4, 28)
	if err != nil {
		return nil, err
	}
	ca := &clusterAlloc{sub4: sub4}
	if dual {
		cl6 := upperHalf(plan.prefix6)
		if ca.sub6, err = ipam.NewSubnetter(cl6, 48); err != nil {
			return nil, err
		}
	}
	n.clusterSubs[as.ASN] = ca
	return plan, nil
}

// upperHalf returns the second half of a prefix (one bit longer).
func upperHalf(p netip.Prefix) netip.Prefix {
	b := p.Addr().As16()
	bitIdx := p.Bits()
	if p.Addr().Is4() {
		b4 := p.Addr().As4()
		b4[bitIdx/8] |= 1 << (7 - bitIdx%8)
		return netip.PrefixFrom(netip.AddrFrom4(b4), p.Bits()+1)
	}
	b[bitIdx/8] |= 1 << (7 - bitIdx%8)
	return netip.PrefixFrom(netip.AddrFrom16(b), p.Bits()+1)
}

func (n *Network) addRouters(as *astopo.AS, rng *rand.Rand, cfg Config) {
	for _, city := range as.Footprint {
		id := RouterID(len(n.Routers))
		r := &Router{
			ID:           id,
			Owner:        as.ASN,
			City:         city,
			ResponseProb: drawResponseProb(rng, cfg),
		}
		n.Routers = append(n.Routers, r)
		n.adj = append(n.adj, nil)
		n.routersOfAS[as.ASN] = append(n.routersOfAS[as.ASN], id)
		n.routerAt[asCity{as.ASN, city}] = id
	}
}

// buildBackbone wires an AS's routers: minimum spanning tree by distance,
// a few redundancy chords, and optionally an equal-cost diamond.
func (n *Network) buildBackbone(as *astopo.AS, plan *asPlan, rng *rand.Rand, cfg Config) error {
	routers := n.routersOfAS[as.ASN]
	if len(routers) < 2 {
		return nil
	}
	dual := n.Topo.DualStack(as.ASN)

	dist := func(a, b RouterID) float64 {
		return geo.Cities[n.Routers[a].City].DistanceKm(geo.Cities[n.Routers[b].City])
	}

	// Prim's MST with deterministic iteration order and tie-breaks.
	inTree := map[RouterID]bool{routers[0]: true}
	type edge struct{ a, b RouterID }
	var mst []edge
	for len(inTree) < len(routers) {
		best := edge{-1, -1}
		bestD := -1.0
		for _, t := range routers {
			if !inTree[t] {
				continue
			}
			for _, r := range routers {
				if inTree[r] {
					continue
				}
				d := dist(t, r)
				if bestD < 0 || d < bestD ||
					(d == bestD && (r < best.b || (r == best.b && t < best.a))) {
					bestD, best = d, edge{t, r}
				}
			}
		}
		inTree[best.b] = true
		mst = append(mst, best)
	}

	addInternal := func(a, b RouterID) error {
		_, err := n.addInternalLink(a, b, plan, dual, rng, cfg, 1.0)
		return err
	}
	for _, e := range mst {
		if err := addInternal(e.a, e.b); err != nil {
			return err
		}
	}

	// Nearest-neighbor enrichment: every router also links to its two
	// closest siblings. Backbones are locally dense in practice; a bare
	// MST would send intra-AS traffic on continent-scale detours, wrecking
	// the Figure 10b inflation and every RTT baseline.
	for _, a := range routers {
		type nd struct {
			r RouterID
			d float64
		}
		var nds []nd
		for _, b := range routers {
			if a != b {
				nds = append(nds, nd{b, dist(a, b)})
			}
		}
		sort.Slice(nds, func(i, j int) bool {
			if nds[i].d != nds[j].d {
				return nds[i].d < nds[j].d
			}
			return nds[i].r < nds[j].r
		})
		for k := 0; k < 2 && k < len(nds); k++ {
			if !n.linked(a, nds[k].r) {
				if err := addInternal(a, nds[k].r); err != nil {
					return err
				}
			}
		}
	}

	// Redundancy chords: connect a few random non-adjacent pairs.
	chords := len(routers) / 2
	for i := 0; i < chords; i++ {
		a := routers[rng.Intn(len(routers))]
		b := routers[rng.Intn(len(routers))]
		if a == b || n.linked(a, b) {
			continue
		}
		if err := addInternal(a, b); err != nil {
			return err
		}
	}

	// Equal-cost diamond: replace one backbone link u–v by u–x–v / u–y–v
	// with identical costs, creating two router-disjoint shortest paths.
	if len(routers) >= 2 && rng.Float64() < cfg.LBDiamondProb {
		e := mst[rng.Intn(len(mst))]
		if lid, ok := n.findLink(e.a, e.b); ok {
			if err := n.insertDiamond(lid, as, plan, dual, rng, cfg); err != nil {
				return err
			}
		}
	}
	return nil
}

func (n *Network) linked(a, b RouterID) bool {
	_, ok := n.findLink(a, b)
	return ok
}

func (n *Network) findLink(a, b RouterID) (LinkID, bool) {
	for _, lid := range n.adj[a] {
		l := n.Links[lid]
		if l.Other(a) == b {
			return lid, true
		}
	}
	return 0, false
}

// addInternalLink creates an internal link between two routers of the same
// AS, numbering it from the AS's infrastructure space. delayScale scales
// the computed delay (used by diamonds to split a link's cost).
func (n *Network) addInternalLink(a, b RouterID, plan *asPlan, dual bool, rng *rand.Rand, cfg Config, delayScale float64) (*Link, error) {
	ca, cb := geo.Cities[n.Routers[a].City], geo.Cities[n.Routers[b].City]
	stretch := cfg.StretchMin + rng.Float64()*(cfg.StretchMax-cfg.StretchMin)
	delay := geo.FiberDelay(ca.DistanceKm(cb), stretch) + 200*time.Microsecond
	delay = time.Duration(float64(delay) * delayScale)

	l := &Link{
		ID:    LinkID(len(n.Links)),
		A:     a,
		B:     b,
		Kind:  Internal,
		Delay: delay,
		V6:    dual,
		RelAB: astopo.RelNone,
		IXP:   -1,
	}
	_, a4, b4, err := plan.infra4.NextLink()
	if err != nil {
		return nil, err
	}
	l.Addr4 = [2]netip.Addr{a4, b4}
	if dual {
		_, a6, b6, err := plan.infra6.NextLink()
		if err != nil {
			return nil, err
		}
		l.Addr6 = [2]netip.Addr{a6, b6}
	}
	n.registerLink(l)
	return l, nil
}

// insertDiamond replaces link lid (u–v) with two equal-cost two-hop paths
// through fresh core routers colocated with u.
func (n *Network) insertDiamond(lid LinkID, as *astopo.AS, plan *asPlan, dual bool, rng *rand.Rand, cfg Config) error {
	l := n.Links[lid]
	u, v := l.A, l.B
	// Disable the direct link by inflating its delay beyond any alternative
	// (removal would reindex; an unattractive link is equivalent for
	// shortest-path forwarding).
	l.Delay = l.Delay*16 + time.Second

	for i := 0; i < 2; i++ {
		id := RouterID(len(n.Routers))
		r := &Router{
			ID:           id,
			Owner:        as.ASN,
			City:         n.Routers[u].City,
			ResponseProb: drawResponseProb(rng, cfg),
		}
		n.Routers = append(n.Routers, r)
		n.adj = append(n.adj, nil)
		n.routersOfAS[as.ASN] = append(n.routersOfAS[as.ASN], id)
		// Do not override routerAt: the original city router stays primary.

		// u–x: nominal zero distance (same site); x–v: the original span.
		// Identical costs on both arms make them equal-cost paths.
		lx := &Link{
			ID: LinkID(len(n.Links)), A: u, B: id, Kind: Internal,
			Delay: 150 * time.Microsecond, V6: dual, RelAB: astopo.RelNone, IXP: -1,
		}
		if err := n.numberInternal(lx, plan, dual); err != nil {
			return err
		}
		n.registerLink(lx)
		span := &Link{
			ID: LinkID(len(n.Links)), A: id, B: v, Kind: Internal,
			Delay: (l.Delay - time.Second) / 16, V6: dual, RelAB: astopo.RelNone, IXP: -1,
		}
		if err := n.numberInternal(span, plan, dual); err != nil {
			return err
		}
		n.registerLink(span)
	}
	return nil
}

func (n *Network) numberInternal(l *Link, plan *asPlan, dual bool) error {
	_, a4, b4, err := plan.infra4.NextLink()
	if err != nil {
		return err
	}
	l.Addr4 = [2]netip.Addr{a4, b4}
	if dual {
		_, a6, b6, err := plan.infra6.NextLink()
		if err != nil {
			return err
		}
		l.Addr6 = [2]netip.Addr{a6, b6}
	}
	return nil
}

// drawResponseProb assigns a router's probe-response behavior.
func drawResponseProb(rng *rand.Rand, cfg Config) float64 {
	u := rng.Float64()
	switch {
	case u < cfg.NeverRespProb:
		return 0
	case u < cfg.NeverRespProb+cfg.FlakyProb:
		return cfg.FlakyResponseProb
	default:
		return 1
	}
}

// buildInterconnect creates one physical interconnect for AS link al sited
// at the given city, applying the paper's addressing conventions.
func (n *Network) buildInterconnect(topo *astopo.Topology, al astopo.Link, city int,
	rng *rand.Rand, cfg Config, plans map[ipam.ASN]*asPlan,
	ixpSub4, ixpSub6 []*ipam.Subnetter, fabric4, fabric6 map[[2]int32]netip.Addr) error {

	ra, ok := n.nearestRouter(al.A, city)
	if !ok {
		return fmt.Errorf("itopo: %v has no routers", al.A)
	}
	rb, ok := n.nearestRouter(al.B, city)
	if !ok {
		return fmt.Errorf("itopo: %v has no routers", al.B)
	}
	ca, cb := geo.Cities[n.Routers[ra].City], geo.Cities[n.Routers[rb].City]
	var delay time.Duration
	if n.Routers[ra].City == n.Routers[rb].City {
		delay = 200 * time.Microsecond
	} else {
		stretch := cfg.StretchMin + rng.Float64()*(cfg.StretchMax-cfg.StretchMin)
		delay = geo.FiberDelay(ca.DistanceKm(cb), stretch) + 300*time.Microsecond
	}

	v6 := topo.LinkHasV6(al.A, al.B)
	l := &Link{
		ID:    LinkID(len(n.Links)),
		A:     ra,
		B:     rb,
		Delay: delay,
		V6:    v6,
		RelAB: al.Rel,
		IXP:   al.IXP,
	}

	switch al.Kind {
	case astopo.Transit:
		l.Kind = Transit
		// The provider supplies the point-to-point subnet; the customer
		// numbers its interface from provider space (paper §5.3).
		provider := al.B
		if al.Rel == astopo.RelProvider { // A is the provider
			provider = al.A
		}
		plan := plans[provider]
		_, p4a, p4b, err := plan.infra4.NextLink()
		if err != nil {
			return err
		}
		l.Addr4 = [2]netip.Addr{p4a, p4b}
		if v6 {
			_, p6a, p6b, err := plan.infra6.NextLink()
			if err != nil {
				return err
			}
			l.Addr6 = [2]netip.Addr{p6a, p6b}
		}

	case astopo.PrivatePeering:
		l.Kind = PrivatePeering
		// No convention: either side supplies the subnet.
		supplier := al.A
		if rng.Float64() < 0.5 {
			supplier = al.B
		}
		plan := plans[supplier]
		_, p4a, p4b, err := plan.infra4.NextLink()
		if err != nil {
			return err
		}
		l.Addr4 = [2]netip.Addr{p4a, p4b}
		if v6 {
			_, p6a, p6b, err := plan.infra6.NextLink()
			if err != nil {
				return err
			}
			l.Addr6 = [2]netip.Addr{p6a, p6b}
		}

	case astopo.IXPPeering:
		l.Kind = IXPPeering
		a4, err := n.fabricAddr(fabric4, ixpSub4, al.IXP, ra, false)
		if err != nil {
			return err
		}
		b4, err := n.fabricAddr(fabric4, ixpSub4, al.IXP, rb, false)
		if err != nil {
			return err
		}
		l.Addr4 = [2]netip.Addr{a4, b4}
		if v6 {
			a6, err := n.fabricAddr(fabric6, ixpSub6, al.IXP, ra, true)
			if err != nil {
				return err
			}
			b6, err := n.fabricAddr(fabric6, ixpSub6, al.IXP, rb, true)
			if err != nil {
				return err
			}
			l.Addr6 = [2]netip.Addr{a6, b6}
		}
	}

	n.registerLink(l)
	n.xconnects[pairKey(al.A, al.B)] = append(n.xconnects[pairKey(al.A, al.B)], l.ID)
	return nil
}

// fabricAddr returns the (stable) fabric address of a router on an IXP.
func (n *Network) fabricAddr(cache map[[2]int32]netip.Addr, subs []*ipam.Subnetter, ix int, r RouterID, v6 bool) (netip.Addr, error) {
	key := [2]int32{int32(ix), int32(r)}
	if a, ok := cache[key]; ok {
		return a, nil
	}
	p, err := subs[ix].NextSubnet()
	if err != nil {
		return netip.Addr{}, err
	}
	a := p.Addr()
	cache[key] = a
	return a, nil
}

// nearestRouter returns the AS's router at the city, or its closest router.
func (n *Network) nearestRouter(as ipam.ASN, city int) (RouterID, bool) {
	if r, ok := n.routerAt[asCity{as, city}]; ok {
		return r, true
	}
	routers := n.routersOfAS[as]
	if len(routers) == 0 {
		return 0, false
	}
	best := routers[0]
	bestD := geo.Cities[city].DistanceKm(geo.Cities[n.Routers[best].City])
	for _, r := range routers[1:] {
		d := geo.Cities[city].DistanceKm(geo.Cities[n.Routers[r].City])
		if d < bestD {
			best, bestD = r, d
		}
	}
	return best, true
}

// registerLink appends the link and indexes its interface addresses.
func (n *Network) registerLink(l *Link) {
	n.Links = append(n.Links, l)
	n.adj[l.A] = append(n.adj[l.A], l.ID)
	n.adj[l.B] = append(n.adj[l.B], l.ID)
	sides := [2]RouterID{l.A, l.B}
	for i, r := range sides {
		owner := n.Routers[r].Owner
		if l.Addr4[i].IsValid() {
			n.ifaceOwner[l.Addr4[i]] = owner
			n.ifaceRouter[l.Addr4[i]] = r
		}
		if l.Addr6[i].IsValid() {
			n.ifaceOwner[l.Addr6[i]] = owner
			n.ifaceRouter[l.Addr6[i]] = r
		}
	}
}

// AllocCluster carves a cluster subnet (v4 /28 and, for dual-stack hosts, a
// v6 /48) from the host AS's announced space and returns the attachment
// router in the given city (or the AS's nearest router).
func (n *Network) AllocCluster(hostAS ipam.ASN, city int) (net4, net6 netip.Prefix, attach RouterID, err error) {
	ca, ok := n.clusterSubs[hostAS]
	if !ok {
		return netip.Prefix{}, netip.Prefix{}, 0, fmt.Errorf("itopo: unknown AS %v", hostAS)
	}
	attach, ok = n.nearestRouter(hostAS, city)
	if !ok {
		return netip.Prefix{}, netip.Prefix{}, 0, fmt.Errorf("itopo: %v has no routers", hostAS)
	}
	net4, err = ca.sub4.NextSubnet()
	if err != nil {
		return netip.Prefix{}, netip.Prefix{}, 0, err
	}
	if ca.sub6 != nil {
		net6, err = ca.sub6.NextSubnet()
		if err != nil {
			return netip.Prefix{}, netip.Prefix{}, 0, err
		}
	}
	return net4, net6, attach, nil
}
