package itopo

import (
	"math/rand"
	"testing"

	"repro/internal/bgp"
)

// TestResolvePathLoopFreePerFlow asserts that any single flow's resolved
// router path visits each router at most once — per-flow forwarding is
// loop-free even though classic traceroute's stitched view may not be.
func TestResolvePathLoopFreePerFlow(t *testing.T) {
	n := buildTestNet(t, 31)
	routing := bgp.NewRouting(n.Topo, nil, bgp.V4)
	rng := rand.New(rand.NewSource(31))
	ases := n.Topo.ASes
	for trial := 0; trial < 300; trial++ {
		src := ases[rng.Intn(len(ases))].ASN
		dst := ases[rng.Intn(len(ases))].ASN
		if src == dst {
			continue
		}
		asPath := routing.Path(src, dst)
		if asPath == nil {
			continue
		}
		sr := n.RoutersOf(src)[0]
		dr := n.RoutersOf(dst)[0]
		hops, err := n.ResolvePath(sr, dr, asPath, false, rng.Uint64())
		if err != nil {
			t.Fatalf("%v→%v: %v", src, dst, err)
		}
		seen := map[RouterID]bool{}
		for _, h := range hops {
			if seen[h.Router] {
				t.Fatalf("%v→%v: router %d visited twice", src, dst, h.Router)
			}
			seen[h.Router] = true
		}
	}
}

// TestInterfaceAddressesUnique asserts that no two interfaces share an
// address (fabric addresses are per (IXP, router) and may legitimately
// appear on several links of the same router, which still maps to one
// owner).
func TestInterfaceAddressesUnique(t *testing.T) {
	n := buildTestNet(t, 32)
	ownerOf := map[string]RouterID{}
	for _, l := range n.Links {
		for i, r := range [2]RouterID{l.A, l.B} {
			for _, a := range []string{l.Addr4[i].String(), l.Addr6[i].String()} {
				if a == "invalid IP" {
					continue
				}
				if prev, ok := ownerOf[a]; ok && prev != r {
					t.Fatalf("address %s on routers %d and %d", a, prev, r)
				}
				ownerOf[a] = r
			}
		}
	}
}

// TestHotPotatoMonotone asserts egress choice picks a candidate whose
// internal distance is minimal among usable interconnects.
func TestHotPotatoMonotone(t *testing.T) {
	n := buildTestNet(t, 33)
	checked := 0
	for _, al := range n.Topo.Links {
		lids := n.Interconnects(al.A, al.B)
		if len(lids) < 2 {
			continue
		}
		for _, from := range n.RoutersOf(al.A)[:1] {
			lid, side, ok := n.chooseEgress(from, al.A, al.B, false)
			if !ok {
				continue
			}
			chosen := n.sptTo(side, false).dist[from]
			for _, other := range lids {
				if other == lid {
					continue
				}
				l := n.Links[other]
				near := l.A
				if n.Routers[near].Owner != al.A {
					near = l.B
				}
				if d, ok := n.sptTo(near, false).dist[from]; ok && d < chosen {
					t.Fatalf("hot potato picked %v (dist %v) over %v (dist %v)", lid, chosen, other, d)
				}
			}
			checked++
		}
	}
	if checked == 0 {
		t.Skip("no parallel interconnects under this seed")
	}
}
