// Package itopo materializes an astopo.Topology into a router-level
// network: routers at footprint cities, intra-AS backbones, physical
// interconnects with realistic addressing conventions, and per-link
// propagation delays. It also builds the two IP-to-AS views the paper's
// analysis depends on:
//
//   - the BGP view (announced prefixes only), used for AS-path inference —
//     with deliberate gaps (unannounced infrastructure space, IXP fabric
//     space) that produce the paper's "missing AS-level data" rows; and
//   - the ground-truth view (who allocated each address, and which AS
//     operates each router), which the paper did not have and which lets
//     tests validate the ownership heuristics.
//
// Addressing conventions mirror Section 5.3 of the paper: on a c2p link the
// customer numbers its interface from provider-assigned space; on private
// peering either side may supply the subnet; on an IXP both sides use the
// IXP's fabric prefix.
package itopo

import (
	"net/netip"
	"time"

	"repro/internal/astopo"
	"repro/internal/ipam"
)

// RouterID indexes Network.Routers.
type RouterID int32

// LinkID indexes Network.Links.
type LinkID int32

// Router is one router-level node. A router is owned and operated by
// exactly one AS (the ground truth that ownership heuristics try to infer).
type Router struct {
	ID    RouterID
	Owner ipam.ASN
	City  int // geo.Cities index
	// ResponseProb is the probability the router answers a given
	// traceroute probe: 1 for ordinary routers, 0 for routers that never
	// reply, and an intermediate value for routers that rate-limit ICMP —
	// together these produce the paper's ~28-33% of traceroutes with
	// unresponsive hops (Table 1).
	ResponseProb float64
}

// LinkKind classifies a router-level link.
type LinkKind uint8

// Link kinds. The interconnect kinds correspond to astopo link kinds.
const (
	Internal LinkKind = iota
	Transit
	PrivatePeering
	IXPPeering
)

// String returns the link-kind name.
func (k LinkKind) String() string {
	switch k {
	case Internal:
		return "internal"
	case Transit:
		return "transit"
	case PrivatePeering:
		return "private-peering"
	case IXPPeering:
		return "ixp-peering"
	default:
		return "unknown"
	}
}

// Link is an undirected router-level adjacency. Side 0 belongs to router A,
// side 1 to router B.
type Link struct {
	ID    LinkID
	A, B  RouterID
	Kind  LinkKind
	Delay time.Duration // one-way propagation + serialization
	V6    bool          // carries IPv6 in addition to IPv4

	// Interface addresses: Addr4[0]/Addr6[0] on A's interface, [1] on B's.
	Addr4 [2]netip.Addr
	Addr6 [2]netip.Addr

	// RelAB is A's business relationship to B for interconnects
	// (RelNone for internal links).
	RelAB astopo.Relationship
	// IXP is the exchange index for IXPPeering links, else -1.
	IXP int
}

// Other returns the far-side router of the link.
func (l *Link) Other(r RouterID) RouterID {
	if r == l.A {
		return l.B
	}
	return l.A
}

// AddrOn returns the interface address of router r on this link for the
// given family (4 or 6).
func (l *Link) AddrOn(r RouterID, v6 bool) netip.Addr {
	side := 0
	if r == l.B {
		side = 1
	}
	if v6 {
		return l.Addr6[side]
	}
	return l.Addr4[side]
}

// Interconnect reports whether the link crosses an AS boundary.
func (l *Link) Interconnect() bool { return l.Kind != Internal }

// Network is the built router-level network.
type Network struct {
	Topo    *astopo.Topology
	Routers []*Router
	Links   []*Link

	// BGP is the announced-prefix longest-match table (the analysis view).
	BGP *ipam.Table
	// Truth maps every allocated prefix — announced or not — to the AS
	// that allocated it (ground truth, used by tests and oracles).
	Truth *ipam.Table

	// ifaceOwner maps an interface address to the AS operating the router
	// that carries it: ground truth for the ownership heuristics.
	ifaceOwner map[netip.Addr]ipam.ASN
	// ifaceRouter maps an interface address to its router.
	ifaceRouter map[netip.Addr]RouterID

	adj         [][]LinkID                 // router -> incident links
	routersOfAS map[ipam.ASN][]RouterID    // sorted by city
	routerAt    map[asCity]RouterID        // (AS, city) -> router
	xconnects   map[[2]ipam.ASN][]LinkID   // interconnect links per AS pair
	clusterSubs map[ipam.ASN]*clusterAlloc // cluster address allocators

	ixpPrefix4 []netip.Prefix
	ixpPrefix6 []netip.Prefix

	bgpEntries []ipam.Entry

	sptState // forwarding caches (see forward.go)
}

// BGPEntries returns every (prefix, origin) pair announced in the BGP view
// — the rows of a route-collector dump of this network.
func (n *Network) BGPEntries() []ipam.Entry {
	return append([]ipam.Entry(nil), n.bgpEntries...)
}

type asCity struct {
	as   ipam.ASN
	city int
}

// Router returns the router with the given id.
func (n *Network) Router(id RouterID) *Router { return n.Routers[id] }

// LinksAt returns the link ids incident to router r.
func (n *Network) LinksAt(r RouterID) []LinkID { return n.adj[r] }

// RoutersOf returns the routers operated by an AS.
func (n *Network) RoutersOf(as ipam.ASN) []RouterID { return n.routersOfAS[as] }

// RouterAt returns the router an AS operates in the given city.
func (n *Network) RouterAt(as ipam.ASN, city int) (RouterID, bool) {
	r, ok := n.routerAt[asCity{as, city}]
	return r, ok
}

// Interconnects returns the physical interconnect links between two ASes.
func (n *Network) Interconnects(a, b ipam.ASN) []LinkID {
	return n.xconnects[pairKey(a, b)]
}

// IfaceOwner returns the ground-truth operator of the router carrying the
// interface address.
func (n *Network) IfaceOwner(a netip.Addr) (ipam.ASN, bool) {
	as, ok := n.ifaceOwner[a]
	return as, ok
}

// IfaceRouter returns the router carrying the interface address.
func (n *Network) IfaceRouter(a netip.Addr) (RouterID, bool) {
	r, ok := n.ifaceRouter[a]
	return r, ok
}

// IXPPrefix returns the fabric prefix of the ix-th exchange.
func (n *Network) IXPPrefix(ix int, v6 bool) netip.Prefix {
	if v6 {
		return n.ixpPrefix6[ix]
	}
	return n.ixpPrefix4[ix]
}

func pairKey(a, b ipam.ASN) [2]ipam.ASN {
	if a > b {
		a, b = b, a
	}
	return [2]ipam.ASN{a, b}
}

// IsIXPAddr reports whether an address lies on an exchange fabric and
// returns the IXP index.
func (n *Network) IsIXPAddr(a netip.Addr) (int, bool) {
	for ix := range n.ixpPrefix4 {
		if n.ixpPrefix4[ix].Contains(a) || n.ixpPrefix6[ix].Contains(a) {
			return ix, true
		}
	}
	return -1, false
}
