package itopo

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/ipam"
)

// PathHop is one router on a resolved forwarding path.
type PathHop struct {
	Router RouterID
	// InLink is the link the packet arrived on (-1 at the source router).
	// The address a traceroute observes at this hop is the router's
	// interface on InLink.
	InLink LinkID
	// Cum is the cumulative one-way propagation delay from the source.
	Cum time.Duration
}

// sptKey caches shortest-path trees per (target router, family).
type sptKey struct {
	target RouterID
	v6     bool
}

// spt is a shortest-path tree toward a target within one AS's internal
// graph. next[r] lists the equal-cost links out of r toward the target;
// more than one entry means ECMP, resolved per flow.
type spt struct {
	dist map[RouterID]time.Duration
	next map[RouterID][]LinkID
}

var errNoRoute = fmt.Errorf("itopo: no internal route")

// sptTo computes (or returns cached) the intra-AS shortest-path tree toward
// target over the internal links of target's owner.
func (n *Network) sptTo(target RouterID, v6 bool) *spt {
	key := sptKey{target, v6}
	n.sptMu.RLock()
	t, ok := n.sptCache[key]
	n.sptMu.RUnlock()
	if ok {
		return t
	}
	t = n.computeSPT(target, v6)
	n.sptMu.Lock()
	if n.sptCache == nil {
		n.sptCache = make(map[sptKey]*spt)
	}
	n.sptCache[key] = t
	n.sptMu.Unlock()
	return t
}

func (n *Network) computeSPT(target RouterID, v6 bool) *spt {
	owner := n.Routers[target].Owner
	t := &spt{
		dist: make(map[RouterID]time.Duration),
		next: make(map[RouterID][]LinkID),
	}
	t.dist[target] = 0
	// Dijkstra with linear extraction: per-AS graphs are small.
	settled := make(map[RouterID]bool)
	for {
		// Extract the unsettled router with the smallest distance.
		var cur RouterID = -1
		var best time.Duration
		for r, d := range t.dist {
			if settled[r] {
				continue
			}
			if cur < 0 || d < best || (d == best && r < cur) {
				cur, best = r, d
			}
		}
		if cur < 0 {
			break
		}
		settled[cur] = true
		for _, lid := range n.adj[cur] {
			l := n.Links[lid]
			if l.Kind != Internal {
				continue
			}
			if v6 && !l.V6 {
				continue
			}
			o := l.Other(cur)
			if n.Routers[o].Owner != owner {
				continue // defensive; internal links never cross ASes
			}
			nd := best + l.Delay
			if d, ok := t.dist[o]; !ok || nd < d {
				t.dist[o] = nd
				t.next[o] = []LinkID{lid}
			} else if nd == d {
				t.next[o] = append(t.next[o], lid)
			}
		}
	}
	return t
}

// flowHash mixes a flow identifier with a per-router salt to pick among
// equal-cost links (FNV-1a).
func flowHash(flowID uint64, salt RouterID) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	mix(flowID)
	mix(uint64(uint32(salt)))
	return h
}

// walkIntraAS appends the hops from cur to target inside one AS, choosing
// among equal-cost links by flow hash. It returns the final cumulative
// delay.
func (n *Network) walkIntraAS(hops *[]PathHop, cur RouterID, target RouterID, v6 bool, flowID uint64, cum time.Duration) (RouterID, time.Duration, error) {
	if cur == target {
		return cur, cum, nil
	}
	t := n.sptTo(target, v6)
	if _, ok := t.dist[cur]; !ok {
		return cur, cum, errNoRoute
	}
	for cur != target {
		links := t.next[cur]
		if len(links) == 0 {
			return cur, cum, errNoRoute
		}
		lid := links[0]
		if len(links) > 1 {
			lid = links[int(flowHash(flowID, cur)%uint64(len(links)))]
		}
		l := n.Links[lid]
		cur = l.Other(cur)
		cum += l.Delay
		*hops = append(*hops, PathHop{Router: cur, InLink: lid, Cum: cum})
	}
	return cur, cum, nil
}

// ResolvePath expands an AS-level path into the router-level forwarding
// path from src to dst. The flowID feeds ECMP decisions: a fixed flowID
// (Paris traceroute, ping) yields a stable path; varying it per probe
// (classic traceroute) exposes load-balanced alternatives.
//
// Egress selection is hot-potato: within each AS the packet exits at the
// physical interconnect closest (by internal delay) to where it entered.
func (n *Network) ResolvePath(src, dst RouterID, asPath []ipam.ASN, v6 bool, flowID uint64) ([]PathHop, error) {
	hops, err := n.AppendPath(nil, src, dst, asPath, v6, flowID)
	if err != nil {
		return nil, err
	}
	return hops, nil
}

// AppendPath is ResolvePath appending into buf, reusing its capacity —
// the resolve loop's scratch allocation was the hottest in the simulator.
// It always returns the (possibly regrown) slice so a pooling caller can
// recover the capacity even on error; the contents are meaningful only
// when err is nil.
func (n *Network) AppendPath(buf []PathHop, src, dst RouterID, asPath []ipam.ASN, v6 bool, flowID uint64) ([]PathHop, error) {
	if len(asPath) == 0 {
		return buf, fmt.Errorf("itopo: empty AS path")
	}
	if n.Routers[src].Owner != asPath[0] {
		return buf, fmt.Errorf("itopo: src router owned by %v, path starts at %v", n.Routers[src].Owner, asPath[0])
	}
	if n.Routers[dst].Owner != asPath[len(asPath)-1] {
		return buf, fmt.Errorf("itopo: dst router owned by %v, path ends at %v", n.Routers[dst].Owner, asPath[len(asPath)-1])
	}
	hops := append(buf, PathHop{Router: src, InLink: -1, Cum: 0})
	cur := src
	var cum time.Duration
	var err error
	for i := 0; i+1 < len(asPath); i++ {
		from, to := asPath[i], asPath[i+1]
		lid, nearSide, ok := n.chooseEgress(cur, from, to, v6)
		if !ok {
			return hops, fmt.Errorf("itopo: no %s interconnect %v→%v", fam(v6), from, to)
		}
		cur, cum, err = n.walkIntraAS(&hops, cur, nearSide, v6, flowID, cum)
		if err != nil {
			return hops, fmt.Errorf("itopo: within %v: %w", from, err)
		}
		l := n.Links[lid]
		far := l.Other(nearSide)
		cum += l.Delay
		hops = append(hops, PathHop{Router: far, InLink: lid, Cum: cum})
		cur = far
	}
	if _, cum, err = n.walkIntraAS(&hops, cur, dst, v6, flowID, cum); err != nil {
		return hops, fmt.Errorf("itopo: within %v: %w", asPath[len(asPath)-1], err)
	}
	_ = cum
	return hops, nil
}

// chooseEgress picks the hot-potato interconnect from AS `from` to AS `to`
// given the current ingress router.
func (n *Network) chooseEgress(cur RouterID, from, to ipam.ASN, v6 bool) (LinkID, RouterID, bool) {
	cands := n.xconnects[pairKey(from, to)]
	bestLid := LinkID(-1)
	var bestSide RouterID
	var bestDist time.Duration
	for _, lid := range cands {
		l := n.Links[lid]
		if v6 && !l.V6 {
			continue
		}
		near := l.A
		if n.Routers[near].Owner != from {
			near = l.B
		}
		if n.Routers[near].Owner != from {
			continue // defensive
		}
		d, ok := n.sptTo(near, v6).dist[cur]
		if !ok {
			continue
		}
		if bestLid < 0 || d < bestDist || (d == bestDist && lid < bestLid) {
			bestLid, bestSide, bestDist = lid, near, d
		}
	}
	if bestLid < 0 {
		return 0, 0, false
	}
	return bestLid, bestSide, true
}

func fam(v6 bool) string {
	if v6 {
		return "v6"
	}
	return "v4"
}

// sptMu guards sptCache; both live on Network but are declared here to keep
// the forwarding machinery together.
type sptState struct {
	sptMu    sync.RWMutex
	sptCache map[sptKey]*spt
}
