package bgp

import (
	"sync"
	"testing"
	"time"

	"repro/internal/astopo"
)

// TestIncrementalTreesMatchScratch walks every epoch of a churny schedule
// in order (the campaign access pattern, which makes each epoch derive
// incrementally from the previous one) and asserts that every carried or
// recomputed path equals the path a from-scratch Routing computes for the
// same state.
func TestIncrementalTreesMatchScratch(t *testing.T) {
	acfg := astopo.DefaultConfig(21)
	acfg.NumASes = 100
	topo, err := astopo.Generate(acfg)
	if err != nil {
		t.Fatal(err)
	}
	dur := 60 * 24 * time.Hour
	cfg := DefaultDynConfig(21, dur)
	// Compress the failure/flip processes so the window holds many epochs.
	cfg.LinkMTBF /= 40
	cfg.FlipMTBF /= 40
	dyn, err := NewDynamics(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dyn.NumEpochs() < 10 {
		t.Fatalf("schedule too quiet for the test: %d epochs", dyn.NumEpochs())
	}
	ases := topo.ASes
	for _, plane := range []Plane{V4, V6} {
		for epoch := 0; epoch < dyn.NumEpochs(); epoch++ {
			inc := dyn.RoutingAtEpoch(epoch, plane)
			scratch := NewRouting(topo, dyn.states[epoch], plane)
			for s := 0; s < len(ases); s += 7 {
				for d := 0; d < len(ases); d += 11 {
					src, dst := ases[s].ASN, ases[d].ASN
					got := inc.Path(src, dst)
					want := scratch.Path(src, dst)
					if !pathEq(got, want...) {
						t.Fatalf("epoch %d %v %s→%s: incremental %v, scratch %v",
							epoch, plane, src, dst, got, want)
					}
				}
			}
		}
	}
}

// treesEqual compares two destination trees structurally.
func treesEqual(a, b *destTree) bool {
	for i := range a.nextHop {
		ix := int32(i)
		if a.nextHop[i] != b.nextHop[i] || a.kind(ix) != b.kind(ix) || a.plen(ix) != b.plen(ix) {
			return false
		}
	}
	return true
}

// TestIncrementalCarryIsSharp asserts the carry-over is doing real work:
// of the trees that are provably identical across each epoch boundary
// (ground truth from from-scratch routings), the incremental derivation
// must adopt the large majority rather than recompute them.
func TestIncrementalCarryIsSharp(t *testing.T) {
	acfg := astopo.DefaultConfig(22)
	acfg.NumASes = 100
	topo, err := astopo.Generate(acfg)
	if err != nil {
		t.Fatal(err)
	}
	dur := 120 * 24 * time.Hour
	cfg := DefaultDynConfig(22, dur)
	cfg.LinkMTBF /= 20
	dyn, err := NewDynamics(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dyn.NumEpochs() < 3 {
		t.Skip("schedule too quiet")
	}
	forceAll := func(r *Routing) {
		for _, as := range topo.ASes {
			r.Path(topo.ASes[0].ASN, as.ASN)
		}
	}
	forceAll(dyn.RoutingAtEpoch(0, V4))
	carried, unchanged, total := 0, 0, 0
	maxEpoch := dyn.NumEpochs() - 1
	if maxEpoch > 10 {
		maxEpoch = 10
	}
	for epoch := 1; epoch <= maxEpoch; epoch++ {
		prev := NewRouting(topo, dyn.states[epoch-1], V4)
		next := NewRouting(topo, dyn.states[epoch], V4)
		r := dyn.RoutingAtEpoch(epoch, V4)
		for i := range r.slots {
			total++
			if r.cachedTree(i) != nil {
				carried++
			}
			if treesEqual(prev.treeFor(i), next.treeFor(i)) {
				unchanged++
			}
		}
		forceAll(r)
	}
	t.Logf("carried %d of %d unchanged trees (%d total)", carried, unchanged, total)
	if carried == 0 || unchanged == 0 {
		t.Fatalf("degenerate schedule: carried=%d unchanged=%d", carried, unchanged)
	}
	if float64(carried) < 0.7*float64(unchanged) {
		t.Errorf("carry-over adopted %d of %d unchanged trees; the invalidation is too conservative", carried, unchanged)
	}
}

// TestRoutingConcurrentPathSafe hammers one Routing from many goroutines
// (run under -race): per-destination slots must serialize computation
// without a global lock.
func TestRoutingConcurrentPathSafe(t *testing.T) {
	topo, err := astopo.Generate(astopo.DefaultConfig(23))
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouting(topo, nil, V4)
	ases := topo.ASes
	var wg sync.WaitGroup
	results := make([][]int, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lens := make([]int, 0, len(ases))
			for d := 0; d < len(ases); d++ {
				p := r.Path(ases[(w*13)%len(ases)].ASN, ases[d].ASN)
				lens = append(lens, len(p))
			}
			results[w] = lens
		}(w)
	}
	wg.Wait()
	// Same source must see identical paths regardless of racing workers.
	single := NewRouting(topo, nil, V4)
	for w := range results {
		for d := 0; d < len(ases); d++ {
			want := len(single.Path(ases[(w*13)%len(ases)].ASN, ases[d].ASN))
			if results[w][d] != want {
				t.Fatalf("worker %d dst %d: path len %d, want %d", w, d, results[w][d], want)
			}
		}
	}
}
