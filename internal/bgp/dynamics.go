package bgp

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/astopo"
	"repro/internal/ipam"
	"repro/internal/obs"
	"repro/internal/obs/flight"
)

// EventKind enumerates routing events.
type EventKind uint8

// Event kinds.
const (
	LinkDown EventKind = iota // AS-level adjacency fails
	LinkUp                    // adjacency restored
	FlipOn                    // AS flips its tie-break preference (traffic engineering)
	FlipOff                   // flip reverted
)

// String returns the event-kind name.
func (k EventKind) String() string {
	switch k {
	case LinkDown:
		return "link-down"
	case LinkUp:
		return "link-up"
	case FlipOn:
		return "flip-on"
	case FlipOff:
		return "flip-off"
	default:
		return fmt.Sprintf("event(%d)", uint8(k))
	}
}

// Event is one routing event at a virtual-time offset from campaign start.
type Event struct {
	At   time.Duration
	Kind EventKind
	A, B ipam.ASN // link events
	AS   ipam.ASN // flip events
}

// DynConfig parameterizes the event schedule.
type DynConfig struct {
	Seed     int64
	Duration time.Duration

	// LinkMTBF is the mean time between failures of a single AS-level
	// link; OutageMean is the mean outage duration.
	LinkMTBF   time.Duration
	OutageMean time.Duration

	// FlipMTBF is the mean time between tie-break flips per AS;
	// FlipMean is the mean duration of a flip.
	FlipMTBF time.Duration
	FlipMean time.Duration
}

// DefaultDynConfig returns a schedule tuned so that, over the paper's
// 485-day window on the default topology, most server pairs see a handful
// of AS paths (Figure 2) and ~18% see none at all.
func DefaultDynConfig(seed int64, duration time.Duration) DynConfig {
	return DynConfig{
		Seed:       seed,
		Duration:   duration,
		LinkMTBF:   900 * 24 * time.Hour,
		OutageMean: 8 * time.Hour,
		FlipMTBF:   200 * 24 * time.Hour,
		FlipMean:   5 * 24 * time.Hour,
	}
}

// Dynamics owns the event schedule and hands out Routing views for any
// point in virtual time. Routing views are cached per epoch and evicted
// once the clock moves past them (campaigns advance monotonically), keeping
// memory bounded.
type Dynamics struct {
	topo   *astopo.Topology
	g      *graph
	events []Event
	// epochStart[i] is when epoch i begins; epoch 0 begins at 0.
	epochStart []time.Duration
	states     []*State
	// epochEvents[i] are the events that fired at epochStart[i] (empty
	// for epoch 0) — the delta the incremental tree carry-over checks.
	epochEvents [][]Event

	mu          sync.Mutex
	cache       map[int64]*Routing // key: epoch<<1 | plane
	cacheEvict  bool
	lowestEpoch int
	pool        *treePool // recycles destTree arrays retired by eviction

	// Incremental-recomputation telemetry; nil until Instrument.
	obsComputed *obs.Counter
	obsCarried  *obs.Counter
	obsBuild    *obs.Histogram
	obsCompute  *obs.Histogram

	// Flight recorder; nil until Trace.
	rec *flight.Recorder
}

// NewDynamics generates the event schedule for topo under cfg.
func NewDynamics(topo *astopo.Topology, cfg DynConfig) (*Dynamics, error) {
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("bgp: non-positive duration %v", cfg.Duration)
	}
	if cfg.LinkMTBF <= 0 || cfg.OutageMean <= 0 || cfg.FlipMTBF <= 0 || cfg.FlipMean <= 0 {
		return nil, fmt.Errorf("bgp: all rate parameters must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var events []Event

	exp := func(mean time.Duration) time.Duration {
		return time.Duration(rng.ExpFloat64() * float64(mean))
	}

	// Link failure/repair processes.
	for _, l := range topo.Links {
		t := exp(cfg.LinkMTBF)
		for t < cfg.Duration {
			outage := exp(cfg.OutageMean)
			events = append(events, Event{At: t, Kind: LinkDown, A: l.A, B: l.B})
			up := t + outage
			if up < cfg.Duration {
				events = append(events, Event{At: up, Kind: LinkUp, A: l.A, B: l.B})
			}
			t = up + exp(cfg.LinkMTBF)
		}
	}

	// Per-AS tie-break flips. Durations are heavy-tailed: most traffic
	// engineering reverts within days, but some episodes persist for
	// weeks (the multi-week level shifts of the paper's Figure 1a).
	for _, as := range topo.ASes {
		t := exp(cfg.FlipMTBF)
		for t < cfg.Duration {
			d := exp(cfg.FlipMean)
			if rng.Float64() < 0.15 {
				d *= 6
			}
			events = append(events, Event{At: t, Kind: FlipOn, AS: as.ASN})
			off := t + d
			if off < cfg.Duration {
				events = append(events, Event{At: off, Kind: FlipOff, AS: as.ASN})
			}
			t = off + exp(cfg.FlipMTBF)
		}
	}

	sort.Slice(events, func(i, j int) bool {
		if events[i].At != events[j].At {
			return events[i].At < events[j].At
		}
		// Deterministic order for simultaneous events.
		if events[i].Kind != events[j].Kind {
			return events[i].Kind < events[j].Kind
		}
		if events[i].A != events[j].A {
			return events[i].A < events[j].A
		}
		if events[i].B != events[j].B {
			return events[i].B < events[j].B
		}
		return events[i].AS < events[j].AS
	})

	d := &Dynamics{
		topo:       topo,
		g:          newGraph(topo),
		events:     events,
		cache:      make(map[int64]*Routing),
		cacheEvict: true,
		pool:       &treePool{},
	}
	d.buildEpochs()
	return d, nil
}

// buildEpochs folds the event list into per-epoch state snapshots. Events
// sharing a timestamp fold into one epoch.
func (d *Dynamics) buildEpochs() {
	cur := &State{Down: make(map[[2]ipam.ASN]bool), Flipped: make(map[ipam.ASN]bool)}
	d.epochStart = []time.Duration{0}
	d.states = []*State{cur.Clone()}
	d.epochEvents = [][]Event{nil}
	i := 0
	for i < len(d.events) {
		at := d.events[i].At
		var delta []Event
		for i < len(d.events) && d.events[i].At == at {
			ev := d.events[i]
			switch ev.Kind {
			case LinkDown:
				cur.Down[pairKey(ev.A, ev.B)] = true
			case LinkUp:
				delete(cur.Down, pairKey(ev.A, ev.B))
			case FlipOn:
				cur.Flipped[ev.AS] = true
			case FlipOff:
				delete(cur.Flipped, ev.AS)
			}
			delta = append(delta, ev)
			i++
		}
		d.epochStart = append(d.epochStart, at)
		d.states = append(d.states, cur.Clone())
		d.epochEvents = append(d.epochEvents, delta)
	}
}

// EpochEvents returns the events that fired at the start of epoch i
// (empty for epoch 0).
func (d *Dynamics) EpochEvents(i int) []Event { return d.epochEvents[i] }

// NumEpochs returns the number of state epochs (≥ 1).
func (d *Dynamics) NumEpochs() int { return len(d.epochStart) }

// NumEvents returns the number of scheduled events.
func (d *Dynamics) NumEvents() int { return len(d.events) }

// Events returns the schedule (read-only).
func (d *Dynamics) Events() []Event { return d.events }

// EpochAt returns the epoch index in effect at virtual time t.
func (d *Dynamics) EpochAt(t time.Duration) int {
	// Find the last epochStart ≤ t.
	i := sort.Search(len(d.epochStart), func(i int) bool { return d.epochStart[i] > t })
	if i == 0 {
		return 0
	}
	return i - 1
}

// EpochStart returns when epoch i begins.
func (d *Dynamics) EpochStart(i int) time.Duration { return d.epochStart[i] }

// StateAt returns the effective state at time t (read-only).
func (d *Dynamics) StateAt(t time.Duration) *State { return d.states[d.EpochAt(t)] }

// SetEviction controls whether Routing views for epochs earlier than the
// most recently requested one are evicted. Campaigns advance monotonically
// and should leave this on (the default); random-access analyses can turn
// it off.
func (d *Dynamics) SetEviction(on bool) { d.cacheEvict = on }

// RoutingAt returns the (cached) routing view in effect at time t on the
// given plane.
func (d *Dynamics) RoutingAt(t time.Duration, plane Plane) *Routing {
	return d.RoutingAtEpoch(d.EpochAt(t), plane)
}

// Metric names exported by Instrument. The carried:computed ratio is the
// empirical tree carry-over rate of the incremental recomputation.
const (
	MetricTreesComputed     = "s2s_bgp_trees_computed_total"
	MetricTreesCarried      = "s2s_bgp_trees_carried_total"
	MetricEpochBuildSeconds = "s2s_bgp_epoch_build_seconds"
	MetricTreeSeconds       = "s2s_bgp_tree_compute_seconds"
)

// Instrument registers the incremental-recomputation counters in reg:
// destination trees computed from scratch vs carried over across epoch
// boundaries, the time spent constructing each epoch's routing view
// (including the carry-over scan), and the time of each from-scratch tree
// computation. A nil registry is a no-op. Call before handing the
// Dynamics to concurrent probers.
func (d *Dynamics) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.obsComputed = reg.Counter(MetricTreesComputed, "destination trees computed from scratch")
	d.obsCarried = reg.Counter(MetricTreesCarried, "destination trees carried over across an epoch boundary")
	d.obsBuild = reg.Histogram(MetricEpochBuildSeconds, "per-epoch routing-view construction time (carry-over scan included)", obs.DurationBuckets())
	d.obsCompute = reg.Histogram(MetricTreeSeconds, "from-scratch destination-tree computation time", obs.DurationBuckets())
	// Views built before Instrument keep counting too.
	for _, r := range d.cache {
		r.instrument(d.obsComputed, d.obsCarried, d.obsCompute)
	}
}

// Trace attaches a flight recorder: every epoch rebuild becomes a span
// carrying the epoch index, the number of destination trees carried over
// from the previous view, the size of the event delta at the epoch
// boundary, and the plane. A nil recorder is a no-op. Call before handing
// the Dynamics to concurrent probers.
func (d *Dynamics) Trace(rec *flight.Recorder) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.rec = rec
}

// maxCarryGap bounds how many epochs' events the incremental derivation
// folds together before falling back to a from-scratch view: past that,
// nearly every tree is invalidated anyway and the checks are pure cost.
const maxCarryGap = 64

// RoutingAtEpoch returns the (cached) routing view for an epoch index.
// It is safe for concurrent use.
func (d *Dynamics) RoutingAtEpoch(epoch int, plane Plane) *Routing {
	d.mu.Lock()
	defer d.mu.Unlock()
	key := int64(epoch)<<1 | int64(plane)
	if r, ok := d.cache[key]; ok {
		return r
	}
	var t0 time.Time
	if d.obsBuild != nil {
		t0 = time.Now()
	}
	sp := d.rec.Begin(flight.PhEpochBuild, d.epochStart[epoch])
	r, carried := d.buildRoutingLocked(epoch, plane)
	sp.End(flight.Attrs{
		ID: int64(epoch),
		N:  int64(carried),
		M:  int64(len(d.epochEvents[epoch])),
		S:  plane.String(),
	})
	if d.obsBuild != nil {
		d.obsBuild.Observe(time.Since(t0).Seconds())
	}
	if d.cacheEvict && epoch > d.lowestEpoch {
		now := d.epochStart[epoch]
		for k, old := range d.cache {
			if int(k>>1) < epoch {
				old.retireTrees(now)
				delete(d.cache, k)
			}
		}
		d.lowestEpoch = epoch
		d.pool.release(now)
	}
	d.cache[key] = r
	return r
}

// buildRoutingLocked constructs the routing view for an epoch, carrying
// over destination trees from the nearest cached earlier epoch on the
// same plane when the intervening events provably left them unchanged. It
// reports how many trees were adopted.
func (d *Dynamics) buildRoutingLocked(epoch int, plane Plane) (*Routing, int) {
	prevEpoch := -1
	var prev *Routing
	for k, cand := range d.cache {
		if Plane(k&1) != plane {
			continue
		}
		if e := int(k >> 1); e < epoch && e > prevEpoch {
			prevEpoch, prev = e, cand
		}
	}
	r := newRouting(d.g, d.states[epoch], plane, d.pool)
	r.instrument(d.obsComputed, d.obsCarried, d.obsCompute)
	if prev == nil || epoch-prevEpoch > maxCarryGap {
		return r, 0
	}
	var delta []Event
	for e := prevEpoch + 1; e <= epoch; e++ {
		delta = append(delta, d.epochEvents[e]...)
	}
	return r, d.carryTrees(prev, r, delta)
}

// carryTrees copies prev's computed destination trees into next, skipping
// every tree the delta events could have changed:
//
//   - LinkDown(a,b) invalidates exactly the trees routing over (a,b),
//     found via prev's reverse link index (an unselected candidate edge
//     disappearing cannot change any selection);
//   - LinkUp(a,b) invalidates trees where the restored link's candidate
//     route beats or ties an endpoint's current selection (otherwise
//     neither endpoint re-selects and nothing new propagates);
//   - FlipOn/FlipOff(X) invalidates trees where X's selection involved a
//     tie-break (recorded per tree at computation; a flip changes nothing
//     anywhere else, since the choice among equal routes does not alter
//     the preference class or length the AS exports).
//
// Trees untouched by every event are exact for the new epoch and are
// adopted as-is — under the default schedule, the vast majority.
// carryTrees returns the number of adopted trees.
func (d *Dynamics) carryTrees(prev, next *Routing, delta []Event) int {
	g := d.g
	dead := make(map[int32]bool)
	var ups [][2]int32 // restored links, dense indices
	var flips []int32  // flipped ASes, dense indices
	for _, ev := range delta {
		switch ev.Kind {
		case LinkDown:
			ia, oka := g.idx[ev.A]
			ib, okb := g.idx[ev.B]
			if oka && okb {
				for _, dst := range prev.destsUsingLink(int32(ia), int32(ib)) {
					dead[dst] = true
				}
			}
		case LinkUp:
			ia, oka := g.idx[ev.A]
			ib, okb := g.idx[ev.B]
			if oka && okb {
				ups = append(ups, [2]int32{int32(ia), int32(ib)})
			}
		case FlipOn, FlipOff:
			if ix, ok := g.idx[ev.AS]; ok {
				flips = append(flips, int32(ix))
			}
		}
	}
	carried := 0
	for dst := range prev.slots {
		if dead[int32(dst)] {
			continue
		}
		t := prev.cachedTree(dst)
		if t == nil {
			continue
		}
		carry := true
		for _, ix := range flips {
			if t.tied(ix) {
				carry = false
				break
			}
		}
		for _, up := range ups {
			if !carry {
				break
			}
			if next.linkUpAffects(t, up[0], up[1]) {
				carry = false
			}
		}
		if carry {
			next.adopt(dst, t)
			carried++
		}
	}
	return carried
}
