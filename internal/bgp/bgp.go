// Package bgp computes AS-level routes over an astopo.Topology using the
// standard Gao–Rexford policy model, and evolves them over time through an
// event schedule (link failures/repairs, policy shifts). It is the routing
// substrate whose changes the paper's analysis detects and quantifies.
//
// Route selection at each AS, per destination:
//
//  1. prefer routes learned from customers over peers over providers
//     (local preference);
//  2. then the shortest AS path;
//  3. then a deterministic tie-break on next-hop ASN (flippable per AS by a
//     policy event, which models traffic engineering).
//
// Export follows the valley-free rule: routes learned from a customer are
// exported to everyone; routes learned from a peer or provider are exported
// only to customers.
package bgp

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/astopo"
	"repro/internal/intern"
	"repro/internal/ipam"
	"repro/internal/obs"
)

// Plane selects the IPv4 or IPv6 routing plane. The two planes share the
// topology but the v6 plane only contains dual-stack ASes and v6-enabled
// links, so routes (and route changes) differ between planes.
type Plane uint8

// Planes.
const (
	V4 Plane = iota
	V6
)

// String returns "v4" or "v6".
func (p Plane) String() string {
	if p == V6 {
		return "v6"
	}
	return "v4"
}

// routeKind orders route preference classes; lower is better.
type routeKind uint8

const (
	viaCustomer routeKind = iota
	viaPeer
	viaProvider
	viaNone
)

// graph is the dense-index view of an astopo.Topology shared by all Routing
// instances derived from it.
type graph struct {
	topo      *astopo.Topology
	asns      []ipam.ASN // index -> ASN
	idx       map[ipam.ASN]int
	providers [][]int32 // idx -> provider indices (sorted by ASN)
	customers [][]int32
	peers     [][]int32
	dual      []bool            // idx -> dual-stack
	v6link    map[[2]int32]bool // canonical idx pair -> link carries v6
}

func newGraph(t *astopo.Topology) *graph {
	g := &graph{
		topo:   t,
		idx:    make(map[ipam.ASN]int, len(t.ASes)),
		v6link: make(map[[2]int32]bool),
	}
	for i, as := range t.ASes {
		g.asns = append(g.asns, as.ASN)
		g.idx[as.ASN] = i
	}
	n := len(g.asns)
	g.providers = make([][]int32, n)
	g.customers = make([][]int32, n)
	g.peers = make([][]int32, n)
	g.dual = make([]bool, n)
	for i, asn := range g.asns {
		g.dual[i] = t.DualStack(asn)
		for _, nb := range t.Neighbors(asn) {
			j := int32(g.idx[nb])
			switch t.Rel(asn, nb) {
			case astopo.RelCustomer:
				g.providers[i] = append(g.providers[i], j)
			case astopo.RelProvider:
				g.customers[i] = append(g.customers[i], j)
			case astopo.RelPeer:
				g.peers[i] = append(g.peers[i], j)
			}
		}
	}
	for _, l := range t.Links {
		a, b := int32(g.idx[l.A]), int32(g.idx[l.B])
		g.v6link[ipairKey(a, b)] = t.LinkHasV6(l.A, l.B)
	}
	return g
}

func ipairKey(a, b int32) [2]int32 {
	if a > b {
		a, b = b, a
	}
	return [2]int32{a, b}
}

// State is the effective condition of the network during one epoch: which
// AS-level links are down and which ASes have flipped their tie-break.
// The zero value (or nil) is the steady state.
type State struct {
	Down    map[[2]ipam.ASN]bool // canonical (low, high) ASN pairs
	Flipped map[ipam.ASN]bool
}

// Clone returns a deep copy of the state.
func (s *State) Clone() *State {
	c := &State{Down: make(map[[2]ipam.ASN]bool, len(s.Down)), Flipped: make(map[ipam.ASN]bool, len(s.Flipped))}
	for k, v := range s.Down {
		if v {
			c.Down[k] = true
		}
	}
	for k, v := range s.Flipped {
		if v {
			c.Flipped[k] = true
		}
	}
	return c
}

func pairKey(a, b ipam.ASN) [2]ipam.ASN {
	if a > b {
		a, b = b, a
	}
	return [2]ipam.ASN{a, b}
}

// Routing holds the routes for one (state, plane) pair. Destination trees
// are computed lazily and cached. Routing is safe for concurrent use:
// each destination has its own once-style slot, so concurrent Path calls
// for different destinations compute their trees in parallel instead of
// serializing behind one lock.
type Routing struct {
	g       *graph
	plane   Plane
	down    map[[2]int32]bool
	flipped []bool

	slots []treeSlot

	// pool recycles destination-tree backing arrays across epochs; nil for
	// standalone views (NewRouting), which simply allocate.
	pool *treePool

	// paths interns the AS paths this view hands out: every Path call for
	// a pair returns the same canonical slab-backed slice, so a path is
	// stored once per epoch instead of once per call site. Returned paths
	// are shared and must be treated as immutable.
	paths *intern.Seq[ipam.ASN]

	// linkUse is the reverse index from a selected AS-level edge to the
	// destinations whose trees traverse it. Dynamics consults it when an
	// epoch boundary carries a LinkDown: only trees actually routing over
	// the failed link need recomputing.
	linkMu  sync.Mutex
	linkUse map[[2]int32][]int32

	// Telemetry shared with the owning Dynamics; nil when uninstrumented.
	obsComputed *obs.Counter
	obsCarried  *obs.Counter
	obsCompute  *obs.Histogram
}

// instrument attaches the owning Dynamics' counters. Must not race with
// concurrent tree computation: call before probing starts.
func (r *Routing) instrument(computed, carried *obs.Counter, compute *obs.Histogram) {
	r.obsComputed = computed
	r.obsCarried = carried
	r.obsCompute = compute
}

// treeSlot lazily holds one destination tree. The pointer is published
// atomically; the mutex only serializes the (single) computation per
// destination.
type treeSlot struct {
	mu sync.Mutex
	t  atomic.Pointer[destTree]
}

// NewRouting returns the routing view of topo under state (nil for the
// steady state) on the given plane. For repeated use across many states
// prefer Dynamics, which shares the dense graph.
func NewRouting(topo *astopo.Topology, state *State, plane Plane) *Routing {
	return newRouting(newGraph(topo), state, plane, nil)
}

func newRouting(g *graph, state *State, plane Plane, pool *treePool) *Routing {
	r := &Routing{
		g:       g,
		plane:   plane,
		down:    make(map[[2]int32]bool),
		flipped: make([]bool, len(g.asns)),
		slots:   make([]treeSlot, len(g.asns)),
		linkUse: make(map[[2]int32][]int32),
		pool:    pool,
		paths:   intern.NewSeq[ipam.ASN](8, hashASN),
	}
	if state != nil {
		for k, v := range state.Down {
			if !v {
				continue
			}
			ia, oka := g.idx[k[0]]
			ib, okb := g.idx[k[1]]
			if oka && okb {
				r.down[ipairKey(int32(ia), int32(ib))] = true
			}
		}
		for asn, v := range state.Flipped {
			if i, ok := g.idx[asn]; ok && v {
				r.flipped[i] = true
			}
		}
	}
	return r
}

// destTree is the per-destination routing tree. kind, plen and the tied
// bit are packed into one uint32 per AS (meta), halving the per-tree
// footprint vs separate arrays and keeping the three fields the selection
// loop reads together on one cache line.
//
// meta word layout: bits 0..23 plen | bits 24..25 kind | bit 26 tied.
// The tied bit records that the AS's selection involved a tie-break
// comparison: only those selections can change when the AS flips its
// preference, which is what lets Dynamics carry unaffected trees across
// flip events.
type destTree struct {
	nextHop []int32  // -1 when no route
	meta    []uint32 // packed plen/kind/tied, see above

	// refs counts the Routing views holding this tree (1 on compute, +1
	// per adopt). Dynamics decrements on eviction and recycles the backing
	// arrays once no view references the tree.
	refs atomic.Int32
}

const (
	metaPlenMask  = 1<<24 - 1
	metaKindShift = 24
	metaTiedBit   = 1 << 26
	metaNone      = uint32(viaNone) << metaKindShift
)

func (t *destTree) kind(as int32) routeKind { return routeKind(t.meta[as] >> metaKindShift & 3) }
func (t *destTree) plen(as int32) int32     { return int32(t.meta[as] & metaPlenMask) }
func (t *destTree) tied(as int32) bool      { return t.meta[as]&metaTiedBit != 0 }

func hashASN(a ipam.ASN) uint64 { return uint64(a) * 0x9e3779b97f4a7c15 }

// pathScratch pools the candidate-path buffer Path fills before interning.
var pathScratch = sync.Pool{New: func() any {
	b := make([]ipam.ASN, 0, 64)
	return &b
}}

// Path returns the selected AS path from src to dst, inclusive of both. It
// returns nil when dst is unreachable from src on this plane.
//
// The returned slice is canonical for this routing view — repeated calls
// for the same pair (and distinct pairs sharing a path) return the same
// interned backing storage. Callers must not mutate it.
func (r *Routing) Path(src, dst ipam.ASN) []ipam.ASN {
	si, ok := r.g.idx[src]
	if !ok {
		return nil
	}
	di, ok := r.g.idx[dst]
	if !ok {
		return nil
	}
	bufp := pathScratch.Get().(*[]ipam.ASN)
	buf := (*bufp)[:0]
	if src == dst {
		buf = append(buf, src)
	} else {
		tree := r.treeFor(di)
		if tree.kind(int32(si)) == viaNone {
			pathScratch.Put(bufp)
			return nil
		}
		// The walk visits plen(si)+1 ASes; size the buffer once from the
		// tree depth instead of growing by repeated append.
		if need := int(tree.plen(int32(si))) + 1; cap(buf) < need {
			buf = make([]ipam.ASN, 0, need)
		}
		buf = append(buf, src)
		cur := int32(si)
		for int(cur) != di {
			nh := tree.nextHop[cur]
			if nh < 0 {
				*bufp = buf[:0]
				pathScratch.Put(bufp)
				return nil
			}
			buf = append(buf, r.g.asns[nh])
			cur = nh
			if len(buf) > len(r.g.asns) {
				*bufp = buf[:0]
				pathScratch.Put(bufp)
				return nil // defensive; selection is loop-free by construction
			}
		}
	}
	path, _ := r.paths.Intern(buf)
	*bufp = buf[:0]
	pathScratch.Put(bufp)
	return path
}

// NextHop returns cur's selected next hop toward dst.
func (r *Routing) NextHop(cur, dst ipam.ASN) (ipam.ASN, bool) {
	ci, ok := r.g.idx[cur]
	if !ok {
		return 0, false
	}
	di, ok := r.g.idx[dst]
	if !ok || cur == dst {
		return 0, false
	}
	nh := r.treeFor(di).nextHop[ci]
	if nh < 0 {
		return 0, false
	}
	return r.g.asns[nh], true
}

// Reachable reports whether src has any route to dst.
func (r *Routing) Reachable(src, dst ipam.ASN) bool {
	if src == dst {
		return true
	}
	si, ok := r.g.idx[src]
	if !ok {
		return false
	}
	di, ok := r.g.idx[dst]
	if !ok {
		return false
	}
	return r.treeFor(di).kind(int32(si)) != viaNone
}

func (r *Routing) treeFor(dst int) *destTree {
	s := &r.slots[dst]
	if t := s.t.Load(); t != nil {
		return t
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if t := s.t.Load(); t != nil {
		return t
	}
	var t0 time.Time
	if r.obsCompute != nil {
		t0 = time.Now()
	}
	t := r.computeTree(dst)
	if r.obsCompute != nil {
		r.obsCompute.Observe(time.Since(t0).Seconds())
	}
	r.obsComputed.Inc()
	t.refs.Store(1)
	r.indexTree(dst, t)
	s.t.Store(t)
	return t
}

// indexTree records the selected edges of a freshly computed (or adopted)
// tree in the reverse index.
func (r *Routing) indexTree(dst int, t *destTree) {
	r.linkMu.Lock()
	defer r.linkMu.Unlock()
	for as, nh := range t.nextHop {
		if nh < 0 || int32(as) == nh {
			continue
		}
		k := ipairKey(int32(as), nh)
		r.linkUse[k] = append(r.linkUse[k], int32(dst))
	}
}

// adopt installs a tree computed by an earlier-epoch Routing whose routes
// the epoch's events provably did not change.
func (r *Routing) adopt(dst int, t *destTree) {
	r.obsCarried.Inc()
	t.refs.Add(1)
	r.indexTree(dst, t)
	r.slots[dst].t.Store(t)
}

// retireTrees drops this view's reference on every computed tree, handing
// arrays nobody references to the pool for recycling at virtual time now.
// Called by Dynamics when the view is evicted from the epoch cache.
func (r *Routing) retireTrees(now time.Duration) {
	if r.pool == nil {
		return
	}
	for i := range r.slots {
		if t := r.slots[i].t.Load(); t != nil && t.refs.Add(-1) == 0 {
			r.pool.retire(t, now)
		}
	}
}

// cachedTree returns the destination tree if it has been computed.
func (r *Routing) cachedTree(dst int) *destTree {
	return r.slots[dst].t.Load()
}

// destsUsingLink returns the destinations whose computed trees route over
// the AS-level edge (a, b), in dense graph indices.
func (r *Routing) destsUsingLink(a, b int32) []int32 {
	r.linkMu.Lock()
	defer r.linkMu.Unlock()
	return r.linkUse[ipairKey(a, b)]
}

// relKind returns the preference class a route learned by a from neighbor
// b falls into (b a customer of a → viaCustomer, and so on), or viaNone
// when not adjacent.
func (g *graph) relKind(a, b int32) routeKind {
	for _, c := range g.customers[a] {
		if c == b {
			return viaCustomer
		}
	}
	for _, p := range g.peers[a] {
		if p == b {
			return viaPeer
		}
	}
	for _, p := range g.providers[a] {
		if p == b {
			return viaProvider
		}
	}
	return viaNone
}

// linkUpAffects reports whether restoring the AS-level edge (a, b) could
// change tree t under this routing's state: the link only matters if the
// candidate route it offers at an endpoint beats or ties that endpoint's
// current selection — otherwise neither endpoint re-selects and nothing
// new propagates.
func (r *Routing) linkUpAffects(t *destTree, a, b int32) bool {
	if !r.usable(a, b) {
		return false // re-downed, or fails the plane's criteria
	}
	return r.endpointGains(t, a, b) || r.endpointGains(t, b, a)
}

// endpointGains reports whether x could prefer (or tie with) a candidate
// route via its neighbor y over x's current selection in t.
func (r *Routing) endpointGains(t *destTree, x, y int32) bool {
	if t.kind(y) == viaNone {
		return false // y has nothing to offer
	}
	rel := r.g.relKind(x, y)
	if rel == viaNone {
		return false
	}
	// Valley-free export: y offers its route to x only when the route is
	// customer-learned or x is y's customer (y is x's provider).
	if t.kind(y) != viaCustomer && rel != viaProvider {
		return false
	}
	candLen := t.plen(y) + 1
	if t.kind(x) == viaNone {
		return true
	}
	if rel != t.kind(x) {
		return rel < t.kind(x)
	}
	if candLen != t.plen(x) {
		return candLen < t.plen(x)
	}
	return true // equal class and length: the tie-break could switch
}

func (r *Routing) usable(a, b int32) bool {
	if r.plane == V6 {
		if !r.g.dual[a] || !r.g.dual[b] || !r.g.v6link[ipairKey(a, b)] {
			return false
		}
	}
	return !r.down[ipairKey(a, b)]
}

// newTree returns a destTree with n-AS backing arrays, reusing recycled
// arrays from the pool when available, initialized to the no-route state.
func (r *Routing) newTree(n int) *destTree {
	tree := &destTree{}
	if r.pool != nil {
		tree.nextHop, tree.meta = r.pool.get(n)
	}
	if tree.nextHop == nil {
		tree.nextHop = make([]int32, n)
		tree.meta = make([]uint32, n)
	}
	for i := range tree.nextHop {
		tree.nextHop[i] = -1
		tree.meta[i] = metaNone
	}
	return tree
}

// computeTree runs the three-stage Gao–Rexford propagation for one
// destination.
func (r *Routing) computeTree(dst int) *destTree {
	g := r.g
	n := len(g.asns)
	tree := r.newTree(n)
	if r.plane == V6 && !g.dual[dst] {
		return tree
	}

	// better reports whether (k, l, via) beats the current route at as.
	// The v6 plane inverts the tie-break for roughly half the ASes
	// (deterministically, by ASN hash): operators commonly engineer IPv6
	// independently, so equal-cost choices differ across protocols even on
	// shared infrastructure — the source of the paper's §6 observation
	// that v4 and v6 paths frequently disagree.
	better := func(as int32, k routeKind, l int32, via int32) bool {
		m := tree.meta[as]
		ck := routeKind(m >> metaKindShift & 3)
		if k != ck {
			return k < ck
		}
		cl := int32(m & metaPlenMask)
		if l != cl {
			return l < cl
		}
		cur := tree.nextHop[as]
		if cur < 0 {
			return true
		}
		tree.meta[as] = m | metaTiedBit
		flip := r.flipped[as]
		if r.plane == V6 && v6TieBias(g.asns[as]) {
			flip = !flip
		}
		if flip {
			return g.asns[via] > g.asns[cur]
		}
		return g.asns[via] < g.asns[cur]
	}
	set := func(as int32, k routeKind, l int32, via int32) {
		tree.meta[as] = tree.meta[as]&metaTiedBit | uint32(k)<<metaKindShift | uint32(l)
		tree.nextHop[as] = via
	}

	// Stage 1: customer routes propagate uphill, BFS by path length.
	set(int32(dst), viaCustomer, 0, int32(dst))
	frontier := []int32{int32(dst)}
	for level := int32(1); len(frontier) > 0; level++ {
		var next []int32
		for _, y := range frontier {
			for _, x := range g.providers[y] {
				if !r.usable(x, y) {
					continue
				}
				if tree.kind(x) == viaCustomer && tree.plen(x) < level {
					continue
				}
				if better(x, viaCustomer, level, y) {
					if tree.kind(x) != viaCustomer {
						next = append(next, x)
					}
					set(x, viaCustomer, level, y)
				}
			}
		}
		frontier = dedupInt32(next)
	}

	// Stage 2: one peer edge on top of a customer route. Snapshot the
	// customer-routed set first so peer routes never chain.
	var custRouted []int32
	for i := int32(0); i < int32(n); i++ {
		if tree.kind(i) == viaCustomer {
			custRouted = append(custRouted, i)
		}
	}
	for _, y := range custRouted {
		for _, x := range g.peers[y] {
			if !r.usable(x, y) {
				continue
			}
			if better(x, viaPeer, tree.plen(y)+1, y) {
				set(x, viaPeer, tree.plen(y)+1, y)
			}
		}
	}

	// Stage 3: provider routes chain downhill (Dijkstra on path length).
	type item struct {
		as int32
		l  int32
	}
	var queue []item
	for i := int32(0); i < int32(n); i++ {
		if tree.kind(i) != viaNone {
			queue = append(queue, item{i, tree.plen(i)})
		}
	}
	for len(queue) > 0 {
		mi := 0
		for i := 1; i < len(queue); i++ {
			if queue[i].l < queue[mi].l ||
				(queue[i].l == queue[mi].l && g.asns[queue[i].as] < g.asns[queue[mi].as]) {
				mi = i
			}
		}
		it := queue[mi]
		queue[mi] = queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if it.l > tree.plen(it.as) {
			continue // stale
		}
		for _, c := range g.customers[it.as] {
			if !r.usable(c, it.as) {
				continue
			}
			nl := tree.plen(it.as) + 1
			if better(c, viaProvider, nl, it.as) {
				set(c, viaProvider, nl, it.as)
				queue = append(queue, item{c, nl})
			}
		}
	}
	return tree
}

// v6TieBias reports whether an AS prefers the opposite tie-break order on
// the IPv6 plane (a stable per-AS coin; roughly one AS in eight, so v4 and
// v6 paths differ for a sizable minority of pairs, as in §6).
func v6TieBias(asn ipam.ASN) bool {
	h := uint32(asn) * 2654435761
	return h&7 == 0
}

func dedupInt32(in []int32) []int32 {
	if len(in) < 2 {
		return in
	}
	sort.Slice(in, func(i, j int) bool { return in[i] < in[j] })
	out := in[:1]
	for _, a := range in[1:] {
		if a != out[len(out)-1] {
			out = append(out, a)
		}
	}
	return out
}
