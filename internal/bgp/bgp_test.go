package bgp

import (
	"testing"
	"time"

	"repro/internal/astopo"
	"repro/internal/ipam"
)

// diamond builds the classic policy-routing test graph:
//
//	   T1a --- T1b        (p2p clique)
//	  /    \  /    \
//	T2a    T2b    T2c     (customers of tier-1s)
//	 |    /    \    |
//	S1          S2        (stubs)
//
// plus a peer edge T2a--T2b.
func diamond(t *testing.T) *astopo.Topology {
	t.Helper()
	b := astopo.NewBuilder().
		AS(10, astopo.Tier1, "T1a", 0).
		AS(11, astopo.Tier1, "T1b", 1).
		AS(100, astopo.Tier2, "T2a", 2).
		AS(101, astopo.Tier2, "T2b", 3).
		AS(102, astopo.Tier2, "T2c", 4).
		AS(200, astopo.Stub, "S1", 5).
		AS(201, astopo.Stub, "S2", 6).
		Link(10, 11, astopo.RelPeer, astopo.PrivatePeering, 0).
		Link(100, 10, astopo.RelCustomer, astopo.Transit, 0).
		Link(101, 10, astopo.RelCustomer, astopo.Transit, 0).
		Link(101, 11, astopo.RelCustomer, astopo.Transit, 1).
		Link(102, 11, astopo.RelCustomer, astopo.Transit, 1).
		Link(100, 101, astopo.RelPeer, astopo.PrivatePeering, 2).
		Link(200, 100, astopo.RelCustomer, astopo.Transit, 2).
		Link(200, 101, astopo.RelCustomer, astopo.Transit, 3).
		Link(201, 101, astopo.RelCustomer, astopo.Transit, 3).
		Link(201, 102, astopo.RelCustomer, astopo.Transit, 4)
	topo, err := b.Build(true)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func pathEq(got []ipam.ASN, want ...ipam.ASN) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

func TestCustomerRoutePreferred(t *testing.T) {
	topo := diamond(t)
	r := NewRouting(topo, nil, V4)
	// S1 → S2: both are customers of T2b (101); the all-customer valley-free
	// route S1→101→S2 must win over anything through tier-1.
	got := r.Path(200, 201)
	if !pathEq(got, 200, 101, 201) {
		t.Errorf("S1→S2 path = %v, want [200 101 201]", got)
	}
}

func TestPeerRouteBeatsProvider(t *testing.T) {
	topo := diamond(t)
	r := NewRouting(topo, nil, V4)
	// T2a → S2: T2a's options: via peer T2b (customer route to S2), or via
	// provider T1a. Peer must win.
	got := r.Path(100, 201)
	if !pathEq(got, 100, 101, 201) {
		t.Errorf("T2a→S2 = %v, want [100 101 201] (peer route)", got)
	}
}

func TestProviderRouteAsLastResort(t *testing.T) {
	topo := diamond(t)
	r := NewRouting(topo, nil, V4)
	// T2a → T2c: no shared customer, no direct peering. Route must climb to
	// tier-1: 100→10→11→102 (valley-free through the clique).
	got := r.Path(100, 102)
	if !pathEq(got, 100, 10, 11, 102) {
		t.Errorf("T2a→T2c = %v, want [100 10 11 102]", got)
	}
}

func TestValleyFreeNoPeerChaining(t *testing.T) {
	topo := diamond(t)
	r := NewRouting(topo, nil, V4)
	// Every path must be valley-free: once it goes down (p2c) or sideways
	// (p2p) it can never go up (c2p) or sideways again.
	for _, src := range topo.ASes {
		for _, dst := range topo.ASes {
			p := r.Path(src.ASN, dst.ASN)
			if p == nil {
				t.Errorf("%v → %v unreachable", src.ASN, dst.ASN)
				continue
			}
			assertValleyFree(t, topo, p)
		}
	}
}

func assertValleyFree(t *testing.T, topo *astopo.Topology, p []ipam.ASN) {
	t.Helper()
	// state: 0 = climbing, 1 = descended/peered
	state := 0
	for i := 0; i+1 < len(p); i++ {
		rel := topo.Rel(p[i], p[i+1])
		switch rel {
		case astopo.RelCustomer: // going up
			if state == 1 {
				t.Errorf("path %v has a valley at %v→%v", p, p[i], p[i+1])
				return
			}
		case astopo.RelPeer:
			if state == 1 {
				t.Errorf("path %v has a second lateral move at %v→%v", p, p[i], p[i+1])
				return
			}
			state = 1
		case astopo.RelProvider:
			state = 1
		default:
			t.Errorf("path %v uses non-adjacent hop %v→%v", p, p[i], p[i+1])
			return
		}
	}
}

func TestSelfPath(t *testing.T) {
	topo := diamond(t)
	r := NewRouting(topo, nil, V4)
	if got := r.Path(200, 200); !pathEq(got, 200) {
		t.Errorf("self path = %v", got)
	}
	if !r.Reachable(200, 200) {
		t.Error("self should be reachable")
	}
}

func TestUnknownASN(t *testing.T) {
	topo := diamond(t)
	r := NewRouting(topo, nil, V4)
	if p := r.Path(9999, 200); p != nil {
		t.Errorf("unknown src path = %v, want nil", p)
	}
	if p := r.Path(200, 9999); p != nil {
		t.Errorf("unknown dst path = %v, want nil", p)
	}
	if r.Reachable(9999, 200) || r.Reachable(200, 9999) {
		t.Error("unknown ASNs should be unreachable")
	}
	if _, ok := r.NextHop(9999, 200); ok {
		t.Error("NextHop for unknown src should fail")
	}
}

func TestLinkDownReroutes(t *testing.T) {
	topo := diamond(t)
	// Fail S1's link to T2b: S1→S2 must fall back to a longer route.
	st := &State{
		Down:    map[[2]ipam.ASN]bool{{101, 200}: true},
		Flipped: map[ipam.ASN]bool{},
	}
	r := NewRouting(topo, st, V4)
	got := r.Path(200, 201)
	if got == nil {
		t.Fatal("S1→S2 unreachable after single link failure (multihomed stub)")
	}
	if pathEq(got, 200, 101, 201) {
		t.Errorf("S1→S2 still uses failed link: %v", got)
	}
	// The fallback goes through T2a: 200→100→101→201 (peer route at T2a).
	if !pathEq(got, 200, 100, 101, 201) {
		t.Errorf("S1→S2 fallback = %v, want [200 100 101 201]", got)
	}
}

func TestLinkDownPartitionsSingleHomedStub(t *testing.T) {
	topo := diamond(t)
	// S2 is dual-homed to 101/102; failing both partitions it.
	st := &State{Down: map[[2]ipam.ASN]bool{
		{101, 201}: true,
		{102, 201}: true,
	}}
	r := NewRouting(topo, st, V4)
	if p := r.Path(200, 201); p != nil {
		t.Errorf("S1→S2 should be unreachable, got %v", p)
	}
	if r.Reachable(200, 201) {
		t.Error("Reachable should be false under partition")
	}
}

func TestTieBreakDeterministicAndFlippable(t *testing.T) {
	// A stub dual-homed to two providers that both reach the destination
	// with equal preference and length: tie-break must pick the lower ASN,
	// and flipping must pick the higher.
	b := astopo.NewBuilder().
		AS(10, astopo.Tier1, "T1a", 0).
		AS(11, astopo.Tier1, "T1b", 1).
		AS(200, astopo.Stub, "S", 2).
		AS(201, astopo.Stub, "D", 3).
		Link(10, 11, astopo.RelPeer, astopo.PrivatePeering, 0).
		Link(200, 10, astopo.RelCustomer, astopo.Transit, 0).
		Link(200, 11, astopo.RelCustomer, astopo.Transit, 1).
		Link(201, 10, astopo.RelCustomer, astopo.Transit, 0).
		Link(201, 11, astopo.RelCustomer, astopo.Transit, 1)
	topo, err := b.Build(true)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouting(topo, nil, V4)
	if got := r.Path(200, 201); !pathEq(got, 200, 10, 201) {
		t.Errorf("steady path = %v, want via AS10", got)
	}
	st := &State{Flipped: map[ipam.ASN]bool{200: true}}
	rf := NewRouting(topo, st, V4)
	if got := rf.Path(200, 201); !pathEq(got, 200, 11, 201) {
		t.Errorf("flipped path = %v, want via AS11", got)
	}
}

func TestV6PlaneExcludesV4Only(t *testing.T) {
	b := astopo.NewBuilder().
		AS(10, astopo.Tier1, "T1a", 0).
		AS(11, astopo.Tier1, "T1b", 1).
		AS(200, astopo.Stub, "S", 2).
		AS(201, astopo.Stub, "D", 3).
		Link(10, 11, astopo.RelPeer, astopo.PrivatePeering, 0).
		Link(200, 10, astopo.RelCustomer, astopo.Transit, 0).
		Link(200, 11, astopo.RelCustomer, astopo.Transit, 1).
		Link(201, 10, astopo.RelCustomer, astopo.Transit, 0).
		Link(201, 11, astopo.RelCustomer, astopo.Transit, 1).
		V4OnlyLink(200, 10) // v6 must detour via AS11
	topo, err := b.Build(true)
	if err != nil {
		t.Fatal(err)
	}
	r4 := NewRouting(topo, nil, V4)
	r6 := NewRouting(topo, nil, V6)
	if got := r4.Path(200, 201); !pathEq(got, 200, 10, 201) {
		t.Errorf("v4 path = %v, want via AS10", got)
	}
	if got := r6.Path(200, 201); !pathEq(got, 200, 11, 201) {
		t.Errorf("v6 path = %v, want via AS11", got)
	}
}

func TestV6PlaneExcludesV4OnlyAS(t *testing.T) {
	b := astopo.NewBuilder().
		AS(10, astopo.Tier1, "T1", 0).
		AS(200, astopo.Stub, "S", 1).
		AS(201, astopo.Stub, "D", 2).
		Link(200, 10, astopo.RelCustomer, astopo.Transit, 0).
		Link(201, 10, astopo.RelCustomer, astopo.Transit, 0).
		V4Only(201)
	topo, err := b.Build(true)
	if err != nil {
		t.Fatal(err)
	}
	r6 := NewRouting(topo, nil, V6)
	if p := r6.Path(200, 201); p != nil {
		t.Errorf("v6 path to v4-only AS = %v, want nil", p)
	}
	if p := r6.Path(201, 200); p != nil {
		t.Errorf("v6 path from v4-only AS = %v, want nil", p)
	}
	r4 := NewRouting(topo, nil, V4)
	if p := r4.Path(200, 201); p == nil {
		t.Error("v4 path should exist")
	}
}

func TestNextHopConsistentWithPath(t *testing.T) {
	topo := diamond(t)
	r := NewRouting(topo, nil, V4)
	for _, src := range topo.ASes {
		for _, dst := range topo.ASes {
			if src.ASN == dst.ASN {
				continue
			}
			p := r.Path(src.ASN, dst.ASN)
			if p == nil {
				continue
			}
			nh, ok := r.NextHop(src.ASN, dst.ASN)
			if !ok || nh != p[1] {
				t.Errorf("NextHop(%v,%v) = %v,%v; path %v", src.ASN, dst.ASN, nh, ok, p)
			}
		}
	}
}

func TestGeneratedTopologyAllPairsReachableV4(t *testing.T) {
	topo, err := astopo.Generate(astopo.DefaultConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouting(topo, nil, V4)
	// Spot-check a grid of pairs (full N² would be slow in -race runs).
	step := len(topo.ASes)/20 + 1
	for i := 0; i < len(topo.ASes); i += step {
		for j := 0; j < len(topo.ASes); j += step {
			src, dst := topo.ASes[i].ASN, topo.ASes[j].ASN
			p := r.Path(src, dst)
			if p == nil {
				t.Errorf("%v → %v unreachable in steady state", src, dst)
				continue
			}
			assertValleyFree(t, topo, p)
		}
	}
}

func TestDynamicsEpochs(t *testing.T) {
	topo := diamond(t)
	cfg := DynConfig{
		Seed:       7,
		Duration:   100 * 24 * time.Hour,
		LinkMTBF:   40 * 24 * time.Hour,
		OutageMean: 24 * time.Hour,
		FlipMTBF:   100 * 24 * time.Hour,
		FlipMean:   5 * 24 * time.Hour,
	}
	dyn, err := NewDynamics(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dyn.NumEpochs() < 2 {
		t.Fatalf("expected events over 100 days with 10 links, got %d epochs", dyn.NumEpochs())
	}
	if dyn.EpochAt(0) != 0 {
		t.Errorf("EpochAt(0) = %d", dyn.EpochAt(0))
	}
	if dyn.EpochAt(-time.Hour) != 0 {
		t.Errorf("EpochAt(<0) = %d", dyn.EpochAt(-time.Hour))
	}
	last := dyn.NumEpochs() - 1
	if got := dyn.EpochAt(cfg.Duration * 2); got != last {
		t.Errorf("EpochAt(after end) = %d, want %d", got, last)
	}
	// Epoch boundaries are strictly increasing.
	for i := 1; i < dyn.NumEpochs(); i++ {
		if dyn.EpochStart(i) <= dyn.EpochStart(i-1) {
			t.Fatalf("epoch starts not increasing at %d", i)
		}
	}
	// Event list sorted.
	evs := dyn.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatalf("events not sorted at %d", i)
		}
	}
}

func TestDynamicsDeterministic(t *testing.T) {
	topo := diamond(t)
	cfg := DefaultDynConfig(9, 200*24*time.Hour)
	a, err := NewDynamics(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewDynamics(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEvents() != b.NumEvents() {
		t.Fatalf("event counts differ: %d vs %d", a.NumEvents(), b.NumEvents())
	}
	for i := range a.Events() {
		if a.Events()[i] != b.Events()[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestDynamicsRoutingChangesOverTime(t *testing.T) {
	topo := diamond(t)
	cfg := DynConfig{
		Seed:       3,
		Duration:   365 * 24 * time.Hour,
		LinkMTBF:   60 * 24 * time.Hour,
		OutageMean: 48 * time.Hour,
		FlipMTBF:   365 * 24 * time.Hour,
		FlipMean:   10 * 24 * time.Hour,
	}
	dyn, err := NewDynamics(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dyn.SetEviction(false)
	seen := map[string]bool{}
	for ep := 0; ep < dyn.NumEpochs(); ep++ {
		r := dyn.RoutingAtEpoch(ep, V4)
		p := r.Path(200, 201)
		seen[pathString(p)] = true
	}
	if len(seen) < 2 {
		t.Errorf("expected multiple distinct S1→S2 paths over a year of failures, got %d", len(seen))
	}
}

func TestDynamicsRejectsBadConfig(t *testing.T) {
	topo := diamond(t)
	if _, err := NewDynamics(topo, DynConfig{Duration: 0}); err == nil {
		t.Error("zero duration should error")
	}
	cfg := DefaultDynConfig(1, time.Hour)
	cfg.LinkMTBF = 0
	if _, err := NewDynamics(topo, cfg); err == nil {
		t.Error("zero MTBF should error")
	}
}

func TestDynamicsCacheEviction(t *testing.T) {
	topo := diamond(t)
	dyn, err := NewDynamics(topo, DefaultDynConfig(5, 485*24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if dyn.NumEpochs() < 3 {
		t.Skip("not enough epochs for eviction test")
	}
	r0 := dyn.RoutingAtEpoch(0, V4)
	_ = dyn.RoutingAtEpoch(2, V4)
	// Epoch 0 should have been evicted; requesting it again builds a new view.
	r0b := dyn.RoutingAtEpoch(0, V4)
	if r0 == r0b {
		t.Error("expected epoch 0 view to be evicted and rebuilt")
	}
	// With eviction off, views are retained.
	dyn.SetEviction(false)
	ra := dyn.RoutingAtEpoch(1, V4)
	_ = dyn.RoutingAtEpoch(2, V4)
	rb := dyn.RoutingAtEpoch(1, V4)
	if ra != rb {
		t.Error("expected cached view with eviction off")
	}
}

func TestStateAt(t *testing.T) {
	topo := diamond(t)
	dyn, err := NewDynamics(topo, DefaultDynConfig(6, 485*24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	st := dyn.StateAt(0)
	if len(st.Down) != 0 || len(st.Flipped) != 0 {
		t.Error("initial state should be clean")
	}
}

func TestPlaneString(t *testing.T) {
	if V4.String() != "v4" || V6.String() != "v6" {
		t.Error("plane strings wrong")
	}
}

func TestEventKindString(t *testing.T) {
	if LinkDown.String() != "link-down" || FlipOff.String() != "flip-off" {
		t.Error("event kind strings wrong")
	}
}

func pathString(p []ipam.ASN) string {
	s := ""
	for _, a := range p {
		s += a.String() + " "
	}
	return s
}
