package bgp

import (
	"sync"
	"time"
)

// treeRecycleGuard is the virtual-time quarantine between a tree's
// retirement and the reuse of its backing arrays. An evicted Routing view
// can still be read by workers finishing (or retrying) measurements
// scheduled before the epoch boundary that evicted it; retries back off at
// most minutes of virtual time, so two days is a comfortable horizon after
// which no reader can still hold the view.
const treeRecycleGuard = 48 * time.Hour

const (
	// maxFreeTrees bounds the ready-for-reuse list; beyond it retired
	// arrays are dropped to the GC. A routing view holds one tree per
	// destination actually probed, so this covers worlds well past the
	// default cluster counts.
	maxFreeTrees = 4096
	// maxPendingTrees bounds the quarantine list the same way.
	maxPendingTrees = 8192
)

// treeArrays is one recycled set of destTree backing arrays.
type treeArrays struct {
	nextHop []int32
	meta    []uint32
}

// pendingTrees groups arrays retired at the same virtual time.
type pendingTrees struct {
	at     time.Duration
	arrays []treeArrays
}

// treePool recycles destination-tree backing arrays across epochs. Retired
// arrays sit in a quarantine list until treeRecycleGuard of virtual time
// has passed (late readers of an evicted view may still traverse them),
// then move to the free list for newTree to reuse. All methods are called
// under the owning Dynamics' mutex except get, which locks itself because
// tree computation happens outside that mutex.
type treePool struct {
	mu      sync.Mutex
	free    []treeArrays
	pending []pendingTrees
}

// get pops recycled arrays of length n, or returns nils when none fit.
func (p *treePool) get(n int) ([]int32, []uint32) {
	if p == nil {
		return nil, nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := len(p.free) - 1; i >= 0; i-- {
		a := p.free[i]
		if len(a.nextHop) == n {
			p.free[i] = p.free[len(p.free)-1]
			p.free = p.free[:len(p.free)-1]
			return a.nextHop, a.meta
		}
	}
	return nil, nil
}

// retire quarantines a dead tree's arrays, recording the virtual time of
// retirement. Overflow beyond maxPendingTrees is dropped to the GC.
func (p *treePool) retire(t *destTree, now time.Duration) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	n := len(p.pending)
	if n > 0 && p.pending[n-1].at == now {
		if len(p.pending[n-1].arrays) < maxPendingTrees {
			p.pending[n-1].arrays = append(p.pending[n-1].arrays, treeArrays{t.nextHop, t.meta})
		}
		return
	}
	p.pending = append(p.pending, pendingTrees{at: now, arrays: []treeArrays{{t.nextHop, t.meta}}})
}

// release moves quarantined arrays whose guard has elapsed at virtual time
// now onto the free list. Campaigns advance monotonically, so pending
// entries are in nondecreasing retirement order.
func (p *treePool) release(now time.Duration) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	i := 0
	for ; i < len(p.pending); i++ {
		if now-p.pending[i].at < treeRecycleGuard {
			break
		}
		for _, a := range p.pending[i].arrays {
			if len(p.free) >= maxFreeTrees {
				break
			}
			p.free = append(p.free, a)
		}
	}
	if i > 0 {
		p.pending = append(p.pending[:0], p.pending[i:]...)
	}
}
