package bgp

import (
	"testing"
	"time"

	"repro/internal/astopo"
	"repro/internal/obs"
)

// TestDynamicsMetrics walks a churny schedule in epoch order — the
// campaign access pattern PR 1's incremental carry-over targets — and
// checks that the computed/carried counters account for every tree and
// that the timing histograms saw every computation.
func TestDynamicsMetrics(t *testing.T) {
	acfg := astopo.DefaultConfig(31)
	acfg.NumASes = 80
	topo, err := astopo.Generate(acfg)
	if err != nil {
		t.Fatal(err)
	}
	dur := 60 * 24 * time.Hour
	cfg := DefaultDynConfig(31, dur)
	// Compress the failure/flip processes so the window holds many epochs.
	cfg.LinkMTBF /= 40
	cfg.FlipMTBF /= 40
	dyn, err := NewDynamics(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dyn.NumEpochs() < 5 {
		t.Fatalf("schedule too quiet for the test: %d epochs", dyn.NumEpochs())
	}
	reg := obs.NewRegistry()
	dyn.Instrument(reg)

	ases := topo.ASes
	for epoch := 0; epoch < dyn.NumEpochs(); epoch++ {
		r := dyn.RoutingAtEpoch(epoch, V4)
		for s := 0; s < len(ases); s += 5 {
			for d := 0; d < len(ases); d += 7 {
				r.Path(ases[s].ASN, ases[d].ASN)
			}
		}
	}

	snap := reg.Snapshot()
	computed := snap.Counters[MetricTreesComputed]
	carried := snap.Counters[MetricTreesCarried]
	if computed == 0 {
		t.Fatal("no trees computed on an epoch walk")
	}
	if carried == 0 {
		t.Fatal("no trees carried over on an in-order epoch walk")
	}
	if got := snap.Histograms[MetricTreeSeconds].Count; got != computed {
		t.Errorf("tree-compute histogram count = %d, want %d (one sample per computed tree)", got, computed)
	}
	if got := snap.Histograms[MetricEpochBuildSeconds].Count; got == 0 {
		t.Error("epoch-build histogram never observed")
	}
	ratio := float64(carried) / float64(carried+computed)
	t.Logf("trees: computed %d, carried %d (carry ratio %.1f%%) over %d epochs",
		computed, carried, 100*ratio, dyn.NumEpochs())
}
