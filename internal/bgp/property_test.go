package bgp

import (
	"math/rand"
	"testing"

	"repro/internal/astopo"
	"repro/internal/ipam"
)

// TestValleyFreeUnderRandomFailures asserts the central routing invariants
// on a generated topology across many random failure states: every
// computed path is loop-free and valley-free, and paths never use downed
// links.
func TestValleyFreeUnderRandomFailures(t *testing.T) {
	topo, err := astopo.Generate(astopo.DefaultConfig(17))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	ases := topo.ASes
	for trial := 0; trial < 25; trial++ {
		st := &State{Down: map[[2]ipam.ASN]bool{}, Flipped: map[ipam.ASN]bool{}}
		// Fail a random 3% of links and flip a random 5% of ASes.
		for _, l := range topo.Links {
			if rng.Float64() < 0.03 {
				st.Down[pairKey(l.A, l.B)] = true
			}
		}
		for _, as := range ases {
			if rng.Float64() < 0.05 {
				st.Flipped[as.ASN] = true
			}
		}
		for _, plane := range []Plane{V4, V6} {
			r := NewRouting(topo, st, plane)
			for k := 0; k < 40; k++ {
				src := ases[rng.Intn(len(ases))].ASN
				dst := ases[rng.Intn(len(ases))].ASN
				p := r.Path(src, dst)
				if p == nil {
					continue // partitions are legitimate under failures
				}
				assertLoopFree(t, p)
				assertValleyFreeState(t, topo, st, plane, p)
			}
		}
	}
}

func assertLoopFree(t *testing.T, p []ipam.ASN) {
	t.Helper()
	seen := map[ipam.ASN]bool{}
	for _, a := range p {
		if seen[a] {
			t.Fatalf("AS loop in computed path %v", p)
		}
		seen[a] = true
	}
}

func assertValleyFreeState(t *testing.T, topo *astopo.Topology, st *State, plane Plane, p []ipam.ASN) {
	t.Helper()
	state := 0 // 0 = climbing, 1 = descended/peered
	for i := 0; i+1 < len(p); i++ {
		a, b := p[i], p[i+1]
		if st.Down[pairKey(a, b)] {
			t.Fatalf("path %v uses downed link %v-%v", p, a, b)
		}
		if plane == V6 && !topo.LinkHasV6(a, b) {
			t.Fatalf("v6 path %v uses v4-only link %v-%v", p, a, b)
		}
		switch topo.Rel(a, b) {
		case astopo.RelCustomer:
			if state == 1 {
				t.Fatalf("valley in path %v at %v→%v", p, a, b)
			}
		case astopo.RelPeer:
			if state == 1 {
				t.Fatalf("second lateral move in path %v at %v→%v", p, a, b)
			}
			state = 1
		case astopo.RelProvider:
			state = 1
		default:
			t.Fatalf("path %v uses non-adjacent hop %v→%v", p, a, b)
		}
	}
}

// TestRoutingDeterministicAcrossInstances asserts that two Routing views of
// the same state produce identical paths (no map-iteration order leaks).
func TestRoutingDeterministicAcrossInstances(t *testing.T) {
	topo, err := astopo.Generate(astopo.DefaultConfig(19))
	if err != nil {
		t.Fatal(err)
	}
	st := &State{Down: map[[2]ipam.ASN]bool{}, Flipped: map[ipam.ASN]bool{}}
	rng := rand.New(rand.NewSource(19))
	for _, l := range topo.Links {
		if rng.Float64() < 0.05 {
			st.Down[pairKey(l.A, l.B)] = true
		}
	}
	a := NewRouting(topo, st, V4)
	b := NewRouting(topo, st, V4)
	ases := topo.ASes
	for trial := 0; trial < 200; trial++ {
		src := ases[rng.Intn(len(ases))].ASN
		dst := ases[rng.Intn(len(ases))].ASN
		pa := a.Path(src, dst)
		pb := b.Path(src, dst)
		if len(pa) != len(pb) {
			t.Fatalf("path lengths differ for %v→%v: %v vs %v", src, dst, pa, pb)
		}
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("paths differ for %v→%v: %v vs %v", src, dst, pa, pb)
			}
		}
	}
}
