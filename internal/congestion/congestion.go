// Package congestion models consistent congestion — the paper's term for
// daily-oscillating latency inflation — on a subset of router-level links.
// Each congested link gets a raised-cosine delay bump centered on the local
// busy hour, with a magnitude distribution mirroring Section 5.4: 20–30 ms
// for intra-US links, around 60 ms on transcontinental spans, and up to
// ~90 ms on some Asia and Asia–Europe interconnects.
//
// The set of congested links is ground truth the detector
// (internal/core/congest) is validated against; the paper had to infer it.
package congestion

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/astopo"
	"repro/internal/geo"
	"repro/internal/itopo"
)

// Profile describes one link's congestion episode.
type Profile struct {
	Link itopo.LinkID

	// Amplitude is the peak added queueing delay at the busy hour.
	Amplitude time.Duration
	// PeakHour is the local hour of peak congestion; Width the busy-period
	// length in hours (the bump spans PeakHour ± Width/2).
	PeakHour, Width float64
	// City determines local time for the diurnal cycle.
	City int
	// Start and End bound the episode within the campaign (congestion
	// comes and goes, cf. the paper's peering-dispute discussion).
	Start, End time.Duration
}

// DelayAt returns the added queueing delay on the link at virtual time t
// (offset from campaign start, which is 00:00 UTC).
func (p *Profile) DelayAt(t time.Duration) time.Duration {
	if t < p.Start || t >= p.End {
		return 0
	}
	h := geo.Cities[p.City].LocalHour(t)
	// Circular distance from the peak hour.
	d := math.Abs(h - p.PeakHour)
	if d > 12 {
		d = 24 - d
	}
	if d >= p.Width/2 {
		return 0
	}
	// Raised cosine: Amplitude at the peak, 0 at the edges.
	frac := 0.5 * (1 + math.Cos(2*math.Pi*d/p.Width))
	return time.Duration(float64(p.Amplitude) * frac)
}

// ActiveAt reports whether the episode covers time t.
func (p *Profile) ActiveAt(t time.Duration) bool { return t >= p.Start && t < p.End }

// Config parameterizes congested-link selection.
type Config struct {
	Seed     int64
	Duration time.Duration

	// InternalFrac and InterconnectFrac are the fractions of internal and
	// interconnection links that experience congestion. The paper found
	// more congested internal links by count, but interconnection links
	// (mostly private peering) carrying more server-pair paths.
	InternalFrac     float64
	InterconnectFrac float64

	// PrivatePeeringBias multiplies the selection weight of private
	// peering links relative to IXP links (the paper: congestion at
	// interconnection occurs more often on private peering; IXP SLAs police
	// fabric utilization).
	PrivatePeeringBias float64

	// PermanentProb is the chance an episode spans the whole campaign;
	// otherwise it lasts 3–60 days starting at a random offset.
	PermanentProb float64
}

// DefaultConfig returns the standard congestion parameters.
func DefaultConfig(seed int64, duration time.Duration) Config {
	return Config{
		Seed:               seed,
		Duration:           duration,
		InternalFrac:       0.0025,
		InterconnectFrac:   0.008,
		PrivatePeeringBias: 3.0,
		PermanentProb:      0.4,
	}
}

// Model is the congestion state of a network.
type Model struct {
	profiles map[itopo.LinkID]*Profile
	ordered  []itopo.LinkID
}

// NewModel selects congested links in net per cfg.
func NewModel(net *itopo.Network, cfg Config) (*Model, error) {
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("congestion: non-positive duration")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{profiles: make(map[itopo.LinkID]*Profile)}

	for _, l := range net.Links {
		var p float64
		switch l.Kind {
		case itopo.Internal:
			p = cfg.InternalFrac
		case itopo.PrivatePeering:
			// Private interconnects run "hot" most often (paper §5.3).
			p = cfg.InterconnectFrac * cfg.PrivatePeeringBias
		case itopo.IXPPeering:
			// IXP SLAs police port utilization.
			p = cfg.InterconnectFrac * 0.5
		default: // Transit
			p = cfg.InterconnectFrac
		}
		if l.Kind != itopo.Internal {
			// Interconnects of heavily used networks (tier-1 transit, the
			// CDN's peers) run hot more often — and carry many more
			// server-to-server paths, the paper's popularity observation.
			oa, _ := net.Topo.AS(net.Routers[l.A].Owner)
			ob, _ := net.Topo.AS(net.Routers[l.B].Owner)
			if (oa != nil && (oa.Tier == astopo.Tier1 || oa.Tier == astopo.CDN)) ||
				(ob != nil && (ob.Tier == astopo.Tier1 || ob.Tier == astopo.CDN)) {
				p *= 3
			}
		}
		if rng.Float64() >= p {
			continue
		}
		m.profiles[l.ID] = newProfile(net, l, rng, cfg)
		m.ordered = append(m.ordered, l.ID)
	}
	sort.Slice(m.ordered, func(i, j int) bool { return m.ordered[i] < m.ordered[j] })
	return m, nil
}

func newProfile(net *itopo.Network, l *itopo.Link, rng *rand.Rand, cfg Config) *Profile {
	ca := geo.Cities[net.Routers[l.A].City]
	cb := geo.Cities[net.Routers[l.B].City]

	// Magnitude by region (paper §5.4).
	var amp time.Duration
	switch {
	case ca.Continent != cb.Continent:
		// Transcontinental: ~60 ms, Asia↔Europe up to ~90 ms.
		base := 45 + rng.Float64()*30 // 45–75
		if (ca.Continent == geo.Asia && cb.Continent == geo.Europe) ||
			(ca.Continent == geo.Europe && cb.Continent == geo.Asia) {
			base = 60 + rng.Float64()*35 // 60–95
		}
		amp = time.Duration(base * float64(time.Millisecond))
	case ca.Country == "US" && cb.Country == "US":
		// Uniform router-buffer rule of thumb: tight 20–30 ms band.
		amp = time.Duration((20 + rng.Float64()*10) * float64(time.Millisecond))
	case ca.Continent == geo.Asia:
		// Wider spread in Asia, incl. some very high values.
		amp = time.Duration((15 + rng.Float64()*75) * float64(time.Millisecond))
	default:
		amp = time.Duration((12 + rng.Float64()*40) * float64(time.Millisecond))
	}

	start, end := time.Duration(0), cfg.Duration
	if rng.Float64() >= cfg.PermanentProb {
		days := 3 + rng.Float64()*57
		span := time.Duration(days * 24 * float64(time.Hour))
		if span < cfg.Duration {
			start = time.Duration(rng.Float64() * float64(cfg.Duration-span))
			end = start + span
		}
	}

	return &Profile{
		Link:      l.ID,
		Amplitude: amp,
		PeakHour:  19 + rng.Float64()*3, // local evening peak
		Width:     4 + rng.Float64()*4,  // 4–8 busy hours
		City:      net.Routers[l.A].City,
		Start:     start,
		End:       end,
	}
}

// DelayOn returns the congestion delay on link lid at time t (0 for
// uncongested links).
func (m *Model) DelayOn(lid itopo.LinkID, t time.Duration) time.Duration {
	p, ok := m.profiles[lid]
	if !ok {
		return 0
	}
	return p.DelayAt(t)
}

// Profile returns the congestion profile of a link.
func (m *Model) Profile(lid itopo.LinkID) (*Profile, bool) {
	p, ok := m.profiles[lid]
	return p, ok
}

// CongestedLinks returns the ground-truth set of congested links, sorted.
func (m *Model) CongestedLinks() []itopo.LinkID { return m.ordered }

// CongestedOnPath returns the subset of the path's inbound links that have
// a congestion profile active at any point (ground truth for localization
// validation).
func (m *Model) CongestedOnPath(hops []itopo.PathHop) []itopo.LinkID {
	var out []itopo.LinkID
	for _, h := range hops {
		if h.InLink < 0 {
			continue
		}
		if _, ok := m.profiles[h.InLink]; ok {
			out = append(out, h.InLink)
		}
	}
	return out
}
