package congestion

import (
	"testing"
	"time"

	"repro/internal/astopo"
	"repro/internal/geo"
	"repro/internal/itopo"
)

func testNet(t *testing.T, seed int64) *itopo.Network {
	t.Helper()
	topo, err := astopo.Generate(astopo.DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	n, err := itopo.Build(topo, itopo.DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestProfileDiurnalShape(t *testing.T) {
	ny := cityIdx(t, "New York") // UTC-5
	p := &Profile{
		Amplitude: 30 * time.Millisecond,
		PeakHour:  20,
		Width:     6,
		City:      ny,
		Start:     0,
		End:       30 * 24 * time.Hour,
	}
	// Local 20:00 in NY is 01:00 UTC.
	peakT := 1 * time.Hour
	if d := p.DelayAt(peakT); d < 29*time.Millisecond || d > 30*time.Millisecond {
		t.Errorf("peak delay = %v, want ~30ms", d)
	}
	// Off-peak (local 08:00 = 13:00 UTC): zero.
	if d := p.DelayAt(13 * time.Hour); d != 0 {
		t.Errorf("off-peak delay = %v, want 0", d)
	}
	// Edge of busy period (peak ± width/2): zero (raised cosine).
	edge := peakT + 3*time.Hour
	if d := p.DelayAt(edge); d > time.Millisecond {
		t.Errorf("edge delay = %v, want ~0", d)
	}
	// Halfway into the bump: exactly half the amplitude.
	half := peakT + 90*time.Minute
	if d := p.DelayAt(half); d < 14*time.Millisecond || d > 16*time.Millisecond {
		t.Errorf("half-width delay = %v, want ~15ms", d)
	}
	// Repeats daily.
	if d := p.DelayAt(peakT + 24*time.Hour); d < 29*time.Millisecond {
		t.Errorf("next-day peak = %v, want ~30ms", d)
	}
}

func TestProfileEpisodeWindow(t *testing.T) {
	ny := cityIdx(t, "New York")
	p := &Profile{
		Amplitude: 30 * time.Millisecond,
		PeakHour:  20, Width: 6, City: ny,
		Start: 10 * 24 * time.Hour,
		End:   20 * 24 * time.Hour,
	}
	peakOffset := 1 * time.Hour
	if d := p.DelayAt(peakOffset); d != 0 {
		t.Errorf("before episode: %v, want 0", d)
	}
	if d := p.DelayAt(15*24*time.Hour + peakOffset); d == 0 {
		t.Error("during episode: want nonzero")
	}
	if d := p.DelayAt(25*24*time.Hour + peakOffset); d != 0 {
		t.Errorf("after episode: %v, want 0", d)
	}
	if p.ActiveAt(0) || !p.ActiveAt(12*24*time.Hour) || p.ActiveAt(20*24*time.Hour) {
		t.Error("ActiveAt window wrong")
	}
}

func TestProfilePeakNearMidnightWraps(t *testing.T) {
	ldn := cityIdx(t, "London") // UTC+0
	p := &Profile{
		Amplitude: 20 * time.Millisecond,
		PeakHour:  23.5, Width: 4, City: ldn,
		Start: 0, End: 24 * time.Hour * 10,
	}
	// 00:30 local is 1h from the 23:30 peak — inside the bump thanks to
	// circular hour distance.
	if d := p.DelayAt(30 * time.Minute); d == 0 {
		t.Error("bump should wrap across midnight")
	}
}

func TestNewModelSelectsLinks(t *testing.T) {
	net := testNet(t, 1)
	dur := 30 * 24 * time.Hour
	m, err := NewModel(net, DefaultConfig(1, dur))
	if err != nil {
		t.Fatal(err)
	}
	links := m.CongestedLinks()
	if len(links) == 0 {
		t.Fatal("no congested links selected")
	}
	frac := float64(len(links)) / float64(len(net.Links))
	if frac < 0.0005 || frac > 0.03 {
		t.Errorf("congested fraction = %.4f, want a sparse minority", frac)
	}
	kinds := map[itopo.LinkKind]int{}
	for _, lid := range links {
		kinds[net.Links[lid].Kind]++
		p, ok := m.Profile(lid)
		if !ok {
			t.Fatalf("profile missing for %d", lid)
		}
		if p.Amplitude < 10*time.Millisecond || p.Amplitude > 100*time.Millisecond {
			t.Errorf("amplitude %v out of expected range", p.Amplitude)
		}
		if p.Width < 4 || p.Width > 8 {
			t.Errorf("width %v out of range", p.Width)
		}
		if p.Start < 0 || p.End > dur || p.Start >= p.End {
			t.Errorf("bad episode window [%v, %v)", p.Start, p.End)
		}
	}
	if kinds[itopo.Internal] == 0 {
		t.Error("no internal links congested")
	}
	if kinds[itopo.Transit]+kinds[itopo.PrivatePeering]+kinds[itopo.IXPPeering] == 0 {
		t.Error("no interconnects congested")
	}
}

func TestUSAmplitudesInBand(t *testing.T) {
	net := testNet(t, 2)
	m, err := NewModel(net, DefaultConfig(2, 60*24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	for _, lid := range m.CongestedLinks() {
		l := net.Links[lid]
		ca := geo.Cities[net.Routers[l.A].City]
		cb := geo.Cities[net.Routers[l.B].City]
		if ca.Country == "US" && cb.Country == "US" {
			p, _ := m.Profile(lid)
			if p.Amplitude < 20*time.Millisecond || p.Amplitude > 30*time.Millisecond {
				t.Errorf("US-US link amplitude %v outside 20-30ms band", p.Amplitude)
			}
		}
		if ca.Continent != cb.Continent {
			p, _ := m.Profile(lid)
			if p.Amplitude < 45*time.Millisecond {
				t.Errorf("transcontinental amplitude %v below 45ms", p.Amplitude)
			}
		}
	}
}

func TestDelayOnUncongested(t *testing.T) {
	net := testNet(t, 3)
	m, err := NewModel(net, DefaultConfig(3, 30*24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	congested := map[itopo.LinkID]bool{}
	for _, lid := range m.CongestedLinks() {
		congested[lid] = true
	}
	for _, l := range net.Links {
		if !congested[l.ID] {
			if d := m.DelayOn(l.ID, 12*time.Hour); d != 0 {
				t.Fatalf("uncongested link %d has delay %v", l.ID, d)
			}
		}
	}
}

func TestModelDeterministic(t *testing.T) {
	net := testNet(t, 4)
	a, err := NewModel(net, DefaultConfig(9, 30*24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewModel(net, DefaultConfig(9, 30*24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	la, lb := a.CongestedLinks(), b.CongestedLinks()
	if len(la) != len(lb) {
		t.Fatalf("selection differs: %d vs %d", len(la), len(lb))
	}
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("link %d differs", i)
		}
		pa, _ := a.Profile(la[i])
		pb, _ := b.Profile(lb[i])
		if *pa != *pb {
			t.Fatalf("profile %d differs", i)
		}
	}
}

func TestNewModelRejectsBadDuration(t *testing.T) {
	net := testNet(t, 5)
	if _, err := NewModel(net, Config{Duration: 0}); err == nil {
		t.Error("zero duration should error")
	}
}

func TestCongestedOnPath(t *testing.T) {
	net := testNet(t, 6)
	m, err := NewModel(net, DefaultConfig(6, 30*24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	lids := m.CongestedLinks()
	if len(lids) == 0 {
		t.Skip("no congested links")
	}
	hops := []itopo.PathHop{
		{Router: 0, InLink: -1},
		{Router: 1, InLink: lids[0]},
	}
	got := m.CongestedOnPath(hops)
	if len(got) != 1 || got[0] != lids[0] {
		t.Errorf("CongestedOnPath = %v, want [%d]", got, lids[0])
	}
}

func cityIdx(t *testing.T, name string) int {
	t.Helper()
	for i, c := range geo.Cities {
		if c.Name == name {
			return i
		}
	}
	t.Fatalf("city %q not found", name)
	return -1
}
