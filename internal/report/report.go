// Package report renders analysis results as text: aligned tables, ECDF
// quantile tables, heat maps, and density curves — the same rows and series
// the paper's tables and figures present.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/core/stats"
)

// Table writes an aligned text table.
func Table(w io.Writer, title string, headers []string, rows [][]string) {
	if title != "" {
		fmt.Fprintf(w, "%s\n", title)
	}
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(headers))
		for i := range headers {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Series is one named ECDF sample.
type Series struct {
	Name   string
	Values []float64
}

// ECDFQuantiles prints, for each series, the value at standard ECDF levels
// — a textual rendering of the paper's ECDF plots.
func ECDFQuantiles(w io.Writer, title string, series []Series, qs []float64) {
	if len(qs) == 0 {
		qs = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99}
	}
	headers := []string{"ECDF"}
	for _, s := range series {
		headers = append(headers, fmt.Sprintf("%s (n=%d)", s.Name, len(s.Values)))
	}
	var rows [][]string
	ecdfs := make([]stats.ECDF, len(series))
	for i, s := range series {
		ecdfs[i] = stats.NewECDF(s.Values)
	}
	for _, q := range qs {
		row := []string{fmt.Sprintf("%.2f", q)}
		for i := range series {
			if ecdfs[i].Len() == 0 {
				row = append(row, "-")
				continue
			}
			row = append(row, fmt.Sprintf("%.2f", ecdfs[i].Quantile(q)))
		}
		rows = append(rows, row)
	}
	Table(w, title, headers, rows)
}

// ECDFAt prints, for each series, the ECDF evaluated at given thresholds
// ("fraction of timelines with ≤ x").
func ECDFAt(w io.Writer, title string, series []Series, thresholds []float64) {
	headers := []string{"x"}
	for _, s := range series {
		headers = append(headers, s.Name)
	}
	ecdfs := make([]stats.ECDF, len(series))
	for i, s := range series {
		ecdfs[i] = stats.NewECDF(s.Values)
	}
	var rows [][]string
	for _, x := range thresholds {
		row := []string{fmt.Sprintf("%g", x)}
		for i := range series {
			if ecdfs[i].Len() == 0 {
				row = append(row, "-")
				continue
			}
			row = append(row, fmt.Sprintf("%.3f", ecdfs[i].Eval(x)))
		}
		rows = append(rows, row)
	}
	Table(w, title, headers, rows)
}

// Heatmap prints a stats.Heatmap with formatted bin edges, highest Y bins
// first (matching the paper's orientation).
func Heatmap(w io.Writer, title string, h *stats.Heatmap, fmtX, fmtY func(float64) string) {
	if title != "" {
		fmt.Fprintf(w, "%s (n=%d)\n", title, h.N)
	}
	headers := []string{"delta \\ lifetime"}
	for i := 0; i+1 < len(h.XEdges); i++ {
		headers = append(headers, fmt.Sprintf("[%s,%s)", fmtX(h.XEdges[i]), fmtX(h.XEdges[i+1])))
	}
	headers = append(headers, "row%")
	rowSums := h.RowSums()
	var rows [][]string
	for yi := len(h.Cells) - 1; yi >= 0; yi-- {
		row := []string{fmt.Sprintf("[%s,%s)", fmtY(h.YEdges[yi]), fmtY(h.YEdges[yi+1]))}
		for _, v := range h.Cells[yi] {
			row = append(row, fmt.Sprintf("%.2f", v))
		}
		row = append(row, fmt.Sprintf("%.1f", rowSums[yi]))
		rows = append(rows, row)
	}
	Table(w, "", headers, rows)
}

// Density prints KDE curves for named samples over a shared grid.
func Density(w io.Writer, title string, series []Series, lo, hi float64, points int) {
	grid := stats.Grid(lo, hi, points)
	headers := []string{"x"}
	curves := make([][]float64, len(series))
	for i, s := range series {
		headers = append(headers, fmt.Sprintf("%s (n=%d)", s.Name, len(s.Values)))
		curves[i] = stats.KDE(s.Values, 0, grid)
	}
	var rows [][]string
	for gi, g := range grid {
		row := []string{fmt.Sprintf("%.1f", g)}
		for i := range series {
			row = append(row, fmt.Sprintf("%.4f", curves[i][gi]))
		}
		rows = append(rows, row)
	}
	Table(w, title, headers, rows)
}

// KeyValues prints a sorted key/value block — used for headline metrics
// and paper-vs-measured summaries.
func KeyValues(w io.Writer, title string, kv map[string]float64) {
	if title != "" {
		fmt.Fprintf(w, "%s\n", title)
	}
	keys := make([]string, 0, len(kv))
	for k := range kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	width := 0
	for _, k := range keys {
		if len(k) > width {
			width = len(k)
		}
	}
	for _, k := range keys {
		fmt.Fprintf(w, "  %s  %.4g\n", pad(k, width), kv[k])
	}
}

// DurationLabel formats an hours value the way the paper labels lifetime
// bins: hours below a day, days below ~2 months, months beyond.
func DurationLabel(hours float64) string {
	switch {
	case hours < 24:
		return fmt.Sprintf("%.1fh", hours)
	case hours < 24*60:
		return fmt.Sprintf("%.1fD", hours/24)
	default:
		return fmt.Sprintf("%.1fM", hours/(24*30))
	}
}

// MsLabel formats a milliseconds value compactly.
func MsLabel(ms float64) string {
	if ms >= 1000 {
		return fmt.Sprintf("%.1fs", ms/1000)
	}
	return fmt.Sprintf("%.1fms", ms)
}
