package report

import (
	"strings"
	"testing"

	"repro/internal/core/stats"
)

func TestTable(t *testing.T) {
	var b strings.Builder
	Table(&b, "Title", []string{"a", "bbbb"}, [][]string{{"1", "2"}, {"333", "4"}})
	out := b.String()
	if !strings.Contains(out, "Title") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "333") || !strings.Contains(out, "bbbb") {
		t.Errorf("table body wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
	// Short row is padded, not panicking.
	var b2 strings.Builder
	Table(&b2, "", []string{"x", "y"}, [][]string{{"only"}})
	if !strings.Contains(b2.String(), "only") {
		t.Error("short row dropped")
	}
}

func TestECDFQuantilesAndAt(t *testing.T) {
	var b strings.Builder
	s := []Series{
		{Name: "IPv4", Values: []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}},
		{Name: "IPv6", Values: nil},
	}
	ECDFQuantiles(&b, "fig", s, []float64{0.5, 0.9})
	out := b.String()
	if !strings.Contains(out, "IPv4 (n=10)") || !strings.Contains(out, "5.50") {
		t.Errorf("quantile table wrong:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Error("empty series should print dashes")
	}
	var b2 strings.Builder
	ECDFAt(&b2, "fig", s, []float64{5})
	if !strings.Contains(b2.String(), "0.500") {
		t.Errorf("ECDFAt wrong:\n%s", b2.String())
	}
}

func TestHeatmapRendering(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	ys := []float64{10, 20, 30, 40, 50, 60, 70, 80}
	h, err := stats.DecileHeatmap(xs, ys, 4)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	Heatmap(&b, "hm", h, func(v float64) string { return DurationLabel(v) },
		func(v float64) string { return MsLabel(v) })
	out := b.String()
	if !strings.Contains(out, "hm (n=8)") || !strings.Contains(out, "row%") {
		t.Errorf("heatmap output wrong:\n%s", out)
	}
}

func TestDensityAndKeyValues(t *testing.T) {
	var b strings.Builder
	Density(&b, "d", []Series{{Name: "all", Values: []float64{20, 25, 30}}}, 0, 50, 6)
	if !strings.Contains(b.String(), "all (n=3)") {
		t.Errorf("density output wrong:\n%s", b.String())
	}
	var b2 strings.Builder
	KeyValues(&b2, "metrics", map[string]float64{"b": 2, "a": 1.5})
	out := b2.String()
	ai := strings.Index(out, "a ")
	bi := strings.Index(out, "b ")
	if ai < 0 || bi < 0 || ai > bi {
		t.Errorf("keyvalues not sorted:\n%s", out)
	}
}

func TestLabels(t *testing.T) {
	if DurationLabel(5) != "5.0h" {
		t.Errorf("hours label = %s", DurationLabel(5))
	}
	if DurationLabel(48) != "2.0D" {
		t.Errorf("days label = %s", DurationLabel(48))
	}
	if DurationLabel(24*90) != "3.0M" {
		t.Errorf("months label = %s", DurationLabel(24*90))
	}
	if MsLabel(26.1) != "26.1ms" || MsLabel(2500) != "2.5s" {
		t.Error("ms labels wrong")
	}
}
