// Package mapping implements a measurement-driven request-mapping system —
// the consumer the paper names for its data ("these measurements serve as
// input to the CDN's mapping system, which is responsible for determining
// how to map end-user requests to appropriate CDN servers", §2, citing
// Nygren et al. and Chen et al.).
//
// Clients are represented by clusters hosted inside their (eyeball) ASes:
// candidate serving clusters ping those vantage clusters on a schedule, and
// the mapper assigns each client AS the candidate with the lowest median
// RTT. Because the simulator can compute the noise-free best candidate, the
// mapper's decisions are scored against an oracle.
package mapping

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cdn"
	"repro/internal/core/stats"
	"repro/internal/probe"
)

// Config parameterizes the measurement schedule.
type Config struct {
	// Rounds of pings per (candidate, client) pair and their spacing.
	Rounds   int
	Interval time.Duration
	// Start offsets the campaign on the virtual clock.
	Start time.Duration
}

// DefaultConfig measures each pair 12 times over 3 hours.
func DefaultConfig() Config {
	return Config{Rounds: 12, Interval: 15 * time.Minute}
}

// Assignment is one client's mapping decision.
type Assignment struct {
	Client    *cdn.Cluster
	Candidate *cdn.Cluster
	// MedianRTTms is the measured median RTT of the chosen candidate.
	MedianRTTms float64
	// Measured counts received pings across all candidates.
	Measured int
}

// System holds mapping decisions for a set of clients.
type System struct {
	assignments map[int]*Assignment // client cluster id -> assignment
	candidates  []*cdn.Cluster
}

// Build measures candidates → clients and computes assignments.
func Build(p *probe.Prober, candidates, clients []*cdn.Cluster, cfg Config) (*System, error) {
	if len(candidates) == 0 || len(clients) == 0 {
		return nil, fmt.Errorf("mapping: need candidates and clients")
	}
	if cfg.Rounds <= 0 || cfg.Interval <= 0 {
		return nil, fmt.Errorf("mapping: non-positive schedule")
	}
	s := &System{
		assignments: make(map[int]*Assignment, len(clients)),
		candidates:  candidates,
	}
	for _, client := range clients {
		best := (*Assignment)(nil)
		total := 0
		for _, cand := range candidates {
			if cand.ID == client.ID {
				continue
			}
			var rtts []float64
			for r := 0; r < cfg.Rounds; r++ {
				at := cfg.Start + time.Duration(r)*cfg.Interval
				ping := p.Ping(cand, client, false, at)
				if ping.Lost {
					continue
				}
				rtts = append(rtts, float64(ping.RTT)/float64(time.Millisecond))
			}
			total += len(rtts)
			if len(rtts) == 0 {
				continue
			}
			med := stats.Median(rtts)
			if best == nil || med < best.MedianRTTms {
				best = &Assignment{Client: client, Candidate: cand, MedianRTTms: med}
			}
		}
		if best != nil {
			best.Measured = total
			s.assignments[client.ID] = best
		}
	}
	return s, nil
}

// Best returns the assignment for a client cluster id.
func (s *System) Best(clientID int) (*Assignment, bool) {
	a, ok := s.assignments[clientID]
	return a, ok
}

// Assignments returns all decisions sorted by client id.
func (s *System) Assignments() []*Assignment {
	out := make([]*Assignment, 0, len(s.assignments))
	for _, a := range s.assignments {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Client.ID < out[j].Client.ID })
	return out
}

// Oracle scores the mapper against a noise-free RTT function (the
// simulator's BaseRTT): it returns the fraction of clients mapped to the
// true best candidate, and the mean extra latency (ms) incurred by
// non-optimal choices (the "stretch").
func (s *System) Oracle(baseRTT func(cand, client *cdn.Cluster) (time.Duration, bool)) (optimalFrac, meanExtraMs float64) {
	if len(s.assignments) == 0 {
		return 0, 0
	}
	optimal := 0
	extra := 0.0
	scored := 0
	for _, a := range s.assignments {
		bestCand := (*cdn.Cluster)(nil)
		var bestRTT time.Duration
		for _, cand := range s.candidates {
			if cand.ID == a.Client.ID {
				continue
			}
			rtt, ok := baseRTT(cand, a.Client)
			if !ok {
				continue
			}
			if bestCand == nil || rtt < bestRTT {
				bestCand, bestRTT = cand, rtt
			}
		}
		if bestCand == nil {
			continue
		}
		scored++
		chosenRTT, ok := baseRTT(a.Candidate, a.Client)
		if !ok {
			continue
		}
		if a.Candidate.ID == bestCand.ID {
			optimal++
		} else {
			extra += float64(chosenRTT-bestRTT) / float64(time.Millisecond)
		}
	}
	if scored == 0 {
		return 0, 0
	}
	return float64(optimal) / float64(scored), extra / float64(scored)
}
