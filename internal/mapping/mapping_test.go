package mapping

import (
	"testing"
	"time"

	"repro/internal/astopo"
	"repro/internal/bgp"
	"repro/internal/cdn"
	"repro/internal/itopo"
	"repro/internal/probe"
	"repro/internal/simnet"
)

func world(t *testing.T, seed int64) (*probe.Prober, *simnet.Net, *cdn.Platform) {
	t.Helper()
	dur := 7 * 24 * time.Hour
	topo, err := astopo.Generate(astopo.DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	rnet, err := itopo.Build(topo, itopo.DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := bgp.NewDynamics(topo, bgp.DefaultDynConfig(seed, dur))
	if err != nil {
		t.Fatal(err)
	}
	plat, err := cdn.Deploy(rnet, cdn.DefaultConfig(seed, 120))
	if err != nil {
		t.Fatal(err)
	}
	sim := simnet.New(rnet, dyn, nil, simnet.DefaultConfig(seed))
	return probe.New(sim), sim, plat
}

// split picks candidates from clusters hosted in the CDN's own AS and
// clients from third-party-hosted clusters.
func split(plat *cdn.Platform, nCand, nClients int) (cands, clients []*cdn.Cluster) {
	for _, c := range plat.Clusters {
		if len(cands) < nCand && c.HostAS == 20940 {
			cands = append(cands, c)
		} else if len(clients) < nClients && c.HostAS != 20940 {
			clients = append(clients, c)
		}
	}
	return cands, clients
}

func TestBuildAssignsEveryClient(t *testing.T) {
	p, _, plat := world(t, 1)
	cands, clients := split(plat, 8, 10)
	if len(cands) < 2 || len(clients) < 2 {
		t.Skipf("split too small: %d candidates, %d clients", len(cands), len(clients))
	}
	sys, err := Build(p, cands, clients, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	as := sys.Assignments()
	if len(as) != len(clients) {
		t.Fatalf("assignments = %d, want %d", len(as), len(clients))
	}
	for _, a := range as {
		if a.Candidate == nil || a.MedianRTTms <= 0 {
			t.Errorf("bad assignment for client %d: %+v", a.Client.ID, a)
		}
		if a.Candidate.ID == a.Client.ID {
			t.Error("client mapped to itself")
		}
	}
	if _, ok := sys.Best(clients[0].ID); !ok {
		t.Error("Best lookup failed")
	}
	if _, ok := sys.Best(-1); ok {
		t.Error("unknown client should miss")
	}
}

func TestOracleQuality(t *testing.T) {
	p, sim, plat := world(t, 2)
	cands, clients := split(plat, 10, 12)
	if len(cands) < 3 || len(clients) < 3 {
		t.Skip("split too small")
	}
	sys, err := Build(p, cands, clients, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	baseRTT := func(cand, client *cdn.Cluster) (time.Duration, bool) {
		rtt, err := sim.BaseRTT(cand, client, false, 1, 2, time.Hour)
		if err != nil {
			return 0, false
		}
		return rtt, true
	}
	optimal, extra := sys.Oracle(baseRTT)
	t.Logf("mapping: %.0f%% of clients at the true optimum, mean stretch %.2f ms", 100*optimal, extra)
	// Median-of-12 pings should find the best candidate almost always.
	if optimal < 0.6 {
		t.Errorf("optimal fraction = %.2f, want >= 0.6", optimal)
	}
	if extra > 20 {
		t.Errorf("mean extra latency = %.1f ms, want small", extra)
	}
}

func TestBuildValidation(t *testing.T) {
	p, _, plat := world(t, 3)
	cands, clients := split(plat, 4, 4)
	if _, err := Build(p, nil, clients, DefaultConfig()); err == nil {
		t.Error("no candidates should error")
	}
	if _, err := Build(p, cands, nil, DefaultConfig()); err == nil {
		t.Error("no clients should error")
	}
	if _, err := Build(p, cands, clients, Config{Rounds: 0, Interval: time.Minute}); err == nil {
		t.Error("zero rounds should error")
	}
}
