package geo

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestHaversineKnownDistances(t *testing.T) {
	cases := []struct {
		a, b   string
		wantKm float64
		within float64 // relative tolerance
	}{
		{"New York", "London", 5570, 0.02},
		{"Tokyo", "Osaka", 400, 0.05},
		{"Hong Kong", "Osaka", 2480, 0.03},
		{"Sydney", "Los Angeles", 12050, 0.02},
		{"Frankfurt", "Singapore", 10260, 0.02},
	}
	for _, c := range cases {
		a, ok := CityByName(c.a)
		if !ok {
			t.Fatalf("city %q missing", c.a)
		}
		b, ok := CityByName(c.b)
		if !ok {
			t.Fatalf("city %q missing", c.b)
		}
		got := a.DistanceKm(b)
		if rel := math.Abs(got-c.wantKm) / c.wantKm; rel > c.within {
			t.Errorf("%s-%s distance = %.0f km, want ~%.0f km", c.a, c.b, got, c.wantKm)
		}
	}
}

func TestHaversineProperties(t *testing.T) {
	// Symmetry and non-negativity over random coordinate pairs.
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		lat1 = math.Mod(lat1, 90)
		lat2 = math.Mod(lat2, 90)
		lon1 = math.Mod(lon1, 180)
		lon2 = math.Mod(lon2, 180)
		d1 := HaversineKm(lat1, lon1, lat2, lon2)
		d2 := HaversineKm(lat2, lon2, lat1, lon1)
		if d1 < 0 || math.IsNaN(d1) {
			return false
		}
		// Symmetric within floating error.
		return math.Abs(d1-d2) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHaversineZeroAndAntipodal(t *testing.T) {
	if d := HaversineKm(10, 20, 10, 20); d != 0 {
		t.Errorf("distance to self = %v, want 0", d)
	}
	// Antipodal points: half the Earth's circumference.
	d := HaversineKm(0, 0, 0, 180)
	want := math.Pi * EarthRadiusKm
	if math.Abs(d-want) > 1 {
		t.Errorf("antipodal distance = %.1f, want %.1f", d, want)
	}
}

func TestFiberDelay(t *testing.T) {
	// 1000 km at 0.68c with no stretch: ~4.9 ms one-way.
	d := FiberDelay(1000, 1)
	if d < 4700*time.Microsecond || d > 5100*time.Microsecond {
		t.Errorf("FiberDelay(1000,1) = %v, want ~4.9ms", d)
	}
	// Stretch scales linearly.
	if d2 := FiberDelay(1000, 2); math.Abs(float64(d2)-2*float64(d)) > float64(time.Microsecond) {
		t.Errorf("stretch 2 should double delay: %v vs %v", d2, d)
	}
	// Stretch below 1 is clamped.
	if d3 := FiberDelay(1000, 0.5); d3 != d {
		t.Errorf("stretch <1 should clamp to 1: %v vs %v", d3, d)
	}
}

func TestCRTTAndInflation(t *testing.T) {
	ny, _ := CityByName("New York")
	la, _ := CityByName("Los Angeles")
	c := CRTT(ny, la)
	// ~3940 km great circle → cRTT ≈ 26.3 ms.
	if c < 24*time.Millisecond || c > 29*time.Millisecond {
		t.Errorf("CRTT(NY,LA) = %v, want ~26ms", c)
	}
	// Observed 70 ms gives inflation ≈ 2.7.
	infl := InflationRatio(70*time.Millisecond, ny, la)
	if infl < 2.3 || infl > 3.0 {
		t.Errorf("inflation = %.2f, want ~2.7", infl)
	}
	// Colocated endpoints: inflation defined as 0.
	if got := InflationRatio(time.Millisecond, ny, ny); got != 0 {
		t.Errorf("colocated inflation = %v, want 0", got)
	}
}

func TestLocalHour(t *testing.T) {
	tokyo, _ := CityByName("Tokyo")
	// Campaign starts 00:00 UTC → Tokyo is at 09:00.
	if h := tokyo.LocalHour(0); math.Abs(h-9) > 1e-9 {
		t.Errorf("Tokyo local hour at t=0: %v, want 9", h)
	}
	// 20 hours later: 05:00 next day.
	if h := tokyo.LocalHour(20 * time.Hour); math.Abs(h-5) > 1e-9 {
		t.Errorf("Tokyo local hour at t=20h: %v, want 5", h)
	}
	ny, _ := CityByName("New York")
	// New York at UTC-5: t=0 is 19:00 previous day.
	if h := ny.LocalHour(0); math.Abs(h-19) > 1e-9 {
		t.Errorf("NY local hour at t=0: %v, want 19", h)
	}
}

func TestCityDatabase(t *testing.T) {
	if len(Cities) < 100 {
		t.Fatalf("city database has %d cities, want >= 100", len(Cities))
	}
	countries := map[string]bool{}
	continents := map[Continent]bool{}
	for _, c := range Cities {
		countries[c.Country] = true
		continents[c.Continent] = true
		if c.Lat < -90 || c.Lat > 90 || c.Lon < -180 || c.Lon > 180 {
			t.Errorf("city %s has invalid coordinates (%v, %v)", c.Name, c.Lat, c.Lon)
		}
		if c.UTCOffset < -12 || c.UTCOffset > 14 {
			t.Errorf("city %s has invalid UTC offset %v", c.Name, c.UTCOffset)
		}
	}
	if len(countries) < 60 {
		t.Errorf("database covers %d countries, want >= 60", len(countries))
	}
	if len(continents) != 6 {
		t.Errorf("database covers %d continents, want 6", len(continents))
	}
}

func TestCityLookups(t *testing.T) {
	if _, ok := CityByName("Atlantis"); ok {
		t.Error("CityByName should not find Atlantis")
	}
	us := CitiesIn("US")
	if len(us) < 20 {
		t.Errorf("US cities = %d, want >= 20 (paper: 39%% of servers in US)", len(us))
	}
	for _, c := range us {
		if c.Country != "US" {
			t.Errorf("CitiesIn(US) returned %s (%s)", c.Name, c.Country)
		}
	}
	asia := CitiesOn(Asia)
	if len(asia) < 15 {
		t.Errorf("Asia cities = %d, want >= 15", len(asia))
	}
	for _, c := range asia {
		if c.Continent != Asia {
			t.Errorf("CitiesOn(Asia) returned %s (%v)", c.Name, c.Continent)
		}
	}
}

func TestTranscontinental(t *testing.T) {
	ny, _ := CityByName("New York")
	la, _ := CityByName("Los Angeles")
	tokyo, _ := CityByName("Tokyo")
	if Transcontinental(ny, la) {
		t.Error("NY-LA should not be transcontinental")
	}
	if !Transcontinental(ny, tokyo) {
		t.Error("NY-Tokyo should be transcontinental")
	}
}

func TestContinentString(t *testing.T) {
	if Europe.String() != "Europe" {
		t.Errorf("Europe.String() = %q", Europe.String())
	}
	if s := Continent(99).String(); s != "Continent(99)" {
		t.Errorf("unknown continent string = %q", s)
	}
}
