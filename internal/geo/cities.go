package geo

import (
	"fmt"
	"sort"
)

// Cities is the built-in world city database: ~120 cities chosen to mirror
// the paper's platform footprint (USA-heavy, then Australia, Germany, India,
// Japan, Canada, plus broad coverage of 60+ other countries). Coordinates
// are real; UTC offsets are standard-time offsets.
//
// The slice is sorted by name and must be treated as read-only.
var Cities = []City{
	// --- United States (the paper: ~39% of servers) ---
	{"New York", "US", NorthAmerica, 40.71, -74.01, -5},
	{"Los Angeles", "US", NorthAmerica, 34.05, -118.24, -8},
	{"Chicago", "US", NorthAmerica, 41.88, -87.63, -6},
	{"Dallas", "US", NorthAmerica, 32.78, -96.80, -6},
	{"Miami", "US", NorthAmerica, 25.76, -80.19, -5},
	{"Seattle", "US", NorthAmerica, 47.61, -122.33, -8},
	{"San Jose", "US", NorthAmerica, 37.34, -121.89, -8},
	{"Ashburn", "US", NorthAmerica, 39.04, -77.49, -5},
	{"Atlanta", "US", NorthAmerica, 33.75, -84.39, -5},
	{"Denver", "US", NorthAmerica, 39.74, -104.99, -7},
	{"Phoenix", "US", NorthAmerica, 33.45, -112.07, -7},
	{"Boston", "US", NorthAmerica, 42.36, -71.06, -5},
	{"Houston", "US", NorthAmerica, 29.76, -95.37, -6},
	{"Minneapolis", "US", NorthAmerica, 44.98, -93.27, -6},
	{"Portland", "US", NorthAmerica, 45.52, -122.68, -8},
	{"Salt Lake City", "US", NorthAmerica, 40.76, -111.89, -7},
	{"Kansas City", "US", NorthAmerica, 39.10, -94.58, -6},
	{"St. Louis", "US", NorthAmerica, 38.63, -90.20, -6},
	{"Philadelphia", "US", NorthAmerica, 39.95, -75.17, -5},
	{"Detroit", "US", NorthAmerica, 42.33, -83.05, -5},
	{"Nashville", "US", NorthAmerica, 36.16, -86.78, -6},
	{"Las Vegas", "US", NorthAmerica, 36.17, -115.14, -8},
	{"Charlotte", "US", NorthAmerica, 35.23, -80.84, -5},
	{"Columbus", "US", NorthAmerica, 39.96, -83.00, -5},
	{"Honolulu", "US", NorthAmerica, 21.31, -157.86, -10},
	{"Anchorage", "US", NorthAmerica, 61.22, -149.90, -9},

	// --- Canada ---
	{"Toronto", "CA", NorthAmerica, 43.65, -79.38, -5},
	{"Montreal", "CA", NorthAmerica, 45.50, -73.57, -5},
	{"Vancouver", "CA", NorthAmerica, 49.28, -123.12, -8},
	{"Calgary", "CA", NorthAmerica, 51.05, -114.07, -7},

	// --- Mexico / Central America / Caribbean ---
	{"Mexico City", "MX", NorthAmerica, 19.43, -99.13, -6},
	{"Panama City", "PA", NorthAmerica, 8.98, -79.52, -5},
	{"San Juan", "PR", NorthAmerica, 18.47, -66.11, -4},

	// --- South America ---
	{"Sao Paulo", "BR", SouthAmerica, -23.55, -46.63, -3},
	{"Rio de Janeiro", "BR", SouthAmerica, -22.91, -43.17, -3},
	{"Buenos Aires", "AR", SouthAmerica, -34.60, -58.38, -3},
	{"Santiago", "CL", SouthAmerica, -33.45, -70.67, -4},
	{"Bogota", "CO", SouthAmerica, 4.71, -74.07, -5},
	{"Lima", "PE", SouthAmerica, -12.05, -77.04, -5},
	{"Caracas", "VE", SouthAmerica, 10.48, -66.90, -4},

	// --- Europe (Germany prominent per the paper) ---
	{"Frankfurt", "DE", Europe, 50.11, 8.68, 1},
	{"Berlin", "DE", Europe, 52.52, 13.40, 1},
	{"Munich", "DE", Europe, 48.14, 11.58, 1},
	{"Hamburg", "DE", Europe, 53.55, 9.99, 1},
	{"Dusseldorf", "DE", Europe, 51.23, 6.78, 1},
	{"London", "GB", Europe, 51.51, -0.13, 0},
	{"Manchester", "GB", Europe, 53.48, -2.24, 0},
	{"Amsterdam", "NL", Europe, 52.37, 4.90, 1},
	{"Paris", "FR", Europe, 48.86, 2.35, 1},
	{"Marseille", "FR", Europe, 43.30, 5.37, 1},
	{"Madrid", "ES", Europe, 40.42, -3.70, 1},
	{"Barcelona", "ES", Europe, 41.39, 2.17, 1},
	{"Milan", "IT", Europe, 45.46, 9.19, 1},
	{"Rome", "IT", Europe, 41.90, 12.50, 1},
	{"Zurich", "CH", Europe, 47.38, 8.54, 1},
	{"Vienna", "AT", Europe, 48.21, 16.37, 1},
	{"Brussels", "BE", Europe, 50.85, 4.35, 1},
	{"Stockholm", "SE", Europe, 59.33, 18.07, 1},
	{"Copenhagen", "DK", Europe, 55.68, 12.57, 1},
	{"Oslo", "NO", Europe, 59.91, 10.75, 1},
	{"Helsinki", "FI", Europe, 60.17, 24.94, 2},
	{"Warsaw", "PL", Europe, 52.23, 21.01, 1},
	{"Prague", "CZ", Europe, 50.09, 14.42, 1},
	{"Budapest", "HU", Europe, 47.50, 19.04, 1},
	{"Bucharest", "RO", Europe, 44.43, 26.10, 2},
	{"Sofia", "BG", Europe, 42.70, 23.32, 2},
	{"Athens", "GR", Europe, 37.98, 23.73, 2},
	{"Lisbon", "PT", Europe, 38.72, -9.14, 0},
	{"Dublin", "IE", Europe, 53.35, -6.26, 0},
	{"Kyiv", "UA", Europe, 50.45, 30.52, 2},
	{"Moscow", "RU", Europe, 55.76, 37.62, 3},
	{"Istanbul", "TR", Europe, 41.01, 28.98, 3},

	// --- Asia (India, Japan prominent per the paper) ---
	{"Tokyo", "JP", Asia, 35.68, 139.69, 9},
	{"Osaka", "JP", Asia, 34.69, 135.50, 9},
	{"Seoul", "KR", Asia, 37.57, 126.98, 9},
	{"Hong Kong", "HK", Asia, 22.32, 114.17, 8},
	{"Singapore", "SG", Asia, 1.35, 103.82, 8},
	{"Taipei", "TW", Asia, 25.03, 121.57, 8},
	{"Shanghai", "CN", Asia, 31.23, 121.47, 8},
	{"Beijing", "CN", Asia, 39.90, 116.41, 8},
	{"Mumbai", "IN", Asia, 19.08, 72.88, 5.5},
	{"Delhi", "IN", Asia, 28.70, 77.10, 5.5},
	{"Chennai", "IN", Asia, 13.08, 80.27, 5.5},
	{"Bangalore", "IN", Asia, 12.97, 77.59, 5.5},
	{"Kolkata", "IN", Asia, 22.57, 88.36, 5.5},
	{"Bangkok", "TH", Asia, 13.76, 100.50, 7},
	{"Kuala Lumpur", "MY", Asia, 3.14, 101.69, 8},
	{"Jakarta", "ID", Asia, -6.21, 106.85, 7},
	{"Manila", "PH", Asia, 14.60, 120.98, 8},
	{"Hanoi", "VN", Asia, 21.03, 105.85, 7},
	{"Dubai", "AE", Asia, 25.20, 55.27, 4},
	{"Riyadh", "SA", Asia, 24.71, 46.68, 3},
	{"Doha", "QA", Asia, 25.29, 51.53, 3},
	{"Tel Aviv", "IL", Asia, 32.09, 34.78, 2},
	{"Karachi", "PK", Asia, 24.86, 67.00, 5},
	{"Dhaka", "BD", Asia, 23.81, 90.41, 6},
	{"Colombo", "LK", Asia, 6.93, 79.85, 5.5},
	{"Almaty", "KZ", Asia, 43.22, 76.85, 6},

	// --- Africa ---
	{"Johannesburg", "ZA", Africa, -26.20, 28.05, 2},
	{"Cape Town", "ZA", Africa, -33.92, 18.42, 2},
	{"Cairo", "EG", Africa, 30.04, 31.24, 2},
	{"Lagos", "NG", Africa, 6.52, 3.38, 1},
	{"Nairobi", "KE", Africa, -1.29, 36.82, 3},
	{"Casablanca", "MA", Africa, 33.57, -7.59, 0},
	{"Accra", "GH", Africa, 5.60, -0.19, 0},
	{"Tunis", "TN", Africa, 36.81, 10.18, 1},

	// --- Oceania (Australia prominent per the paper) ---
	{"Sydney", "AU", Oceania, -33.87, 151.21, 10},
	{"Melbourne", "AU", Oceania, -37.81, 144.96, 10},
	{"Brisbane", "AU", Oceania, -27.47, 153.03, 10},
	{"Perth", "AU", Oceania, -31.95, 115.86, 8},
	{"Adelaide", "AU", Oceania, -34.93, 138.60, 9.5},
	{"Auckland", "NZ", Oceania, -36.85, 174.76, 12},
	{"Wellington", "NZ", Oceania, -41.29, 174.78, 12},
}

var cityByName map[string]int

func init() {
	sort.Slice(Cities, func(i, j int) bool { return Cities[i].Name < Cities[j].Name })
	cityByName = make(map[string]int, len(Cities))
	for i, c := range Cities {
		if _, dup := cityByName[c.Name]; dup {
			panic(fmt.Sprintf("geo: duplicate city %q", c.Name))
		}
		cityByName[c.Name] = i
	}
}

// CityByName returns the city with the given name from the built-in
// database.
func CityByName(name string) (City, bool) {
	i, ok := cityByName[name]
	if !ok {
		return City{}, false
	}
	return Cities[i], true
}

// CitiesIn returns all built-in cities in the given country.
func CitiesIn(country string) []City {
	var out []City
	for _, c := range Cities {
		if c.Country == country {
			out = append(out, c)
		}
	}
	return out
}

// CitiesOn returns all built-in cities on the given continent.
func CitiesOn(cont Continent) []City {
	var out []City
	for _, c := range Cities {
		if c.Continent == cont {
			out = append(out, c)
		}
	}
	return out
}
