// Package geo provides the geographic substrate for the simulated Internet
// core: a database of world cities with real coordinates, great-circle
// distance, fiber propagation delay, and the speed-of-light round-trip time
// (cRTT) used by the paper's inflation metric (Figure 10b).
package geo

import (
	"fmt"
	"math"
	"time"
)

// Physical constants used throughout the simulator.
const (
	// SpeedOfLightKmPerSec is the speed of light in free space. The paper
	// defines cRTT using free-space light speed.
	SpeedOfLightKmPerSec = 299792.458

	// FiberVelocityFactor is the fraction of c at which signals propagate in
	// optical fiber (refractive index ~1.47).
	FiberVelocityFactor = 0.68

	// EarthRadiusKm is the mean Earth radius used by the haversine formula.
	EarthRadiusKm = 6371.0
)

// Continent identifies one of the populated continents.
type Continent uint8

// Continents, in no particular order.
const (
	NorthAmerica Continent = iota
	SouthAmerica
	Europe
	Asia
	Africa
	Oceania
)

var continentNames = [...]string{
	NorthAmerica: "North America",
	SouthAmerica: "South America",
	Europe:       "Europe",
	Asia:         "Asia",
	Africa:       "Africa",
	Oceania:      "Oceania",
}

// String returns the human-readable continent name.
func (c Continent) String() string {
	if int(c) < len(continentNames) {
		return continentNames[c]
	}
	return fmt.Sprintf("Continent(%d)", uint8(c))
}

// City is a point location where network infrastructure (routers, IXPs,
// datacenters, CDN clusters) can be placed.
type City struct {
	Name      string
	Country   string // ISO 3166-1 alpha-2
	Continent Continent
	Lat       float64 // degrees, +N
	Lon       float64 // degrees, +E
	UTCOffset float64 // hours east of UTC, standard time (no DST)
}

// LocalHour returns the local hour-of-day (0 ≤ h < 24, fractional) for the
// city at the given offset from the campaign start. The campaign clock is
// defined to start at 00:00 UTC.
func (c City) LocalHour(sinceStart time.Duration) float64 {
	h := math.Mod(sinceStart.Hours()+c.UTCOffset, 24)
	if h < 0 {
		h += 24
	}
	return h
}

// DistanceKm returns the great-circle distance between two cities.
func (c City) DistanceKm(o City) float64 {
	return HaversineKm(c.Lat, c.Lon, o.Lat, o.Lon)
}

// HaversineKm returns the great-circle distance in kilometers between two
// points given in degrees.
func HaversineKm(lat1, lon1, lat2, lon2 float64) float64 {
	const degToRad = math.Pi / 180
	φ1, φ2 := lat1*degToRad, lat2*degToRad
	dφ := (lat2 - lat1) * degToRad
	dλ := (lon2 - lon1) * degToRad
	a := math.Sin(dφ/2)*math.Sin(dφ/2) +
		math.Cos(φ1)*math.Cos(φ2)*math.Sin(dλ/2)*math.Sin(dλ/2)
	return 2 * EarthRadiusKm * math.Asin(math.Min(1, math.Sqrt(a)))
}

// FiberDelay returns the one-way propagation delay over a fiber path of the
// given great-circle length. Real fiber paths are longer than great circles;
// pathStretch (≥ 1) accounts for that. A stretch of 1 means a perfectly
// straight fiber run.
func FiberDelay(distKm, pathStretch float64) time.Duration {
	if pathStretch < 1 {
		pathStretch = 1
	}
	sec := distKm * pathStretch / (SpeedOfLightKmPerSec * FiberVelocityFactor)
	return time.Duration(sec * float64(time.Second))
}

// CRTT returns the round-trip time for light in free space over the
// great-circle distance between two cities — the denominator of the paper's
// inflation metric (Figure 10b).
func CRTT(a, b City) time.Duration {
	sec := 2 * a.DistanceKm(b) / SpeedOfLightKmPerSec
	return time.Duration(sec * float64(time.Second))
}

// InflationRatio returns observed/cRTT, the paper's path inflation metric.
// It returns 0 when the endpoints are colocated (cRTT of zero).
func InflationRatio(observed time.Duration, a, b City) float64 {
	c := CRTT(a, b)
	if c <= 0 {
		return 0
	}
	return float64(observed) / float64(c)
}

// Transcontinental reports whether two cities are on different continents.
func Transcontinental(a, b City) bool { return a.Continent != b.Continent }
