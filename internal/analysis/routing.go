package analysis

import (
	"repro/internal/core/aspath"
	"repro/internal/trace"
)

// routingOp detects routing changes the way §4.1 does, but incrementally:
// per directed-pair-and-protocol timeline it keeps only the last usable
// AS path; when the next complete traceroute infers a different path, the
// token-level edit distance between the two becomes a finding.
type routingOp struct {
	mapper *aspath.Mapper
	last   map[trace.PairKey]aspath.Path
	counts map[trace.PairKey]int64
	total  int64
	topK   int
}

func newRoutingOp(m *aspath.Mapper, topK int) *routingOp {
	return &routingOp{
		mapper: m,
		last:   make(map[trace.PairKey]aspath.Path),
		counts: make(map[trace.PairKey]int64),
		topK:   topK,
	}
}

func (o *routingOp) name() string { return Routing }

func (o *routingOp) onTraceroute(tr *trace.Traceroute, emit func(Finding)) {
	if o.mapper == nil || !tr.Complete {
		return
	}
	// Infer allocates a fresh path, so retaining it never pins the
	// (pooled) record. Only usable paths enter the timeline, matching
	// timeline.Builder's batch semantics.
	r := o.mapper.Infer(tr)
	if !r.Usable() {
		return
	}
	k := tr.Key()
	prev, seen := o.last[k]
	o.last[k] = r.Path
	if !seen || prev.Equal(r.Path) {
		return
	}
	o.counts[k]++
	o.total++
	emit(Finding{
		Analysis: Routing,
		At:       tr.At,
		Src:      tr.SrcID,
		Dst:      tr.DstID,
		V6:       tr.V6,
		Value:    int64(aspath.EditDistance(prev, r.Path)),
	})
}

func (o *routingOp) onPing(*trace.Ping, func(Finding)) {}

func (o *routingOp) finish(func(Finding)) {}

func (o *routingOp) status() OpStatus {
	return OpStatus{
		Name:     Routing,
		Pairs:    len(o.last),
		Findings: o.total,
		TopPairs: topPairs(o.counts, o.topK),
	}
}
