package analysis

import (
	"fmt"
	"math"
	"net/netip"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core/aspath"
	"repro/internal/ipam"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/store"
	"repro/internal/trace"
)

// testMapper maps 10.<i>.0.0/16 to AS 100+i, so synthetic traceroutes can
// spell out AS paths by hop address.
func testMapper(t *testing.T) *aspath.Mapper {
	t.Helper()
	table := ipam.NewTable()
	for i := 0; i < 10; i++ {
		p := netip.MustParsePrefix(fmt.Sprintf("10.%d.0.0/16", i))
		if err := table.Insert(p, ipam.ASN(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	return aspath.NewMapper(table)
}

// tracert builds a complete traceroute whose AS path is 100 (the source's
// AS) followed by 100+a for each a in hopASes.
func tracert(src, dst int, v6 bool, at time.Duration, rttMs float64, hopASes []int) *trace.Traceroute {
	tr := &trace.Traceroute{
		SrcID: src, DstID: dst, V6: v6,
		Src:      netip.MustParseAddr("10.0.0.1"),
		At:       at,
		Complete: true,
		RTT:      time.Duration(rttMs * float64(time.Millisecond)),
	}
	for _, a := range hopASes {
		tr.Hops = append(tr.Hops, trace.Hop{
			Addr: netip.MustParseAddr(fmt.Sprintf("10.%d.0.1", a)),
			RTT:  time.Duration(10 * float64(time.Millisecond)),
		})
	}
	return tr
}

func pingAt(src, dst int, at time.Duration, rttMs float64) *trace.Ping {
	return &trace.Ping{
		SrcID: src, DstID: dst, At: at,
		RTT: time.Duration(rttMs * float64(time.Millisecond)),
	}
}

// diurnalMs is a raised-cosine busy-hour bump (peak at hour 20) plus a
// deterministic sub-millisecond wobble.
func diurnalMs(at time.Duration, amp float64) float64 {
	hour := math.Mod(at.Hours(), 24)
	d := math.Abs(hour - 20)
	if d > 12 {
		d = 24 - d
	}
	base := 80 + 0.3*math.Sin(float64(at)/1e12)
	if d >= 3 {
		return base
	}
	return base + amp*0.5*(1+math.Cos(2*math.Pi*d/6))
}

func collectStage(cfg Config) (*Stage, *[]Finding) {
	var got []Finding
	cfg.Sink = func(f Finding) { got = append(got, f) }
	return NewStage(cfg, nil, nil), &got
}

func TestRoutingFindings(t *testing.T) {
	stage, got := collectStage(Config{Mapper: testMapper(t), Interval: 3 * time.Hour})
	// Pair 1->2 every 3h for 3 days; the path swaps one AS at 30h and
	// swaps back at 51h: two changes, edit distance 1 each.
	for at := time.Duration(0); at < 72*time.Hour; at += 3 * time.Hour {
		hops := []int{1, 2, 3}
		if at >= 30*time.Hour && at < 51*time.Hour {
			hops = []int{1, 4, 3}
		}
		stage.OnTraceroute(tracert(1, 2, false, at, 40, hops))
	}
	stage.Finish()
	want := []Finding{
		{Analysis: Routing, At: 30 * time.Hour, Src: 1, Dst: 2, Value: 1},
		{Analysis: Routing, At: 51 * time.Hour, Src: 1, Dst: 2, Value: 1},
	}
	if err := DiffStreams(want, *got); err != nil {
		t.Fatalf("routing findings: %v (got %v)", err, *got)
	}
	st := stage.Status()
	if st.Findings != 2 || st.Analyses[0].Name != Routing || st.Analyses[0].Pairs != 1 {
		t.Errorf("status = %+v", st)
	}
	if tp := st.Analyses[0].TopPairs; len(tp) != 1 || tp[0].Count != 2 {
		t.Errorf("top pairs = %+v", tp)
	}
}

func TestDualstackFindings(t *testing.T) {
	stage, got := collectStage(Config{Mapper: testMapper(t), Interval: 3 * time.Hour})
	// Pair 5<->6 measured on both protocols each round for two days, with
	// v4 80 ms slower than v6: one finding per day, not per round.
	for at := time.Duration(0); at < 48*time.Hour; at += 3 * time.Hour {
		stage.OnTraceroute(tracert(5, 6, false, at, 160, []int{1, 2}))
		stage.OnTraceroute(tracert(5, 6, true, at, 80, []int{1, 2}))
	}
	stage.Finish()
	var ds []Finding
	for _, f := range *got {
		if f.Analysis == Dualstack {
			ds = append(ds, f)
		}
	}
	if len(ds) != 2 {
		t.Fatalf("dualstack findings = %v, want one per day", ds)
	}
	for _, f := range ds {
		if f.Src != 5 || f.Dst != 6 || f.V6 || f.Value != 80 {
			t.Errorf("finding = %+v, want 5->6 v4 delta +80", f)
		}
	}
}

func TestCongestionFindings(t *testing.T) {
	iv := 15 * time.Minute
	stage, got := collectStage(Config{
		Mapper:   testMapper(t),
		Interval: iv,
		Window:   4 * 24 * time.Hour,
	})
	// Pair 7->8: strong diurnal congestion. Pair 7->9: flat. Nine days of
	// pings cover two full four-day windows plus a residual one.
	for at := time.Duration(0); at < 9*24*time.Hour; at += iv {
		stage.OnPing(pingAt(7, 8, at, diurnalMs(at, 30)))
		stage.OnPing(pingAt(7, 9, at, diurnalMs(at, 0)))
	}
	stage.Finish()
	if len(*got) == 0 {
		t.Fatal("no congestion findings from a congested pair")
	}
	for _, f := range *got {
		if f.Analysis != Congestion || f.Src != 7 || f.Dst != 8 {
			t.Fatalf("finding = %+v, want congestion on 7->8 only", f)
		}
		if f.At%(4*24*time.Hour) != 0 {
			t.Errorf("finding at %v, want a window boundary", f.At)
		}
		if f.Value < 10 {
			t.Errorf("finding variation %d ms, want >= detector threshold", f.Value)
		}
	}
	st := stage.Status()
	var cong OpStatus
	for _, op := range st.Analyses {
		if op.Name == Congestion {
			cong = op
		}
	}
	if cong.Pairs != 2 || cong.Windows < 4 {
		t.Errorf("congestion status = %+v, want 2 pairs and >= 4 windows", cong)
	}
}

// synthMixedStream builds a multi-day stream exercising all three
// operators across several pairs, in the interleaved per-round order a
// live campaign delivers.
func synthMixedStream() []any {
	var out []any
	iv := 3 * time.Hour
	for at := time.Duration(0); at < 5*24*time.Hour; at += iv {
		day := int(at / (24 * time.Hour))
		for pair := 0; pair < 4; pair++ {
			src, dst := 1+pair, 10+pair
			hops := []int{1, 2 + (day+pair)%3, 3}
			out = append(out, tracert(src, dst, false, at, 40+float64(pair), hops))
			if pair%2 == 0 {
				out = append(out, tracert(src, dst, true, at, 120+float64(10*pair), hops))
			}
		}
		for sub := time.Duration(0); sub < iv; sub += 15 * time.Minute {
			out = append(out, pingAt(6, 16, at+sub, diurnalMs(at+sub, 30)))
		}
	}
	return out
}

func feed(s *Stage, records []any) {
	for _, r := range records {
		switch r := r.(type) {
		case *trace.Traceroute:
			s.OnTraceroute(r)
		case *trace.Ping:
			s.OnPing(r)
		}
	}
	s.Finish()
}

// TestLiveVsStoreReplay pins the determinism contract end to end at the
// package level: the finding stream of a live-order feed equals the stream
// produced by replaying the same records from an archived store, at one
// and at four scan workers.
func TestLiveVsStoreReplay(t *testing.T) {
	records := synthMixedStream()
	cfg := Config{Mapper: testMapper(t), Interval: 3 * time.Hour}

	live, liveGot := collectStage(cfg)
	feed(live, records)
	if len(*liveGot) == 0 {
		t.Fatal("synthetic stream produced no findings; the equivalence check would be vacuous")
	}

	dir := filepath.Join(t.TempDir(), "mixed.store")
	w, err := store.Create(dir, store.Options{Tool: "test", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range records {
		switch r := r.(type) {
		case *trace.Traceroute:
			err = w.WriteTraceroute(r)
		case *trace.Ping:
			err = w.WritePing(r)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4} {
		st, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		replay, replayGot := collectStage(cfg)
		if err := st.Scan(workers, replay); err != nil {
			t.Fatal(err)
		}
		replay.Finish()
		if err := DiffStreams(*liveGot, *replayGot); err != nil {
			t.Errorf("store replay at %d workers: %v", workers, err)
		}
	}

	// A second identical live feed is byte-for-byte the same stream.
	again, againGot := collectStage(cfg)
	feed(again, records)
	if err := DiffStreams(*liveGot, *againGot); err != nil {
		t.Errorf("repeat live feed: %v", err)
	}
}

// TestStageFlightEvents checks the event families a stage writes into the
// flight record: finding events round-trip through ParseFinding and every
// flush emits per-operator partial-result snapshots.
func TestStageFlightEvents(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.trace")
	reg := obs.NewRegistry()
	rec, err := flight.Create(path, flight.Options{Tool: "test", Registry: reg, MetricsInterval: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	stage := NewStage(Config{Mapper: testMapper(t), Interval: 3 * time.Hour}, reg, rec)
	var want []Finding
	stage.sink = func(f Finding) { want = append(want, f) }
	feed(stage, synthMixedStream())
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := FindingsFromTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no finding events in the trace")
	}
	if err := DiffStreams(want, got); err != nil {
		t.Fatalf("trace round-trip: %v", err)
	}
	if got[0] != want[0] {
		t.Errorf("first finding decoded as %+v, want %+v", got[0], want[0])
	}

	tr, err := flight.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	partials := map[string]int{}
	for i := range tr.Records {
		r := &tr.Records[i]
		if r.K == flight.KEvent && r.Ph == flight.PhAnalysisPartial {
			partials[r.S]++
		}
	}
	for _, name := range []string{Routing, Congestion, Dualstack} {
		if partials[name] == 0 {
			t.Errorf("no partial-result events for %q (got %v)", name, partials)
		}
	}

	snap := reg.Snapshot()
	if n := snap.SumFamily(MetricFindings); n != int64(len(want)) {
		t.Errorf("findings counter = %d, want %d", n, len(want))
	}
	if snap.SumFamily(MetricWindows) == 0 {
		t.Error("windows counter never moved")
	}
	if stage.Total() != int64(len(want)) {
		t.Errorf("Total() = %d, want %d", stage.Total(), len(want))
	}
}

// TestFindingParseRejectsOtherEvents pins ParseFinding to the finding
// phase and the v6 suffix convention.
func TestFindingParseRejectsOtherEvents(t *testing.T) {
	if _, ok := ParseFinding(&flight.Record{K: flight.KEvent, Ph: flight.PhAlert}); ok {
		t.Error("alert event parsed as finding")
	}
	if _, ok := ParseFinding(&flight.Record{K: flight.KSpan, Ph: flight.PhFinding}); ok {
		t.Error("span parsed as finding")
	}
	f, ok := ParseFinding(&flight.Record{
		K: flight.KEvent, Ph: flight.PhFinding,
		VT: int64(36 * time.Hour), S: "congestion_v6", N: 3, M: 9, ID: 27,
	})
	if !ok || f.Analysis != Congestion || !f.V6 || f.Src != 3 || f.Dst != 9 || f.Value != 27 {
		t.Errorf("parsed = %+v ok=%v", f, ok)
	}
}

func TestDiffStreams(t *testing.T) {
	a := Finding{Analysis: Routing, At: time.Hour, Src: 1, Dst: 2, Value: 1}
	b := Finding{Analysis: Routing, At: 2 * time.Hour, Src: 1, Dst: 2, Value: 2}
	if err := DiffStreams([]Finding{a, b}, []Finding{a, b}); err != nil {
		t.Errorf("equal streams: %v", err)
	}
	if err := DiffStreams([]Finding{a, b}, []Finding{a}); err == nil {
		t.Error("length mismatch not reported")
	}
	if err := DiffStreams([]Finding{a, b}, []Finding{b, a}); err == nil {
		t.Error("divergence not reported")
	}
}

// TestNilStage pins the nil-receiver no-op contract the CLIs rely on.
func TestNilStage(t *testing.T) {
	var s *Stage
	s.OnTraceroute(tracert(1, 2, false, 0, 10, []int{1}))
	s.OnPing(pingAt(1, 2, 0, 10))
	s.Finish()
	if s.Total() != 0 {
		t.Error("nil stage total != 0")
	}
	if st := s.Status(); st.Findings != 0 || st.Analyses != nil {
		t.Errorf("nil stage status = %+v", st)
	}
}

// TestFlushOrderWithinDay: findings generated out of canonical order
// within one virtual day are emitted sorted, and only once the watermark
// clears the day boundary plus slack.
func TestFlushOrderWithinDay(t *testing.T) {
	stage, got := collectStage(Config{Mapper: testMapper(t), Interval: 3 * time.Hour})
	// Two pairs change routes in the same day, delivered higher-pair
	// first; canonical order sorts by At then pair.
	stage.OnTraceroute(tracert(9, 2, false, 3*time.Hour, 40, []int{1, 2}))
	stage.OnTraceroute(tracert(1, 2, false, 3*time.Hour, 40, []int{1, 2}))
	stage.OnTraceroute(tracert(9, 2, false, 9*time.Hour, 40, []int{1, 3}))
	stage.OnTraceroute(tracert(1, 2, false, 10*time.Hour, 40, []int{1, 3}))
	if len(*got) != 0 {
		t.Fatalf("findings flushed before the day boundary: %v", *got)
	}
	// 24h+slack has not passed yet at 24h30m: still buffered.
	stage.OnTraceroute(tracert(3, 4, false, 24*time.Hour+30*time.Minute, 40, []int{1, 2}))
	if len(*got) != 0 {
		t.Fatalf("findings flushed inside the slack window: %v", *got)
	}
	stage.OnTraceroute(tracert(3, 4, false, 25*time.Hour+time.Minute, 40, []int{1, 2}))
	want := []Finding{
		{Analysis: Routing, At: 9 * time.Hour, Src: 9, Dst: 2, Value: 1},
		{Analysis: Routing, At: 10 * time.Hour, Src: 1, Dst: 2, Value: 1},
	}
	if err := DiffStreams(want, *got); err != nil {
		t.Fatalf("day flush: %v (got %v)", err, *got)
	}
	stage.Finish()
	if len(*got) != 2 {
		t.Errorf("finish added findings: %v", *got)
	}
}
