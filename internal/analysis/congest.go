package analysis

import (
	"math"
	"time"

	"repro/internal/core/congest"
	"repro/internal/trace"
)

// congestOp runs the §5.1 consistent-congestion detector over a rolling
// per-pair RTT window: samples fill interval-wide slots; when a pair's
// stream moves past its current window the window is handed to the
// core/fft + core/congest detector, and a congested verdict becomes a
// finding at the window's end. Pings and complete traceroutes both
// contribute their end-to-end RTT.
type congestOp struct {
	det        congest.Detector
	interval   time.Duration
	window     time.Duration
	slots      int
	minSamples int

	pairs   map[trace.PairKey]*pairWindow
	counts  map[trace.PairKey]int64 // congested windows per pair
	windows int64                   // windows evaluated
	total   int64
}

// pairWindow is one pair's current window: idx = At/window, one RTT slot
// per interval, NaN = no sample.
type pairWindow struct {
	idx      int64
	rtt      []float64
	received int
}

func newCongestOp(interval, window time.Duration, minSamples int, det congest.Detector) *congestOp {
	slots := 0
	if interval > 0 {
		slots = int(window / interval)
	}
	return &congestOp{
		det:        det,
		interval:   interval,
		window:     window,
		slots:      slots,
		minSamples: minSamples,
		pairs:      make(map[trace.PairKey]*pairWindow),
		counts:     make(map[trace.PairKey]int64),
	}
}

func (o *congestOp) name() string { return Congestion }

func (o *congestOp) onTraceroute(tr *trace.Traceroute, emit func(Finding)) {
	if !tr.Complete {
		return
	}
	o.sample(tr.Key(), tr.At, float64(tr.RTT)/float64(time.Millisecond), false, emit)
}

func (o *congestOp) onPing(p *trace.Ping, emit func(Finding)) {
	o.sample(p.Key(), p.At, float64(p.RTT)/float64(time.Millisecond), p.Lost, emit)
}

// sample files one RTT observation, rolling (and evaluating) the pair's
// window when the observation belongs to a later one. Samples that lag
// the current window (a retried measurement straddling the roll) are
// dropped — deterministically, since the per-pair delivery order is the
// same live and on replay.
func (o *congestOp) sample(k trace.PairKey, at time.Duration, rttMs float64, lost bool, emit func(Finding)) {
	if o.slots <= 0 {
		return
	}
	w := int64(at / o.window)
	pw := o.pairs[k]
	if pw == nil {
		pw = &pairWindow{idx: w, rtt: nanWindow(o.slots)}
		o.pairs[k] = pw
	}
	if w != pw.idx {
		if w < pw.idx {
			return
		}
		o.evaluate(k, pw, emit)
		pw.idx = w
		for i := range pw.rtt {
			pw.rtt[i] = math.NaN()
		}
		pw.received = 0
	}
	if lost {
		return
	}
	slot := int((at - time.Duration(w)*o.window) / o.interval)
	if slot < 0 || slot >= o.slots {
		return
	}
	if math.IsNaN(pw.rtt[slot]) {
		pw.received++
	}
	pw.rtt[slot] = rttMs
}

// evaluate runs the detector over a completed window.
func (o *congestOp) evaluate(k trace.PairKey, pw *pairWindow, emit func(Finding)) {
	o.windows++
	if pw.received < o.minSamples {
		return
	}
	s := &congest.Series{Key: k, Interval: o.interval, RTTms: pw.rtt, Received: pw.received}
	if !o.det.Congested(s) {
		return
	}
	o.counts[k]++
	o.total++
	emit(Finding{
		Analysis: Congestion,
		At:       time.Duration(pw.idx+1) * o.window,
		Src:      k.SrcID,
		Dst:      k.DstID,
		V6:       k.V6,
		Value:    int64(math.Round(s.VariationMs())),
	})
}

// finish evaluates every open window: a campaign that ends mid-window
// still reports congestion the batch analysis would find.
func (o *congestOp) finish(emit func(Finding)) {
	for k, pw := range o.pairs {
		o.evaluate(k, pw, emit)
	}
}

func (o *congestOp) status() OpStatus {
	return OpStatus{
		Name:     Congestion,
		Pairs:    len(o.pairs),
		Windows:  o.windows,
		Findings: o.total,
		TopPairs: topPairs(o.counts, 5),
	}
}

func nanWindow(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = math.NaN()
	}
	return out
}
