// Package analysis runs the paper's three headline analyses — routing
// changes, consistent congestion, dual-stack RTT deltas — as incremental
// streaming operators over a live record stream, instead of a batch pass
// over a finished dataset.
//
// A Stage is a campaign.Consumer fan-out member: attach it next to the
// dataset sink (campaign.Multi{sink, stage}) and it folds every record
// into per-pair operator state, emitting typed `finding` events and
// periodic windowed partial-result snapshots into the flight record, plus
// s2s_analysis_* registry metrics and a live Status for the ops server's
// /analysisz endpoint.
//
// Design rules:
//
//   - Observation only: a Stage never produces a value the simulation
//     reads, so the dataset record stream is byte-identical with the stage
//     attached or not (finding/partial events go through
//     flight.Recorder.Announce, which does not advance the snapshot clock).
//   - Streaming: the stage implements campaign.RecordStreamer and never
//     retains a delivered record — every retained value (AS paths, RTT
//     samples) is copied or derived inside the On* call, so the engine's
//     record pooling stays on.
//   - Deterministic: records arrive on one goroutine in schedule order at
//     any worker count, and findings are flushed per virtual day in a
//     canonical sort order, so a live campaign and a replay of its
//     archived store through the same operators emit the same finding
//     stream (see the live-equivalence tests and s2sanalyze
//     -live-equivalent).
package analysis

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core/aspath"
	"repro/internal/core/congest"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/trace"
)

// Metric families the stage registers. The findings counter feeds the
// alert engine's finding_surge rule.
const (
	MetricFindings = "s2s_analysis_findings_total"
	MetricPairs    = "s2s_analysis_pairs"
	MetricWindows  = "s2s_analysis_windows_total"
)

// Analysis names, the S attribute of finding and partial events (findings
// on IPv6 timelines carry a "_v6" suffix on the wire).
const (
	Routing    = "routing"
	Congestion = "congestion"
	Dualstack  = "dualstack"
)

// flushDay is the finding-flush granularity. It matches the dataset
// store's day-major shard order (store.DayLength default): both a live
// campaign and a store replay deliver every day-d record before any
// day-d+1 record, so sorting each day's findings canonically makes the
// two streams identical. flushSlack delays the flush past the boundary to
// absorb retried measurements whose virtual timestamps were pushed past
// their round by backoff (capped far below an hour at default settings).
const (
	flushDay   = 24 * time.Hour
	flushSlack = time.Hour
)

// Finding is one streaming-analysis result: a routing change, a congested
// window, or a large dual-stack delta on one pair.
type Finding struct {
	// Analysis is Routing, Congestion, or Dualstack.
	Analysis string `json:"analysis"`
	// At is the finding's virtual time: the observation for routing and
	// dualstack, the window end for congestion.
	At time.Duration `json:"at"`
	// Src and Dst are the pair's cluster ids. V6 marks the IPv6 timeline
	// (always false for dualstack, which spans both protocols).
	Src int  `json:"src"`
	Dst int  `json:"dst"`
	V6  bool `json:"v6,omitempty"`
	// Value is the finding magnitude: AS-path edit distance (routing),
	// rounded p95−p5 RTT variation in ms (congestion), or the rounded
	// signed RTTv4−RTTv6 delta in ms (dualstack).
	Value int64 `json:"value"`
}

// String renders the finding for logs and diffs.
func (f Finding) String() string {
	proto := ""
	if f.V6 {
		proto = " v6"
	}
	return fmt.Sprintf("%s @%s %d->%d%s value %d", f.Analysis, f.At, f.Src, f.Dst, proto, f.Value)
}

// attrs encodes the finding as flight-event attributes.
func (f Finding) attrs() flight.Attrs {
	s := f.Analysis
	if f.V6 {
		s += "_v6"
	}
	return flight.Attrs{ID: f.Value, N: int64(f.Src), M: int64(f.Dst), S: s}
}

// ParseFinding decodes a finding event. The second return is false for
// any other record kind or phase.
func ParseFinding(r *flight.Record) (Finding, bool) {
	if r.K != flight.KEvent || r.Ph != flight.PhFinding {
		return Finding{}, false
	}
	name, v6 := strings.CutSuffix(r.S, "_v6")
	return Finding{
		Analysis: name,
		At:       time.Duration(r.VT),
		Src:      int(r.N),
		Dst:      int(r.M),
		V6:       v6,
		Value:    r.ID,
	}, true
}

// less is the canonical finding order within one flush bucket.
func (f Finding) less(g Finding) bool {
	if f.At != g.At {
		return f.At < g.At
	}
	if f.Analysis != g.Analysis {
		return f.Analysis < g.Analysis
	}
	if f.Src != g.Src {
		return f.Src < g.Src
	}
	if f.Dst != g.Dst {
		return f.Dst < g.Dst
	}
	if f.V6 != g.V6 {
		return !f.V6
	}
	return f.Value < g.Value
}

// PairCount is one entry of an operator's top-K most-active pairs.
type PairCount struct {
	Src   int   `json:"src"`
	Dst   int   `json:"dst"`
	V6    bool  `json:"v6,omitempty"`
	Count int64 `json:"count"`
}

// OpStatus is the live state of one operator, for /analysisz and the
// partial-result events.
type OpStatus struct {
	// Name is the analysis name.
	Name string `json:"name"`
	// Pairs is the operator's pair coverage: distinct pairs that
	// contributed at least one usable observation.
	Pairs int `json:"pairs"`
	// Windows counts evaluated windows (congestion only).
	Windows int64 `json:"windows,omitempty"`
	// Findings emitted so far (including buffered, unflushed ones).
	Findings int64 `json:"findings"`
	// TopPairs ranks the most-active pairs (routing: most changes).
	TopPairs []PairCount `json:"top_pairs,omitempty"`
}

// Status is the /analysisz payload.
type Status struct {
	// Findings counts emitted (flushed) findings across all operators.
	Findings int64 `json:"findings"`
	// Analyses holds one entry per operator, in a fixed order.
	Analyses []OpStatus `json:"analyses"`
}

// operator is one incremental per-pair analysis. Operators run under the
// stage mutex on the delivery goroutine and must derive everything they
// retain (records are recycled after the call returns).
type operator interface {
	name() string
	onTraceroute(tr *trace.Traceroute, emit func(Finding))
	onPing(p *trace.Ping, emit func(Finding))
	// finish evaluates residual state (open windows) at end of stream.
	finish(emit func(Finding))
	status() OpStatus
}

// Config parameterizes a Stage. The zero value of every field but Mapper
// and Interval picks the documented default.
type Config struct {
	// Mapper resolves hop addresses to ASes for the routing-change
	// operator (and must match the dataset's .bgp.tsv sidecar when
	// replaying). Required.
	Mapper *aspath.Mapper
	// Interval is the campaign's measurement cadence — the RTT-series
	// slot width of the congestion operator. Required.
	Interval time.Duration
	// Window is the congestion evaluation window span (default 2 days).
	Window time.Duration
	// MinWindowSamples gates window evaluation on coverage (default 80%
	// of the window's slots, mirroring the paper's ≥600-of-672 rule).
	MinWindowSamples int
	// Detector holds the congestion thresholds (default: the paper's).
	Detector congest.Detector
	// DeltaThresholdMs is the |RTTv4−RTTv6| magnitude that makes a
	// dual-stack delta a finding (default 50 ms, the paper's tail cut).
	DeltaThresholdMs float64
	// TopK bounds the top-changing-pairs list in Status (default 5).
	TopK int
	// Sink, when set, additionally receives every finding in emission
	// order (the -live-equivalent collector and tests).
	Sink func(Finding)
}

func (c Config) fill() Config {
	if c.Window <= 0 {
		c.Window = 2 * flushDay
	}
	if c.Interval > 0 && c.MinWindowSamples <= 0 {
		c.MinWindowSamples = int(c.Window/c.Interval) * 80 / 100
		if c.MinWindowSamples < 1 {
			c.MinWindowSamples = 1
		}
	}
	if c.Detector.VariationMs == 0 && c.Detector.PSDThreshold == 0 {
		c.Detector = congest.DefaultDetector()
	}
	if c.DeltaThresholdMs <= 0 {
		c.DeltaThresholdMs = 50
	}
	if c.TopK <= 0 {
		c.TopK = 5
	}
	return c
}

// Stage attaches the streaming operators to a record stream. It
// implements campaign.Consumer (fan it out with campaign.Multi) and
// campaign.RecordStreamer (it never retains a record). All methods are
// safe for concurrent use and no-ops on a nil receiver; record delivery
// itself arrives on one goroutine, the mutex exists so the ops server can
// read Status mid-run.
type Stage struct {
	mu   sync.Mutex
	ops  []operator
	rec  *flight.Recorder
	sink func(Finding)

	// Day-bucketed findings pending flush, keyed by the virtual day of
	// the record that produced them.
	pending   map[int64][]Finding
	flushed   int64         // next day bucket to flush
	watermark time.Duration // max record timestamp seen
	total     int64         // findings emitted (flushed)
	finished  bool

	findingsC   map[string]*obs.Counter
	pairsG      map[string]*obs.Gauge
	windowsC    *obs.Counter
	prevWindows int64

	// emitDay and emitFn avoid a per-record closure allocation: emitFn is
	// bound once and buckets into the day set before each record.
	emitDay int64
	emitFn  func(Finding)
}

// NewStage builds a stage with the three operators. reg and rec may be
// nil (metrics and events are then dropped); cfg.Mapper must be set for
// the routing operator to see any usable paths.
func NewStage(cfg Config, reg *obs.Registry, rec *flight.Recorder) *Stage {
	cfg = cfg.fill()
	s := &Stage{
		rec:     rec,
		sink:    cfg.Sink,
		pending: make(map[int64][]Finding),
	}
	s.emitFn = func(f Finding) { s.bufferLocked(s.emitDay, f) }
	s.ops = []operator{
		newRoutingOp(cfg.Mapper, cfg.TopK),
		newCongestOp(cfg.Interval, cfg.Window, cfg.MinWindowSamples, cfg.Detector.WithMetrics(reg)),
		newDualstackOp(cfg.DeltaThresholdMs),
	}
	s.findingsC = make(map[string]*obs.Counter, len(s.ops))
	s.pairsG = make(map[string]*obs.Gauge, len(s.ops))
	for _, op := range s.ops {
		n := op.name()
		s.findingsC[n] = reg.Counter(fmt.Sprintf("%s{analysis=%q}", MetricFindings, n),
			"streaming-analysis findings emitted")
		s.pairsG[n] = reg.Gauge(fmt.Sprintf("%s{analysis=%q}", MetricPairs, n),
			"pairs covered by the streaming analysis")
	}
	s.windowsC = reg.Counter(fmt.Sprintf("%s{analysis=%q}", MetricWindows, Congestion),
		"congestion windows evaluated by the streaming analysis")
	return s
}

// StreamsRecords reports that delivered records may be recycled after the
// On* call: the stage copies everything it keeps.
func (s *Stage) StreamsRecords() bool { return true }

// OnTraceroute folds one traceroute into every operator.
func (s *Stage) OnTraceroute(tr *trace.Traceroute) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.emitDay = int64(tr.At / flushDay)
	for _, op := range s.ops {
		op.onTraceroute(tr, s.emitFn)
	}
	s.advanceLocked(tr.At)
	s.mu.Unlock()
}

// OnPing folds one ping into every operator.
func (s *Stage) OnPing(p *trace.Ping) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.emitDay = int64(p.At / flushDay)
	for _, op := range s.ops {
		op.onPing(p, s.emitFn)
	}
	s.advanceLocked(p.At)
	s.mu.Unlock()
}

// bufferLocked queues a finding in its day bucket. A bucket that already
// flushed (possible only when retry backoff exceeds flushSlack, outside
// the documented envelope) degrades to the lowest open bucket rather than
// dropping the finding.
func (s *Stage) bufferLocked(day int64, f Finding) {
	if day < s.flushed {
		day = s.flushed
	}
	s.pending[day] = append(s.pending[day], f)
}

// advanceLocked moves the watermark and flushes every day bucket the
// stream has safely moved past.
func (s *Stage) advanceLocked(at time.Duration) {
	if at > s.watermark {
		s.watermark = at
	}
	for time.Duration(s.flushed+1)*flushDay+flushSlack <= s.watermark {
		s.flushDayLocked(s.flushed)
		s.flushed++
	}
}

// flushDayLocked emits day d's findings in canonical order, then one
// partial-result event per operator at the day boundary.
func (s *Stage) flushDayLocked(d int64) {
	fs := s.pending[d]
	delete(s.pending, d)
	sort.Slice(fs, func(i, j int) bool { return fs[i].less(fs[j]) })
	for i := range fs {
		s.emitFindingLocked(fs[i])
	}
	s.partialsLocked(time.Duration(d+1) * flushDay)
}

// emitFindingLocked writes one finding event and updates the counters.
func (s *Stage) emitFindingLocked(f Finding) {
	s.total++
	s.findingsC[f.Analysis].Inc()
	s.rec.Announce(flight.PhFinding, f.At, f.attrs())
	if s.sink != nil {
		s.sink(f)
	}
}

// partialsLocked emits one windowed partial-result event per operator and
// refreshes the coverage gauges.
func (s *Stage) partialsLocked(vt time.Duration) {
	var windows int64
	for _, op := range s.ops {
		st := op.status()
		s.rec.Announce(flight.PhAnalysisPartial, vt, flight.Attrs{
			S: st.Name, N: int64(st.Pairs), M: st.Findings, ID: st.Windows,
		})
		s.pairsG[st.Name].Set(float64(st.Pairs))
		windows += st.Windows
	}
	if d := windows - s.prevWindows; d > 0 {
		s.windowsC.Add(d)
		s.prevWindows = windows
	}
}

// Finish flushes the remaining day buckets, evaluates residual operator
// state (open congestion windows), and emits a final partial-result set.
// Call once, after the last record; it is idempotent.
func (s *Stage) Finish() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.finished {
		return
	}
	s.finished = true
	days := make([]int64, 0, len(s.pending))
	for d := range s.pending {
		days = append(days, d)
	}
	sort.Slice(days, func(i, j int) bool { return days[i] < days[j] })
	for _, d := range days {
		fs := s.pending[d]
		delete(s.pending, d)
		sort.Slice(fs, func(i, j int) bool { return fs[i].less(fs[j]) })
		for i := range fs {
			s.emitFindingLocked(fs[i])
		}
	}
	// Residual findings (open windows) come last, in canonical order —
	// the same per-pair state exists live and on replay, so the tail of
	// the stream matches too.
	var tail []Finding
	for _, op := range s.ops {
		op.finish(func(f Finding) { tail = append(tail, f) })
	}
	sort.Slice(tail, func(i, j int) bool { return tail[i].less(tail[j]) })
	for i := range tail {
		s.emitFindingLocked(tail[i])
	}
	s.partialsLocked(s.watermark)
}

// Total returns the number of findings emitted so far.
func (s *Stage) Total() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Status returns the live per-operator state.
func (s *Stage) Status() Status {
	if s == nil {
		return Status{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := Status{Findings: s.total}
	for _, op := range s.ops {
		out.Analyses = append(out.Analyses, op.status())
	}
	return out
}

// AnalysisStatus implements the ops server's AnalysisSource, backing the
// /analysisz endpoint.
func (s *Stage) AnalysisStatus() any { return s.Status() }

// FindingsFromTrace extracts the finding stream of a flight record, in
// file (= emission) order.
func FindingsFromTrace(path string) ([]Finding, error) {
	tr, err := flight.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []Finding
	for i := range tr.Records {
		if f, ok := ParseFinding(&tr.Records[i]); ok {
			out = append(out, f)
		}
	}
	return out, nil
}

// DiffStreams compares two ordered finding streams and returns nil when
// they match, or an error describing the first divergence — the
// live-vs-replay equivalence check behind s2sanalyze -live-equivalent.
func DiffStreams(want, got []Finding) error {
	n := len(want)
	if len(got) < n {
		n = len(got)
	}
	for i := 0; i < n; i++ {
		if want[i] != got[i] {
			return fmt.Errorf("finding %d diverges: live {%s} vs replay {%s}", i, want[i], got[i])
		}
	}
	if len(want) != len(got) {
		return fmt.Errorf("finding streams differ in length: live %d vs replay %d", len(want), len(got))
	}
	return nil
}

// topPairs ranks a per-pair counter map, ties broken by key for
// determinism.
func topPairs(counts map[trace.PairKey]int64, k int) []PairCount {
	keys := make([]trace.PairKey, 0, len(counts))
	for key := range counts {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if counts[a] != counts[b] {
			return counts[a] > counts[b]
		}
		if a.SrcID != b.SrcID {
			return a.SrcID < b.SrcID
		}
		if a.DstID != b.DstID {
			return a.DstID < b.DstID
		}
		return !a.V6 && b.V6
	})
	if len(keys) > k {
		keys = keys[:k]
	}
	out := make([]PairCount, len(keys))
	for i, key := range keys {
		out[i] = PairCount{Src: key.SrcID, Dst: key.DstID, V6: key.V6, Count: counts[key]}
	}
	return out
}
