package analysis

import (
	"math"
	"time"

	"repro/internal/trace"
)

// dualstackOp streams the Figure 10a pairing: the v4 and v6 traceroutes
// of a pair measured in the same round (round-adjacent, any order) yield
// one RTTv4−RTTv6 delta. Deltas at or past the threshold become findings,
// deduplicated per pair per virtual day so a persistently asymmetric pair
// reports once a day instead of once a round. The pending-map protocol
// mirrors dualstack.DiffCollector; the undirected (src,dst) key is the
// same protocol-blind pairing the store's shard hash preserves.
type dualstackOp struct {
	threshold float64
	pending   map[[2]int]dsHalf
	covered   map[trace.PairKey]int64 // paired deltas per pair (v4 key)
	lastDay   map[[2]int]int64
	total     int64
}

// dsHalf is one protocol's measurement awaiting its round partner. Only
// scalars are kept — nothing pins the delivered record.
type dsHalf struct {
	at    time.Duration
	v6    bool
	rttMs float64
}

func newDualstackOp(thresholdMs float64) *dualstackOp {
	return &dualstackOp{
		threshold: thresholdMs,
		pending:   make(map[[2]int]dsHalf),
		covered:   make(map[trace.PairKey]int64),
		lastDay:   make(map[[2]int]int64),
	}
}

func (o *dualstackOp) name() string { return Dualstack }

func (o *dualstackOp) onTraceroute(tr *trace.Traceroute, emit func(Finding)) {
	if !tr.Complete {
		return
	}
	cur := dsHalf{at: tr.At, v6: tr.V6, rttMs: float64(tr.RTT) / float64(time.Millisecond)}
	k := [2]int{tr.SrcID, tr.DstID}
	prev, ok := o.pending[k]
	if !ok || prev.at != tr.At || prev.v6 == tr.V6 {
		o.pending[k] = cur
		return
	}
	delete(o.pending, k)
	v4, v6 := prev, cur
	if v4.v6 {
		v4, v6 = v6, v4
	}
	o.covered[trace.PairKey{SrcID: k[0], DstID: k[1]}]++
	diff := v4.rttMs - v6.rttMs
	if math.Abs(diff) < o.threshold {
		return
	}
	day := int64(tr.At / flushDay)
	if last, seen := o.lastDay[k]; seen && last == day {
		return
	}
	o.lastDay[k] = day
	o.total++
	emit(Finding{
		Analysis: Dualstack,
		At:       tr.At,
		Src:      k[0],
		Dst:      k[1],
		Value:    int64(math.Round(diff)),
	})
}

func (o *dualstackOp) onPing(*trace.Ping, func(Finding)) {}

func (o *dualstackOp) finish(func(Finding)) {}

func (o *dualstackOp) status() OpStatus {
	return OpStatus{
		Name:     Dualstack,
		Pairs:    len(o.covered),
		Findings: o.total,
		TopPairs: topPairs(o.covered, 5),
	}
}
