// Package store is the sharded, indexed on-disk dataset store. A store is
// a directory of shard files plus a manifest: records are routed at write
// time by (virtual day, pair shard), each shard holds records in the
// internal/trace binary framing (optionally gzip-compressed) followed by a
// footer index (record counts, time span, pair set), and manifest.json
// pins the run that produced the store (seed, topology digest) next to the
// shard table.
//
// The layout exists so dataset size is independent of RAM and so readers
// parallelize at the I/O level:
//
//   - Scan decodes shards on a worker pool and delivers records in a fixed
//     shard order (day-major, pair-shard-minor), which preserves the
//     per-pair record order of the writing campaign — both protocols of a
//     directed pair hash to the same pair shard, so round-adjacent v4/v6
//     measurements stay adjacent.
//   - Pairs pushes pair predicates down to the index: only shards whose
//     footer pair set can contain a requested key are opened, and within a
//     shard frames are skipped at the frame-header level (never fully
//     decoded) unless they match.
//   - TimeRange prunes shards by the footer time span.
//
// Instrument and Trace thread the obs metrics registry and the flight
// recorder through reads and writes; like everywhere else in the pipeline,
// observation never alters the record stream.
package store

import (
	"fmt"
	"hash/fnv"
	"time"

	"repro/internal/trace"
)

// Metric names exported by Writer.Instrument and Store.Instrument.
const (
	MetricShardsWritten  = "s2s_store_shards_written_total"
	MetricRecordsWritten = "s2s_store_records_written_total"
	MetricBytesWritten   = "s2s_store_bytes_written_total"
	MetricShardsScanned  = "s2s_store_shards_scanned_total"
	MetricShardsPruned   = "s2s_store_shards_pruned_total"
	MetricBytesRead      = "s2s_store_bytes_read_total"
	MetricRecordsRead    = "s2s_store_records_read_total"
	MetricFramesFiltered = "s2s_store_frames_filtered_total"
)

// ManifestName is the manifest file inside a store directory; its presence
// is what IsStore detects.
const ManifestName = "manifest.json"

// CompressionGzip enables per-shard gzip compression of the record payload
// (footers and the manifest stay uncompressed so pruning never inflates).
const CompressionGzip = "gzip"

// Options parameterizes a new store.
type Options struct {
	// DayLength is the virtual-day shard granularity (default 24h).
	DayLength time.Duration
	// PairShards is the number of pair-hash columns per day (default 8).
	PairShards int
	// Compression is "" (none) or CompressionGzip.
	Compression string
	// MaxOpenShards bounds the writer's open shard files (default 128). A
	// shard evicted and written to again continues in a follow-up segment
	// file; Compact merges segments without re-decoding records.
	MaxOpenShards int

	// Tool, Seed, and TopoDigest are recorded in the manifest.
	Tool       string
	Seed       int64
	TopoDigest string
}

func (o *Options) withDefaults() (Options, error) {
	out := *o
	if out.DayLength == 0 {
		out.DayLength = 24 * time.Hour
	}
	if out.DayLength < 0 {
		return out, fmt.Errorf("store: negative day length %v", out.DayLength)
	}
	if out.PairShards == 0 {
		out.PairShards = 8
	}
	if out.PairShards < 0 {
		return out, fmt.Errorf("store: negative pair shards %d", out.PairShards)
	}
	if out.MaxOpenShards <= 0 {
		out.MaxOpenShards = 128
	}
	switch out.Compression {
	case "", CompressionGzip:
	default:
		return out, fmt.Errorf("store: unknown compression %q", out.Compression)
	}
	return out, nil
}

// Consumer receives records from a store read. campaign.Collector,
// campaign.Funcs, and every other campaign consumer satisfy it.
type Consumer interface {
	OnTraceroute(*trace.Traceroute)
	OnPing(*trace.Ping)
}

// PairShardOf maps a timeline key to its pair-shard column. The protocol
// bit is deliberately ignored: the v4 and v6 timelines of a directed pair
// live in the same shard, so streaming consumers that pair round-adjacent
// v4/v6 measurements (dualstack.DiffCollector) see them adjacent under
// Scan exactly as they did on the live campaign stream.
func PairShardOf(k trace.PairKey, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := fnv.New64a()
	var buf [16]byte
	putUint64(buf[0:8], uint64(int64(k.SrcID)))
	putUint64(buf[8:16], uint64(int64(k.DstID)))
	h.Write(buf[:])
	return int(h.Sum64() % uint64(shards))
}

func putUint64(b []byte, v uint64) {
	_ = b[7]
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// shardName is the canonical shard file name: day, pair-shard column, and
// the segment sequence number within that cell.
func shardName(day, pairShard, seq int) string {
	return fmt.Sprintf("d%05d-p%02d-s%02d.shard", day, pairShard, seq)
}
