package store

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/trace"
)

// readShardBytes returns a shard's on-disk payload and its decompressed
// record framing (the same slice when the shard is uncompressed).
func readShardBytes(path string, ix *shardIndex) (disk, raw []byte, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	var hdr [headerLen]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return nil, nil, err
	}
	if string(hdr[:len(shardMagic)]) != shardMagic {
		return nil, nil, fmt.Errorf("bad shard magic")
	}
	disk = make([]byte, ix.PayloadBytes)
	if _, err := f.ReadAt(disk, int64(headerLen)); err != nil {
		return nil, nil, err
	}
	if hdr[len(shardMagic)]&flagGzip == 0 {
		return disk, disk, nil
	}
	gr, err := gzip.NewReader(bytes.NewReader(disk))
	if err != nil {
		return nil, nil, err
	}
	buf := bytes.NewBuffer(make([]byte, 0, ix.RawBytes))
	if _, err := io.Copy(buf, gr); err != nil {
		return nil, nil, err
	}
	if err := gr.Close(); err != nil {
		return nil, nil, err
	}
	return disk, buf.Bytes(), nil
}

// Compact merges the segment files of every (day, pair-shard) cell that
// was split by writer eviction into a single shard. Payload bytes are
// copied verbatim — frames are walked with trace.ParseFrameHeader to
// rebuild the footer's pair set, but no record is ever re-decoded, and
// compressed shards are concatenated as gzip members rather than being
// recompressed. Compact operates on a closed store; reopen it afterwards.
func Compact(dir string) error {
	man, err := ReadManifest(dir)
	if err != nil {
		return err
	}
	// Group the (already sorted) shard table by cell.
	var out []ShardEntry
	changed := false
	for i := 0; i < len(man.Shards); {
		j := i
		for j < len(man.Shards) &&
			man.Shards[j].Day == man.Shards[i].Day &&
			man.Shards[j].PairShard == man.Shards[i].PairShard {
			j++
		}
		group := man.Shards[i:j]
		i = j
		if len(group) == 1 {
			out = append(out, group[0])
			continue
		}
		merged, err := mergeSegments(dir, man, group)
		if err != nil {
			return err
		}
		out = append(out, merged)
		changed = true
	}
	if !changed {
		return nil
	}
	man.Shards = out
	sortShards(man.Shards)
	return WriteManifest(dir, man)
}

// mergeSegments concatenates one cell's segments into a fresh seq-0 shard.
func mergeSegments(dir string, man *Manifest, group []ShardEntry) (ShardEntry, error) {
	var merged shardIndex
	pairs := make(map[trace.PairKey]struct{})
	tmpPath := filepath.Join(dir, shardName(group[0].Day, group[0].PairShard, 0)+".tmp")
	tmp, err := os.Create(tmpPath)
	if err != nil {
		return ShardEntry{}, err
	}
	defer os.Remove(tmpPath)
	flags := byte(0)
	if man.Compression == CompressionGzip {
		flags |= flagGzip
	}
	if _, err := tmp.Write(append([]byte(shardMagic), flags)); err != nil {
		tmp.Close()
		return ShardEntry{}, err
	}
	for gi, e := range group {
		ix, err := readFooter(filepath.Join(dir, e.File))
		if err != nil {
			tmp.Close()
			return ShardEntry{}, fmt.Errorf("store: compact %s: %w", e.File, err)
		}
		disk, raw, err := readShardBytes(filepath.Join(dir, e.File), ix)
		if err != nil {
			tmp.Close()
			return ShardEntry{}, fmt.Errorf("store: compact %s: %w", e.File, err)
		}
		// Frame walk: rebuild the pair set without decoding records.
		for off := 0; off < len(raw); {
			h, err := trace.ParseFrameHeader(raw[off:])
			if err != nil {
				tmp.Close()
				return ShardEntry{}, fmt.Errorf("store: compact %s: frame at %d: %w", e.File, off, err)
			}
			pairs[h.Key] = struct{}{}
			off += h.Len
		}
		if _, err := tmp.Write(disk); err != nil {
			tmp.Close()
			return ShardEntry{}, err
		}
		if gi == 0 || ix.MinAt < merged.MinAt {
			merged.MinAt = ix.MinAt
		}
		if gi == 0 || ix.MaxAt > merged.MaxAt {
			merged.MaxAt = ix.MaxAt
		}
		merged.Records += ix.Records
		merged.Traceroutes += ix.Traceroutes
		merged.Pings += ix.Pings
		merged.PayloadBytes += ix.PayloadBytes
		merged.RawBytes += ix.RawBytes
	}
	merged.Exact, merged.Bloom = pairSetOf(pairs)
	footer := encodeIndex(&merged)
	trailer := binary.LittleEndian.AppendUint32(nil, uint32(len(footer)))
	trailer = append(trailer, trailerMagic...)
	if _, err := tmp.Write(footer); err != nil {
		tmp.Close()
		return ShardEntry{}, err
	}
	if _, err := tmp.Write(trailer); err != nil {
		tmp.Close()
		return ShardEntry{}, err
	}
	if err := tmp.Close(); err != nil {
		return ShardEntry{}, err
	}
	for _, e := range group {
		if err := os.Remove(filepath.Join(dir, e.File)); err != nil {
			return ShardEntry{}, err
		}
	}
	final := filepath.Join(dir, shardName(group[0].Day, group[0].PairShard, 0))
	if err := os.Rename(tmpPath, final); err != nil {
		return ShardEntry{}, err
	}
	return ShardEntry{
		File:      filepath.Base(final),
		Day:       group[0].Day,
		PairShard: group[0].PairShard,
		Seq:       0,
		Records:   merged.Records,
		MinAtNS:   int64(merged.MinAt),
		MaxAtNS:   int64(merged.MaxAt),
		Bytes:     int64(headerLen) + merged.PayloadBytes + int64(len(footer)) + trailerLen,
	}, nil
}
