package store

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/trace"
)

// shardInfo is one shard file with its decoded footer.
type shardInfo struct {
	ShardEntry
	ix *shardIndex
}

// Store is an opened dataset store. Reads are safe for concurrent use;
// consumers passed to Scan/Pairs/TimeRange are always called from the
// calling goroutine, in deterministic shard order.
type Store struct {
	dir    string
	man    *Manifest
	shards []shardInfo

	scannedC  *obs.Counter
	prunedC   *obs.Counter
	bytesC    *obs.Counter
	recordsC  *obs.Counter
	filteredC *obs.Counter
	rec       *flight.Recorder
}

// Open reads the manifest and every shard footer of a store directory.
// Footers are small (counts, span, pair set), so opening stays cheap even
// when the payloads do not fit in RAM.
//
// Open also recovers crash debris: segment files a killed writer
// finalized after its last manifest write are adopted, and the torn
// segment it was writing is truncated to its decodable prefix and
// adopted too. The in-memory manifest reflects what is actually readable;
// the on-disk manifest is left untouched (use Resume to continue writing,
// or Verify to audit without modifying anything).
func Open(dir string) (*Store, error) {
	man, err := ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	s := &Store{dir: dir, man: man, shards: make([]shardInfo, 0, len(man.Shards))}
	for _, e := range man.Shards {
		ix, err := readFooter(filepath.Join(dir, e.File))
		if err != nil {
			return nil, fmt.Errorf("store: shard %s: %w", e.File, err)
		}
		if ix.Records != e.Records {
			return nil, fmt.Errorf("store: shard %s: footer holds %d records, manifest says %d",
				e.File, ix.Records, e.Records)
		}
		s.shards = append(s.shards, shardInfo{ShardEntry: e, ix: ix})
	}
	adopted, err := adoptOrphans(dir, man)
	if err != nil {
		return nil, err
	}
	for _, sh := range adopted {
		s.shards = append(s.shards, sh)
		man.Shards = append(man.Shards, sh.ShardEntry)
		man.Records += sh.ix.Records
		man.Traceroutes += sh.ix.Traceroutes
		man.Pings += sh.ix.Pings
	}
	if len(adopted) > 0 {
		sortShards(man.Shards)
		sort.Slice(s.shards, func(i, j int) bool {
			a, b := s.shards[i], s.shards[j]
			if a.Day != b.Day {
				return a.Day < b.Day
			}
			if a.PairShard != b.PairShard {
				return a.PairShard < b.PairShard
			}
			return a.Seq < b.Seq
		})
	}
	return s, nil
}

// Manifest returns the store manifest (shared, do not mutate).
func (s *Store) Manifest() *Manifest { return s.man }

// Instrument registers read-side telemetry: shards scanned vs pruned,
// payload bytes read off disk, records delivered, frames skipped by
// pushdown filters.
func (s *Store) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.scannedC = reg.Counter(MetricShardsScanned, "shard payloads a store read decoded")
	s.prunedC = reg.Counter(MetricShardsPruned, "shards a store read skipped via the index")
	s.bytesC = reg.Counter(MetricBytesRead, "payload bytes a store read off disk")
	s.recordsC = reg.Counter(MetricRecordsRead, "records a store read delivered")
	s.filteredC = reg.Counter(MetricFramesFiltered, "frames skipped at the frame-header level by pushdown filters")
}

// Trace records one flight span per shard scan.
func (s *Store) Trace(rec *flight.Recorder) { s.rec = rec }

// readFooter opens a shard file and decodes its footer index.
func readFooter(path string) (*shardIndex, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size < int64(headerLen+trailerLen) {
		return nil, fmt.Errorf("file too small (%d bytes)", size)
	}
	var hdr [headerLen]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return nil, err
	}
	if string(hdr[:len(shardMagic)]) != shardMagic {
		return nil, fmt.Errorf("bad shard magic")
	}
	var tr [trailerLen]byte
	if _, err := f.ReadAt(tr[:], size-trailerLen); err != nil {
		return nil, err
	}
	if string(tr[4:]) != trailerMagic {
		return nil, fmt.Errorf("bad trailer magic")
	}
	flen := int64(binary.LittleEndian.Uint32(tr[:4]))
	if flen <= 0 || flen > size-int64(headerLen+trailerLen) {
		return nil, fmt.Errorf("bad footer length %d", flen)
	}
	footer := make([]byte, flen)
	if _, err := f.ReadAt(footer, size-trailerLen-flen); err != nil {
		return nil, err
	}
	ix, err := decodeIndex(footer)
	if err != nil {
		return nil, err
	}
	if want := size - int64(headerLen) - flen - trailerLen; ix.PayloadBytes != want {
		return nil, fmt.Errorf("footer payload size %d disagrees with file layout %d", ix.PayloadBytes, want)
	}
	return ix, nil
}

// readPayload returns a shard's decompressed record framing, counting the
// on-disk bytes actually read.
func (s *Store) readPayload(sh *shardInfo) ([]byte, error) {
	disk, raw, err := readShardBytes(filepath.Join(s.dir, sh.File), sh.ix)
	if err != nil {
		return nil, err
	}
	s.bytesC.Add(int64(len(disk)))
	return raw, nil
}

// frameFilter decides per frame whether to decode it. nil means decode all.
type frameFilter func(trace.FrameHeader) bool

// decodeShard reads one shard and returns its records in write order,
// applying the filter at the frame level so rejected frames are never
// decoded into records.
func (s *Store) decodeShard(sh *shardInfo, filter frameFilter) ([]any, error) {
	sp := s.rec.Begin(flight.PhShardScan, sh.ix.MinAt)
	payload, err := s.readPayload(sh)
	if err != nil {
		sp.End(flight.Attrs{S: sh.File})
		return nil, fmt.Errorf("store: shard %s: %w", sh.File, err)
	}
	// Both paths decode frames in place with trace.DecodeFrame: the
	// payload is already in memory, so no per-frame (or even per-shard)
	// reader and scratch-buffer allocations — only the records themselves.
	var out []any
	if filter == nil {
		out = make([]any, 0, sh.ix.Records)
		for off := 0; off < len(payload); {
			rec, n, err := trace.DecodeFrame(payload[off:])
			if err != nil {
				sp.End(flight.Attrs{S: sh.File})
				return nil, fmt.Errorf("store: shard %s: frame at %d: %w", sh.File, off, err)
			}
			out = append(out, rec)
			off += n
		}
	} else {
		skipped := int64(0)
		for off := 0; off < len(payload); {
			h, err := trace.ParseFrameHeader(payload[off:])
			if err != nil {
				sp.End(flight.Attrs{S: sh.File})
				return nil, fmt.Errorf("store: shard %s: frame at %d: %w", sh.File, off, err)
			}
			if !filter(h) {
				skipped++
				off += h.Len
				continue
			}
			rec, _, err := trace.DecodeFrame(payload[off : off+h.Len])
			if err != nil {
				sp.End(flight.Attrs{S: sh.File})
				return nil, fmt.Errorf("store: shard %s: frame at %d: %w", sh.File, off, err)
			}
			out = append(out, rec)
			off += h.Len
		}
		s.filteredC.Add(skipped)
	}
	s.scannedC.Inc()
	s.recordsC.Add(int64(len(out)))
	sp.End(flight.Attrs{S: sh.File, N: int64(len(out)), M: int64(sh.ix.PayloadBytes)})
	return out, nil
}

// normalizeWorkers mirrors the campaign engine's convention: <= 0 selects
// all cores, anything else is taken as given (capped to the shard count by
// the caller's loop structure anyway).
func normalizeWorkers(w int) int {
	if w <= 0 {
		return runtime.NumCPU()
	}
	return w
}

// deliver decodes the selected shards on a worker pool and hands records
// to c in selection order. Per-pair record order is preserved: a pair's
// records live in one pair-shard column, columns are delivered day by day,
// and within a shard records keep write order.
func (s *Store) deliver(ctx context.Context, selected []*shardInfo, workers int, filter frameFilter, c Consumer) error {
	if len(selected) == 0 {
		return nil
	}
	workers = normalizeWorkers(workers)
	if workers > len(selected) {
		workers = len(selected)
	}
	type batch struct {
		recs []any
		err  error
	}
	out := make([]chan batch, len(selected))
	for i := range out {
		out[i] = make(chan batch, 1)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(selected) {
					return
				}
				// A canceled caller stops paying for decodes; shards already
				// claimed still drain through the ordered delivery loop.
				if err := ctx.Err(); err != nil {
					out[i] <- batch{err: err}
					continue
				}
				recs, err := s.decodeShard(selected[i], filter)
				out[i] <- batch{recs: recs, err: err}
			}
		}()
	}
	var firstErr error
	for i := range out {
		b := <-out[i]
		if b.err != nil {
			if firstErr == nil {
				firstErr = b.err
			}
			continue
		}
		if firstErr != nil {
			continue // drain remaining workers, deliver nothing further
		}
		for _, rec := range b.recs {
			switch v := rec.(type) {
			case *trace.Traceroute:
				c.OnTraceroute(v)
			case *trace.Ping:
				c.OnPing(v)
			}
		}
	}
	wg.Wait()
	return firstErr
}

// Scan streams every record of the store to c on a pool of workers.
func (s *Store) Scan(workers int, c Consumer) error {
	selected := make([]*shardInfo, len(s.shards))
	for i := range s.shards {
		selected[i] = &s.shards[i]
	}
	return s.deliver(context.Background(), selected, workers, nil, c)
}

// Pairs streams only the records of the requested timeline keys, opening
// just the shards whose index can contain them (pair-shard column first,
// then the footer's exact list or bloom filter) and skipping non-matching
// frames without decoding them.
func (s *Store) Pairs(workers int, keys []trace.PairKey, c Consumer) error {
	return s.PairsCtx(context.Background(), workers, keys, c)
}

// PairsCtx is Pairs under a context: cancellation stops further shard
// decodes and surfaces ctx.Err(). Records already decoded when the
// context fires may still be delivered.
func (s *Store) PairsCtx(ctx context.Context, workers int, keys []trace.PairKey, c Consumer) error {
	if len(keys) == 0 {
		return nil
	}
	want := make(map[trace.PairKey]bool, len(keys))
	cols := make(map[int]bool)
	for _, k := range keys {
		want[k] = true
		cols[PairShardOf(k, s.man.PairShards)] = true
	}
	var selected []*shardInfo
	for i := range s.shards {
		sh := &s.shards[i]
		if !cols[sh.PairShard] {
			s.prunedC.Inc()
			continue
		}
		hit := false
		for k := range want {
			if sh.ix.canContain(k) {
				hit = true
				break
			}
		}
		if !hit {
			s.prunedC.Inc()
			continue
		}
		selected = append(selected, sh)
	}
	return s.deliver(ctx, selected, workers, func(h trace.FrameHeader) bool { return want[h.Key] }, c)
}

// Pair streams the records of exactly one timeline key with At in
// [from, to), in write order, to c. to < 0 means no upper bound.
//
// This is the query service's point-lookup path: unlike Pairs it never
// spins up a worker pool — a single pair's records live in one pair-shard
// column, so the work is a handful of sequential shard decodes. Pushdown
// happens at both levels: shards outside the pair's column, without the
// key in their footer pair set, or outside the time window are pruned
// unopened, and within a shard non-matching frames are skipped at the
// frame-header level without being decoded (asserted byte-for-byte by
// TestPairPointLookupPushdown).
func (s *Store) Pair(k trace.PairKey, from, to time.Duration, c Consumer) error {
	return s.PairCtx(context.Background(), k, from, to, c)
}

// PairCtx is Pair under a context, checked between shard decodes: a
// canceled query stops after the shard it is in, so an abandoned HTTP
// request stops consuming decode CPU within one shard's work.
func (s *Store) PairCtx(ctx context.Context, k trace.PairKey, from, to time.Duration, c Consumer) error {
	col := PairShardOf(k, s.man.PairShards)
	filter := func(h trace.FrameHeader) bool {
		return h.Key == k && h.At >= from && (to < 0 || h.At < to)
	}
	for i := range s.shards {
		sh := &s.shards[i]
		if sh.PairShard != col || !sh.ix.canContain(k) ||
			sh.ix.MaxAt < from || (to >= 0 && sh.ix.MinAt >= to) {
			s.prunedC.Inc()
			continue
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		recs, err := s.decodeShard(sh, filter)
		if err != nil {
			return err
		}
		for _, rec := range recs {
			switch v := rec.(type) {
			case *trace.Traceroute:
				c.OnTraceroute(v)
			case *trace.Ping:
				c.OnPing(v)
			}
		}
	}
	return nil
}

// PairKeys returns the sorted union of the distinct timeline keys recorded
// in the shard footers. exhaustive is false when any non-empty shard's
// footer holds a bloom filter instead of an exact pair list — the returned
// keys are then a subset of the store's population.
func (s *Store) PairKeys() (keys []trace.PairKey, exhaustive bool) {
	set := make(map[trace.PairKey]struct{})
	exhaustive = true
	for i := range s.shards {
		ix := s.shards[i].ix
		if ix.Exact == nil {
			if ix.Records > 0 {
				exhaustive = false
			}
			continue
		}
		for _, k := range ix.Exact {
			set[k] = struct{}{}
		}
	}
	keys = make([]trace.PairKey, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return pairLess(keys[i], keys[j]) })
	return keys, exhaustive
}

// TimeRange streams the records with At in [from, to), pruning shards
// whose footer span falls outside the window. to < 0 means no upper bound.
func (s *Store) TimeRange(workers int, from, to time.Duration, c Consumer) error {
	var selected []*shardInfo
	for i := range s.shards {
		sh := &s.shards[i]
		if sh.ix.MaxAt < from || (to >= 0 && sh.ix.MinAt >= to) {
			s.prunedC.Inc()
			continue
		}
		selected = append(selected, sh)
	}
	return s.deliver(context.Background(), selected, workers, func(h trace.FrameHeader) bool {
		return h.At >= from && (to < 0 || h.At < to)
	}, c)
}
