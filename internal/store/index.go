package store

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"repro/internal/trace"
)

// Shard file framing:
//
//	8 bytes  magic "S2SSHRD1"
//	1 byte   flags (bit0: gzip payload)
//	payload  record frames (trace binary framing, possibly gzip)
//	footer   encoded shardIndex (always uncompressed)
//	4 bytes  footer length, little endian
//	4 bytes  trailer magic "S2SX"
const (
	shardMagic   = "S2SSHRD1"
	trailerMagic = "S2SX"
	headerLen    = len(shardMagic) + 1
	trailerLen   = 8

	flagGzip byte = 1
)

// indexVersion is the footer encoding version.
const indexVersion = 1

// exactPairCap is the largest distinct-pair population stored as an exact
// sorted list; above it the footer switches to a bloom filter.
const exactPairCap = 512

// bloomHashes is the number of bloom probes per key.
const bloomHashes = 4

// shardIndex is the per-shard footer: everything a reader needs to decide
// whether to open the payload.
type shardIndex struct {
	// Records counts all records; Traceroutes + Pings == Records.
	Records     int64
	Traceroutes int64
	Pings       int64
	// MinAt/MaxAt span the record timestamps.
	MinAt, MaxAt time.Duration
	// PayloadBytes is the on-disk payload size (compressed size when the
	// shard is compressed); RawBytes is the uncompressed framing size.
	PayloadBytes int64
	RawBytes     int64
	// Exact is the sorted distinct pair list when small enough, else nil
	// and Bloom holds a filter over the pair keys.
	Exact []trace.PairKey
	Bloom []byte
}

// canContain reports whether the shard may hold records for key. False is
// definitive; true may be a bloom false positive.
func (ix *shardIndex) canContain(k trace.PairKey) bool {
	if ix.Exact != nil {
		i := sort.Search(len(ix.Exact), func(i int) bool { return !pairLess(ix.Exact[i], k) })
		return i < len(ix.Exact) && ix.Exact[i] == k
	}
	if len(ix.Bloom) == 0 {
		return false
	}
	h1, h2 := pairHashes(k)
	bits := uint64(len(ix.Bloom)) * 8
	for i := uint64(0); i < bloomHashes; i++ {
		bit := (h1 + i*h2) % bits
		if ix.Bloom[bit/8]&(1<<(bit%8)) == 0 {
			return false
		}
	}
	return true
}

func pairLess(a, b trace.PairKey) bool {
	if a.SrcID != b.SrcID {
		return a.SrcID < b.SrcID
	}
	if a.DstID != b.DstID {
		return a.DstID < b.DstID
	}
	return !a.V6 && b.V6
}

// pairHashes returns two independent 64-bit hashes of the key for
// double-hashed bloom probes.
func pairHashes(k trace.PairKey) (uint64, uint64) {
	h := fnv.New64a()
	var buf [17]byte
	putUint64(buf[0:8], uint64(int64(k.SrcID)))
	putUint64(buf[8:16], uint64(int64(k.DstID)))
	if k.V6 {
		buf[16] = 1
	}
	h.Write(buf[:])
	h1 := h.Sum64()
	h2 := h1>>33 | h1<<31
	if h2 == 0 {
		h2 = 0x9e3779b97f4a7c15
	}
	return h1, h2
}

// newBloom builds a filter sized for n keys at ~1% false positives,
// rounded up to whole bytes and capped at 64 KiB.
func newBloom(keys []trace.PairKey) []byte {
	bits := len(keys) * 10
	if bits < 64 {
		bits = 64
	}
	if bits > 1<<19 {
		bits = 1 << 19
	}
	b := make([]byte, (bits+7)/8)
	nbits := uint64(len(b)) * 8
	for _, k := range keys {
		h1, h2 := pairHashes(k)
		for i := uint64(0); i < bloomHashes; i++ {
			bit := (h1 + i*h2) % nbits
			b[bit/8] |= 1 << (bit % 8)
		}
	}
	return b
}

// Pair-set tags in the encoded footer.
const (
	pairSetExact byte = 0
	pairSetBloom byte = 1
)

// encodeIndex serializes the footer.
func encodeIndex(ix *shardIndex) []byte {
	var buf []byte
	buf = append(buf, indexVersion)
	buf = appendUvarint(buf, uint64(ix.Records))
	buf = appendUvarint(buf, uint64(ix.Traceroutes))
	buf = appendUvarint(buf, uint64(ix.Pings))
	buf = binary.AppendVarint(buf, int64(ix.MinAt))
	buf = binary.AppendVarint(buf, int64(ix.MaxAt))
	buf = appendUvarint(buf, uint64(ix.PayloadBytes))
	buf = appendUvarint(buf, uint64(ix.RawBytes))
	if ix.Exact != nil {
		buf = append(buf, pairSetExact)
		buf = appendUvarint(buf, uint64(len(ix.Exact)))
		for _, k := range ix.Exact {
			buf = binary.AppendVarint(buf, int64(k.SrcID))
			buf = binary.AppendVarint(buf, int64(k.DstID))
			if k.V6 {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		}
	} else {
		buf = append(buf, pairSetBloom)
		buf = appendUvarint(buf, uint64(len(ix.Bloom)))
		buf = append(buf, ix.Bloom...)
	}
	return buf
}

func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

type indexCursor struct {
	data []byte
	off  int
}

func (c *indexCursor) byte() (byte, error) {
	if c.off >= len(c.data) {
		return 0, fmt.Errorf("store: truncated index at offset %d", c.off)
	}
	b := c.data[c.off]
	c.off++
	return b, nil
}

func (c *indexCursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.data[c.off:])
	if n <= 0 {
		return 0, fmt.Errorf("store: bad uvarint in index at offset %d", c.off)
	}
	c.off += n
	return v, nil
}

func (c *indexCursor) varint() (int64, error) {
	v, n := binary.Varint(c.data[c.off:])
	if n <= 0 {
		return 0, fmt.Errorf("store: bad varint in index at offset %d", c.off)
	}
	c.off += n
	return v, nil
}

// decodeIndex parses an encoded footer. It validates counts and sizes so a
// corrupt footer fails cleanly instead of driving huge allocations.
func decodeIndex(data []byte) (*shardIndex, error) {
	c := indexCursor{data: data}
	ver, err := c.byte()
	if err != nil {
		return nil, err
	}
	if ver != indexVersion {
		return nil, fmt.Errorf("store: unsupported index version %d", ver)
	}
	ix := new(shardIndex)
	for _, dst := range []*int64{&ix.Records, &ix.Traceroutes, &ix.Pings} {
		v, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		if v > 1<<48 {
			return nil, fmt.Errorf("store: implausible count %d in index", v)
		}
		*dst = int64(v)
	}
	if ix.Traceroutes+ix.Pings != ix.Records {
		return nil, fmt.Errorf("store: index counts disagree (%d+%d != %d)",
			ix.Traceroutes, ix.Pings, ix.Records)
	}
	minAt, err := c.varint()
	if err != nil {
		return nil, err
	}
	maxAt, err := c.varint()
	if err != nil {
		return nil, err
	}
	if maxAt < minAt {
		return nil, fmt.Errorf("store: index span inverted (%d > %d)", minAt, maxAt)
	}
	ix.MinAt, ix.MaxAt = time.Duration(minAt), time.Duration(maxAt)
	for _, dst := range []*int64{&ix.PayloadBytes, &ix.RawBytes} {
		v, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		if v > 1<<56 {
			return nil, fmt.Errorf("store: implausible byte count %d in index", v)
		}
		*dst = int64(v)
	}
	tag, err := c.byte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case pairSetExact:
		n, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		if n > exactPairCap {
			return nil, fmt.Errorf("store: exact pair list of %d exceeds cap %d", n, exactPairCap)
		}
		ix.Exact = make([]trace.PairKey, 0, n)
		for i := uint64(0); i < n; i++ {
			src, err := c.varint()
			if err != nil {
				return nil, err
			}
			dst, err := c.varint()
			if err != nil {
				return nil, err
			}
			v6, err := c.byte()
			if err != nil {
				return nil, err
			}
			if v6 > 1 {
				return nil, fmt.Errorf("store: bad v6 flag %d in index", v6)
			}
			ix.Exact = append(ix.Exact, trace.PairKey{SrcID: int(src), DstID: int(dst), V6: v6 == 1})
		}
		if !sort.SliceIsSorted(ix.Exact, func(i, j int) bool { return pairLess(ix.Exact[i], ix.Exact[j]) }) {
			return nil, fmt.Errorf("store: exact pair list not sorted")
		}
	case pairSetBloom:
		n, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		if n > 1<<20 {
			return nil, fmt.Errorf("store: implausible bloom size %d", n)
		}
		if c.off+int(n) > len(c.data) {
			return nil, fmt.Errorf("store: truncated bloom filter")
		}
		ix.Bloom = append([]byte(nil), c.data[c.off:c.off+int(n)]...)
		c.off += int(n)
	default:
		return nil, fmt.Errorf("store: unknown pair-set tag %d", tag)
	}
	if c.off != len(c.data) {
		return nil, fmt.Errorf("store: %d trailing bytes after index", len(c.data)-c.off)
	}
	return ix, nil
}

// pairSetOf finalizes the distinct-pair map of a shard into the footer
// representation: a sorted exact list when small, a bloom filter otherwise.
func pairSetOf(pairs map[trace.PairKey]struct{}) (exact []trace.PairKey, bloom []byte) {
	keys := make([]trace.PairKey, 0, len(pairs))
	for k := range pairs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return pairLess(keys[i], keys[j]) })
	if len(keys) <= exactPairCap {
		return keys, nil
	}
	return nil, newBloom(keys)
}
