package store

import (
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

// countWriter counts bytes flowing through it.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

type cellID struct{ day, ps int }

// shardWriter is one open shard segment.
type shardWriter struct {
	cell cellID
	seq  int
	name string

	file *os.File
	disk *countWriter // payload bytes on disk (post-compression)
	gz   *gzip.Writer // nil when uncompressed
	raw  *countWriter // uncompressed framing bytes
	bw   *trace.BinaryWriter

	ix    shardIndex
	pairs map[trace.PairKey]struct{}
	// ticket orders shards for least-recently-written eviction.
	ticket int64
}

// Writer routes records into shard files at write time and finalizes the
// manifest on Close. It is not safe for concurrent use: campaigns deliver
// records from one goroutine (the engine restores order before delivery),
// and the writer relies on that.
type Writer struct {
	dir    string
	opts   Options
	open   map[cellID]*shardWriter
	seqs   map[cellID]int
	done   []ShardEntry
	clock  int64
	closed bool

	records, traceroutes, pings int64

	shardsC  *obs.Counter
	recordsC *obs.Counter
	bytesC   *obs.Counter
}

// Create makes dir (which must not already contain a store) and returns a
// Writer over it.
func Create(dir string, o Options) (*Writer, error) {
	opts, err := o.withDefaults()
	if err != nil {
		return nil, err
	}
	if IsStore(dir) {
		return nil, fmt.Errorf("store: %s already holds a store", dir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	w := &Writer{
		dir:  dir,
		opts: opts,
		open: make(map[cellID]*shardWriter),
		seqs: make(map[cellID]int),
	}
	// Write the (empty) manifest immediately so a crash at any later
	// instant leaves a readable store: uncommitted segment files are
	// recovered or discarded against it (see Open and Resume).
	if err := WriteManifest(dir, w.manifest()); err != nil {
		return nil, err
	}
	return w, nil
}

// SetProvenance records the run identity written into the manifest at
// Close. It exists for callers (s2sreport) whose topology digest is only
// known after the writer must already be wired into a campaign.
func (w *Writer) SetProvenance(tool string, seed int64, topoDigest string) {
	w.opts.Tool, w.opts.Seed, w.opts.TopoDigest = tool, seed, topoDigest
}

// Instrument registers write-side telemetry: shards finalized, records
// routed, payload bytes on disk.
func (w *Writer) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	w.shardsC = reg.Counter(MetricShardsWritten, "shard files the store writer finalized")
	w.recordsC = reg.Counter(MetricRecordsWritten, "records routed into store shards")
	w.bytesC = reg.Counter(MetricBytesWritten, "payload bytes written to store shards (on-disk size)")
}

// shardFor returns the open segment for a record, opening (and evicting)
// as needed.
func (w *Writer) shardFor(k trace.PairKey, at time.Duration) (*shardWriter, error) {
	if at < 0 {
		return nil, fmt.Errorf("store: negative record timestamp %v", at)
	}
	day := 0
	if w.opts.DayLength > 0 {
		day = int(at / w.opts.DayLength)
	}
	cell := cellID{day: day, ps: PairShardOf(k, w.opts.PairShards)}
	if sw := w.open[cell]; sw != nil {
		return sw, nil
	}
	if len(w.open) >= w.opts.MaxOpenShards {
		if err := w.evictOldest(); err != nil {
			return nil, err
		}
	}
	seq := w.seqs[cell]
	w.seqs[cell] = seq + 1
	sw, err := w.openShard(cell, seq)
	if err != nil {
		return nil, err
	}
	w.open[cell] = sw
	return sw, nil
}

func (w *Writer) openShard(cell cellID, seq int) (*shardWriter, error) {
	name := shardName(cell.day, cell.ps, seq)
	f, err := os.Create(filepath.Join(w.dir, name))
	if err != nil {
		return nil, err
	}
	flags := byte(0)
	if w.opts.Compression == CompressionGzip {
		flags |= flagGzip
	}
	hdr := append([]byte(shardMagic), flags)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return nil, err
	}
	sw := &shardWriter{
		cell:  cell,
		seq:   seq,
		name:  name,
		file:  f,
		disk:  &countWriter{w: f},
		pairs: make(map[trace.PairKey]struct{}),
	}
	var payload io.Writer = sw.disk
	if flags&flagGzip != 0 {
		sw.gz = gzip.NewWriter(sw.disk)
		payload = sw.gz
	}
	sw.raw = &countWriter{w: payload}
	sw.bw = trace.NewBinaryWriter(sw.raw)
	return sw, nil
}

func (w *Writer) evictOldest() error {
	var victim *shardWriter
	for _, sw := range w.open {
		if victim == nil || sw.ticket < victim.ticket ||
			(sw.ticket == victim.ticket && sw.name < victim.name) {
			victim = sw
		}
	}
	if victim == nil {
		return nil
	}
	return w.finalize(victim)
}

func (w *Writer) note(sw *shardWriter, k trace.PairKey, at time.Duration, isPing bool) {
	if sw.ix.Records == 0 || at < sw.ix.MinAt {
		sw.ix.MinAt = at
	}
	if sw.ix.Records == 0 || at > sw.ix.MaxAt {
		sw.ix.MaxAt = at
	}
	sw.ix.Records++
	if isPing {
		sw.ix.Pings++
		w.pings++
	} else {
		sw.ix.Traceroutes++
		w.traceroutes++
	}
	sw.pairs[k] = struct{}{}
	w.clock++
	sw.ticket = w.clock
	w.records++
	w.recordsC.Inc()
}

// WriteTraceroute routes one traceroute into its shard.
func (w *Writer) WriteTraceroute(tr *trace.Traceroute) error {
	if w.closed {
		return fmt.Errorf("store: write after Close")
	}
	sw, err := w.shardFor(tr.Key(), tr.At)
	if err != nil {
		return err
	}
	if err := sw.bw.WriteTraceroute(tr); err != nil {
		return err
	}
	w.note(sw, tr.Key(), tr.At, false)
	return nil
}

// WritePing routes one ping into its shard.
func (w *Writer) WritePing(p *trace.Ping) error {
	if w.closed {
		return fmt.Errorf("store: write after Close")
	}
	sw, err := w.shardFor(p.Key(), p.At)
	if err != nil {
		return err
	}
	if err := sw.bw.WritePing(p); err != nil {
		return err
	}
	w.note(sw, p.Key(), p.At, true)
	return nil
}

// finalize flushes a shard's payload, writes the footer and trailer, and
// records its manifest entry.
func (w *Writer) finalize(sw *shardWriter) error {
	delete(w.open, sw.cell)
	if err := sw.bw.Flush(); err != nil {
		sw.file.Close()
		return err
	}
	if sw.gz != nil {
		if err := sw.gz.Close(); err != nil {
			sw.file.Close()
			return err
		}
	}
	sw.ix.PayloadBytes = sw.disk.n
	sw.ix.RawBytes = sw.raw.n
	sw.ix.Exact, sw.ix.Bloom = pairSetOf(sw.pairs)
	footer := encodeIndex(&sw.ix)
	trailer := binary.LittleEndian.AppendUint32(nil, uint32(len(footer)))
	trailer = append(trailer, trailerMagic...)
	if _, err := sw.file.Write(footer); err != nil {
		sw.file.Close()
		return err
	}
	if _, err := sw.file.Write(trailer); err != nil {
		sw.file.Close()
		return err
	}
	if err := sw.file.Close(); err != nil {
		return err
	}
	w.done = append(w.done, ShardEntry{
		File:      sw.name,
		Day:       sw.cell.day,
		PairShard: sw.cell.ps,
		Seq:       sw.seq,
		Records:   sw.ix.Records,
		MinAtNS:   int64(sw.ix.MinAt),
		MaxAtNS:   int64(sw.ix.MaxAt),
		Bytes:     int64(headerLen) + sw.ix.PayloadBytes + int64(len(footer)) + trailerLen,
	})
	w.shardsC.Inc()
	w.bytesC.Add(sw.ix.PayloadBytes)
	return nil
}

// finalizeOpen finalizes every open shard in name order.
func (w *Writer) finalizeOpen() error {
	remaining := make([]*shardWriter, 0, len(w.open))
	for _, sw := range w.open {
		remaining = append(remaining, sw)
	}
	sort.Slice(remaining, func(i, j int) bool { return remaining[i].name < remaining[j].name })
	for _, sw := range remaining {
		if err := w.finalize(sw); err != nil {
			return err
		}
	}
	return nil
}

// manifest builds the manifest for the shards finalized so far.
func (w *Writer) manifest() *Manifest {
	m := &Manifest{
		Version:     ManifestVersion,
		Tool:        w.opts.Tool,
		Seed:        w.opts.Seed,
		TopoDigest:  w.opts.TopoDigest,
		DayLengthNS: int64(w.opts.DayLength),
		PairShards:  w.opts.PairShards,
		Compression: w.opts.Compression,
		Records:     w.records,
		Traceroutes: w.traceroutes,
		Pings:       w.pings,
		Shards:      append([]ShardEntry(nil), w.done...),
	}
	sortShards(m.Shards)
	return m
}

// Records returns how many records have been routed into the store.
func (w *Writer) Records() int64 { return w.records }

// Checkpoint makes everything written so far durable — every open segment
// is finalized (footer and trailer written, file closed) and the manifest
// is atomically replaced — and returns the committed record count as the
// resume position. The writer stays usable: cells written again after a
// checkpoint continue in follow-up segment files (Compact merges them).
// Checkpoint satisfies campaign.CheckpointableWriter.
func (w *Writer) Checkpoint() (int64, error) {
	if w.closed {
		return 0, fmt.Errorf("store: checkpoint after Close")
	}
	if err := w.finalizeOpen(); err != nil {
		return 0, err
	}
	if err := WriteManifest(w.dir, w.manifest()); err != nil {
		return 0, err
	}
	return w.records, nil
}

// Close finalizes every open shard and writes the manifest. The Writer is
// unusable afterwards.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.finalizeOpen(); err != nil {
		return err
	}
	return WriteManifest(w.dir, w.manifest())
}
