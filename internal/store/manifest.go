package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// ManifestVersion is the manifest schema version.
const ManifestVersion = 1

// Manifest pins a store: the run that produced it and the shard table.
type Manifest struct {
	Version     int    `json:"version"`
	Tool        string `json:"tool,omitempty"`
	Seed        int64  `json:"seed,omitempty"`
	TopoDigest  string `json:"topo_digest,omitempty"`
	DayLengthNS int64  `json:"day_length_ns"`
	PairShards  int    `json:"pair_shards"`
	Compression string `json:"compression,omitempty"`

	Records     int64 `json:"records"`
	Traceroutes int64 `json:"traceroutes"`
	Pings       int64 `json:"pings"`

	Shards []ShardEntry `json:"shards"`
}

// ShardEntry summarizes one shard file in the manifest. The footer inside
// the shard carries the full index (including the pair set); the entry
// repeats only what store-level tooling prints without opening shards.
type ShardEntry struct {
	File      string `json:"file"`
	Day       int    `json:"day"`
	PairShard int    `json:"pair_shard"`
	Seq       int    `json:"seq"`
	Records   int64  `json:"records"`
	MinAtNS   int64  `json:"min_at_ns"`
	MaxAtNS   int64  `json:"max_at_ns"`
	Bytes     int64  `json:"bytes"`
}

// DayLength returns the virtual-day shard granularity.
func (m *Manifest) DayLength() time.Duration { return time.Duration(m.DayLengthNS) }

// Span returns the record-timestamp span across all shards.
func (m *Manifest) Span() (min, max time.Duration) {
	for i, sh := range m.Shards {
		lo, hi := time.Duration(sh.MinAtNS), time.Duration(sh.MaxAtNS)
		if i == 0 || lo < min {
			min = lo
		}
		if hi > max {
			max = hi
		}
	}
	return min, max
}

// sortShards orders the shard table into delivery order: day-major,
// pair-shard-minor, segment sequence last.
func sortShards(shards []ShardEntry) {
	sort.Slice(shards, func(i, j int) bool {
		a, b := shards[i], shards[j]
		if a.Day != b.Day {
			return a.Day < b.Day
		}
		if a.PairShard != b.PairShard {
			return a.PairShard < b.PairShard
		}
		return a.Seq < b.Seq
	})
}

// WriteManifest writes the manifest into dir atomically: the bytes go to
// a temp file that is fsynced and renamed over manifest.json, so a crash
// at any instant leaves either the previous manifest or the new one,
// never a torn file.
func WriteManifest(dir string, m *Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, ManifestName)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err = f.Write(append(data, '\n')); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// ReadManifest reads and validates the manifest of a store directory.
func ReadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	m := new(Manifest)
	if err := json.Unmarshal(data, m); err != nil {
		return nil, fmt.Errorf("store: manifest: %w", err)
	}
	if m.Version != ManifestVersion {
		return nil, fmt.Errorf("store: unsupported manifest version %d", m.Version)
	}
	if m.PairShards <= 0 || m.DayLengthNS <= 0 {
		return nil, fmt.Errorf("store: manifest missing layout (pair_shards=%d day_length_ns=%d)",
			m.PairShards, m.DayLengthNS)
	}
	for _, sh := range m.Shards {
		if filepath.Base(sh.File) != sh.File || sh.File == "" {
			return nil, fmt.Errorf("store: manifest shard file %q escapes the store directory", sh.File)
		}
	}
	sortShards(m.Shards)
	return m, nil
}

// IsStore reports whether path is a store directory (holds a manifest).
func IsStore(path string) bool {
	fi, err := os.Stat(path)
	if err != nil || !fi.IsDir() {
		return false
	}
	_, err = os.Stat(filepath.Join(path, ManifestName))
	return err == nil
}
