package store

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/trace"
)

// Crash recovery. A store writer killed mid-run leaves three kinds of
// debris behind: segment files finalized after the last manifest write
// (valid footer, just unlisted), the torn segment that was open when the
// process died (no footer, possibly a truncated gzip stream), and stray
// .tmp files from interrupted atomic replaces. Open adopts the first kind
// and repairs the second in place; Resume — the campaign -resume path —
// instead discards everything not covered by the manifest, because the
// resumed campaign will regenerate those records byte-identically.

// parseShardName inverts shardName, accepting only canonical names.
func parseShardName(name string) (day, pairShard, seq int, ok bool) {
	var d, p, s int
	if n, err := fmt.Sscanf(name, "d%d-p%d-s%d.shard", &d, &p, &s); err != nil || n != 3 {
		return 0, 0, 0, false
	}
	if shardName(d, p, s) != name {
		return 0, 0, 0, false
	}
	return d, p, s, true
}

// shardFiles lists the .shard files in dir with their parsed coordinates.
type shardFile struct {
	name         string
	day, ps, seq int
}

func listShardFiles(dir string) ([]shardFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []shardFile
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		day, ps, seq, ok := parseShardName(e.Name())
		if !ok {
			continue
		}
		out = append(out, shardFile{name: e.Name(), day: day, ps: ps, seq: seq})
	}
	return out, nil
}

// adoptOrphans finds segment files not listed in the manifest, repairs
// torn ones in place, and returns shard entries (with decoded footers)
// for everything recovered. Files that cannot be recovered are left on
// disk and skipped; Verify reports them.
func adoptOrphans(dir string, man *Manifest) ([]shardInfo, error) {
	files, err := listShardFiles(dir)
	if err != nil {
		return nil, err
	}
	listed := make(map[string]bool, len(man.Shards))
	for _, e := range man.Shards {
		listed[e.File] = true
	}
	var adopted []shardInfo
	for _, f := range files {
		if listed[f.name] {
			continue
		}
		path := filepath.Join(dir, f.name)
		ix, err := readFooter(path)
		if err != nil {
			// No valid footer: the segment was open when the writer died.
			// Truncate the torn tail and rebuild the footer from the
			// decodable prefix.
			if ix, err = repairShard(path); err != nil {
				continue
			}
		}
		fi, err := os.Stat(path)
		if err != nil {
			continue
		}
		adopted = append(adopted, shardInfo{
			ShardEntry: ShardEntry{
				File:      f.name,
				Day:       f.day,
				PairShard: f.ps,
				Seq:       f.seq,
				Records:   ix.Records,
				MinAtNS:   int64(ix.MinAt),
				MaxAtNS:   int64(ix.MaxAt),
				Bytes:     fi.Size(),
			},
			ix: ix,
		})
	}
	return adopted, nil
}

// repairShard recovers the decodable prefix of a footer-less segment: the
// payload is decompressed best-effort, records are decoded until the torn
// tail, and the file is atomically rewritten as a well-formed shard with
// a rebuilt footer. Returns the new footer, or an error if nothing was
// recoverable.
func repairShard(path string) (*shardIndex, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < headerLen || string(data[:len(shardMagic)]) != shardMagic {
		return nil, fmt.Errorf("store: %s: not a shard file", filepath.Base(path))
	}
	flags := data[len(shardMagic)]
	raw := data[headerLen:]
	if flags&flagGzip != 0 {
		gr, err := gzip.NewReader(bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("store: %s: %w", filepath.Base(path), err)
		}
		// A torn gzip stream errors at the tail; keep what decompressed.
		raw, _ = io.ReadAll(gr)
	}
	// Decode records off the prefix until the torn tail.
	var recs []any
	br := trace.NewBinaryReader(bytes.NewReader(raw))
	for {
		rec, err := br.Next()
		if err != nil {
			break
		}
		recs = append(recs, rec)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("store: %s: no recoverable records", filepath.Base(path))
	}
	// Rewrite the file as a well-formed shard.
	var ix shardIndex
	pairs := make(map[trace.PairKey]struct{})
	tmpPath := path + ".tmp"
	tmp, err := os.Create(tmpPath)
	if err != nil {
		return nil, err
	}
	defer os.Remove(tmpPath)
	disk := &countWriter{w: tmp}
	if _, err := disk.Write(append([]byte(shardMagic), flags)); err != nil {
		tmp.Close()
		return nil, err
	}
	hdrBytes := disk.n
	var payload io.Writer = disk
	var gz *gzip.Writer
	if flags&flagGzip != 0 {
		gz = gzip.NewWriter(disk)
		payload = gz
	}
	rawCount := &countWriter{w: payload}
	bw := trace.NewBinaryWriter(rawCount)
	for _, rec := range recs {
		var k trace.PairKey
		var at time.Duration
		switch v := rec.(type) {
		case *trace.Traceroute:
			err = bw.WriteTraceroute(v)
			k, at = v.Key(), v.At
			ix.Traceroutes++
		case *trace.Ping:
			err = bw.WritePing(v)
			k, at = v.Key(), v.At
			ix.Pings++
		}
		if err != nil {
			tmp.Close()
			return nil, err
		}
		if ix.Records == 0 || at < ix.MinAt {
			ix.MinAt = at
		}
		if ix.Records == 0 || at > ix.MaxAt {
			ix.MaxAt = at
		}
		ix.Records++
		pairs[k] = struct{}{}
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return nil, err
	}
	if gz != nil {
		if err := gz.Close(); err != nil {
			tmp.Close()
			return nil, err
		}
	}
	ix.PayloadBytes = disk.n - hdrBytes
	ix.RawBytes = rawCount.n
	ix.Exact, ix.Bloom = pairSetOf(pairs)
	footer := encodeIndex(&ix)
	trailer := binary.LittleEndian.AppendUint32(nil, uint32(len(footer)))
	trailer = append(trailer, trailerMagic...)
	if _, err := tmp.Write(footer); err != nil {
		tmp.Close()
		return nil, err
	}
	if _, err := tmp.Write(trailer); err != nil {
		tmp.Close()
		return nil, err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return nil, err
	}
	if err := tmp.Close(); err != nil {
		return nil, err
	}
	if err := os.Rename(tmpPath, path); err != nil {
		return nil, err
	}
	return &ix, nil
}

// Resume reopens a store for continued writing from its last durable
// state (the manifest a Checkpoint or Close wrote). Segment files not
// listed in the manifest — debris from after the last checkpoint — are
// deleted, as are stray .tmp files: a resumed campaign regenerates those
// records deterministically, and keeping them would duplicate records.
func Resume(dir string) (*Writer, error) {
	man, err := ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	files, err := listShardFiles(dir)
	if err != nil {
		return nil, err
	}
	listed := make(map[string]bool, len(man.Shards))
	for _, e := range man.Shards {
		listed[e.File] = true
	}
	for _, f := range files {
		if !listed[f.name] {
			if err := os.Remove(filepath.Join(dir, f.name)); err != nil {
				return nil, err
			}
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".tmp") {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	opts, err := (&Options{
		DayLength:   man.DayLength(),
		PairShards:  man.PairShards,
		Compression: man.Compression,
		Tool:        man.Tool,
		Seed:        man.Seed,
		TopoDigest:  man.TopoDigest,
	}).withDefaults()
	if err != nil {
		return nil, err
	}
	w := &Writer{
		dir:         dir,
		opts:        opts,
		open:        make(map[cellID]*shardWriter),
		seqs:        make(map[cellID]int),
		done:        append([]ShardEntry(nil), man.Shards...),
		records:     man.Records,
		traceroutes: man.Traceroutes,
		pings:       man.Pings,
	}
	for _, e := range man.Shards {
		cell := cellID{day: e.Day, ps: e.PairShard}
		if e.Seq+1 > w.seqs[cell] {
			w.seqs[cell] = e.Seq + 1
		}
	}
	return w, nil
}

// VerifyReport is the result of a store fsck.
type VerifyReport struct {
	// Shards is the number of manifest-listed shards checked; Records is
	// the record count recovered by decoding every payload.
	Shards  int
	Records int64
	// Orphans counts segment files on disk that the manifest does not
	// list; Torn counts the subset without a valid footer.
	Orphans int
	Torn    int
	// Problems lists integrity violations (empty for a healthy store).
	Problems []string
}

// OK reports whether the store passed verification. Orphans are not
// failures — Open can adopt them — but problems are.
func (r *VerifyReport) OK() bool { return len(r.Problems) == 0 }

// String summarizes the report.
func (r *VerifyReport) String() string {
	s := fmt.Sprintf("%d shards, %d records, %d orphans (%d torn), %d problems",
		r.Shards, r.Records, r.Orphans, r.Torn, len(r.Problems))
	for _, p := range r.Problems {
		s += "\n  " + p
	}
	return s
}

// Verify fscks a store: every manifest-listed shard is opened, its
// payload fully decoded at the frame level, and its counts cross-checked
// against the footer, the manifest entry, and the manifest totals.
// Unlisted segment files are counted as orphans (torn when they lack a
// valid footer) but do not fail verification. Verify never modifies the
// store.
func Verify(dir string) (*VerifyReport, error) {
	man, err := ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	rep := &VerifyReport{}
	listed := make(map[string]bool, len(man.Shards))
	var total, trs, pgs int64
	for _, e := range man.Shards {
		listed[e.File] = true
		rep.Shards++
		path := filepath.Join(dir, e.File)
		ix, err := readFooter(path)
		if err != nil {
			rep.Problems = append(rep.Problems, fmt.Sprintf("shard %s: %v", e.File, err))
			continue
		}
		if ix.Records != e.Records {
			rep.Problems = append(rep.Problems,
				fmt.Sprintf("shard %s: footer holds %d records, manifest says %d", e.File, ix.Records, e.Records))
		}
		_, raw, err := readShardBytes(path, ix)
		if err != nil {
			rep.Problems = append(rep.Problems, fmt.Sprintf("shard %s: %v", e.File, err))
			continue
		}
		var n, tn, pn int64
		bad := false
		for off := 0; off < len(raw); {
			h, err := trace.ParseFrameHeader(raw[off:])
			if err != nil {
				rep.Problems = append(rep.Problems,
					fmt.Sprintf("shard %s: frame at %d: %v", e.File, off, err))
				bad = true
				break
			}
			n++
			if h.Kind == trace.FrameTraceroute {
				tn++
			} else {
				pn++
			}
			off += h.Len
		}
		if bad {
			continue
		}
		if n != ix.Records || tn != ix.Traceroutes || pn != ix.Pings {
			rep.Problems = append(rep.Problems,
				fmt.Sprintf("shard %s: payload holds %d records (%d tr, %d pg), footer says %d (%d, %d)",
					e.File, n, tn, pn, ix.Records, ix.Traceroutes, ix.Pings))
			continue
		}
		rep.Records += n
		total += n
		trs += tn
		pgs += pn
	}
	if total != man.Records || trs != man.Traceroutes || pgs != man.Pings {
		rep.Problems = append(rep.Problems,
			fmt.Sprintf("manifest totals %d/%d/%d disagree with shard contents %d/%d/%d",
				man.Records, man.Traceroutes, man.Pings, total, trs, pgs))
	}
	files, err := listShardFiles(dir)
	if err != nil {
		return nil, err
	}
	for _, f := range files {
		if listed[f.name] {
			continue
		}
		rep.Orphans++
		if _, err := readFooter(filepath.Join(dir, f.name)); err != nil {
			rep.Torn++
		}
	}
	sort.Strings(rep.Problems)
	return rep, nil
}
