package store

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"repro/internal/trace"
)

// FuzzShardIndex throws arbitrary bytes at the footer decoder (it must
// reject or decode, never panic) and round-trips every successful decode:
// re-encoding a decoded index and decoding again must reproduce it.
func FuzzShardIndex(f *testing.F) {
	seedIxs := []*shardIndex{
		{Records: 1, Traceroutes: 1, PayloadBytes: 10, RawBytes: 10,
			Exact: []trace.PairKey{{SrcID: 1, DstID: 2}}},
		{Records: 4, Traceroutes: 2, Pings: 2, MinAt: time.Hour, MaxAt: 30 * time.Hour,
			PayloadBytes: 512, RawBytes: 900,
			Exact: []trace.PairKey{{SrcID: 0, DstID: 7}, {SrcID: 0, DstID: 7, V6: true}, {SrcID: 3, DstID: 3}}},
		{Records: 1000, Pings: 1000, MaxAt: time.Minute,
			PayloadBytes: 1 << 20, RawBytes: 1 << 21,
			Bloom: newBloom([]trace.PairKey{{SrcID: 1, DstID: 2}, {SrcID: 2, DstID: 1}})},
	}
	for _, ix := range seedIxs {
		f.Add(encodeIndex(ix))
	}
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		ix, err := decodeIndex(data)
		if err != nil {
			return
		}
		again, err := decodeIndex(encodeIndex(ix))
		if err != nil {
			t.Fatalf("re-encode of a valid index does not decode: %v", err)
		}
		if !reflect.DeepEqual(ix, again) {
			t.Fatalf("round trip drifted:\nfirst  %+v\nsecond %+v", ix, again)
		}
		if ix.Records != ix.Traceroutes+ix.Pings {
			t.Fatalf("decoder accepted inconsistent counts: %d != %d + %d",
				ix.Records, ix.Traceroutes, ix.Pings)
		}
	})
}

// FuzzShardName guards the writer's file naming against manifest
// validation: every name the writer can emit must survive ReadManifest's
// path checks (no separators, no escapes).
func FuzzShardName(f *testing.F) {
	f.Add(0, 0, 0)
	f.Add(484, 7, 3)
	f.Add(99999, 99, 99)
	f.Fuzz(func(t *testing.T, day, ps, seq int) {
		if day < 0 || ps < 0 || seq < 0 {
			return
		}
		name := shardName(day, ps, seq)
		if bytes.ContainsAny([]byte(name), "/\\") || name == "" {
			t.Fatalf("shardName(%d,%d,%d) = %q contains a path separator", day, ps, seq, name)
		}
	})
}
