package store

import (
	"bytes"
	"math/rand"
	"net/netip"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

// synthCorpus builds a deterministic mixed record stream shaped like a
// campaign: rounds of monotonically increasing timestamps, v4/v6
// traceroutes of a directed pair adjacent within a round, pings mixed in.
func synthCorpus(seed int64, servers, days, roundsPerDay int) []any {
	rng := rand.New(rand.NewSource(seed))
	var out []any
	addr4 := func(id int) netip.Addr {
		return netip.AddrFrom4([4]byte{10, byte(id >> 8), byte(id), 1})
	}
	addr6 := func(id int) netip.Addr {
		var b [16]byte
		b[0], b[1], b[14], b[15] = 0x24, 0x00, byte(id>>8), byte(id)
		return netip.AddrFrom16(b)
	}
	interval := 24 * time.Hour / time.Duration(roundsPerDay)
	for r := 0; r < days*roundsPerDay; r++ {
		at := time.Duration(r) * interval
		for s := 0; s < servers; s++ {
			for d := 0; d < servers; d++ {
				if s == d {
					continue
				}
				for _, v6 := range []bool{false, true} {
					tr := &trace.Traceroute{
						SrcID: s, DstID: d, V6: v6,
						Paris:    rng.Intn(2) == 0,
						At:       at,
						Complete: rng.Intn(10) > 0,
						RTT:      time.Duration(rng.Intn(200)) * time.Millisecond,
					}
					if v6 {
						tr.Src, tr.Dst = addr6(s), addr6(d)
					} else {
						tr.Src, tr.Dst = addr4(s), addr4(d)
					}
					hops := rng.Intn(6)
					for h := 0; h < hops; h++ {
						hop := trace.Hop{RTT: time.Duration(rng.Intn(80)) * time.Millisecond}
						if rng.Intn(5) > 0 {
							hop.Addr = addr4(1000 + rng.Intn(500))
						}
						tr.Hops = append(tr.Hops, hop)
					}
					out = append(out, tr)
				}
				if rng.Intn(3) == 0 {
					out = append(out, &trace.Ping{
						SrcID: s, DstID: d,
						Src: addr4(s), Dst: addr4(d),
						At:   at,
						RTT:  time.Duration(rng.Intn(120)) * time.Millisecond,
						Lost: rng.Intn(20) == 0,
					})
				}
			}
		}
	}
	return out
}

// recBytes is the canonical comparison form of a record: its binary frame.
func recBytes(t testing.TB, rec any) string {
	t.Helper()
	var buf bytes.Buffer
	w := trace.NewBinaryWriter(&buf)
	switch v := rec.(type) {
	case *trace.Traceroute:
		if err := w.WriteTraceroute(v); err != nil {
			t.Fatal(err)
		}
	case *trace.Ping:
		if err := w.WritePing(v); err != nil {
			t.Fatal(err)
		}
	default:
		t.Fatalf("unknown record type %T", rec)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func keyOf(rec any) trace.PairKey {
	switch v := rec.(type) {
	case *trace.Traceroute:
		return v.Key()
	case *trace.Ping:
		return v.Key()
	}
	panic("unknown record type")
}

// byPair groups a record stream into per-timeline frame sequences.
func byPair(t testing.TB, recs []any) map[trace.PairKey][]string {
	out := make(map[trace.PairKey][]string)
	for _, rec := range recs {
		k := keyOf(rec)
		out[k] = append(out[k], recBytes(t, rec))
	}
	return out
}

// collector gathers records in delivery order.
type collector struct{ recs []any }

func (c *collector) OnTraceroute(tr *trace.Traceroute) { c.recs = append(c.recs, tr) }
func (c *collector) OnPing(p *trace.Ping)              { c.recs = append(c.recs, p) }

// writeStore writes the corpus into a fresh store under t.TempDir.
func writeStore(t testing.TB, corpus []any, o Options) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "corpus.store")
	w, err := Create(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range corpus {
		switch v := rec.(type) {
		case *trace.Traceroute:
			err = w.WriteTraceroute(v)
		case *trace.Ping:
			err = w.WritePing(v)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestScanMatchesFlat is the store-vs-flat equivalence: under a full Scan
// at any worker count, every timeline's record sequence must be
// byte-identical to a front-to-back read of the flat file.
func TestScanMatchesFlat(t *testing.T) {
	corpus := synthCorpus(1, 5, 4, 3)
	want := byPair(t, corpus)
	for _, compress := range []string{"", CompressionGzip} {
		dir := writeStore(t, corpus, Options{PairShards: 4, Compression: compress})
		for _, workers := range []int{1, 2, 8} {
			s, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			var col collector
			if err := s.Scan(workers, &col); err != nil {
				t.Fatal(err)
			}
			if len(col.recs) != len(corpus) {
				t.Fatalf("compress=%q workers=%d: scanned %d records, want %d",
					compress, workers, len(col.recs), len(corpus))
			}
			got := byPair(t, col.recs)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("compress=%q workers=%d: per-pair record sequences differ from flat read",
					compress, workers)
			}
		}
	}
}

// TestScanDeterministicOrder pins the global delivery order across worker
// counts (shard order is fixed, so the full stream must be identical).
func TestScanDeterministicOrder(t *testing.T) {
	corpus := synthCorpus(2, 4, 3, 2)
	dir := writeStore(t, corpus, Options{PairShards: 3})
	var ref []string
	for _, workers := range []int{1, 2, 8} {
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		var col collector
		if err := s.Scan(workers, &col); err != nil {
			t.Fatal(err)
		}
		var stream []string
		for _, rec := range col.recs {
			stream = append(stream, recBytes(t, rec))
		}
		if ref == nil {
			ref = stream
		} else if !reflect.DeepEqual(ref, stream) {
			t.Fatalf("workers=%d: delivery order differs from workers=1", workers)
		}
	}
}

// TestPairsPushdown checks Pairs against a filtered flat read and asserts
// — via the store metrics — that pushdown reads strictly fewer bytes than
// a full scan and prunes shards through the index.
func TestPairsPushdown(t *testing.T) {
	corpus := synthCorpus(3, 6, 4, 3)
	dir := writeStore(t, corpus, Options{PairShards: 4})

	keys := []trace.PairKey{
		{SrcID: 1, DstID: 2, V6: false},
		{SrcID: 1, DstID: 2, V6: true},
		{SrcID: 4, DstID: 0, V6: false},
	}
	want := make(map[trace.PairKey][]string)
	for _, rec := range corpus {
		k := keyOf(rec)
		for _, wk := range keys {
			if k == wk {
				want[k] = append(want[k], recBytes(t, rec))
			}
		}
	}

	fullReg := obs.NewRegistry()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Instrument(fullReg)
	var full collector
	if err := s.Scan(4, &full); err != nil {
		t.Fatal(err)
	}
	fullBytes := fullReg.Counter(MetricBytesRead, "").Value()

	pairReg := obs.NewRegistry()
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2.Instrument(pairReg)
	var col collector
	if err := s2.Pairs(4, keys, &col); err != nil {
		t.Fatal(err)
	}
	got := byPair(t, col.recs)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Pairs result differs from filtered flat read (%d vs %d timelines)", len(got), len(want))
	}

	pairBytes := pairReg.Counter(MetricBytesRead, "").Value()
	if pairBytes <= 0 || fullBytes <= 0 {
		t.Fatalf("byte counters did not fire (full=%d pairs=%d)", fullBytes, pairBytes)
	}
	if pairBytes >= fullBytes {
		t.Fatalf("pushdown read %d bytes, full scan %d — want strictly fewer", pairBytes, fullBytes)
	}
	if pruned := pairReg.Counter(MetricShardsPruned, "").Value(); pruned == 0 {
		t.Fatal("pushdown pruned no shards")
	}
	if skipped := pairReg.Counter(MetricFramesFiltered, "").Value(); skipped == 0 {
		t.Fatal("pushdown decoded every frame (frame filter did not fire)")
	}
}

// TestPairsEmptyAndUnknown: no keys → no records, unknown keys → no
// records and (via pruning) no payload reads.
func TestPairsEmptyAndUnknown(t *testing.T) {
	corpus := synthCorpus(4, 3, 2, 2)
	dir := writeStore(t, corpus, Options{PairShards: 2})
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	s.Instrument(reg)
	var col collector
	if err := s.Pairs(2, nil, &col); err != nil {
		t.Fatal(err)
	}
	if len(col.recs) != 0 {
		t.Fatalf("empty key set delivered %d records", len(col.recs))
	}
	if err := s.Pairs(2, []trace.PairKey{{SrcID: 900, DstID: 901}}, &col); err != nil {
		t.Fatal(err)
	}
	if len(col.recs) != 0 {
		t.Fatalf("unknown key delivered %d records", len(col.recs))
	}
	if got := reg.Counter(MetricBytesRead, "").Value(); got != 0 {
		t.Fatalf("unknown key read %d payload bytes, want 0 (index should prune)", got)
	}
}

// TestTimeRange checks shard pruning plus exact filtering by timestamp.
func TestTimeRange(t *testing.T) {
	corpus := synthCorpus(5, 4, 4, 2)
	dir := writeStore(t, corpus, Options{PairShards: 3})
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	s.Instrument(reg)
	from, to := 24*time.Hour, 60*time.Hour
	var want []string
	for _, rec := range corpus {
		var at time.Duration
		switch v := rec.(type) {
		case *trace.Traceroute:
			at = v.At
		case *trace.Ping:
			at = v.At
		}
		if at >= from && at < to {
			want = append(want, recBytes(t, rec))
		}
	}
	var col collector
	if err := s.TimeRange(4, from, to, &col); err != nil {
		t.Fatal(err)
	}
	if len(col.recs) != len(want) {
		t.Fatalf("TimeRange delivered %d records, want %d", len(col.recs), len(want))
	}
	if reg.Counter(MetricShardsPruned, "").Value() == 0 {
		t.Fatal("TimeRange pruned no shards despite a 4-day corpus and a 1.5-day window")
	}
	// Open-ended ranges cover everything.
	var all collector
	if err := s.TimeRange(4, 0, -1, &all); err != nil {
		t.Fatal(err)
	}
	if len(all.recs) != len(corpus) {
		t.Fatalf("open TimeRange delivered %d records, want %d", len(all.recs), len(corpus))
	}
}

// TestCompact forces segment splits with a tiny open-shard budget, merges
// them, and checks the merged store scans identically.
func TestCompact(t *testing.T) {
	for _, compress := range []string{"", CompressionGzip} {
		corpus := synthCorpus(6, 5, 3, 3)
		want := byPair(t, corpus)
		dir := writeStore(t, corpus, Options{PairShards: 4, Compression: compress, MaxOpenShards: 1})
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		segmented := false
		for _, e := range s.Manifest().Shards {
			if e.Seq > 0 {
				segmented = true
			}
		}
		if !segmented {
			t.Fatalf("compress=%q: MaxOpenShards=1 produced no segment files", compress)
		}
		if err := Compact(dir); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range s2.Manifest().Shards {
			if e.Seq > 0 {
				t.Fatalf("compress=%q: segment %s survived Compact", compress, e.File)
			}
		}
		if got, want := s2.Manifest().Records, s.Manifest().Records; got != want {
			t.Fatalf("compress=%q: compacted manifest holds %d records, want %d", compress, got, want)
		}
		var col collector
		if err := s2.Scan(4, &col); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(byPair(t, col.recs), want) {
			t.Fatalf("compress=%q: compacted store differs from corpus", compress)
		}
		// Pushdown still works against rebuilt indexes.
		var one collector
		k := trace.PairKey{SrcID: 0, DstID: 1}
		if err := s2.Pairs(2, []trace.PairKey{k}, &one); err != nil {
			t.Fatal(err)
		}
		if len(one.recs) != len(want[k]) {
			t.Fatalf("compress=%q: Pairs after Compact delivered %d records, want %d",
				compress, len(one.recs), len(want[k]))
		}
	}
}

// TestManifestMetadata checks the run provenance and the totals.
func TestManifestMetadata(t *testing.T) {
	corpus := synthCorpus(7, 3, 2, 2)
	dir := writeStore(t, corpus, Options{
		PairShards: 2, Tool: "test", Seed: 42, TopoDigest: "fnv1a:deadbeef",
	})
	if !IsStore(dir) {
		t.Fatal("IsStore is false on a freshly written store")
	}
	if IsStore(filepath.Dir(dir)) {
		t.Fatal("IsStore is true on the parent directory")
	}
	m, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.Tool != "test" || m.Seed != 42 || m.TopoDigest != "fnv1a:deadbeef" {
		t.Fatalf("manifest provenance lost: %+v", m)
	}
	trs, pings := 0, 0
	for _, rec := range corpus {
		if _, ok := rec.(*trace.Traceroute); ok {
			trs++
		} else {
			pings++
		}
	}
	if m.Records != int64(len(corpus)) || m.Traceroutes != int64(trs) || m.Pings != int64(pings) {
		t.Fatalf("manifest totals %d/%d/%d, want %d/%d/%d",
			m.Records, m.Traceroutes, m.Pings, len(corpus), trs, pings)
	}
	var sum int64
	for _, e := range m.Shards {
		sum += e.Records
	}
	if sum != m.Records {
		t.Fatalf("shard records sum %d, manifest total %d", sum, m.Records)
	}
	min, max := m.Span()
	if min != 0 || max <= min {
		t.Fatalf("span [%v, %v] is not corpus-shaped", min, max)
	}
}

// TestWriterMisuse covers the error paths a CLI can hit.
func TestWriterMisuse(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "x.store")
	w, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteTraceroute(&trace.Traceroute{SrcID: 1, DstID: 2, At: -time.Hour}); err == nil {
		t.Fatal("negative timestamp accepted")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.WritePing(&trace.Ping{SrcID: 1, DstID: 2}); err == nil {
		t.Fatal("write after Close accepted")
	}
	if _, err := Create(dir, Options{}); err == nil {
		t.Fatal("Create over an existing store accepted")
	}
	if _, err := Create(dir, Options{Compression: "zstd"}); err == nil {
		t.Fatal("unknown compression accepted")
	}
}

// TestOpenRejectsCorruption checks that a truncated shard or a manifest
// mismatch fails loudly at Open.
func TestOpenRejectsCorruption(t *testing.T) {
	corpus := synthCorpus(8, 3, 2, 2)
	dir := writeStore(t, corpus, Options{PairShards: 2})
	m, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	victim := filepath.Join(dir, m.Shards[0].File)
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(victim, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("Open accepted a truncated shard")
	}
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err != nil {
		t.Fatalf("restored store does not open: %v", err)
	}
	// A manifest that points outside the directory must be rejected.
	m.Shards[0].File = "../escape.shard"
	if err := WriteManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "escapes") {
		t.Fatalf("path escape not rejected: %v", err)
	}
}

// TestIndexRoundTrip pins the footer encoding (the fuzz target explores
// the hostile side).
func TestIndexRoundTrip(t *testing.T) {
	exact := &shardIndex{
		Records: 5, Traceroutes: 3, Pings: 2,
		MinAt: time.Hour, MaxAt: 26 * time.Hour,
		PayloadBytes: 1234, RawBytes: 4096,
		Exact: []trace.PairKey{{SrcID: 1, DstID: 2}, {SrcID: 1, DstID: 2, V6: true}, {SrcID: 3, DstID: 1}},
	}
	big := make(map[trace.PairKey]struct{})
	for i := 0; i < exactPairCap+10; i++ {
		big[trace.PairKey{SrcID: i, DstID: i + 1}] = struct{}{}
	}
	exactList, bloom := pairSetOf(big)
	if exactList != nil || len(bloom) == 0 {
		t.Fatalf("pairSetOf did not switch to bloom above the cap")
	}
	blooming := &shardIndex{
		Records: 600, Traceroutes: 600,
		MinAt: 0, MaxAt: time.Hour,
		PayloadBytes: 9, RawBytes: 9,
		Bloom: bloom,
	}
	for name, ix := range map[string]*shardIndex{"exact": exact, "bloom": blooming} {
		got, err := decodeIndex(encodeIndex(ix))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(got, ix) {
			t.Fatalf("%s: round trip drifted:\n got %+v\nwant %+v", name, got, ix)
		}
	}
	// Exact membership is definitive both ways; bloom has no false negatives.
	if !exact.canContain(trace.PairKey{SrcID: 3, DstID: 1}) {
		t.Fatal("exact set dropped a member")
	}
	if exact.canContain(trace.PairKey{SrcID: 3, DstID: 1, V6: true}) {
		t.Fatal("exact set invented a member")
	}
	for k := range big {
		if !blooming.canContain(k) {
			t.Fatalf("bloom false negative on %+v", k)
		}
	}
}

// TestPairShardOfProtocolInvariant pins the property the streaming
// dualstack consumer depends on.
func TestPairShardOfProtocolInvariant(t *testing.T) {
	for i := 0; i < 100; i++ {
		k4 := trace.PairKey{SrcID: i * 3, DstID: i*7 + 1}
		k6 := k4
		k6.V6 = true
		for _, shards := range []int{1, 2, 8, 13} {
			if PairShardOf(k4, shards) != PairShardOf(k6, shards) {
				t.Fatalf("v4/v6 of %v map to different shards", k4)
			}
			if got := PairShardOf(k4, shards); got < 0 || got >= shards {
				t.Fatalf("shard %d out of range [0,%d)", got, shards)
			}
		}
	}
}

// TestPairPointLookup checks the single-pair point-lookup path against a
// filtered flat read, including time-window clipping.
func TestPairPointLookup(t *testing.T) {
	corpus := synthCorpus(11, 6, 4, 3)
	dir := writeStore(t, corpus, Options{PairShards: 4})
	k := trace.PairKey{SrcID: 2, DstID: 5}
	from, to := 24*time.Hour, 72*time.Hour
	var want []string
	for _, rec := range corpus {
		var at time.Duration
		switch v := rec.(type) {
		case *trace.Traceroute:
			at = v.At
		case *trace.Ping:
			at = v.At
		}
		if keyOf(rec) == k && at >= from && at < to {
			want = append(want, recBytes(t, rec))
		}
	}
	if len(want) == 0 {
		t.Fatal("corpus has no records in the probe window")
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var col collector
	if err := s.Pair(k, from, to, &col); err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, rec := range col.recs {
		got = append(got, recBytes(t, rec))
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("point lookup returned %d records, filtered flat read %d (or order differs)",
			len(got), len(want))
	}
	// Open-ended window (to < 0) must include the tail.
	var all collector
	if err := s.Pair(k, 0, -1, &all); err != nil {
		t.Fatal(err)
	}
	var full []string
	for _, rec := range corpus {
		if keyOf(rec) == k {
			full = append(full, recBytes(t, rec))
		}
	}
	var gotAll []string
	for _, rec := range all.recs {
		gotAll = append(gotAll, recBytes(t, rec))
	}
	if !reflect.DeepEqual(gotAll, full) {
		t.Fatalf("open-ended point lookup returned %d records, want %d", len(gotAll), len(full))
	}
}

// TestPairPointLookupPushdown asserts — via the store metrics — that the
// point-lookup path reads strictly fewer payload bytes than a full scan,
// prunes shards through the index (column, pair set, and time span), and
// skips non-matching frames without decoding them.
func TestPairPointLookupPushdown(t *testing.T) {
	corpus := synthCorpus(12, 6, 4, 3)
	dir := writeStore(t, corpus, Options{PairShards: 4})

	fullReg := obs.NewRegistry()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Instrument(fullReg)
	var full collector
	if err := s.Scan(4, &full); err != nil {
		t.Fatal(err)
	}
	fullBytes := fullReg.Counter(MetricBytesRead, "").Value()

	pairReg := obs.NewRegistry()
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2.Instrument(pairReg)
	var col collector
	k := trace.PairKey{SrcID: 1, DstID: 4}
	if err := s2.Pair(k, 24*time.Hour, 48*time.Hour, &col); err != nil {
		t.Fatal(err)
	}
	if len(col.recs) == 0 {
		t.Fatal("point lookup delivered no records")
	}
	pairBytes := pairReg.Counter(MetricBytesRead, "").Value()
	if pairBytes <= 0 || pairBytes >= fullBytes {
		t.Fatalf("point lookup read %d bytes, full scan %d — want strictly fewer and nonzero",
			pairBytes, fullBytes)
	}
	if pruned := pairReg.Counter(MetricShardsPruned, "").Value(); pruned == 0 {
		t.Fatal("point lookup pruned no shards")
	}
	if skipped := pairReg.Counter(MetricFramesFiltered, "").Value(); skipped == 0 {
		t.Fatal("point lookup decoded every frame (frame filter did not fire)")
	}
	// The time window must also prune whole shards: a one-day window over a
	// four-day store leaves at least two days of this pair's column unread.
	scanned := pairReg.Counter(MetricShardsScanned, "").Value()
	if scanned == 0 {
		t.Fatal("no shards scanned")
	}
}

// TestPairKeys checks the footer-union pair listing on an exact-list store.
func TestPairKeys(t *testing.T) {
	corpus := synthCorpus(13, 4, 2, 2)
	dir := writeStore(t, corpus, Options{PairShards: 3})
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys, exhaustive := s.PairKeys()
	if !exhaustive {
		t.Fatal("small store should have exact footer pair lists")
	}
	want := make(map[trace.PairKey]struct{})
	for _, rec := range corpus {
		want[keyOf(rec)] = struct{}{}
	}
	if len(keys) != len(want) {
		t.Fatalf("PairKeys returned %d keys, corpus holds %d", len(keys), len(want))
	}
	for i := 1; i < len(keys); i++ {
		if !pairLess(keys[i-1], keys[i]) {
			t.Fatalf("PairKeys not sorted at %d", i)
		}
	}
}
