package store

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/trace"
)

// writeRec routes one record of either kind into the writer.
func writeRec(t testing.TB, w *Writer, rec any) {
	t.Helper()
	var err error
	switch v := rec.(type) {
	case *trace.Traceroute:
		err = w.WriteTraceroute(v)
	case *trace.Ping:
		err = w.WritePing(v)
	}
	if err != nil {
		t.Fatal(err)
	}
}

// delist rewrites the manifest without the named shard, as if the writer
// crashed after finalizing the segment but before committing the manifest.
func delist(t *testing.T, dir, file string) {
	t.Helper()
	m, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	var victim ShardEntry
	kept := m.Shards[:0]
	for _, e := range m.Shards {
		if e.File == file {
			victim = e
			continue
		}
		kept = append(kept, e)
	}
	if victim.File == "" {
		t.Fatalf("shard %s not in manifest", file)
	}
	m.Shards = kept
	m.Records -= victim.Records
	ix, err := readFooter(filepath.Join(dir, file))
	if err != nil {
		t.Fatal(err)
	}
	m.Traceroutes -= ix.Traceroutes
	m.Pings -= ix.Pings
	if err := WriteManifest(dir, m); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointContinues: a store checkpointed mid-write is readable at
// the committed prefix, and the writer keeps routing records afterwards
// without losing anything.
func TestCheckpointContinues(t *testing.T) {
	corpus := synthCorpus(21, 3, 2, 2)
	dir := filepath.Join(t.TempDir(), "ck.store")
	w, err := Create(dir, Options{PairShards: 2})
	if err != nil {
		t.Fatal(err)
	}
	half := len(corpus) / 2
	for _, rec := range corpus[:half] {
		writeRec(t, w, rec)
	}
	pos, err := w.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if pos != int64(half) {
		t.Fatalf("checkpoint position = %d, want %d", pos, half)
	}
	// The committed prefix is fully readable right now.
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s.Manifest().Records != int64(half) {
		t.Fatalf("checkpointed store holds %d records, want %d", s.Manifest().Records, half)
	}
	for _, rec := range corpus[half:] {
		writeRec(t, w, rec)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var got collector
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Scan(1, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(byPair(t, got.recs), byPair(t, corpus)) {
		t.Fatal("per-pair streams differ after checkpoint + continue")
	}
}

// TestOpenAdoptsOrphan: a finalized segment missing from the manifest
// (crash between segment finalize and manifest commit) is adopted by
// Open, so no committed record is lost.
func TestOpenAdoptsOrphan(t *testing.T) {
	corpus := synthCorpus(22, 3, 2, 2)
	dir := writeStore(t, corpus, Options{PairShards: 2})
	m, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	delist(t, dir, m.Shards[0].File)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s.Manifest().Records != int64(len(corpus)) {
		t.Fatalf("adopted store holds %d records, want %d", s.Manifest().Records, len(corpus))
	}
	var got collector
	if err := s.Scan(1, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(byPair(t, got.recs), byPair(t, corpus)) {
		t.Fatal("per-pair streams differ after orphan adoption")
	}
}

// TestOpenRepairsTornSegment: an unlisted segment whose tail was lost in
// a crash is truncated to its decodable prefix and adopted; the rest of
// the store stays intact.
func TestOpenRepairsTornSegment(t *testing.T) {
	corpus := synthCorpus(23, 3, 2, 2)
	dir := writeStore(t, corpus, Options{PairShards: 2})
	m, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	victim := m.Shards[0]
	delist(t, dir, victim.File)
	path := filepath.Join(dir, victim.File)
	ix, err := readFooter(path)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut away the footer, the trailer, and part of the final record's
	// frame, leaving a decodable prefix of the payload.
	torn := int64(headerLen) + ix.PayloadBytes - 10
	if err := os.WriteFile(path, data[:torn], 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recovered := s.Manifest().Records
	intact := int64(len(corpus)) - victim.Records
	if recovered <= intact || recovered >= int64(len(corpus)) {
		t.Fatalf("recovered %d records, want a strict prefix between %d and %d",
			recovered, intact, len(corpus))
	}
	var got collector
	if err := s.Scan(1, &got); err != nil {
		t.Fatal(err)
	}
	if int64(len(got.recs)) != recovered {
		t.Fatalf("scan delivered %d records, manifest says %d", len(got.recs), recovered)
	}
}

// TestResumeCleansDebris: Resume removes unlisted segment files and temp
// debris, then continues the store exactly where the manifest left it.
func TestResumeCleansDebris(t *testing.T) {
	corpus := synthCorpus(24, 3, 2, 2)
	dir := filepath.Join(t.TempDir(), "resume.store")
	w, err := Create(dir, Options{PairShards: 2})
	if err != nil {
		t.Fatal(err)
	}
	half := len(corpus) / 2
	for _, rec := range corpus[:half] {
		writeRec(t, w, rec)
	}
	if _, err := w.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash after the checkpoint: the process dies while
	// writing a new segment and a manifest temp file.
	debris := filepath.Join(dir, shardName(9, 0, 7))
	if err := os.WriteFile(debris, []byte("S2SSHRD1 torn beyond repair"), 0o644); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, ManifestName+".tmp")
	if err := os.WriteFile(tmp, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	w2, err := Resume(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(debris); !os.IsNotExist(err) {
		t.Fatal("unlisted segment debris survived Resume")
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("manifest temp debris survived Resume")
	}
	if w2.Records() != int64(half) {
		t.Fatalf("resumed writer reports %d records, want %d", w2.Records(), half)
	}
	for _, rec := range corpus[half:] {
		writeRec(t, w2, rec)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var got collector
	if err := s.Scan(1, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(byPair(t, got.recs), byPair(t, corpus)) {
		t.Fatal("per-pair streams differ after crash + Resume")
	}
}

// TestVerify: a healthy store passes; payload corruption and manifest
// drift are reported as problems; orphans are counted but do not fail.
func TestVerify(t *testing.T) {
	corpus := synthCorpus(25, 3, 2, 2)
	dir := writeStore(t, corpus, Options{PairShards: 2})
	rep, err := Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("healthy store fails verification: %s", rep)
	}
	if rep.Records != int64(len(corpus)) {
		t.Fatalf("verify decoded %d records, want %d", rep.Records, len(corpus))
	}

	// An orphan is reported but is not a failure.
	m, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	victim := m.Shards[0]
	delist(t, dir, victim.File)
	rep, err = Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || rep.Orphans != 1 {
		t.Fatalf("delisted segment: OK=%v orphans=%d, want OK with 1 orphan", rep.OK(), rep.Orphans)
	}

	// Payload corruption inside a listed shard is a failure: flipping the
	// first frame's kind byte breaks the frame walk.
	m2, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, m2.Shards[0].File)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[headerLen] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err = Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("corrupted payload passed verification")
	}
	found := false
	for _, p := range rep.Problems {
		if strings.Contains(p, m2.Shards[0].File) {
			found = true
		}
	}
	if !found {
		t.Fatalf("problems do not name the corrupted shard: %v", rep.Problems)
	}
}

// TestCreateLeavesReadableStore: the manifest exists from the first
// instant, so a crash before any checkpoint still leaves an openable
// (empty) store.
func TestCreateLeavesReadableStore(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "fresh.store")
	if _, err := Create(dir, Options{}); err != nil {
		t.Fatal(err)
	}
	// No Close, no Checkpoint: the process "crashed" right here.
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("store unreadable after crash-at-birth: %v", err)
	}
	if s.Manifest().Records != 0 {
		t.Fatalf("fresh store reports %d records", s.Manifest().Records)
	}
}
