package simnet

import (
	"testing"

	"repro/internal/obs"
)

// TestPathCacheMetrics checks that the per-shard cache counters move the
// way the cache behaves: a first resolution misses, an identical repeat
// hits, and neither changes the resolved path.
func TestPathCacheMetrics(t *testing.T) {
	w := newWorld(t, 41)
	reg := obs.NewRegistry()
	w.sim.Instrument(reg)
	a, b := w.pair(t)

	first, err := w.sim.ForwardHops(a, b, false, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	again, err := w.sim.ForwardHops(a, b, false, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != len(again) {
		t.Fatalf("cached resolution changed the path: %d vs %d hops", len(first), len(again))
	}

	snap := reg.Snapshot()
	misses := snap.SumFamily(MetricCacheMisses)
	hits := snap.SumFamily(MetricCacheHits)
	if misses == 0 {
		t.Error("first resolution did not count a miss")
	}
	if hits == 0 {
		t.Error("repeated resolution did not count a hit")
	}

	// More distinct flows over the same pair only add entries; the hit
	// and miss totals stay consistent with the lookups made.
	for flow := uint64(0); flow < 32; flow++ {
		if _, err := w.sim.ForwardHops(a, b, false, flow, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := w.sim.ForwardHops(a, b, false, flow, 0); err != nil {
			t.Fatal(err)
		}
	}
	snap = reg.Snapshot()
	if got := snap.SumFamily(MetricCacheHits); got <= hits {
		t.Errorf("hits did not grow with repeated lookups: %d -> %d", hits, got)
	}
	total := snap.SumFamily(MetricCacheHits) + snap.SumFamily(MetricCacheMisses)
	if total < 34 { // 2 + 64 lookups, some may share a flow key
		t.Errorf("hits+misses = %d, want at least the lookups made", total)
	}
}
