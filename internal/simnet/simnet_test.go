package simnet

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/astopo"
	"repro/internal/bgp"
	"repro/internal/cdn"
	"repro/internal/congestion"
	"repro/internal/itopo"
)

type world struct {
	net  *itopo.Network
	dyn  *bgp.Dynamics
	cong *congestion.Model
	plat *cdn.Platform
	sim  *Net
}

func newWorld(t *testing.T, seed int64) *world {
	t.Helper()
	dur := 14 * 24 * time.Hour
	topo, err := astopo.Generate(astopo.DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	rnet, err := itopo.Build(topo, itopo.DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := bgp.NewDynamics(topo, bgp.DefaultDynConfig(seed, dur))
	if err != nil {
		t.Fatal(err)
	}
	cong, err := congestion.NewModel(rnet, congestion.DefaultConfig(seed, dur))
	if err != nil {
		t.Fatal(err)
	}
	plat, err := cdn.Deploy(rnet, cdn.DefaultConfig(seed, 80))
	if err != nil {
		t.Fatal(err)
	}
	return &world{
		net: rnet, dyn: dyn, cong: cong, plat: plat,
		sim: New(rnet, dyn, cong, DefaultConfig(seed)),
	}
}

func (w *world) pair(t *testing.T) (*cdn.Cluster, *cdn.Cluster) {
	t.Helper()
	for i := 0; i < len(w.plat.Clusters); i++ {
		for j := i + 1; j < len(w.plat.Clusters); j++ {
			a, b := w.plat.Clusters[i], w.plat.Clusters[j]
			if a.HostAS != b.HostAS {
				return a, b
			}
		}
	}
	t.Fatal("no cross-AS pair")
	return nil, nil
}

func TestForwardHopsBasics(t *testing.T) {
	w := newWorld(t, 1)
	src, dst := w.pair(t)
	hops, err := w.sim.ForwardHops(src, dst, false, 1, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(hops) < 2 {
		t.Fatalf("too few hops: %d", len(hops))
	}
	if hops[0].Router != src.Attach || hops[len(hops)-1].Router != dst.Attach {
		t.Error("path endpoints wrong")
	}
	if hops[0].Cum != 0 {
		t.Error("first hop must have zero cumulative delay")
	}
}

func TestForwardHopsCached(t *testing.T) {
	w := newWorld(t, 2)
	src, dst := w.pair(t)
	a, err := w.sim.ForwardHops(src, dst, false, 5, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.sim.ForwardHops(src, dst, false, 5, time.Hour+time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// Same epoch, same flow: identical backing array (cache hit).
	if &a[0] != &b[0] {
		t.Error("expected cache hit within an epoch")
	}
}

func TestOneWayDelayIncludesCongestion(t *testing.T) {
	w := newWorld(t, 3)
	lids := w.cong.CongestedLinks()
	if len(lids) == 0 {
		t.Skip("no congested links under this seed")
	}
	// Construct a synthetic two-hop path over a congested link and compare
	// delays at peak vs off-peak.
	prof, _ := w.cong.Profile(lids[0])
	link := w.net.Links[lids[0]]
	hops := []itopo.PathHop{
		{Router: link.A, InLink: -1, Cum: 0},
		{Router: link.B, InLink: link.ID, Cum: link.Delay},
	}
	mid := (prof.Start + prof.End) / 2
	dayStart := mid - mid%(24*time.Hour)
	var lo, hi time.Duration
	for h := 0; h < 24; h++ {
		d := w.sim.OneWayDelay(hops, dayStart+time.Duration(h)*time.Hour)
		if lo == 0 || d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	}
	if hi-lo < prof.Amplitude/2 {
		t.Errorf("congestion swing %v too small for amplitude %v", hi-lo, prof.Amplitude)
	}
	if lo != link.Delay {
		t.Errorf("off-peak delay %v != propagation %v", lo, link.Delay)
	}
}

func TestBaseRTTSumsDirections(t *testing.T) {
	w := newWorld(t, 4)
	src, dst := w.pair(t)
	at := 2 * time.Hour
	rtt, err := w.sim.BaseRTT(src, dst, false, 1, 2, at)
	if err != nil {
		t.Fatal(err)
	}
	fwd, err := w.sim.ForwardHops(src, dst, false, 1, at)
	if err != nil {
		t.Fatal(err)
	}
	rev, err := w.sim.ForwardHops(dst, src, false, 2, at)
	if err != nil {
		t.Fatal(err)
	}
	want := w.sim.OneWayDelay(fwd, at) + w.sim.OneWayDelay(rev, at) + 4*w.sim.Config().ServerLinkDelay
	if rtt != want {
		t.Errorf("BaseRTT = %v, want %v", rtt, want)
	}
	if rtt <= 0 {
		t.Error("non-positive RTT")
	}
}

func TestUnreachableV6(t *testing.T) {
	w := newWorld(t, 5)
	var v4only, ds *cdn.Cluster
	for _, c := range w.plat.Clusters {
		if !c.DualStack() && v4only == nil {
			v4only = c
		} else if c.DualStack() && ds == nil {
			ds = c
		}
	}
	if v4only == nil || ds == nil {
		t.Skip("no v4-only cluster")
	}
	if _, err := w.sim.ForwardHops(ds, v4only, true, 1, 0); !errors.Is(err, ErrUnreachable) {
		t.Errorf("err = %v, want ErrUnreachable", err)
	}
	if p := w.sim.ASPath(ds, v4only, true, 0); p != nil {
		t.Errorf("v6 AS path to v4-only host = %v", p)
	}
}

func TestRandDeterministicPerCoordinates(t *testing.T) {
	w := newWorld(t, 6)
	a := w.sim.Rand(KindPing, 1, 2, false, time.Hour)
	b := w.sim.Rand(KindPing, 1, 2, false, time.Hour)
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same coordinates produced different streams")
		}
	}
	// Different kind, id, family, or time changes the stream.
	variants := []*Net{w.sim}
	_ = variants
	base := w.sim.Rand(KindPing, 1, 2, false, time.Hour).Uint64()
	if w.sim.Rand(KindTraceroute, 1, 2, false, time.Hour).Uint64() == base {
		t.Error("kind should salt the stream")
	}
	if w.sim.Rand(KindPing, 2, 1, false, time.Hour).Uint64() == base {
		t.Error("ids should salt the stream")
	}
	if w.sim.Rand(KindPing, 1, 2, true, time.Hour).Uint64() == base {
		t.Error("family should salt the stream")
	}
	if w.sim.Rand(KindPing, 1, 2, false, 2*time.Hour).Uint64() == base {
		t.Error("time should salt the stream")
	}
}

func TestNoiseShape(t *testing.T) {
	w := newWorld(t, 7)
	rng := w.sim.Rand(KindPing, 1, 2, false, 0)
	var sum time.Duration
	n := 2000
	for i := 0; i < n; i++ {
		d := w.sim.Noise(rng, 15)
		if d < 0 {
			t.Fatal("negative noise")
		}
		sum += d
	}
	mean := sum / time.Duration(n)
	// 15 hops × ~96µs (half-normal mean of 120µs scale) ≈ 1.4ms, plus
	// spike contribution ~0.4ms.
	if mean < 500*time.Microsecond || mean > 5*time.Millisecond {
		t.Errorf("mean noise = %v, want low single-digit ms", mean)
	}
}

func TestLostRate(t *testing.T) {
	w := newWorld(t, 8)
	rng := w.sim.Rand(KindPing, 3, 4, false, 0)
	lost := 0
	n := 20000
	for i := 0; i < n; i++ {
		if w.sim.Lost(rng) {
			lost++
		}
	}
	rate := float64(lost) / float64(n)
	if rate < 0.001 || rate > 0.02 {
		t.Errorf("loss rate = %.4f, want ~0.004", rate)
	}
}

// TestPathCacheBounded floods the resolved-path cache with never-repeating
// flow IDs (the classic-traceroute access pattern) and asserts the
// configured bound holds: no shard may exceed its share, so the total stays
// at or below MaxCachedPaths.
func TestPathCacheBounded(t *testing.T) {
	w := newWorld(t, 9)
	cfg := DefaultConfig(9)
	cfg.MaxCachedPaths = 64
	sim := New(w.net, w.dyn, w.cong, cfg)
	src, dst := w.pair(t)
	for flow := uint64(0); flow < 4096; flow++ {
		if _, err := sim.ForwardHops(src, dst, false, flow, time.Hour); err != nil {
			t.Fatal(err)
		}
		if n := sim.cachedPaths(false); n > 64 {
			t.Fatalf("cache grew to %d entries, bound is 64 (after %d flows)", n, flow+1)
		}
	}
	if n := sim.cachedPaths(false); n == 0 {
		t.Fatal("cache empty after 4096 resolutions")
	}
}

// TestPathCacheConcurrent hammers the sharded cache from many goroutines
// (run under -race) mixing repeated and unique flows across both families.
func TestPathCacheConcurrent(t *testing.T) {
	w := newWorld(t, 10)
	cfg := DefaultConfig(10)
	cfg.MaxCachedPaths = 128
	sim := New(w.net, w.dyn, w.cong, cfg)
	src, dst := w.pair(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				flow := uint64(i % 16)
				if g%2 == 0 {
					flow = uint64(g*1000 + i) // never repeats
				}
				_, err := sim.ForwardHops(src, dst, g%3 == 0 && src.DualStack() && dst.DualStack(), flow, time.Duration(i)*time.Minute)
				if err != nil && !errors.Is(err, ErrUnreachable) {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if n := sim.cachedPaths(false); n > 128 {
		t.Fatalf("v4 cache grew to %d entries, bound is 128", n)
	}
}
