// Package simnet is the virtual network the measurement tools probe: it
// composes the router-level topology (itopo), time-varying BGP routing
// (bgp.Dynamics), the congestion model, and a deterministic noise model
// into path- and RTT-oracles addressed by cluster pairs and virtual time.
//
// Determinism: every stochastic quantity (jitter, spikes, losses) is drawn
// from a PRNG seeded by a hash of (seed, src, dst, time, family, kind), so
// a measurement's outcome is a pure function of its coordinates — identical
// campaigns produce identical datasets regardless of execution order.
package simnet

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"repro/internal/bgp"
	"repro/internal/cdn"
	"repro/internal/congestion"
	"repro/internal/faults"
	"repro/internal/intern"
	"repro/internal/ipam"
	"repro/internal/itopo"
	"repro/internal/obs"
	"repro/internal/obs/flight"
)

// ErrUnreachable is returned when no route exists between the endpoints at
// the measurement time (e.g. a partition, or IPv6 between v4-only hosts).
var ErrUnreachable = errors.New("simnet: destination unreachable")

// maxCachedPaths is the default bound on the per-family resolved-path
// cache (entries across all shards).
const maxCachedPaths = 1 << 16

// pathCacheShards is the number of independently locked cache shards per
// family. Workers hash onto shards by key, so concurrent probers contend
// only when they resolve paths that land on the same shard.
const pathCacheShards = 32

// Config tunes the measurement-visible noise floor.
type Config struct {
	Seed int64

	// MaxCachedPaths overrides the resolved-path cache bound per family
	// (0 selects the maxCachedPaths default). Mostly a test hook.
	MaxCachedPaths int

	// ServerLinkDelay is the one-way delay between a measurement server
	// and its attachment router.
	ServerLinkDelay time.Duration

	// HopJitter is the per-hop jitter scale (half-normal).
	HopJitter time.Duration

	// SpikeProb and SpikeMean shape the occasional large RTT spikes the
	// paper calls "a typical feature of repeated measurements".
	SpikeProb float64
	SpikeMean time.Duration

	// LossProb is the baseline ping-loss probability. CongestionLossPerMs
	// adds loss proportional to the congestion queueing delay on the path
	// (full buffers drop packets), so loss correlates with the §5.1
	// diurnal pattern.
	LossProb            float64
	CongestionLossPerMs float64
}

// DefaultConfig returns the standard noise parameters.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:                seed,
		ServerLinkDelay:     250 * time.Microsecond,
		HopJitter:           120 * time.Microsecond,
		SpikeProb:           0.012,
		SpikeMean:           30 * time.Millisecond,
		LossProb:            0.004,
		CongestionLossPerMs: 0.0006,
	}
}

// Net is the virtual network.
type Net struct {
	R    *itopo.Network
	Dyn  *bgp.Dynamics
	Cong *congestion.Model
	cfg  Config

	// Resolved-path cache, sharded by key hash so concurrent probers
	// rarely contend. Keys carry the BGP epoch ("epoch-keyed
	// generations"): a round that straddles an epoch boundary keeps both
	// generations warm instead of thrashing a shared clear-on-advance
	// cache, and stale generations are evicted shard-by-shard as the
	// per-shard bound is reached.
	shards   [2][pathCacheShards]pathShard
	shardMax int

	// Per-family hop-sequence interners, epoch-keyed like the path cache:
	// distinct cache entries (and concurrent resolutions) that resolve to
	// the same router path share one canonical slab-backed slice. Two
	// generations stay warm so a round straddling an epoch boundary keeps
	// deduplicating on both sides.
	hopSeqs [2]hopInterner

	// Fault schedule; nil (the default) leaves the network fault-free and
	// the measurement byte-stream identical to the pre-fault behavior.
	faults *faults.Plan

	// Counts route lookups that failed because an endpoint cluster was
	// inside a scheduled outage window; nil until Instrument.
	mFaultUnreach *obs.Counter

	// Flight recorder; nil until Trace.
	rec *flight.Recorder
}

type pathShard struct {
	mu sync.Mutex
	m  map[pathKey][]itopo.PathHop

	// epoch is the newest BGP epoch this shard has seen. When it
	// advances, entries more than one epoch old are swept eagerly: they
	// can never be hit again (lookups key on the current epoch; only the
	// previous one stays reachable while a round straddles the boundary),
	// and while present they pin their interner generation's slab blocks.
	epoch int

	// Per-shard cache telemetry; nil (one predicted branch per lookup)
	// until Instrument attaches a registry.
	hits, misses, stale, evictions *obs.Counter
}

type pathKey struct {
	src, dst itopo.RouterID
	flow     uint64
	asHash   uint64
	epoch    int
}

// shardIndex spreads keys across shards; flow and asHash are already
// FNV-mixed, so a simple combine suffices.
func (k pathKey) shardIndex() int {
	h := k.flow ^ k.asHash ^ uint64(k.src)<<32 ^ uint64(k.dst) ^ uint64(k.epoch)<<16
	h *= 1099511628211
	return int((h >> 32) % pathCacheShards)
}

// New assembles a virtual network. cong may be nil for a congestion-free
// network.
func New(r *itopo.Network, dyn *bgp.Dynamics, cong *congestion.Model, cfg Config) *Net {
	n := &Net{R: r, Dyn: dyn, Cong: cong, cfg: cfg}
	bound := cfg.MaxCachedPaths
	if bound <= 0 {
		bound = maxCachedPaths
	}
	n.shardMax = bound / pathCacheShards
	if n.shardMax < 1 {
		n.shardMax = 1
	}
	return n
}

// Config returns the noise configuration.
func (n *Net) Config() Config { return n.cfg }

// Metric family names exported by Instrument. Each carries family ("v4" or
// "v6") and shard labels; sum over the series for platform totals.
const (
	MetricCacheHits      = "s2s_simnet_path_cache_hits_total"
	MetricCacheMisses    = "s2s_simnet_path_cache_misses_total"
	MetricCacheStale     = "s2s_simnet_path_cache_stale_drops_total"
	MetricCacheEvictions = "s2s_simnet_path_cache_evictions_total"
)

// MetricFaultUnreachable counts route lookups refused because an endpoint
// cluster was inside a scheduled outage window (no family/shard labels).
const MetricFaultUnreachable = "s2s_simnet_fault_unreachable_total"

// SetFaults attaches a fault schedule: route lookups fail with
// ErrUnreachable while either endpoint cluster is inside an outage
// window, and browned-out links add delay (via CongestionDelay) and loss
// (via FaultLoss) to paths crossing them. Call before probing starts; a
// nil plan (the default) keeps the network byte-identical to the
// fault-free behavior.
func (n *Net) SetFaults(p *faults.Plan) { n.faults = p }

// Faults returns the attached fault schedule (nil when fault-free).
func (n *Net) Faults() *faults.Plan { return n.faults }

// Instrument registers the resolved-path cache's per-shard counters in
// reg. Call it before probing starts; a nil registry leaves the network
// uninstrumented (the default, zero-overhead state). Metrics never feed
// back into measurement outcomes, so instrumented runs emit byte-identical
// datasets.
func (n *Net) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	n.mFaultUnreach = reg.Counter(MetricFaultUnreachable, "route lookups refused by a scheduled cluster outage")
	for fi, fam := range [2]string{"v4", "v6"} {
		for si := range n.shards[fi] {
			sh := &n.shards[fi][si]
			label := fmt.Sprintf(`{family=%q,shard="%d"}`, fam, si)
			sh.hits = reg.Counter(MetricCacheHits+label, "resolved-path cache hits")
			sh.misses = reg.Counter(MetricCacheMisses+label, "resolved-path cache misses (paths resolved)")
			sh.stale = reg.Counter(MetricCacheStale+label, "cache entries dropped for belonging to an old BGP epoch")
			sh.evictions = reg.Counter(MetricCacheEvictions+label, "cache entries dropped by a full-shard reset")
		}
	}
}

// Trace attaches a flight recorder: every cache-generation sweep (stale
// drops at a shard bound, or a full shard reset) becomes an event carrying
// the shard index, drop counts, and family. A nil recorder is a no-op.
// Call before probing starts.
func (n *Net) Trace(rec *flight.Recorder) { n.rec = rec }

// plane maps a family flag onto the BGP plane.
func plane(v6 bool) bgp.Plane {
	if v6 {
		return bgp.V6
	}
	return bgp.V4
}

// ASPath returns the AS-level route between the clusters' host ASes at
// time t, or nil when unreachable.
func (n *Net) ASPath(src, dst *cdn.Cluster, v6 bool, t time.Duration) []ipam.ASN {
	if v6 && (!src.DualStack() || !dst.DualStack()) {
		return nil
	}
	return n.Dyn.RoutingAt(t, plane(v6)).Path(src.HostAS, dst.HostAS)
}

// ForwardHops resolves the router-level path from src's attachment router
// to dst's at time t for the given flow. The first hop is src's attachment
// router with zero cumulative delay.
func (n *Net) ForwardHops(src, dst *cdn.Cluster, v6 bool, flowID uint64, t time.Duration) ([]itopo.PathHop, error) {
	if n.faults != nil && (n.faults.ClusterDown(src.ID, t) || n.faults.ClusterDown(dst.ID, t)) {
		n.mFaultUnreach.Inc()
		return nil, ErrUnreachable
	}
	asPath := n.ASPath(src, dst, v6, t)
	if asPath == nil {
		return nil, ErrUnreachable
	}
	return n.resolveCached(src.Attach, dst.Attach, asPath, v6, flowID, t)
}

// ForwardHopsScratch resolves like ForwardHops but bypasses the path
// cache and the hop interner, appending into buf (whose capacity is
// reused). It exists for one-shot flows: classic traceroute derives a
// fresh flow per TTL and per measurement, so a cache entry for it can
// never be hit again and an interned copy would sit in the slab for the
// rest of the epoch. The returned slice is backed by buf (when it fits)
// and owned by the caller — unlike ForwardHops results it is neither
// shared nor retained by the network.
func (n *Net) ForwardHopsScratch(buf []itopo.PathHop, src, dst *cdn.Cluster, v6 bool, flowID uint64, t time.Duration) ([]itopo.PathHop, error) {
	if n.faults != nil && (n.faults.ClusterDown(src.ID, t) || n.faults.ClusterDown(dst.ID, t)) {
		n.mFaultUnreach.Inc()
		return buf, ErrUnreachable
	}
	asPath := n.ASPath(src, dst, v6, t)
	if asPath == nil {
		return buf, ErrUnreachable
	}
	return n.R.AppendPath(buf[:0], src.Attach, dst.Attach, asPath, v6, flowID)
}

func (n *Net) resolveCached(sr, dr itopo.RouterID, asPath []ipam.ASN, v6 bool, flowID uint64, t time.Duration) ([]itopo.PathHop, error) {
	fi := 0
	if v6 {
		fi = 1
	}
	epoch := n.Dyn.EpochAt(t)
	key := pathKey{sr, dr, flowID, hashASPath(asPath), epoch}
	sh := &n.shards[fi][key.shardIndex()]
	sh.mu.Lock()
	if hops, ok := sh.m[key]; ok {
		sh.mu.Unlock()
		sh.hits.Inc()
		return hops, nil
	}
	sh.mu.Unlock()
	sh.misses.Inc()
	// Resolve into pooled scratch: the interner copies the sequence into
	// its slab (or an unshared copy), so the resolve buffer never escapes
	// and the growth churn of cold resolves is paid once per pool entry.
	bufp := hopScratch.Get().(*[]itopo.PathHop)
	scratch, err := n.R.AppendPath((*bufp)[:0], sr, dr, asPath, v6, flowID)
	if cap(scratch) > cap(*bufp) {
		*bufp = scratch
	}
	if err != nil {
		hopScratch.Put(bufp)
		return nil, err
	}
	hops := n.hopSeqs[fi].intern(epoch, scratch)
	hopScratch.Put(bufp)
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[pathKey][]itopo.PathHop)
	}
	if epoch > sh.epoch {
		sh.epoch = epoch
		swept := 0
		for k := range sh.m {
			if k.epoch < epoch-1 {
				delete(sh.m, k)
				swept++
			}
		}
		sh.stale.Add(int64(swept))
	}
	// One-shot flows (callers that derive a fresh flow per probe and do
	// not use ForwardHopsScratch) never repeat, so the cache is bounded
	// to keep long campaigns from accumulating entries. Entries from
	// other epochs go first (the clock has usually moved on); if the
	// shard is still full, it is reset.
	if len(sh.m) >= n.shardMax {
		before := len(sh.m)
		for k := range sh.m {
			if k.epoch != epoch {
				delete(sh.m, k)
			}
		}
		stale := before - len(sh.m)
		sh.stale.Add(int64(stale))
		evicted := 0
		if len(sh.m) >= n.shardMax {
			evicted = len(sh.m)
			sh.evictions.Add(int64(evicted))
			sh.m = make(map[pathKey][]itopo.PathHop)
		}
		if n.rec != nil {
			fam := "v4"
			if v6 {
				fam = "v6"
			}
			n.rec.Event(flight.PhCacheSweep, t, flight.Attrs{
				ID: int64(key.shardIndex()),
				N:  int64(stale),
				M:  int64(evicted),
				S:  fam,
			})
		}
	}
	sh.m[key] = hops
	sh.mu.Unlock()
	return hops, nil
}

// hopScratch pools the per-resolve path buffer; interned sequences are
// copied out of it before it is reused.
var hopScratch = sync.Pool{New: func() any {
	b := make([]itopo.PathHop, 0, 64)
	return &b
}}

// hopInterner is a per-family pair of epoch-keyed hop-sequence interners.
// Interned slices are shared across cache entries and callers: they must
// be treated as immutable (every consumer of ForwardHops already is
// read-only — mutating resolved hops would break cache correctness even
// without interning).
type hopInterner struct {
	mu   sync.Mutex
	gens [2]struct {
		epoch int
		seq   *intern.Seq[itopo.PathHop]
	}
}

func hashPathHop(h itopo.PathHop) uint64 {
	x := uint64(uint32(h.Router)) | uint64(uint32(h.InLink))<<32
	x ^= uint64(h.Cum) * 0x9e3779b97f4a7c15
	x *= 0xff51afd7ed558ccd
	return x ^ x>>33
}

// intern returns the canonical slice for hops within the given BGP epoch,
// rotating out the older generation when a third epoch appears.
func (hi *hopInterner) intern(epoch int, hops []itopo.PathHop) []itopo.PathHop {
	hi.mu.Lock()
	var seq *intern.Seq[itopo.PathHop]
	for i := range hi.gens {
		if hi.gens[i].seq != nil && hi.gens[i].epoch == epoch {
			seq = hi.gens[i].seq
		}
	}
	if seq == nil {
		// Replace the older (or empty) generation.
		oldest := 0
		for i := range hi.gens {
			if hi.gens[i].seq == nil {
				oldest = i
				break
			}
			if hi.gens[i].epoch < hi.gens[oldest].epoch {
				oldest = i
			}
		}
		seq = intern.NewSeq[itopo.PathHop](8, hashPathHop)
		hi.gens[oldest].epoch = epoch
		hi.gens[oldest].seq = seq
	}
	hi.mu.Unlock()
	canon, _ := seq.Intern(hops)
	return canon
}

// cachedPaths reports the resolved-path cache population for one family
// (test hook for the bound).
func (n *Net) cachedPaths(v6 bool) int {
	fi := 0
	if v6 {
		fi = 1
	}
	total := 0
	for i := range n.shards[fi] {
		sh := &n.shards[fi][i]
		sh.mu.Lock()
		total += len(sh.m)
		sh.mu.Unlock()
	}
	return total
}

// OneWayDelay returns the propagation delay of the resolved path plus the
// congestion queueing delay active on its links at time t.
func (n *Net) OneWayDelay(hops []itopo.PathHop, t time.Duration) time.Duration {
	if len(hops) == 0 {
		return 0
	}
	d := hops[len(hops)-1].Cum
	d += n.CongestionDelay(hops, len(hops)-1, t)
	return d
}

// CongestionDelay sums the congestion queueing delay — plus any brownout
// delay from the fault schedule — on the inbound links of hops[1..upto]
// at time t.
func (n *Net) CongestionDelay(hops []itopo.PathHop, upto int, t time.Duration) time.Duration {
	if n.Cong == nil && n.faults == nil {
		return 0
	}
	var d time.Duration
	for i := 1; i <= upto && i < len(hops); i++ {
		if hops[i].InLink >= 0 {
			if n.Cong != nil {
				d += n.Cong.DelayOn(hops[i].InLink, t)
			}
			if n.faults != nil {
				d += n.faults.LinkDelay(hops[i].InLink, t)
			}
		}
	}
	return d
}

// FaultLoss sums the brownout loss probability on the inbound links of
// hops[1..upto] at time t. Zero when no fault schedule is attached.
func (n *Net) FaultLoss(hops []itopo.PathHop, upto int, t time.Duration) float64 {
	if n.faults == nil {
		return 0
	}
	var loss float64
	for i := 1; i <= upto && i < len(hops); i++ {
		if hops[i].InLink >= 0 {
			loss += n.faults.LinkLoss(hops[i].InLink, t)
		}
	}
	return loss
}

// BaseRTT returns the noise-free round-trip time between two clusters at
// time t: forward path (flow flowF) out, independent reverse path (flow
// flowR) back, plus the server attachment links. Paths may be asymmetric —
// the reverse direction is routed from dst's side.
func (n *Net) BaseRTT(src, dst *cdn.Cluster, v6 bool, flowF, flowR uint64, t time.Duration) (time.Duration, error) {
	fwd, err := n.ForwardHops(src, dst, v6, flowF, t)
	if err != nil {
		return 0, err
	}
	rev, err := n.ForwardHops(dst, src, v6, flowR, t)
	if err != nil {
		return 0, err
	}
	return n.OneWayDelay(fwd, t) + n.OneWayDelay(rev, t) + 4*n.cfg.ServerLinkDelay, nil
}

// MeasurementKind salts the per-measurement PRNG so that, e.g., a ping and
// a traceroute at the same coordinates see different noise.
type MeasurementKind uint8

// Measurement kinds.
const (
	KindPing MeasurementKind = iota
	KindTraceroute
)

// rngPool recycles per-measurement PRNGs: the ~5KB rngSource state behind
// every rand.New was the single largest per-measurement allocation.
// Reseeding a pooled generator resets it to exactly the state rand.New
// produces, so pooled and fresh generators draw identical streams.
var rngPool = sync.Pool{New: func() any {
	return rand.New(rand.NewSource(0))
}}

// Rand returns the deterministic PRNG for one measurement. Callers on the
// hot path should hand the generator back via PutRand once the measurement
// is complete; generators are pooled and reseeded, which preserves the
// determinism contract exactly.
func (n *Net) Rand(kind MeasurementKind, srcID, dstID int, v6 bool, at time.Duration) *rand.Rand {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	mix(uint64(n.cfg.Seed))
	mix(uint64(kind))
	mix(uint64(int64(srcID)))
	mix(uint64(int64(dstID)))
	mix(uint64(int64(at)))
	if v6 {
		mix(1)
	} else {
		mix(2)
	}
	rng := rngPool.Get().(*rand.Rand)
	rng.Seed(int64(h))
	return rng
}

// PutRand returns a measurement PRNG to the pool. The caller must not use
// the generator afterwards. Passing nil is a no-op.
func (n *Net) PutRand(rng *rand.Rand) {
	if rng != nil {
		rngPool.Put(rng)
	}
}

// Noise draws the additive measurement noise for a path of the given hop
// count: per-hop half-normal jitter plus an occasional exponential spike.
func (n *Net) Noise(rng *rand.Rand, hopCount int) time.Duration {
	var d time.Duration
	for i := 0; i < hopCount; i++ {
		d += time.Duration(math.Abs(rng.NormFloat64()) * float64(n.cfg.HopJitter))
	}
	if rng.Float64() < n.cfg.SpikeProb {
		d += time.Duration(rng.ExpFloat64() * float64(n.cfg.SpikeMean))
	}
	return d
}

// Lost reports whether a ping is dropped (independent of reachability).
func (n *Net) Lost(rng *rand.Rand) bool { return rng.Float64() < n.cfg.LossProb }

// LostCongested reports a drop given the congestion queueing delay the
// packet met: baseline loss plus CongestionLossPerMs per millisecond.
func (n *Net) LostCongested(rng *rand.Rand, congestion time.Duration) bool {
	return n.LostFaulted(rng, congestion, 0)
}

// LostFaulted reports a drop given the congestion queueing delay and an
// additional fault-induced loss probability (brownouts, from FaultLoss)
// on the path. It consumes exactly one rng draw, like LostCongested.
func (n *Net) LostFaulted(rng *rand.Rand, congestion time.Duration, extraLoss float64) bool {
	p := n.cfg.LossProb + n.cfg.CongestionLossPerMs*float64(congestion)/float64(time.Millisecond) + extraLoss
	return rng.Float64() < p
}

func hashASPath(p []ipam.ASN) uint64 {
	h := uint64(14695981039346656037)
	for _, a := range p {
		v := uint64(a)
		for i := 0; i < 4; i++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	return h
}
