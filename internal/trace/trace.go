// Package trace defines the measurement record model shared by the probing
// tools and the analysis pipeline: traceroute records with per-hop
// addresses and RTTs, ping records, and streaming encodings (JSON lines for
// interoperability, a compact binary framing for bulk storage).
package trace

import (
	"net/netip"
	"time"
)

// Hop is one traceroute hop. An unresponsive hop has an invalid Addr and
// zero RTT — exactly what a '*' line in traceroute output conveys.
type Hop struct {
	Addr netip.Addr    `json:"addr,omitempty"`
	RTT  time.Duration `json:"rtt,omitempty"`
}

// Responsive reports whether the hop answered.
func (h Hop) Responsive() bool { return h.Addr.IsValid() }

// Traceroute is one traceroute measurement between two servers.
type Traceroute struct {
	// SrcID/DstID identify the measurement servers (cluster ids).
	SrcID int        `json:"src_id"`
	DstID int        `json:"dst_id"`
	Src   netip.Addr `json:"src"`
	Dst   netip.Addr `json:"dst"`
	V6    bool       `json:"v6,omitempty"`
	// Paris records whether the Paris traceroute algorithm was used.
	Paris bool `json:"paris,omitempty"`
	// At is the virtual time offset from campaign start.
	At time.Duration `json:"at"`
	// Hops lists intermediate routers and the destination (when reached).
	Hops []Hop `json:"hops"`
	// Complete reports whether the destination answered; RTT is the
	// end-to-end round-trip time and is only meaningful when Complete.
	Complete bool          `json:"complete"`
	RTT      time.Duration `json:"rtt,omitempty"`
}

// Ping is one ping measurement between two servers.
type Ping struct {
	SrcID int           `json:"src_id"`
	DstID int           `json:"dst_id"`
	Src   netip.Addr    `json:"src"`
	Dst   netip.Addr    `json:"dst"`
	V6    bool          `json:"v6,omitempty"`
	At    time.Duration `json:"at"`
	RTT   time.Duration `json:"rtt,omitempty"`
	Lost  bool          `json:"lost,omitempty"`
}

// PairKey identifies a directed server pair on one protocol — the unit the
// paper calls a "trace timeline" (all traceroutes from server A to server B
// over one protocol, ordered by time).
type PairKey struct {
	SrcID, DstID int
	V6           bool
}

// Key returns the timeline key of the traceroute.
func (tr *Traceroute) Key() PairKey { return PairKey{tr.SrcID, tr.DstID, tr.V6} }

// Key returns the timeline key of the ping.
func (p *Ping) Key() PairKey { return PairKey{p.SrcID, p.DstID, p.V6} }

// Reverse returns the key of the opposite direction.
func (k PairKey) Reverse() PairKey { return PairKey{k.DstID, k.SrcID, k.V6} }

// Undirected returns the key with the lower id first, for grouping the two
// directions of a server pair.
func (k PairKey) Undirected() PairKey {
	if k.SrcID > k.DstID {
		k.SrcID, k.DstID = k.DstID, k.SrcID
	}
	return k
}
