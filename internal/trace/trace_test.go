package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"time"
)

func sampleTraceroute() *Traceroute {
	return &Traceroute{
		SrcID: 3, DstID: 9,
		Src:      netip.MustParseAddr("4.0.128.1"),
		Dst:      netip.MustParseAddr("4.7.128.1"),
		V6:       false,
		Paris:    true,
		At:       36 * time.Hour,
		Complete: true,
		RTT:      83 * time.Millisecond,
		Hops: []Hop{
			{Addr: netip.MustParseAddr("4.0.0.1"), RTT: 1 * time.Millisecond},
			{}, // unresponsive
			{Addr: netip.MustParseAddr("193.200.0.5"), RTT: 40 * time.Millisecond},
			{Addr: netip.MustParseAddr("4.7.128.1"), RTT: 83 * time.Millisecond},
		},
	}
}

func samplePing() *Ping {
	return &Ping{
		SrcID: 1, DstID: 2,
		Src: netip.MustParseAddr("2400::1"),
		Dst: netip.MustParseAddr("2400:1::1"),
		V6:  true,
		At:  15 * time.Minute,
		RTT: 12 * time.Millisecond,
	}
}

func TestHopResponsive(t *testing.T) {
	if (Hop{}).Responsive() {
		t.Error("empty hop should be unresponsive")
	}
	if !(Hop{Addr: netip.MustParseAddr("1.2.3.4")}).Responsive() {
		t.Error("addressed hop should be responsive")
	}
}

func TestPairKeys(t *testing.T) {
	tr := sampleTraceroute()
	k := tr.Key()
	if k != (PairKey{3, 9, false}) {
		t.Errorf("Key = %+v", k)
	}
	if k.Reverse() != (PairKey{9, 3, false}) {
		t.Errorf("Reverse = %+v", k.Reverse())
	}
	if k.Undirected() != (PairKey{3, 9, false}) {
		t.Errorf("Undirected = %+v", k.Undirected())
	}
	if k.Reverse().Undirected() != k.Undirected() {
		t.Error("both directions should share an undirected key")
	}
	p := samplePing()
	if p.Key() != (PairKey{1, 2, true}) {
		t.Errorf("ping key = %+v", p.Key())
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	tr := sampleTraceroute()
	if err := w.WriteTraceroute(tr); err != nil {
		t.Fatal(err)
	}
	p := samplePing()
	if err := w.WritePing(p); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	if !sc.Scan() {
		t.Fatal("missing first line")
	}
	var tr2 Traceroute
	if err := json.Unmarshal(sc.Bytes(), &tr2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*tr, tr2) {
		t.Errorf("traceroute round trip mismatch:\n%+v\n%+v", *tr, tr2)
	}
	if !sc.Scan() {
		t.Fatal("missing second line")
	}
	var p2 Ping
	if err := json.Unmarshal(sc.Bytes(), &p2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*p, p2) {
		t.Errorf("ping round trip mismatch:\n%+v\n%+v", *p, p2)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	tr := sampleTraceroute()
	p := samplePing()
	if err := w.WriteTraceroute(tr); err != nil {
		t.Fatal(err)
	}
	if err := w.WritePing(p); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewBinaryReader(&buf)
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	tr2, ok := rec.(*Traceroute)
	if !ok {
		t.Fatalf("first record is %T", rec)
	}
	if !reflect.DeepEqual(tr, tr2) {
		t.Errorf("traceroute mismatch:\n%+v\n%+v", tr, tr2)
	}
	rec, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	p2, ok := rec.(*Ping)
	if !ok {
		t.Fatalf("second record is %T", rec)
	}
	if !reflect.DeepEqual(p, p2) {
		t.Errorf("ping mismatch:\n%+v\n%+v", p, p2)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestBinaryRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	var want []*Traceroute
	for i := 0; i < 200; i++ {
		tr := &Traceroute{
			SrcID: rng.Intn(1000), DstID: rng.Intn(1000),
			V6:       rng.Intn(2) == 1,
			Paris:    rng.Intn(2) == 1,
			Complete: rng.Intn(2) == 1,
			At:       time.Duration(rng.Int63n(int64(485 * 24 * time.Hour))),
			RTT:      time.Duration(rng.Int63n(int64(300 * time.Millisecond))),
		}
		if tr.V6 {
			tr.Src = randAddr6(rng)
			tr.Dst = randAddr6(rng)
		} else {
			tr.Src = randAddr4(rng)
			tr.Dst = randAddr4(rng)
		}
		n := rng.Intn(20)
		for h := 0; h < n; h++ {
			if rng.Float64() < 0.2 {
				tr.Hops = append(tr.Hops, Hop{})
				continue
			}
			a := randAddr4(rng)
			if tr.V6 {
				a = randAddr6(rng)
			}
			tr.Hops = append(tr.Hops, Hop{Addr: a, RTT: time.Duration(rng.Int63n(int64(200 * time.Millisecond)))})
		}
		if err := w.WriteTraceroute(tr); err != nil {
			t.Fatal(err)
		}
		want = append(want, tr)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewBinaryReader(&buf)
	for i, tr := range want {
		rec, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		got := rec.(*Traceroute)
		if !tracerouteEq(tr, got) {
			t.Fatalf("record %d mismatch:\n%+v\n%+v", i, tr, got)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("want EOF, got %v", err)
	}
}

// tracerouteEq compares records treating nil and empty hop slices equal.
func tracerouteEq(a, b *Traceroute) bool {
	if len(a.Hops) != len(b.Hops) {
		return false
	}
	for i := range a.Hops {
		if a.Hops[i] != b.Hops[i] {
			return false
		}
	}
	return a.SrcID == b.SrcID && a.DstID == b.DstID &&
		a.Src == b.Src && a.Dst == b.Dst &&
		a.V6 == b.V6 && a.Paris == b.Paris && a.Complete == b.Complete &&
		a.At == b.At && a.RTT == b.RTT
}

func TestBinaryReaderRejectsGarbage(t *testing.T) {
	r := NewBinaryReader(bytes.NewReader([]byte{0xFF, 0x00}))
	if _, err := r.Next(); err == nil {
		t.Error("expected error on bad magic")
	}
	// Truncated traceroute record.
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	if err := w.WriteTraceroute(sampleTraceroute()); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	r = NewBinaryReader(bytes.NewReader(trunc))
	if _, err := r.Next(); err == nil {
		t.Error("expected error on truncated record")
	}
}

func randAddr4(rng *rand.Rand) netip.Addr {
	var b [4]byte
	rng.Read(b[:])
	return netip.AddrFrom4(b)
}

func randAddr6(rng *rand.Rand) netip.Addr {
	var b [16]byte
	rng.Read(b[:])
	a := netip.AddrFrom16(b)
	if a.Is4In6() {
		b[0] = 0x20
		a = netip.AddrFrom16(b)
	}
	return a
}
