package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// JSONLReader reads records written by JSONLWriter, mirroring
// BinaryReader.Next(). Record kinds are distinguished structurally: a
// traceroute line always carries the "complete" and "hops" members (they
// are not omitempty), a ping line never does.
type JSONLReader struct {
	r    *bufio.Reader
	line int
}

// NewJSONLReader returns a JSON-lines record reader.
func NewJSONLReader(r io.Reader) *JSONLReader {
	return &JSONLReader{r: bufio.NewReader(r)}
}

// Next reads the next record, returning either *Traceroute or *Ping.
// It returns io.EOF at end of stream. Blank lines are skipped.
func (jr *JSONLReader) Next() (any, error) {
	for {
		raw, err := jr.r.ReadBytes('\n')
		line := bytes.TrimSpace(raw)
		if len(line) == 0 {
			if err != nil {
				if err == io.EOF {
					return nil, io.EOF
				}
				return nil, err
			}
			jr.line++
			continue
		}
		if err != nil && err != io.EOF {
			return nil, err
		}
		jr.line++
		var probe struct {
			Complete *json.RawMessage `json:"complete"`
			Hops     *json.RawMessage `json:"hops"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return nil, fmt.Errorf("trace: jsonl line %d: %w", jr.line, err)
		}
		if probe.Complete != nil || probe.Hops != nil {
			tr := new(Traceroute)
			if err := json.Unmarshal(line, tr); err != nil {
				return nil, fmt.Errorf("trace: jsonl line %d: %w", jr.line, err)
			}
			return tr, nil
		}
		p := new(Ping)
		if err := json.Unmarshal(line, p); err != nil {
			return nil, fmt.Errorf("trace: jsonl line %d: %w", jr.line, err)
		}
		return p, nil
	}
}
