package trace

import (
	"bytes"
	"io"
	"testing"
	"time"
)

// TestParseFrameHeader walks a multi-record stream frame by frame and
// checks every header against the full decoder.
func TestParseFrameHeader(t *testing.T) {
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	tr := sampleTraceroute()
	p := samplePing()
	tr6 := sampleTraceroute()
	tr6.V6 = true
	tr6.At = 99 * time.Hour
	tr6.Hops = nil
	for i := 0; i < 3; i++ {
		if err := w.WriteTraceroute(tr); err != nil {
			t.Fatal(err)
		}
		if err := w.WritePing(p); err != nil {
			t.Fatal(err)
		}
		if err := w.WriteTraceroute(tr6); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	data := buf.Bytes()
	r := NewBinaryReader(bytes.NewReader(data))
	frames := 0
	for {
		h, err := ParseFrameHeader(data)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("frame %d: %v", frames, err)
		}
		rec, err := r.Next()
		if err != nil {
			t.Fatalf("decode %d: %v", frames, err)
		}
		switch v := rec.(type) {
		case *Traceroute:
			if h.Kind != FrameTraceroute || h.Key != v.Key() || h.At != v.At {
				t.Fatalf("frame %d: header %+v vs traceroute %+v", frames, h, v)
			}
		case *Ping:
			if h.Kind != FramePing || h.Key != v.Key() || h.At != v.At {
				t.Fatalf("frame %d: header %+v vs ping %+v", frames, h, v)
			}
		}
		// The frame must decode in isolation to the same record.
		sub := NewBinaryReader(bytes.NewReader(data[:h.Len]))
		if _, err := sub.Next(); err != nil {
			t.Fatalf("frame %d: isolated decode: %v", frames, err)
		}
		if _, err := sub.Next(); err != io.EOF {
			t.Fatalf("frame %d: length %d did not consume exactly one record", frames, h.Len)
		}
		data = data[h.Len:]
		frames++
	}
	if frames != 9 {
		t.Fatalf("walked %d frames, want 9", frames)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("full decoder not at EOF after frame walk")
	}
}

func TestParseFrameHeaderTruncated(t *testing.T) {
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	if err := w.WriteTraceroute(sampleTraceroute()); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ParseFrameHeader(nil); err != io.EOF {
		t.Fatalf("empty slice: err = %v, want io.EOF", err)
	}
	for cut := 1; cut < len(data); cut++ {
		if _, err := ParseFrameHeader(data[:cut]); err == nil {
			t.Fatalf("truncation at %d of %d parsed without error", cut, len(data))
		}
	}
	if _, err := ParseFrameHeader([]byte{0x00, 0x01}); err == nil {
		t.Fatal("bad magic parsed without error")
	}
}

// TestJSONLReader round-trips both record kinds through the JSONL encoding.
func TestJSONLReader(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	tr := sampleTraceroute()
	p := samplePing()
	incomplete := sampleTraceroute()
	incomplete.Complete = false
	incomplete.Hops = nil
	if err := w.WriteTraceroute(tr); err != nil {
		t.Fatal(err)
	}
	if err := w.WritePing(p); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteTraceroute(incomplete); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewJSONLReader(bytes.NewReader(buf.Bytes()))
	first, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	got, ok := first.(*Traceroute)
	if !ok {
		t.Fatalf("first record is %T, want *Traceroute", first)
	}
	if got.Key() != tr.Key() || got.At != tr.At || len(got.Hops) != len(tr.Hops) || got.RTT != tr.RTT {
		t.Fatalf("traceroute round-trip mismatch: %+v vs %+v", got, tr)
	}
	second, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	gp, ok := second.(*Ping)
	if !ok {
		t.Fatalf("second record is %T, want *Ping", second)
	}
	if gp.Key() != p.Key() || gp.At != p.At || gp.RTT != p.RTT {
		t.Fatalf("ping round-trip mismatch: %+v vs %+v", gp, p)
	}
	third, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := third.(*Traceroute); !ok {
		t.Fatalf("incomplete traceroute decoded as %T", third)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("err = %v, want io.EOF", err)
	}
}

func TestJSONLReaderBlankLinesAndErrors(t *testing.T) {
	in := "\n" + `{"src_id":1,"dst_id":2,"src":"1.1.1.1","dst":"2.2.2.2","at":60000000000}` + "\n\n"
	r := NewJSONLReader(bytes.NewReader([]byte(in)))
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rec.(*Ping); !ok {
		t.Fatalf("record without hops/complete decoded as %T, want *Ping", rec)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("err = %v, want io.EOF", err)
	}

	bad := NewJSONLReader(bytes.NewReader([]byte("{not json}\n")))
	if _, err := bad.Next(); err == nil {
		t.Fatal("malformed line decoded without error")
	}
}
