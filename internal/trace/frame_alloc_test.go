package trace

import (
	"bytes"
	"io"
	"net/netip"
	"reflect"
	"testing"
	"time"
)

// frameCorpus encodes a mixed record stream and returns the framing bytes.
func frameCorpus(t testing.TB) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	for i := 0; i < 64; i++ {
		tr := &Traceroute{
			SrcID: i, DstID: i + 1,
			Src: netip.AddrFrom4([4]byte{10, 0, byte(i), 1}),
			Dst: netip.AddrFrom4([4]byte{10, 0, byte(i), 2}),
			At:  time.Duration(i) * time.Minute,
			RTT: time.Duration(i) * time.Millisecond,
		}
		if i%3 == 0 {
			tr.V6 = true
			tr.Src = netip.AddrFrom16([16]byte{0x20, 0x01, 15: byte(i)})
			tr.Dst = netip.AddrFrom16([16]byte{0x20, 0x01, 15: byte(i + 1)})
		}
		for h := 0; h < i%12; h++ {
			hop := Hop{RTT: time.Duration(h) * time.Millisecond}
			if h%4 != 0 {
				hop.Addr = netip.AddrFrom4([4]byte{192, 0, byte(i), byte(h)})
			}
			tr.Hops = append(tr.Hops, hop)
		}
		tr.Complete = len(tr.Hops) > 0
		if err := w.WriteTraceroute(tr); err != nil {
			t.Fatal(err)
		}
		p := &Ping{
			SrcID: i, DstID: i + 2,
			Src:  netip.AddrFrom4([4]byte{10, 1, byte(i), 1}),
			Dst:  netip.AddrFrom4([4]byte{10, 1, byte(i), 2}),
			At:   time.Duration(i) * time.Minute,
			RTT:  time.Duration(i) * time.Microsecond,
			Lost: i%7 == 0,
		}
		if err := w.WritePing(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDecodeFrameMatchesReader pins DecodeFrame to BinaryReader: walking
// the framing with DecodeFrame must yield exactly the records the stream
// reader produces, and the frame lengths must tile the buffer.
func TestDecodeFrameMatchesReader(t *testing.T) {
	data := frameCorpus(t)
	r := NewBinaryReader(bytes.NewReader(data))
	off := 0
	for {
		want, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got, n, err := DecodeFrame(data[off:])
		if err != nil {
			t.Fatalf("DecodeFrame at %d: %v", off, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("frame at %d: DecodeFrame %+v, reader %+v", off, got, want)
		}
		h, err := ParseFrameHeader(data[off:])
		if err != nil {
			t.Fatalf("ParseFrameHeader at %d: %v", off, err)
		}
		if h.Len != n {
			t.Fatalf("frame at %d: header length %d, decode length %d", off, h.Len, n)
		}
		off += n
	}
	if off != len(data) {
		t.Fatalf("frames tile %d of %d bytes", off, len(data))
	}
	if _, _, err := DecodeFrame(data[off:]); err != io.EOF {
		t.Fatalf("DecodeFrame at end = %v, want io.EOF", err)
	}
}

// TestParseFrameHeaderZeroAlloc pins the pushdown hot path: scanning the
// framing header-by-header (the work a filtered store read does for every
// rejected frame) must not allocate at all.
func TestParseFrameHeaderZeroAlloc(t *testing.T) {
	data := frameCorpus(t)
	allocs := testing.AllocsPerRun(100, func() {
		for off := 0; off < len(data); {
			h, err := ParseFrameHeader(data[off:])
			if err != nil {
				t.Fatal(err)
			}
			off += h.Len
		}
	})
	if allocs != 0 {
		t.Fatalf("header scan allocates %.1f times per walk, want 0", allocs)
	}
}

// BenchmarkFrameHeaderScan measures the per-frame cost of the pushdown
// header walk; -benchmem should report 0 B/op.
func BenchmarkFrameHeaderScan(b *testing.B) {
	data := frameCorpus(b)
	frames := 0
	for off := 0; off < len(data); {
		h, err := ParseFrameHeader(data[off:])
		if err != nil {
			b.Fatal(err)
		}
		frames++
		off += h.Len
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for off := 0; off < len(data); {
			h, err := ParseFrameHeader(data[off:])
			if err != nil {
				b.Fatal(err)
			}
			off += h.Len
		}
	}
	b.ReportMetric(float64(frames), "frames/scan")
}

// BenchmarkDecodeFrame measures in-place record decoding of a full
// payload, the store's unfiltered scan loop.
func BenchmarkDecodeFrame(b *testing.B) {
	data := frameCorpus(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for off := 0; off < len(data); {
			rec, n, err := DecodeFrame(data[off:])
			if err != nil {
				b.Fatal(err)
			}
			_ = rec
			off += n
		}
	}
}
