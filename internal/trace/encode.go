package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/netip"
	"time"
)

// JSONLWriter streams records as JSON lines.
type JSONLWriter struct {
	w   *bufio.Writer
	enc *json.Encoder
}

// NewJSONLWriter returns a writer emitting one JSON object per line.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	bw := bufio.NewWriter(w)
	return &JSONLWriter{w: bw, enc: json.NewEncoder(bw)}
}

// WriteTraceroute emits one traceroute record.
func (jw *JSONLWriter) WriteTraceroute(tr *Traceroute) error { return jw.enc.Encode(tr) }

// WritePing emits one ping record.
func (jw *JSONLWriter) WritePing(p *Ping) error { return jw.enc.Encode(p) }

// Flush flushes buffered output.
func (jw *JSONLWriter) Flush() error { return jw.w.Flush() }

// Binary framing: a magic byte per record kind, then varint fields and
// length-prefixed hop lists. Addresses are stored as a 1-byte length (4 or
// 16) plus raw bytes; an unresponsive hop stores length 0.
const (
	magicTraceroute byte = 0xA1
	magicPing       byte = 0xA2
)

// BinaryWriter streams records in the compact binary framing.
type BinaryWriter struct {
	w *bufio.Writer
}

// NewBinaryWriter returns a binary record writer.
func NewBinaryWriter(w io.Writer) *BinaryWriter {
	return &BinaryWriter{w: bufio.NewWriter(w)}
}

// Flush flushes buffered output.
func (bw *BinaryWriter) Flush() error { return bw.w.Flush() }

func writeAddr(w *bufio.Writer, a netip.Addr) error {
	if !a.IsValid() {
		return w.WriteByte(0)
	}
	b := a.AsSlice()
	if err := w.WriteByte(byte(len(b))); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

func readAddr(r *bufio.Reader) (netip.Addr, error) {
	n, err := r.ReadByte()
	if err != nil {
		return netip.Addr{}, err
	}
	switch n {
	case 0:
		return netip.Addr{}, nil
	case 4, 16:
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return netip.Addr{}, err
		}
		a, ok := netip.AddrFromSlice(buf)
		if !ok {
			return netip.Addr{}, fmt.Errorf("trace: bad address bytes")
		}
		return a, nil
	default:
		return netip.Addr{}, fmt.Errorf("trace: bad address length %d", n)
	}
}

func writeUvarint(w *bufio.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func writeVarint(w *bufio.Writer, v int64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

// WriteTraceroute emits one traceroute record.
func (bw *BinaryWriter) WriteTraceroute(tr *Traceroute) error {
	w := bw.w
	if err := w.WriteByte(magicTraceroute); err != nil {
		return err
	}
	flags := byte(0)
	if tr.V6 {
		flags |= 1
	}
	if tr.Paris {
		flags |= 2
	}
	if tr.Complete {
		flags |= 4
	}
	if err := w.WriteByte(flags); err != nil {
		return err
	}
	for _, v := range []int64{int64(tr.SrcID), int64(tr.DstID), int64(tr.At), int64(tr.RTT)} {
		if err := writeVarint(w, v); err != nil {
			return err
		}
	}
	if err := writeAddr(w, tr.Src); err != nil {
		return err
	}
	if err := writeAddr(w, tr.Dst); err != nil {
		return err
	}
	if err := writeUvarint(w, uint64(len(tr.Hops))); err != nil {
		return err
	}
	for _, h := range tr.Hops {
		if err := writeAddr(w, h.Addr); err != nil {
			return err
		}
		if err := writeVarint(w, int64(h.RTT)); err != nil {
			return err
		}
	}
	return nil
}

// WritePing emits one ping record.
func (bw *BinaryWriter) WritePing(p *Ping) error {
	w := bw.w
	if err := w.WriteByte(magicPing); err != nil {
		return err
	}
	flags := byte(0)
	if p.V6 {
		flags |= 1
	}
	if p.Lost {
		flags |= 2
	}
	if err := w.WriteByte(flags); err != nil {
		return err
	}
	for _, v := range []int64{int64(p.SrcID), int64(p.DstID), int64(p.At), int64(p.RTT)} {
		if err := writeVarint(w, v); err != nil {
			return err
		}
	}
	if err := writeAddr(w, p.Src); err != nil {
		return err
	}
	return writeAddr(w, p.Dst)
}

// BinaryReader reads records written by BinaryWriter.
type BinaryReader struct {
	r *bufio.Reader
}

// NewBinaryReader returns a binary record reader.
func NewBinaryReader(r io.Reader) *BinaryReader {
	return &BinaryReader{r: bufio.NewReader(r)}
}

// Next reads the next record, returning either *Traceroute or *Ping.
// It returns io.EOF at end of stream.
func (br *BinaryReader) Next() (any, error) {
	magic, err := br.r.ReadByte()
	if err != nil {
		return nil, err
	}
	switch magic {
	case magicTraceroute:
		return br.readTraceroute()
	case magicPing:
		return br.readPing()
	default:
		return nil, fmt.Errorf("trace: bad record magic 0x%02x", magic)
	}
}

func (br *BinaryReader) readTraceroute() (*Traceroute, error) {
	r := br.r
	flags, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	tr := &Traceroute{
		V6:       flags&1 != 0,
		Paris:    flags&2 != 0,
		Complete: flags&4 != 0,
	}
	vals := make([]int64, 4)
	for i := range vals {
		if vals[i], err = binary.ReadVarint(r); err != nil {
			return nil, err
		}
	}
	tr.SrcID, tr.DstID = int(vals[0]), int(vals[1])
	tr.At, tr.RTT = time.Duration(vals[2]), time.Duration(vals[3])
	if tr.Src, err = readAddr(r); err != nil {
		return nil, err
	}
	if tr.Dst, err = readAddr(r); err != nil {
		return nil, err
	}
	nHops, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if nHops > 1<<16 {
		return nil, fmt.Errorf("trace: implausible hop count %d", nHops)
	}
	tr.Hops = make([]Hop, nHops)
	for i := range tr.Hops {
		if tr.Hops[i].Addr, err = readAddr(r); err != nil {
			return nil, err
		}
		rtt, err := binary.ReadVarint(r)
		if err != nil {
			return nil, err
		}
		tr.Hops[i].RTT = time.Duration(rtt)
	}
	return tr, nil
}

func (br *BinaryReader) readPing() (*Ping, error) {
	r := br.r
	flags, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	p := &Ping{
		V6:   flags&1 != 0,
		Lost: flags&2 != 0,
	}
	vals := make([]int64, 4)
	for i := range vals {
		if vals[i], err = binary.ReadVarint(r); err != nil {
			return nil, err
		}
	}
	p.SrcID, p.DstID = int(vals[0]), int(vals[1])
	p.At, p.RTT = time.Duration(vals[2]), time.Duration(vals[3])
	if p.Src, err = readAddr(r); err != nil {
		return nil, err
	}
	if p.Dst, err = readAddr(r); err != nil {
		return nil, err
	}
	return p, nil
}
