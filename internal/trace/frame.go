package trace

import (
	"encoding/binary"
	"fmt"
	"io"
	"net/netip"
	"time"
)

// Frame-level access to the binary framing. A "frame" is the encoded bytes
// of one record. ParseFrameHeader recovers the routing fields every store
// and merge operation needs — kind, pair key, timestamp, total length —
// without decoding addresses or hop lists, so shard merges and pushdown
// filters move frames as opaque byte ranges and never re-decode records.

// Frame kinds, equal to the record magic bytes of the framing.
const (
	FrameTraceroute = magicTraceroute
	FramePing       = magicPing
)

// FrameHeader summarizes one binary frame.
type FrameHeader struct {
	// Kind is FrameTraceroute or FramePing.
	Kind byte
	// Key is the record's timeline key.
	Key PairKey
	// At is the record's virtual timestamp.
	At time.Duration
	// Len is the total encoded length of the frame in bytes.
	Len int
}

// frameCursor walks a byte slice without allocating.
type frameCursor struct {
	data []byte
	off  int
}

func (c *frameCursor) byte() (byte, error) {
	if c.off >= len(c.data) {
		return 0, io.ErrUnexpectedEOF
	}
	b := c.data[c.off]
	c.off++
	return b, nil
}

func (c *frameCursor) varint() (int64, error) {
	v, n := binary.Varint(c.data[c.off:])
	if n <= 0 {
		if n == 0 {
			return 0, io.ErrUnexpectedEOF
		}
		return 0, fmt.Errorf("trace: varint overflow at offset %d", c.off)
	}
	c.off += n
	return v, nil
}

func (c *frameCursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.data[c.off:])
	if n <= 0 {
		if n == 0 {
			return 0, io.ErrUnexpectedEOF
		}
		return 0, fmt.Errorf("trace: uvarint overflow at offset %d", c.off)
	}
	c.off += n
	return v, nil
}

// skipAddr skips one length-prefixed address.
func (c *frameCursor) skipAddr() error {
	n, err := c.byte()
	if err != nil {
		return err
	}
	switch n {
	case 0:
	case 4, 16:
		if c.off+int(n) > len(c.data) {
			return io.ErrUnexpectedEOF
		}
		c.off += int(n)
	default:
		return fmt.Errorf("trace: bad address length %d", n)
	}
	return nil
}

// addr decodes one length-prefixed address in place (no intermediate
// buffer: netip.Addr is a value).
func (c *frameCursor) addr() (netip.Addr, error) {
	n, err := c.byte()
	if err != nil {
		return netip.Addr{}, err
	}
	switch n {
	case 0:
		return netip.Addr{}, nil
	case 4, 16:
		if c.off+int(n) > len(c.data) {
			return netip.Addr{}, io.ErrUnexpectedEOF
		}
		a, ok := netip.AddrFromSlice(c.data[c.off : c.off+int(n)])
		if !ok {
			return netip.Addr{}, fmt.Errorf("trace: bad address bytes")
		}
		c.off += int(n)
		return a, nil
	default:
		return netip.Addr{}, fmt.Errorf("trace: bad address length %d", n)
	}
}

// DecodeFrame decodes the record frame starting at data[0] straight from
// the byte slice, returning the record (*Traceroute or *Ping) and the
// frame length. It is the in-memory counterpart of BinaryReader.Next: a
// caller holding a whole payload in RAM walks it frame by frame without
// the per-frame reader and buffer allocations a stream reader needs —
// only the record itself (and a traceroute's hop list) is allocated. It
// returns io.EOF on an empty slice.
func DecodeFrame(data []byte) (any, int, error) {
	if len(data) == 0 {
		return nil, 0, io.EOF
	}
	c := frameCursor{data: data}
	magic, _ := c.byte()
	flags, err := c.byte()
	if err != nil {
		return nil, 0, err
	}
	var vals [4]int64 // src, dst, at, rtt
	decodeCommon := func() error {
		for i := range vals {
			if vals[i], err = c.varint(); err != nil {
				return err
			}
		}
		return nil
	}
	switch magic {
	case magicTraceroute:
		tr := &Traceroute{
			V6:       flags&1 != 0,
			Paris:    flags&2 != 0,
			Complete: flags&4 != 0,
		}
		if err := decodeCommon(); err != nil {
			return nil, 0, err
		}
		tr.SrcID, tr.DstID = int(vals[0]), int(vals[1])
		tr.At, tr.RTT = time.Duration(vals[2]), time.Duration(vals[3])
		if tr.Src, err = c.addr(); err != nil {
			return nil, 0, err
		}
		if tr.Dst, err = c.addr(); err != nil {
			return nil, 0, err
		}
		nHops, err := c.uvarint()
		if err != nil {
			return nil, 0, err
		}
		if nHops > 1<<16 {
			return nil, 0, fmt.Errorf("trace: implausible hop count %d", nHops)
		}
		tr.Hops = make([]Hop, nHops)
		for i := range tr.Hops {
			if tr.Hops[i].Addr, err = c.addr(); err != nil {
				return nil, 0, err
			}
			rtt, err := c.varint()
			if err != nil {
				return nil, 0, err
			}
			tr.Hops[i].RTT = time.Duration(rtt)
		}
		return tr, c.off, nil
	case magicPing:
		p := &Ping{
			V6:   flags&1 != 0,
			Lost: flags&2 != 0,
		}
		if err := decodeCommon(); err != nil {
			return nil, 0, err
		}
		p.SrcID, p.DstID = int(vals[0]), int(vals[1])
		p.At, p.RTT = time.Duration(vals[2]), time.Duration(vals[3])
		if p.Src, err = c.addr(); err != nil {
			return nil, 0, err
		}
		if p.Dst, err = c.addr(); err != nil {
			return nil, 0, err
		}
		return p, c.off, nil
	default:
		return nil, 0, fmt.Errorf("trace: bad record magic 0x%02x", magic)
	}
}

// ParseFrameHeader parses the frame starting at data[0]. It returns io.EOF
// on an empty slice and io.ErrUnexpectedEOF on a truncated frame, so a
// caller can walk a buffer with
//
//	for {
//		h, err := ParseFrameHeader(buf)
//		if err == io.EOF { break }
//		... use buf[:h.Len] ...
//		buf = buf[h.Len:]
//	}
func ParseFrameHeader(data []byte) (FrameHeader, error) {
	if len(data) == 0 {
		return FrameHeader{}, io.EOF
	}
	c := frameCursor{data: data}
	magic, _ := c.byte()
	if magic != magicTraceroute && magic != magicPing {
		return FrameHeader{}, fmt.Errorf("trace: bad record magic 0x%02x", magic)
	}
	flags, err := c.byte()
	if err != nil {
		return FrameHeader{}, err
	}
	var h FrameHeader
	h.Kind = magic
	h.Key.V6 = flags&1 != 0
	var vals [4]int64 // src, dst, at, rtt
	for i := range vals {
		if vals[i], err = c.varint(); err != nil {
			return FrameHeader{}, err
		}
	}
	h.Key.SrcID, h.Key.DstID = int(vals[0]), int(vals[1])
	h.At = time.Duration(vals[2])
	if err := c.skipAddr(); err != nil { // src
		return FrameHeader{}, err
	}
	if err := c.skipAddr(); err != nil { // dst
		return FrameHeader{}, err
	}
	if magic == magicTraceroute {
		nHops, err := c.uvarint()
		if err != nil {
			return FrameHeader{}, err
		}
		if nHops > 1<<16 {
			return FrameHeader{}, fmt.Errorf("trace: implausible hop count %d", nHops)
		}
		for i := uint64(0); i < nHops; i++ {
			if err := c.skipAddr(); err != nil {
				return FrameHeader{}, err
			}
			if _, err := c.varint(); err != nil {
				return FrameHeader{}, err
			}
		}
	}
	h.Len = c.off
	return h, nil
}
