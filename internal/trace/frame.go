package trace

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// Frame-level access to the binary framing. A "frame" is the encoded bytes
// of one record. ParseFrameHeader recovers the routing fields every store
// and merge operation needs — kind, pair key, timestamp, total length —
// without decoding addresses or hop lists, so shard merges and pushdown
// filters move frames as opaque byte ranges and never re-decode records.

// Frame kinds, equal to the record magic bytes of the framing.
const (
	FrameTraceroute = magicTraceroute
	FramePing       = magicPing
)

// FrameHeader summarizes one binary frame.
type FrameHeader struct {
	// Kind is FrameTraceroute or FramePing.
	Kind byte
	// Key is the record's timeline key.
	Key PairKey
	// At is the record's virtual timestamp.
	At time.Duration
	// Len is the total encoded length of the frame in bytes.
	Len int
}

// frameCursor walks a byte slice without allocating.
type frameCursor struct {
	data []byte
	off  int
}

func (c *frameCursor) byte() (byte, error) {
	if c.off >= len(c.data) {
		return 0, io.ErrUnexpectedEOF
	}
	b := c.data[c.off]
	c.off++
	return b, nil
}

func (c *frameCursor) varint() (int64, error) {
	v, n := binary.Varint(c.data[c.off:])
	if n <= 0 {
		if n == 0 {
			return 0, io.ErrUnexpectedEOF
		}
		return 0, fmt.Errorf("trace: varint overflow at offset %d", c.off)
	}
	c.off += n
	return v, nil
}

func (c *frameCursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.data[c.off:])
	if n <= 0 {
		if n == 0 {
			return 0, io.ErrUnexpectedEOF
		}
		return 0, fmt.Errorf("trace: uvarint overflow at offset %d", c.off)
	}
	c.off += n
	return v, nil
}

// skipAddr skips one length-prefixed address.
func (c *frameCursor) skipAddr() error {
	n, err := c.byte()
	if err != nil {
		return err
	}
	switch n {
	case 0:
	case 4, 16:
		if c.off+int(n) > len(c.data) {
			return io.ErrUnexpectedEOF
		}
		c.off += int(n)
	default:
		return fmt.Errorf("trace: bad address length %d", n)
	}
	return nil
}

// ParseFrameHeader parses the frame starting at data[0]. It returns io.EOF
// on an empty slice and io.ErrUnexpectedEOF on a truncated frame, so a
// caller can walk a buffer with
//
//	for {
//		h, err := ParseFrameHeader(buf)
//		if err == io.EOF { break }
//		... use buf[:h.Len] ...
//		buf = buf[h.Len:]
//	}
func ParseFrameHeader(data []byte) (FrameHeader, error) {
	if len(data) == 0 {
		return FrameHeader{}, io.EOF
	}
	c := frameCursor{data: data}
	magic, _ := c.byte()
	if magic != magicTraceroute && magic != magicPing {
		return FrameHeader{}, fmt.Errorf("trace: bad record magic 0x%02x", magic)
	}
	flags, err := c.byte()
	if err != nil {
		return FrameHeader{}, err
	}
	var h FrameHeader
	h.Kind = magic
	h.Key.V6 = flags&1 != 0
	var vals [4]int64 // src, dst, at, rtt
	for i := range vals {
		if vals[i], err = c.varint(); err != nil {
			return FrameHeader{}, err
		}
	}
	h.Key.SrcID, h.Key.DstID = int(vals[0]), int(vals[1])
	h.At = time.Duration(vals[2])
	if err := c.skipAddr(); err != nil { // src
		return FrameHeader{}, err
	}
	if err := c.skipAddr(); err != nil { // dst
		return FrameHeader{}, err
	}
	if magic == magicTraceroute {
		nHops, err := c.uvarint()
		if err != nil {
			return FrameHeader{}, err
		}
		if nHops > 1<<16 {
			return FrameHeader{}, fmt.Errorf("trace: implausible hop count %d", nHops)
		}
		for i := uint64(0); i < nHops; i++ {
			if err := c.skipAddr(); err != nil {
				return FrameHeader{}, err
			}
			if _, err := c.varint(); err != nil {
				return FrameHeader{}, err
			}
		}
	}
	h.Len = c.off
	return h, nil
}
