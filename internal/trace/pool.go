package trace

import "sync"

// Record pooling. A multi-day campaign produces one Traceroute (with its
// Hops slice) or Ping per measurement; when the consumer only streams
// records to a sink, those allocations dominate the heap profile. The
// probers allocate records through the pooled constructors below, and the
// campaign engine recycles each record after a streaming consumer is done
// with it. Consumers that retain records simply never recycle, and the
// pool degenerates to plain allocation.

var traceroutePool = sync.Pool{New: func() any { return new(Traceroute) }}

var pingPool = sync.Pool{New: func() any { return new(Ping) }}

// NewPooledTraceroute returns a zeroed Traceroute, reusing a recycled
// record (and its Hops capacity) when one is available.
func NewPooledTraceroute() *Traceroute {
	tr := traceroutePool.Get().(*Traceroute)
	hops := tr.Hops[:0]
	*tr = Traceroute{Hops: hops}
	return tr
}

// RecycleTraceroute returns a record to the pool. The caller must not use
// the record (or its Hops) afterwards. Nil is a no-op.
func RecycleTraceroute(tr *Traceroute) {
	if tr != nil {
		traceroutePool.Put(tr)
	}
}

// NewPooledPing returns a zeroed Ping, reusing a recycled record when one
// is available.
func NewPooledPing() *Ping {
	p := pingPool.Get().(*Ping)
	*p = Ping{}
	return p
}

// RecyclePing returns a record to the pool. The caller must not use the
// record afterwards. Nil is a no-op.
func RecyclePing(p *Ping) {
	if p != nil {
		pingPool.Put(p)
	}
}
