package trace

import (
	"bytes"
	"io"
	"testing"
)

// FuzzBinaryReader asserts the decoder never panics or allocates absurdly
// on arbitrary input, and that valid records round-trip through a
// re-encode.
func FuzzBinaryReader(f *testing.F) {
	// Seed with a valid stream.
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	_ = w.WriteTraceroute(sampleTraceroute())
	_ = w.WritePing(samplePing())
	_ = w.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xA1})
	f.Add([]byte{0xA2, 0xFF, 0xFF})
	f.Add([]byte{0xA1, 0x00, 0x00, 0x00, 0x00, 0x00, 0x04, 1, 2, 3, 4, 0x00, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewBinaryReader(bytes.NewReader(data))
		for i := 0; i < 64; i++ {
			rec, err := r.Next()
			if err != nil {
				return // io.EOF or a parse error: both fine
			}
			// Any successfully decoded record must re-encode and decode to
			// an equivalent record.
			var out bytes.Buffer
			w := NewBinaryWriter(&out)
			switch v := rec.(type) {
			case *Traceroute:
				if err := w.WriteTraceroute(v); err != nil {
					t.Fatalf("re-encode traceroute: %v", err)
				}
			case *Ping:
				if err := w.WritePing(v); err != nil {
					t.Fatalf("re-encode ping: %v", err)
				}
			default:
				t.Fatalf("unknown record type %T", rec)
			}
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
			r2 := NewBinaryReader(bytes.NewReader(out.Bytes()))
			if _, err := r2.Next(); err != nil && err != io.EOF {
				t.Fatalf("decode of re-encoded record failed: %v", err)
			}
		}
	})
}
