// Package faults generates and serves deterministic fault schedules for
// the simulated measurement platform: cluster outages (maintenance
// windows), measurement-agent crashes, link brownouts that inflate loss
// and latency, and per-router ICMP rate limiters that shed probe replies
// under ambient load.
//
// A Plan is generated once from a seed and the platform's shape and is
// immutable afterwards; every query is a pure function of its coordinates
// (target, virtual time, salt), so faulted campaigns keep the repo-wide
// determinism contract — identical runs produce identical datasets at any
// worker count, and a resumed run re-derives the exact same fault view
// from the seed.
//
// Failure persistence: draws that model an ongoing condition (a filtering
// destination, a saturated rate limiter) are quantized to a persistence
// window (Config.PersistWindow), so a retry seconds after a failure sees
// the same verdict while the next campaign round — minutes to hours later
// — redraws. Transient draws (DstFlaky, brownout loss) use the exact
// timestamp and therefore redraw on every retry attempt; this split is
// what makes retries recover transient losses without erasing the
// persistent failure floor.
package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/itopo"
	"repro/internal/obs/flight"
)

// Kind classifies a scheduled fault event.
type Kind uint8

// Fault kinds.
const (
	// KindOutage takes a whole cluster offline: it neither sources
	// measurements nor answers as a destination for the window.
	KindOutage Kind = iota
	// KindAgentCrash kills a cluster's measurement agent: scheduled
	// measurements from it never run (booked as degraded), but the
	// cluster stays reachable as a destination.
	KindAgentCrash
	// KindBrownout inflates a set of links with extra one-way delay and
	// loss for the window.
	KindBrownout
	// KindRateLimit saturates a router's ICMP rate limiter: a fraction
	// of its TTL-exceeded / echo replies is shed for the window.
	KindRateLimit
)

// String names the kind for telemetry and the flight record.
func (k Kind) String() string {
	switch k {
	case KindOutage:
		return "outage"
	case KindAgentCrash:
		return "agent_crash"
	case KindBrownout:
		return "brownout"
	case KindRateLimit:
		return "rate_limit"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one scheduled fault window. Which target fields are meaningful
// depends on Kind.
type Event struct {
	Kind   Kind
	Start  time.Duration // virtual time the window opens
	Length time.Duration
	// Cluster is the affected cluster for KindOutage and KindAgentCrash.
	Cluster int
	// Router is the governed router for KindRateLimit.
	Router itopo.RouterID
	// Links are the inflated links for KindBrownout.
	Links []itopo.LinkID
	// Drop is the reply fraction shed during a KindRateLimit window.
	Drop float64
	// Delay and Loss are the per-link inflation during a KindBrownout.
	Delay time.Duration
	Loss  float64
}

type span struct{ start, end time.Duration }

func (s span) contains(at time.Duration) bool { return s.start <= at && at < s.end }

type limitSpan struct {
	span
	drop float64
}

type linkSpan struct {
	span
	delay time.Duration
	loss  float64
}

// Plan is an immutable fault schedule. All queries are safe for
// concurrent use.
type Plan struct {
	seed             int64
	persistWindow    time.Duration
	dstFailPersist   float64
	dstFailTransient float64

	events  []Event
	outages map[int][]span
	crashes map[int][]span
	limits  map[itopo.RouterID][]limitSpan
	links   map[itopo.LinkID][]linkSpan
}

// Hash salts: one namespace per draw family, so e.g. the destination
// filter and the limiter never correlate.
const (
	saltDstPersist uint64 = iota + 1
	saltDstTransient
	saltLimiter
	saltLimitSel
	saltGenOutage
	saltGenCrash
	saltGenBrownout
	saltGenLimit
)

// ClusterDown reports whether the cluster is inside an outage window: it
// is unreachable as a destination and silent as a source.
func (p *Plan) ClusterDown(id int, at time.Duration) bool {
	return findSpan(p.outages[id], at)
}

// AgentDown reports whether the cluster's measurement agent is crashed:
// its scheduled measurements never run, but the cluster still answers as
// a destination.
func (p *Plan) AgentDown(id int, at time.Duration) bool {
	return findSpan(p.crashes[id], at)
}

// LinkDelay returns the extra one-way delay browning out the link at at
// (overlapping brownouts stack).
func (p *Plan) LinkDelay(l itopo.LinkID, at time.Duration) time.Duration {
	var d time.Duration
	for _, s := range p.links[l] {
		if s.contains(at) {
			d += s.delay
		}
	}
	return d
}

// LinkLoss returns the extra loss probability browning out the link at at
// (overlapping brownouts stack).
func (p *Plan) LinkLoss(l itopo.LinkID, at time.Duration) float64 {
	var loss float64
	for _, s := range p.links[l] {
		if s.contains(at) {
			loss += s.loss
		}
	}
	return loss
}

// RouterLimited reports whether r is governed by an ICMP rate limiter
// and, if so, whether this probe's reply is shed at at. A governed
// router's limiter replaces its static response probability entirely:
// outside a saturation window the bucket has headroom and every reply
// goes out; inside one, the window's drop fraction is shed. The verdict
// for one salt is stable within a persistence window, so a retry during
// the same saturation episode fails the same way while the next round
// redraws.
func (p *Plan) RouterLimited(r itopo.RouterID, at time.Duration, salt uint64) (limited, drop bool) {
	spans, ok := p.limits[r]
	if !ok {
		return false, false
	}
	i := sort.Search(len(spans), func(i int) bool { return spans[i].end > at })
	if i >= len(spans) || !spans[i].contains(at) {
		return true, false
	}
	w := uint64(at / p.persistWindow)
	return true, u01(hash(uint64(p.seed), saltLimiter, uint64(uint32(r)), salt, w)) < spans[i].drop
}

// DstFiltered reports whether the destination persistently ignores this
// pair's probes around at: the draw is quantized to the persistence
// window, so retries cannot recover it but later rounds redraw. This is
// the fault-plan replacement for the prober's static DstFailProb coin.
func (p *Plan) DstFiltered(srcID, dstID int, v6 bool, at time.Duration) bool {
	if p.dstFailPersist <= 0 {
		return false
	}
	w := uint64(at / p.persistWindow)
	return u01(hash(uint64(p.seed), saltDstPersist, pairSalt(srcID, dstID, v6), w)) < p.dstFailPersist
}

// DstFlaky reports a transient destination failure at exactly at: a
// retry at a different timestamp redraws, so retries recover these.
func (p *Plan) DstFlaky(srcID, dstID int, v6 bool, at time.Duration) bool {
	if p.dstFailTransient <= 0 {
		return false
	}
	return u01(hash(uint64(p.seed), saltDstTransient, pairSalt(srcID, dstID, v6), uint64(at))) < p.dstFailTransient
}

// Events returns the full schedule, sorted by start time. The slice is
// shared; callers must not mutate it.
func (p *Plan) Events() []Event { return p.events }

// PersistWindow returns the quantum for persistent failure draws.
func (p *Plan) PersistWindow() time.Duration { return p.persistWindow }

// Emit writes one flight event per scheduled fault window, stamped at
// the window's virtual start, so the run's record carries the complete
// fault schedule next to its effects. The events are announcements —
// they describe the future without advancing the recorder's snapshot
// clock, which the campaign's own progress drives.
func (p *Plan) Emit(rec *flight.Recorder) {
	for _, ev := range p.events {
		id := int64(ev.Cluster)
		switch ev.Kind {
		case KindRateLimit:
			id = int64(ev.Router)
		case KindBrownout:
			if len(ev.Links) > 0 {
				id = int64(ev.Links[0])
			}
		}
		rec.Announce(flight.PhFault, ev.Start, flight.Attrs{ID: id, N: int64(ev.Length), S: ev.Kind.String()})
	}
}

// String summarizes the schedule for run logs.
func (p *Plan) String() string {
	counts := map[Kind]int{}
	for _, ev := range p.events {
		counts[ev.Kind]++
	}
	return fmt.Sprintf("%d cluster outages, %d agent crashes, %d brownouts, %d limiter saturations (%d limited routers)",
		counts[KindOutage], counts[KindAgentCrash], counts[KindBrownout], counts[KindRateLimit], len(p.limits))
}

// findSpan reports whether at falls inside any of the sorted,
// non-overlapping spans.
func findSpan(spans []span, at time.Duration) bool {
	i := sort.Search(len(spans), func(i int) bool { return spans[i].end > at })
	return i < len(spans) && spans[i].contains(at)
}

// pairSalt folds a pair's coordinates into one draw namespace.
func pairSalt(srcID, dstID int, v6 bool) uint64 {
	s := uint64(uint32(srcID))<<33 | uint64(uint32(dstID))<<1
	if v6 {
		s |= 1
	}
	return s
}

// hash is the repo-standard FNV-1a mix over 64-bit words.
func hash(vals ...uint64) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range vals {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	return h
}

// u01 maps a hash onto [0,1) with 53 bits of precision.
func u01(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// rngFor derives the deterministic generator PRNG for one target.
func rngFor(seed int64, salt, id uint64) *rand.Rand {
	return rand.New(rand.NewSource(int64(hash(uint64(seed), salt, id))))
}
