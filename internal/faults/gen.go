package faults

import (
	"errors"
	"math/rand"
	"sort"
	"time"

	"repro/internal/itopo"
)

// Config shapes a generated fault schedule. MTBF fields are per-target
// mean times between window starts; Mean fields are mean window lengths.
// Both draw exponentially, so windows arrive as a Poisson process.
type Config struct {
	Seed     int64
	Duration time.Duration

	// Platform shape: targets are drawn from [0, N) index spaces, which
	// match cdn cluster IDs, itopo router IDs, and itopo link IDs.
	Clusters int
	Routers  int
	Links    int

	// Cluster outages (maintenance windows): the cluster disappears from
	// the platform — unreachable as a destination, silent as a source.
	OutageMTBF time.Duration
	OutageMean time.Duration

	// Measurement-agent crashes: the agent process dies and its scheduled
	// measurements never run, but the cluster stays reachable.
	CrashMTBF time.Duration
	CrashMean time.Duration

	// Link brownouts arrive platform-wide; each picks BrownoutLinks
	// distinct links and inflates them by BrownoutDelay one-way plus
	// BrownoutLoss drop probability.
	BrownoutMTBF  time.Duration
	BrownoutMean  time.Duration
	BrownoutLinks int
	BrownoutDelay time.Duration
	BrownoutLoss  float64

	// ICMP rate limiters: LimitedFrac of routers are governed by a token
	// bucket refilling at LimitRate replies/sec with LimitBurst depth.
	// During a saturation window, ambient demand (LimitDemand replies/sec,
	// jittered per window) exceeds the refill rate and the excess is shed;
	// see dropRate for the fluid approximation.
	LimitedFrac float64
	LimitRate   float64
	LimitBurst  float64
	LimitDemand float64
	LimitMTBF   time.Duration
	LimitMean   time.Duration

	// DstFailPersist is the per-(pair, persistence-window) probability
	// that a destination ignores probes — the schedule's replacement for
	// the prober's static DstFailProb. DstFailTransient is the
	// per-attempt probability of a one-off destination failure, which
	// retries can recover.
	DstFailPersist   float64
	DstFailTransient float64

	// PersistWindow quantizes persistent draws (default 10 minutes):
	// retries inside one window see the same verdict, later rounds
	// redraw.
	PersistWindow time.Duration
}

// Standard returns the reference fault plan: tuned so that, with the
// default campaign schedule plus retry and quarantine enabled, traceroute
// completion lands near the paper's ~75% (asserted by the campaign
// completion-rate test).
func Standard(seed int64, duration time.Duration, clusters, routers, links int) Config {
	return Config{
		Seed:     seed,
		Duration: duration,
		Clusters: clusters,
		Routers:  routers,
		Links:    links,

		OutageMTBF: 5 * 24 * time.Hour,
		OutageMean: 3 * time.Hour,

		CrashMTBF: 4 * 24 * time.Hour,
		CrashMean: 45 * time.Minute,

		BrownoutMTBF:  6 * time.Hour,
		BrownoutMean:  90 * time.Minute,
		BrownoutLinks: 6,
		BrownoutDelay: 2 * time.Millisecond,
		BrownoutLoss:  0.05,

		LimitedFrac: 0.3,
		LimitRate:   100,
		LimitBurst:  500,
		LimitDemand: 220,
		LimitMTBF:   18 * time.Hour,
		LimitMean:   2 * time.Hour,

		DstFailPersist:   0.24,
		DstFailTransient: 0.06,
		PersistWindow:    10 * time.Minute,
	}
}

// Heavy returns a stress plan: everything fails roughly twice as often.
func Heavy(seed int64, duration time.Duration, clusters, routers, links int) Config {
	c := Standard(seed, duration, clusters, routers, links)
	c.OutageMTBF /= 2
	c.CrashMTBF /= 2
	c.BrownoutMTBF /= 2
	c.BrownoutLinks *= 2
	c.LimitedFrac = 0.45
	c.LimitDemand = 400
	c.DstFailPersist = 0.34
	c.DstFailTransient = 0.10
	return c
}

// Generate draws the full fault schedule from the config. The result is
// immutable and all its queries are pure, so one Plan serves any number
// of concurrent probers.
func Generate(cfg Config) (*Plan, error) {
	if cfg.Duration <= 0 {
		return nil, errors.New("faults: Duration must be positive")
	}
	if cfg.Clusters < 0 || cfg.Routers < 0 || cfg.Links < 0 {
		return nil, errors.New("faults: platform sizes must be non-negative")
	}
	if cfg.PersistWindow <= 0 {
		cfg.PersistWindow = 10 * time.Minute
	}
	p := &Plan{
		seed:             cfg.Seed,
		persistWindow:    cfg.PersistWindow,
		dstFailPersist:   cfg.DstFailPersist,
		dstFailTransient: cfg.DstFailTransient,
		outages:          make(map[int][]span),
		crashes:          make(map[int][]span),
		limits:           make(map[itopo.RouterID][]limitSpan),
		links:            make(map[itopo.LinkID][]linkSpan),
	}

	for id := 0; id < cfg.Clusters; id++ {
		if spans := drawSpans(rngFor(cfg.Seed, saltGenOutage, uint64(id)), cfg.Duration, cfg.OutageMTBF, cfg.OutageMean); len(spans) > 0 {
			p.outages[id] = spans
			for _, s := range spans {
				p.events = append(p.events, Event{Kind: KindOutage, Start: s.start, Length: s.end - s.start, Cluster: id})
			}
		}
		if spans := drawSpans(rngFor(cfg.Seed, saltGenCrash, uint64(id)), cfg.Duration, cfg.CrashMTBF, cfg.CrashMean); len(spans) > 0 {
			p.crashes[id] = spans
			for _, s := range spans {
				p.events = append(p.events, Event{Kind: KindAgentCrash, Start: s.start, Length: s.end - s.start, Cluster: id})
			}
		}
	}

	if cfg.LimitedFrac > 0 {
		for r := 0; r < cfg.Routers; r++ {
			if u01(hash(uint64(cfg.Seed), saltLimitSel, uint64(r))) >= cfg.LimitedFrac {
				continue
			}
			rng := rngFor(cfg.Seed, saltGenLimit, uint64(r))
			var list []limitSpan
			for _, s := range drawSpans(rng, cfg.Duration, cfg.LimitMTBF, cfg.LimitMean) {
				demand := cfg.LimitDemand * (0.75 + 0.5*rng.Float64())
				drop := dropRate(cfg.LimitRate, cfg.LimitBurst, demand, s.end-s.start)
				if drop <= 0 {
					continue
				}
				list = append(list, limitSpan{s, drop})
				p.events = append(p.events, Event{Kind: KindRateLimit, Start: s.start, Length: s.end - s.start,
					Router: itopo.RouterID(r), Drop: drop})
			}
			// The router is governed even when no window produced drops:
			// its static flakiness is still replaced by the (idle) limiter.
			p.limits[itopo.RouterID(r)] = list
		}
	}

	if cfg.Links > 0 && cfg.BrownoutLinks > 0 {
		rng := rngFor(cfg.Seed, saltGenBrownout, 0)
		for _, s := range drawSpans(rng, cfg.Duration, cfg.BrownoutMTBF, cfg.BrownoutMean) {
			k := cfg.BrownoutLinks
			if k > cfg.Links {
				k = cfg.Links
			}
			seen := make(map[itopo.LinkID]bool, k)
			links := make([]itopo.LinkID, 0, k)
			for len(links) < k {
				l := itopo.LinkID(rng.Intn(cfg.Links))
				if seen[l] {
					continue
				}
				seen[l] = true
				links = append(links, l)
			}
			sort.Slice(links, func(i, j int) bool { return links[i] < links[j] })
			for _, l := range links {
				p.links[l] = append(p.links[l], linkSpan{s, cfg.BrownoutDelay, cfg.BrownoutLoss})
			}
			p.events = append(p.events, Event{Kind: KindBrownout, Start: s.start, Length: s.end - s.start,
				Links: links, Delay: cfg.BrownoutDelay, Loss: cfg.BrownoutLoss})
		}
	}

	sort.SliceStable(p.events, func(i, j int) bool { return p.events[i].Start < p.events[j].Start })
	return p, nil
}

// drawSpans draws a Poisson window schedule over [0, duration): idle gaps
// are exponential with mean mtbf, window lengths exponential with mean
// length (floored at one minute, clipped to the horizon).
func drawSpans(rng *rand.Rand, duration, mtbf, mean time.Duration) []span {
	if mtbf <= 0 || mean <= 0 {
		return nil
	}
	var out []span
	t := time.Duration(rng.ExpFloat64() * float64(mtbf))
	for t < duration {
		l := time.Duration(rng.ExpFloat64() * float64(mean))
		if l < time.Minute {
			l = time.Minute
		}
		end := t + l
		if end > duration {
			end = duration
		}
		out = append(out, span{t, end})
		t = end + time.Duration(rng.ExpFloat64()*float64(mtbf))
	}
	return out
}

// dropRate is the fluid token-bucket approximation: over a saturation
// window of length w where ambient demand exceeds the refill rate, the
// limiter sheds the excess fraction 1 - rate/demand; the bucket's burst
// depth forgives the start of the window, which folds in as an effective
// rate bonus of burst/w.
func dropRate(rate, burst, demand float64, w time.Duration) float64 {
	if demand <= 0 || w <= 0 {
		return 0
	}
	eff := rate + burst/w.Seconds()
	d := 1 - eff/demand
	if d < 0 {
		d = 0
	}
	if d > 0.95 {
		d = 0.95
	}
	return d
}
