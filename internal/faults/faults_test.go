package faults

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/itopo"
	"repro/internal/obs/flight"
)

func standardPlan(t *testing.T, seed int64, days int) *Plan {
	t.Helper()
	d := time.Duration(days) * 24 * time.Hour
	p, err := Generate(Standard(seed, d, 150, 700, 2000))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestGenerateDeterministic: the schedule is a pure function of the
// config.
func TestGenerateDeterministic(t *testing.T) {
	a := standardPlan(t, 7, 10)
	b := standardPlan(t, 7, 10)
	if len(a.events) != len(b.events) {
		t.Fatalf("event counts differ: %d vs %d", len(a.events), len(b.events))
	}
	for i := range a.events {
		if fmt.Sprintf("%+v", a.events[i]) != fmt.Sprintf("%+v", b.events[i]) {
			t.Fatalf("event %d differs: %+v vs %+v", i, a.events[i], b.events[i])
		}
	}
	c := standardPlan(t, 8, 10)
	if len(a.events) == len(c.events) && fmt.Sprintf("%+v", a.events[0]) == fmt.Sprintf("%+v", c.events[0]) {
		t.Fatal("different seeds produced an identical schedule start")
	}
}

// TestStandardPlanFiresEveryKind: even a short CI-scale plan schedules at
// least one window of every event type.
func TestStandardPlanFiresEveryKind(t *testing.T) {
	p := standardPlan(t, 1, 4)
	got := map[Kind]int{}
	for _, ev := range p.Events() {
		got[ev.Kind]++
	}
	for _, k := range []Kind{KindOutage, KindAgentCrash, KindBrownout, KindRateLimit} {
		if got[k] == 0 {
			t.Errorf("no %v events in a 4-day standard plan", k)
		}
	}
}

// TestWindowsWithinHorizon: no window starts past or extends beyond the
// configured duration.
func TestWindowsWithinHorizon(t *testing.T) {
	d := 6 * 24 * time.Hour
	p := standardPlan(t, 3, 6)
	for _, ev := range p.Events() {
		if ev.Start < 0 || ev.Start >= d {
			t.Fatalf("event starts outside horizon: %+v", ev)
		}
		if ev.Start+ev.Length > d {
			t.Fatalf("event extends past horizon: %+v", ev)
		}
		if ev.Kind == KindRateLimit && (ev.Drop <= 0 || ev.Drop > 0.95) {
			t.Fatalf("drop rate out of range: %+v", ev)
		}
	}
}

// TestOutageQueryMatchesSchedule: ClusterDown answers exactly the
// scheduled windows.
func TestOutageQueryMatchesSchedule(t *testing.T) {
	p := standardPlan(t, 5, 20)
	checked := 0
	for _, ev := range p.Events() {
		if ev.Kind != KindOutage {
			continue
		}
		mid := ev.Start + ev.Length/2
		if !p.ClusterDown(ev.Cluster, mid) {
			t.Fatalf("cluster %d not down mid-window at %v", ev.Cluster, mid)
		}
		if p.ClusterDown(ev.Cluster, ev.Start-time.Nanosecond) && insideAnyOutage(p, ev.Cluster, ev.Start-time.Nanosecond) == false {
			t.Fatalf("cluster %d down just before its window", ev.Cluster)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no outage windows to check")
	}
	if p.ClusterDown(10_000, time.Hour) {
		t.Fatal("unknown cluster reported down")
	}
}

func insideAnyOutage(p *Plan, id int, at time.Duration) bool {
	for _, s := range p.outages[id] {
		if s.contains(at) {
			return true
		}
	}
	return false
}

// TestPersistenceWindowSemantics: persistent draws are stable within a
// window and independent across pairs; transient draws vary with the
// exact timestamp.
func TestPersistenceWindowSemantics(t *testing.T) {
	p := standardPlan(t, 11, 10)
	at := 5 * time.Hour
	for pair := 0; pair < 50; pair++ {
		a := p.DstFiltered(pair, pair+1, false, at)
		b := p.DstFiltered(pair, pair+1, false, at+30*time.Second)
		if a != b {
			t.Fatalf("pair %d: persistent verdict flipped within one window", pair)
		}
	}
	// Transient draws at distinct instants must not all agree with each
	// other for every pair (they are per-attempt coins).
	varied := false
	for pair := 0; pair < 200 && !varied; pair++ {
		a := p.DstFlaky(pair, pair+1, false, at)
		b := p.DstFlaky(pair, pair+1, false, at+30*time.Second)
		varied = a != b
	}
	if !varied {
		t.Fatal("transient draws never varied across 200 pairs")
	}
	// Persistent rate roughly matches the configured probability.
	hits := 0
	const n = 4000
	for pair := 0; pair < n; pair++ {
		if p.DstFiltered(pair, pair+13, false, at) {
			hits++
		}
	}
	rate := float64(hits) / n
	if rate < 0.20 || rate > 0.28 {
		t.Fatalf("persistent failure rate %.3f far from configured 0.24", rate)
	}
}

// TestRouterLimited: governed routers are stable, ungoverned ones are
// never limited, and drops only happen inside saturation windows.
func TestRouterLimited(t *testing.T) {
	p := standardPlan(t, 13, 10)
	governed := 0
	for r := 0; r < 700; r++ {
		limited, _ := p.RouterLimited(itopo.RouterID(r), time.Hour, 1)
		if limited {
			governed++
		}
	}
	if frac := float64(governed) / 700; frac < 0.2 || frac > 0.4 {
		t.Fatalf("governed fraction %.2f far from configured 0.3", frac)
	}
	drops, inWindow := 0, 0
	for _, ev := range p.Events() {
		if ev.Kind != KindRateLimit {
			continue
		}
		mid := ev.Start + ev.Length/2
		for salt := uint64(0); salt < 20; salt++ {
			limited, drop := p.RouterLimited(ev.Router, mid, salt)
			if !limited {
				t.Fatalf("router %d not limited inside its own window", ev.Router)
			}
			inWindow++
			if drop {
				drops++
			}
			// Same salt, same persistence window: verdict is stable.
			if mid/p.PersistWindow() == (mid+time.Second)/p.PersistWindow() {
				_, again := p.RouterLimited(ev.Router, mid+time.Second, salt)
				if drop != again {
					t.Fatalf("limiter verdict flipped within one persistence window")
				}
			}
		}
	}
	if inWindow == 0 {
		t.Fatal("no saturation windows")
	}
	if drops == 0 {
		t.Fatal("saturated limiters never dropped a probe")
	}
}

// TestBrownoutInflation: link delay/loss are nonzero exactly during
// brownout windows.
func TestBrownoutInflation(t *testing.T) {
	p := standardPlan(t, 17, 10)
	found := false
	for _, ev := range p.Events() {
		if ev.Kind != KindBrownout {
			continue
		}
		found = true
		mid := ev.Start + ev.Length/2
		for _, l := range ev.Links {
			if p.LinkDelay(l, mid) < ev.Delay {
				t.Fatalf("link %d missing brownout delay at %v", l, mid)
			}
			if p.LinkLoss(l, mid) < ev.Loss {
				t.Fatalf("link %d missing brownout loss at %v", l, mid)
			}
		}
	}
	if !found {
		t.Fatal("no brownout events")
	}
	if p.LinkDelay(itopo.LinkID(10_000_000), time.Hour) != 0 {
		t.Fatal("unknown link has delay")
	}
}

// TestEmitWritesSchedule: every scheduled window lands in the flight
// record as a fault event.
func TestEmitWritesSchedule(t *testing.T) {
	p := standardPlan(t, 19, 2)
	path := filepath.Join(t.TempDir(), "run.trace")
	rec, err := flight.Create(path, flight.Options{Tool: "faults-test"})
	if err != nil {
		t.Fatal(err)
	}
	p.Emit(rec)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Count(string(data), `"`+flight.PhFault+`"`)
	if got < len(p.Events()) {
		t.Fatalf("flight record has %d fault events, schedule has %d", got, len(p.Events()))
	}
}

// TestHeavyIsHeavier: the stress preset schedules more failure than the
// standard one.
func TestHeavyIsHeavier(t *testing.T) {
	d := 10 * 24 * time.Hour
	std, err := Generate(Standard(1, d, 150, 700, 2000))
	if err != nil {
		t.Fatal(err)
	}
	hvy, err := Generate(Heavy(1, d, 150, 700, 2000))
	if err != nil {
		t.Fatal(err)
	}
	if len(hvy.Events()) <= len(std.Events()) {
		t.Fatalf("heavy plan (%d events) not heavier than standard (%d)", len(hvy.Events()), len(std.Events()))
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{}); err == nil {
		t.Fatal("zero duration accepted")
	}
	if _, err := Generate(Config{Duration: time.Hour, Clusters: -1}); err == nil {
		t.Fatal("negative platform size accepted")
	}
}
