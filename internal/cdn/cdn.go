// Package cdn deploys the synthetic content delivery platform onto the
// router-level network: server clusters at colocation centers, IXPs,
// datacenters and inside third-party (eyeball) networks, mirroring the
// paper's description of a platform with clusters in >2000 locations and a
// country mix led by the USA (~39% of measurement servers), then Australia,
// Germany, India, Japan and Canada.
//
// One dual-stack measurement server per cluster performs all probing, as on
// the real platform.
package cdn

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"time"

	"repro/internal/geo"
	"repro/internal/ipam"
	"repro/internal/itopo"
)

// Cluster is one server cluster; its measurement server addresses are the
// vantage points of every campaign.
type Cluster struct {
	ID     int
	City   int // geo.Cities index
	HostAS ipam.ASN
	// Attach is the host AS's router the cluster connects through.
	Attach itopo.RouterID

	Net4, Net6       netip.Prefix
	Server4, Server6 netip.Addr // Server6 invalid for v4-only hosts
}

// DualStack reports whether the cluster's measurement server has IPv6.
func (c *Cluster) DualStack() bool { return c.Server6.IsValid() }

// Country returns the cluster's country code.
func (c *Cluster) Country() string { return geo.Cities[c.City].Country }

// Continent returns the cluster's continent.
func (c *Cluster) Continent() geo.Continent { return geo.Cities[c.City].Continent }

// Platform is the deployed CDN.
type Platform struct {
	Clusters []*Cluster

	byAddr map[netip.Addr]*Cluster

	// liveness answers outage queries; nil means always alive.
	liveness Liveness
}

// Liveness reports whether a cluster is inside a scheduled outage window
// at a virtual time. *faults.Plan satisfies it; cdn stays decoupled from
// the fault subsystem by depending only on this view.
type Liveness interface {
	ClusterDown(id int, at time.Duration) bool
}

// SetLiveness attaches an outage view to the platform (nil detaches it,
// restoring the always-alive default).
func (p *Platform) SetLiveness(l Liveness) { p.liveness = l }

// Alive reports whether the cluster is serving at the virtual time: true
// unless the attached liveness view places it inside an outage window.
func (p *Platform) Alive(id int, at time.Duration) bool {
	return p.liveness == nil || !p.liveness.ClusterDown(id, at)
}

// AliveClusters returns the clusters serving at the virtual time (the
// full set when no liveness view is attached).
func (p *Platform) AliveClusters(at time.Duration) []*Cluster {
	if p.liveness == nil {
		return p.Clusters
	}
	out := make([]*Cluster, 0, len(p.Clusters))
	for _, c := range p.Clusters {
		if !p.liveness.ClusterDown(c.ID, at) {
			out = append(out, c)
		}
	}
	return out
}

// Config parameterizes deployment.
type Config struct {
	Seed        int64
	NumClusters int

	// OwnFrac is the fraction of clusters deployed inside the CDN's own AS
	// (at its PoPs); the rest are hosted inside third-party networks.
	OwnFrac float64

	// CountryWeights biases cluster placement; countries absent from the
	// map share the remaining probability uniformly. The default mirrors
	// the paper's distribution.
	CountryWeights map[string]float64
}

// DefaultConfig returns the paper-shaped deployment parameters.
func DefaultConfig(seed int64, clusters int) Config {
	return Config{
		Seed:        seed,
		NumClusters: clusters,
		OwnFrac:     0.45,
		CountryWeights: map[string]float64{
			"US": 0.39,
			"AU": 0.045, "DE": 0.04, "IN": 0.04, "JP": 0.035, "CA": 0.03,
		},
	}
}

// Deploy places clusters on the network.
func Deploy(net *itopo.Network, cfg Config) (*Platform, error) {
	if cfg.NumClusters < 2 {
		return nil, fmt.Errorf("cdn: need at least 2 clusters, got %d", cfg.NumClusters)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	topo := net.Topo
	cdnAS, ok := topo.AS(topo.CDNASN)
	if !ok {
		return nil, fmt.Errorf("cdn: topology has no CDN AS")
	}

	// Precompute, per city, the candidate host ASes (those with a router
	// there), excluding the CDN itself.
	hostsByCity := make(map[int][]ipam.ASN)
	for _, as := range topo.ASes {
		if as.ASN == topo.CDNASN {
			continue
		}
		for _, city := range as.Footprint {
			hostsByCity[city] = append(hostsByCity[city], as.ASN)
		}
	}
	for city := range hostsByCity {
		hs := hostsByCity[city]
		sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
	}

	picker, err := newCityPicker(cfg.CountryWeights, rng)
	if err != nil {
		return nil, err
	}

	p := &Platform{byAddr: make(map[netip.Addr]*Cluster)}
	for i := 0; i < cfg.NumClusters; i++ {
		var host ipam.ASN
		var city int
		if rng.Float64() < cfg.OwnFrac {
			host = topo.CDNASN
			city = cdnAS.Footprint[rng.Intn(len(cdnAS.Footprint))]
		} else {
			city = picker.pick()
			cands := hostsByCity[city]
			if len(cands) == 0 {
				host = topo.CDNASN
			} else {
				host = cands[rng.Intn(len(cands))]
			}
		}
		c, err := newCluster(net, i, host, city)
		if err != nil {
			return nil, err
		}
		p.Clusters = append(p.Clusters, c)
		p.byAddr[c.Server4] = c
		if c.Server6.IsValid() {
			p.byAddr[c.Server6] = c
		}
	}
	return p, nil
}

func newCluster(net *itopo.Network, id int, host ipam.ASN, city int) (*Cluster, error) {
	net4, net6, attach, err := net.AllocCluster(host, city)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		ID:     id,
		City:   city,
		HostAS: host,
		Attach: attach,
		Net4:   net4,
		Net6:   net6,
	}
	if c.Server4, err = ipam.HostSeq(net4, 1); err != nil {
		return nil, err
	}
	if net6.IsValid() {
		if c.Server6, err = ipam.HostSeq(net6, 1); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// ByAddr returns the cluster owning a measurement-server address.
func (p *Platform) ByAddr(a netip.Addr) (*Cluster, bool) {
	c, ok := p.byAddr[a]
	return c, ok
}

// DualStackClusters returns the clusters whose servers speak both
// protocols — the population the paper's long-term mesh is drawn from.
func (p *Platform) DualStackClusters() []*Cluster {
	var out []*Cluster
	for _, c := range p.Clusters {
		if c.DualStack() {
			out = append(out, c)
		}
	}
	return out
}

// CountryMix returns the fraction of clusters per country code.
func (p *Platform) CountryMix() map[string]float64 {
	mix := make(map[string]float64)
	for _, c := range p.Clusters {
		mix[c.Country()]++
	}
	for k := range mix {
		mix[k] /= float64(len(p.Clusters))
	}
	return mix
}

// cityPicker samples cities with country-level weighting.
type cityPicker struct {
	rng      *rand.Rand
	weighted []int // city indices for weighted countries
	weights  []float64
	restSum  float64
	rest     []int // all other cities, sampled uniformly
}

func newCityPicker(countryWeights map[string]float64, rng *rand.Rand) (*cityPicker, error) {
	p := &cityPicker{rng: rng}
	total := 0.0
	countries := make([]string, 0, len(countryWeights))
	for c, w := range countryWeights {
		if w < 0 {
			return nil, fmt.Errorf("cdn: negative weight for %s", c)
		}
		total += w
		countries = append(countries, c)
	}
	if total > 1 {
		return nil, fmt.Errorf("cdn: country weights sum to %.2f > 1", total)
	}
	sort.Strings(countries)
	weightedCities := map[int]bool{}
	for _, country := range countries {
		cs := geo.CitiesIn(country)
		if len(cs) == 0 {
			return nil, fmt.Errorf("cdn: no cities for weighted country %s", country)
		}
		var idxs []int
		for i, c := range geo.Cities {
			if c.Country == country {
				idxs = append(idxs, i)
				weightedCities[i] = true
			}
		}
		per := countryWeights[country] / float64(len(idxs))
		for _, i := range idxs {
			p.weighted = append(p.weighted, i)
			p.weights = append(p.weights, per)
		}
	}
	for i := range geo.Cities {
		if !weightedCities[i] {
			p.rest = append(p.rest, i)
		}
	}
	p.restSum = 1 - total
	return p, nil
}

func (p *cityPicker) pick() int {
	u := p.rng.Float64()
	for i, w := range p.weights {
		if u < w {
			return p.weighted[i]
		}
		u -= w
	}
	if len(p.rest) == 0 {
		return p.weighted[len(p.weighted)-1]
	}
	return p.rest[p.rng.Intn(len(p.rest))]
}
