package cdn

import (
	"testing"

	"repro/internal/astopo"
	"repro/internal/itopo"
)

func deployTest(t *testing.T, seed int64, clusters int) (*itopo.Network, *Platform) {
	t.Helper()
	topo, err := astopo.Generate(astopo.DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	net, err := itopo.Build(topo, itopo.DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	p, err := Deploy(net, DefaultConfig(seed, clusters))
	if err != nil {
		t.Fatal(err)
	}
	return net, p
}

func TestDeployBasics(t *testing.T) {
	net, p := deployTest(t, 1, 200)
	if len(p.Clusters) != 200 {
		t.Fatalf("clusters = %d, want 200", len(p.Clusters))
	}
	for _, c := range p.Clusters {
		if !c.Server4.IsValid() {
			t.Errorf("cluster %d has no v4 server", c.ID)
		}
		if !c.Net4.Contains(c.Server4) {
			t.Errorf("cluster %d server outside its subnet", c.ID)
		}
		// Cluster address must map to the host AS in the BGP view.
		origin, ok := net.BGP.Lookup(c.Server4)
		if !ok || origin != c.HostAS {
			t.Errorf("cluster %d: server maps to %v, %v; want %v", c.ID, origin, ok, c.HostAS)
		}
		// Attach router is operated by the host AS.
		if net.Routers[c.Attach].Owner != c.HostAS {
			t.Errorf("cluster %d attach router owned by %v, want %v",
				c.ID, net.Routers[c.Attach].Owner, c.HostAS)
		}
		if c.DualStack() {
			if origin6, ok := net.BGP.Lookup(c.Server6); !ok || origin6 != c.HostAS {
				t.Errorf("cluster %d: v6 server maps to %v, %v", c.ID, origin6, ok)
			}
		}
	}
}

func TestDeployCountryMix(t *testing.T) {
	_, p := deployTest(t, 2, 3000)
	mix := p.CountryMix()
	// Hosted clusters (55%) follow country weights; own clusters follow
	// the CDN footprint. The US share must clearly dominate.
	if mix["US"] < 0.20 {
		t.Errorf("US share = %.2f, want >= 0.20", mix["US"])
	}
	// Broad coverage.
	if len(mix) < 30 {
		t.Errorf("platform spans %d countries, want >= 30", len(mix))
	}
}

func TestDeployDualStackMajority(t *testing.T) {
	_, p := deployTest(t, 3, 500)
	ds := p.DualStackClusters()
	if len(ds) < len(p.Clusters)/3 {
		t.Errorf("dual-stack clusters = %d of %d, want a sizable fraction", len(ds), len(p.Clusters))
	}
	if len(ds) == len(p.Clusters) {
		t.Log("note: all clusters dual-stack (possible but unusual)")
	}
	for _, c := range ds {
		if !c.Server6.IsValid() || !c.Net6.Contains(c.Server6) {
			t.Errorf("dual-stack cluster %d has bad v6 server", c.ID)
		}
	}
}

func TestByAddr(t *testing.T) {
	_, p := deployTest(t, 4, 100)
	for _, c := range p.Clusters {
		got, ok := p.ByAddr(c.Server4)
		if !ok || got != c {
			t.Errorf("ByAddr(v4) failed for cluster %d", c.ID)
		}
		if c.DualStack() {
			got, ok = p.ByAddr(c.Server6)
			if !ok || got != c {
				t.Errorf("ByAddr(v6) failed for cluster %d", c.ID)
			}
		}
	}
	if _, ok := p.ByAddr(p.Clusters[0].Net4.Addr()); ok {
		t.Error("network address should not resolve to a cluster")
	}
}

func TestDeployDeterministic(t *testing.T) {
	_, a := deployTest(t, 7, 150)
	_, b := deployTest(t, 7, 150)
	for i := range a.Clusters {
		ca, cb := a.Clusters[i], b.Clusters[i]
		if ca.City != cb.City || ca.HostAS != cb.HostAS || ca.Server4 != cb.Server4 {
			t.Fatalf("cluster %d differs between identical deployments", i)
		}
	}
}

func TestDeployErrors(t *testing.T) {
	topo, err := astopo.Generate(astopo.DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	net, err := itopo.Build(topo, itopo.DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Deploy(net, DefaultConfig(5, 1)); err == nil {
		t.Error("single cluster should error")
	}
	cfg := DefaultConfig(5, 10)
	cfg.CountryWeights = map[string]float64{"US": 2}
	if _, err := Deploy(net, cfg); err == nil {
		t.Error("weights > 1 should error")
	}
	cfg = DefaultConfig(5, 10)
	cfg.CountryWeights = map[string]float64{"XX": 0.5}
	if _, err := Deploy(net, cfg); err == nil {
		t.Error("unknown weighted country should error")
	}
	cfg = DefaultConfig(5, 10)
	cfg.CountryWeights = map[string]float64{"US": -0.1}
	if _, err := Deploy(net, cfg); err == nil {
		t.Error("negative weight should error")
	}
}

func TestClusterMetadata(t *testing.T) {
	_, p := deployTest(t, 8, 50)
	for _, c := range p.Clusters {
		if c.Country() == "" {
			t.Errorf("cluster %d has no country", c.ID)
		}
		_ = c.Continent()
	}
}
