package experiments

import (
	"strings"

	"repro/internal/core/dualstack"
	"repro/internal/core/stats"
	"repro/internal/plot"
	"repro/internal/report"
)

// dualstackHeadlines extracts the §6 headline numbers from the long-term
// diff collector.
func dualstackHeadlines(lt *longTermData) (map[string]float64, []float64) {
	diffs := lt.diffs.All
	v6Saves, v4Saves := dualstack.TailFractions(diffs, 50)
	return map[string]float64{
		"similar_frac":       dualstack.SimilarFraction(diffs, 10),
		"v6_saves_50ms_frac": v6Saves,
		"v4_saves_50ms_frac": v4Saves,
	}, diffs
}

// Figure10a reproduces Figure 10a: the ECDF of RTTv4 − RTTv6 over all
// paired traceroutes and over the same-AS-path subset.
func Figure10a(e *Env) (*Result, error) {
	lt, err := e.LongTerm()
	if err != nil {
		return nil, err
	}
	hl, diffs := dualstackHeadlines(lt)
	same := lt.diffs.SamePath

	var txt strings.Builder
	report.ECDFQuantiles(&txt, "Figure 10a: RTTv4 − RTTv6 (ms)",
		[]report.Series{
			{Name: "All", Values: diffs},
			{Name: "Same AS-paths", Values: same},
		},
		[]float64{0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99})

	svgs := map[string]string{"fig10a": plot.ECDFChart(
		"Figure 10a: RTTv4 − RTTv6 (ms)", "RTTv4 − RTTv6 (ms)",
		[]plot.Series{
			{Name: "All", Values: diffs},
			{Name: "Same AS-paths", Values: same},
		}, false)}
	m := map[string]float64{
		"pairs":                   float64(len(diffs)),
		"similar_frac":            hl["similar_frac"],
		"v6_saves_50ms_frac":      hl["v6_saves_50ms_frac"],
		"v4_saves_50ms_frac":      hl["v4_saves_50ms_frac"],
		"samepath_similar_frac":   dualstack.SimilarFraction(same, 10),
		"samepath_frac_of_paired": frac(len(same), len(diffs)),
	}
	report.KeyValues(&txt, "Figure 10a summary", m)
	return &Result{
		ID:       "F10a",
		Title:    "Figure 10a: IPv4 vs IPv6 RTT differences",
		Text:     txt.String(),
		SVGs:     svgs,
		Measured: m,
		Paper: map[string]float64{
			// ~50% of paired traceroutes within ±10 ms; tails at 50 ms:
			// 3.7% favor IPv6, 8.5% favor IPv4; the same-AS-path subset is
			// much more similar (~70%).
			"similar_frac":          0.50,
			"v6_saves_50ms_frac":    0.037,
			"v4_saves_50ms_frac":    0.085,
			"samepath_similar_frac": 0.70,
		},
	}, nil
}

// Figure10b reproduces Figure 10b: RTT/cRTT inflation ECDFs, overall and
// for the US↔US and transcontinental subsets.
func Figure10b(e *Env) (*Result, error) {
	lt, err := e.LongTerm()
	if err != nil {
		return nil, err
	}
	set := lt.inflations.Set(e.CityOf)

	var txt strings.Builder
	report.ECDFQuantiles(&txt, "Figure 10b: inflation (RTT / cRTT)",
		[]report.Series{
			{Name: "IPv4", Values: set.V4All},
			{Name: "IPv6", Values: set.V6All},
			{Name: "IPv4 US-US", Values: set.V4US},
			{Name: "IPv6 US-US", Values: set.V6US},
			{Name: "IPv4 Trans", Values: set.V4Trans},
			{Name: "IPv6 Trans", Values: set.V6Trans},
		},
		[]float64{0.1, 0.25, 0.5, 0.75, 0.9})

	svgs := map[string]string{"fig10b": plot.ECDFChart(
		"Figure 10b: inflation (RTT / cRTT)", "inflation",
		[]plot.Series{
			{Name: "IPv4", Values: set.V4All},
			{Name: "IPv6", Values: set.V6All},
			{Name: "IPv4 US-US", Values: set.V4US},
			{Name: "IPv4 Trans", Values: set.V4Trans},
		}, true)}
	m := map[string]float64{
		"v4_inflation_median": stats.Median(set.V4All),
		"v6_inflation_median": stats.Median(set.V6All),
		"v4_inflation_p90":    stats.Percentile(set.V4All, 90),
		"v6_inflation_p90":    stats.Percentile(set.V6All, 90),
		"v4_us_median":        stats.Median(set.V4US),
		"v4_trans_median":     stats.Median(set.V4Trans),
	}
	report.KeyValues(&txt, "Figure 10b summary", m)
	return &Result{
		ID:       "F10b",
		Title:    "Figure 10b: cRTT inflation",
		Text:     txt.String(),
		SVGs:     svgs,
		Measured: m,
		Paper: map[string]float64{
			"v4_inflation_median": 3.01,
			"v6_inflation_median": 3.1,
			"v4_inflation_p90":    5.3,
			"v6_inflation_p90":    5.9,
			// Transcontinental inflation is significantly lower than US-US.
		},
	}, nil
}
