package experiments

import (
	"strings"
	"testing"
)

// sharedEnv builds one test-scale environment reused across experiment
// tests (campaigns are cached inside the env).
var testEnv *Env

func env(t *testing.T) *Env {
	t.Helper()
	if testEnv != nil {
		return testEnv
	}
	e, err := NewEnv(TestScale(101))
	if err != nil {
		t.Fatal(err)
	}
	testEnv = e
	return e
}

func runExp(t *testing.T, id string) *Result {
	t.Helper()
	exp, ok := ByID(id)
	if !ok {
		t.Fatalf("unknown experiment %q", id)
	}
	r, err := exp.Run(env(t))
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if r.ID != id {
		t.Errorf("result id = %q, want %q", r.ID, id)
	}
	if r.Text == "" {
		t.Errorf("%s produced no text", id)
	}
	if len(r.Measured) == 0 {
		t.Errorf("%s produced no measured metrics", id)
	}
	if s := r.Summary(); !strings.Contains(s, id) {
		t.Errorf("%s summary missing id:\n%s", id, s)
	}
	return r
}

func TestAllRegistered(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("incomplete experiment: %+v", e)
		}
		if ids[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{"T1", "F1", "F2", "F3", "F4", "F5", "F6", "F7",
		"F8", "F9", "F10a", "F10b", "S51", "S53", "HL",
		"AB-paris", "AB-psd", "AB-impute", "AB-crit"} {
		if !ids[want] {
			t.Errorf("experiment %s missing from registry", want)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID should miss unknown ids")
	}
}

func TestTable1Shape(t *testing.T) {
	r := runExp(t, "T1")
	c4 := r.Measured["v4_complete_frac"]
	i4 := r.Measured["v4_missingIP_frac"]
	a4 := r.Measured["v4_missingAS_frac"]
	if c4 < 0.4 || c4 > 0.95 {
		t.Errorf("v4 complete frac = %.3f, want paper-shaped ~0.70", c4)
	}
	if i4 < 0.05 || i4 > 0.5 {
		t.Errorf("v4 missing-IP frac = %.3f, want ~0.28", i4)
	}
	if a4 > i4 {
		t.Errorf("missing-AS (%.3f) should be rarer than missing-IP (%.3f)", a4, i4)
	}
	if sum := c4 + i4 + a4; sum < 0.999 || sum > 1.001 {
		t.Errorf("fractions sum to %.4f", sum)
	}
}

func TestFigure2Shape(t *testing.T) {
	r := runExp(t, "F2")
	// Most pairs fluctuate among a small set of AS paths.
	if p80 := r.Measured["v4_paths_p80"]; p80 < 1 || p80 > 12 {
		t.Errorf("v4 paths p80 = %v, want small (paper: 5)", p80)
	}
	// Path pairs at least as numerous as single-direction paths is not
	// guaranteed, but both must exist.
	if r.Measured["v4_pathpairs_p80"] < 1 {
		t.Error("no path pairs measured")
	}
	single := r.Measured["v4_single_path_frac"]
	if single < 0.0 || single > 0.9 {
		t.Errorf("single-path frac = %v", single)
	}
}

func TestFigure3Shape(t *testing.T) {
	r := runExp(t, "F3")
	// Most timelines have one dominant route.
	if dom := r.Measured["v4_dominant_frac"]; dom < 0.5 {
		t.Errorf("dominant-route frac = %.3f, want most timelines", dom)
	}
	if r.Measured["v4_changes_p90_485d"] <= 0 {
		t.Error("no routing changes measured")
	}
}

func TestFigure4And5Shape(t *testing.T) {
	r4 := runExp(t, "F4")
	r5 := runExp(t, "F5")
	// The lifetime/delta association must be negative (long-lived paths
	// are near-optimal) — the heat maps' headline pattern.
	// At test scale the sample is small and noisy; the strong negative
	// association is asserted at default scale (see bench_test.go / the
	// report run). Here we only reject a clearly positive association.
	if c := r4.Measured["v4_lifetime_delta_corr"]; c >= 0.5 {
		t.Errorf("Fig4 lifetime-delta correlation = %.3f, want non-positive trend", c)
	}
	// Δ90th percentiles are at least as large as Δ10th at the tail.
	if r5.Measured["v4_delta_p90_ms"]+1e-9 < r4.Measured["v4_delta_p90_ms"]*0.5 {
		t.Errorf("Fig5 p90 delta %.1f implausibly below Fig4 %.1f",
			r5.Measured["v4_delta_p90_ms"], r4.Measured["v4_delta_p90_ms"])
	}
}

func TestFigure6Shape(t *testing.T) {
	r := runExp(t, "F6")
	// Higher thresholds ⇒ fewer timelines exceed them.
	f20 := r.Measured["v4_frac_prev20_at20ms"]
	f50 := r.Measured["v4_frac_prev20_at50ms"]
	f100 := r.Measured["v4_frac_prev20_at100ms"]
	if !(f20 >= f50 && f50 >= f100) {
		t.Errorf("threshold monotonicity violated: %v %v %v", f20, f50, f100)
	}
}

func TestFigure7Shape(t *testing.T) {
	r := runExp(t, "F7")
	// The paper's conclusion: 3-hour sampling barely changes the deltas.
	gap := r.Measured["v4_d10_gap_ms"]
	med := r.Measured["v4_d10_median_all_ms"]
	if med > 1 && gap > med {
		t.Errorf("3hr-vs-all gap %.2f ms exceeds the median delta %.2f ms", gap, med)
	}
}

func TestFigure8Shape(t *testing.T) {
	r := runExp(t, "F8")
	if cov := r.Measured["coverage_frac"]; cov < 0.3 {
		t.Errorf("ownership coverage = %.3f, want most addresses", cov)
	}
	if acc := r.Measured["accuracy"]; acc < 0.8 {
		t.Errorf("ownership accuracy = %.3f, want >= 0.8", acc)
	}
	if r.Measured["labels_first"] <= 0 {
		t.Error("first heuristic produced no labels")
	}
}

func TestSection51Shape(t *testing.T) {
	r := runExp(t, "S51")
	// Congestion is not the norm: a small minority of pairs.
	if f := r.Measured["v4_congested_frac"]; f > 0.35 {
		t.Errorf("v4 congested frac = %.3f — congestion should not be the norm", f)
	}
	if r.Measured["v4_pairs"] == 0 {
		t.Error("no v4 pairs analyzed")
	}
	// Congested pairs are a subset of high-variation pairs.
	if r.Measured["v4_congested_frac"] > r.Measured["v4_highvar_frac"]+1e-9 {
		t.Error("congested must be a subset of high-variation")
	}
}

func TestHeadlinesShape(t *testing.T) {
	r := runExp(t, "HL")
	if r.Measured["v4_change_impact_p80_ms"] < 0 {
		t.Error("negative delta quantile")
	}
	if f := r.Measured["similar_frac"]; f < 0.05 || f > 1 {
		t.Errorf("similar frac = %v", f)
	}
}

func TestFigure10Shapes(t *testing.T) {
	ra := runExp(t, "F10a")
	if ra.Measured["pairs"] == 0 {
		t.Fatal("no paired v4/v6 measurements")
	}
	// Same-AS-path subset should be at least as similar as the full set.
	if ra.Measured["samepath_similar_frac"]+0.05 < ra.Measured["similar_frac"] {
		t.Errorf("same-path subset less similar (%.3f) than all (%.3f)",
			ra.Measured["samepath_similar_frac"], ra.Measured["similar_frac"])
	}
	rb := runExp(t, "F10b")
	v4med := rb.Measured["v4_inflation_median"]
	if v4med < 1 {
		t.Errorf("median inflation %.2f < 1 (violates physics)", v4med)
	}
	// Transcontinental inflation below US-US (the paper's observation).
	if us, tr := rb.Measured["v4_us_median"], rb.Measured["v4_trans_median"]; us > 0 && tr > 0 && tr > us {
		t.Errorf("transcontinental inflation %.2f above US-US %.2f", tr, us)
	}
}

func TestFigure1Runs(t *testing.T) {
	r := runExp(t, "F1")
	if r.Measured["v4_rtt_swing_ms"] < 0 {
		t.Error("negative swing")
	}
}

func TestSection53AndFigure9Run(t *testing.T) {
	r := runExp(t, "S53")
	// At test scale there may be few localizations, but the pipeline must
	// account for every congested pair: localized + failures.
	_ = r
	r9 := runExp(t, "F9")
	_ = r9
}

func TestAblationsRun(t *testing.T) {
	rp := runExp(t, "AB-paris")
	if rp.Measured["classic_loop_frac"] < rp.Measured["paris_loop_frac"] {
		t.Errorf("classic loop rate %.4f below Paris %.4f",
			rp.Measured["classic_loop_frac"], rp.Measured["paris_loop_frac"])
	}
	ri := runExp(t, "AB-impute")
	if ri.Measured["usable_with_imputation"] < ri.Measured["usable_without_imputation"] {
		t.Error("imputation reduced usable traceroutes")
	}
	// At test scale the corpus can be too clean for imputation to have
	// work; the default-scale report shows ~11% recovered. Only assert it
	// never hurts.
	if ri.Measured["recovered_frac"] < 0 {
		t.Error("imputation must never reduce usable traceroutes")
	}
	rc := runExp(t, "AB-crit")
	if len(rc.Measured) < 6 {
		t.Error("criterion ablation incomplete")
	}
	rpsd := runExp(t, "AB-psd")
	// Recall is monotone non-increasing in the threshold.
	if rpsd.Measured["recall_0.6"] > rpsd.Measured["recall_0.1"]+1e-9 {
		t.Errorf("recall increased with threshold: %.3f vs %.3f",
			rpsd.Measured["recall_0.6"], rpsd.Measured["recall_0.1"])
	}
}

func TestExtensionsRun(t *testing.T) {
	rs := runExp(t, "EXT-shared")
	if rs.Measured["pairs"] == 0 {
		t.Fatal("no pairs analyzed")
	}
	med := rs.Measured["sharing_median"]
	if med <= 0 || med > 1 {
		t.Errorf("sharing median = %v, want (0, 1]", med)
	}
	// Shared infrastructure should associate with similar delays.
	if c := rs.Measured["sharing_diff_corr"]; c < -0.2 {
		t.Errorf("sharing vs |diff| correlation = %.3f, want non-negative trend", c)
	}
	rl := runExp(t, "EXT-loss")
	if rl.Measured["pairs"] == 0 {
		t.Error("no loss pairs")
	}
	if rl.Measured["loss_median_pct"] < 0 || rl.Measured["loss_median_pct"] > 100 {
		t.Error("loss median out of range")
	}
	rc := runExp(t, "EXT-colo")
	if rc.Measured["pairs"] > 0 {
		// Same-facility, same-AS pairs stay local; different-AS pairs
		// trombone through their providers.
		if sa := rc.Measured["same_as_median_ms"]; sa > 0 && sa > rc.Measured["cross_as_median_ms"] {
			t.Errorf("same-AS colocated RTT %v exceeds cross-AS %v",
				sa, rc.Measured["cross_as_median_ms"])
		}
	}
}

func TestRelAblation(t *testing.T) {
	r := runExp(t, "AB-rel")
	if r.Measured["rel_edges_classified"] < 20 {
		t.Errorf("too few relationship edges classified: %v", r.Measured["rel_edges_classified"])
	}
	if acc := r.Measured["rel_accuracy"]; acc < 0.6 {
		t.Errorf("relationship inference accuracy = %.3f, want >= 0.6", acc)
	}
	// Ownership with inferred relationships should still mostly work.
	if r.Measured["ownership_acc_inferred"] < 0.7 {
		t.Errorf("ownership accuracy with inferred rels = %.3f", r.Measured["ownership_acc_inferred"])
	}
	// And never beat truth by much (sanity).
	if r.Measured["ownership_acc_inferred"] > r.Measured["ownership_acc_truth"]+0.05 {
		t.Error("inferred relationships should not beat ground truth")
	}
}

func TestAsymmetryExtension(t *testing.T) {
	r := runExp(t, "EXT-asym")
	if r.Measured["pairs"] == 0 {
		t.Fatal("no pairs")
	}
	med := r.Measured["median_asym_frac"]
	if med < 0 || med > 1 {
		t.Errorf("median asymmetry = %v", med)
	}
	sym := r.Measured["always_symmetric_frac"]
	if sym < 0 || sym > 1 {
		t.Errorf("always-symmetric frac = %v", sym)
	}
}

func TestFiguresRenderSVG(t *testing.T) {
	for _, id := range []string{"F1", "F2", "F3", "F4", "F5", "F6", "F10a", "F10b"} {
		r := runExp(t, id)
		if len(r.SVGs) == 0 {
			t.Errorf("%s rendered no SVG figures", id)
			continue
		}
		for stem, svg := range r.SVGs {
			if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "</svg>") {
				t.Errorf("%s/%s is not an SVG document", id, stem)
			}
		}
	}
}
