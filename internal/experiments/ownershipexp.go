package experiments

import (
	"net/netip"
	"strings"

	"repro/internal/core/ownership"
	"repro/internal/report"
)

// Figure8 reproduces the §5.3 / Figure 8 router-ownership inference:
// heuristic label counts, resolution coverage — and, because the simulator
// knows the truth, per-heuristic and overall accuracy, the validation the
// paper calls for ("we stress the need for an approach that has been
// thoroughly validated").
func Figure8(e *Env) (*Result, error) {
	st, err := e.ShortTerm()
	if err != nil {
		return nil, err
	}
	inf := &ownership.Inferencer{Table: e.Net.BGP, Rel: e.Topo.Rel}
	res := inf.Process(st.records)
	resolved, seen := res.Resolved()

	// Per-heuristic label counts and correctness against ground truth.
	type hstat struct{ labels, correct, checked int }
	byH := make(map[ownership.Heuristic]*hstat)
	addrs := make(map[netip.Addr]bool)
	for _, tr := range st.records {
		for _, h := range tr.Hops {
			if h.Responsive() {
				addrs[h.Addr] = true
			}
		}
	}
	for a := range addrs {
		truth, haveTruth := e.Net.IfaceOwner(a)
		for _, l := range res.Labels(a) {
			s := byH[l.Kind]
			if s == nil {
				s = &hstat{}
				byH[l.Kind] = s
			}
			s.labels++
			if haveTruth {
				s.checked++
				if l.AS == truth {
					s.correct++
				}
			}
		}
	}

	correct, wrong := 0, 0
	for a := range addrs {
		owner, ok := res.Owner(a)
		if !ok {
			continue
		}
		truth, haveTruth := e.Net.IfaceOwner(a)
		if !haveTruth {
			continue
		}
		if owner == truth {
			correct++
		} else {
			wrong++
		}
	}

	var txt strings.Builder
	var rows [][]string
	order := []ownership.Heuristic{
		ownership.First, ownership.NoIP2AS, ownership.Customer,
		ownership.Provider, ownership.Back, ownership.Forward,
	}
	m := map[string]float64{
		"addresses_seen":     float64(seen),
		"addresses_resolved": float64(resolved),
		"coverage_frac":      frac(resolved, seen),
		"accuracy":           frac(correct, correct+wrong),
	}
	for _, h := range order {
		s := byH[h]
		if s == nil {
			s = &hstat{}
		}
		acc := frac(s.correct, s.checked)
		rows = append(rows, []string{h.String(), itoa(s.labels), pct(acc)})
		m["labels_"+h.String()] = float64(s.labels)
		m["accuracy_"+h.String()] = acc
	}
	report.Table(&txt, "Figure 8: ownership heuristics over the short-term corpus",
		[]string{"heuristic", "labels", "accuracy vs ground truth"}, rows)
	report.KeyValues(&txt, "Resolution", map[string]float64{
		"addresses seen":     float64(seen),
		"addresses resolved": float64(resolved),
		"overall accuracy":   m["accuracy"],
	})
	return &Result{
		ID:       "F8",
		Title:    "Figure 8: router ownership inference",
		Text:     txt.String(),
		Measured: m,
		Paper: map[string]float64{
			// Qualitative: "annotates the likely owner of most, but not
			// all interfaces" — coverage well above half, accuracy unknown
			// to the authors (no ground truth).
			"coverage_frac": 0.6,
		},
	}, nil
}
