// Package experiments reproduces every table and figure in the paper's
// evaluation: each experiment has an identifier (T1, F1–F10b, S51, S53, HL,
// plus ablations), a runner over a shared simulation environment, rendered
// text output, and the measured key numbers side by side with the paper's.
//
// Absolute values are not expected to match the paper — the substrate is a
// simulator, not the authors' platform — but the shapes are: who wins, by
// roughly what factor, and where the crossovers fall.
package experiments

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/astopo"
	"repro/internal/bgp"
	"repro/internal/campaign"
	"repro/internal/cdn"
	"repro/internal/congestion"
	"repro/internal/core/aspath"
	"repro/internal/core/congest"
	"repro/internal/core/dualstack"
	"repro/internal/core/timeline"
	"repro/internal/geo"
	"repro/internal/itopo"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/probe"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// Scale sizes the simulation and the campaigns.
type Scale struct {
	Seed int64

	NumASes     int
	NumClusters int

	// Long-term campaign (paper: 600 servers, 485 days, 3-hourly).
	MeshSize         int
	LongTermDays     int
	LongTermInterval time.Duration
	// ParisSwitchFrac is when IPv4 switches to Paris traceroute, as a
	// fraction of the campaign (the paper: ~day 300 of 485 ≈ 0.62).
	ParisSwitchFrac float64

	// Short-term traceroute data set (paper: 22 days, 30-minute rounds).
	ShortTermDays     int
	ShortTermInterval time.Duration
	ShortPairs        int

	// Ping mesh (paper: 1 week, 15-minute rounds).
	PingDays     int
	PingInterval time.Duration
	PingMeshSize int

	// Localization campaign (paper: 3 weeks, 30-minute rounds).
	LocalizeDays int

	// Churn multiplies the routing-event rates (1 = the default schedule).
	// Short test campaigns use higher churn so per-timeline change counts
	// stay paper-shaped despite the compressed window.
	Churn float64

	// Workers parallelizes the long-term campaign's measurement rounds
	// (records remain bit-identical to a sequential run; ≤1 disables).
	Workers int

	// Archive, when non-nil, additionally receives every record of the
	// long-term campaign alongside the streaming analyses (s2sreport
	// -archive points this at a store writer so the dataset the report ran
	// on persists for later s2sanalyze passes).
	Archive campaign.Consumer

	// Metrics, when non-nil, receives run telemetry from every
	// instrumented subsystem (path cache, BGP recomputation, engine,
	// prober, detector). Metrics never alter any record or result.
	Metrics *obs.Registry

	// Trace, when non-nil, records flight spans and events from every
	// traced subsystem (campaign rounds, workers, epoch rebuilds, cache
	// sweeps, probe batches). Like Metrics, tracing never alters any
	// record or result.
	Trace *flight.Recorder
}

// TestScale returns a tiny configuration for unit tests.
func TestScale(seed int64) Scale {
	return Scale{
		Seed:              seed,
		NumASes:           120,
		NumClusters:       120,
		MeshSize:          10,
		LongTermDays:      30,
		LongTermInterval:  3 * time.Hour,
		ParisSwitchFrac:   0.62,
		ShortTermDays:     4,
		ShortTermInterval: 30 * time.Minute,
		ShortPairs:        12,
		PingDays:          7,
		PingInterval:      15 * time.Minute,
		PingMeshSize:      24,
		LocalizeDays:      7,
		Churn:             8,
		Workers:           4,
	}
}

// DefaultScale returns the laptop-scale configuration used by the
// benchmarks and the report tool.
func DefaultScale(seed int64) Scale {
	return Scale{
		Seed:              seed,
		NumASes:           300,
		NumClusters:       400,
		MeshSize:          24,
		LongTermDays:      120,
		LongTermInterval:  3 * time.Hour,
		ParisSwitchFrac:   0.62,
		ShortTermDays:     10,
		ShortTermInterval: 30 * time.Minute,
		ShortPairs:        30,
		PingDays:          7,
		PingInterval:      15 * time.Minute,
		PingMeshSize:      48,
		LocalizeDays:      14,
		Churn:             4,
		Workers:           8,
	}
}

// FullScale approaches the paper's campaign shape (slow: minutes).
func FullScale(seed int64) Scale {
	return Scale{
		Seed:              seed,
		NumASes:           600,
		NumClusters:       1500,
		MeshSize:          48,
		LongTermDays:      485,
		LongTermInterval:  3 * time.Hour,
		ParisSwitchFrac:   0.62,
		ShortTermDays:     22,
		ShortTermInterval: 30 * time.Minute,
		ShortPairs:        60,
		PingDays:          7,
		PingInterval:      15 * time.Minute,
		PingMeshSize:      80,
		LocalizeDays:      21,
		Churn:             1,
		Workers:           16,
	}
}

// Env is the shared simulation environment. Expensive campaigns run once
// and are cached for all experiments that consume them.
type Env struct {
	Scale    Scale
	Topo     *astopo.Topology
	Net      *itopo.Network
	Dyn      *bgp.Dynamics
	Cong     *congestion.Model
	Platform *cdn.Platform
	Sim      *simnet.Net
	Prober   *probe.Prober
	Mesh     []*cdn.Cluster

	long      *longTermData
	shortTerm *shortTermData
	pings     *pingData
	locs      *localizationData
}

// NewEnv builds the simulation environment for a scale.
func NewEnv(sc Scale) (*Env, error) {
	duration := time.Duration(sc.LongTermDays) * 24 * time.Hour
	if d := time.Duration(sc.PingDays+sc.LocalizeDays+sc.ShortTermDays) * 24 * time.Hour; d > duration {
		duration = d
	}
	acfg := astopo.DefaultConfig(sc.Seed)
	acfg.NumASes = sc.NumASes
	topo, err := astopo.Generate(acfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: topology: %w", err)
	}
	net, err := itopo.Build(topo, itopo.DefaultConfig(sc.Seed))
	if err != nil {
		return nil, fmt.Errorf("experiments: router network: %w", err)
	}
	dcfg := bgp.DefaultDynConfig(sc.Seed, duration)
	if sc.Churn > 1 {
		dcfg.LinkMTBF = time.Duration(float64(dcfg.LinkMTBF) / sc.Churn)
		dcfg.FlipMTBF = time.Duration(float64(dcfg.FlipMTBF) / sc.Churn)
	}
	dyn, err := bgp.NewDynamics(topo, dcfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: dynamics: %w", err)
	}
	cong, err := congestion.NewModel(net, congestion.DefaultConfig(sc.Seed, duration))
	if err != nil {
		return nil, fmt.Errorf("experiments: congestion: %w", err)
	}
	platform, err := cdn.Deploy(net, cdn.DefaultConfig(sc.Seed, sc.NumClusters))
	if err != nil {
		return nil, fmt.Errorf("experiments: platform: %w", err)
	}
	sim := simnet.New(net, dyn, cong, simnet.DefaultConfig(sc.Seed))
	env := &Env{
		Scale:    sc,
		Topo:     topo,
		Net:      net,
		Dyn:      dyn,
		Cong:     cong,
		Platform: platform,
		Sim:      sim,
		Prober:   probe.New(sim),
		Mesh:     campaign.SelectMesh(platform, sc.MeshSize, sc.Seed),
	}
	if len(env.Mesh) < 2 {
		return nil, fmt.Errorf("experiments: mesh too small (%d dual-stack sites)", len(env.Mesh))
	}
	if sc.Metrics != nil {
		sim.Instrument(sc.Metrics)
		dyn.Instrument(sc.Metrics)
		env.Prober.Instrument(sc.Metrics)
	}
	if sc.Trace != nil {
		sim.Trace(sc.Trace)
		dyn.Trace(sc.Trace)
		env.Prober.Trace(sc.Trace)
	}
	return env, nil
}

// CityOf maps a cluster id to its (ground truth) city.
func (e *Env) CityOf(id int) (geo.City, bool) {
	if id < 0 || id >= len(e.Platform.Clusters) {
		return geo.City{}, false
	}
	return geo.Cities[e.Platform.Clusters[id].City], true
}

// longTermData is the shared outcome of the long-term campaign.
type longTermData struct {
	builder    *timeline.Builder
	diffs      *dualstack.DiffCollector
	inflations *dualstack.InflationCollector
	total      int
}

// LongTerm runs (once) the long-term full-mesh campaign with streaming
// consumers and returns the shared datasets.
func (e *Env) LongTerm() (*longTermData, error) {
	if e.long != nil {
		return e.long, nil
	}
	mapper := aspath.NewMapper(e.Net.BGP)
	data := &longTermData{
		builder:    timeline.NewBuilder(mapper, e.Scale.LongTermInterval),
		diffs:      dualstack.NewDiffCollector(mapper),
		inflations: dualstack.NewInflationCollector(),
	}
	duration := time.Duration(e.Scale.LongTermDays) * 24 * time.Hour
	cfg := campaign.LongTermConfig{
		Servers:       e.Mesh,
		Duration:      duration,
		Interval:      e.Scale.LongTermInterval,
		ParisSwitchAt: time.Duration(float64(duration) * e.Scale.ParisSwitchFrac),
		Workers:       e.Scale.Workers,
		Metrics:       e.Scale.Metrics,
		Trace:         e.Scale.Trace,
	}
	var consumer campaign.Consumer = campaign.Funcs{Traceroute: func(tr *trace.Traceroute) {
		data.total++
		data.builder.Add(tr)
		data.diffs.Add(tr)
		data.inflations.Add(tr)
	}}
	if e.Scale.Archive != nil {
		consumer = campaign.Multi{consumer, e.Scale.Archive}
	}
	if err := campaign.LongTerm(e.Prober, cfg, consumer); err != nil {
		return nil, err
	}
	e.long = data
	return data, nil
}

// shortTermData is the 30-minute traceroute data set (§4.3, Figure 7).
type shortTermData struct {
	builder *timeline.Builder
	records []*trace.Traceroute
}

// ShortTerm runs (once) the short-term traceroute campaign. Records are
// retained for the ownership analysis (Figure 8).
func (e *Env) ShortTerm() (*shortTermData, error) {
	if e.shortTerm != nil {
		return e.shortTerm, nil
	}
	mapper := aspath.NewMapper(e.Net.BGP)
	data := &shortTermData{builder: timeline.NewBuilder(mapper, e.Scale.ShortTermInterval)}
	pairs := campaign.UnorderedPairs(e.Mesh)
	if len(pairs) > e.Scale.ShortPairs {
		pairs = pairs[:e.Scale.ShortPairs]
	}
	cfg := campaign.TracerouteCampaignConfig{
		Pairs:          pairs,
		Duration:       time.Duration(e.Scale.ShortTermDays) * 24 * time.Hour,
		Interval:       e.Scale.ShortTermInterval,
		BothDirections: true,
		Paris:          true,
		V6:             true,
		Workers:        e.Scale.Workers,
		Metrics:        e.Scale.Metrics,
		Trace:          e.Scale.Trace,
	}
	consumer := campaign.Funcs{Traceroute: func(tr *trace.Traceroute) {
		data.builder.Add(tr)
		data.records = append(data.records, tr)
	}}
	if err := campaign.TracerouteCampaign(e.Prober, cfg, consumer); err != nil {
		return nil, err
	}
	e.shortTerm = data
	return data, nil
}

// pingData is the §5.1 ping mesh outcome.
type pingData struct {
	series     map[trace.PairKey]*congest.Series
	totalPings int
	// congestedPairs are the directed v4 pairs flagged by the detector.
	congestedPairs []trace.PairKey
}

// PingMesh runs (once) the short-term ping campaign and the §5.1 detector.
func (e *Env) PingMesh() (*pingData, error) {
	if e.pings != nil {
		return e.pings, nil
	}
	// An AS-diverse member set: ping paths should cross the core, like the
	// platform's cluster-to-cluster measurements.
	members := campaign.SelectMesh(e.Platform, e.Scale.PingMeshSize, e.Scale.Seed+1)
	if len(members) < 2 {
		members = e.Platform.Clusters
		if len(members) > e.Scale.PingMeshSize {
			members = members[:e.Scale.PingMeshSize]
		}
	}
	pairs := campaign.FullMeshPairs(members)
	duration := time.Duration(e.Scale.PingDays) * 24 * time.Hour
	var col campaign.Collector
	cfg := campaign.PingMeshConfig{
		Pairs:    pairs,
		Duration: duration,
		Interval: e.Scale.PingInterval,
		Workers:  e.Scale.Workers,
		Metrics:  e.Scale.Metrics,
		Trace:    e.Scale.Trace,
	}
	if err := campaign.PingMesh(e.Prober, cfg, &col); err != nil {
		return nil, err
	}
	slots := int(duration / e.Scale.PingInterval)
	minSamples := slots * 89 / 100 // the paper's ≥600-of-672 bar
	series := congest.BuildSeries(col.Pings, e.Scale.PingInterval, duration, minSamples)
	data := &pingData{series: series, totalPings: len(col.Pings)}
	// Per-pair detection (an FFT each) fans out over the workers; the
	// flagged set is then ordered deterministically.
	verdicts := congest.DetectParallel(series, congest.DefaultDetector().WithMetrics(e.Scale.Metrics), e.Scale.Workers)
	var keys []trace.PairKey
	for k := range series {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.SrcID != b.SrcID {
			return a.SrcID < b.SrcID
		}
		if a.DstID != b.DstID {
			return a.DstID < b.DstID
		}
		return !a.V6 && b.V6
	})
	for _, k := range keys {
		if !k.V6 && verdicts[k] {
			data.congestedPairs = append(data.congestedPairs, k)
		}
	}
	e.pings = data
	return data, nil
}

// localizationData is the §5.2 outcome over the congested pairs.
type localizationData struct {
	locs    []*congest.Localization
	records []*trace.Traceroute
	// failures counts pairs that could not be localized, by reason.
	failures map[string]int
}

// Localizations runs (once) the localization traceroute campaign over the
// pairs the detector flagged, then localizes each.
func (e *Env) Localizations() (*localizationData, error) {
	if e.locs != nil {
		return e.locs, nil
	}
	pd, err := e.PingMesh()
	if err != nil {
		return nil, err
	}
	data := &localizationData{failures: make(map[string]int)}
	// A pair flagged in both directions must be scheduled once: the
	// campaign already measures both directions.
	var pairs [][2]*cdn.Cluster
	seen := make(map[trace.PairKey]bool)
	for _, k := range pd.congestedPairs {
		und := k.Undirected()
		if seen[und] {
			continue
		}
		seen[und] = true
		pairs = append(pairs, [2]*cdn.Cluster{
			e.Platform.Clusters[k.SrcID], e.Platform.Clusters[k.DstID],
		})
	}
	if len(pairs) == 0 {
		e.locs = data
		return data, nil
	}
	var col campaign.Collector
	cfg := campaign.TracerouteCampaignConfig{
		Pairs:          pairs,
		Duration:       time.Duration(e.Scale.LocalizeDays) * 24 * time.Hour,
		Interval:       30 * time.Minute,
		BothDirections: true,
		Paris:          true,
		Workers:        e.Scale.Workers,
		Metrics:        e.Scale.Metrics,
		Trace:          e.Scale.Trace,
	}
	if err := campaign.TracerouteCampaign(e.Prober, cfg, &col); err != nil {
		return nil, err
	}
	data.records = col.Traceroutes

	byKey := make(map[trace.PairKey][]*trace.Traceroute)
	for _, tr := range col.Traceroutes {
		byKey[tr.Key()] = append(byKey[tr.Key()], tr)
	}
	loc := congest.DefaultLocalizer()
	for _, k := range pd.congestedPairs {
		trs := byKey[k]
		l, err := loc.Localize(trs)
		if err != nil {
			data.failures[err.Error()]++
			continue
		}
		data.locs = append(data.locs, l)
	}
	e.locs = data
	return data, nil
}
