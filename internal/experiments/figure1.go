package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/cdn"
	"repro/internal/core/aspath"
	"repro/internal/core/changepoint"
	"repro/internal/core/fft"
	"repro/internal/core/stats"
	"repro/internal/core/timeline"
	"repro/internal/geo"
	"repro/internal/plot"
	"repro/internal/report"
	"repro/internal/trace"
)

// Figure1 reproduces the paper's illustrative example: the RTT timeline of
// one intercontinental dual-stack server pair (the paper used Hong Kong →
// Osaka) over both protocols, exhibiting level shifts at routing changes
// and, when the pair crosses a congested link, daily oscillations.
func Figure1(e *Env) (*Result, error) {
	src, dst, err := e.figure1Pair()
	if err != nil {
		return nil, err
	}

	days := e.Scale.LongTermDays
	if days > 180 {
		days = 180 // the paper's plot covers six months
	}
	cfg := campaign.TracerouteCampaignConfig{
		Pairs:          [][2]*cdn.Cluster{{src, dst}},
		Duration:       time.Duration(days) * 24 * time.Hour,
		Interval:       e.Scale.LongTermInterval,
		BothDirections: false,
		Paris:          true,
		V6:             true,
	}
	mapper := aspath.NewMapper(e.Net.BGP)
	builder := timeline.NewBuilder(mapper, e.Scale.LongTermInterval)
	var col campaign.Collector
	if err := campaign.TracerouteCampaign(e.Prober, cfg, campaign.Multi{&col, campaign.Funcs{Traceroute: builder.Add}}); err != nil {
		return nil, err
	}

	var txt strings.Builder
	srcCity, _ := e.CityOf(src.ID)
	dstCity, _ := e.CityOf(dst.ID)
	fmt.Fprintf(&txt, "Figure 1: RTT timeline %s (%s) -> %s (%s), %d days, 3-hourly\n",
		srcCity.Name, src.HostAS, dstCity.Name, dst.HostAS, days)

	m := map[string]float64{}
	var lines []plot.XY
	for _, v6 := range []bool{false, true} {
		name := "IPv4"
		if v6 {
			name = "IPv6"
		}
		var rows [][]string
		var series []float64
		for _, tr := range col.Traceroutes {
			if tr.V6 != v6 || !tr.Complete {
				continue
			}
			series = append(series, float64(tr.RTT)/float64(time.Millisecond))
		}
		// Weekly summary rows (baseline = p10, spikes = p90).
		per := 7 * 24 * time.Hour
		weeks := int(cfg.Duration / per)
		idx := 0
		samplesPerWeek := len(series) / maxI(weeks, 1)
		for w := 0; w < weeks && samplesPerWeek > 0; w++ {
			lo := idx
			hi := minI(idx+samplesPerWeek, len(series))
			idx = hi
			if lo >= hi {
				break
			}
			chunk := series[lo:hi]
			rows = append(rows, []string{
				fmt.Sprintf("week %02d", w+1),
				fmt.Sprintf("%.1f", stats.Percentile(chunk, 10)),
				fmt.Sprintf("%.1f", stats.Median(chunk)),
				fmt.Sprintf("%.1f", stats.Percentile(chunk, 90)),
			})
		}
		report.Table(&txt, fmt.Sprintf("%s weekly RTT summary (ms)", name),
			[]string{"week", "p10", "p50", "p90"}, rows)
		// Per-day medians for the Figure 1 line plot.
		perDay := int(24 * time.Hour / e.Scale.LongTermInterval)
		var xs, ys []float64
		for d := 0; d*perDay < len(series); d++ {
			lo := d * perDay
			hi := minI(lo+perDay, len(series))
			xs = append(xs, float64(d))
			ys = append(ys, stats.Median(series[lo:hi]))
		}
		lines = append(lines, plot.XY{Name: name, X: xs, Y: ys})

		prefix := "v4"
		if v6 {
			prefix = "v6"
		}
		key := trace.PairKey{SrcID: src.ID, DstID: dst.ID, V6: v6}
		var changeIdx []int
		if tl, ok := builder.Timeline(key); ok {
			m[prefix+"_level_shifts"] = float64(tl.NumChanges())
			m[prefix+"_unique_paths"] = float64(len(tl.UniquePaths(e.Scale.LongTermInterval)))
			for _, ch := range tl.Changes() {
				changeIdx = append(changeIdx, int(ch.At/e.Scale.LongTermInterval))
			}
		}
		if len(series) > 0 {
			m[prefix+"_rtt_swing_ms"] = stats.Percentile(series, 95) - stats.Percentile(series, 5)
			m[prefix+"_diurnal_ratio"] = fft.DiurnalRatio(series, e.Scale.LongTermInterval)
			// Detect level shifts from the RTT series alone (binary
			// segmentation over a median-filtered series) and check them
			// against the AS-path change times — the paper's Figure 1
			// observation that "at each of the level shifts there was a
			// change in the AS path".
			cuts := changepoint.DetectRobust(series, 8, 5)
			m[prefix+"_detected_shifts"] = float64(len(cuts))
			if len(cuts) > 0 && len(changeIdx) > 0 {
				m[prefix+"_shift_match_rate"] = changepoint.MatchRate(cuts, changeIdx, 16)
			}
		}
	}

	report.KeyValues(&txt, "Figure 1 summary", m)
	svgs := map[string]string{"fig1": plot.LineChart(
		fmt.Sprintf("Figure 1: %s → %s, daily median RTT", srcCity.Name, dstCity.Name),
		"day", "RTT (ms)", lines)}
	return &Result{
		ID:       "F1",
		Title:    "Figure 1: illustrative RTT timeline",
		Text:     txt.String(),
		SVGs:     svgs,
		Measured: m,
		Paper: map[string]float64{
			// Qualitative: multiple level shifts over six months and RTT
			// swings of ~100+ ms between route regimes (HK→Osaka baseline
			// moved between ~50 ms and >250 ms).
			"v4_level_shifts": 5,
			"v6_level_shifts": 5,
		},
	}, nil
}

// figure1Pair picks an intercontinental dual-stack pair, preferring the
// paper's Hong Kong → Osaka siting.
func (e *Env) figure1Pair() (*cdn.Cluster, *cdn.Cluster, error) {
	ds := e.Platform.DualStackClusters()
	pick := func(name string) *cdn.Cluster {
		for _, c := range ds {
			if geo.Cities[c.City].Name == name {
				return c
			}
		}
		return nil
	}
	if hk, osaka := pick("Hong Kong"), pick("Osaka"); hk != nil && osaka != nil && hk.HostAS != osaka.HostAS {
		return hk, osaka, nil
	}
	// Fallback: first pair on different continents in different ASes.
	for i := 0; i < len(ds); i++ {
		for j := 0; j < len(ds); j++ {
			if i == j || ds[i].HostAS == ds[j].HostAS {
				continue
			}
			if geo.Cities[ds[i].City].Continent != geo.Cities[ds[j].City].Continent {
				return ds[i], ds[j], nil
			}
		}
	}
	return nil, nil, fmt.Errorf("experiments: no intercontinental dual-stack pair")
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
