package experiments

import (
	"strings"
	"time"

	"repro/internal/cdn"
	"repro/internal/core/stats"
	"repro/internal/itopo"
	"repro/internal/report"
	"repro/internal/trace"
)

// ExtSharedInfrastructure implements the paper's stated future work (§8):
// "to what extent infrastructure is shared between IPv4 and IPv6". The
// simulator can answer directly: for every dual-stack mesh pair, resolve
// the v4 and v6 forwarding paths and measure the fraction of shared
// router-level links, then relate sharing to the observed RTT difference.
func ExtSharedInfrastructure(e *Env) (*Result, error) {
	var sharing, absDiff []float64
	sharedBuckets := map[string][]float64{} // sharing band -> |RTTv4-RTTv6|
	at := 6 * time.Hour

	for i, src := range e.Mesh {
		for j, dst := range e.Mesh {
			if i == j {
				continue
			}
			h4, err4 := e.Sim.ForwardHops(src, dst, false, 1, at)
			h6, err6 := e.Sim.ForwardHops(src, dst, true, 1, at)
			if err4 != nil || err6 != nil {
				continue
			}
			share := linkSharing(h4, h6)
			sharing = append(sharing, share)

			r4, err4 := e.Sim.BaseRTT(src, dst, false, 1, 2, at)
			r6, err6 := e.Sim.BaseRTT(src, dst, true, 1, 2, at)
			if err4 != nil || err6 != nil {
				continue
			}
			d := float64(r4-r6) / float64(time.Millisecond)
			if d < 0 {
				d = -d
			}
			absDiff = append(absDiff, d)
			switch {
			case share >= 0.9:
				sharedBuckets[">=90% shared"] = append(sharedBuckets[">=90% shared"], d)
			case share >= 0.5:
				sharedBuckets["50-90% shared"] = append(sharedBuckets["50-90% shared"], d)
			default:
				sharedBuckets["<50% shared"] = append(sharedBuckets["<50% shared"], d)
			}
		}
	}
	if len(sharing) == 0 {
		return nil, errNoPairs
	}

	var txt strings.Builder
	report.ECDFQuantiles(&txt, "Extension: fraction of router-level links shared by v4 and v6 paths",
		[]report.Series{{Name: "link sharing", Values: sharing}}, nil)
	var rows [][]string
	for _, band := range []string{">=90% shared", "50-90% shared", "<50% shared"} {
		vals := sharedBuckets[band]
		med := 0.0
		if len(vals) > 0 {
			med = stats.Median(vals)
		}
		rows = append(rows, []string{band, itoa(len(vals)), report.MsLabel(med)})
	}
	report.Table(&txt, "median |RTTv4 − RTTv6| by infrastructure sharing",
		[]string{"sharing", "pairs", "median |diff|"}, rows)

	m := map[string]float64{
		"pairs":             float64(len(sharing)),
		"sharing_median":    stats.Median(sharing),
		"fully_shared_frac": fracAtLeast(sharing, 0.999),
		"sharing_diff_corr": stats.Pearson(sharing, negate(absDiff)),
		"absdiff_median_ms": stats.Median(absDiff),
	}
	report.KeyValues(&txt, "Extension summary", m)
	return &Result{
		ID:       "EXT-shared",
		Title:    "Extension (§8 future work): IPv4/IPv6 infrastructure sharing",
		Text:     txt.String(),
		Measured: m,
		Paper:    map[string]float64{
			// No paper values: this is the question the authors "plan on
			// addressing in future work". The mechanism hypothesis: shared
			// infrastructure ⇒ similar delays (§6) — so sharing should
			// correlate with small RTT differences.
		},
	}, nil
}

// ExtPacketLoss implements the other §8 suggestion: packet loss. The ping
// mesh's loss rates are related to the congestion state of the path.
func ExtPacketLoss(e *Env) (*Result, error) {
	pd, err := e.PingMesh()
	if err != nil {
		return nil, err
	}
	flagged := make(map[trace.PairKey]bool, len(pd.congestedPairs))
	for _, k := range pd.congestedPairs {
		flagged[k] = true
	}
	var lossAll, lossCongested, lossQuiet []float64
	slots := 0
	for k, s := range pd.series {
		if k.V6 {
			continue
		}
		if slots == 0 {
			slots = len(s.RTTms)
		}
		loss := 1 - float64(s.Received)/float64(len(s.RTTms))
		lossAll = append(lossAll, loss*100)
		if flagged[k] {
			lossCongested = append(lossCongested, loss*100)
		} else {
			lossQuiet = append(lossQuiet, loss*100)
		}
	}
	var txt strings.Builder
	report.ECDFQuantiles(&txt, "Extension: ping loss rate (%) per server pair",
		[]report.Series{
			{Name: "all", Values: lossAll},
			{Name: "congested", Values: lossCongested},
			{Name: "quiet", Values: lossQuiet},
		}, []float64{0.5, 0.9, 0.99})
	m := map[string]float64{
		"pairs":                 float64(len(lossAll)),
		"loss_median_pct":       stats.Median(lossAll),
		"loss_p99_pct":          stats.Percentile(lossAll, 99),
		"loss_congested_median": stats.Median(lossCongested),
		"loss_quiet_median":     stats.Median(lossQuiet),
	}
	report.KeyValues(&txt, "Extension summary", m)
	return &Result{
		ID:       "EXT-loss",
		Title:    "Extension (§8 future work): packet loss in the core",
		Text:     txt.String(),
		Measured: m,
		Paper:    map[string]float64{},
	}, nil
}

// linkSharing returns |links(a) ∩ links(b)| / |links(a) ∪ links(b)|
// (Jaccard index over inbound link ids).
func linkSharing(a, b []itopo.PathHop) float64 {
	la := linkSet(a)
	lb := linkSet(b)
	if len(la) == 0 && len(lb) == 0 {
		return 1
	}
	inter, union := 0, len(la)
	for l := range lb {
		if la[l] {
			inter++
		} else {
			union++
		}
	}
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

func linkSet(hops []itopo.PathHop) map[itopo.LinkID]bool {
	out := make(map[itopo.LinkID]bool, len(hops))
	for _, h := range hops {
		if h.InLink >= 0 {
			out[h.InLink] = true
		}
	}
	return out
}

func fracAtLeast(xs []float64, th float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x >= th {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

func negate(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = -x
	}
	return out
}

// errNoPairs is returned when an extension finds nothing to analyze.
var errNoPairs = errNoPairsType{}

type errNoPairsType struct{}

func (errNoPairsType) Error() string { return "experiments: no analyzable pairs" }

// ExtColocated reproduces the §2.2 colocated-cluster campaign: full-mesh
// 30-minute traceroutes between clusters at the same location, to observe
// congestion between clusters sharing a facility.
func ExtColocated(e *Env) (*Result, error) {
	pairs := colocatedMeshPairs(e)
	if len(pairs) == 0 {
		return nil, errNoPairs
	}
	if len(pairs) > 20 {
		pairs = pairs[:20]
	}
	var sameAS, crossAS []float64
	days := e.Scale.LocalizeDays
	if days > 20 {
		days = 20 // the paper's campaign length
	}
	for at := time.Duration(0); at < time.Duration(days)*24*time.Hour; at += 30 * time.Minute {
		for _, pr := range pairs {
			tr := e.Prober.Traceroute(pr[0], pr[1], false, true, at)
			if !tr.Complete {
				continue
			}
			ms := float64(tr.RTT) / float64(time.Millisecond)
			if pr[0].HostAS == pr[1].HostAS {
				sameAS = append(sameAS, ms)
			} else {
				crossAS = append(crossAS, ms)
			}
		}
	}
	var txt strings.Builder
	report.ECDFQuantiles(&txt, "Extension: RTT between colocated clusters (ms)",
		[]report.Series{
			{Name: "same host AS", Values: sameAS},
			{Name: "different host AS", Values: crossAS},
		}, nil)
	m := map[string]float64{
		"pairs":              float64(len(pairs)),
		"same_as_median_ms":  stats.Median(sameAS),
		"cross_as_median_ms": stats.Median(crossAS),
		"tromboning_factor":  stats.Median(crossAS) / stats.Median(sameAS),
	}
	report.KeyValues(&txt, "Extension summary", m)
	return &Result{
		ID:       "EXT-colo",
		Title:    "Extension (§2.2): colocated-cluster campaign",
		Text:     txt.String(),
		Measured: m,
		Paper:    map[string]float64{},
	}, nil
}

func colocatedMeshPairs(e *Env) [][2]*cdn.Cluster {
	byCity := map[int][]*cdn.Cluster{}
	var cities []int
	for _, c := range e.Platform.Clusters {
		if byCity[c.City] == nil {
			cities = append(cities, c.City)
		}
		byCity[c.City] = append(byCity[c.City], c)
	}
	var out [][2]*cdn.Cluster
	for _, city := range cities {
		cs := byCity[city]
		for i := 0; i < len(cs); i++ {
			for j := i + 1; j < len(cs); j++ {
				out = append(out, [2]*cdn.Cluster{cs[i], cs[j]})
			}
		}
	}
	return out
}

// ExtAsymmetry quantifies routing asymmetry — the paper notes that "paths
// along the forward and reverse directions between two servers can be
// asymmetric" and §5.2 restricts localization to symmetric pairs. For each
// server pair, same-timestamp forward/reverse AS paths are compared
// (reverse path reversed first).
func ExtAsymmetry(e *Env) (*Result, error) {
	lt, err := e.LongTerm()
	if err != nil {
		return nil, err
	}
	tls := lt.builder.Timelines()
	byKey := make(map[trace.PairKey]map[time.Duration]string)
	for _, tl := range tls {
		m := make(map[time.Duration]string, len(tl.Obs))
		for _, o := range tl.Obs {
			m[o.At] = o.Path.Key()
		}
		byKey[tl.Key] = m
	}
	var asymFrac []float64 // per undirected pair: fraction of rounds asymmetric
	seen := make(map[trace.PairKey]bool)
	for _, tl := range tls {
		und := tl.Key.Undirected()
		if tl.Key.V6 || seen[und] {
			continue
		}
		seen[und] = true
		fwd := byKey[und]
		rev := byKey[und.Reverse()]
		if fwd == nil || rev == nil {
			continue
		}
		matched, asym := 0, 0
		for at, fp := range fwd {
			rp, ok := rev[at]
			if !ok {
				continue
			}
			matched++
			if fp != reverseKey(rp) {
				asym++
			}
		}
		if matched > 0 {
			asymFrac = append(asymFrac, float64(asym)/float64(matched))
		}
	}
	if len(asymFrac) == 0 {
		return nil, errNoPairs
	}
	var txt strings.Builder
	report.ECDFQuantiles(&txt, "Extension: fraction of rounds with asymmetric AS paths, per pair (v4)",
		[]report.Series{{Name: "asymmetry", Values: asymFrac}}, nil)
	m := map[string]float64{
		"pairs":                 float64(len(asymFrac)),
		"median_asym_frac":      stats.Median(asymFrac),
		"always_symmetric_frac": fracAtMost(asymFrac, 0),
		"mostly_asym_frac":      fracAtLeast(asymFrac, 0.5),
	}
	report.KeyValues(&txt, "Extension summary", m)
	return &Result{
		ID:       "EXT-asym",
		Title:    "Extension: forward/reverse AS-path asymmetry",
		Text:     txt.String(),
		Measured: m,
		Paper:    map[string]float64{},
	}, nil
}

// reverseKey reverses a space-separated AS path key.
func reverseKey(key string) string {
	parts := strings.Fields(key)
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return strings.Join(parts, " ")
}

func fracAtMost(xs []float64, th float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x <= th {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}
