package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/core/stats"
	"repro/internal/core/timeline"
	"repro/internal/plot"
	"repro/internal/report"
)

// Table1 reproduces Table 1: the completeness breakdown of long-term
// traceroutes between dual-stack servers.
func Table1(e *Env) (*Result, error) {
	lt, err := e.LongTerm()
	if err != nil {
		return nil, err
	}
	b := lt.builder
	c4, a4, i4 := b.TallyV4.Fractions()
	c6, a6, i6 := b.TallyV6.Fractions()
	loops4 := frac(b.TallyV4.Loops, b.TallyV4.Total)
	loops6 := frac(b.TallyV6.Loops, b.TallyV6.Total)

	var txt strings.Builder
	report.Table(&txt, "Table 1: completed traceroutes by hop-data completeness",
		[]string{"", "IPv4", "IPv6"},
		[][]string{
			{"complete AS-level data", pct(c4), pct(c6)},
			{"missing AS-level data", pct(a4), pct(a6)},
			{"missing IP-level data", pct(i4), pct(i6)},
			{"AS-path loops (excluded)", pct(loops4), pct(loops6)},
		})
	return &Result{
		ID:    "T1",
		Title: "Table 1: traceroute completeness",
		Text:  txt.String(),
		Measured: map[string]float64{
			"v4_complete_frac":  c4,
			"v6_complete_frac":  c6,
			"v4_missingAS_frac": a4,
			"v6_missingAS_frac": a6,
			"v4_missingIP_frac": i4,
			"v6_missingIP_frac": i6,
			"v4_loop_frac":      loops4,
			"v6_loop_frac":      loops6,
		},
		Paper: map[string]float64{
			"v4_complete_frac":  0.7030,
			"v6_complete_frac":  0.6403,
			"v4_missingAS_frac": 0.0158,
			"v6_missingAS_frac": 0.0332,
			"v4_missingIP_frac": 0.2812,
			"v6_missingIP_frac": 0.3265,
			"v4_loop_frac":      0.0216,
			"v6_loop_frac":      0.0550,
		},
	}, nil
}

// Figure2 reproduces Figure 2: ECDFs of unique AS paths per trace timeline
// (a) and AS-path pairs per server pair (b).
func Figure2(e *Env) (*Result, error) {
	lt, err := e.LongTerm()
	if err != nil {
		return nil, err
	}
	iv := e.Scale.LongTermInterval
	v4, v6 := timeline.ByProtocol(lt.builder.Timelines())

	paths4 := timeline.PathsPerTimeline(v4, iv)
	paths6 := timeline.PathsPerTimeline(v6, iv)
	pairs4 := timeline.PathPairsPerServerPair(v4)
	pairs6 := timeline.PathPairsPerServerPair(v6)

	var txt strings.Builder
	report.ECDFQuantiles(&txt, "Figure 2a: unique AS paths per trace timeline",
		[]report.Series{{Name: "IPv4", Values: paths4}, {Name: "IPv6", Values: paths6}}, nil)
	report.ECDFQuantiles(&txt, "Figure 2b: AS-path pairs per server pair",
		[]report.Series{{Name: "IPv4", Values: pairs4}, {Name: "IPv6", Values: pairs6}}, nil)

	e4 := stats.NewECDF(paths4)
	e6 := stats.NewECDF(paths6)
	svgs := map[string]string{
		"fig2a": plot.ECDFChart("Figure 2a: AS paths per trace timeline", "unique AS paths",
			[]plot.Series{{Name: "IPv4", Values: paths4}, {Name: "IPv6", Values: paths6}}, true),
		"fig2b": plot.ECDFChart("Figure 2b: AS-path pairs per server pair", "unique AS-path pairs",
			[]plot.Series{{Name: "IPv4", Values: pairs4}, {Name: "IPv6", Values: pairs6}}, true),
	}
	return &Result{
		ID:    "F2",
		Title: "Figure 2: AS-path counts",
		Text:  txt.String(),
		SVGs:  svgs,
		Measured: map[string]float64{
			"v4_paths_p80":        e4.Quantile(0.8),
			"v6_paths_p80":        e6.Quantile(0.8),
			"v4_single_path_frac": e4.Eval(1),
			"v6_single_path_frac": e6.Eval(1),
			"v4_pathpairs_p80":    stats.NewECDF(pairs4).Quantile(0.8),
			"v6_pathpairs_p80":    stats.NewECDF(pairs6).Quantile(0.8),
		},
		Paper: map[string]float64{
			"v4_paths_p80":        5,
			"v6_paths_p80":        6,
			"v4_single_path_frac": 0.18,
			"v6_single_path_frac": 0.16,
			"v4_pathpairs_p80":    8,
			"v6_pathpairs_p80":    9,
		},
	}, nil
}

// Figure3 reproduces Figure 3: prevalence of the most popular AS path (a)
// and routing changes per timeline (b).
func Figure3(e *Env) (*Result, error) {
	lt, err := e.LongTerm()
	if err != nil {
		return nil, err
	}
	iv := e.Scale.LongTermInterval
	v4, v6 := timeline.ByProtocol(lt.builder.Timelines())

	pop4 := timeline.PopularPrevalence(v4, iv)
	pop6 := timeline.PopularPrevalence(v6, iv)
	ch4 := timeline.ChangesPerTimeline(v4)
	ch6 := timeline.ChangesPerTimeline(v6)

	var txt strings.Builder
	report.ECDFQuantiles(&txt, "Figure 3a: prevalence of the most popular AS path",
		[]report.Series{{Name: "IPv4", Values: pop4}, {Name: "IPv6", Values: pop6}}, nil)
	report.ECDFQuantiles(&txt, "Figure 3b: routing changes per trace timeline",
		[]report.Series{{Name: "IPv4", Values: ch4}, {Name: "IPv6", Values: ch6}}, nil)

	// Paper: the most popular path was dominant (prevalence ≥ 0.5) for 80%
	// of timelines; ~90% of timelines had ≤ 30 changes over 16 months.
	domFrac4 := 1 - stats.NewECDF(pop4).Eval(0.5-1e-12)
	domFrac6 := 1 - stats.NewECDF(pop6).Eval(0.5-1e-12)
	// Normalize the change count to the paper's 485-day window so the
	// headline comparisons hold at any campaign length.
	scale := 485.0 / float64(e.Scale.LongTermDays)
	svgs := map[string]string{
		"fig3a": plot.ECDFChart("Figure 3a: prevalence of the most popular AS path", "prevalence",
			[]plot.Series{{Name: "IPv4", Values: pop4}, {Name: "IPv6", Values: pop6}}, false),
		"fig3b": plot.ECDFChart("Figure 3b: routing changes per trace timeline", "changes",
			[]plot.Series{{Name: "IPv4", Values: ch4}, {Name: "IPv6", Values: ch6}}, true),
	}
	return &Result{
		ID:    "F3",
		Title: "Figure 3: prevalence and change frequency",
		Text:  txt.String(),
		SVGs:  svgs,
		Measured: map[string]float64{
			"v4_dominant_frac":    domFrac4,
			"v6_dominant_frac":    domFrac6,
			"v4_changes_p90_485d": stats.NewECDF(ch4).Quantile(0.9) * scale,
			"v6_changes_p90_485d": stats.NewECDF(ch6).Quantile(0.9) * scale,
			"v4_nochange_frac":    stats.NewECDF(ch4).Eval(0),
			"v6_nochange_frac":    stats.NewECDF(ch6).Eval(0),
		},
		Paper: map[string]float64{
			"v4_dominant_frac":    0.80,
			"v6_dominant_frac":    0.80,
			"v4_changes_p90_485d": 30,
			"v6_changes_p90_485d": 30,
			"v4_nochange_frac":    0.18,
			"v6_nochange_frac":    0.16,
		},
	}, nil
}

// figureHeatmap renders the Figure 4/5 heat maps for one criterion.
func figureHeatmap(e *Env, id, title string, crit timeline.BestCriterion, paperP90DeltaV4, paperP90DeltaV6 float64) (*Result, error) {
	lt, err := e.LongTerm()
	if err != nil {
		return nil, err
	}
	iv := e.Scale.LongTermInterval
	v4, v6 := timeline.ByProtocol(lt.builder.Timelines())

	var txt strings.Builder
	measured := map[string]float64{}
	svgs := map[string]string{}
	for _, fam := range []struct {
		name string
		tls  []*timeline.Timeline
	}{{"IPv4", v4}, {"IPv6", v6}} {
		life, delta := timeline.LifetimeDeltaSamples(fam.tls, iv, crit)
		if len(life) == 0 {
			continue
		}
		h, err := stats.DecileHeatmap(life, delta, 10)
		if err != nil {
			return nil, err
		}
		report.Heatmap(&txt, title+" ("+fam.name+")", h, report.DurationLabel, report.MsLabel)
		key := "v4"
		if fam.name == "IPv6" {
			key = "v6"
		}
		svgs[strings.ToLower(id)+"_"+key] = plot.HeatmapChart(title+" ("+fam.name+")", plot.HeatmapData{
			XEdges: h.XEdges, YEdges: h.YEdges, Cells: h.Cells,
			FmtX: report.DurationLabel, FmtY: report.MsLabel,
		})
		measured[key+"_delta_p80_ms"] = stats.Percentile(delta, 80)
		measured[key+"_delta_p90_ms"] = stats.Percentile(delta, 90)
		// Correlation between lifetime and delta: the paper's finding is
		// that long-lived sub-optimal paths have small deltas (negative
		// association).
		measured[key+"_lifetime_delta_corr"] = stats.Pearson(logs(life), logs1p(delta))
	}
	return &Result{
		ID:       id,
		Title:    title,
		Text:     txt.String(),
		SVGs:     svgs,
		Measured: measured,
		Paper: map[string]float64{
			"v4_delta_p90_ms":        paperP90DeltaV4,
			"v6_delta_p90_ms":        paperP90DeltaV6,
			"v4_lifetime_delta_corr": -0.3, // qualitative: negative
			"v6_lifetime_delta_corr": -0.3,
		},
	}, nil
}

// Figure4 reproduces the Δ10th-percentile (baseline RTT) heat maps.
// Paper: 10% of sub-optimal paths suffer ≥48.3 ms (v4) / ≥59 ms (v6); 20%
// suffer ≥25 ms.
func Figure4(e *Env) (*Result, error) {
	return figureHeatmap(e, "F4", "Figure 4: AS-path lifetime vs Δ10th-pct RTT",
		timeline.ByP10, 48.3, 59.0)
}

// Figure5 reproduces the Δ90th-percentile heat maps. Paper: 10% of paths
// have ≥70 ms increase in the 90th percentile.
func Figure5(e *Env) (*Result, error) {
	return figureHeatmap(e, "F5", "Figure 5: AS-path lifetime vs Δ90th-pct RTT",
		timeline.ByP90, 71.3, 79.6)
}

// Figure6 reproduces Figure 6: ECDFs of the summed prevalence of
// sub-optimal AS paths at the 20/50/100 ms thresholds.
func Figure6(e *Env) (*Result, error) {
	lt, err := e.LongTerm()
	if err != nil {
		return nil, err
	}
	iv := e.Scale.LongTermInterval
	v4, v6 := timeline.ByProtocol(lt.builder.Timelines())

	var txt strings.Builder
	measured := map[string]float64{}
	var series []report.Series
	for _, th := range []float64{20, 50, 100} {
		s4 := timeline.SuboptimalPrevalence(v4, iv, th)
		s6 := timeline.SuboptimalPrevalence(v6, iv, th)
		series = append(series,
			report.Series{Name: "v4 ≥" + report.MsLabel(th), Values: s4},
			report.Series{Name: "v6 ≥" + report.MsLabel(th), Values: s6},
		)
		// Fraction of timelines whose ≥th sub-optimal paths persisted for
		// at least 20% of the study period.
		measured[key2("v4_frac_prev20_at", th)] = 1 - stats.NewECDF(s4).Eval(0.2-1e-12)
		measured[key2("v6_frac_prev20_at", th)] = 1 - stats.NewECDF(s6).Eval(0.2-1e-12)
	}
	report.ECDFQuantiles(&txt, "Figure 6: prevalence of sub-optimal AS paths", series,
		[]float64{0.6, 0.7, 0.8, 0.9, 0.95, 0.99})
	var psrs []plot.Series
	for _, sr := range series {
		psrs = append(psrs, plot.Series{Name: sr.Name, Values: sr.Values})
	}
	svgs := map[string]string{"fig6": plot.ECDFChart(
		"Figure 6: prevalence of sub-optimal AS paths", "summed prevalence", psrs, false)}
	return &Result{
		ID:       "F6",
		Title:    "Figure 6: sub-optimal path prevalence",
		Text:     txt.String(),
		SVGs:     svgs,
		Measured: measured,
		Paper: map[string]float64{
			// ~1.1% of v4 and 1.3% of v6 timelines had ≥100 ms sub-optimal
			// paths with prevalence ≥ 20%.
			"v4_frac_prev20_at100ms": 0.011,
			"v6_frac_prev20_at100ms": 0.013,
		},
	}, nil
}

// Figure7 reproduces Figure 7: short-term Δ10th/Δ90th percentile ECDFs
// computed from all 30-minute traceroutes vs the 3-hour subsample.
func Figure7(e *Env) (*Result, error) {
	st, err := e.ShortTerm()
	if err != nil {
		return nil, err
	}
	iv := e.Scale.ShortTermInterval
	all := st.builder.Timelines()
	sub := subsample(all, 3*time.Hour)

	var txt strings.Builder
	measured := map[string]float64{}
	for _, c := range []struct {
		name string
		crit timeline.BestCriterion
	}{{"d10", timeline.ByP10}, {"d90", timeline.ByP90}} {
		v4All, v6All := timeline.ByProtocol(all)
		v4Sub, v6Sub := timeline.ByProtocol(sub)
		_, dAll4 := timeline.LifetimeDeltaSamples(v4All, iv, c.crit)
		_, dSub4 := timeline.LifetimeDeltaSamples(v4Sub, 3*time.Hour, c.crit)
		_, dAll6 := timeline.LifetimeDeltaSamples(v6All, iv, c.crit)
		_, dSub6 := timeline.LifetimeDeltaSamples(v6Sub, 3*time.Hour, c.crit)
		report.ECDFQuantiles(&txt, "Figure 7 ("+c.name+"): Δ percentile vs best path",
			[]report.Series{
				{Name: "IPv4 All", Values: dAll4},
				{Name: "IPv4 3hr", Values: dSub4},
				{Name: "IPv6 All", Values: dAll6},
				{Name: "IPv6 3hr", Values: dSub6},
			}, nil)
		// The paper's point: the All and 3hr curves nearly coincide.
		measured["v4_"+c.name+"_median_all_ms"] = stats.Median(dAll4)
		measured["v4_"+c.name+"_median_3hr_ms"] = stats.Median(dSub4)
		measured["v4_"+c.name+"_gap_ms"] = abs(stats.Median(dAll4) - stats.Median(dSub4))
	}
	return &Result{
		ID:       "F7",
		Title:    "Figure 7: sampling-granularity check",
		Text:     txt.String(),
		Measured: measured,
		Paper: map[string]float64{
			// Qualitative: the curves coincide — gaps near zero.
			"v4_d10_gap_ms": 0,
			"v4_d90_gap_ms": 0,
		},
	}, nil
}

// Headlines reproduces the abstract's headline numbers.
func Headlines(e *Env) (*Result, error) {
	lt, err := e.LongTerm()
	if err != nil {
		return nil, err
	}
	iv := e.Scale.LongTermInterval
	v4, v6 := timeline.ByProtocol(lt.builder.Timelines())

	m := map[string]float64{
		"v4_change_impact_p80_ms": timeline.DeltaQuantileMs(v4, iv, timeline.ByP10, 0.8),
		"v6_change_impact_p80_ms": timeline.DeltaQuantileMs(v6, iv, timeline.ByP10, 0.8),
		"v4_frac_50ms_20pct":      timeline.FractionDeltaAtLeast(v4, iv, timeline.ByP10, 50, 0.2),
		"v6_frac_50ms_20pct":      timeline.FractionDeltaAtLeast(v6, iv, timeline.ByP10, 50, 0.2),
	}
	ds, _ := dualstackHeadlines(lt)
	for k, v := range ds {
		m[k] = v
	}
	var txt strings.Builder
	report.KeyValues(&txt, "Abstract headline numbers", m)
	return &Result{
		ID:       "HL",
		Title:    "Abstract headlines",
		Text:     txt.String(),
		Measured: m,
		Paper: map[string]float64{
			"v4_change_impact_p80_ms": 26,
			"v6_change_impact_p80_ms": 31,
			"v4_frac_50ms_20pct":      0.04,
			"v6_frac_50ms_20pct":      0.07,
			"similar_frac":            0.50,
			"v6_saves_50ms_frac":      0.037,
			"v4_saves_50ms_frac":      0.085,
		},
	}, nil
}

// ---- helpers ----

func pct(f float64) string { return fmt.Sprintf("%.2f%%", f*100) }

func key2(prefix string, th float64) string {
	return fmt.Sprintf("%s%gms", prefix, th)
}

func frac(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

func logs(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = math.Log1p(x)
	}
	return out
}

func logs1p(xs []float64) []float64 { return logs(xs) }

// subsample keeps observations aligned to the given interval.
func subsample(tls []*timeline.Timeline, interval time.Duration) []*timeline.Timeline {
	out := make([]*timeline.Timeline, 0, len(tls))
	for _, tl := range tls {
		cp := &timeline.Timeline{Key: tl.Key}
		for _, o := range tl.Obs {
			if o.At%interval == 0 {
				cp.Obs = append(cp.Obs, o)
			}
		}
		out = append(out, cp)
	}
	return out
}
