package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Result is one reproduced table or figure.
type Result struct {
	// ID is the experiment identifier from DESIGN.md (T1, F2, …).
	ID string
	// Title describes the paper artifact.
	Title string
	// Text is the rendered table/series output.
	Text string
	// Measured holds this run's key numbers; Paper holds the paper's
	// corresponding values for EXPERIMENTS.md.
	Measured map[string]float64
	Paper    map[string]float64
	// SVGs holds rendered figures keyed by file stem (e.g. "fig2a").
	SVGs map[string]string
}

// Summary renders the paper-vs-measured comparison block.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s] %s\n", r.ID, r.Title)
	keys := make([]string, 0, len(r.Measured))
	for k := range r.Measured {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	width := 0
	for _, k := range keys {
		if len(k) > width {
			width = len(k)
		}
	}
	for _, k := range keys {
		pv, ok := r.Paper[k]
		if ok {
			fmt.Fprintf(&b, "  %-*s  measured %-10.4g paper %.4g\n", width, k, r.Measured[k], pv)
		} else {
			fmt.Fprintf(&b, "  %-*s  measured %-10.4g\n", width, k, r.Measured[k])
		}
	}
	return b.String()
}

// Runner produces one experiment's result from the environment.
type Runner func(*Env) (*Result, error)

// Experiment binds an identifier to its runner.
type Experiment struct {
	ID    string
	Title string
	Run   Runner
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{"T1", "Table 1: traceroute completeness", Table1},
		{"F1", "Figure 1: RTT timeline (level shifts and diurnal oscillation)", Figure1},
		{"F2", "Figure 2: AS paths per timeline; AS-path pairs per server pair", Figure2},
		{"F3", "Figure 3: prevalence of popular AS paths; routing-change counts", Figure3},
		{"F4", "Figure 4: lifetime vs Δ10th-percentile RTT heat maps", Figure4},
		{"F5", "Figure 5: lifetime vs Δ90th-percentile RTT heat maps", Figure5},
		{"F6", "Figure 6: prevalence of sub-optimal AS paths", Figure6},
		{"F7", "Figure 7: short-term Δ percentiles, 30-min vs 3-hour sampling", Figure7},
		{"F8", "Figure 8 / §5.3: router ownership heuristics", Figure8},
		{"F9", "Figure 9 / §5.4: congestion overhead density", Figure9},
		{"F10a", "Figure 10a: RTTv4 − RTTv6 ECDFs", Figure10a},
		{"F10b", "Figure 10b: RTT/cRTT inflation ECDFs", Figure10b},
		{"S51", "§5.1: is congestion the norm in the core?", Section51},
		{"S53", "§5.3: congested link classification", Section53},
		{"HL", "Abstract headlines", Headlines},
		{"AB-paris", "Ablation: Paris vs classic traceroute", AblationParisVsClassic},
		{"AB-psd", "Ablation: diurnal PSD threshold sweep", AblationPSDThreshold},
		{"AB-impute", "Ablation: missing-hop imputation", AblationImputation},
		{"AB-crit", "Ablation: best-path criterion", AblationBestPathCriterion},
		{"AB-rel", "Ablation: inferred vs ground-truth AS relationships", AblationRelInference},
		{"EXT-shared", "Extension: IPv4/IPv6 infrastructure sharing (§8 future work)", ExtSharedInfrastructure},
		{"EXT-loss", "Extension: packet loss in the core (§8 future work)", ExtPacketLoss},
		{"EXT-colo", "Extension: colocated-cluster campaign (§2.2)", ExtColocated},
		{"EXT-asym", "Extension: forward/reverse AS-path asymmetry", ExtAsymmetry},
	}
}

// ByID returns the experiment with the given identifier.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
