package experiments

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/core/congest"
	"repro/internal/core/ownership"
	"repro/internal/core/stats"
	"repro/internal/geo"
	"repro/internal/plot"
	"repro/internal/report"
)

// Section51 reproduces §5.1: the fraction of server pairs with large RTT
// variation and the fraction with consistent (diurnal) congestion.
func Section51(e *Env) (*Result, error) {
	pd, err := e.PingMesh()
	if err != nil {
		return nil, err
	}
	det := congest.DefaultDetector()
	v4, v6 := congest.Summarize(pd.series, det)

	var txt strings.Builder
	report.Table(&txt, "§5.1: consistent congestion in the ping mesh",
		[]string{"", "IPv4", "IPv6"},
		[][]string{
			{"pairs analyzed", itoa(v4.Pairs), itoa(v6.Pairs)},
			{"p95-p5 variation >= 10ms", pct(v4.HighVariationFrac()), pct(v6.HighVariationFrac())},
			{"strong diurnal pattern (congested)", pct(v4.CongestedFrac()), pct(v6.CongestedFrac())},
		})
	m := map[string]float64{
		"v4_pairs":          float64(v4.Pairs),
		"v6_pairs":          float64(v6.Pairs),
		"v4_highvar_frac":   v4.HighVariationFrac(),
		"v6_highvar_frac":   v6.HighVariationFrac(),
		"v4_congested_frac": v4.CongestedFrac(),
		"v6_congested_frac": v6.CongestedFrac(),
	}
	return &Result{
		ID:       "S51",
		Title:    "§5.1: is congestion the norm?",
		Text:     txt.String(),
		Measured: m,
		Paper: map[string]float64{
			"v4_highvar_frac":   0.095,
			"v6_highvar_frac":   0.04,
			"v4_congested_frac": 0.02,
			"v6_congested_frac": 0.006,
		},
	}, nil
}

// linkTally aggregates the §5.3 congested-link classification.
type linkTally struct {
	internal, interconnection, unknown int
	p2p, c2p                           int
	ixp, private                       int
}

// classifyLocalizations runs ownership inference over the localization
// corpus and classifies each localized link.
func (e *Env) classifyLocalizations() (*localizationData, linkTally, []*congest.Localization, error) {
	ld, err := e.Localizations()
	if err != nil {
		return nil, linkTally{}, nil, err
	}
	var tally linkTally
	if len(ld.locs) == 0 {
		return ld, tally, nil, nil
	}
	inf := &ownership.Inferencer{Table: e.Net.BGP, Rel: e.Topo.Rel}
	res := inf.Process(ld.records)

	// Find, per localized pair, the stable traceroute to read the hop
	// before the congested segment.
	for _, loc := range ld.locs {
		var prev, cur = loc.HopAddr, loc.HopAddr
		for _, tr := range ld.records {
			if tr.Key() != loc.Key || !tr.Complete || len(tr.Hops) < loc.SegmentIndex {
				continue
			}
			if tr.Hops[loc.SegmentIndex-1].Addr != loc.HopAddr {
				continue
			}
			if loc.SegmentIndex >= 2 {
				prev = tr.Hops[loc.SegmentIndex-2].Addr
			}
			break
		}
		if _, isIXP := e.Net.IsIXPAddr(cur); isIXP {
			tally.ixp++
		}
		if prev == cur || !prev.IsValid() {
			tally.unknown++
			continue
		}
		class, typ := res.ClassifyLink(prev, cur, e.Topo.Rel)
		switch class {
		case ownership.InternalLink:
			tally.internal++
		case ownership.InterconnectionLink:
			tally.interconnection++
			switch typ {
			case ownership.P2P:
				tally.p2p++
			case ownership.C2P:
				tally.c2p++
			}
			if _, isIXP := e.Net.IsIXPAddr(cur); !isIXP {
				tally.private++
			}
		default:
			tally.unknown++
		}
	}
	return ld, tally, ld.locs, nil
}

// Section53 reproduces §5.3's congested-link accounting: internal vs
// interconnection links, and p2p vs c2p among interconnections.
func Section53(e *Env) (*Result, error) {
	ld, tally, _, err := e.classifyLocalizations()
	if err != nil {
		return nil, err
	}
	var txt strings.Builder
	report.Table(&txt, "§5.3: localized congested links",
		[]string{"category", "count"},
		[][]string{
			{"localized pairs", itoa(len(ld.locs))},
			{"internal links", itoa(tally.internal)},
			{"interconnection links", itoa(tally.interconnection)},
			{"  p2p", itoa(tally.p2p)},
			{"  c2p", itoa(tally.c2p)},
			{"  private (non-IXP)", itoa(tally.private)},
			{"  over IXP fabric", itoa(tally.ixp)},
			{"unclassified", itoa(tally.unknown)},
			{"localization failures", itoa(sumValues(ld.failures))},
		})
	if len(ld.failures) > 0 {
		var rows [][]string
		keys := make([]string, 0, len(ld.failures))
		for k := range ld.failures {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			rows = append(rows, []string{k, itoa(ld.failures[k])})
		}
		report.Table(&txt, "failure reasons", []string{"reason", "count"}, rows)
	}
	m := map[string]float64{
		"localized":           float64(len(ld.locs)),
		"internal":            float64(tally.internal),
		"interconnection":     float64(tally.interconnection),
		"p2p":                 float64(tally.p2p),
		"c2p":                 float64(tally.c2p),
		"private_frac_of_ixn": frac(tally.private, tally.interconnection),
	}
	return &Result{
		ID:       "S53",
		Title:    "§5.3: congested link classification",
		Text:     txt.String(),
		Measured: m,
		Paper: map[string]float64{
			// Paper: 3155 congested links — 1768 internal, 1121
			// interconnection (658 p2p, 463 c2p); the large majority of
			// congested interconnections were private (only ~60 IXP links).
			"internal":            1768,
			"interconnection":     1121,
			"p2p":                 658,
			"c2p":                 463,
			"private_frac_of_ixn": 0.95,
		},
	}, nil
}

// Figure9 reproduces Figure 9: the density of the congestion overhead,
// overall and for the US↔US subset.
func Figure9(e *Env) (*Result, error) {
	ld, _, locs, err := e.classifyLocalizations()
	if err != nil {
		return nil, err
	}
	_ = ld
	all := congest.OverheadSamples(locs)
	var us, trans []float64
	for _, loc := range locs {
		ca, oka := e.CityOf(loc.Key.SrcID)
		cb, okb := e.CityOf(loc.Key.DstID)
		if !oka || !okb {
			continue
		}
		if ca.Country == "US" && cb.Country == "US" {
			us = append(us, loc.OverheadMs)
		}
		if geo.Transcontinental(ca, cb) {
			trans = append(trans, loc.OverheadMs)
		}
	}

	var txt strings.Builder
	report.Density(&txt, "Figure 9: congestion overhead density (ms)",
		[]report.Series{
			{Name: "All", Values: all},
			{Name: "US-US", Values: us},
			{Name: "Transcontinental", Values: trans},
		}, 0, 100, 21)
	svgs := map[string]string{"fig9": plot.ECDFChart(
		"Figure 9: congestion overhead (ms)", "overhead (ms)",
		[]plot.Series{
			{Name: "All", Values: all},
			{Name: "US-US", Values: us},
			{Name: "Transcontinental", Values: trans},
		}, false)}
	m := map[string]float64{
		"pairs":              float64(len(all)),
		"overhead_median_ms": stats.Median(all),
		"overhead_us_median": stats.Median(us),
		"overhead_trans_med": stats.Median(trans),
		"frac_20_30ms":       fracInBand(all, 20, 30),
		"us_frac_20_30ms":    fracInBand(us, 20, 30),
	}
	return &Result{
		ID:       "F9",
		Title:    "Figure 9: congestion overhead",
		Text:     txt.String(),
		SVGs:     svgs,
		Measured: m,
		Paper: map[string]float64{
			// Typical overhead 20–30 ms (>60% of density; ~90% for US-US);
			// transcontinental links shift toward ~60 ms.
			"overhead_median_ms": 25,
			"frac_20_30ms":       0.6,
			"us_frac_20_30ms":    0.9,
			"overhead_trans_med": 60,
		},
	}, nil
}

func fracInBand(xs []float64, lo, hi float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x >= lo && x <= hi {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

func sumValues(m map[string]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}

func itoa(n int) string { return strconv.Itoa(n) }
