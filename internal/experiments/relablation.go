package experiments

import (
	"net/netip"
	"strings"
	"time"

	"repro/internal/bgp"
	"repro/internal/core/aspath"
	"repro/internal/core/ownership"
	"repro/internal/core/relinfer"
	"repro/internal/report"
)

// AblationRelInference replaces the ground-truth AS relationships with
// Gao-style relationships inferred from the observed AS paths — the
// situation the paper was actually in (it consumed CAIDA's inferences) —
// and measures what the §5.3 ownership pipeline loses.
func AblationRelInference(e *Env) (*Result, error) {
	st, err := e.ShortTerm()
	if err != nil {
		return nil, err
	}

	// Infer relationships from a route-collector view: the AS paths of a
	// broad sample of pairs at the campaign's midpoint — the analogue of
	// the BGP table dumps CAIDA's inferences are built from. (Inferring
	// from the traceroute corpus alone fails: a dozen vantage points see
	// too few AS edges, which is exactly why the paper leaned on CAIDA.)
	mid := time.Duration(e.Scale.ShortTermDays) * 12 * time.Hour
	routing := e.Dyn.RoutingAt(mid, bgp.V4)
	var paths []aspath.Path
	ases := e.Topo.ASes
	for i := 0; i < len(ases); i += 2 {
		for j := 1; j < len(ases); j += 5 {
			if i == j {
				continue
			}
			if p := routing.Path(ases[i].ASN, ases[j].ASN); p != nil {
				paths = append(paths, aspath.Path(p))
			}
		}
	}
	inferred := relinfer.Infer(paths, relinfer.DefaultConfig())
	relAcc, relEdges := inferred.Accuracy(e.Topo.Rel)

	// Run ownership twice: truth relationships vs inferred relationships.
	runOwnership := func(rel ownership.RelFunc) (coverage, accuracy float64) {
		inf := &ownership.Inferencer{Table: e.Net.BGP, Rel: rel}
		res := inf.Process(st.records)
		resolved, seen := res.Resolved()
		correct, wrong := 0, 0
		addrs := map[netip.Addr]bool{}
		for _, tr := range st.records {
			for _, h := range tr.Hops {
				if h.Responsive() {
					addrs[h.Addr] = true
				}
			}
		}
		for a := range addrs {
			owner, ok := res.Owner(a)
			if !ok {
				continue
			}
			if truth, haveTruth := e.Net.IfaceOwner(a); haveTruth {
				if owner == truth {
					correct++
				} else {
					wrong++
				}
			}
		}
		return frac(resolved, seen), frac(correct, correct+wrong)
	}
	covTruth, accTruth := runOwnership(e.Topo.Rel)
	covInf, accInf := runOwnership(inferred.Rel)

	m := map[string]float64{
		"rel_edges_classified":   float64(relEdges),
		"rel_accuracy":           relAcc,
		"ownership_cov_truth":    covTruth,
		"ownership_acc_truth":    accTruth,
		"ownership_cov_inferred": covInf,
		"ownership_acc_inferred": accInf,
		"ownership_acc_drop":     accTruth - accInf,
	}
	var txt strings.Builder
	report.KeyValues(&txt, "Ablation: inferred vs ground-truth AS relationships", m)
	return &Result{
		ID:       "AB-rel",
		Title:    "Ablation: Gao-inferred vs ground-truth AS relationships",
		Text:     txt.String(),
		Measured: m,
		Paper:    map[string]float64{
			// The paper had no ground truth and used inferred relationships
			// exclusively; this quantifies how much that choice costs.
		},
	}, nil
}
