package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/core/aspath"
	"repro/internal/core/fft"
	"repro/internal/core/timeline"
	"repro/internal/report"
	"repro/internal/trace"
)

// AblationParisVsClassic quantifies what switching to Paris traceroute
// (November 2014 in the paper) buys: the AS-path loop rate and the rate of
// spurious routing "changes" caused by per-flow load balancing.
func AblationParisVsClassic(e *Env) (*Result, error) {
	pairs := campaign.UnorderedPairs(e.Mesh)
	if len(pairs) > e.Scale.ShortPairs {
		pairs = pairs[:e.Scale.ShortPairs]
	}
	run := func(paris bool) (*timeline.Builder, error) {
		mapper := aspath.NewMapper(e.Net.BGP)
		b := timeline.NewBuilder(mapper, e.Scale.ShortTermInterval)
		cfg := campaign.TracerouteCampaignConfig{
			Pairs:    pairs,
			Duration: time.Duration(e.Scale.ShortTermDays) * 24 * time.Hour,
			Interval: e.Scale.ShortTermInterval,
			Paris:    paris,
		}
		err := campaign.TracerouteCampaign(e.Prober, cfg, campaign.Funcs{Traceroute: b.Add})
		return b, err
	}
	classic, err := run(false)
	if err != nil {
		return nil, err
	}
	paris, err := run(true)
	if err != nil {
		return nil, err
	}
	changeRate := func(b *timeline.Builder) float64 {
		changes, obs := 0, 0
		for _, tl := range b.Timelines() {
			changes += tl.NumChanges()
			obs += len(tl.Obs)
		}
		return frac(changes, obs)
	}
	m := map[string]float64{
		"classic_loop_frac":   frac(classic.TallyV4.Loops, classic.TallyV4.Total),
		"paris_loop_frac":     frac(paris.TallyV4.Loops, paris.TallyV4.Total),
		"classic_change_rate": changeRate(classic),
		"paris_change_rate":   changeRate(paris),
	}
	var txt strings.Builder
	report.KeyValues(&txt, "Ablation: Paris vs classic traceroute", m)
	fmt.Fprintf(&txt, "  (classic stitches ECMP arms: more AS-path loops and spurious changes)\n")
	return &Result{
		ID:       "AB-paris",
		Title:    "Ablation: Paris vs classic traceroute",
		Text:     txt.String(),
		Measured: m,
		Paper: map[string]float64{
			// Paper: 2.16% of (mostly classic) IPv4 traceroutes had loops.
			"classic_loop_frac": 0.0216,
		},
	}, nil
}

// AblationPSDThreshold sweeps the diurnal power-ratio threshold (the
// paper's footnote: 0.3 was chosen empirically) against the simulator's
// ground truth congested pairs, reporting precision and recall.
func AblationPSDThreshold(e *Env) (*Result, error) {
	pd, err := e.PingMesh()
	if err != nil {
		return nil, err
	}
	// Ground truth: a pair is congested when its current forward path
	// crosses a link whose congestion episode overlaps the ping window.
	window := time.Duration(e.Scale.PingDays) * 24 * time.Hour
	truth := make(map[trace.PairKey]bool)
	for k := range pd.series {
		if k.V6 {
			continue
		}
		src := e.Platform.Clusters[k.SrcID]
		dst := e.Platform.Clusters[k.DstID]
		hops, err := e.Sim.ForwardHops(src, dst, false, 1, window/2)
		if err != nil {
			continue
		}
		for _, lid := range e.Cong.CongestedOnPath(hops) {
			p, _ := e.Cong.Profile(lid)
			if p.Start < window && p.End > 0 && p.Amplitude >= 10*time.Millisecond {
				truth[k] = true
				break
			}
		}
	}

	var txt strings.Builder
	var rows [][]string
	m := map[string]float64{}
	for _, th := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6} {
		tp, fp, fn := 0, 0, 0
		for k, s := range pd.series {
			if k.V6 {
				continue
			}
			detected := s.VariationMs() >= 10 && s.DiurnalRatio() >= th
			switch {
			case detected && truth[k]:
				tp++
			case detected && !truth[k]:
				fp++
			case !detected && truth[k]:
				fn++
			}
		}
		prec := frac(tp, tp+fp)
		rec := frac(tp, tp+fn)
		rows = append(rows, []string{
			fmt.Sprintf("%.1f", th),
			fmt.Sprintf("%.3f", prec),
			fmt.Sprintf("%.3f", rec),
		})
		m[fmt.Sprintf("precision_%.1f", th)] = prec
		m[fmt.Sprintf("recall_%.1f", th)] = rec
	}
	report.Table(&txt, "Ablation: PSD threshold vs ground truth",
		[]string{"threshold", "precision", "recall"}, rows)
	m["paper_threshold"] = fft.DefaultDiurnalThreshold
	return &Result{
		ID:       "AB-psd",
		Title:    "Ablation: diurnal PSD threshold",
		Text:     txt.String(),
		Measured: m,
		Paper:    map[string]float64{"paper_threshold": 0.3},
	}, nil
}

// AblationImputation quantifies what missing-hop imputation recovers: the
// fraction of complete traceroutes usable for change detection with and
// without it.
func AblationImputation(e *Env) (*Result, error) {
	pairs := campaign.UnorderedPairs(e.Mesh)
	if len(pairs) > e.Scale.ShortPairs {
		pairs = pairs[:e.Scale.ShortPairs]
	}
	withM := aspath.NewMapper(e.Net.BGP)
	without := aspath.NewMapper(e.Net.BGP)
	without.NoImpute = true
	usableWith, usableWithout, total := 0, 0, 0
	cfg := campaign.TracerouteCampaignConfig{
		Pairs:    pairs,
		Duration: time.Duration(e.Scale.ShortTermDays) * 24 * time.Hour,
		Interval: e.Scale.ShortTermInterval,
		Paris:    true,
	}
	err := campaign.TracerouteCampaign(e.Prober, cfg, campaign.Funcs{Traceroute: func(tr *trace.Traceroute) {
		if !tr.Complete {
			return
		}
		total++
		if withM.Infer(tr).Usable() {
			usableWith++
		}
		if without.Infer(tr).Usable() {
			usableWithout++
		}
	}})
	if err != nil {
		return nil, err
	}
	m := map[string]float64{
		"usable_with_imputation":    frac(usableWith, total),
		"usable_without_imputation": frac(usableWithout, total),
		"recovered_frac":            frac(usableWith-usableWithout, total),
	}
	var txt strings.Builder
	report.KeyValues(&txt, "Ablation: missing-hop imputation", m)
	return &Result{
		ID:       "AB-impute",
		Title:    "Ablation: missing-hop imputation",
		Text:     txt.String(),
		Measured: m,
		Paper:    map[string]float64{
			// Qualitative: imputation is what lets the ~28% of traceroutes
			// with unresponsive hops "still be used" (§2.1).
		},
	}, nil
}

// AblationBestPathCriterion compares the best-path criteria the paper
// discusses (§4.2): 10th percentile, 90th percentile, standard deviation.
func AblationBestPathCriterion(e *Env) (*Result, error) {
	lt, err := e.LongTerm()
	if err != nil {
		return nil, err
	}
	iv := e.Scale.LongTermInterval
	v4, _ := timeline.ByProtocol(lt.builder.Timelines())

	var txt strings.Builder
	var rows [][]string
	m := map[string]float64{}
	for _, c := range []struct {
		name string
		crit timeline.BestCriterion
	}{
		{"p10", timeline.ByP10},
		{"p90", timeline.ByP90},
		{"std", timeline.ByStd},
	} {
		p80 := timeline.DeltaQuantileMs(v4, iv, c.crit, 0.8)
		p90 := timeline.DeltaQuantileMs(v4, iv, c.crit, 0.9)
		rows = append(rows, []string{c.name, fmt.Sprintf("%.1f", p80), fmt.Sprintf("%.1f", p90)})
		m["v4_"+c.name+"_delta_p80_ms"] = p80
		m["v4_"+c.name+"_delta_p90_ms"] = p90
	}
	report.Table(&txt, "Ablation: best-path criterion (IPv4 sub-optimal deltas)",
		[]string{"criterion", "delta p80 (ms)", "delta p90 (ms)"}, rows)
	return &Result{
		ID:       "AB-crit",
		Title:    "Ablation: best-path criterion",
		Text:     txt.String(),
		Measured: m,
		Paper: map[string]float64{
			// Paper §4.2: under the std-dev criterion, <20% of paths have
			// ≥20 ms increases — the criteria agree qualitatively.
			"v4_std_delta_p80_ms": 20,
		},
	}, nil
}
