package ipam

import (
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
)

func TestASNString(t *testing.T) {
	if got := ASN(64500).String(); got != "AS64500" {
		t.Errorf("ASN(64500) = %q", got)
	}
	if got := ASN(0).String(); got != "AS?" {
		t.Errorf("ASN(0) = %q", got)
	}
}

func TestPoolSequentialV4(t *testing.T) {
	p := MustPool("10.0.0.0/8", 16)
	want := []string{"10.0.0.0/16", "10.1.0.0/16", "10.2.0.0/16"}
	for _, w := range want {
		got, err := p.Next()
		if err != nil {
			t.Fatal(err)
		}
		if got.String() != w {
			t.Errorf("Next() = %v, want %v", got, w)
		}
	}
}

func TestPoolSequentialV6(t *testing.T) {
	p := MustPool("2001:db8::/32", 48)
	want := []string{"2001:db8::/48", "2001:db8:1::/48", "2001:db8:2::/48"}
	for _, w := range want {
		got, err := p.Next()
		if err != nil {
			t.Fatal(err)
		}
		if got.String() != w {
			t.Errorf("Next() = %v, want %v", got, w)
		}
	}
}

func TestPoolExhaustion(t *testing.T) {
	p := MustPool("192.168.0.0/30", 31)
	if _, err := p.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Next(); err == nil {
		t.Error("expected exhaustion error")
	}
}

func TestPoolEndOfAddressSpace(t *testing.T) {
	// A pool at the top of v4 space must not wrap around.
	p := MustPool("255.255.255.252/30", 31)
	a, err := p.Next()
	if err != nil || a.String() != "255.255.255.252/31" {
		t.Fatalf("first = %v, %v", a, err)
	}
	b, err := p.Next()
	if err != nil || b.String() != "255.255.255.254/31" {
		t.Fatalf("second = %v, %v", b, err)
	}
	if _, err := p.Next(); err == nil {
		t.Error("expected exhaustion at end of address space")
	}
}

func TestPoolInvalidBits(t *testing.T) {
	if _, err := NewPool(netip.MustParsePrefix("10.0.0.0/8"), 4); err == nil {
		t.Error("bits < super bits should error")
	}
	if _, err := NewPool(netip.MustParsePrefix("10.0.0.0/8"), 33); err == nil {
		t.Error("bits > 32 should error for v4")
	}
	if _, err := NewPool(netip.MustParsePrefix("2001:db8::/32"), 129); err == nil {
		t.Error("bits > 128 should error for v6")
	}
}

func TestPoolNoOverlap(t *testing.T) {
	p := MustPool("172.16.0.0/12", 20)
	var prev netip.Prefix
	for i := 0; i < 100; i++ {
		got, err := p.Next()
		if err != nil {
			t.Fatal(err)
		}
		if prev.IsValid() {
			if prev.Overlaps(got) {
				t.Fatalf("prefixes overlap: %v and %v", prev, got)
			}
			if got.Addr().Compare(prev.Addr()) <= 0 {
				t.Fatalf("prefixes not increasing: %v then %v", prev, got)
			}
		}
		prev = got
	}
}

func TestSubnetterLinks(t *testing.T) {
	s, err := NewSubnetter(netip.MustParsePrefix("192.0.2.0/24"), 30)
	if err != nil {
		t.Fatal(err)
	}
	p, a, b, err := s.NextLink()
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "192.0.2.0/30" || a.String() != "192.0.2.1" || b.String() != "192.0.2.2" {
		t.Errorf("link = %v, %v, %v", p, a, b)
	}
	p2, a2, _, err := s.NextLink()
	if err != nil {
		t.Fatal(err)
	}
	if p2.String() != "192.0.2.4/30" || a2.String() != "192.0.2.5" {
		t.Errorf("second link = %v, %v", p2, a2)
	}
}

func TestSubnetterLinksV6(t *testing.T) {
	s, err := NewSubnetter(netip.MustParsePrefix("2001:db8:ffff::/48"), 126)
	if err != nil {
		t.Fatal(err)
	}
	p, a, b, err := s.NextLink()
	if err != nil {
		t.Fatal(err)
	}
	if !p.Contains(a) || !p.Contains(b) || a == b {
		t.Errorf("bad v6 link: %v %v %v", p, a, b)
	}
}

func TestHostSeq(t *testing.T) {
	p := netip.MustParsePrefix("198.51.100.0/29")
	a, err := HostSeq(p, 1)
	if err != nil || a.String() != "198.51.100.1" {
		t.Errorf("HostSeq(1) = %v, %v", a, err)
	}
	a, err = HostSeq(p, 7)
	if err != nil || a.String() != "198.51.100.7" {
		t.Errorf("HostSeq(7) = %v, %v", a, err)
	}
	if _, err := HostSeq(p, 8); err == nil {
		t.Error("HostSeq past subnet should error")
	}
}

func TestTableLookupBasics(t *testing.T) {
	tbl := NewTable()
	mustInsert(t, tbl, "10.0.0.0/8", 100)
	mustInsert(t, tbl, "10.1.0.0/16", 200)
	mustInsert(t, tbl, "2001:db8::/32", 300)

	cases := []struct {
		ip   string
		want ASN
		ok   bool
	}{
		{"10.2.3.4", 100, true},    // covered by /8 only
		{"10.1.3.4", 200, true},    // longest match /16 wins
		{"11.0.0.1", 0, false},     // no cover
		{"2001:db8::1", 300, true}, // v6
		{"2001:db9::1", 0, false},  // v6 no cover
		{"192.168.1.1", 0, false},  // nothing inserted
	}
	for _, c := range cases {
		got, ok := tbl.Lookup(netip.MustParseAddr(c.ip))
		if ok != c.ok || got != c.want {
			t.Errorf("Lookup(%s) = %v, %v; want %v, %v", c.ip, got, ok, c.want, c.ok)
		}
	}
	if tbl.Len() != 3 {
		t.Errorf("Len = %d, want 3", tbl.Len())
	}
}

func TestTableLongestMatchOrderIndependent(t *testing.T) {
	// Insert more-specific first, then less-specific: LPM must still prefer
	// the /24.
	tbl := NewTable()
	mustInsert(t, tbl, "203.0.113.0/24", 7)
	mustInsert(t, tbl, "203.0.0.0/16", 8)
	got, ok := tbl.Lookup(netip.MustParseAddr("203.0.113.9"))
	if !ok || got != 7 {
		t.Errorf("Lookup = %v, %v; want AS7", got, ok)
	}
	got, ok = tbl.Lookup(netip.MustParseAddr("203.0.5.9"))
	if !ok || got != 8 {
		t.Errorf("Lookup = %v, %v; want AS8", got, ok)
	}
}

func TestTableReinsertOverwrites(t *testing.T) {
	tbl := NewTable()
	mustInsert(t, tbl, "10.0.0.0/8", 1)
	mustInsert(t, tbl, "10.0.0.0/8", 2)
	if tbl.Len() != 1 {
		t.Errorf("Len = %d, want 1 after reinsert", tbl.Len())
	}
	got, _ := tbl.Lookup(netip.MustParseAddr("10.9.9.9"))
	if got != 2 {
		t.Errorf("origin = %v, want 2", got)
	}
}

func TestTableLookupPrefix(t *testing.T) {
	tbl := NewTable()
	mustInsert(t, tbl, "10.0.0.0/8", 100)
	mustInsert(t, tbl, "10.1.0.0/16", 200)
	p, origin, ok := tbl.LookupPrefix(netip.MustParseAddr("10.1.2.3"))
	if !ok || origin != 200 || p.String() != "10.1.0.0/16" {
		t.Errorf("LookupPrefix = %v, %v, %v", p, origin, ok)
	}
	p, origin, ok = tbl.LookupPrefix(netip.MustParseAddr("10.200.2.3"))
	if !ok || origin != 100 || p.String() != "10.0.0.0/8" {
		t.Errorf("LookupPrefix = %v, %v, %v", p, origin, ok)
	}
	if _, _, ok := tbl.LookupPrefix(netip.MustParseAddr("11.0.0.1")); ok {
		t.Error("LookupPrefix should miss for uncovered address")
	}
}

func TestTable4In6Lookup(t *testing.T) {
	tbl := NewTable()
	mustInsert(t, tbl, "10.0.0.0/8", 42)
	got, ok := tbl.Lookup(netip.MustParseAddr("::ffff:10.1.2.3"))
	if !ok || got != 42 {
		t.Errorf("4-in-6 lookup = %v, %v; want AS42", got, ok)
	}
}

func TestTableInvalidInputs(t *testing.T) {
	tbl := NewTable()
	if err := tbl.Insert(netip.Prefix{}, 1); err == nil {
		t.Error("inserting invalid prefix should error")
	}
	if _, ok := tbl.Lookup(netip.Addr{}); ok {
		t.Error("looking up invalid addr should miss")
	}
	if _, _, ok := tbl.LookupPrefix(netip.Addr{}); ok {
		t.Error("LookupPrefix of invalid addr should miss")
	}
}

// Property: any address inside an inserted prefix maps to its origin when no
// more-specific prefix exists.
func TestTableProperty(t *testing.T) {
	tbl := NewTable()
	mustInsert(t, tbl, "100.64.0.0/10", 5)
	f := func(b [4]byte) bool {
		ip := netip.AddrFrom4(b)
		inside := netip.MustParsePrefix("100.64.0.0/10").Contains(ip)
		got, ok := tbl.Lookup(ip)
		if inside {
			return ok && got == 5
		}
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func mustInsert(t *testing.T, tbl *Table, p string, origin ASN) {
	t.Helper()
	if err := tbl.Insert(netip.MustParsePrefix(p), origin); err != nil {
		t.Fatal(err)
	}
}

func TestTSVRoundTrip(t *testing.T) {
	entries := []Entry{
		{netip.MustParsePrefix("10.0.0.0/8"), 100},
		{netip.MustParsePrefix("10.1.0.0/16"), 200},
		{netip.MustParsePrefix("2400::/32"), 300},
		{netip.MustParsePrefix("10.0.0.0/8"), 100}, // duplicate: dropped
	}
	var buf strings.Builder
	if err := WriteTSV(&buf, entries); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3 (dedup): %q", len(lines), buf.String())
	}
	tbl, err := ReadTSV(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 3 {
		t.Errorf("table len = %d", tbl.Len())
	}
	if got, _ := tbl.Lookup(netip.MustParseAddr("10.1.2.3")); got != 200 {
		t.Errorf("lookup = %v, want 200", got)
	}
	if got, _ := tbl.Lookup(netip.MustParseAddr("2400::1")); got != 300 {
		t.Errorf("v6 lookup = %v, want 300", got)
	}
}

func TestReadTSVTolerance(t *testing.T) {
	input := "# comment\n\n10.0.0.0/8\tAS100\n20.0.0.0/8 200\n"
	tbl, err := ReadTSV(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 2 {
		t.Errorf("len = %d", tbl.Len())
	}
}

func TestReadTSVRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"notaprefix\t100",
		"10.0.0.0/8\tnotanasn",
		"10.0.0.0/8",
		"10.0.0.0/8\t1\textra",
	} {
		if _, err := ReadTSV(strings.NewReader(bad)); err == nil {
			t.Errorf("input %q should error", bad)
		}
	}
}
