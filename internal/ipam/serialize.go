package ipam

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"strconv"
	"strings"
)

// WriteTSV serializes the given (prefix, origin) entries as tab-separated
// "prefix\tASN" lines, sorted, suitable for ReadTSV. Tables do not expose
// iteration (they only answer lookups), so callers pass the entries they
// know about — see Entry collectors in the builders.
func WriteTSV(w io.Writer, entries []Entry) error {
	sorted := append([]Entry(nil), entries...)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if c := a.Prefix.Addr().Compare(b.Prefix.Addr()); c != 0 {
			return c < 0
		}
		if a.Prefix.Bits() != b.Prefix.Bits() {
			return a.Prefix.Bits() < b.Prefix.Bits()
		}
		return a.Origin < b.Origin
	})
	bw := bufio.NewWriter(w)
	var prev Entry
	for i, e := range sorted {
		if i > 0 && e == prev {
			continue
		}
		prev = e
		if _, err := fmt.Fprintf(bw, "%s\t%d\n", e.Prefix, uint32(e.Origin)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Entry is one (prefix, origin AS) pair.
type Entry struct {
	Prefix netip.Prefix
	Origin ASN
}

// ReadTSV parses "prefix\tASN" lines (an optional "AS" prefix on the ASN
// is accepted) into a fresh Table. Blank lines and lines starting with '#'
// are skipped.
func ReadTSV(r io.Reader) (*Table, error) {
	t := NewTable()
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("ipam: line %d: want 'prefix asn', got %q", line, text)
		}
		prefix, err := netip.ParsePrefix(fields[0])
		if err != nil {
			return nil, fmt.Errorf("ipam: line %d: %w", line, err)
		}
		asn, err := strconv.ParseUint(strings.TrimPrefix(fields[1], "AS"), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("ipam: line %d: bad ASN %q", line, fields[1])
		}
		if err := t.Insert(prefix, ASN(asn)); err != nil {
			return nil, fmt.Errorf("ipam: line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}
