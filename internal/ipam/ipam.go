// Package ipam provides IP address management for the simulated Internet:
// prefix pools and allocation, point-to-point subnet carving, and a
// longest-prefix-match table that plays the role of the "origin AS of the
// longest matching prefix observed in BGP" mapping the paper uses to infer
// AS paths from traceroutes.
package ipam

import (
	"fmt"
	"net/netip"
)

// ASN is an autonomous system number.
type ASN uint32

// String renders the ASN in the conventional "AS64500" form. ASN 0 denotes
// "unknown" and renders as "AS?".
func (a ASN) String() string {
	if a == 0 {
		return "AS?"
	}
	return fmt.Sprintf("AS%d", uint32(a))
}

// Pool hands out consecutive, non-overlapping prefixes of a fixed size from
// a supernet. It is the simulator's registry: each AS draws its announced
// prefixes (and its unannounced infrastructure space) from pools.
type Pool struct {
	super netip.Prefix
	bits  int // size of prefixes handed out
	next  netip.Addr
	done  bool
}

// NewPool returns a pool carving prefixes of length bits out of super.
// bits must be ≥ super.Bits() and ≤ the address-family bit length.
func NewPool(super netip.Prefix, bits int) (*Pool, error) {
	super = super.Masked()
	max := 32
	if super.Addr().Is6() {
		max = 128
	}
	if bits < super.Bits() || bits > max {
		return nil, fmt.Errorf("ipam: prefix length /%d out of range for %v", bits, super)
	}
	return &Pool{super: super, bits: bits, next: super.Addr()}, nil
}

// MustPool is NewPool that panics on error, for static configuration.
func MustPool(super string, bits int) *Pool {
	p, err := NewPool(netip.MustParsePrefix(super), bits)
	if err != nil {
		panic(err)
	}
	return p
}

// Next returns the next unallocated prefix from the pool.
func (p *Pool) Next() (netip.Prefix, error) {
	if p.done || !p.super.Contains(p.next) {
		return netip.Prefix{}, fmt.Errorf("ipam: pool %v (/%d) exhausted", p.super, p.bits)
	}
	out := netip.PrefixFrom(p.next, p.bits)
	n, ok := advance(p.next, p.bits)
	if !ok {
		p.done = true
	} else {
		p.next = n
	}
	return out, nil
}

// advance returns the first address after the /bits block containing a.
// ok is false when the block is the last one in the address space.
func advance(a netip.Addr, bits int) (netip.Addr, bool) {
	b := a.As16()
	total := 128
	if a.Is4() {
		b4 := a.As4()
		copy(b[12:], b4[:])
		// operate on the low 4 bytes
		idx := 12 + (bits-1)/8
		shift := 7 - (bits-1)%8
		if carryAdd(b[:], idx, shift) {
			return netip.Addr{}, false
		}
		var out4 [4]byte
		copy(out4[:], b[12:])
		return netip.AddrFrom4(out4), true
	}
	_ = total
	idx := (bits - 1) / 8
	shift := 7 - (bits-1)%8
	b = a.As16()
	if carryAdd(b[:], idx, shift) {
		return netip.Addr{}, false
	}
	return netip.AddrFrom16(b), true
}

// carryAdd adds 1<<shift to b[idx], propagating carries toward b[0].
// It reports whether the addition overflowed past b[0].
func carryAdd(b []byte, idx, shift int) bool {
	add := uint16(1) << shift
	for i := idx; i >= 0; i-- {
		sum := uint16(b[i]) + add
		b[i] = byte(sum)
		if sum < 256 {
			return false
		}
		add = 1
	}
	return true
}

// Subnetter carves fixed-size subnets (e.g. /30 point-to-point links) and
// host addresses out of a single prefix, such as an AS's announced block.
type Subnetter struct {
	pool *Pool
}

// NewSubnetter returns a Subnetter carving /bits subnets from p.
func NewSubnetter(p netip.Prefix, bits int) (*Subnetter, error) {
	pool, err := NewPool(p, bits)
	if err != nil {
		return nil, err
	}
	return &Subnetter{pool: pool}, nil
}

// NextSubnet returns the next subnet.
func (s *Subnetter) NextSubnet() (netip.Prefix, error) { return s.pool.Next() }

// NextLink returns the next point-to-point subnet along with its two usable
// addresses (for /30 these are .1 and .2; for /126 the ::1 and ::2).
func (s *Subnetter) NextLink() (p netip.Prefix, a, b netip.Addr, err error) {
	p, err = s.pool.Next()
	if err != nil {
		return netip.Prefix{}, netip.Addr{}, netip.Addr{}, err
	}
	a = p.Addr().Next()
	b = a.Next()
	if !p.Contains(b) {
		return netip.Prefix{}, netip.Addr{}, netip.Addr{}, fmt.Errorf("ipam: subnet %v too small for two hosts", p)
	}
	return p, a, b, nil
}

// HostSeq returns a sequence of host addresses inside p, starting at the
// n-th usable address (1-based, skipping the network address).
func HostSeq(p netip.Prefix, n int) (netip.Addr, error) {
	a := p.Addr()
	for i := 0; i < n; i++ {
		a = a.Next()
		if !p.Contains(a) {
			return netip.Addr{}, fmt.Errorf("ipam: host %d out of range for %v", n, p)
		}
	}
	return a, nil
}
