package ipam

import (
	"strings"
	"testing"
)

// FuzzReadTSV asserts the parser never panics on arbitrary text and that
// accepted tables answer lookups without error.
func FuzzReadTSV(f *testing.F) {
	f.Add("10.0.0.0/8\t100\n")
	f.Add("# comment\n2400::/32\tAS300\n")
	f.Add("garbage")
	f.Add("10.0.0.0/8\t100\n10.0.0.0/8\t200\n")
	f.Fuzz(func(t *testing.T, input string) {
		tbl, err := ReadTSV(strings.NewReader(input))
		if err != nil {
			return
		}
		if tbl.Len() < 0 {
			t.Fatal("negative length")
		}
	})
}
