package ipam

import (
	"fmt"
	"net/netip"
)

// Table is a longest-prefix-match table mapping IP prefixes to their origin
// AS, as observed "in BGP". It stands in for the BGP dumps the paper uses
// for IP-to-ASN mapping. Addresses covered by no announced prefix — e.g.
// unannounced interconnect space or IXP fabric space — have no mapping,
// which is exactly how "missing AS-level data" rows arise in Table 1.
//
// The implementation is a binary trie, one per address family. Lookups walk
// address bits most-significant first and remember the deepest node that
// terminates an inserted prefix.
type Table struct {
	v4, v6 *trieNode
	n      int
}

type trieNode struct {
	child [2]*trieNode
	// set reports whether a prefix terminates at this node.
	set    bool
	origin ASN
}

// NewTable returns an empty table.
func NewTable() *Table {
	return &Table{v4: &trieNode{}, v6: &trieNode{}}
}

// Len returns the number of inserted prefixes.
func (t *Table) Len() int { return t.n }

// Insert adds a prefix with the given origin AS. Re-inserting the same
// prefix overwrites the origin (as a newer BGP announcement would).
func (t *Table) Insert(p netip.Prefix, origin ASN) error {
	if !p.IsValid() {
		return fmt.Errorf("ipam: invalid prefix %v", p)
	}
	p = p.Masked()
	n := t.rootFor(p.Addr())
	bits := addrBits(p.Addr())
	for i := 0; i < p.Bits(); i++ {
		b := bit(bits, i)
		if n.child[b] == nil {
			n.child[b] = &trieNode{}
		}
		n = n.child[b]
	}
	if !n.set {
		t.n++
	}
	n.set = true
	n.origin = origin
	return nil
}

// Lookup returns the origin AS of the longest matching prefix for ip.
func (t *Table) Lookup(ip netip.Addr) (ASN, bool) {
	if !ip.IsValid() {
		return 0, false
	}
	n := t.rootFor(ip)
	bits := addrBits(ip)
	max := 32
	if ip.Is6() && !ip.Is4In6() {
		max = 128
	}
	var best ASN
	found := false
	if n.set {
		best, found = n.origin, true
	}
	for i := 0; i < max; i++ {
		n = n.child[bit(bits, i)]
		if n == nil {
			break
		}
		if n.set {
			best, found = n.origin, true
		}
	}
	return best, found
}

// LookupPrefix returns the longest matching prefix itself along with its
// origin, which the ownership heuristics use to reason about which AS
// assigned an interface address.
func (t *Table) LookupPrefix(ip netip.Addr) (netip.Prefix, ASN, bool) {
	if !ip.IsValid() {
		return netip.Prefix{}, 0, false
	}
	n := t.rootFor(ip)
	bits := addrBits(ip)
	max := 32
	if ip.Is6() && !ip.Is4In6() {
		max = 128
	}
	var (
		bestLen    = -1
		bestOrigin ASN
	)
	if n.set {
		bestLen, bestOrigin = 0, n.origin
	}
	for i := 0; i < max; i++ {
		n = n.child[bit(bits, i)]
		if n == nil {
			break
		}
		if n.set {
			bestLen, bestOrigin = i+1, n.origin
		}
	}
	if bestLen < 0 {
		return netip.Prefix{}, 0, false
	}
	norm := ip
	if ip.Is4In6() {
		norm = ip.Unmap()
	}
	return netip.PrefixFrom(norm, bestLen).Masked(), bestOrigin, true
}

func (t *Table) rootFor(ip netip.Addr) *trieNode {
	if ip.Is4() || ip.Is4In6() {
		return t.v4
	}
	return t.v6
}

// addrBits returns the address bytes in canonical per-family form.
func addrBits(ip netip.Addr) []byte {
	if ip.Is4() || ip.Is4In6() {
		b := ip.Unmap().As4()
		return b[:]
	}
	b := ip.As16()
	return b[:]
}

// bit returns the i-th most significant bit of b.
func bit(b []byte, i int) int {
	return int(b[i/8]>>(7-i%8)) & 1
}
