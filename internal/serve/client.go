package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"
)

// Client is a view-aware query client: it learns the primary from the
// view service, caches it, and on any failure — connection refused, 409
// not-primary, 5xx refusal to acknowledge — refreshes the view and
// retries with backoff until Timeout. A failover is therefore invisible
// to the caller beyond added latency: the request lands on whichever
// primary the next view names.
type Client struct {
	// VS is the view service's base URL.
	VS string
	// HC is the underlying HTTP client (default http.DefaultClient).
	HC *http.Client
	// Timeout bounds one Get including all retries (default 20s).
	Timeout time.Duration

	mu      sync.Mutex
	primary string
}

// Response is one acknowledged query response.
type Response struct {
	Body     []byte
	Digest   string // X-S2S-Digest: the journaled response digest
	ServedBy string // X-S2S-Served-By: which replica acknowledged
	ViewNum  uint64 // X-S2S-View: the view it was acknowledged in
	CacheHit bool
}

// viewReply mirrors the view service's /view payload.
type viewReply struct {
	View  View `json:"view"`
	Acked bool `json:"acked"`
}

func (c *Client) hc() *http.Client {
	if c.HC != nil {
		return c.HC
	}
	return http.DefaultClient
}

// RefreshView re-reads the current view and returns its primary.
func (c *Client) RefreshView() (string, error) {
	resp, err := c.hc().Get(c.VS + "/view")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var vr viewReply
	if err := json.NewDecoder(resp.Body).Decode(&vr); err != nil {
		return "", fmt.Errorf("serve: view service: %w", err)
	}
	c.mu.Lock()
	c.primary = vr.View.Primary
	c.mu.Unlock()
	return vr.View.Primary, nil
}

// Get issues one query (path like "/api/series") and retries through view
// changes until it gets an acknowledged response or Timeout elapses.
func (c *Client) Get(path string, q url.Values) (*Response, error) {
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = 20 * time.Second
	}
	deadline := time.Now().Add(timeout)
	backoff := 5 * time.Millisecond
	var lastErr error
	for {
		c.mu.Lock()
		primary := c.primary
		c.mu.Unlock()
		if primary == "" {
			var err error
			if primary, err = c.RefreshView(); err != nil || primary == "" {
				lastErr = fmt.Errorf("serve: no primary: %v", err)
			}
		}
		if primary != "" {
			resp, err := c.tryOnce(primary, path, q)
			if err == nil {
				return resp, nil
			}
			var bad *BadRequestError
			if errors.As(err, &bad) {
				return nil, err
			}
			lastErr = err
			// Whatever went wrong — dead primary, stale view, unsynced
			// backup — the cure is the same: re-learn the view and retry.
			c.mu.Lock()
			c.primary = ""
			c.mu.Unlock()
		}
		if time.Now().Add(backoff).After(deadline) {
			return nil, fmt.Errorf("serve: %s not acknowledged within %v: %w", path, timeout, lastErr)
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > 250*time.Millisecond {
			backoff = 250 * time.Millisecond
		}
	}
}

// tryOnce issues the query against one candidate primary.
func (c *Client) tryOnce(primary, path string, q url.Values) (*Response, error) {
	u := primary + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	hresp, err := c.hc().Get(u)
	if err != nil {
		return nil, err
	}
	defer hresp.Body.Close()
	body, err := io.ReadAll(hresp.Body)
	if err != nil {
		return nil, err
	}
	switch {
	case hresp.StatusCode == http.StatusOK:
		viewNum, _ := strconv.ParseUint(hresp.Header.Get("X-S2S-View"), 10, 64)
		return &Response{
			Body:     body,
			Digest:   hresp.Header.Get("X-S2S-Digest"),
			ServedBy: hresp.Header.Get("X-S2S-Served-By"),
			ViewNum:  viewNum,
			CacheHit: hresp.Header.Get("X-S2S-Cache") == "hit",
		}, nil
	case hresp.StatusCode == http.StatusBadRequest:
		// Malformed query: retrying cannot help.
		return nil, &BadRequestError{Body: string(body)}
	default:
		return nil, fmt.Errorf("%s: status %d: %s", u, hresp.StatusCode, trimBody(body))
	}
}

// BadRequestError marks a non-retryable client error.
type BadRequestError struct{ Body string }

func (e *BadRequestError) Error() string { return "bad request: " + e.Body }

func trimBody(b []byte) string {
	const max = 200
	if len(b) > max {
		b = b[:max]
	}
	return string(b)
}
