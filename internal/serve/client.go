package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Client is a view-aware query client: it learns the primary from the
// view service, caches it, and on any failure — connection refused, 409
// not-primary, 5xx refusal to acknowledge — refreshes the view and
// retries with backoff until Timeout. A failover is therefore invisible
// to the caller beyond added latency: the request lands on whichever
// primary the next view names.
//
// Two mechanisms keep a fleet of Clients from harming a struggling
// service. Retry backoff is jittered (seeded, so runs stay
// reproducible): after a failover the fleet's retries spread out instead
// of arriving in lockstep waves. And a circuit breaker trips after
// BreakerThreshold consecutive failures against one primary, pausing
// attempts at it for a cooldown — while still refreshing the view, so
// the moment a new primary is published the breaker is irrelevant.
type Client struct {
	// VS is the view service's base URL.
	VS string
	// HC is the underlying HTTP client (default http.DefaultClient).
	HC *http.Client
	// Timeout bounds one Get including all retries (default 20s).
	Timeout time.Duration
	// Seed makes the retry jitter deterministic (same seed, same waits).
	Seed int64
	// BreakerThreshold is how many consecutive failures against one
	// primary trip the circuit (default 4); BreakerCooldown how long it
	// stays open before a half-open probe (default 500ms).
	BreakerThreshold int
	BreakerCooldown  time.Duration

	mu        sync.Mutex
	primary   string
	rng       *rand.Rand
	fails     int       // consecutive failures against broken
	broken    string    // the primary the circuit is open for
	openUntil time.Time // zero = circuit closed

	retries atomic.Int64
	trips   atomic.Int64
}

// Response is one acknowledged query response.
type Response struct {
	Body     []byte
	Digest   string // X-S2S-Digest: the journaled response digest
	ServedBy string // X-S2S-Served-By: which replica acknowledged
	ViewNum  uint64 // X-S2S-View: the view it was acknowledged in
	CacheHit bool
}

// viewReply mirrors the view service's /view payload.
type viewReply struct {
	View  View `json:"view"`
	Acked bool `json:"acked"`
}

func (c *Client) hc() *http.Client {
	if c.HC != nil {
		return c.HC
	}
	return http.DefaultClient
}

// Stats returns how many retry sleeps and breaker trips this client has
// performed — the chaos drill's measure of how hard the fleet had to
// work to ride the faults.
func (c *Client) Stats() (retries, breakerTrips int64) {
	return c.retries.Load(), c.trips.Load()
}

// RefreshView re-reads the current view and returns its primary.
func (c *Client) RefreshView() (string, error) {
	return c.refreshView(context.Background())
}

func (c *Client) refreshView(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.VS+"/view", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var vr viewReply
	if err := json.NewDecoder(resp.Body).Decode(&vr); err != nil {
		return "", fmt.Errorf("serve: view service: %w", err)
	}
	c.mu.Lock()
	c.primary = vr.View.Primary
	c.mu.Unlock()
	return vr.View.Primary, nil
}

// Get issues one query (path like "/api/series") and retries through
// view changes until it gets an acknowledged response or Timeout
// elapses.
func (c *Client) Get(path string, q url.Values) (*Response, error) {
	return c.GetCtx(context.Background(), path, q)
}

// GetCtx is Get under a caller context: cancellation aborts the retry
// loop and the in-flight request, and propagates into the primary's
// backend so an abandoned query stops consuming its CPU.
func (c *Client) GetCtx(ctx context.Context, path string, q url.Values) (*Response, error) {
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = 20 * time.Second
	}
	deadline := time.Now().Add(timeout)
	backoff := 5 * time.Millisecond
	var lastErr error
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		c.mu.Lock()
		primary := c.primary
		c.mu.Unlock()
		if primary == "" {
			var err error
			if primary, err = c.refreshView(ctx); err != nil || primary == "" {
				lastErr = fmt.Errorf("serve: no primary: %v", err)
			}
		}
		if primary != "" && c.circuitOpen(primary) {
			// Keep re-learning the view while the circuit is open: the
			// breaker is name-scoped, so a published failover unblocks the
			// very next attempt.
			if np, err := c.refreshView(ctx); err == nil && np != "" && np != primary {
				continue
			}
			if lastErr == nil {
				lastErr = fmt.Errorf("serve: circuit open for %s", primary)
			}
		} else if primary != "" {
			resp, err := c.tryOnce(ctx, primary, path, q)
			if err == nil {
				c.noteSuccess()
				return resp, nil
			}
			var bad *BadRequestError
			if errors.As(err, &bad) {
				return nil, err
			}
			lastErr = err
			c.noteFailure(primary)
			// Whatever went wrong — dead primary, stale view, unsynced
			// backup — the cure is the same: re-learn the view and retry.
			c.mu.Lock()
			c.primary = ""
			c.mu.Unlock()
		}
		sleep := c.jitter(backoff)
		if time.Now().Add(sleep).After(deadline) {
			return nil, fmt.Errorf("serve: %s not acknowledged within %v: %w", path, timeout, lastErr)
		}
		c.retries.Add(1)
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(sleep):
		}
		if backoff *= 2; backoff > 250*time.Millisecond {
			backoff = 250 * time.Millisecond
		}
	}
}

// jitter spreads one backoff step uniformly over [0.5d, 1.5d): enough
// randomness to break fleet lockstep, small enough to keep the
// exponential envelope.
func (c *Client) jitter(d time.Duration) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(c.Seed))
	}
	return d/2 + time.Duration(c.rng.Int63n(int64(d)))
}

// circuitOpen reports whether the breaker currently blocks attempts at
// primary. Only the primary the circuit tripped on is blocked: a view
// change publishes a different name and sails through immediately.
func (c *Client) circuitOpen(primary string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return primary == c.broken && time.Now().Before(c.openUntil)
}

// noteFailure counts a consecutive failure; at the threshold the
// circuit opens for the cooldown. Past it, each further failure (the
// half-open probe) re-opens immediately.
func (c *Client) noteFailure(primary string) {
	threshold := c.BreakerThreshold
	if threshold <= 0 {
		threshold = 4
	}
	cooldown := c.BreakerCooldown
	if cooldown <= 0 {
		cooldown = 500 * time.Millisecond
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if primary != c.broken {
		c.broken, c.fails = primary, 0
	}
	c.fails++
	if c.fails >= threshold {
		if !time.Now().Before(c.openUntil) {
			c.trips.Add(1)
		}
		c.openUntil = time.Now().Add(cooldown)
	}
}

func (c *Client) noteSuccess() {
	c.mu.Lock()
	c.fails, c.broken, c.openUntil = 0, "", time.Time{}
	c.mu.Unlock()
}

// tryOnce issues the query against one candidate primary.
func (c *Client) tryOnce(ctx context.Context, primary, path string, q url.Values) (*Response, error) {
	u := primary + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	hresp, err := c.hc().Do(req)
	if err != nil {
		return nil, err
	}
	defer hresp.Body.Close()
	body, err := io.ReadAll(hresp.Body)
	if err != nil {
		return nil, err
	}
	switch {
	case hresp.StatusCode == http.StatusOK:
		viewNum, _ := strconv.ParseUint(hresp.Header.Get("X-S2S-View"), 10, 64)
		return &Response{
			Body:     body,
			Digest:   hresp.Header.Get("X-S2S-Digest"),
			ServedBy: hresp.Header.Get("X-S2S-Served-By"),
			ViewNum:  viewNum,
			CacheHit: hresp.Header.Get("X-S2S-Cache") == "hit",
		}, nil
	case hresp.StatusCode == http.StatusBadRequest:
		// Malformed query: retrying cannot help.
		return nil, &BadRequestError{Body: string(body)}
	default:
		return nil, fmt.Errorf("%s: status %d: %s", u, hresp.StatusCode, trimBody(body))
	}
}

// BadRequestError marks a non-retryable client error.
type BadRequestError struct{ Body string }

func (e *BadRequestError) Error() string { return "bad request: " + e.Body }

func trimBody(b []byte) string {
	const max = 200
	if len(b) > max {
		b = b[:max]
	}
	return string(b)
}
