package serve

import (
	"fmt"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/trace"
)

// startTestDeployment boots a 3-replica deployment over a fresh fixture
// store (2 will hold roles, the third is the promotion spare).
func startTestDeployment(t *testing.T, cacheEntries int) (*Deployment, []trace.PairKey) {
	t.Helper()
	dir := buildStore(t, 3, 6)
	d, err := StartDeployment(DeployConfig{
		Replicas: 3,
		OpenBackend: func() (*Backend, error) {
			return OpenBackend(dir, BackendConfig{Interval: fixtureInterval})
		},
		CacheEntries: cacheEntries,
		PingInterval: 10 * time.Millisecond,
		DeadPings:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	be, err := OpenBackend(dir, BackendConfig{})
	if err != nil {
		t.Fatal(err)
	}
	pairs, _ := be.Store().PairKeys()
	return d, pairs
}

// waitForView polls until the acknowledged view number reaches at least
// num.
func waitForView(t *testing.T, d *Deployment, num uint64, timeout time.Duration) View {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		v, acked := d.VS.View()
		if v.Num >= num && acked {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("view did not reach %d within %v (at %d)", num, timeout, v.Num)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitForTransfer polls until the named replica has completed at least
// one outbound state transfer — the point after which every response it
// acknowledges is replicated to the backup first.
func waitForTransfer(t *testing.T, d *Deployment, name string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if d.Registries[name].Snapshot().Counters[MetricTransfers] >= 1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never transferred state to its backup", name)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFailover is the replication acceptance test: kill the primary while
// a client fleet is loading the service, assert the backup is promoted
// within one view change, that no acknowledged response is contradicted
// after the failover, and that cache-warmed pairs are read-your-writes on
// the new primary.
func TestFailover(t *testing.T) {
	d, pairs := startTestDeployment(t, 256)

	// Let the backup slot fill (view 2: primary + backup) before loading.
	before := waitForView(t, d, 2, 5*time.Second)
	if before.Backup == "" {
		t.Fatalf("no backup in view %+v", before)
	}
	// The view service knows about the backup before the primary's next
	// ping does; queries acked in that window are not forwarded. Wait for
	// the primary to absorb the view and sync the backup so the warm set
	// below is guaranteed replicated.
	waitForTransfer(t, d, before.Primary, 5*time.Second)

	// acked records every digest the service acknowledged, keyed by the
	// request (endpoint + encoded query). A later response for the same
	// request with a different digest is a contradiction.
	type ackMap struct {
		sync.Mutex
		m map[string]string
	}
	acked := &ackMap{m: make(map[string]string)}
	record := func(key, digest string) {
		acked.Lock()
		defer acked.Unlock()
		if prev, ok := acked.m[key]; ok && prev != digest {
			t.Errorf("digest for %s changed: %s -> %s", key, prev, digest)
		}
		acked.m[key] = digest
	}

	// Warm a small query set through the primary so the cache (and the
	// backup, via forwarding) holds them.
	warm := make([]Query, 0, 8)
	for i := 0; i < 4; i++ {
		warm = append(warm,
			Query{Endpoint: "series", Pair: pairs[i%len(pairs)]},
			Query{Endpoint: "paths", Pair: pairs[i%len(pairs)]})
	}
	cl := &Client{VS: d.VSURL, Timeout: 10 * time.Second}
	for _, q := range warm {
		resp, err := cl.Get("/api/"+q.Endpoint, q.Values())
		if err != nil {
			t.Fatal(err)
		}
		record(q.Endpoint+"?"+q.Values().Encode(), resp.Digest)
	}

	// Load phase: 8 concurrent clients issue deterministic schedules
	// while the primary is killed mid-flight. Every request must still be
	// acknowledged (the view-aware client rides the failover).
	const loaders, perLoader = 8, 30
	var wg sync.WaitGroup
	errs := make(chan error, loaders)
	for c := 0; c < loaders; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lcl := &Client{VS: d.VSURL, Timeout: 15 * time.Second}
			for _, q := range Schedule(99, c, pairs, perLoader, 1.3) {
				resp, err := lcl.Get("/api/"+q.Endpoint, q.Values())
				if err != nil {
					errs <- fmt.Errorf("loader %d: %w", c, err)
					return
				}
				record(q.Endpoint+"?"+q.Values().Encode(), resp.Digest)
			}
		}(c)
	}
	time.Sleep(50 * time.Millisecond) // let the load land on the old primary
	killed, err := d.KillPrimary()
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Promotion: exactly one view change, and the new primary is the old
	// backup — never a stateless idle server.
	after := waitForView(t, d, before.Num+1, 5*time.Second)
	if after.Num != before.Num+1 {
		t.Fatalf("failover took %d view changes (view %d -> %d)", after.Num-before.Num, before.Num, after.Num)
	}
	if killed != before.Primary {
		t.Fatalf("killed %s, but view %d primary was %s", killed, before.Num, before.Primary)
	}
	if after.Primary != before.Backup {
		t.Fatalf("promoted %s, want old backup %s", after.Primary, before.Backup)
	}

	// Safety: re-issue every acknowledged request through the new primary
	// and compare digests — record() fails the test on any contradiction.
	acked.Lock()
	keys := make([]string, 0, len(acked.m))
	for k := range acked.m {
		keys = append(keys, k)
	}
	acked.Unlock()
	recl := &Client{VS: d.VSURL, Timeout: 10 * time.Second}
	for _, k := range keys {
		ep, rawq, _ := strings.Cut(k, "?")
		vals, _ := url.ParseQuery(rawq)
		resp, err := recl.Get("/api/"+ep, vals)
		if err != nil {
			t.Fatalf("re-query %s: %v", k, err)
		}
		if resp.ServedBy != after.Primary {
			t.Fatalf("re-query %s served by %s, want new primary %s", k, resp.ServedBy, after.Primary)
		}
		record(k, resp.Digest)
	}

	// Read-your-writes on cache-warmed pairs: the warm set was forwarded
	// to the backup before each acknowledgement, so the promoted primary
	// must serve it from its transferred cache, not recompute.
	for _, q := range warm {
		resp, err := recl.Get("/api/"+q.Endpoint, q.Values())
		if err != nil {
			t.Fatal(err)
		}
		if !resp.CacheHit {
			t.Errorf("warmed query %s?%s missed the promoted primary's cache", q.Endpoint, q.Values().Encode())
		}
	}

	// The journal the new primary holds must agree with everything the
	// old primary acknowledged for the warm set.
	journal := d.Replica(after.Primary).Journal()
	if len(journal) == 0 {
		t.Fatal("promoted primary has an empty journal")
	}
}

// TestFleetEndToEnd runs a small deterministic fleet against a live
// deployment and sanity-checks the aggregate result.
func TestFleetEndToEnd(t *testing.T) {
	d, pairs := startTestDeployment(t, 512)
	res, err := RunFleet(LoadConfig{
		VS: d.VSURL, Fleet: 16, Requests: 320, Seed: 5, Pairs: pairs,
		Timeout: 15 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("fleet saw %d errors", res.Errors)
	}
	if res.OK != 320 {
		t.Fatalf("ok = %d, want 320", res.OK)
	}
	if res.CacheHits == 0 {
		t.Fatal("zipfian fleet produced zero cache hits")
	}
	if res.P50us <= 0 || res.P99us < res.P50us || res.MaxUs < res.P99us {
		t.Fatalf("incoherent percentiles: %+v", res)
	}
	if res.RPS <= 0 {
		t.Fatalf("rps = %v", res.RPS)
	}

	// Per-endpoint request counters on the primary must account for the
	// fleet's requests (cache hits included).
	v, _ := d.VS.View()
	snap := d.Registries[v.Primary].Snapshot()
	var served int64
	for name, c := range snap.Counters {
		if len(name) >= len(MetricRequests) && name[:len(MetricRequests)] == MetricRequests {
			served += c
		}
	}
	if served < 320 {
		t.Fatalf("primary served %d requests, want >= 320", served)
	}
}
