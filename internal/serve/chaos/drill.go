package chaos

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/alert"
	"repro/internal/obs/flight"
	"repro/internal/serve"
)

// DrillConfig parameterizes one chaos drill: an in-process deployment
// with every link chaos-wrapped, a seeded client fleet driving load, and
// a scripted partition that isolates the primary mid-run.
type DrillConfig struct {
	// OpenBackend builds each replica's backend. Required.
	OpenBackend func() (*serve.Backend, error)
	// Seed derives the fault schedule, the fleet's request schedules, and
	// every client's retry jitter: same seed, same drill.
	Seed int64
	// Replicas (default 3: primary, backup, and a spare to promote into).
	Replicas int
	// Fleet is the concurrent client count (default 12 — enough, against
	// MaxInFlight slots, to keep admission control shedding).
	Fleet int
	// MaxInFlight is each replica's admission bound (default 2,
	// deliberately tight so the drill proves the shed path).
	MaxInFlight int
	// CacheEntries per replica (default 0: every query exercises the
	// backend and the forward path, not the cache).
	CacheEntries int
	// PingInterval (default 25ms) and DeadPings (default 4) set the view
	// protocol's tempo; the scripted partition must outlast
	// PingInterval×DeadPings to force a failover.
	PingInterval time.Duration
	DeadPings    int
	// Horizon bounds the generated noise (default 2s).
	Horizon time.Duration
	// PartitionAfter is when (on the fault clock) the primary is cut off
	// from both the view service and the backup (default 600ms);
	// PartitionFor how long the cut lasts (default 500ms).
	PartitionAfter time.Duration
	PartitionFor   time.Duration
	// SettleViews bounds how many further view changes are acceptable
	// after the network heals (default 2).
	SettleViews uint64
	// ClientTimeout bounds one fleet request including retries
	// (default 10s).
	ClientTimeout time.Duration
	// TracePath, when set, writes the drill's flight record — scripted
	// chaos windows, view changes, and alert transitions in one file.
	TracePath string
	// MetricsInterval is the snapshot/alert cadence (default 250ms).
	MetricsInterval time.Duration
	// Logger observes the drill (optional).
	Logger *obs.Logger
}

func (c DrillConfig) fill() DrillConfig {
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.Fleet <= 0 {
		c.Fleet = 12
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2
	}
	if c.PingInterval <= 0 {
		c.PingInterval = 25 * time.Millisecond
	}
	if c.DeadPings <= 0 {
		c.DeadPings = 4
	}
	if c.Horizon <= 0 {
		c.Horizon = 2 * time.Second
	}
	if c.PartitionAfter <= 0 {
		c.PartitionAfter = 600 * time.Millisecond
	}
	if c.PartitionFor <= 0 {
		c.PartitionFor = 500 * time.Millisecond
	}
	if c.SettleViews == 0 {
		c.SettleViews = 2
	}
	if c.ClientTimeout <= 0 {
		c.ClientTimeout = 10 * time.Second
	}
	if c.MetricsInterval <= 0 {
		c.MetricsInterval = 250 * time.Millisecond
	}
	return c
}

// DrillReport is the drill's verdict, written as JSON by `s2sserve
// chaos`. SafetyOK is the headline: no acknowledged digest was ever
// contradicted — not across the partition, not by the post-heal
// re-query — and the service healed within the view-change budget.
type DrillReport struct {
	Schema    string  `json:"schema"`
	Seed      int64   `json:"seed"`
	ElapsedMS float64 `json:"elapsed_ms"`

	Requests   int `json:"requests"`
	Acked      int `json:"acked"`
	AckErrors  int `json:"ack_errors"`
	UniqueKeys int `json:"unique_keys"`

	Contradictions int `json:"contradictions"`
	RequeryErrors  int `json:"requery_errors"`

	Shed         int64 `json:"shed"`
	PingFailures int64 `json:"ping_failures"`
	Retries      int64 `json:"retries"`
	BreakerTrips int64 `json:"breaker_trips"`

	Drops       int64 `json:"chaos_drops"`
	Delays      int64 `json:"chaos_delays"`
	Dups        int64 `json:"chaos_dup_deliveries"`
	RepliesLost int64 `json:"chaos_replies_lost"`

	ViewAtPartition uint64 `json:"view_at_partition"`
	ViewAtHeal      uint64 `json:"view_at_heal"`
	FinalView       uint64 `json:"final_view"`
	PostHealViews   uint64 `json:"post_heal_view_changes"`

	Healed   bool `json:"healed"`
	SafetyOK bool `json:"safety_ok"`
}

// ackRecord is one acknowledged response the drill will hold the
// service to: the digest may never change for this query again.
type ackRecord struct {
	endpoint string
	values   url.Values
	digest   string
}

// RunDrill runs one seeded chaos drill end to end:
//
//  1. Start a deployment whose every outbound link — replica pings and
//     forwards, fleet requests — passes through a chaos Transport over
//     one shared Plan (Standard noise inside the horizon).
//  2. Script a partition isolating the primary from both the view
//     service and the backup, forcing a real failover under load.
//  3. Drive a seeded client fleet through the whole window, recording
//     every acknowledged digest and flagging contradictions live.
//  4. After the network heals, wait for an acknowledged primary and
//     re-query every acknowledged key through a clean client: the
//     digests must all still match.
//
// The same seed replays the same drill; the report says whether the
// replication protocol kept its promise under that schedule.
func RunDrill(cfg DrillConfig) (*DrillReport, error) {
	cfg = cfg.fill()
	if cfg.OpenBackend == nil {
		return nil, fmt.Errorf("chaos: drill needs an OpenBackend")
	}
	if min := time.Duration(cfg.DeadPings) * cfg.PingInterval; cfg.PartitionFor <= min {
		return nil, fmt.Errorf("chaos: partition %v cannot outlast the liveness threshold %v", cfg.PartitionFor, min)
	}
	log := cfg.Logger
	start := time.Now()

	reg := obs.NewRegistry()
	var rec *flight.Recorder
	var err error
	if cfg.TracePath != "" {
		rec, err = flight.Create(cfg.TracePath, flight.Options{
			Tool: "s2sserve-chaos", Registry: reg, MetricsInterval: cfg.MetricsInterval,
		})
	} else {
		rec = flight.New(io.Discard, flight.Options{
			Tool: "s2sserve-chaos", Registry: reg, MetricsInterval: cfg.MetricsInterval,
		})
	}
	if err != nil {
		return nil, err
	}
	alert.New(alert.Options{Registry: reg, Logger: log}).Attach(rec)

	plan := New(Standard(cfg.Seed, cfg.Horizon))
	plan.Instrument(reg)

	// The fault clock starts at the deployment's first ping, so the
	// bootstrap rides the same noise the steady state does.
	d, err := serve.StartDeployment(serve.DeployConfig{
		Replicas:     cfg.Replicas,
		OpenBackend:  cfg.OpenBackend,
		CacheEntries: cfg.CacheEntries,
		PingInterval: cfg.PingInterval,
		DeadPings:    cfg.DeadPings,
		Transport: func(self string) http.RoundTripper {
			return NewTransport(self, plan, nil)
		},
		MaxInFlight: cfg.MaxInFlight,
		Registry:    reg,
		Recorder:    rec,
		Logger:      log,
	})
	if err != nil {
		rec.Close()
		return nil, err
	}
	defer d.Close()

	// The pair universe comes straight from a backend handle, not through
	// the (chaotic) service.
	be, err := cfg.OpenBackend()
	if err != nil {
		rec.Close()
		return nil, err
	}
	keys, _ := be.Store().PairKeys()
	if len(keys) == 0 {
		rec.Close()
		return nil, fmt.Errorf("chaos: store has no indexed pairs")
	}

	// Heartbeat: advances metric snapshots so the alert engine evaluates
	// load_shed and partition_suspect while the drill runs.
	hbStop := make(chan struct{})
	var hbDone sync.WaitGroup
	hbDone.Add(1)
	go func() {
		defer hbDone.Done()
		t := time.NewTicker(cfg.MetricsInterval)
		defer t.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-t.C:
				rec.Event(serve.PhServeTick, time.Since(start), flight.Attrs{})
			}
		}
	}()

	// Script the outage relative to the running fault clock: cut the
	// primary off from the view service (so it is declared dead) and from
	// the backup (so it cannot acknowledge through the cut). Wait for a
	// backup first — a partition of a solo primary tests far less.
	rep := &DrillReport{Schema: "s2s-chaos-drill/1", Seed: cfg.Seed}
	v0, _ := d.VS.View()
	for deadline := time.Now().Add(5 * time.Second); v0.Backup == "" && time.Now().Before(deadline); {
		time.Sleep(cfg.PingInterval)
		v0, _ = d.VS.View()
	}
	rep.ViewAtPartition = v0.Num
	cutAt := plan.Elapsed() + cfg.PartitionAfter
	plan.Partition(v0.Primary, d.VSURL, cutAt, cfg.PartitionFor)
	if v0.Backup != "" {
		plan.Partition(v0.Primary, v0.Backup, cutAt, cfg.PartitionFor)
	}
	plan.Emit(rec)
	log.Printf("drill seed %d: partitioning %s at %v for %v (view %d)",
		cfg.Seed, v0.Primary, cutAt.Round(time.Millisecond), cfg.PartitionFor, v0.Num)

	// Drive the fleet until both the noise horizon and the scripted
	// partition are over. Every acknowledged digest goes into the ledger;
	// a second ack for the same query with a different digest is a
	// contradiction, whoever served it.
	endAt := cfg.Horizon
	if scriptEnd := cutAt + cfg.PartitionFor; scriptEnd > endAt {
		endAt = scriptEnd
	}
	var (
		ledgerMu                                sync.Mutex
		ledger                                  = make(map[string]*ackRecord)
		requests, acks, ackErrs, contradictions int
		retries, trips                          int64
	)
	var fleet sync.WaitGroup
	for c := 0; c < cfg.Fleet; c++ {
		fleet.Add(1)
		go func(c int) {
			defer fleet.Done()
			self := fmt.Sprintf("chaos-client-%d", c)
			cl := &serve.Client{
				VS:      d.VSURL,
				HC:      &http.Client{Transport: NewTransport(self, plan, nil)},
				Timeout: cfg.ClientTimeout,
				Seed:    cfg.Seed ^ int64(uint64(c+1)*0x9e3779b97f4a7c15),
			}
			// A generous schedule; the loop stops on the fault clock, not
			// on exhausting it.
			for _, q := range serve.Schedule(cfg.Seed, c, keys, 4096, 0) {
				if plan.Elapsed() >= endAt {
					break
				}
				vals := q.Values()
				resp, err := cl.Get("/api/"+q.Endpoint, vals)
				ledgerMu.Lock()
				requests++
				if err != nil {
					ackErrs++
					ledgerMu.Unlock()
					continue
				}
				acks++
				key := q.Endpoint + "?" + vals.Encode()
				if prev, ok := ledger[key]; ok {
					if prev.digest != resp.Digest {
						contradictions++
						log.Printf("CONTRADICTION %s: acked %s then %s", key, prev.digest, resp.Digest)
					}
				} else {
					ledger[key] = &ackRecord{endpoint: q.Endpoint, values: vals, digest: resp.Digest}
				}
				ledgerMu.Unlock()
			}
			r, t := cl.Stats()
			ledgerMu.Lock()
			retries += r
			trips += t
			ledgerMu.Unlock()
		}(c)
	}
	fleet.Wait()
	if remaining := endAt - plan.Elapsed(); remaining > 0 {
		time.Sleep(remaining) // the network must be healed before the verdict
	}

	// Post-heal: the service must converge on an acknowledged primary,
	// and every digest the drill was promised must still hold through a
	// clean (chaos-free) client.
	vh, err := d.WaitForPrimary(10 * time.Second)
	rep.Healed = err == nil
	rep.ViewAtHeal = vh.Num
	clean := &serve.Client{VS: d.VSURL, Timeout: cfg.ClientTimeout, Seed: cfg.Seed}
	requeryErrs := 0
	for _, key := range sortedKeys(ledger) {
		rc := ledger[key]
		resp, err := clean.Get("/api/"+rc.endpoint, rc.values)
		if err != nil {
			requeryErrs++
			log.Printf("requery %s: %v", key, err)
			continue
		}
		if resp.Digest != rc.digest {
			contradictions++
			log.Printf("CONTRADICTION %s: acked %s, post-heal %s", key, rc.digest, resp.Digest)
		}
	}
	vf, _ := d.VS.View()

	close(hbStop)
	hbDone.Wait()

	rep.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	rep.Requests = requests
	rep.Acked = acks
	rep.AckErrors = ackErrs
	rep.UniqueKeys = len(ledger)
	rep.Contradictions = contradictions
	rep.RequeryErrors = requeryErrs
	rep.Retries = retries
	rep.BreakerTrips = trips
	snap := reg.Snapshot()
	rep.Shed = snap.Counters[serve.MetricShed]
	rep.PingFailures = snap.Counters[serve.MetricPingFailures]
	rep.Drops, rep.Delays, rep.Dups, rep.RepliesLost = plan.Totals()
	rep.FinalView = vf.Num
	if vf.Num > vh.Num {
		rep.PostHealViews = vf.Num - vh.Num
	}
	rep.SafetyOK = rep.Healed && rep.Contradictions == 0 && rep.RequeryErrors == 0 &&
		rep.PostHealViews <= cfg.SettleViews

	if cfg.TracePath != "" {
		rec.WriteManifest(flight.Manifest{Tool: "s2sserve-chaos"})
	}
	if err := rec.Close(); err != nil {
		return rep, err
	}
	return rep, nil
}

// sortedKeys fixes the requery order so two same-seed drills replay the
// verification phase identically.
func sortedKeys(m map[string]*ackRecord) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
