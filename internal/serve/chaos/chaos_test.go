package chaos

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// sample probes a plan on a grid of edges and instants, flattening the
// verdicts for comparison.
func sample(p *Plan) []Verdict {
	var out []Verdict
	nodes := []string{"http://a", "http://b", "http://c"}
	for _, src := range nodes {
		for _, dst := range nodes {
			if src == dst {
				continue
			}
			for at := time.Duration(0); at < 3*time.Second; at += 10 * time.Millisecond {
				out = append(out, p.At(src, dst, at))
			}
		}
	}
	return out
}

// TestPlanDeterministic: the generated schedule is a pure function of
// the seed — and of nothing else, including the order edges are probed.
func TestPlanDeterministic(t *testing.T) {
	a := sample(New(Standard(42, 2*time.Second)))
	b := sample(New(Standard(42, 2*time.Second)))
	if len(a) != len(b) {
		t.Fatalf("sample sizes differ: %d != %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at probe %d: %+v != %+v", i, a[i], b[i])
		}
	}
	// Probing edges in a different order first must not change anything.
	c := New(Standard(42, 2*time.Second))
	c.At("http://c", "http://a", time.Second) // warm a late edge early
	for i, v := range sample(c) {
		if a[i] != v {
			t.Fatalf("probe order changed the schedule at %d: %+v != %+v", i, a[i], v)
		}
	}
	d := sample(New(Standard(43, 2*time.Second)))
	same := true
	for i := range a {
		if a[i] != d[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical schedules")
	}
}

// TestPlanHealsAtHorizon: no generated window survives the horizon, so
// every edge is clean afterwards — the property recovery bounds rest on.
func TestPlanHealsAtHorizon(t *testing.T) {
	p := New(Standard(7, 500*time.Millisecond))
	nodes := []string{"http://a", "http://b", "http://c", "http://d"}
	faulted := 0
	for _, src := range nodes {
		for _, dst := range nodes {
			if src == dst {
				continue
			}
			for at := time.Duration(0); at < 500*time.Millisecond; at += time.Millisecond {
				if v := p.At(src, dst, at); v != (Verdict{}) {
					faulted++
				}
			}
			for at := 500 * time.Millisecond; at < 3*time.Second; at += time.Millisecond {
				if v := p.At(src, dst, at); v != (Verdict{}) {
					t.Fatalf("%s->%s still faulted at %v past the horizon: %+v", src, dst, at, v)
				}
			}
		}
	}
	if faulted == 0 {
		t.Fatal("Standard config injected nothing inside the horizon")
	}
}

// TestScriptedPartition: scripted cuts affect exactly the named
// directions and instants, and outlive the horizon.
func TestScriptedPartition(t *testing.T) {
	p := New(Config{Seed: 1, Horizon: time.Second}) // zero rates: scripted only
	p.CutOneWay("http://a", "http://b", 100*time.Millisecond, 50*time.Millisecond)
	p.Partition("http://a", "http://c", 2*time.Second, time.Second) // past the horizon

	if v := p.At("http://a", "http://b", 120*time.Millisecond); !v.Drop {
		t.Fatal("one-way cut did not drop a->b inside its window")
	}
	if v := p.At("http://b", "http://a", 120*time.Millisecond); v.Drop {
		t.Fatal("one-way cut dropped the reverse direction")
	}
	if v := p.At("http://a", "http://b", 200*time.Millisecond); v.Drop {
		t.Fatal("cut outlived its window")
	}
	for _, e := range [][2]string{{"http://a", "http://c"}, {"http://c", "http://a"}} {
		if v := p.At(e[0], e[1], 2500*time.Millisecond); !v.Drop {
			t.Fatalf("partition missing on %s->%s past the horizon", e[0], e[1])
		}
	}
}

// scriptedTransport builds a client whose edge to srv carries exactly
// the given windows, with the fault clock pinned to zero.
func scriptedTransport(srv *httptest.Server, ws ...Window) (*http.Client, *Plan) {
	p := New(Config{Seed: 1, Horizon: time.Second})
	for _, w := range ws {
		p.Add("http://tester", srv.URL, w)
	}
	p.StartClock()
	return &http.Client{Transport: NewTransport("http://tester", p, nil)}, p
}

func TestTransportDrop(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
	}))
	defer srv.Close()
	hc, p := scriptedTransport(srv, Window{Kind: KindDrop, Start: 0, Length: time.Hour})
	_, err := hc.Get(srv.URL + "/x")
	var ce *Error
	if !errors.As(err, &ce) || ce.Op != "drop" {
		t.Fatalf("dropped request returned %v, want a chaos drop error", err)
	}
	if hits.Load() != 0 {
		t.Fatalf("dropped request reached the server %d times", hits.Load())
	}
	if drops, _, _, _ := p.Totals(); drops != 1 {
		t.Fatalf("drop not counted: totals %d", drops)
	}
}

func TestTransportDuplicate(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Write([]byte("ok"))
	}))
	defer srv.Close()
	hc, p := scriptedTransport(srv, Window{Kind: KindDuplicate, Start: 0, Length: time.Hour})
	resp, err := hc.Get(srv.URL + "/x")
	if err != nil {
		t.Fatalf("duplicated request failed: %v", err)
	}
	resp.Body.Close()
	if hits.Load() != 2 {
		t.Fatalf("duplicated request delivered %d times, want 2", hits.Load())
	}
	if _, _, dups, _ := p.Totals(); dups != 1 {
		t.Fatalf("duplicate not counted: totals %d", dups)
	}
}

func TestTransportReplyLoss(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Write([]byte("ok"))
	}))
	defer srv.Close()
	hc, p := scriptedTransport(srv, Window{Kind: KindReplyLoss, Start: 0, Length: time.Hour})
	_, err := hc.Get(srv.URL + "/x")
	var ce *Error
	if !errors.As(err, &ce) || ce.Op != "reply_loss" {
		t.Fatalf("reply-lost request returned %v, want a chaos reply_loss error", err)
	}
	// The whole point of reply loss: the server DID process the request.
	if hits.Load() != 1 {
		t.Fatalf("reply-lost request delivered %d times, want 1", hits.Load())
	}
	if _, _, _, lost := p.Totals(); lost != 1 {
		t.Fatalf("reply loss not counted: totals %d", lost)
	}
}

func TestTransportDelay(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	const delay = 30 * time.Millisecond
	hc, p := scriptedTransport(srv, Window{Kind: KindDelay, Start: 0, Length: time.Hour, Delay: delay})
	start := time.Now()
	resp, err := hc.Get(srv.URL + "/x")
	if err != nil {
		t.Fatalf("delayed request failed: %v", err)
	}
	resp.Body.Close()
	if took := time.Since(start); took < delay {
		t.Fatalf("delayed request took %v, want >= %v", took, delay)
	}
	if _, delays, _, _ := p.Totals(); delays != 1 {
		t.Fatalf("delay not counted: totals %d", delays)
	}
}

// TestTransportCleanEdge: an edge with no windows passes requests
// through untouched.
func TestTransportCleanEdge(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Write([]byte("ok"))
	}))
	defer srv.Close()
	hc, p := scriptedTransport(srv)
	resp, err := hc.Get(srv.URL + "/x")
	if err != nil {
		t.Fatalf("clean edge failed: %v", err)
	}
	resp.Body.Close()
	if hits.Load() != 1 {
		t.Fatalf("clean edge delivered %d times, want 1", hits.Load())
	}
	if d, dl, du, l := p.Totals(); d+dl+du+l != 0 {
		t.Fatalf("clean edge counted faults: %d %d %d %d", d, dl, du, l)
	}
}
