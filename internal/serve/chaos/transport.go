package chaos

import (
	"fmt"
	"io"
	"net/http"
	"time"
)

// Error is a synthetic network failure injected by a Transport. Senders
// cannot (and must not) distinguish it from a real connection failure;
// the type exists so tests can assert a fault was injected rather than
// organic.
type Error struct {
	Op  string // "drop" or "reply_loss"
	Src string
	Dst string
}

func (e *Error) Error() string { return fmt.Sprintf("chaos: %s %s -> %s", e.Op, e.Src, e.Dst) }

// Transport injects the plan's faults into every request one component
// sends. It wraps a real RoundTripper: verdicts that deliver (delay,
// duplicate, reply-loss) still cross the wire, so the destination's
// side effects — a backup applying a forward whose ack was lost — are
// real, not simulated.
type Transport struct {
	self string
	plan *Plan
	base http.RoundTripper
}

// NewTransport wraps base (default http.DefaultTransport) with the
// plan's faults for requests sent by the named component.
func NewTransport(self string, plan *Plan, base http.RoundTripper) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{self: self, plan: plan, base: base}
}

// RoundTrip applies the edge's verdict: delay first (the slow link also
// slows requests it then loses), then drop, then delivery with
// duplication or reply loss.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.plan.StartClock()
	dst := req.URL.Scheme + "://" + req.URL.Host
	v := t.plan.At(t.self, dst, t.plan.Elapsed())

	if v.Delay > 0 {
		t.plan.noteDelay()
		timer := time.NewTimer(v.Delay)
		select {
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		case <-timer.C:
		}
	}
	if v.Drop {
		t.plan.noteDrop()
		return nil, &Error{Op: "drop", Src: t.self, Dst: dst}
	}
	// A duplicated request is delivered twice; the sender sees the second
	// response (the first is consumed by "the network"). Only replayable
	// bodies can be re-sent — bodyless GETs and anything with GetBody.
	if v.Duplicate && (req.Body == nil || req.GetBody != nil) {
		first, err := t.base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		io.Copy(io.Discard, first.Body)
		first.Body.Close()
		clone := req.Clone(req.Context())
		if req.GetBody != nil {
			body, berr := req.GetBody()
			if berr != nil {
				return nil, berr
			}
			clone.Body = body
		}
		t.plan.noteDup()
		return t.base.RoundTrip(clone)
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if v.LoseReply {
		// The destination handled the request; the sender never learns.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		t.plan.noteLost()
		return nil, &Error{Op: "reply_loss", Src: t.self, Dst: dst}
	}
	return resp, nil
}
