package chaos

import (
	"net/netip"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/store"
	"repro/internal/trace"
)

// drillInterval is the fixture's campaign cadence.
const drillInterval = 6 * time.Hour

// buildDrillStore writes a small deterministic dataset — a full mesh of
// `servers` servers over `rounds` rounds — for the drill to query.
func buildDrillStore(t testing.TB, servers, rounds int) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "drill.store")
	w, err := store.Create(dir, store.Options{PairShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	w.SetProvenance("chaos-test", 42, "deadbeef")
	addr := func(id int) netip.Addr {
		return netip.AddrFrom4([4]byte{10, byte(id >> 8), byte(id), 1})
	}
	for r := 0; r < rounds; r++ {
		at := time.Duration(r) * drillInterval
		for s := 0; s < servers; s++ {
			for d := 0; d < servers; d++ {
				if s == d {
					continue
				}
				rtt := time.Duration(10+10*s+d+r) * time.Millisecond
				tr := &trace.Traceroute{
					SrcID: s, DstID: d,
					Src: addr(s), Dst: addr(d),
					At: at, Complete: true, RTT: rtt,
					Hops: []trace.Hop{
						{Addr: addr(100 + s), RTT: rtt / 2},
						{Addr: addr(d), RTT: rtt},
					},
				}
				if err := w.WriteTraceroute(tr); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestDrillPartitionSafety is the chaos suite's capstone: a seeded drill
// that partitions the primary from both the view service and the backup
// mid-load, heals, and then proves that
//
//   - no acknowledged digest was ever contradicted, during the chaos or
//     by the post-heal re-query of every acknowledged key;
//   - the service resumed (an acknowledged primary) within a bounded
//     number of view changes after the heal;
//   - the degradation machinery actually engaged: the partition forced a
//     failover, admission control shed load, and pings failed while the
//     primary was cut off.
//
// Run under -race in CI: the drill is also the serving plane's best
// concurrency workout.
func TestDrillPartitionSafety(t *testing.T) {
	dir := buildDrillStore(t, 3, 4)
	rep, err := RunDrill(DrillConfig{
		OpenBackend: func() (*serve.Backend, error) {
			return serve.OpenBackend(dir, serve.BackendConfig{Interval: drillInterval})
		},
		Seed:            7,
		Replicas:        3,
		Fleet:           10,
		MaxInFlight:     1,
		PingInterval:    20 * time.Millisecond,
		DeadPings:       3,
		Horizon:         1200 * time.Millisecond,
		PartitionAfter:  300 * time.Millisecond,
		PartitionFor:    400 * time.Millisecond,
		SettleViews:     2,
		ClientTimeout:   8 * time.Second,
		MetricsInterval: 200 * time.Millisecond,
		TracePath:       filepath.Join(t.TempDir(), "drill.flight"),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("drill: %d acked / %d requests, shed=%d ping_failures=%d retries=%d trips=%d "+
		"chaos={drops=%d delays=%d dups=%d lost=%d} views={part=%d heal=%d final=%d}",
		rep.Acked, rep.Requests, rep.Shed, rep.PingFailures, rep.Retries, rep.BreakerTrips,
		rep.Drops, rep.Delays, rep.Dups, rep.RepliesLost,
		rep.ViewAtPartition, rep.ViewAtHeal, rep.FinalView)

	if rep.Contradictions != 0 {
		t.Fatalf("%d acknowledged digests contradicted", rep.Contradictions)
	}
	if rep.RequeryErrors != 0 {
		t.Fatalf("%d acknowledged keys unanswerable after the heal", rep.RequeryErrors)
	}
	if !rep.Healed {
		t.Fatal("no acknowledged primary after the network healed")
	}
	if rep.PostHealViews > 2 {
		t.Fatalf("view churned %d times after the heal, want <= 2", rep.PostHealViews)
	}
	if !rep.SafetyOK {
		t.Fatal("report.SafetyOK = false")
	}
	if rep.Acked == 0 {
		t.Fatal("the fleet never got an acknowledged response")
	}
	// The drill must actually have hurt: a partition that forces no
	// failover, or load that never sheds, proves nothing.
	if rep.FinalView <= rep.ViewAtPartition {
		t.Fatalf("partition forced no view change (%d -> %d)", rep.ViewAtPartition, rep.FinalView)
	}
	if rep.Shed == 0 {
		t.Fatal("admission control never shed under a 10-client fleet with 1 slot")
	}
	if rep.PingFailures == 0 {
		t.Fatal("no ping failures despite cutting primary<->viewservice")
	}
	if rep.Drops+rep.Delays+rep.Dups+rep.RepliesLost == 0 {
		t.Fatal("the chaos layer injected nothing")
	}
}

// TestDrillRejectsTooShortPartition: a partition that cannot outlast the
// liveness threshold is a configuration error, not a vacuous pass.
func TestDrillRejectsTooShortPartition(t *testing.T) {
	_, err := RunDrill(DrillConfig{
		OpenBackend:  func() (*serve.Backend, error) { return nil, nil },
		PingInterval: 50 * time.Millisecond,
		DeadPings:    10,
		PartitionFor: 100 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("drill accepted a partition shorter than the liveness threshold")
	}
}
