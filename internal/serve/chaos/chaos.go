// Package chaos is the serving plane's deterministic network-fault
// layer: a seeded schedule of message-level faults — drops, added
// latency, duplicated deliveries, lost replies, and one-way or two-way
// partitions — injected between the serving components (replicas, view
// service, clients) through an http.RoundTripper.
//
// Like internal/faults on the measurement plane, a Plan is generated
// from a seed and immutable in its random part: every verdict is a pure
// function of (seed, src→dst edge, elapsed time), so two runs with the
// same seed inject byte-identical fault schedules at any concurrency.
// Unlike the measurement plane, the serving components are named by
// ephemeral URLs, so per-edge windows are derived lazily — hashing the
// edge's names seeds the edge's own generator the first time traffic
// crosses it, which keeps the schedule independent of discovery order.
//
// Two kinds of windows coexist:
//
//   - Generated noise: each directed edge draws its own drop, delay,
//     duplicate, and reply-loss windows inside [0, Horizon). After the
//     horizon the network is deterministically healed, which is what
//     lets tests assert bounded recovery.
//   - Scripted windows: Add/Partition place explicit faults (a drill
//     cuts primary↔viewservice once it knows who is who). Scripted
//     windows are the non-random part of the schedule and may extend
//     past the horizon.
//
// The plan also owns the fault clock: all transports share one epoch,
// started at the first request (or explicitly via StartClock), so "the
// partition at 500ms" means the same instant on every edge.
package chaos

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flight"
)

// Kind classifies one fault window on a directed edge.
type Kind uint8

// Fault kinds. Drop and reply-loss both surface as a transport error to
// the sender; the difference is whether the receiver saw the request —
// reply-loss exercises the "backup applied but primary never acked"
// idempotency paths that pure drops cannot reach.
const (
	// KindDrop loses the request before it reaches the destination.
	KindDrop Kind = iota
	// KindDelay adds latency to each request on the edge.
	KindDelay
	// KindDuplicate delivers each request twice (the retransmit case);
	// the sender sees one response.
	KindDuplicate
	// KindReplyLoss delivers the request but loses the response: the
	// destination processed it, the sender sees a network error.
	KindReplyLoss
)

// String names the kind for telemetry and the flight record.
func (k Kind) String() string {
	switch k {
	case KindDrop:
		return "drop"
	case KindDelay:
		return "delay"
	case KindDuplicate:
		return "duplicate"
	case KindReplyLoss:
		return "reply_loss"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// PhChaos is the flight phase of scripted chaos windows.
const PhChaos = "chaos"

// Window is one fault window on a directed edge, in plan time.
type Window struct {
	Kind   Kind
	Start  time.Duration
	Length time.Duration
	// Delay is the added per-request latency for KindDelay windows.
	Delay time.Duration
}

func (w Window) contains(at time.Duration) bool {
	return w.Start <= at && at < w.Start+w.Length
}

// Verdict is the fate of one request on its edge at one instant.
type Verdict struct {
	Drop      bool
	Duplicate bool
	LoseReply bool
	Delay     time.Duration
}

// Config parameterizes a Plan. Rates are expected window counts per
// directed edge over the horizon; lengths are mean window lengths (each
// window draws in [0.5, 1.5) of the mean).
type Config struct {
	Seed int64
	// Horizon confines generated windows to [0, Horizon): past it the
	// network is healed (default 2s). Scripted windows are not bound.
	Horizon time.Duration

	DropRate float64
	DropLen  time.Duration

	DelayRate float64
	DelayLen  time.Duration
	// MaxDelay bounds the per-request latency of a delay window
	// (default 25ms).
	MaxDelay time.Duration

	DupRate float64
	DupLen  time.Duration

	ReplyLossRate float64
	ReplyLossLen  time.Duration
}

func (c Config) fill() Config {
	if c.Horizon <= 0 {
		c.Horizon = 2 * time.Second
	}
	if c.DropLen <= 0 {
		c.DropLen = 150 * time.Millisecond
	}
	if c.DelayLen <= 0 {
		c.DelayLen = 250 * time.Millisecond
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 25 * time.Millisecond
	}
	if c.DupLen <= 0 {
		c.DupLen = 200 * time.Millisecond
	}
	if c.ReplyLossLen <= 0 {
		c.ReplyLossLen = 150 * time.Millisecond
	}
	return c
}

// Standard returns a moderate noise profile over the given horizon:
// every edge sees a little of everything, but no single window lasts
// long enough to defeat the liveness thresholds on its own.
func Standard(seed int64, horizon time.Duration) Config {
	return Config{
		Seed: seed, Horizon: horizon,
		DropRate: 1.5, DelayRate: 2, DupRate: 1, ReplyLossRate: 1,
	}
}

// Hash salts: one namespace per generated window family, so an edge's
// drop schedule never correlates with its delay schedule.
const (
	saltGenDrop uint64 = iota + 1
	saltGenDelay
	saltGenDup
	saltGenReplyLoss
)

// edge is one directed src→dst link between serving components.
type edge struct{ src, dst string }

// Plan is a chaos schedule. The generated part is immutable and purely
// seed-derived; scripted windows may be added at any time. All queries
// are safe for concurrent use.
type Plan struct {
	cfg Config

	mu     sync.Mutex
	gen    map[edge][]Window // memoized generated noise, per directed edge
	script map[edge][]Window
	epoch  time.Time // fault clock zero; set once by StartClock

	drops, delays, dups, lost atomic.Int64

	dropsC, delaysC, dupsC, lostC *obs.Counter
}

// New builds a plan from the config.
func New(cfg Config) *Plan {
	return &Plan{
		cfg:    cfg.fill(),
		gen:    make(map[edge][]Window),
		script: make(map[edge][]Window),
	}
}

// Horizon returns the generated-noise horizon: past it only scripted
// windows remain.
func (p *Plan) Horizon() time.Duration { return p.cfg.Horizon }

// StartClock starts the shared fault clock; the first call wins, so the
// epoch is either set explicitly before traffic or by the first request.
func (p *Plan) StartClock() {
	p.mu.Lock()
	if p.epoch.IsZero() {
		p.epoch = time.Now()
	}
	p.mu.Unlock()
}

// Elapsed returns the time since the fault clock started (zero before).
func (p *Plan) Elapsed() time.Duration {
	p.mu.Lock()
	epoch := p.epoch
	p.mu.Unlock()
	if epoch.IsZero() {
		return 0
	}
	return time.Since(epoch)
}

// Add places one scripted window on the directed src→dst edge.
func (p *Plan) Add(src, dst string, w Window) {
	e := edge{src, dst}
	p.mu.Lock()
	p.script[e] = append(p.script[e], w)
	p.mu.Unlock()
}

// CutOneWay drops everything src sends to dst during the window; the
// reverse direction is untouched.
func (p *Plan) CutOneWay(src, dst string, start, length time.Duration) {
	p.Add(src, dst, Window{Kind: KindDrop, Start: start, Length: length})
}

// Partition cuts both directions between a and b during the window — a
// full two-way partition of that link.
func (p *Plan) Partition(a, b string, start, length time.Duration) {
	p.CutOneWay(a, b, start, length)
	p.CutOneWay(b, a, start, length)
}

// At returns the verdict for a request crossing src→dst at plan time at.
// The generated part is a pure function of (seed, edge, at).
func (p *Plan) At(src, dst string, at time.Duration) Verdict {
	e := edge{src, dst}
	p.mu.Lock()
	gen, ok := p.gen[e]
	if !ok {
		gen = p.generate(e)
		p.gen[e] = gen
	}
	script := p.script[e]
	p.mu.Unlock()

	var v Verdict
	for _, ws := range [2][]Window{gen, script} {
		for _, w := range ws {
			if !w.contains(at) {
				continue
			}
			switch w.Kind {
			case KindDrop:
				v.Drop = true
			case KindDuplicate:
				v.Duplicate = true
			case KindReplyLoss:
				v.LoseReply = true
			case KindDelay:
				if w.Delay > v.Delay {
					v.Delay = w.Delay
				}
			}
		}
	}
	return v
}

// generate draws the edge's noise windows. Each family gets its own
// generator seeded by (seed, family salt, hashed edge names), so the
// schedule does not depend on which edges carried traffic first.
func (p *Plan) generate(e edge) []Window {
	var out []Window
	for _, fam := range [...]struct {
		kind Kind
		salt uint64
		rate float64
		mean time.Duration
	}{
		{KindDrop, saltGenDrop, p.cfg.DropRate, p.cfg.DropLen},
		{KindDelay, saltGenDelay, p.cfg.DelayRate, p.cfg.DelayLen},
		{KindDuplicate, saltGenDup, p.cfg.DupRate, p.cfg.DupLen},
		{KindReplyLoss, saltGenReplyLoss, p.cfg.ReplyLossRate, p.cfg.ReplyLossLen},
	} {
		if fam.rate <= 0 {
			continue
		}
		rng := rand.New(rand.NewSource(int64(hash(
			uint64(p.cfg.Seed), fam.salt, strHash(e.src), strHash(e.dst)))))
		n := int(fam.rate)
		if rng.Float64() < fam.rate-float64(n) {
			n++
		}
		for i := 0; i < n; i++ {
			w := Window{
				Kind:   fam.kind,
				Start:  time.Duration(rng.Int63n(int64(p.cfg.Horizon))),
				Length: fam.mean/2 + time.Duration(rng.Int63n(int64(fam.mean))),
			}
			if w.Start+w.Length > p.cfg.Horizon {
				w.Length = p.cfg.Horizon - w.Start // heal at the horizon, always
			}
			if fam.kind == KindDelay {
				w.Delay = 1 + time.Duration(rng.Int63n(int64(p.cfg.MaxDelay)))
			}
			out = append(out, w)
		}
	}
	return out
}

// Instrument registers injection counters: how much chaos was actually
// delivered (scheduled windows that saw no traffic cost nothing).
func (p *Plan) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	p.dropsC = reg.Counter("s2s_chaos_drops_total", "requests dropped by the chaos transport")
	p.delaysC = reg.Counter("s2s_chaos_delays_total", "requests delayed by the chaos transport")
	p.dupsC = reg.Counter("s2s_chaos_dup_deliveries_total", "requests delivered twice by the chaos transport")
	p.lostC = reg.Counter("s2s_chaos_replies_lost_total", "responses lost after delivery by the chaos transport")
}

// Emit announces the scripted windows to the flight record, stamped at
// their plan-time start — the drill's partitions sit in the trace next
// to the view changes and alerts they cause.
func (p *Plan) Emit(rec *flight.Recorder) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for e, ws := range p.script {
		for _, w := range ws {
			rec.Announce(PhChaos, w.Start, flight.Attrs{
				S: w.Kind.String() + " " + e.src + ">" + e.dst, N: int64(w.Length),
			})
		}
	}
}

// Totals returns how many faults of each kind were injected so far.
func (p *Plan) Totals() (drops, delays, dups, repliesLost int64) {
	return p.drops.Load(), p.delays.Load(), p.dups.Load(), p.lost.Load()
}

func (p *Plan) noteDrop()  { p.drops.Add(1); p.dropsC.Inc() }
func (p *Plan) noteDelay() { p.delays.Add(1); p.delaysC.Inc() }
func (p *Plan) noteDup()   { p.dups.Add(1); p.dupsC.Inc() }
func (p *Plan) noteLost()  { p.lost.Add(1); p.lostC.Inc() }

// hash is the repo-standard FNV-1a mix over 64-bit words.
func hash(vals ...uint64) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range vals {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	return h
}

// strHash folds a component name (a base URL) into one hash word.
func strHash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
