package serve

import (
	"testing"

	"repro/internal/obs"
)

func TestViewProgression(t *testing.T) {
	reg := obs.NewRegistry()
	vs := NewViewService(ViewOptions{DeadPings: 3, Registry: reg})

	// First ping wins the primary slot of view 1.
	v := vs.Ping("A", 0)
	if v.Num != 1 || v.Primary != "A" || v.Backup != "" {
		t.Fatalf("first view = %+v", v)
	}
	// A volunteer cannot become backup before the primary acks view 1.
	if v = vs.Ping("B", 0); v.Num != 1 || v.Backup != "" {
		t.Fatalf("view advanced before primary ack: %+v", v)
	}
	// Primary acks; the volunteer's next ping enlists it as backup.
	vs.Ping("A", 1)
	if v = vs.Ping("B", 0); v.Num != 2 || v.Primary != "A" || v.Backup != "B" {
		t.Fatalf("backup not enlisted: %+v", v)
	}
	if got := reg.Snapshot().Counters[MetricViewChanges]; got != 2 {
		t.Fatalf("view changes = %d, want 2", got)
	}
}

func TestViewFailoverPromotesBackup(t *testing.T) {
	vs := NewViewService(ViewOptions{DeadPings: 3})
	vs.Ping("A", 0)
	vs.Ping("A", 1)
	vs.Ping("B", 0)
	vs.Ping("A", 2)
	vs.Ping("C", 0) // idle spare

	// A stops pinging; B and C stay alive across the liveness threshold.
	for i := 0; i < 3; i++ {
		vs.Tick()
		vs.Ping("B", 2)
		vs.Ping("C", 0)
	}
	v, _ := vs.View()
	if v.Num != 3 || v.Primary != "B" || v.Backup != "C" {
		t.Fatalf("after primary death: %+v, want view 3 primary B backup C", v)
	}
}

func TestViewStuckWithoutAck(t *testing.T) {
	vs := NewViewService(ViewOptions{DeadPings: 2})
	vs.Ping("A", 0)
	// A never acks view 1 and dies; B keeps pinging. The view must not
	// move — promoting would hand primaryship to a server that never knew
	// the state it is supposed to have.
	for i := 0; i < 6; i++ {
		vs.Tick()
		vs.Ping("B", 0)
	}
	v, acked := vs.View()
	if v.Num != 1 || v.Primary != "A" || acked {
		t.Fatalf("unacked view moved: %+v acked=%t", v, acked)
	}
}

func TestViewRestartedPrimaryIsDead(t *testing.T) {
	vs := NewViewService(ViewOptions{DeadPings: 3})
	vs.Ping("A", 0)
	vs.Ping("A", 1)
	vs.Ping("B", 0)
	vs.Ping("A", 2)
	// A restarts: pings with view number 0. Its journal and cache are
	// gone, so the backup must take over even though A is "alive".
	v := vs.Ping("A", 0)
	if v.Num != 3 || v.Primary != "B" {
		t.Fatalf("restarted primary kept the role: %+v", v)
	}
}

func TestViewRestartedBackupReplaced(t *testing.T) {
	vs := NewViewService(ViewOptions{DeadPings: 3})
	vs.Ping("A", 0)
	vs.Ping("A", 1)
	vs.Ping("B", 0)
	vs.Ping("A", 2)
	// B restarts. It loses the backup slot in view 3 (state transfer is
	// per-view, so re-enlisting it forces a fresh transfer)...
	v := vs.Ping("B", 0)
	if v.Num != 3 || v.Primary != "A" || v.Backup != "" {
		t.Fatalf("restarted backup kept the slot: %+v", v)
	}
	// ...and after the primary acks, the next tick re-enlists it.
	vs.Ping("A", 3)
	vs.Tick()
	v, _ = vs.View()
	if v.Num != 4 || v.Backup != "B" {
		t.Fatalf("restarted backup not re-enlisted: %+v", v)
	}
}

func TestViewNoPromotionWithoutBackup(t *testing.T) {
	vs := NewViewService(ViewOptions{DeadPings: 2})
	vs.Ping("A", 0)
	vs.Ping("A", 1)
	// A dies with no backup ever enlisted: the service must hold view 1
	// (unavailable) rather than invent a primary from nothing.
	vs.Tick()
	vs.Tick()
	vs.Tick()
	v, _ := vs.View()
	if v.Num != 1 || v.Primary != "A" {
		t.Fatalf("view moved without a promotable backup: %+v", v)
	}
}
