package serve

import (
	"testing"

	"repro/internal/obs"
)

func TestViewProgression(t *testing.T) {
	reg := obs.NewRegistry()
	vs := NewViewService(ViewOptions{DeadPings: 3, Registry: reg})

	// First ping wins the primary slot of view 1.
	v := vs.Ping("A", 0)
	if v.Num != 1 || v.Primary != "A" || v.Backup != "" {
		t.Fatalf("first view = %+v", v)
	}
	// A volunteer cannot become backup before the primary acks view 1.
	if v = vs.Ping("B", 0); v.Num != 1 || v.Backup != "" {
		t.Fatalf("view advanced before primary ack: %+v", v)
	}
	// Primary acks; the volunteer's next ping enlists it as backup.
	vs.Ping("A", 1)
	if v = vs.Ping("B", 0); v.Num != 2 || v.Primary != "A" || v.Backup != "B" {
		t.Fatalf("backup not enlisted: %+v", v)
	}
	if got := reg.Snapshot().Counters[MetricViewChanges]; got != 2 {
		t.Fatalf("view changes = %d, want 2", got)
	}
}

func TestViewFailoverPromotesBackup(t *testing.T) {
	vs := NewViewService(ViewOptions{DeadPings: 3})
	vs.Ping("A", 0)
	vs.Ping("A", 1)
	vs.Ping("B", 0)
	vs.Ping("A", 2)
	vs.Ping("C", 0) // idle spare

	// A stops pinging; B and C stay alive across the liveness threshold.
	for i := 0; i < 3; i++ {
		vs.Tick()
		vs.Ping("B", 2)
		vs.Ping("C", 0)
	}
	v, _ := vs.View()
	if v.Num != 3 || v.Primary != "B" || v.Backup != "C" {
		t.Fatalf("after primary death: %+v, want view 3 primary B backup C", v)
	}
}

func TestViewStuckWithoutAck(t *testing.T) {
	vs := NewViewService(ViewOptions{DeadPings: 2})
	vs.Ping("A", 0)
	// A never acks view 1 and dies; B keeps pinging. The view must not
	// move — promoting would hand primaryship to a server that never knew
	// the state it is supposed to have.
	for i := 0; i < 6; i++ {
		vs.Tick()
		vs.Ping("B", 0)
	}
	v, acked := vs.View()
	if v.Num != 1 || v.Primary != "A" || acked {
		t.Fatalf("unacked view moved: %+v acked=%t", v, acked)
	}
}

func TestViewRestartedPrimaryIsDead(t *testing.T) {
	vs := NewViewService(ViewOptions{DeadPings: 3})
	vs.Ping("A", 0)
	vs.Ping("A", 1)
	vs.Ping("B", 0)
	vs.Ping("A", 2)
	// A restarts: pings with view number 0. Its journal and cache are
	// gone, so the backup must take over even though A is "alive".
	v := vs.Ping("A", 0)
	if v.Num != 3 || v.Primary != "B" {
		t.Fatalf("restarted primary kept the role: %+v", v)
	}
}

func TestViewRestartedBackupReplaced(t *testing.T) {
	vs := NewViewService(ViewOptions{DeadPings: 3})
	vs.Ping("A", 0)
	vs.Ping("A", 1)
	vs.Ping("B", 0)
	vs.Ping("A", 2)
	// B restarts. It loses the backup slot in view 3 (state transfer is
	// per-view, so re-enlisting it forces a fresh transfer)...
	v := vs.Ping("B", 0)
	if v.Num != 3 || v.Primary != "A" || v.Backup != "" {
		t.Fatalf("restarted backup kept the slot: %+v", v)
	}
	// ...and after the primary acks, the next tick re-enlists it.
	vs.Ping("A", 3)
	vs.Tick()
	v, _ = vs.View()
	if v.Num != 4 || v.Backup != "B" {
		t.Fatalf("restarted backup not re-enlisted: %+v", v)
	}
}

// TestViewDuplicatedPingsHarmless replays every ping twice — the chaos
// transport's retransmit case. The protocol must be idempotent: the
// duplicate deliveries change nothing, including the view-change count.
func TestViewDuplicatedPingsHarmless(t *testing.T) {
	reg := obs.NewRegistry()
	vs := NewViewService(ViewOptions{DeadPings: 3, Registry: reg})
	for _, p := range []struct {
		addr string
		num  uint64
	}{
		{"A", 0}, // A becomes primary of view 1
		{"A", 1}, // A acks
		{"B", 0}, // B enlisted as backup of view 2
		{"A", 2}, // A acks view 2
		{"B", 2}, // B reports progress
	} {
		vs.Ping(p.addr, p.num)
		vs.Ping(p.addr, p.num) // the network delivered it twice
	}
	v, acked := vs.View()
	if v.Num != 2 || v.Primary != "A" || v.Backup != "B" || !acked {
		t.Fatalf("after duplicated pings: %+v acked=%t", v, acked)
	}
	if got := reg.Snapshot().Counters[MetricViewChanges]; got != 2 {
		t.Fatalf("view changes = %d, want 2", got)
	}
}

// TestViewDelayedAckNeitherAcksNorRegresses delivers the primary's ack
// for an old view late (the chaos delay case). A stale ack must not
// acknowledge the current view, and the service must hold — not regress,
// not promote — until the real ack lands.
func TestViewDelayedAckNeitherAcksNorRegresses(t *testing.T) {
	vs := NewViewService(ViewOptions{DeadPings: 3})
	vs.Ping("A", 0)
	vs.Ping("A", 1)
	vs.Ping("B", 0) // view 2: primary A, backup B, unacked

	vs.Ping("A", 1) // delayed duplicate of the view-1 ack arrives now
	if v, acked := vs.View(); v.Num != 2 || acked {
		t.Fatalf("stale ack moved the view: %+v acked=%t", v, acked)
	}
	// Unacked, the view is frozen even across liveness ticks.
	for i := 0; i < 5; i++ {
		vs.Tick()
		vs.Ping("A", 1)
		vs.Ping("B", 0)
	}
	if v, acked := vs.View(); v.Num != 2 || v.Primary != "A" || acked {
		t.Fatalf("frozen view drifted: %+v acked=%t", v, acked)
	}
	vs.Ping("A", 2) // the real ack
	if v, acked := vs.View(); v.Num != 2 || !acked {
		t.Fatalf("real ack not applied: %+v acked=%t", v, acked)
	}
}

// TestViewPartitionedPrimaryNeverReclaims partitions the primary away
// (silence), lets the backup take over, then heals the partition. The
// deposed primary — still carrying its old view number — must come back
// as idle, never as primary: its journal is stale the moment the
// promoted backup acknowledges anything new.
func TestViewPartitionedPrimaryNeverReclaims(t *testing.T) {
	vs := NewViewService(ViewOptions{DeadPings: 3})
	vs.Ping("A", 0)
	vs.Ping("A", 1)
	vs.Ping("B", 0)
	vs.Ping("A", 2)
	vs.Ping("C", 0) // idle spare

	// A is partitioned: B and C keep pinging, A goes silent.
	for i := 0; i < 3; i++ {
		vs.Tick()
		vs.Ping("B", 2)
		vs.Ping("C", 0)
	}
	v, _ := vs.View()
	if v.Num != 3 || v.Primary != "B" || v.Backup != "C" {
		t.Fatalf("failover did not happen: %+v", v)
	}
	// The partition heals; A still believes in view 2.
	if v = vs.Ping("A", 2); v.Primary != "B" {
		t.Fatalf("healed primary reclaimed the role: %+v", v)
	}
	vs.Ping("B", 3) // B acks its promotion
	for i := 0; i < 3; i++ {
		vs.Tick()
		vs.Ping("A", 2)
		vs.Ping("B", 3)
		vs.Ping("C", 3)
	}
	v, _ = vs.View()
	if v.Primary != "B" || v.Backup != "C" {
		t.Fatalf("deposed primary displaced a role holder: %+v", v)
	}
}

// TestViewHealedPrimaryReenlistsAsBackup is the two-replica version: the
// partitioned primary's old backup is promoted with no spare to enlist,
// and when the partition heals the old primary is re-enlisted as the new
// backup — state flows back to it by transfer, not by trust.
func TestViewHealedPrimaryReenlistsAsBackup(t *testing.T) {
	vs := NewViewService(ViewOptions{DeadPings: 3})
	vs.Ping("A", 0)
	vs.Ping("A", 1)
	vs.Ping("B", 0)
	vs.Ping("A", 2)

	for i := 0; i < 3; i++ {
		vs.Tick()
		vs.Ping("B", 2)
	}
	v, _ := vs.View()
	if v.Num != 3 || v.Primary != "B" || v.Backup != "" {
		t.Fatalf("solo promotion missing: %+v", v)
	}
	vs.Ping("B", 3) // B acks
	// A heals: its next ping (old view number) makes it the only idle
	// live server, and the next tick enlists it as backup.
	vs.Ping("A", 2)
	vs.Tick()
	v, _ = vs.View()
	if v.Num != 4 || v.Primary != "B" || v.Backup != "A" {
		t.Fatalf("healed primary not re-enlisted as backup: %+v", v)
	}
}

func TestViewNoPromotionWithoutBackup(t *testing.T) {
	vs := NewViewService(ViewOptions{DeadPings: 2})
	vs.Ping("A", 0)
	vs.Ping("A", 1)
	// A dies with no backup ever enlisted: the service must hold view 1
	// (unavailable) rather than invent a primary from nothing.
	vs.Tick()
	vs.Tick()
	vs.Tick()
	v, _ := vs.View()
	if v.Num != 1 || v.Primary != "A" {
		t.Fatalf("view moved without a promotable backup: %+v", v)
	}
}
