package serve

import (
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flight"
)

// View is one numbered replica assignment. Views only ever move forward:
// every change — first primary, backup enlisted, failover promotion —
// increments Num, and replicas use the number to reject stale peers.
type View struct {
	Num     uint64 `json:"num"`
	Primary string `json:"primary"`
	Backup  string `json:"backup,omitempty"`
}

// DefaultDeadPings is how many ping intervals of silence mark a replica
// dead.
const DefaultDeadPings = 5

// ViewOptions parameterizes a ViewService.
type ViewOptions struct {
	// DeadPings overrides the liveness threshold (default 5 intervals).
	DeadPings int
	// Registry and Recorder observe view changes (optional).
	Registry *obs.Registry
	Recorder *flight.Recorder
	Logger   *obs.Logger
}

// ViewService is the replication coordinator: the single (unreplicated,
// deliberately simple) process that decides who is primary and who is
// backup. Replicas ping it every interval carrying the view number they
// have processed; the service detects death by missed pings and publishes
// a new view. Two rules keep promotions safe:
//
//   - The view can only advance after the current primary has acknowledged
//     the current view (pinged with its number). Until then the service
//     holds the view steady even through failures, because a primary that
//     never learned it was primary cannot have transferred state.
//   - A new primary is always the old backup — never a fresh idle server —
//     so the acknowledged state (response journal + hot cache) survives
//     every single-failure transition.
//
// A restarted replica pings with view number 0; the service treats that as
// a death (its in-memory state is gone) and replaces it.
type ViewService struct {
	mu        sync.Mutex
	cur       View
	acked     bool
	tick      int64
	last      map[string]int64 // replica -> tick of most recent ping
	deadPings int64

	changesC *obs.Counter
	numG     *obs.Gauge
	log      *obs.Logger
	rec      *flight.Recorder
	start    time.Time
}

// NewViewService returns a view service; drive liveness with Tick.
func NewViewService(o ViewOptions) *ViewService {
	if o.DeadPings <= 0 {
		o.DeadPings = DefaultDeadPings
	}
	vs := &ViewService{
		last:      make(map[string]int64),
		deadPings: int64(o.DeadPings),
		log:       o.Logger,
		rec:       o.Recorder,
		start:     time.Now(),
	}
	if o.Registry != nil {
		vs.changesC = o.Registry.Counter(MetricViewChanges, "view changes published by the view service")
		vs.numG = o.Registry.Gauge(MetricViewNum, "current view number")
	}
	return vs
}

// Ping records a replica's heartbeat and returns the current view. num is
// the view number the replica has processed (0 = fresh start).
func (vs *ViewService) Ping(addr string, num uint64) View {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	vs.last[addr] = vs.tick
	switch {
	case vs.cur.Num == 0:
		// First replica ever becomes primary of view 1.
		vs.setView(View{Num: 1, Primary: addr})
	case addr == vs.cur.Primary:
		if num == vs.cur.Num {
			vs.acked = true
		} else if num == 0 && vs.acked {
			// The primary restarted: its journal and cache are gone, so it
			// is dead for replication purposes. Promote the backup.
			vs.advance(true)
		}
	case addr == vs.cur.Backup:
		if num == 0 && vs.acked {
			// A restarted backup lost its transferred state; drop it so the
			// next view re-enlists it as a fresh backup (with a new
			// transfer).
			vs.setView(View{Num: vs.cur.Num + 1, Primary: vs.cur.Primary})
		}
	default:
		if vs.cur.Backup == "" && vs.acked {
			vs.setView(View{Num: vs.cur.Num + 1, Primary: vs.cur.Primary, Backup: addr})
		}
	}
	return vs.cur
}

// Tick advances the liveness clock one ping interval and applies any
// pending view change. The daemon calls it on a timer; tests call it
// directly for determinism.
func (vs *ViewService) Tick() {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	vs.tick++
	if vs.cur.Num == 0 || !vs.acked {
		return
	}
	primaryDead := vs.deadLocked(vs.cur.Primary)
	backupDead := vs.cur.Backup != "" && vs.deadLocked(vs.cur.Backup)
	switch {
	case primaryDead:
		vs.advance(true)
	case backupDead:
		vs.advance(false)
	case vs.cur.Backup == "":
		if idle := vs.idleLocked(); idle != "" {
			vs.setView(View{Num: vs.cur.Num + 1, Primary: vs.cur.Primary, Backup: idle})
		}
	}
}

// View returns the current view and whether its primary has acknowledged
// it.
func (vs *ViewService) View() (View, bool) {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	return vs.cur, vs.acked
}

// advance moves to the next view. promote replaces the primary with the
// backup (failover); otherwise the primary stays and only the backup slot
// is refilled. With no live backup to promote, the service is stuck — by
// design — until the primary returns: promoting a stateless idle server
// would contradict acknowledged responses.
func (vs *ViewService) advance(promote bool) {
	next := View{Num: vs.cur.Num + 1, Primary: vs.cur.Primary, Backup: vs.cur.Backup}
	if promote {
		if vs.cur.Backup == "" || vs.deadLocked(vs.cur.Backup) {
			return
		}
		next.Primary = vs.cur.Backup
		next.Backup = ""
	}
	if next.Backup == "" {
		next.Backup = vs.idleLocked()
	}
	vs.setView(next)
}

// deadLocked reports whether addr has missed the liveness threshold.
func (vs *ViewService) deadLocked(addr string) bool {
	at, ok := vs.last[addr]
	return !ok || vs.tick-at >= vs.deadPings
}

// idleLocked picks the lexically-first live replica holding no role, so
// backup selection is deterministic.
func (vs *ViewService) idleLocked() string {
	var idle []string
	for addr := range vs.last {
		if addr != vs.cur.Primary && addr != vs.cur.Backup && !vs.deadLocked(addr) {
			idle = append(idle, addr)
		}
	}
	if len(idle) == 0 {
		return ""
	}
	sort.Strings(idle)
	return idle[0]
}

func (vs *ViewService) setView(v View) {
	vs.cur = v
	vs.acked = false
	vs.changesC.Inc()
	vs.numG.Set(float64(v.Num))
	if vs.log != nil {
		vs.log.Printf("view %d: primary=%s backup=%s", v.Num, v.Primary, orNone(v.Backup))
	}
	vs.rec.Event(PhViewChange, time.Since(vs.start), flight.Attrs{
		ID: int64(v.Num), S: v.Primary + "|" + v.Backup,
	})
}

// Handler serves the view protocol over HTTP:
//
//	GET /view                  -> {"view": {...}, "acked": bool}
//	GET|POST /ping?addr=&num=  -> current View
func (vs *ViewService) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/view", func(w http.ResponseWriter, r *http.Request) {
		v, acked := vs.View()
		writeJSON(w, http.StatusOK, map[string]any{"view": v, "acked": acked})
	})
	mux.HandleFunc("/ping", func(w http.ResponseWriter, r *http.Request) {
		addr := r.URL.Query().Get("addr")
		if addr == "" {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "missing addr"})
			return
		}
		num, _ := strconv.ParseUint(r.URL.Query().Get("num"), 10, 64)
		writeJSON(w, http.StatusOK, vs.Ping(addr, num))
	})
	return mux
}

func orNone(s string) string {
	if s == "" {
		return "(none)"
	}
	return s
}
