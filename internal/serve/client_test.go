package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// fakeCluster is a hand-cranked view service plus one primary endpoint,
// for exercising the client's retry/breaker logic without a deployment.
type fakeCluster struct {
	mu      sync.Mutex
	primary string // URL the /view endpoint publishes
	fail    bool   // primary answers 500 while set
	hits    int

	vs  *httptest.Server
	api *httptest.Server
}

func newFakeCluster(t *testing.T) *fakeCluster {
	t.Helper()
	fc := &fakeCluster{}
	fc.api = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fc.mu.Lock()
		fc.hits++
		fail := fc.fail
		fc.mu.Unlock()
		if fail {
			http.Error(w, "injected", http.StatusInternalServerError)
			return
		}
		w.Header().Set("X-S2S-Digest", "d00d")
		w.Write([]byte(`{}`))
	}))
	fc.vs = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fc.mu.Lock()
		p := fc.primary
		fc.mu.Unlock()
		writeJSON(w, http.StatusOK, map[string]any{
			"view": View{Num: 1, Primary: p}, "acked": true,
		})
	}))
	fc.primary = fc.api.URL
	t.Cleanup(fc.vs.Close)
	t.Cleanup(fc.api.Close)
	return fc
}

// TestClientJitterDeterministic: the same seed yields the same backoff
// schedule — chaos runs replay — and different seeds de-lockstep a
// fleet.
func TestClientJitterDeterministic(t *testing.T) {
	steps := [...]time.Duration{5, 10, 20, 40, 80, 160, 250, 250}
	seq := func(seed int64) []time.Duration {
		c := &Client{Seed: seed}
		out := make([]time.Duration, len(steps))
		for i, d := range steps {
			out[i] = c.jitter(d * time.Millisecond)
		}
		return out
	}
	a, b := seq(7), seq(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at step %d: %v != %v", i, a[i], b[i])
		}
		d := steps[i] * time.Millisecond
		if a[i] < d/2 || a[i] >= d/2+d {
			t.Fatalf("jitter %v outside the [d/2, 3d/2) envelope for d=%v", a[i], d)
		}
	}
	c := seq(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter schedules")
	}
}

// TestClientBreakerTripsAndRecovers: consecutive failures against one
// primary trip the breaker; a view change to a healthy primary is picked
// up while the circuit is still open.
func TestClientBreakerTripsAndRecovers(t *testing.T) {
	fc := newFakeCluster(t)
	fc.mu.Lock()
	fc.fail = true
	fc.mu.Unlock()

	cl := &Client{
		VS: fc.vs.URL, Timeout: 400 * time.Millisecond, Seed: 1,
		BreakerThreshold: 2, BreakerCooldown: time.Minute,
	}
	if _, err := cl.Get("/api/meta", nil); err == nil {
		t.Fatal("Get succeeded against a failing primary")
	}
	if _, trips := cl.Stats(); trips < 1 {
		t.Fatalf("breaker never tripped (trips=%d)", trips)
	}
	fc.mu.Lock()
	hitsWhileBroken := fc.hits
	fc.mu.Unlock()

	// Publish a healthy primary. The old circuit is still open (cooldown
	// is a minute), but it is name-scoped: the new primary sails through.
	healthy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-S2S-Digest", "beef")
		w.Write([]byte(`{}`))
	}))
	defer healthy.Close()
	fc.mu.Lock()
	fc.primary = healthy.URL
	fc.mu.Unlock()

	resp, err := cl.Get("/api/meta", nil)
	if err != nil {
		t.Fatalf("Get after failover: %v", err)
	}
	if resp.Digest != "beef" {
		t.Fatalf("served by the wrong primary: digest %q", resp.Digest)
	}
	fc.mu.Lock()
	hitsAfter := fc.hits
	fc.mu.Unlock()
	if hitsAfter != hitsWhileBroken {
		t.Fatalf("open circuit still sent %d requests at the broken primary", hitsAfter-hitsWhileBroken)
	}
}

// TestClientContextCancel: a canceled context aborts the retry loop
// immediately, whatever state the view service is in.
func TestClientContextCancel(t *testing.T) {
	fc := newFakeCluster(t)
	fc.mu.Lock()
	fc.fail = true // every attempt fails, so the loop would retry forever
	fc.mu.Unlock()

	cl := &Client{VS: fc.vs.URL, Timeout: time.Minute, Seed: 1}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := cl.GetCtx(ctx, "/api/meta", nil)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("GetCtx returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("GetCtx did not return after cancel")
	}
}

// TestAdmissionShed: with every slot occupied the replica refuses /api/*
// with 503 + Retry-After and counts the shed, before spending any work
// on the request.
func TestAdmissionShed(t *testing.T) {
	reg := obs.NewRegistry()
	r := NewReplica(ReplicaOptions{
		Name: "http://primary", ViewURL: "http://unused",
		MaxInFlight: 1, Registry: reg,
	})
	if !r.adm.tryAcquire() {
		t.Fatal("fresh admission gate refused")
	}
	defer r.adm.release()

	h := r.Handlers()["/api/meta"]
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/api/meta", nil))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", rr.Code)
	}
	if got := rr.Header().Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", got)
	}
	if got := reg.Snapshot().Counters[MetricShed]; got != 1 {
		t.Fatalf("%s = %d, want 1", MetricShed, got)
	}

	// Internal replication endpoints must never shed: refusing a forward
	// would turn overload into a replication stall.
	rr = httptest.NewRecorder()
	r.Handlers()["/internal/apply"].ServeHTTP(rr, httptest.NewRequest(
		http.MethodPost, "/internal/apply", nil))
	if rr.Code == http.StatusServiceUnavailable {
		t.Fatal("internal endpoint was shed by admission control")
	}
	if got := reg.Snapshot().Counters[MetricShed]; got != 1 {
		t.Fatalf("%s moved to %d on an internal request", MetricShed, got)
	}
}

// TestAdmissionUnlimitedByDefault: MaxInFlight 0 admits everything.
func TestAdmissionUnlimitedByDefault(t *testing.T) {
	var a *admission // = newAdmission(0)
	for i := 0; i < 100; i++ {
		if !a.tryAcquire() {
			t.Fatal("nil admission refused a request")
		}
	}
	a.release() // must not panic
}
