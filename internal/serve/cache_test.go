package serve

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/obs"
)

func body(s string) ([]byte, string) {
	b := []byte(s)
	return b, Digest(b)
}

func TestCacheEvictionOrder(t *testing.T) {
	c := NewCache(3)
	for _, k := range []string{"a", "b", "c"} {
		b, d := body(k)
		c.Put(k, b, d)
	}
	// Recency now c > b > a; touching a moves it to the front.
	if _, _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	if got := c.Keys(); !reflect.DeepEqual(got, []string{"a", "c", "b"}) {
		t.Fatalf("keys after touch = %v", got)
	}
	// Inserting d must evict the coldest entry: b, not a.
	bd, dd := body("d")
	c.Put("d", bd, dd)
	if got := c.Keys(); !reflect.DeepEqual(got, []string{"d", "a", "c"}) {
		t.Fatalf("keys after eviction = %v", got)
	}
	if _, _, ok := c.Get("b"); ok {
		t.Fatal("evicted entry still resident")
	}
	if c.Len() != 3 {
		t.Fatalf("len = %d, want 3", c.Len())
	}
}

func TestCacheBound(t *testing.T) {
	const max = 8
	c := NewCache(max)
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("k%d", i)
		b, d := body(k)
		c.Put(k, b, d)
		if c.Len() > max {
			t.Fatalf("cache grew to %d > bound %d", c.Len(), max)
		}
	}
	if c.Len() != max {
		t.Fatalf("len = %d, want %d", c.Len(), max)
	}
	// Refreshing an existing key must not evict.
	k := c.Keys()[0]
	b, d := body("refreshed")
	c.Put(k, b, d)
	if c.Len() != max {
		t.Fatalf("refresh changed len to %d", c.Len())
	}
	if got, dig, ok := c.Get(k); !ok || string(got) != "refreshed" || dig != d {
		t.Fatalf("refresh lost: ok=%t body=%q", ok, got)
	}
}

func TestCacheMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCache(2)
	c.Instrument(reg)
	b, d := body("x")
	c.Put("x", b, d)
	c.Get("x")    // hit
	c.Get("nope") // miss
	c.Put("y", b, d)
	c.Put("z", b, d) // evicts x
	c.Get("x")       // miss after eviction

	snap := reg.Snapshot()
	if got := snap.Counters[MetricCacheHits]; got != 1 {
		t.Fatalf("hits = %d, want 1", got)
	}
	if got := snap.Counters[MetricCacheMisses]; got != 2 {
		t.Fatalf("misses = %d, want 2", got)
	}
	if got := snap.Counters[MetricCacheEvictions]; got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if got := snap.Gauges[MetricCacheEntries]; got != 2 {
		t.Fatalf("entries gauge = %v, want 2", got)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(0)
	b, d := body("x")
	c.Put("x", b, d)
	if _, _, ok := c.Get("x"); ok {
		t.Fatal("disabled cache returned a hit")
	}
	if c.Len() != 0 {
		t.Fatalf("disabled cache holds %d entries", c.Len())
	}
}

// TestCacheConcurrent hammers the cache from many goroutines; run under
// -race it asserts the locking, and the bound must hold throughout.
func TestCacheConcurrent(t *testing.T) {
	const max = 16
	c := NewCache(max)
	c.Instrument(obs.NewRegistry())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := fmt.Sprintf("k%d", (g*7+i)%40)
				if i%3 == 0 {
					b, d := body(k)
					c.Put(k, b, d)
				} else if bodyB, dig, ok := c.Get(k); ok {
					if Digest(bodyB) != dig {
						t.Errorf("corrupt entry %s", k)
						return
					}
				}
				if n := c.Len(); n > max {
					t.Errorf("bound violated: %d > %d", n, max)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	// Snapshot/Install under concurrency exercised separately: a transfer
	// snapshot must round-trip the recency order.
	snap := c.Snapshot()
	c2 := NewCache(max)
	c2.Install(snap)
	if !reflect.DeepEqual(c.Keys(), c2.Keys()) {
		t.Fatalf("install did not preserve order:\n%v\n%v", c.Keys(), c2.Keys())
	}
}
