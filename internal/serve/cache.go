package serve

import (
	"container/list"
	"sync"

	"repro/internal/obs"
)

// Entry is one cached (and journaled) query response.
type Entry struct {
	Key    string
	Body   []byte
	Digest string
}

// Cache is the hot-pair LRU in front of the backend: a bounded map from
// canonical query key to marshaled response. Query popularity is zipfian —
// operators watch the same few pairs — so a small cache absorbs most of
// the load; the metrics let the alert engine notice when it stops doing so
// (serve_cache_collapse).
//
// The cache is also half of the replicated state: the primary forwards
// every response it caches to the backup, so a promoted backup serves the
// same bytes for warmed pairs without touching its store.
type Cache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recent
	items map[string]*list.Element

	hitsC    *obs.Counter
	missesC  *obs.Counter
	evictC   *obs.Counter
	entriesG *obs.Gauge
}

// NewCache returns an LRU bounded to max entries. max <= 0 disables
// caching: every Get misses and Put is a no-op (the cache-off arm of the
// benchmark).
func NewCache(max int) *Cache {
	return &Cache{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// Instrument registers the cache metrics on reg.
func (c *Cache) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	c.hitsC = reg.Counter(MetricCacheHits, "query responses served from the hot-pair cache")
	c.missesC = reg.Counter(MetricCacheMisses, "query responses computed from the store")
	c.evictC = reg.Counter(MetricCacheEvictions, "cache entries evicted by the LRU bound")
	c.entriesG = reg.Gauge(MetricCacheEntries, "cache entries resident")
}

// Get returns the cached response for key and marks it most recent.
func (c *Cache) Get(key string) (body []byte, digest string, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.missesC.Inc()
		return nil, "", false
	}
	c.hitsC.Inc()
	c.ll.MoveToFront(el)
	e := el.Value.(*Entry)
	return e.Body, e.Digest, true
}

// Put inserts (or refreshes) a response, evicting from the cold end to
// stay within the bound.
func (c *Cache) Put(key string, body []byte, digest string) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*Entry)
		e.Body, e.Digest = body, digest
		return
	}
	c.items[key] = c.ll.PushFront(&Entry{Key: key, Body: body, Digest: digest})
	for c.ll.Len() > c.max {
		cold := c.ll.Back()
		c.ll.Remove(cold)
		delete(c.items, cold.Value.(*Entry).Key)
		c.evictC.Inc()
	}
	c.entriesG.Set(float64(c.ll.Len()))
}

// Len returns the resident entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Keys returns the resident keys from most to least recently used.
func (c *Cache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		keys = append(keys, el.Value.(*Entry).Key)
	}
	return keys
}

// Snapshot copies the resident entries from most to least recently used —
// the cache half of a state transfer.
func (c *Cache) Snapshot() []Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Entry, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*Entry)
		out = append(out, Entry{Key: e.Key, Body: e.Body, Digest: e.Digest})
	}
	return out
}

// Install replaces the cache contents with a transferred snapshot
// (entries arrive most-recent-first, so inserting in reverse rebuilds the
// recency order).
func (c *Cache) Install(entries []Entry) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	c.ll.Init()
	c.items = make(map[string]*list.Element, len(entries))
	c.mu.Unlock()
	for i := len(entries) - 1; i >= 0; i-- {
		e := entries[i]
		c.Put(e.Key, e.Body, e.Digest)
	}
}
