package serve

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"time"

	"repro/internal/trace"
)

// DefaultZipfS is the default zipfian skew of the synthetic fleet's pair
// popularity. Operators in practice watch a few pairs obsessively and the
// long tail rarely; s=1.2 over the pair universe reproduces that shape.
const DefaultZipfS = 1.2

// Query is one scheduled fleet request.
type Query struct {
	Endpoint string
	Pair     trace.PairKey
}

// Values renders the query's URL parameters.
func (q Query) Values() url.Values {
	v := url.Values{}
	if q.Endpoint == "pairs" || q.Endpoint == "meta" {
		return v
	}
	v.Set("src", fmt.Sprint(q.Pair.SrcID))
	v.Set("dst", fmt.Sprint(q.Pair.DstID))
	if q.Pair.V6 {
		v.Set("v6", "true")
	}
	return v
}

// Schedule generates client c's deterministic request sequence: n queries
// whose pair choice is zipfian over the (popularity-ranked) pairs slice
// and whose endpoint mix approximates an operator console — mostly RTT
// series, then path history, with occasional metadata and full analysis
// replays. The same (seed, c) always yields the same sequence, so a bench
// or smoke run is reproducible end to end.
func Schedule(seed int64, c int, pairs []trace.PairKey, n int, zipfS float64) []Query {
	if zipfS <= 1 {
		zipfS = DefaultZipfS
	}
	rng := rand.New(rand.NewSource(seed ^ int64(uint64(c+1)*0x9e3779b97f4a7c15)))
	var zipf *rand.Zipf
	if len(pairs) > 1 {
		zipf = rand.NewZipf(rng, zipfS, 1, uint64(len(pairs)-1))
	}
	qs := make([]Query, n)
	for i := range qs {
		var pair trace.PairKey
		if zipf != nil {
			pair = pairs[zipf.Uint64()]
		} else if len(pairs) == 1 {
			pair = pairs[0]
		}
		roll := rng.Intn(100)
		var ep string
		switch {
		case roll < 60:
			ep = "series"
		case roll < 85:
			ep = "paths"
		case roll < 93:
			ep = "meta"
		case roll < 98:
			ep = "pairs"
		default:
			ep = "summary"
		}
		qs[i] = Query{Endpoint: ep, Pair: pair}
	}
	return qs
}

// LoadConfig parameterizes a synthetic fleet run.
type LoadConfig struct {
	// VS is the view service base URL the fleet resolves primaries from.
	VS string
	// Fleet is the number of concurrent clients; Requests the total request
	// count across the fleet.
	Fleet    int
	Requests int
	// Seed makes the request schedule deterministic.
	Seed int64
	// ZipfS is the pair-popularity skew (default 1.2).
	ZipfS float64
	// Pairs is the popularity-ranked pair universe (typically /api/pairs
	// order).
	Pairs []trace.PairKey
	// Timeout bounds each request including failover retries (default 30s).
	Timeout time.Duration
	// HTTPClient overrides the fleet-shared transport.
	HTTPClient *http.Client
}

// LoadResult is the fleet's aggregate outcome — the benchmark record.
type LoadResult struct {
	Fleet     int     `json:"fleet"`
	Requests  int     `json:"requests"`
	OK        int     `json:"ok"`
	Errors    int     `json:"errors"`
	CacheHits int     `json:"cache_hits"`
	ElapsedMS float64 `json:"elapsed_ms"`
	RPS       float64 `json:"rps"`
	P50us     int64   `json:"p50_us"`
	P95us     int64   `json:"p95_us"`
	P99us     int64   `json:"p99_us"`
	MaxUs     int64   `json:"max_us"`
}

// RunFleet launches Fleet concurrent clients against the service and
// reports throughput and latency percentiles. Each client walks its own
// deterministic schedule; requests ride the view-aware Client, so a
// failover mid-run shows up as a latency bump, not an error burst.
func RunFleet(cfg LoadConfig) (*LoadResult, error) {
	if cfg.Fleet <= 0 || cfg.Requests <= 0 {
		return nil, fmt.Errorf("serve: loadgen needs fleet > 0 and requests > 0")
	}
	if len(cfg.Pairs) == 0 {
		return nil, fmt.Errorf("serve: loadgen needs a pair universe")
	}
	hc := cfg.HTTPClient
	if hc == nil {
		// Bound concurrent sockets: past a few hundred connections the
		// bench measures fd churn, not the service. Excess requests queue
		// inside the transport.
		hc = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        4096,
			MaxIdleConnsPerHost: 512,
			MaxConnsPerHost:     512,
		}}
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	per := cfg.Requests / cfg.Fleet
	rem := cfg.Requests % cfg.Fleet

	type clientResult struct {
		lat       []int64 // microseconds, successes only
		errors    int
		cacheHits int
	}
	results := make([]clientResult, cfg.Fleet)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.Fleet; c++ {
		n := per
		if c < rem {
			n++
		}
		if n == 0 {
			continue
		}
		wg.Add(1)
		go func(c, n int) {
			defer wg.Done()
			// Each client jitters its retries from its own seed: a failover
			// spreads the fleet's retry wave deterministically instead of
			// replaying it in lockstep.
			cl := &Client{VS: cfg.VS, HC: hc, Timeout: timeout,
				Seed: cfg.Seed ^ int64(uint64(c+1)*0x9e3779b97f4a7c15)}
			res := &results[c]
			res.lat = make([]int64, 0, n)
			for _, q := range Schedule(cfg.Seed, c, cfg.Pairs, n, cfg.ZipfS) {
				t0 := time.Now()
				resp, err := cl.Get("/api/"+q.Endpoint, q.Values())
				if err != nil {
					res.errors++
					continue
				}
				res.lat = append(res.lat, time.Since(t0).Microseconds())
				if resp.CacheHit {
					res.cacheHits++
				}
			}
		}(c, n)
	}
	wg.Wait()
	elapsed := time.Since(start)

	out := &LoadResult{Fleet: cfg.Fleet, Requests: cfg.Requests}
	var all []int64
	for _, res := range results {
		all = append(all, res.lat...)
		out.Errors += res.errors
		out.CacheHits += res.cacheHits
	}
	out.OK = len(all)
	out.ElapsedMS = float64(elapsed.Microseconds()) / 1000
	if elapsed > 0 {
		out.RPS = float64(out.OK) / elapsed.Seconds()
	}
	if len(all) > 0 {
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		out.P50us = percentile(all, 0.50)
		out.P95us = percentile(all, 0.95)
		out.P99us = percentile(all, 0.99)
		out.MaxUs = all[len(all)-1]
	}
	return out, nil
}

// percentile reads the q-th quantile from sorted microsecond samples.
func percentile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
