// Package serve is the measurement query service: the layer that turns an
// archived internal/store dataset into a long-running, replicated HTTP/JSON
// API — the serving half of the paper's platform, where per-pair RTT
// series, path histories, and routing/congestion summaries from the
// traceroute archive are consumed continuously by operators rather than by
// one-shot batch CLIs.
//
// The package has four layers:
//
//   - Backend answers queries over an opened store.Store, leaning on the
//     store's index pushdown (Store.Pair point lookups open only the shards
//     that can hold the pair and decode only its frames) and reusing the
//     internal/analysis streaming operators in replay mode for per-pair
//     routing/congestion summaries.
//   - Cache is the hot-pair LRU in front of the backend: query results for
//     popular pairs (zipfian in practice) are served from memory with hit,
//     miss, and eviction metrics.
//   - ViewService + Replica are the replication layer, the classic
//     viewservice/pbservice shape: a lightweight view service tracks
//     replica liveness through pings and publishes numbered views
//     (primary, backup); the primary executes queries and forwards every
//     acknowledged result to the backup before replying, a new backup
//     receives a full state transfer, and when the primary dies the backup
//     is promoted at the next view change — so a killed primary costs
//     availability only until the view advances, and an acknowledged
//     response is never contradicted after failover.
//   - Client + RunFleet are the consumption side: a view-aware HTTP client
//     that rides through failovers, and a synthetic client fleet
//     (thousands of concurrent querents, seeded zipfian pair popularity,
//     deterministic request schedule) that drives throughput/latency
//     benchmarks — the BENCH_009.json trajectory.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/core/aspath"
	"repro/internal/ipam"
	"repro/internal/store"
	"repro/internal/trace"
)

// Metric families the query service exports. The cache and view families
// feed the alert engine's serve_cache_collapse and view_flap rules; the
// shed and ping-failure families feed load_shed and partition_suspect.
const (
	MetricCacheHits      = "s2s_serve_cache_hits_total"
	MetricCacheMisses    = "s2s_serve_cache_misses_total"
	MetricCacheEvictions = "s2s_serve_cache_evictions_total"
	MetricCacheEntries   = "s2s_serve_cache_entries"
	MetricViewChanges    = "s2s_serve_view_changes_total"
	MetricViewNum        = "s2s_serve_view_num"
	MetricRequests       = "s2s_serve_requests_total"
	MetricErrors         = "s2s_serve_request_errors_total"
	MetricShed           = "s2s_serve_shed_total"
	MetricPingFailures   = "s2s_serve_ping_failures_total"
	MetricForwards       = "s2s_serve_forwards_total"
	MetricTransfers      = "s2s_serve_state_transfers_total"
	MetricPromotions     = "s2s_serve_promotions_total"
	MetricLatency        = "s2s_serve_request_seconds"
)

// Flight phases the serving layer emits.
const (
	PhViewChange = "view_change"    // event: the view advanced; id = view num, s = "primary|backup"
	PhTransfer   = "state_transfer" // event: primary pushed state to a fresh backup; n = journal entries, m = cache entries
	PhServeTick  = "serve_tick"     // event: daemon heartbeat driving metric snapshots and alert evaluation
)

// Endpoints is the fixed set of query endpoints, in display order. The
// per-endpoint request counters and latency histograms are labeled with
// these names.
var Endpoints = []string{"series", "paths", "summary", "pairs", "meta"}

// BackendConfig parameterizes a Backend.
type BackendConfig struct {
	// Workers sizes store scans behind multi-pair queries (0 = all cores).
	Workers int
	// Interval is the dataset's measurement cadence — the RTT slot width
	// for the congestion summary operator (default 3h, the long-term
	// campaign round length).
	Interval time.Duration
	// MaxPoints bounds a series response (default 2000 buckets): when the
	// requested step would produce more, the step is widened.
	MaxPoints int
}

func (c BackendConfig) fill() BackendConfig {
	if c.Interval <= 0 {
		c.Interval = 3 * time.Hour
	}
	if c.MaxPoints <= 0 {
		c.MaxPoints = 2000
	}
	return c
}

// Backend answers queries over one archived store. All methods are safe
// for concurrent use: store reads are concurrency-safe and every query
// builds its own consumer state.
type Backend struct {
	st     *store.Store
	mapper *aspath.Mapper
	cfg    BackendConfig
}

// OpenBackend opens the store directory at dataPath and, when a .bgp.tsv
// sidecar exists next to it (extension-stripped stem, like s2sanalyze),
// loads the IP-to-AS view so path history carries AS paths and the
// routing-change summary works. Without the sidecar those degrade
// gracefully: hops-only path history, no routing findings.
func OpenBackend(dataPath string, cfg BackendConfig) (*Backend, error) {
	st, err := store.Open(dataPath)
	if err != nil {
		return nil, err
	}
	b := NewBackend(st, nil, cfg)
	stem := strings.TrimSuffix(dataPath, ".store")
	if f, err := os.Open(stem + ".bgp.tsv"); err == nil {
		table, terr := ipam.ReadTSV(f)
		f.Close()
		if terr != nil {
			return nil, fmt.Errorf("serve: %s.bgp.tsv: %w", stem, terr)
		}
		b.mapper = aspath.NewMapper(table)
	}
	return b, nil
}

// NewBackend wraps an already-opened store. mapper may be nil.
func NewBackend(st *store.Store, mapper *aspath.Mapper, cfg BackendConfig) *Backend {
	return &Backend{st: st, mapper: mapper, cfg: cfg.fill()}
}

// Store exposes the underlying store (to instrument it, and for tests).
func (b *Backend) Store() *store.Store { return b.st }

// PairQuery is the parsed parameter set of the per-pair endpoints.
type PairQuery struct {
	Src, Dst int
	V6       bool
	From, To time.Duration // half-open [From, To); To < 0 = unbounded
	Step     time.Duration // series bucket width; 0 = pick from span
}

// Key returns the timeline key of the query.
func (q PairQuery) Key() trace.PairKey { return trace.PairKey{SrcID: q.Src, DstID: q.Dst, V6: q.V6} }

// ParsePairQuery decodes src/dst/v6/from/to/step URL parameters. Durations
// accept Go syntax ("36h") or bare integer nanoseconds.
func ParsePairQuery(v url.Values) (PairQuery, error) {
	q := PairQuery{To: -1}
	var err error
	if q.Src, err = strconv.Atoi(v.Get("src")); err != nil {
		return q, fmt.Errorf("bad or missing src: %q", v.Get("src"))
	}
	if q.Dst, err = strconv.Atoi(v.Get("dst")); err != nil {
		return q, fmt.Errorf("bad or missing dst: %q", v.Get("dst"))
	}
	if s := v.Get("v6"); s != "" {
		if q.V6, err = strconv.ParseBool(s); err != nil {
			return q, fmt.Errorf("bad v6: %q", s)
		}
	}
	for _, p := range []struct {
		name string
		dst  *time.Duration
	}{{"from", &q.From}, {"to", &q.To}, {"step", &q.Step}} {
		s := v.Get(p.name)
		if s == "" {
			continue
		}
		if d, derr := time.ParseDuration(s); derr == nil {
			*p.dst = d
		} else if ns, nerr := strconv.ParseInt(s, 10, 64); nerr == nil {
			*p.dst = time.Duration(ns)
		} else {
			return q, fmt.Errorf("bad %s: %q", p.name, s)
		}
	}
	if q.To >= 0 && q.To <= q.From {
		return q, fmt.Errorf("empty window: from=%v to=%v", q.From, q.To)
	}
	return q, nil
}

// CanonicalKey is the cache/journal key of a query: endpoint plus the
// normalized parameters, independent of URL parameter order or spelling.
func (q PairQuery) CanonicalKey(endpoint string) string {
	return fmt.Sprintf("%s?src=%d&dst=%d&v6=%t&from=%d&to=%d&step=%d",
		endpoint, q.Src, q.Dst, q.V6, int64(q.From), int64(q.To), int64(q.Step))
}

// SeriesPoint is one downsampled RTT bucket.
type SeriesPoint struct {
	AtNS  int64   `json:"at_ns"` // bucket start
	Count int     `json:"count"` // RTT samples in the bucket
	Lost  int     `json:"lost,omitempty"`
	MinMs float64 `json:"min_ms"`
	AvgMs float64 `json:"avg_ms"`
	MaxMs float64 `json:"max_ms"`
}

// SeriesResponse is the /api/series payload: the pair's end-to-end RTT
// series (pings and complete traceroutes both contribute), downsampled to
// step-wide buckets.
type SeriesResponse struct {
	Src     int           `json:"src"`
	Dst     int           `json:"dst"`
	V6      bool          `json:"v6,omitempty"`
	FromNS  int64         `json:"from_ns"`
	ToNS    int64         `json:"to_ns"`
	StepNS  int64         `json:"step_ns"`
	Samples int           `json:"samples"`
	Points  []SeriesPoint `json:"points"`
}

// Series answers a per-pair RTT series query through the store's
// point-lookup path. ctx cancellation stops the store read between
// shard decodes.
func (b *Backend) Series(ctx context.Context, q PairQuery) (*SeriesResponse, error) {
	from, to := b.clampWindow(q)
	step := q.Step
	span := to - from
	if step <= 0 {
		step = span / 240
		if step < b.cfg.Interval {
			step = b.cfg.Interval
		}
	}
	if min := span / time.Duration(b.cfg.MaxPoints); step < min {
		step = min
	}
	n := int((span + step - 1) / step)
	if n < 1 {
		n = 1
	}
	resp := &SeriesResponse{
		Src: q.Src, Dst: q.Dst, V6: q.V6,
		FromNS: int64(from), ToNS: int64(to), StepNS: int64(step),
	}
	type agg struct {
		count, lost   int
		sum, min, max float64
	}
	buckets := make([]agg, n)
	sample := func(at time.Duration, rttMs float64, lost bool) {
		i := int((at - from) / step)
		if i < 0 || i >= n {
			return
		}
		bu := &buckets[i]
		if lost {
			bu.lost++
			return
		}
		if bu.count == 0 || rttMs < bu.min {
			bu.min = rttMs
		}
		if bu.count == 0 || rttMs > bu.max {
			bu.max = rttMs
		}
		bu.count++
		bu.sum += rttMs
		resp.Samples++
	}
	err := b.st.PairCtx(ctx, q.Key(), from, to, consumerFuncs{
		tr: func(tr *trace.Traceroute) {
			if tr.Complete {
				sample(tr.At, float64(tr.RTT)/float64(time.Millisecond), false)
			}
		},
		ping: func(p *trace.Ping) {
			sample(p.At, float64(p.RTT)/float64(time.Millisecond), p.Lost)
		},
	})
	if err != nil {
		return nil, err
	}
	resp.Points = make([]SeriesPoint, 0, n)
	for i, bu := range buckets {
		if bu.count == 0 && bu.lost == 0 {
			continue
		}
		pt := SeriesPoint{AtNS: int64(from + time.Duration(i)*step), Count: bu.count, Lost: bu.lost}
		if bu.count > 0 {
			pt.MinMs = round2(bu.min)
			pt.AvgMs = round2(bu.sum / float64(bu.count))
			pt.MaxMs = round2(bu.max)
		}
		resp.Points = append(resp.Points, pt)
	}
	return resp, nil
}

// PathEpoch is one stretch of consecutive traceroutes sharing the same
// hop-level path.
type PathEpoch struct {
	FirstNS int64    `json:"first_ns"`
	LastNS  int64    `json:"last_ns"`
	Count   int      `json:"count"`
	Hops    []string `json:"hops"`
	ASPath  []int64  `json:"as_path,omitempty"`
}

// PathsResponse is the /api/paths payload: the pair's path history as
// epochs of identical hop sequences, with inferred AS paths when the
// backend has a BGP view.
type PathsResponse struct {
	Src         int         `json:"src"`
	Dst         int         `json:"dst"`
	V6          bool        `json:"v6,omitempty"`
	FromNS      int64       `json:"from_ns"`
	ToNS        int64       `json:"to_ns"`
	Traceroutes int         `json:"traceroutes"`
	Changes     int         `json:"changes"` // epoch transitions = hop-level path changes
	Epochs      []PathEpoch `json:"epochs"`
}

// Paths answers a per-pair path-history query.
func (b *Backend) Paths(ctx context.Context, q PairQuery) (*PathsResponse, error) {
	from, to := b.clampWindow(q)
	resp := &PathsResponse{
		Src: q.Src, Dst: q.Dst, V6: q.V6,
		FromNS: int64(from), ToNS: int64(to),
	}
	var cur *PathEpoch
	var curSig string
	err := b.st.PairCtx(ctx, q.Key(), from, to, consumerFuncs{
		tr: func(tr *trace.Traceroute) {
			resp.Traceroutes++
			hops := make([]string, len(tr.Hops))
			var sig strings.Builder
			for i, h := range tr.Hops {
				if h.Responsive() {
					hops[i] = h.Addr.String()
				} else {
					hops[i] = "*"
				}
				sig.WriteString(hops[i])
				sig.WriteByte('|')
			}
			if cur != nil && sig.String() == curSig {
				cur.LastNS = int64(tr.At)
				cur.Count++
				return
			}
			if cur != nil {
				resp.Changes++
			}
			resp.Epochs = append(resp.Epochs, PathEpoch{
				FirstNS: int64(tr.At), LastNS: int64(tr.At), Count: 1, Hops: hops,
			})
			cur = &resp.Epochs[len(resp.Epochs)-1]
			curSig = sig.String()
			if b.mapper != nil && tr.Complete {
				if r := b.mapper.Infer(tr); r.Usable() {
					cur.ASPath = make([]int64, len(r.Path))
					for i, as := range r.Path {
						cur.ASPath[i] = int64(as)
					}
				}
			}
		},
	})
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// SummaryResponse is the /api/summary payload: the pair's records (both
// protocols) replayed through the streaming-analysis operators —
// routing-change, congestion, and dual-stack findings exactly as a live
// campaign would have emitted them.
type SummaryResponse struct {
	Src      int                 `json:"src"`
	Dst      int                 `json:"dst"`
	FromNS   int64               `json:"from_ns"`
	ToNS     int64               `json:"to_ns"`
	Records  int64               `json:"records"`
	Findings []analysis.Finding  `json:"findings"`
	Analyses []analysis.OpStatus `json:"analyses"`
}

// Summary replays one pair (v4 and v6 timelines, so the dual-stack
// operator sees its round-adjacent pairs) through the analysis operators.
func (b *Backend) Summary(ctx context.Context, q PairQuery) (*SummaryResponse, error) {
	from, to := b.clampWindow(q)
	resp := &SummaryResponse{
		Src: q.Src, Dst: q.Dst,
		FromNS: int64(from), ToNS: int64(to),
		Findings: []analysis.Finding{},
	}
	stage := analysis.NewStage(analysis.Config{
		Mapper:   b.mapper,
		Interval: b.cfg.Interval,
		Sink:     func(f analysis.Finding) { resp.Findings = append(resp.Findings, f) },
	}, nil, nil)
	keys := []trace.PairKey{
		{SrcID: q.Src, DstID: q.Dst, V6: false},
		{SrcID: q.Src, DstID: q.Dst, V6: true},
	}
	window := consumerFuncs{
		tr: func(tr *trace.Traceroute) {
			if tr.At >= from && (to < 0 || tr.At < to) {
				resp.Records++
				stage.OnTraceroute(tr)
			}
		},
		ping: func(p *trace.Ping) {
			if p.At >= from && (to < 0 || p.At < to) {
				resp.Records++
				stage.OnPing(p)
			}
		},
	}
	// Pairs with one worker keeps the exact shard-order delivery of the
	// live stream, so the finding stream matches what a campaign with
	// -analyze emitted for this pair.
	if err := b.st.PairsCtx(ctx, 1, keys, window); err != nil {
		return nil, err
	}
	stage.Finish()
	resp.Analyses = stage.Status().Analyses
	return resp, nil
}

// PairInfo is one timeline key in the /api/pairs listing.
type PairInfo struct {
	Src int  `json:"src"`
	Dst int  `json:"dst"`
	V6  bool `json:"v6,omitempty"`
}

// PairsResponse is the /api/pairs payload.
type PairsResponse struct {
	Count int `json:"count"`
	// Exhaustive is false when shard footers hold bloom filters instead of
	// exact pair lists — the listing is then a lower bound.
	Exhaustive bool       `json:"exhaustive"`
	Pairs      []PairInfo `json:"pairs"`
}

// Pairs lists the store's timeline keys from the shard footers.
func (b *Backend) Pairs() (*PairsResponse, error) {
	keys, exhaustive := b.st.PairKeys()
	resp := &PairsResponse{Count: len(keys), Exhaustive: exhaustive, Pairs: make([]PairInfo, len(keys))}
	for i, k := range keys {
		resp.Pairs[i] = PairInfo{Src: k.SrcID, Dst: k.DstID, V6: k.V6}
	}
	return resp, nil
}

// MetaResponse is the /api/meta payload: the dataset's provenance and
// extent, straight from the store manifest.
type MetaResponse struct {
	Tool        string `json:"tool,omitempty"`
	Seed        int64  `json:"seed,omitempty"`
	TopoDigest  string `json:"topo_digest,omitempty"`
	Records     int64  `json:"records"`
	Traceroutes int64  `json:"traceroutes"`
	Pings       int64  `json:"pings"`
	Shards      int    `json:"shards"`
	MinAtNS     int64  `json:"min_at_ns"`
	MaxAtNS     int64  `json:"max_at_ns"`
	HasBGP      bool   `json:"has_bgp"`
}

// Meta answers the dataset-metadata query.
func (b *Backend) Meta() (*MetaResponse, error) {
	m := b.st.Manifest()
	min, max := m.Span()
	return &MetaResponse{
		Tool: m.Tool, Seed: m.Seed, TopoDigest: m.TopoDigest,
		Records: m.Records, Traceroutes: m.Traceroutes, Pings: m.Pings,
		Shards: len(m.Shards), MinAtNS: int64(min), MaxAtNS: int64(max),
		HasBGP: b.mapper != nil,
	}, nil
}

// Answer executes the query named by endpoint and returns the marshaled
// JSON body plus its digest — the unit the replication layer forwards,
// journals, and caches. ctx comes from the HTTP request: an abandoned
// query stops reading the store mid-way instead of finishing for nobody.
func (b *Backend) Answer(ctx context.Context, endpoint string, q PairQuery) (body []byte, digest string, err error) {
	var v any
	switch endpoint {
	case "series":
		v, err = b.Series(ctx, q)
	case "paths":
		v, err = b.Paths(ctx, q)
	case "summary":
		v, err = b.Summary(ctx, q)
	case "pairs":
		v, err = b.Pairs()
	case "meta":
		v, err = b.Meta()
	default:
		return nil, "", fmt.Errorf("serve: unknown endpoint %q", endpoint)
	}
	if err != nil {
		return nil, "", err
	}
	body, err = json.Marshal(v)
	if err != nil {
		return nil, "", err
	}
	body = append(body, '\n')
	return body, Digest(body), nil
}

// Digest is the response digest used by the replication journal: a
// truncated SHA-256 over the marshaled body.
func Digest(body []byte) string {
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:8])
}

// clampWindow resolves a query window against the dataset span.
func (b *Backend) clampWindow(q PairQuery) (from, to time.Duration) {
	min, max := b.st.Manifest().Span()
	from, to = q.From, q.To
	if from < min {
		from = min
	}
	if to < 0 || to > max+1 {
		to = max + 1 // inclusive of the last record
	}
	if to < from {
		to = from
	}
	return from, to
}

func round2(v float64) float64 { return math.Round(v*100) / 100 }

// consumerFuncs adapts two closures to store.Consumer.
type consumerFuncs struct {
	tr   func(*trace.Traceroute)
	ping func(*trace.Ping)
}

func (c consumerFuncs) OnTraceroute(tr *trace.Traceroute) {
	if c.tr != nil {
		c.tr(tr)
	}
}
func (c consumerFuncs) OnPing(p *trace.Ping) {
	if c.ping != nil {
		c.ping(p)
	}
}

// writeJSON writes a JSON response body (already marshaled or not).
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// sortPairKeys orders timeline keys canonically (src, dst, v4 before v6).
func sortPairKeys(keys []trace.PairKey) {
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.SrcID != b.SrcID {
			return a.SrcID < b.SrcID
		}
		if a.DstID != b.DstID {
			return a.DstID < b.DstID
		}
		return !a.V6 && b.V6
	})
}
