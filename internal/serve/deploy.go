package serve

import (
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flight"
)

// DeployConfig parameterizes an in-process deployment.
type DeployConfig struct {
	// Replicas is how many query servers to start (>= 1; the view service
	// uses the first two live ones as primary and backup).
	Replicas int
	// OpenBackend builds each replica's backend — its own store handle, so
	// replicas do not share read state.
	OpenBackend func() (*Backend, error)
	// CacheEntries bounds each replica's hot-pair cache (0 = off).
	CacheEntries int
	// PingInterval is the view protocol cadence (default 25ms); DeadPings
	// the liveness threshold (default DefaultDeadPings).
	PingInterval time.Duration
	DeadPings    int
	// Transport, when set, builds each replica's outbound RoundTripper
	// from its advertised name — the chaos layer's injection seam.
	Transport func(self string) http.RoundTripper
	// Timeouts are each replica's per-request-kind deadlines.
	Timeouts RequestTimeouts
	// MaxInFlight bounds each replica's concurrently executing queries
	// (0 = unlimited).
	MaxInFlight int
	// Registry and Recorder, when set, are shared by the view service and
	// every replica — one pane of glass for a drill. By default each
	// replica gets its own registry (in Deployment.Registries), which
	// per-replica assertions rely on.
	Registry *obs.Registry
	Recorder *flight.Recorder
	// Logger observes the deployment (optional).
	Logger *obs.Logger
}

// Deployment is a view service plus replicas running in one process on
// loopback listeners — the harness behind the failover tests and the
// `s2sserve bench` fleet runs. The production layout (one daemon per
// process, ops mux) wires the same pieces; this just does it compactly.
type Deployment struct {
	VS    *ViewService
	VSURL string

	// Registries holds each replica's metric registry, keyed by name.
	Registries map[string]*obs.Registry

	cfg      DeployConfig
	vsSrv    *http.Server
	mu       sync.Mutex
	replicas map[string]*replicaProc
	stop     chan struct{}
	done     chan struct{}
}

type replicaProc struct {
	r   *Replica
	srv *http.Server
}

// StartDeployment boots the view service and cfg.Replicas replicas and
// waits for an acknowledged primary.
func StartDeployment(cfg DeployConfig) (*Deployment, error) {
	if cfg.Replicas < 1 {
		return nil, fmt.Errorf("serve: deployment needs at least one replica")
	}
	if cfg.PingInterval <= 0 {
		cfg.PingInterval = 25 * time.Millisecond
	}
	d := &Deployment{
		VS: NewViewService(ViewOptions{
			DeadPings: cfg.DeadPings, Logger: cfg.Logger,
			Registry: cfg.Registry, Recorder: cfg.Recorder,
		}),
		Registries: make(map[string]*obs.Registry),
		cfg:        cfg,
		replicas:   make(map[string]*replicaProc),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	var err error
	if d.VSURL, d.vsSrv, err = serveOnLoopback(d.VS.Handler()); err != nil {
		return nil, err
	}
	// The ticker drives liveness; replicas ping on their own loops.
	go func() {
		defer close(d.done)
		t := time.NewTicker(cfg.PingInterval)
		defer t.Stop()
		for {
			select {
			case <-d.stop:
				return
			case <-t.C:
				d.VS.Tick()
			}
		}
	}()
	for i := 0; i < cfg.Replicas; i++ {
		if _, err := d.AddReplica(); err != nil {
			d.Close()
			return nil, err
		}
	}
	if _, err := d.WaitForPrimary(10 * time.Second); err != nil {
		d.Close()
		return nil, err
	}
	return d, nil
}

// AddReplica starts one more replica and returns its name.
func (d *Deployment) AddReplica() (string, error) {
	be, err := d.cfg.OpenBackend()
	if err != nil {
		return "", err
	}
	reg := d.cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	name := "http://" + ln.Addr().String()
	var tr http.RoundTripper
	if d.cfg.Transport != nil {
		tr = d.cfg.Transport(name)
	}
	r := NewReplica(ReplicaOptions{
		Name:         name,
		ViewURL:      d.VSURL,
		Backend:      be,
		CacheEntries: d.cfg.CacheEntries,
		Transport:    tr,
		Timeouts:     d.cfg.Timeouts,
		MaxInFlight:  d.cfg.MaxInFlight,
		Registry:     reg,
		Recorder:     d.cfg.Recorder,
		Logger:       d.cfg.Logger,
	})
	mux := http.NewServeMux()
	for pattern, h := range r.Handlers() {
		mux.Handle(pattern, h)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	r.Start(d.cfg.PingInterval)
	d.mu.Lock()
	d.replicas[name] = &replicaProc{r: r, srv: srv}
	d.Registries[name] = reg
	d.mu.Unlock()
	return name, nil
}

// Replica returns a running replica by name (nil if killed or unknown).
func (d *Deployment) Replica(name string) *Replica {
	d.mu.Lock()
	defer d.mu.Unlock()
	if p, ok := d.replicas[name]; ok {
		return p.r
	}
	return nil
}

// Kill stops one replica abruptly: ping loop and listener die together,
// like a process kill. Returns false if the name is not running.
func (d *Deployment) Kill(name string) bool {
	d.mu.Lock()
	p, ok := d.replicas[name]
	delete(d.replicas, name)
	d.mu.Unlock()
	if !ok {
		return false
	}
	p.r.Close()
	p.srv.Close()
	return true
}

// KillPrimary kills the current primary and returns its name.
func (d *Deployment) KillPrimary() (string, error) {
	v, _ := d.VS.View()
	if v.Primary == "" {
		return "", fmt.Errorf("serve: no primary to kill")
	}
	if !d.Kill(v.Primary) {
		return "", fmt.Errorf("serve: primary %s not running here", v.Primary)
	}
	return v.Primary, nil
}

// WaitForPrimary polls until the view has an acknowledged primary.
func (d *Deployment) WaitForPrimary(timeout time.Duration) (View, error) {
	deadline := time.Now().Add(timeout)
	for {
		v, acked := d.VS.View()
		if v.Primary != "" && acked {
			return v, nil
		}
		if time.Now().After(deadline) {
			return v, fmt.Errorf("serve: no acknowledged primary within %v (view %d)", timeout, v.Num)
		}
		time.Sleep(d.cfg.PingInterval / 2)
	}
}

// Close tears the deployment down.
func (d *Deployment) Close() {
	close(d.stop)
	<-d.done
	d.mu.Lock()
	procs := make([]*replicaProc, 0, len(d.replicas))
	for name, p := range d.replicas {
		procs = append(procs, p)
		delete(d.replicas, name)
	}
	d.mu.Unlock()
	for _, p := range procs {
		p.r.Close()
		p.srv.Close()
	}
	d.vsSrv.Close()
}

// serveOnLoopback starts an HTTP server on an ephemeral loopback port.
func serveOnLoopback(h http.Handler) (url string, srv *http.Server, err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv = &http.Server{Handler: h}
	go srv.Serve(ln)
	return "http://" + ln.Addr().String(), srv, nil
}
