package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flight"
)

// RequestTimeouts are the replica's per-request-kind deadlines. One
// timeout cannot serve all three RPC kinds: a ping that takes seconds is
// already a liveness failure, while a journal+cache state transfer may
// legitimately run long on a warm deployment — a shared deadline either
// lets pings hang or truncates transfers.
type RequestTimeouts struct {
	// Ping bounds a view-service ping (default 1s — several ping
	// intervals, but far below the transfer ceiling).
	Ping time.Duration
	// Forward bounds one response forward to the backup (default 3s).
	Forward time.Duration
	// Transfer bounds a full state transfer (default 30s).
	Transfer time.Duration
}

func (t RequestTimeouts) fill() RequestTimeouts {
	if t.Ping <= 0 {
		t.Ping = time.Second
	}
	if t.Forward <= 0 {
		t.Forward = 3 * time.Second
	}
	if t.Transfer <= 0 {
		t.Transfer = 30 * time.Second
	}
	return t
}

// ReplicaOptions parameterizes a Replica.
type ReplicaOptions struct {
	// Name is the replica's advertised base URL ("http://127.0.0.1:7401") —
	// its identity at the view service and the address peers forward to.
	Name string
	// ViewURL is the view service's base URL.
	ViewURL string
	// Backend answers queries over this replica's own store handle.
	Backend *Backend
	// CacheEntries bounds the hot-pair cache (0 disables caching).
	CacheEntries int
	// Transport carries the replica's outbound RPC — pings, forwards,
	// transfers (default http.DefaultTransport). The chaos layer's fault
	// injection plugs in here.
	Transport http.RoundTripper
	// Timeouts are the per-request-kind deadlines (zero fields take
	// defaults).
	Timeouts RequestTimeouts
	// MaxInFlight bounds concurrently executing /api/* queries; excess
	// requests are shed with 503 + Retry-After rather than queued into
	// memory exhaustion (0 = unlimited). Internal replication endpoints
	// are never shed: refusing a forward or transfer would turn an
	// overload into a replication stall.
	MaxInFlight int
	// Registry, Recorder, Logger observe the replica (all optional).
	Registry *obs.Registry
	Recorder *flight.Recorder
	Logger   *obs.Logger
}

// Replica is one query server under the view service's command. Both
// replicas run the same code; the view decides the role:
//
//   - The primary executes queries. Before acknowledging a response it
//     journals the response digest under the query's canonical key and —
//     when a backup exists — forwards {key, digest, body} to it. A forward
//     failure is a refusal to acknowledge (502): the client retries and
//     either the backup recovers or the view drops it.
//   - The backup executes nothing. It absorbs forwarded responses into its
//     own journal and cache, rejecting any digest that contradicts what it
//     already journaled (409) — determinism insurance, not an expected
//     path. On promotion it serves warmed pairs from the transferred cache
//     bytes, so no response acknowledged before the failover can be
//     contradicted after it.
//   - A fresh backup first receives a full state transfer (journal + cache
//     snapshot); the primary will not acknowledge past it until the
//     transfer lands.
//
// Non-primaries answer queries with 409 and the current view, steering
// clients to the right server.
type Replica struct {
	name  string
	vsURL string
	be    *Backend
	cache *Cache
	adm   *admission
	log   *obs.Logger
	rec   *flight.Recorder
	start time.Time

	// Per-request-kind HTTP clients over one shared transport: tight
	// deadlines for pings, looser for forwards, loosest for transfers.
	pingHC *http.Client
	fwdHC  *http.Client
	xferHC *http.Client

	requestsC  map[string]*obs.Counter
	latencyH   map[string]*obs.Histogram
	errorsC    *obs.Counter
	shedC      *obs.Counter
	pingFailC  *obs.Counter
	forwardsC  *obs.Counter
	transfersC *obs.Counter
	promoteC   *obs.Counter

	mu         sync.Mutex
	view       View
	journal    map[string]string // canonical query key -> acknowledged digest
	syncedView uint64            // as primary: view whose backup holds our state

	syncMu sync.Mutex // serializes outbound state transfers

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewReplica builds a replica; call Start to begin pinging the view
// service, and mount Handlers on an HTTP server at Name.
func NewReplica(o ReplicaOptions) *Replica {
	r := &Replica{
		name:    o.Name,
		vsURL:   o.ViewURL,
		be:      o.Backend,
		cache:   NewCache(o.CacheEntries),
		adm:     newAdmission(o.MaxInFlight),
		log:     o.Logger,
		rec:     o.Recorder,
		start:   time.Now(),
		journal: make(map[string]string),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	tr := o.Transport
	if tr == nil {
		tr = http.DefaultTransport
	}
	to := o.Timeouts.fill()
	r.pingHC = &http.Client{Transport: tr, Timeout: to.Ping}
	r.fwdHC = &http.Client{Transport: tr, Timeout: to.Forward}
	r.xferHC = &http.Client{Transport: tr, Timeout: to.Transfer}
	r.cache.Instrument(o.Registry)
	r.requestsC = make(map[string]*obs.Counter, len(Endpoints))
	r.latencyH = make(map[string]*obs.Histogram, len(Endpoints))
	if reg := o.Registry; reg != nil {
		for _, ep := range Endpoints {
			r.requestsC[ep] = reg.Counter(fmt.Sprintf(`%s{endpoint=%q}`, MetricRequests, ep),
				"query requests served, by endpoint")
			r.latencyH[ep] = reg.Histogram(fmt.Sprintf(`%s{endpoint=%q}`, MetricLatency, ep),
				"query latency in seconds, by endpoint", obs.DurationBuckets())
		}
		r.errorsC = reg.Counter(MetricErrors, "query requests answered with an error status")
		r.shedC = reg.Counter(MetricShed, "query requests shed by admission control (503 + Retry-After)")
		r.pingFailC = reg.Counter(MetricPingFailures, "view-service pings that failed (unreachable or undecodable)")
		r.forwardsC = reg.Counter(MetricForwards, "responses forwarded to the backup before acknowledgement")
		r.transfersC = reg.Counter(MetricTransfers, "full state transfers sent to a fresh backup")
		r.promoteC = reg.Counter(MetricPromotions, "backup-to-primary promotions on this replica")
	}
	return r
}

// Cache exposes the hot-pair cache (for tests and status pages).
func (r *Replica) Cache() *Cache { return r.cache }

// View returns the replica's latest view of the view.
func (r *Replica) View() View {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.view
}

// Start launches the ping loop at the given interval.
func (r *Replica) Start(interval time.Duration) {
	go func() {
		defer close(r.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			r.PingOnce()
			select {
			case <-r.stop:
				return
			case <-t.C:
			}
		}
	}()
}

// Close stops the ping loop. The HTTP server owning the handlers is shut
// down by the caller.
func (r *Replica) Close() {
	r.stopOnce.Do(func() { close(r.stop) })
	<-r.done
}

// PingOnce sends one ping to the view service and absorbs the returned
// view: promotion bookkeeping on role change, then a state transfer if
// this replica is primary of a view with an unsynced backup. Tests call it
// directly to step the protocol deterministically.
func (r *Replica) PingOnce() {
	r.mu.Lock()
	old := r.view
	r.mu.Unlock()
	resp, err := r.pingHC.Get(fmt.Sprintf("%s/ping?addr=%s&num=%d", r.vsURL, url.QueryEscape(r.name), old.Num))
	if err != nil {
		r.pingFailC.Inc()
		r.log.Printf("viewservice unreachable: %v", err)
		return
	}
	var v View
	err = json.NewDecoder(resp.Body).Decode(&v)
	resp.Body.Close()
	if err != nil {
		r.pingFailC.Inc()
		r.log.Printf("viewservice ping: %v", err)
		return
	}
	if v.Num != old.Num {
		r.mu.Lock()
		r.view = v
		r.mu.Unlock()
		role := "idle"
		switch r.name {
		case v.Primary:
			role = "primary"
		case v.Backup:
			role = "backup"
		}
		if r.name == v.Primary && old.Num > 0 && old.Primary != r.name {
			r.promoteC.Inc()
			r.log.Printf("promoted to primary in view %d (journal %d entries, cache %d)",
				v.Num, r.journalLen(), r.cache.Len())
		} else {
			r.log.Printf("view %d: %s", v.Num, role)
		}
		r.rec.Event(PhViewChange, time.Since(r.start), flight.Attrs{ID: int64(v.Num), S: role})
	}
	r.maybeSync(v)
}

// maybeSync pushes a state transfer when this replica is primary of a view
// whose backup has not received one.
func (r *Replica) maybeSync(v View) {
	if v.Primary != r.name || v.Backup == "" {
		return
	}
	r.mu.Lock()
	synced := r.syncedView == v.Num
	r.mu.Unlock()
	if !synced {
		if err := r.transferTo(v); err != nil {
			r.log.Printf("state transfer to %s failed: %v", v.Backup, err)
		}
	}
}

// transferMsg is the state-transfer payload.
type transferMsg struct {
	View    uint64            `json:"view"`
	Journal map[string]string `json:"journal"`
	Entries []Entry           `json:"entries"`
}

// applyMsg is the per-response forward payload.
type applyMsg struct {
	View   uint64 `json:"view"`
	Key    string `json:"key"`
	Digest string `json:"digest"`
	Body   []byte `json:"body"`
}

// transferTo ships the full journal and cache snapshot to the view's
// backup. Serialized so concurrent queries trigger at most one transfer.
func (r *Replica) transferTo(v View) error {
	r.syncMu.Lock()
	defer r.syncMu.Unlock()
	r.mu.Lock()
	if r.syncedView == v.Num { // raced with another transfer
		r.mu.Unlock()
		return nil
	}
	journal := make(map[string]string, len(r.journal))
	for k, d := range r.journal {
		journal[k] = d
	}
	r.mu.Unlock()
	msg := transferMsg{View: v.Num, Journal: journal, Entries: r.cache.Snapshot()}
	// Background context: a transfer is amortized across every client
	// waiting on it, so no single request's cancellation may abort it.
	if err := r.postJSON(context.Background(), r.xferHC, v.Backup+"/internal/transfer", msg); err != nil {
		return err
	}
	r.mu.Lock()
	r.syncedView = v.Num
	r.mu.Unlock()
	r.transfersC.Inc()
	r.rec.Event(PhTransfer, time.Since(r.start), flight.Attrs{
		ID: int64(v.Num), N: int64(len(journal)), M: int64(len(msg.Entries)),
	})
	r.log.Printf("transferred state to %s: %d journal entries, %d cached responses",
		v.Backup, len(journal), len(msg.Entries))
	return nil
}

func (r *Replica) postJSON(ctx context.Context, hc *http.Client, url string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	// NewRequest over a bytes.Reader sets GetBody, so a chaos transport
	// can legally duplicate the delivery — the receiver's handlers are
	// idempotent and re-application is digest-checked.
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return nil
}

// Handlers returns the replica's HTTP surface, ready to mount on the ops
// mux (ops.Options.Extra) or a bare ServeMux.
func (r *Replica) Handlers() map[string]http.Handler {
	h := map[string]http.Handler{
		"/internal/apply":    http.HandlerFunc(r.handleApply),
		"/internal/transfer": http.HandlerFunc(r.handleTransfer),
	}
	for _, ep := range Endpoints {
		h["/api/"+ep] = r.queryHandler(ep)
	}
	return h
}

// queryHandler wraps one endpoint with role enforcement, the cache, the
// journal, and backup forwarding.
func (r *Replica) queryHandler(endpoint string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		start := time.Now()
		r.requestsC[endpoint].Inc()
		defer func() { r.latencyH[endpoint].Observe(time.Since(start).Seconds()) }()

		// Admission control: shed rather than queue once MaxInFlight
		// queries are executing. 503 + Retry-After tells a generic client
		// this is overload, not failure; the view-aware Client's jittered
		// backoff desynchronizes the retries.
		if !r.adm.tryAcquire() {
			r.shedC.Inc()
			w.Header().Set("Retry-After", "1")
			r.fail(w, http.StatusServiceUnavailable,
				fmt.Sprintf("overloaded: %d queries in flight", r.adm.max))
			return
		}
		defer r.adm.release()

		var q PairQuery
		if endpoint == "series" || endpoint == "paths" || endpoint == "summary" {
			var err error
			if q, err = ParsePairQuery(req.URL.Query()); err != nil {
				r.fail(w, http.StatusBadRequest, err.Error())
				return
			}
		}
		key := q.CanonicalKey(endpoint)

		r.mu.Lock()
		v := r.view
		r.mu.Unlock()
		if v.Primary != r.name {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusConflict)
			json.NewEncoder(w).Encode(map[string]any{
				"error": "not primary", "view": v,
			})
			r.errorsC.Inc()
			return
		}

		if body, digest, ok := r.cache.Get(key); ok {
			r.reply(w, v, digest, body, true)
			return
		}

		body, digest, err := r.be.Answer(req.Context(), endpoint, q)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				// The client went away mid-read; nobody is listening to the
				// status code, but the error counter should not blame the
				// backend.
				return
			}
			r.fail(w, http.StatusInternalServerError, err.Error())
			return
		}

		r.mu.Lock()
		if prev, ok := r.journal[key]; ok && prev != digest {
			r.mu.Unlock()
			r.fail(w, http.StatusInternalServerError,
				fmt.Sprintf("journal divergence for %s: %s != %s", key, digest, prev))
			return
		}
		r.mu.Unlock()

		if v.Backup != "" {
			r.mu.Lock()
			synced := r.syncedView == v.Num
			r.mu.Unlock()
			if !synced {
				if terr := r.transferTo(v); terr != nil {
					r.fail(w, http.StatusServiceUnavailable, "backup not synced: "+terr.Error())
					return
				}
			}
			// The forward rides the request context: if the client gives up,
			// the primary stops trying to replicate an answer it will never
			// acknowledge. The backup may still apply it — harmless, since
			// an unacknowledged digest constrains nothing.
			if ferr := r.postJSON(req.Context(), r.fwdHC, v.Backup+"/internal/apply", applyMsg{
				View: v.Num, Key: key, Digest: digest, Body: body,
			}); ferr != nil {
				// Refuse to acknowledge what the backup has not seen.
				r.fail(w, http.StatusBadGateway, "backup forward failed: "+ferr.Error())
				return
			}
			r.forwardsC.Inc()
		}

		r.mu.Lock()
		r.journal[key] = digest
		r.mu.Unlock()
		r.cache.Put(key, body, digest)
		r.reply(w, v, digest, body, false)
	})
}

// reply writes an acknowledged response.
func (r *Replica) reply(w http.ResponseWriter, v View, digest string, body []byte, hit bool) {
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("X-S2S-Digest", digest)
	h.Set("X-S2S-View", fmt.Sprintf("%d", v.Num))
	h.Set("X-S2S-Served-By", r.name)
	if hit {
		h.Set("X-S2S-Cache", "hit")
	} else {
		h.Set("X-S2S-Cache", "miss")
	}
	w.Write(body)
}

func (r *Replica) fail(w http.ResponseWriter, status int, msg string) {
	r.errorsC.Inc()
	writeJSON(w, status, map[string]string{"error": msg})
}

// handleApply is the backup's side of response forwarding.
func (r *Replica) handleApply(w http.ResponseWriter, req *http.Request) {
	var msg applyMsg
	if err := json.NewDecoder(req.Body).Decode(&msg); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	r.mu.Lock()
	if msg.View < r.view.Num {
		v := r.view
		r.mu.Unlock()
		writeJSON(w, http.StatusConflict, map[string]any{"error": "stale view", "view": v})
		return
	}
	if prev, ok := r.journal[msg.Key]; ok && prev != msg.Digest {
		r.mu.Unlock()
		writeJSON(w, http.StatusConflict, map[string]string{
			"error": fmt.Sprintf("digest conflict for %s: have %s, got %s", msg.Key, prev, msg.Digest),
		})
		return
	}
	r.journal[msg.Key] = msg.Digest
	r.mu.Unlock()
	r.cache.Put(msg.Key, msg.Body, msg.Digest)
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleTransfer installs a full state transfer from the primary.
func (r *Replica) handleTransfer(w http.ResponseWriter, req *http.Request) {
	var msg transferMsg
	if err := json.NewDecoder(req.Body).Decode(&msg); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	r.mu.Lock()
	if msg.View < r.view.Num {
		v := r.view
		r.mu.Unlock()
		writeJSON(w, http.StatusConflict, map[string]any{"error": "stale view", "view": v})
		return
	}
	r.journal = msg.Journal
	if r.journal == nil {
		r.journal = make(map[string]string)
	}
	r.mu.Unlock()
	r.cache.Install(msg.Entries)
	r.log.Printf("installed state transfer: view %d, %d journal entries, %d cached responses",
		msg.View, len(msg.Journal), len(msg.Entries))
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// Journal returns a copy of the acknowledged-response journal (tests
// assert failover safety against it).
func (r *Replica) Journal() map[string]string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]string, len(r.journal))
	for k, d := range r.journal {
		out[k] = d
	}
	return out
}

func (r *Replica) journalLen() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.journal)
}

// admission is a bounded in-flight gate: a semaphore that refuses
// instead of blocking, so overload turns into fast 503s the client can
// back off from, not a queue that grows until the process dies. A nil
// admission admits everything.
type admission struct {
	max   int
	slots chan struct{}
}

func newAdmission(max int) *admission {
	if max <= 0 {
		return nil
	}
	return &admission{max: max, slots: make(chan struct{}, max)}
}

func (a *admission) tryAcquire() bool {
	if a == nil {
		return true
	}
	select {
	case a.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

func (a *admission) release() {
	if a == nil {
		return
	}
	<-a.slots
}
