package serve

import (
	"context"
	"encoding/json"
	"net/netip"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/store"
	"repro/internal/trace"
)

// fixtureInterval is the synthetic campaign cadence.
const fixtureInterval = 6 * time.Hour

// buildStore writes a small deterministic dataset: `servers` servers,
// full mesh, `rounds` rounds at fixtureInterval, v4+v6 traceroutes with
// predictable RTTs plus a v4 ping per round. Hop paths flip between two
// variants halfway through, so path-history epochs are known.
func buildStore(t testing.TB, servers, rounds int) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "fixture.store")
	w, err := store.Create(dir, store.Options{PairShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	w.SetProvenance("serve-test", 42, "deadbeef")
	addr4 := func(id int) netip.Addr {
		return netip.AddrFrom4([4]byte{10, byte(id >> 8), byte(id), 1})
	}
	addr6 := func(id int) netip.Addr {
		var b [16]byte
		b[0], b[14], b[15] = 0x24, byte(id>>8), byte(id)
		return netip.AddrFrom16(b)
	}
	for r := 0; r < rounds; r++ {
		at := time.Duration(r) * fixtureInterval
		for s := 0; s < servers; s++ {
			for d := 0; d < servers; d++ {
				if s == d {
					continue
				}
				for _, v6 := range []bool{false, true} {
					tr := &trace.Traceroute{
						SrcID: s, DstID: d, V6: v6,
						At:       at,
						Complete: true,
						RTT:      rttFor(s, d, r, v6),
					}
					if v6 {
						tr.Src, tr.Dst = addr6(s), addr6(d)
					} else {
						tr.Src, tr.Dst = addr4(s), addr4(d)
					}
					// Two path variants: rounds < rounds/2 use hop 100+s,
					// later rounds hop 200+s — exactly one path change.
					hopID := 100 + s
					if r >= rounds/2 {
						hopID = 200 + s
					}
					tr.Hops = []trace.Hop{
						{Addr: addr4(hopID), RTT: tr.RTT / 2},
						{Addr: tr.Dst, RTT: tr.RTT},
					}
					if err := w.WriteTraceroute(tr); err != nil {
						t.Fatal(err)
					}
				}
				if err := w.WritePing(&trace.Ping{
					SrcID: s, DstID: d,
					Src: addr4(s), Dst: addr4(d),
					At:  at + time.Minute,
					RTT: rttFor(s, d, r, false),
				}); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// rttFor is the fixture's deterministic RTT for (src, dst, round).
func rttFor(s, d, r int, v6 bool) time.Duration {
	ms := 10 + 10*s + d + r
	if v6 {
		ms += 5
	}
	return time.Duration(ms) * time.Millisecond
}

func openTestBackend(t testing.TB, dir string) *Backend {
	t.Helper()
	be, err := OpenBackend(dir, BackendConfig{Interval: fixtureInterval})
	if err != nil {
		t.Fatal(err)
	}
	return be
}

func TestSeries(t *testing.T) {
	const servers, rounds = 3, 8
	be := openTestBackend(t, buildStore(t, servers, rounds))
	q := PairQuery{Src: 0, Dst: 1, To: -1, Step: fixtureInterval}
	resp, err := be.Series(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	// Each round contributes one complete traceroute and one ping.
	if want := 2 * rounds; resp.Samples != want {
		t.Fatalf("samples = %d, want %d", resp.Samples, want)
	}
	if len(resp.Points) != rounds {
		t.Fatalf("points = %d, want %d", len(resp.Points), rounds)
	}
	for i, pt := range resp.Points {
		want := float64(rttFor(0, 1, i, false)) / float64(time.Millisecond)
		if pt.MinMs != want || pt.AvgMs != want || pt.MaxMs != want {
			t.Fatalf("bucket %d: min/avg/max = %v/%v/%v, want %v", i, pt.MinMs, pt.AvgMs, pt.MaxMs, want)
		}
		if pt.Count != 2 {
			t.Fatalf("bucket %d: count = %d, want 2", i, pt.Count)
		}
	}

	// A half-open sub-window keeps only the covered rounds.
	q2 := PairQuery{Src: 0, Dst: 1, From: 2 * fixtureInterval, To: 5 * fixtureInterval, Step: fixtureInterval}
	sub, err := be.Series(context.Background(), q2)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 3; sub.Samples != want {
		t.Fatalf("sub-window samples = %d, want %d", sub.Samples, want)
	}
	if sub.Points[0].AtNS != int64(2*fixtureInterval) {
		t.Fatalf("sub-window first bucket at %d", sub.Points[0].AtNS)
	}
}

func TestPaths(t *testing.T) {
	const rounds = 8
	be := openTestBackend(t, buildStore(t, 3, rounds))
	resp, err := be.Paths(context.Background(), PairQuery{Src: 1, Dst: 2, To: -1})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Traceroutes != rounds {
		t.Fatalf("traceroutes = %d, want %d", resp.Traceroutes, rounds)
	}
	// The fixture flips the hop path exactly once, halfway through.
	if resp.Changes != 1 || len(resp.Epochs) != 2 {
		t.Fatalf("changes = %d epochs = %d, want 1 change in 2 epochs", resp.Changes, len(resp.Epochs))
	}
	for i, ep := range resp.Epochs {
		if ep.Count != rounds/2 {
			t.Fatalf("epoch %d: count = %d, want %d", i, ep.Count, rounds/2)
		}
		if len(ep.Hops) != 2 {
			t.Fatalf("epoch %d: %d hops", i, len(ep.Hops))
		}
	}
	if resp.Epochs[0].Hops[0] == resp.Epochs[1].Hops[0] {
		t.Fatalf("epochs share first hop %s — path change not detected", resp.Epochs[0].Hops[0])
	}
}

func TestAnswerDeterministic(t *testing.T) {
	be := openTestBackend(t, buildStore(t, 3, 6))
	for _, ep := range Endpoints {
		q := PairQuery{Src: 0, Dst: 2, To: -1}
		b1, d1, err := be.Answer(context.Background(), ep, q)
		if err != nil {
			t.Fatalf("%s: %v", ep, err)
		}
		b2, d2, err := be.Answer(context.Background(), ep, q)
		if err != nil {
			t.Fatalf("%s: %v", ep, err)
		}
		if string(b1) != string(b2) || d1 != d2 {
			t.Fatalf("%s: non-deterministic answer (%s vs %s)", ep, d1, d2)
		}
	}
}

func TestPairsAndMeta(t *testing.T) {
	const servers = 3
	be := openTestBackend(t, buildStore(t, servers, 4))
	pairs, err := be.Pairs()
	if err != nil {
		t.Fatal(err)
	}
	// Full mesh, both protocols: n*(n-1) directed pairs, v4 and v6.
	want := servers * (servers - 1) * 2
	if pairs.Count != want || !pairs.Exhaustive {
		t.Fatalf("pairs = %d (exhaustive=%t), want %d exhaustive", pairs.Count, pairs.Exhaustive, want)
	}
	meta, err := be.Meta()
	if err != nil {
		t.Fatal(err)
	}
	if meta.Tool != "serve-test" || meta.Seed != 42 || meta.TopoDigest != "deadbeef" {
		t.Fatalf("meta provenance = %+v", meta)
	}
	if meta.Records == 0 || meta.MaxAtNS <= meta.MinAtNS {
		t.Fatalf("meta extent = %+v", meta)
	}
}

func TestSummaryReplay(t *testing.T) {
	be := openTestBackend(t, buildStore(t, 3, 8))
	resp, err := be.Summary(context.Background(), PairQuery{Src: 0, Dst: 1, To: -1})
	if err != nil {
		t.Fatal(err)
	}
	// 8 rounds x (2 traceroutes + 1 ping) for the pair.
	if resp.Records != 24 {
		t.Fatalf("records = %d, want 24", resp.Records)
	}
	if len(resp.Analyses) == 0 {
		t.Fatalf("no operator statuses")
	}
	// Replay must be reproducible.
	again, err := be.Summary(context.Background(), PairQuery{Src: 0, Dst: 1, To: -1})
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(resp)
	b2, _ := json.Marshal(again)
	if string(b1) != string(b2) {
		t.Fatalf("summary replay differs:\n%s\n%s", b1, b2)
	}
}

func TestParsePairQuery(t *testing.T) {
	q, err := ParsePairQuery(map[string][]string{
		"src": {"3"}, "dst": {"7"}, "v6": {"true"}, "from": {"12h"}, "to": {"86400000000000"},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := PairQuery{Src: 3, Dst: 7, V6: true, From: 12 * time.Hour, To: 24 * time.Hour}
	if !reflect.DeepEqual(q, want) {
		t.Fatalf("parsed %+v, want %+v", q, want)
	}
	for name, bad := range map[string]map[string][]string{
		"missing src":  {"dst": {"1"}},
		"bad v6":       {"src": {"1"}, "dst": {"2"}, "v6": {"maybe"}},
		"empty window": {"src": {"1"}, "dst": {"2"}, "from": {"2h"}, "to": {"1h"}},
	} {
		if _, err := ParsePairQuery(bad); err == nil {
			t.Fatalf("%s: no error", name)
		}
	}
}

func TestCanonicalKeyNormalizes(t *testing.T) {
	a, err := ParsePairQuery(map[string][]string{"src": {"1"}, "dst": {"2"}, "from": {"3h"}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParsePairQuery(map[string][]string{"from": {"10800000000000"}, "dst": {"2"}, "src": {"1"}})
	if err != nil {
		t.Fatal(err)
	}
	if a.CanonicalKey("series") != b.CanonicalKey("series") {
		t.Fatalf("equivalent queries got different keys:\n%s\n%s",
			a.CanonicalKey("series"), b.CanonicalKey("series"))
	}
	if a.CanonicalKey("series") == a.CanonicalKey("paths") {
		t.Fatal("endpoint not part of the canonical key")
	}
}

func TestScheduleDeterministic(t *testing.T) {
	pairs := []trace.PairKey{
		{SrcID: 0, DstID: 1}, {SrcID: 1, DstID: 2}, {SrcID: 2, DstID: 0},
		{SrcID: 0, DstID: 2}, {SrcID: 1, DstID: 0, V6: true},
	}
	a := Schedule(7, 3, pairs, 200, 1.2)
	b := Schedule(7, 3, pairs, 200, 1.2)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (seed, client) produced different schedules")
	}
	c := Schedule(7, 4, pairs, 200, 1.2)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different clients produced identical schedules")
	}
	valid := map[string]bool{}
	for _, ep := range Endpoints {
		valid[ep] = true
	}
	hist := map[string]int{}
	for _, q := range a {
		if !valid[q.Endpoint] {
			t.Fatalf("unknown endpoint %q in schedule", q.Endpoint)
		}
		hist[q.Endpoint]++
	}
	if hist["series"] == 0 || hist["paths"] == 0 {
		t.Fatalf("degenerate endpoint mix: %v", hist)
	}
	// Zipf skew: the most popular pair must dominate the tail.
	counts := map[trace.PairKey]int{}
	for _, q := range a {
		counts[q.Pair]++
	}
	if counts[pairs[0]] <= counts[pairs[len(pairs)-1]] {
		t.Fatalf("no popularity skew: head=%d tail=%d", counts[pairs[0]], counts[pairs[len(pairs)-1]])
	}
}
