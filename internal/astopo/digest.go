package astopo

import (
	"fmt"
	"hash/fnv"
)

// Digest returns a short stable fingerprint of the topology: an FNV-1a
// hash over every AS (number, tier, footprint), link (endpoints,
// relationship, kind, location), and IXP, in their canonical order. Two
// topologies generated from the same parameters digest identically, so a
// run manifest carrying the digest pins exactly which virtual Internet a
// dataset was measured on.
func (t *Topology) Digest() string {
	h := fnv.New64a()
	u64 := func(v uint64) {
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	u64(uint64(len(t.ASes)))
	for _, as := range t.ASes {
		u64(uint64(as.ASN))
		u64(uint64(as.Tier))
		u64(uint64(as.HomeCity))
		u64(uint64(len(as.Footprint)))
		for _, c := range as.Footprint {
			u64(uint64(c))
		}
	}
	u64(uint64(len(t.Links)))
	for _, l := range t.Links {
		u64(uint64(l.A))
		u64(uint64(l.B))
		u64(uint64(l.Rel) & 0xff)
		u64(uint64(l.Kind))
		u64(uint64(l.City))
		u64(uint64(int64(l.IXP)))
	}
	u64(uint64(len(t.IXPs)))
	for _, ix := range t.IXPs {
		u64(uint64(len(ix.Name)))
		h.Write([]byte(ix.Name))
		u64(uint64(ix.City))
	}
	u64(uint64(t.CDNASN))
	return fmt.Sprintf("%016x", h.Sum64())
}
