package astopo

import (
	"testing"

	"repro/internal/geo"
	"repro/internal/ipam"
)

func genTest(t *testing.T, seed int64) *Topology {
	t.Helper()
	topo, err := Generate(DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestGenerateBasicShape(t *testing.T) {
	topo := genTest(t, 1)
	cfg := DefaultConfig(1)
	if len(topo.ASes) != cfg.NumASes {
		t.Errorf("got %d ASes, want %d", len(topo.ASes), cfg.NumASes)
	}
	var t1, t2, stub, cdn int
	for _, as := range topo.ASes {
		switch as.Tier {
		case Tier1:
			t1++
		case Tier2:
			t2++
		case Stub:
			stub++
		case CDN:
			cdn++
		}
	}
	if t1 != cfg.NumTier1 {
		t.Errorf("tier1 count = %d, want %d", t1, cfg.NumTier1)
	}
	if cdn != 1 {
		t.Errorf("cdn count = %d, want 1", cdn)
	}
	if t2 < 10 || stub < 100 {
		t.Errorf("unexpected tier sizes: t2=%d stub=%d", t2, stub)
	}
	if len(topo.IXPs) != cfg.NumIXPs {
		t.Errorf("IXPs = %d, want %d", len(topo.IXPs), cfg.NumIXPs)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := genTest(t, 42)
	b := genTest(t, 42)
	if len(a.Links) != len(b.Links) {
		t.Fatalf("link counts differ: %d vs %d", len(a.Links), len(b.Links))
	}
	for i := range a.Links {
		if a.Links[i] != b.Links[i] {
			t.Fatalf("link %d differs: %+v vs %+v", i, a.Links[i], b.Links[i])
		}
	}
	for i := range a.ASes {
		if a.ASes[i].ASN != b.ASes[i].ASN || a.ASes[i].HomeCity != b.ASes[i].HomeCity {
			t.Fatalf("AS %d differs", i)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a := genTest(t, 1)
	b := genTest(t, 2)
	if len(a.Links) == len(b.Links) {
		same := true
		for i := range a.Links {
			if a.Links[i] != b.Links[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical topologies")
		}
	}
}

func TestTier1Clique(t *testing.T) {
	topo := genTest(t, 3)
	var t1s []ipam.ASN
	for _, as := range topo.ASes {
		if as.Tier == Tier1 {
			t1s = append(t1s, as.ASN)
		}
	}
	for i := 0; i < len(t1s); i++ {
		for j := i + 1; j < len(t1s); j++ {
			if topo.Rel(t1s[i], t1s[j]) != RelPeer {
				t.Errorf("tier1 %v-%v not peers: %v", t1s[i], t1s[j], topo.Rel(t1s[i], t1s[j]))
			}
		}
	}
}

func TestRelationshipSymmetry(t *testing.T) {
	topo := genTest(t, 4)
	for _, l := range topo.Links {
		ab, ba := topo.Rel(l.A, l.B), topo.Rel(l.B, l.A)
		if ab.Invert() != ba {
			t.Errorf("asymmetric relationship %v-%v: %v / %v", l.A, l.B, ab, ba)
		}
		if ab == RelNone {
			t.Errorf("link %v-%v has RelNone", l.A, l.B)
		}
	}
	// Non-adjacent pair.
	if r := topo.Rel(topo.ASes[0].ASN, 999999); r != RelNone {
		t.Errorf("non-adjacent rel = %v, want none", r)
	}
}

func TestEveryASHasProviderPathToTier1(t *testing.T) {
	topo := genTest(t, 5)
	for _, as := range topo.ASes {
		if as.Tier == Tier1 {
			continue
		}
		if !topo.uphillReachesTier1(as.ASN) {
			t.Errorf("%v (%v) has no uphill path to tier-1", as.ASN, as.Tier)
		}
	}
}

func TestCDNProperties(t *testing.T) {
	topo := genTest(t, 6)
	cdn, ok := topo.AS(topo.CDNASN)
	if !ok {
		t.Fatal("CDN AS missing")
	}
	if cdn.Tier != CDN {
		t.Errorf("CDN tier = %v", cdn.Tier)
	}
	if len(cdn.Footprint) < len(geo.Cities)/2 {
		t.Errorf("CDN footprint = %d cities, want most of %d", len(cdn.Footprint), len(geo.Cities))
	}
	if len(topo.Providers(cdn.ASN)) < 2 {
		t.Errorf("CDN providers = %d, want >= 2 (multihomed)", len(topo.Providers(cdn.ASN)))
	}
	if len(topo.Peers(cdn.ASN)) < 5 {
		t.Errorf("CDN peers = %d, want >= 5 (open peering)", len(topo.Peers(cdn.ASN)))
	}
	if !topo.DualStack(cdn.ASN) {
		t.Error("CDN must be dual-stack")
	}
}

func TestLinkKinds(t *testing.T) {
	topo := genTest(t, 7)
	kinds := map[LinkKind]int{}
	for _, l := range topo.Links {
		kinds[l.Kind]++
		if l.Kind == IXPPeering {
			if l.IXP < 0 || l.IXP >= len(topo.IXPs) {
				t.Errorf("IXP link %v-%v has bad IXP index %d", l.A, l.B, l.IXP)
			}
			if l.City != topo.IXPs[l.IXP].City {
				t.Errorf("IXP link city %d != IXP city %d", l.City, topo.IXPs[l.IXP].City)
			}
			if l.Rel != RelPeer {
				t.Errorf("IXP link %v-%v is %v, want p2p", l.A, l.B, l.Rel)
			}
		} else if l.IXP != -1 {
			t.Errorf("non-IXP link %v-%v has IXP index %d", l.A, l.B, l.IXP)
		}
		if l.Kind == Transit && l.Rel == RelPeer {
			t.Errorf("transit link %v-%v marked p2p", l.A, l.B)
		}
		if l.City < 0 || l.City >= len(geo.Cities) {
			t.Errorf("link %v-%v has invalid city %d", l.A, l.B, l.City)
		}
	}
	for _, k := range []LinkKind{Transit, PrivatePeering, IXPPeering} {
		if kinds[k] == 0 {
			t.Errorf("no links of kind %v generated", k)
		}
	}
}

func TestFootprintsValid(t *testing.T) {
	topo := genTest(t, 8)
	for _, as := range topo.ASes {
		if len(as.Footprint) == 0 {
			t.Errorf("%v has empty footprint", as.ASN)
			continue
		}
		if !inFootprint(as, as.HomeCity) {
			t.Errorf("%v home city %d not in footprint", as.ASN, as.HomeCity)
		}
		seen := map[int]bool{}
		for _, c := range as.Footprint {
			if c < 0 || c >= len(geo.Cities) {
				t.Errorf("%v footprint city %d invalid", as.ASN, c)
			}
			if seen[c] {
				t.Errorf("%v footprint has duplicate city %d", as.ASN, c)
			}
			seen[c] = true
		}
	}
}

func TestDualStackFlagsAndLinks(t *testing.T) {
	topo := genTest(t, 9)
	nv6 := 0
	for _, as := range topo.ASes {
		if topo.DualStack(as.ASN) {
			nv6++
		}
	}
	if nv6 < len(topo.ASes)/3 || nv6 == len(topo.ASes) {
		t.Errorf("dual-stack ASes = %d of %d, want a strict majority subset", nv6, len(topo.ASes))
	}
	v6links, v4only := 0, 0
	for _, l := range topo.Links {
		if topo.LinkHasV6(l.A, l.B) {
			v6links++
			if !topo.DualStack(l.A) || !topo.DualStack(l.B) {
				t.Errorf("v6 link %v-%v between non-dual-stack ASes", l.A, l.B)
			}
		} else if topo.DualStack(l.A) && topo.DualStack(l.B) {
			v4only++
		}
	}
	if v6links == 0 {
		t.Error("no v6-capable links generated")
	}
	if v4only == 0 {
		t.Error("expected some v4-only links between dual-stack ASes")
	}
}

func TestSharedCitiesAndNearestPair(t *testing.T) {
	a := &AS{ASN: 1, Footprint: []int{1, 3, 5}}
	b := &AS{ASN: 2, Footprint: []int{5, 7}}
	got := SharedCities(a, b)
	if len(got) != 1 || got[0] != 5 {
		t.Errorf("SharedCities = %v, want [5]", got)
	}
	c := &AS{ASN: 3, Footprint: []int{0}}
	d := &AS{ASN: 4, Footprint: []int{1, 2}}
	ca, cb := NearestCityPair(c, d)
	if ca != 0 {
		t.Errorf("NearestCityPair first = %d, want 0", ca)
	}
	if cb != 1 && cb != 2 {
		t.Errorf("NearestCityPair second = %d", cb)
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.NumTier1 = 1
	if _, err := Generate(cfg); err == nil {
		t.Error("NumTier1=1 should error")
	}
	cfg = DefaultConfig(1)
	cfg.NumASes = 5
	if _, err := Generate(cfg); err == nil {
		t.Error("tiny NumASes should error")
	}
	cfg = DefaultConfig(1)
	cfg.NumIXPs = 1000
	if _, err := Generate(cfg); err == nil {
		t.Error("huge NumIXPs should error")
	}
}

func TestRelationshipStringAndInvert(t *testing.T) {
	if RelCustomer.String() != "c2p" || RelProvider.String() != "p2c" || RelPeer.String() != "p2p" || RelNone.String() != "none" {
		t.Error("relationship strings wrong")
	}
	if RelCustomer.Invert() != RelProvider || RelProvider.Invert() != RelCustomer || RelPeer.Invert() != RelPeer {
		t.Error("relationship inversion wrong")
	}
}

func TestIXPMembers(t *testing.T) {
	topo := genTest(t, 10)
	total := 0
	for i := range topo.IXPs {
		ms := topo.IXPMembers(i)
		total += len(ms)
		for _, m := range ms {
			if _, ok := topo.AS(m); !ok {
				t.Errorf("IXP %d member %v unknown", i, m)
			}
		}
	}
	if total == 0 {
		t.Error("no IXP memberships generated")
	}
	if topo.IXPMembers(-1) != nil || topo.IXPMembers(len(topo.IXPs)) != nil {
		t.Error("out-of-range IXP index should return nil")
	}
}

func TestTierStrings(t *testing.T) {
	if Tier1.String() != "tier1" || CDN.String() != "cdn" || Stub.String() != "stub" || Tier2.String() != "tier2" {
		t.Error("tier strings wrong")
	}
	if Transit.String() != "transit" || PrivatePeering.String() != "private-peering" || IXPPeering.String() != "ixp-peering" {
		t.Error("link kind strings wrong")
	}
}

func TestBuilder(t *testing.T) {
	topo, err := NewBuilder().
		IXP("Test-IX", 0).
		AS(10, Tier1, "T1", 0, 1).
		AS(100, Tier2, "T2", 0).
		AS(200, Stub, "S", 1).
		AS(20940, CDN, "CDN", 0, 1).
		Link(100, 10, RelCustomer, Transit, 0).
		Link(200, 10, RelCustomer, Transit, 1).
		Link(20940, 10, RelCustomer, Transit, 0).
		IXPLink(100, 20940, 0).
		Member(0, 100).
		Member(0, 20940).
		V4Only(200).
		V4OnlyLink(100, 10).
		Build(true)
	if err != nil {
		t.Fatal(err)
	}
	if topo.CDNASN != 20940 {
		t.Errorf("CDN ASN = %v", topo.CDNASN)
	}
	if ns := topo.Neighbors(10); len(ns) != 3 {
		t.Errorf("Neighbors(10) = %v", ns)
	}
	if l, ok := topo.LinkBetween(100, 10); !ok || l.Kind != Transit {
		t.Errorf("LinkBetween = %+v, %v", l, ok)
	}
	if _, ok := topo.LinkBetween(100, 200); ok {
		t.Error("non-adjacent LinkBetween should miss")
	}
	if cs := topo.Customers(10); len(cs) != 3 {
		t.Errorf("Customers(10) = %v", cs)
	}
	if topo.DualStack(200) {
		t.Error("V4Only not applied")
	}
	if topo.LinkHasV6(100, 10) {
		t.Error("V4OnlyLink not applied")
	}
	if !topo.LinkHasV6(100, 20940) {
		t.Error("dual-stack IXP link should carry v6")
	}
	if ms := topo.IXPMembers(0); len(ms) != 2 {
		t.Errorf("IXP members = %v", ms)
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder().AS(1, Stub, "s").Build(false); err == nil {
		t.Error("empty footprint should error")
	}
	if _, err := NewBuilder().AS(1, Stub, "a", 0).AS(1, Stub, "b", 0).Build(false); err == nil {
		t.Error("duplicate ASN should error")
	}
	if _, err := NewBuilder().V4Only(9).Build(false); err == nil {
		t.Error("V4Only on unknown AS should error")
	}
	if _, err := NewBuilder().AS(1, Stub, "a", 0).Link(1, 2, RelPeer, PrivatePeering, 0).Build(false); err == nil {
		t.Error("link to unknown AS should error")
	}
	if _, err := NewBuilder().AS(1, Stub, "a", 0).AS(2, Stub, "b", 0).
		Link(1, 2, RelPeer, PrivatePeering, 0).
		Link(1, 2, RelPeer, PrivatePeering, 0).Build(false); err == nil {
		t.Error("duplicate link should error")
	}
	if _, err := NewBuilder().AS(1, Stub, "a", 0).AS(2, Stub, "b", 0).IXPLink(1, 2, 0).Build(false); err == nil {
		t.Error("IXPLink without IXP should error")
	}
	if _, err := NewBuilder().Member(3, 1).Build(false); err == nil {
		t.Error("Member with bad IXP index should error")
	}
	if _, err := NewBuilder().AS(1, Stub, "a", 0).V4OnlyLink(1, 9).Build(false); err == nil {
		t.Error("V4OnlyLink on missing link should error")
	}
	// Validation: a stub with no provider fails Validate.
	if _, err := NewBuilder().AS(1, Stub, "a", 0).Build(true); err == nil {
		t.Error("providerless stub should fail validation")
	}
	// Error sticks: further calls no-op, Build reports the first error.
	b := NewBuilder().V4Only(9)
	b.AS(1, Stub, "a", 0)
	if _, err := b.Build(false); err == nil {
		t.Error("sticky error lost")
	}
}
