// Package astopo generates the AS-level topology of the simulated Internet
// core: a tiered AS graph (tier-1 clique, regional transit, stubs, and a
// globally deployed CDN AS) with customer-to-provider and peer-to-peer
// relationships, IXPs, and geographic footprints over the city database.
//
// The generated relationships are ground truth. The analysis side
// (internal/core/ownership) only ever sees the exported "inferred
// relationship" view, mirroring the paper's use of CAIDA's AS relationship
// inferences.
package astopo

import (
	"fmt"
	"sort"

	"repro/internal/geo"
	"repro/internal/ipam"
)

// Relationship describes the business relationship between two adjacent
// ASes, from the perspective of the first AS.
type Relationship int8

// Relationship values.
const (
	RelNone     Relationship = iota // not adjacent
	RelCustomer                     // first AS is a customer of the second (c2p)
	RelProvider                     // first AS is a provider of the second (p2c)
	RelPeer                         // settlement-free peers (p2p)
)

// String returns the CAIDA-style relationship label.
func (r Relationship) String() string {
	switch r {
	case RelCustomer:
		return "c2p"
	case RelProvider:
		return "p2c"
	case RelPeer:
		return "p2p"
	default:
		return "none"
	}
}

// Invert returns the relationship from the other AS's perspective.
func (r Relationship) Invert() Relationship {
	switch r {
	case RelCustomer:
		return RelProvider
	case RelProvider:
		return RelCustomer
	default:
		return r
	}
}

// Tier classifies an AS's role in the hierarchy.
type Tier uint8

// Tiers.
const (
	Tier1 Tier = iota // transit-free clique
	Tier2             // regional / national transit
	Stub              // edge networks (eyeball, enterprise, hosting)
	CDN               // the content delivery network under study
)

// String returns the tier name.
func (t Tier) String() string {
	switch t {
	case Tier1:
		return "tier1"
	case Tier2:
		return "tier2"
	case Stub:
		return "stub"
	case CDN:
		return "cdn"
	default:
		return fmt.Sprintf("tier(%d)", uint8(t))
	}
}

// AS is one autonomous system.
type AS struct {
	ASN  ipam.ASN
	Tier Tier
	Name string

	// HomeCity indexes geo.Cities; Footprint lists the city indices where
	// the AS operates points of presence (always includes HomeCity).
	HomeCity  int
	Footprint []int
}

// LinkKind describes how two ASes interconnect.
type LinkKind uint8

// Link kinds.
const (
	Transit        LinkKind = iota // c2p interconnection
	PrivatePeering                 // p2p over a private cross-connect
	IXPPeering                     // p2p over an IXP's public switching fabric
)

// String returns the link-kind name.
func (k LinkKind) String() string {
	switch k {
	case Transit:
		return "transit"
	case PrivatePeering:
		return "private-peering"
	case IXPPeering:
		return "ixp-peering"
	default:
		return fmt.Sprintf("linkkind(%d)", uint8(k))
	}
}

// Link is an AS-level adjacency. Rel is A's relationship to B.
type Link struct {
	A, B ipam.ASN
	Rel  Relationship
	Kind LinkKind
	City int // geo.Cities index of the interconnection location
	IXP  int // IXP index when Kind == IXPPeering, else -1
}

// IXP is an Internet exchange point with a public switching fabric.
type IXP struct {
	Name string
	City int // geo.Cities index
}

// Topology is the generated AS-level graph.
type Topology struct {
	ASes  []*AS // sorted by ASN
	Links []Link
	IXPs  []IXP

	CDNASN ipam.ASN

	byASN      map[ipam.ASN]*AS
	rel        map[[2]ipam.ASN]Relationship
	adj        map[ipam.ASN][]ipam.ASN
	link       map[[2]ipam.ASN]int // canonical pair -> index into Links
	v6         map[ipam.ASN]bool
	linkHasV6  map[[2]ipam.ASN]bool
	ixpMembers [][]ipam.ASN
}

// DualStack reports whether the AS supports IPv6 in addition to IPv4.
func (t *Topology) DualStack(a ipam.ASN) bool { return t.v6[a] }

// LinkHasV6 reports whether the link between a and b carries IPv6.
func (t *Topology) LinkHasV6(a, b ipam.ASN) bool { return t.linkHasV6[pairKey(a, b)] }

// IXPMembers returns the ASNs present on the ix-th IXP's fabric.
func (t *Topology) IXPMembers(ix int) []ipam.ASN {
	if ix < 0 || ix >= len(t.ixpMembers) {
		return nil
	}
	return t.ixpMembers[ix]
}

// AS returns the AS with the given number.
func (t *Topology) AS(asn ipam.ASN) (*AS, bool) {
	a, ok := t.byASN[asn]
	return a, ok
}

// Rel returns a's relationship to b (RelNone when not adjacent).
func (t *Topology) Rel(a, b ipam.ASN) Relationship {
	return t.rel[[2]ipam.ASN{a, b}]
}

// Neighbors returns the ASNs adjacent to a, sorted.
func (t *Topology) Neighbors(a ipam.ASN) []ipam.ASN { return t.adj[a] }

// LinkBetween returns the AS-level link between a and b.
func (t *Topology) LinkBetween(a, b ipam.ASN) (Link, bool) {
	i, ok := t.link[pairKey(a, b)]
	if !ok {
		return Link{}, false
	}
	return t.Links[i], true
}

// Providers returns the ASes of which a is a customer.
func (t *Topology) Providers(a ipam.ASN) []ipam.ASN { return t.withRel(a, RelCustomer) }

// Customers returns the ASes that are customers of a.
func (t *Topology) Customers(a ipam.ASN) []ipam.ASN { return t.withRel(a, RelProvider) }

// Peers returns a's settlement-free peers.
func (t *Topology) Peers(a ipam.ASN) []ipam.ASN { return t.withRel(a, RelPeer) }

func (t *Topology) withRel(a ipam.ASN, want Relationship) []ipam.ASN {
	var out []ipam.ASN
	for _, n := range t.adj[a] {
		if t.Rel(a, n) == want {
			out = append(out, n)
		}
	}
	return out
}

// addLink registers a link and both relationship directions.
func (t *Topology) addLink(l Link) error {
	k := pairKey(l.A, l.B)
	if _, dup := t.link[k]; dup {
		return fmt.Errorf("astopo: duplicate link %v-%v", l.A, l.B)
	}
	if l.A == l.B {
		return fmt.Errorf("astopo: self link %v", l.A)
	}
	t.link[k] = len(t.Links)
	t.Links = append(t.Links, l)
	t.rel[[2]ipam.ASN{l.A, l.B}] = l.Rel
	t.rel[[2]ipam.ASN{l.B, l.A}] = l.Rel.Invert()
	t.adj[l.A] = append(t.adj[l.A], l.B)
	t.adj[l.B] = append(t.adj[l.B], l.A)
	return nil
}

func (t *Topology) sortAdjacency() {
	for asn := range t.adj {
		ns := t.adj[asn]
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	}
}

func pairKey(a, b ipam.ASN) [2]ipam.ASN {
	if a > b {
		a, b = b, a
	}
	return [2]ipam.ASN{a, b}
}

// SharedCities returns the city indices present in both footprints, sorted.
func SharedCities(a, b *AS) []int {
	in := make(map[int]bool, len(a.Footprint))
	for _, c := range a.Footprint {
		in[c] = true
	}
	var out []int
	for _, c := range b.Footprint {
		if in[c] {
			out = append(out, c)
		}
	}
	sort.Ints(out)
	return out
}

// NearestCityPair returns the pair of footprint cities (one per AS) with the
// smallest great-circle distance. It is used to site private interconnects
// when the footprints do not overlap.
func NearestCityPair(a, b *AS) (ca, cb int) {
	best := -1.0
	ca, cb = a.Footprint[0], b.Footprint[0]
	for _, i := range a.Footprint {
		for _, j := range b.Footprint {
			d := geo.Cities[i].DistanceKm(geo.Cities[j])
			if best < 0 || d < best {
				best, ca, cb = d, i, j
			}
		}
	}
	return ca, cb
}
