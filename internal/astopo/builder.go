package astopo

import (
	"fmt"
	"sort"

	"repro/internal/ipam"
)

// Builder assembles a Topology by hand. It is used by tests and by callers
// that want a specific scenario (e.g. the Figure 1 Hong Kong ⇄ Osaka
// illustration) rather than a generated graph.
type Builder struct {
	t   *Topology
	err error
}

// NewBuilder returns an empty topology builder.
func NewBuilder() *Builder {
	return &Builder{t: &Topology{
		byASN:     make(map[ipam.ASN]*AS),
		rel:       make(map[[2]ipam.ASN]Relationship),
		adj:       make(map[ipam.ASN][]ipam.ASN),
		link:      make(map[[2]ipam.ASN]int),
		v6:        make(map[ipam.ASN]bool),
		linkHasV6: make(map[[2]ipam.ASN]bool),
		CDNASN:    CDNASNumber,
	}}
}

// AS adds an AS. footprint must be non-empty; the first city is the home.
func (b *Builder) AS(asn ipam.ASN, tier Tier, name string, footprint ...int) *Builder {
	if b.err != nil {
		return b
	}
	if len(footprint) == 0 {
		b.err = fmt.Errorf("astopo: AS %v needs a footprint", asn)
		return b
	}
	if _, dup := b.t.byASN[asn]; dup {
		b.err = fmt.Errorf("astopo: duplicate AS %v", asn)
		return b
	}
	as := &AS{ASN: asn, Tier: tier, Name: name, HomeCity: footprint[0], Footprint: footprint}
	b.t.register(as)
	b.t.v6[asn] = true // dual-stack by default; see V4Only
	if tier == CDN {
		b.t.CDNASN = asn
	}
	return b
}

// V4Only marks an already-added AS as IPv4-only.
func (b *Builder) V4Only(asn ipam.ASN) *Builder {
	if b.err != nil {
		return b
	}
	if _, ok := b.t.byASN[asn]; !ok {
		b.err = fmt.Errorf("astopo: V4Only: unknown AS %v", asn)
		return b
	}
	b.t.v6[asn] = false
	return b
}

// Link adds a link; rel is a's relationship to b. city is a geo.Cities
// index. The link carries IPv6 iff both endpoints are dual-stack.
func (b *Builder) Link(a, asnB ipam.ASN, rel Relationship, kind LinkKind, city int) *Builder {
	return b.linkIXP(a, asnB, rel, kind, city, -1)
}

// IXPLink adds an IXP peering link over the ix-th IXP added via IXP.
func (b *Builder) IXPLink(a, asnB ipam.ASN, ix int) *Builder {
	if b.err != nil {
		return b
	}
	if ix < 0 || ix >= len(b.t.IXPs) {
		b.err = fmt.Errorf("astopo: IXPLink: bad IXP index %d", ix)
		return b
	}
	return b.linkIXP(a, asnB, RelPeer, IXPPeering, b.t.IXPs[ix].City, ix)
}

func (b *Builder) linkIXP(a, asnB ipam.ASN, rel Relationship, kind LinkKind, city, ix int) *Builder {
	if b.err != nil {
		return b
	}
	for _, asn := range []ipam.ASN{a, asnB} {
		if _, ok := b.t.byASN[asn]; !ok {
			b.err = fmt.Errorf("astopo: Link: unknown AS %v", asn)
			return b
		}
	}
	l := Link{A: a, B: asnB, Rel: rel, Kind: kind, City: city, IXP: ix}
	if err := b.t.addLink(l); err != nil {
		b.err = err
		return b
	}
	b.t.linkHasV6[pairKey(a, asnB)] = b.t.v6[a] && b.t.v6[asnB]
	return b
}

// V4OnlyLink marks an existing link as not carrying IPv6.
func (b *Builder) V4OnlyLink(a, asnB ipam.ASN) *Builder {
	if b.err != nil {
		return b
	}
	if _, ok := b.t.link[pairKey(a, asnB)]; !ok {
		b.err = fmt.Errorf("astopo: V4OnlyLink: no link %v-%v", a, asnB)
		return b
	}
	b.t.linkHasV6[pairKey(a, asnB)] = false
	return b
}

// IXP adds an exchange point at the given city and returns its index via
// the topology's IXPs slice.
func (b *Builder) IXP(name string, city int) *Builder {
	if b.err != nil {
		return b
	}
	b.t.IXPs = append(b.t.IXPs, IXP{Name: name, City: city})
	b.t.ixpMembers = append(b.t.ixpMembers, nil)
	return b
}

// Member records an AS on an IXP's fabric.
func (b *Builder) Member(ix int, asn ipam.ASN) *Builder {
	if b.err != nil {
		return b
	}
	if ix < 0 || ix >= len(b.t.IXPs) {
		b.err = fmt.Errorf("astopo: Member: bad IXP index %d", ix)
		return b
	}
	b.t.ixpMembers[ix] = append(b.t.ixpMembers[ix], asn)
	return b
}

// Build finalizes and validates the topology. Pass validate=false for
// deliberately irregular test graphs.
func (b *Builder) Build(validate bool) (*Topology, error) {
	if b.err != nil {
		return nil, b.err
	}
	b.t.sortAdjacency()
	sort.Slice(b.t.ASes, func(i, j int) bool { return b.t.ASes[i].ASN < b.t.ASes[j].ASN })
	if validate {
		if err := b.t.Validate(); err != nil {
			return nil, err
		}
	}
	return b.t, nil
}
