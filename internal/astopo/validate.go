package astopo

import (
	"fmt"

	"repro/internal/ipam"
)

// Validate checks structural invariants of the topology:
//
//   - every non-tier-1 AS has at least one provider (so the
//     customer-provider hierarchy is rooted at the clique);
//   - the customer→provider digraph is acyclic;
//   - relationships are stored consistently in both directions;
//   - every AS is reachable from every other over a valley-free path in the
//     IPv4 plane.
func (t *Topology) Validate() error {
	for _, as := range t.ASes {
		if as.Tier == Tier1 {
			continue
		}
		if len(t.Providers(as.ASN)) == 0 {
			return fmt.Errorf("astopo: %v (%s) has no provider", as.ASN, as.Tier)
		}
	}
	if err := t.checkProviderAcyclic(); err != nil {
		return err
	}
	for _, l := range t.Links {
		if t.Rel(l.A, l.B) != l.Rel || t.Rel(l.B, l.A) != l.Rel.Invert() {
			return fmt.Errorf("astopo: inconsistent relationship on %v-%v", l.A, l.B)
		}
	}
	return t.checkValleyFreeReachability()
}

func (t *Topology) checkProviderAcyclic() error {
	const (
		unvisited = 0
		inStack   = 1
		done      = 2
	)
	state := make(map[ipam.ASN]int, len(t.ASes))
	var visit func(a ipam.ASN) error
	visit = func(a ipam.ASN) error {
		state[a] = inStack
		for _, p := range t.Providers(a) {
			switch state[p] {
			case inStack:
				return fmt.Errorf("astopo: provider cycle through %v and %v", a, p)
			case unvisited:
				if err := visit(p); err != nil {
					return err
				}
			}
		}
		state[a] = done
		return nil
	}
	for _, as := range t.ASes {
		if state[as.ASN] == unvisited {
			if err := visit(as.ASN); err != nil {
				return err
			}
		}
	}
	return nil
}

// checkValleyFreeReachability verifies that every AS can reach every other
// AS by a route of the form customer←...←customer ← (peer)? ← provider←...
// (i.e. the standard uphill, optional peer step, downhill shape). Because
// customer routes are exported to everyone and the tier-1 clique is fully
// meshed, reachability holds by construction; this check guards the
// generator against regressions.
func (t *Topology) checkValleyFreeReachability() error {
	// An AS can send traffic to destination D if D is reachable downhill
	// from some AS that the sender can reach uphill (through providers),
	// possibly crossing one peer edge at the top.
	//
	// upset(a): ASes reachable from a by repeatedly moving to providers
	// (including a itself).
	// downset(d): ASes from which d is reachable by moving only to
	// customers (i.e. d's "customer cone" ancestors — every AS whose
	// customer chain leads down to d), including d itself.
	//
	// a reaches d iff upset(a) ∩ (downset-or-peer-of-downset)(d) ≠ ∅.
	// Checking all pairs exactly would be O(N²); instead verify the
	// sufficient structural condition: every AS's upset includes a tier-1,
	// and every AS's downset-closure includes a tier-1. With the tier-1
	// full mesh, that implies all-pairs reachability.
	for _, as := range t.ASes {
		if !t.uphillReachesTier1(as.ASN) {
			return fmt.Errorf("astopo: %v cannot reach the tier-1 clique uphill", as.ASN)
		}
	}
	return nil
}

func (t *Topology) uphillReachesTier1(a ipam.ASN) bool {
	seen := map[ipam.ASN]bool{a: true}
	stack := []ipam.ASN{a}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if as, ok := t.AS(cur); ok && as.Tier == Tier1 {
			return true
		}
		for _, p := range t.Providers(cur) {
			if !seen[p] {
				seen[p] = true
				stack = append(stack, p)
			}
		}
	}
	return false
}
