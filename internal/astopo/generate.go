package astopo

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/geo"
	"repro/internal/ipam"
)

// Config parameterizes topology generation. The zero value is not usable;
// call DefaultConfig or fill in every field.
type Config struct {
	Seed int64

	// NumASes is the total number of ASes, including tier-1s and the CDN.
	NumASes int
	// NumTier1 is the size of the transit-free clique.
	NumTier1 int
	// Tier2Frac is the fraction of ASes that provide regional transit.
	Tier2Frac float64
	// NumIXPs is the number of Internet exchange points.
	NumIXPs int

	// T2PeerProb is the probability that two tier-2s colocated at an IXP
	// establish a settlement-free peering.
	T2PeerProb float64
	// StubMultihomeProb is the probability a stub has a second provider.
	StubMultihomeProb float64
	// CDNPeerProb is the probability the CDN peers with a given tier-2 or
	// stub at a shared IXP (CDNs peer openly).
	CDNPeerProb float64

	// V6Tier1Prob, V6Tier2Prob, V6StubProb are per-tier probabilities that
	// an AS is dual-stack. V4OnlyLinkProb is the chance a link between two
	// dual-stack ASes nevertheless carries only IPv4, which makes the v6
	// AS-level graph a distinct (sparser) graph — the source of the
	// IPv4-vs-IPv6 path differences in Section 6.
	V6Tier1Prob, V6Tier2Prob, V6StubProb float64
	V4OnlyLinkProb                       float64
}

// DefaultConfig returns a laptop-scale configuration.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:              seed,
		NumASes:           300,
		NumTier1:          10,
		Tier2Frac:         0.20,
		NumIXPs:           12,
		T2PeerProb:        0.5,
		StubMultihomeProb: 0.75,
		CDNPeerProb:       0.5,
		V6Tier1Prob:       1.0,
		V6Tier2Prob:       0.85,
		V6StubProb:        0.6,
		V4OnlyLinkProb:    0.12,
	}
}

// CDNASNumber is the ASN assigned to the simulated CDN.
const CDNASNumber ipam.ASN = 20940

// ixpCityPreference lists, in priority order, cities that host major IXPs.
var ixpCityPreference = []string{
	"Amsterdam", "Frankfurt", "London", "Ashburn", "New York", "San Jose",
	"Singapore", "Tokyo", "Hong Kong", "Sao Paulo", "Sydney", "Los Angeles",
	"Chicago", "Paris", "Stockholm", "Johannesburg", "Moscow", "Miami",
	"Seattle", "Toronto", "Mumbai", "Dubai", "Milan", "Warsaw",
}

// Generate builds a deterministic AS-level topology from cfg.
func Generate(cfg Config) (*Topology, error) {
	if cfg.NumTier1 < 2 {
		return nil, fmt.Errorf("astopo: need at least 2 tier-1 ASes, got %d", cfg.NumTier1)
	}
	numT2 := int(float64(cfg.NumASes) * cfg.Tier2Frac)
	numStub := cfg.NumASes - cfg.NumTier1 - numT2 - 1 // -1 for the CDN
	if numT2 < 2 || numStub < 1 {
		return nil, fmt.Errorf("astopo: NumASes=%d too small for tiering", cfg.NumASes)
	}
	if cfg.NumIXPs < 1 || cfg.NumIXPs > len(ixpCityPreference) {
		return nil, fmt.Errorf("astopo: NumIXPs=%d out of range [1,%d]", cfg.NumIXPs, len(ixpCityPreference))
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Topology{
		byASN:  make(map[ipam.ASN]*AS),
		rel:    make(map[[2]ipam.ASN]Relationship),
		adj:    make(map[ipam.ASN][]ipam.ASN),
		link:   make(map[[2]ipam.ASN]int),
		CDNASN: CDNASNumber,
	}

	// IXPs first: they constrain peering siting.
	for i := 0; i < cfg.NumIXPs; i++ {
		name := ixpCityPreference[i]
		city, ok := geo.CityByName(name)
		if !ok {
			return nil, fmt.Errorf("astopo: IXP city %q missing from database", name)
		}
		_ = city
		t.IXPs = append(t.IXPs, IXP{Name: name + "-IX", City: cityIndex(name)})
	}

	// ---- Tier-1s: global footprints, full p2p mesh. ----
	var tier1 []*AS
	for i := 0; i < cfg.NumTier1; i++ {
		as := &AS{
			ASN:  ipam.ASN(10 + i),
			Tier: Tier1,
			Name: fmt.Sprintf("T1-%d", i+1),
		}
		as.Footprint = sampleGlobalFootprint(rng, 0.35+0.15*rng.Float64())
		as.HomeCity = as.Footprint[rng.Intn(len(as.Footprint))]
		tier1 = append(tier1, as)
		t.register(as)
	}

	// ---- Tier-2s: continental footprints. ----
	var tier2 []*AS
	for i := 0; i < numT2; i++ {
		cont := geo.Continent(rng.Intn(6))
		cities := continentIndices(cont)
		n := 2 + rng.Intn(maxInt(2, len(cities)/2))
		fp := sampleK(rng, cities, minInt(n, len(cities)))
		// Occasionally extend one hop into another continent (regional
		// carriers with a transatlantic PoP, etc.).
		if rng.Float64() < 0.3 {
			other := geo.Continent(rng.Intn(6))
			oc := continentIndices(other)
			fp = appendUnique(fp, oc[rng.Intn(len(oc))])
		}
		as := &AS{
			ASN:       ipam.ASN(1000 + i),
			Tier:      Tier2,
			Name:      fmt.Sprintf("T2-%d", i+1),
			Footprint: fp,
			HomeCity:  fp[0],
		}
		tier2 = append(tier2, as)
		t.register(as)
	}

	// ---- Stubs: edge networks at one or two cities. ----
	var stubs []*AS
	for i := 0; i < numStub; i++ {
		home := rng.Intn(len(geo.Cities))
		fp := []int{home}
		if rng.Float64() < 0.25 {
			// Second PoP on the same continent.
			cc := continentIndices(geo.Cities[home].Continent)
			fp = appendUnique(fp, cc[rng.Intn(len(cc))])
		}
		as := &AS{
			ASN:       ipam.ASN(30000 + i),
			Tier:      Stub,
			Name:      fmt.Sprintf("STUB-%d", i+1),
			Footprint: fp,
			HomeCity:  home,
		}
		stubs = append(stubs, as)
		t.register(as)
	}

	// ---- The CDN: near-global footprint. ----
	cdn := &AS{
		ASN:       CDNASNumber,
		Tier:      CDN,
		Name:      "CDN",
		Footprint: sampleGlobalFootprint(rng, 0.7),
	}
	cdn.HomeCity = cdn.Footprint[0]
	t.register(cdn)

	// ---- Dual-stack flags. ----
	v6 := make(map[ipam.ASN]bool, cfg.NumASes)
	v6[cdn.ASN] = true
	for _, as := range tier1 {
		v6[as.ASN] = rng.Float64() < cfg.V6Tier1Prob
	}
	for _, as := range tier2 {
		v6[as.ASN] = rng.Float64() < cfg.V6Tier2Prob
	}
	for _, as := range stubs {
		v6[as.ASN] = rng.Float64() < cfg.V6StubProb
	}
	t.v6 = v6

	linkV6 := func(a, b ipam.ASN) bool {
		return v6[a] && v6[b] && rng.Float64() >= cfg.V4OnlyLinkProb
	}

	// ---- Tier-1 clique (private p2p). ----
	for i := 0; i < len(tier1); i++ {
		for j := i + 1; j < len(tier1); j++ {
			a, b := tier1[i], tier1[j]
			city := interconnectCity(rng, a, b)
			if err := t.addLinkV6(Link{
				A: a.ASN, B: b.ASN, Rel: RelPeer,
				Kind: PrivatePeering, City: city, IXP: -1,
			}, linkV6(a.ASN, b.ASN)); err != nil {
				return nil, err
			}
		}
	}

	// ---- Tier-2 transit: 2–3 tier-1 providers each, best footprint overlap. ----
	for _, as := range tier2 {
		provs := pickProviders(rng, as, tier1, 2+rng.Intn(2))
		for _, p := range provs {
			city := interconnectCity(rng, as, p)
			if err := t.addLinkV6(Link{
				A: as.ASN, B: p.ASN, Rel: RelCustomer,
				Kind: Transit, City: city, IXP: -1,
			}, linkV6(as.ASN, p.ASN)); err != nil {
				return nil, err
			}
		}
	}

	// ---- Occasional tier-2 → tier-2 transit (acyclic: customer has a
	// strictly higher index than its provider). ----
	for i, as := range tier2 {
		if i == 0 || rng.Float64() > 0.15 {
			continue
		}
		p := tier2[rng.Intn(i)]
		if _, dup := t.link[pairKey(as.ASN, p.ASN)]; dup {
			continue
		}
		city := interconnectCity(rng, as, p)
		if err := t.addLinkV6(Link{
			A: as.ASN, B: p.ASN, Rel: RelCustomer,
			Kind: Transit, City: city, IXP: -1,
		}, linkV6(as.ASN, p.ASN)); err != nil {
			return nil, err
		}
	}

	// ---- IXP membership. ----
	members := make([][]ipam.ASN, len(t.IXPs))
	memberOf := make(map[ipam.ASN][]int)
	joinIXP := func(as *AS, prob float64) {
		for ix, ixp := range t.IXPs {
			if !inFootprint(as, ixp.City) {
				continue
			}
			if rng.Float64() < prob {
				members[ix] = append(members[ix], as.ASN)
				memberOf[as.ASN] = append(memberOf[as.ASN], ix)
			}
		}
	}
	for _, as := range tier2 {
		joinIXP(as, 0.75)
	}
	for _, as := range stubs {
		joinIXP(as, 0.5)
	}
	joinIXP(cdn, 1.0)
	t.ixpMembers = members

	// ---- Tier-2 p2p at shared IXPs (or private when both prefer it). ----
	for i := 0; i < len(tier2); i++ {
		for j := i + 1; j < len(tier2); j++ {
			a, b := tier2[i], tier2[j]
			ix := sharedIXP(memberOf, a.ASN, b.ASN)
			if ix < 0 || rng.Float64() > cfg.T2PeerProb {
				continue
			}
			if _, dup := t.link[pairKey(a.ASN, b.ASN)]; dup {
				continue
			}
			l := Link{A: a.ASN, B: b.ASN, Rel: RelPeer, Kind: IXPPeering, City: t.IXPs[ix].City, IXP: ix}
			if rng.Float64() < 0.4 {
				// Large flows migrate to private cross-connects.
				l.Kind, l.IXP = PrivatePeering, -1
			}
			if err := t.addLinkV6(l, linkV6(a.ASN, b.ASN)); err != nil {
				return nil, err
			}
		}
	}

	// ---- Stub transit: 1–3 providers, preferring same-continent tier-2s.
	// Dense multihoming keeps failover routes geographically close, so most
	// routing changes barely move the RTT (the paper's central finding). ----
	for _, as := range stubs {
		n := 1
		if rng.Float64() < cfg.StubMultihomeProb {
			n = 2
			if rng.Float64() < 0.3 {
				n = 3
			}
		}
		cands := sameContinentT2s(as, tier2)
		if len(cands) == 0 {
			cands = tier2
		}
		provs := pickProviders(rng, as, cands, n)
		if len(provs) == 0 {
			provs = []*AS{tier1[rng.Intn(len(tier1))]}
		}
		for _, p := range provs {
			if _, dup := t.link[pairKey(as.ASN, p.ASN)]; dup {
				continue
			}
			city := interconnectCity(rng, as, p)
			if err := t.addLinkV6(Link{
				A: as.ASN, B: p.ASN, Rel: RelCustomer,
				Kind: Transit, City: city, IXP: -1,
			}, linkV6(as.ASN, p.ASN)); err != nil {
				return nil, err
			}
		}
	}

	// ---- CDN connectivity: multihomed transit + open peering. ----
	for _, p := range sampleASes(rng, tier1, 3+rng.Intn(3)) {
		city := interconnectCity(rng, cdn, p)
		if err := t.addLinkV6(Link{
			A: cdn.ASN, B: p.ASN, Rel: RelCustomer,
			Kind: Transit, City: city, IXP: -1,
		}, linkV6(cdn.ASN, p.ASN)); err != nil {
			return nil, err
		}
	}
	for _, as := range tier2 {
		ix := sharedIXP(memberOf, cdn.ASN, as.ASN)
		if ix < 0 || rng.Float64() > cfg.CDNPeerProb {
			continue
		}
		if _, dup := t.link[pairKey(cdn.ASN, as.ASN)]; dup {
			continue
		}
		if err := t.addLinkV6(Link{
			A: cdn.ASN, B: as.ASN, Rel: RelPeer,
			Kind: IXPPeering, City: t.IXPs[ix].City, IXP: ix,
		}, linkV6(cdn.ASN, as.ASN)); err != nil {
			return nil, err
		}
	}
	for _, as := range stubs {
		ix := sharedIXP(memberOf, cdn.ASN, as.ASN)
		if ix < 0 || rng.Float64() > cfg.CDNPeerProb*0.6 {
			continue
		}
		if _, dup := t.link[pairKey(cdn.ASN, as.ASN)]; dup {
			continue
		}
		if err := t.addLinkV6(Link{
			A: cdn.ASN, B: as.ASN, Rel: RelPeer,
			Kind: IXPPeering, City: t.IXPs[ix].City, IXP: ix,
		}, linkV6(cdn.ASN, as.ASN)); err != nil {
			return nil, err
		}
	}

	t.sortAdjacency()
	sort.Slice(t.ASes, func(i, j int) bool { return t.ASes[i].ASN < t.ASes[j].ASN })
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

func (t *Topology) register(as *AS) {
	t.ASes = append(t.ASes, as)
	t.byASN[as.ASN] = as
}

func (t *Topology) addLinkV6(l Link, v6 bool) error {
	if err := t.addLink(l); err != nil {
		return err
	}
	if t.linkHasV6 == nil {
		t.linkHasV6 = make(map[[2]ipam.ASN]bool)
	}
	t.linkHasV6[pairKey(l.A, l.B)] = v6
	return nil
}

// ---- helpers ----

func cityIndex(name string) int {
	for i, c := range geo.Cities {
		if c.Name == name {
			return i
		}
	}
	return -1
}

func continentIndices(cont geo.Continent) []int {
	var out []int
	for i, c := range geo.Cities {
		if c.Continent == cont {
			out = append(out, i)
		}
	}
	return out
}

// sampleGlobalFootprint picks frac of all cities, guaranteeing at least one
// city per continent.
func sampleGlobalFootprint(rng *rand.Rand, frac float64) []int {
	all := make([]int, len(geo.Cities))
	for i := range all {
		all[i] = i
	}
	n := maxInt(6, int(frac*float64(len(all))))
	fp := sampleK(rng, all, n)
	have := make(map[geo.Continent]bool)
	for _, i := range fp {
		have[geo.Cities[i].Continent] = true
	}
	for cont := geo.Continent(0); cont < 6; cont++ {
		if !have[cont] {
			cc := continentIndices(cont)
			fp = appendUnique(fp, cc[rng.Intn(len(cc))])
		}
	}
	sort.Ints(fp)
	return fp
}

// sampleK returns k distinct elements of src (partial Fisher-Yates).
func sampleK(rng *rand.Rand, src []int, k int) []int {
	cp := append([]int(nil), src...)
	rng.Shuffle(len(cp), func(i, j int) { cp[i], cp[j] = cp[j], cp[i] })
	if k > len(cp) {
		k = len(cp)
	}
	out := cp[:k]
	sort.Ints(out)
	return out
}

func appendUnique(s []int, v int) []int {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

func inFootprint(as *AS, city int) bool {
	for _, c := range as.Footprint {
		if c == city {
			return true
		}
	}
	return false
}

// interconnectCity picks a shared footprint city, or the nearest pair's
// first city when footprints don't overlap.
func interconnectCity(rng *rand.Rand, a, b *AS) int {
	shared := SharedCities(a, b)
	if len(shared) > 0 {
		return shared[rng.Intn(len(shared))]
	}
	ca, _ := NearestCityPair(a, b)
	return ca
}

// pickProviders chooses up to n providers from cands, weighted toward
// footprint overlap with as. Providers present in the customer's home city
// dominate the ranking: real multihoming is bought where the network
// lives, which keeps failover paths geographically close and their RTT
// impact small — the paper's typical routing change.
func pickProviders(rng *rand.Rand, as *AS, cands []*AS, n int) []*AS {
	type scored struct {
		as    *AS
		score float64
	}
	var ss []scored
	for _, c := range cands {
		if c.ASN == as.ASN {
			continue
		}
		overlap := float64(len(SharedCities(as, c)))
		if inFootprint(c, as.HomeCity) {
			overlap += 1000
		}
		ss = append(ss, scored{c, overlap + rng.Float64()})
	}
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].score != ss[j].score {
			return ss[i].score > ss[j].score
		}
		return ss[i].as.ASN < ss[j].as.ASN
	})
	if n > len(ss) {
		n = len(ss)
	}
	out := make([]*AS, 0, n)
	for _, s := range ss[:n] {
		out = append(out, s.as)
	}
	return out
}

func sameContinentT2s(as *AS, tier2 []*AS) []*AS {
	cont := geo.Cities[as.HomeCity].Continent
	var out []*AS
	for _, t2 := range tier2 {
		if geo.Cities[t2.HomeCity].Continent == cont {
			out = append(out, t2)
		}
	}
	return out
}

func sampleASes(rng *rand.Rand, src []*AS, n int) []*AS {
	cp := append([]*AS(nil), src...)
	rng.Shuffle(len(cp), func(i, j int) { cp[i], cp[j] = cp[j], cp[i] })
	if n > len(cp) {
		n = len(cp)
	}
	return cp[:n]
}

func sharedIXP(memberOf map[ipam.ASN][]int, a, b ipam.ASN) int {
	bm := make(map[int]bool)
	for _, ix := range memberOf[b] {
		bm[ix] = true
	}
	for _, ix := range memberOf[a] {
		if bm[ix] {
			return ix
		}
	}
	return -1
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
