// Package intern provides slab-backed sequence interners: append-only
// slabs of elements plus an FNV-keyed dedup index, so that a sequence
// stored many times (an AS path repeated in every cache entry, a resolved
// router path shared by hundreds of flows) occupies slab memory exactly
// once. Interning returns both a compact offset/length Handle and the
// canonical subslice into the slab; either can be kept, and the subslice
// costs nothing to "resolve".
//
// Interners are shard-locked: concurrent writers hash onto independent
// shards and only contend when their sequences collide on a shard. Slabs
// are built from fixed-size blocks, so a long-lived canonical slice pins at
// most one block — dropping the interner releases every block no surviving
// slice points into.
//
// The package exists for the simulation hot path (see the bgp and simnet
// packages); it knows nothing about routing. Canonical slices are shared:
// callers must treat them as immutable.
package intern

import "sync"

// Handle is a compact reference to an interned sequence: shard, block,
// offset and length packed into one word. The zero Handle is the empty
// sequence.
//
// Layout (high to low): 8 bits shard | 16 bits block | 24 bits offset |
// 16 bits length.
type Handle uint64

const (
	handleLenBits   = 16
	handleOffBits   = 24
	handleBlockBits = 16

	// MaxSeqLen is the longest sequence a Handle can address. Longer
	// sequences are still interned (stored in a dedicated oversized block)
	// but never share storage.
	MaxSeqLen = 1<<handleLenBits - 1
)

// Len returns the sequence length addressed by the handle.
func (h Handle) Len() int { return int(h & MaxSeqLen) }

func makeHandle(shard, block, off, n int) Handle {
	return Handle(uint64(shard)<<(handleBlockBits+handleOffBits+handleLenBits) |
		uint64(block)<<(handleOffBits+handleLenBits) |
		uint64(off)<<handleLenBits |
		uint64(n))
}

func (h Handle) parts() (shard, block, off, n int) {
	n = int(h & MaxSeqLen)
	off = int(h >> handleLenBits & (1<<handleOffBits - 1))
	block = int(h >> (handleOffBits + handleLenBits) & (1<<handleBlockBits - 1))
	shard = int(h >> (handleBlockBits + handleOffBits + handleLenBits))
	return
}

// blockLen is the slab block size in elements. Sequences never straddle
// blocks; a block holds many typical AS paths (< 16 hops) or router paths
// (< 64 hops). Kept modest so a sparsely used interner generation (or one
// pinned by a few surviving canonical slices) holds little slack memory.
const blockLen = 1 << 12

// Seq is a slab-backed interner for sequences of T. The zero value is not
// usable; construct with NewSeq.
type Seq[T comparable] struct {
	hash   func(T) uint64
	shards []seqShard[T]
	mask   uint64
}

type seqShard[T comparable] struct {
	mu     sync.Mutex
	blocks [][]T               // blocks[i] has len == used portion, cap == blockLen
	idx    map[uint64][]Handle // FNV key -> candidate handles (collision chain)
	seqs   int
	elems  int
}

// NewSeq returns an interner with the given shard count (rounded up to a
// power of two, clamped to [1, 256]) and per-element hash function.
func NewSeq[T comparable](shards int, hash func(T) uint64) *Seq[T] {
	n := 1
	for n < shards && n < 256 {
		n <<= 1
	}
	s := &Seq[T]{hash: hash, shards: make([]seqShard[T], n), mask: uint64(n - 1)}
	return s
}

// fnv-1a over the per-element hashes.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func (s *Seq[T]) key(seq []T) uint64 {
	h := uint64(fnvOffset)
	for _, e := range seq {
		v := s.hash(e)
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= fnvPrime
			v >>= 8
		}
	}
	return h
}

// Intern stores seq once and returns its canonical slab subslice and
// handle. The canonical slice is shared with every other caller that
// interned the same sequence — it must not be mutated. An empty sequence
// interns to (nil, 0).
func (s *Seq[T]) Intern(seq []T) ([]T, Handle) {
	if len(seq) == 0 {
		return nil, 0
	}
	if len(seq) > MaxSeqLen {
		// Longer than a Handle can address: hand back an unshared copy
		// under the zero handle. No realistic AS path or router path comes
		// within two orders of magnitude of this.
		out := make([]T, len(seq))
		copy(out, seq)
		return out, 0
	}
	key := s.key(seq)
	sh := &s.shards[key&s.mask]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.idx == nil {
		sh.idx = make(map[uint64][]Handle)
	}
	for _, h := range sh.idx[key] {
		cand := sh.get(h)
		if equal(cand, seq) {
			return cand, h
		}
	}
	h := sh.store(int(key&s.mask), seq)
	sh.idx[key] = append(sh.idx[key], h)
	sh.seqs++
	sh.elems += len(seq)
	return sh.get(h), h
}

// Get resolves a handle to its canonical slice. Resolving a handle not
// produced by this interner is undefined.
func (s *Seq[T]) Get(h Handle) []T {
	if h == 0 {
		return nil
	}
	shard, _, _, _ := h.parts()
	sh := &s.shards[shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.get(h)
}

// get resolves a handle within the shard (lock held by the caller).
func (sh *seqShard[T]) get(h Handle) []T {
	_, block, off, n := h.parts()
	return sh.blocks[block][off : off+n : off+n]
}

// store appends seq to the shard's slab and returns its handle. Sequences
// longer than a block get a dedicated block of their own.
func (sh *seqShard[T]) store(shard int, seq []T) Handle {
	n := len(seq)
	if n > blockLen {
		block := make([]T, n)
		copy(block, seq)
		sh.blocks = append(sh.blocks, block)
		return makeHandle(shard, len(sh.blocks)-1, 0, n)
	}
	last := len(sh.blocks) - 1
	if last < 0 || len(sh.blocks[last])+n > cap(sh.blocks[last]) {
		sh.blocks = append(sh.blocks, make([]T, 0, blockLen))
		last++
	}
	off := len(sh.blocks[last])
	sh.blocks[last] = append(sh.blocks[last], seq...)
	return makeHandle(shard, last, off, n)
}

func equal[T comparable](a, b []T) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Stats summarizes an interner's population.
type Stats struct {
	// Seqs is the number of unique sequences stored.
	Seqs int
	// Elems is the total number of slab elements those sequences occupy.
	Elems int
	// Blocks is the number of slab blocks allocated.
	Blocks int
}

// Stats returns the interner's population counters.
func (s *Seq[T]) Stats() Stats {
	var st Stats
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		st.Seqs += sh.seqs
		st.Elems += sh.elems
		st.Blocks += len(sh.blocks)
		sh.mu.Unlock()
	}
	return st
}
