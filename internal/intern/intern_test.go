package intern

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func hashInt32(v int32) uint64 { return uint64(uint32(v)) * 0x9e3779b97f4a7c15 }

// TestInternDedup checks that identical sequences share storage and
// distinct sequences do not.
func TestInternDedup(t *testing.T) {
	s := NewSeq[int32](4, hashInt32)
	a1, h1 := s.Intern([]int32{1, 2, 3})
	a2, h2 := s.Intern([]int32{1, 2, 3})
	if h1 != h2 {
		t.Fatalf("same sequence, different handles: %x vs %x", h1, h2)
	}
	if &a1[0] != &a2[0] {
		t.Fatal("same sequence, different backing storage")
	}
	b, h3 := s.Intern([]int32{1, 2, 4})
	if h3 == h1 {
		t.Fatal("distinct sequences share a handle")
	}
	if got := s.Get(h3); !equal(got, b) {
		t.Fatalf("Get(h3) = %v, want %v", got, b)
	}
	if st := s.Stats(); st.Seqs != 2 || st.Elems != 6 {
		t.Fatalf("stats = %+v, want 2 seqs / 6 elems", st)
	}
}

// TestInternEmptyAndRoundTrip checks the empty sequence and Get.
func TestInternEmptyAndRoundTrip(t *testing.T) {
	s := NewSeq[int32](1, hashInt32)
	if got, h := s.Intern(nil); got != nil || h != 0 {
		t.Fatalf("empty intern = (%v, %x)", got, h)
	}
	if got := s.Get(0); got != nil {
		t.Fatalf("Get(0) = %v, want nil", got)
	}
	want := []int32{9, 8, 7, 6}
	canon, h := s.Intern(want)
	if !equal(canon, want) {
		t.Fatalf("canonical = %v, want %v", canon, want)
	}
	if got := s.Get(h); !equal(got, want) {
		t.Fatalf("Get = %v, want %v", got, want)
	}
	if h.Len() != len(want) {
		t.Fatalf("handle length = %d, want %d", h.Len(), len(want))
	}
}

// TestInternKeyCollision forces two different sequences onto the same FNV
// key chain (same shard, crafted equal hashes) and checks both survive.
func TestInternKeyCollision(t *testing.T) {
	// A constant element hash collides every sequence of equal length.
	s := NewSeq[int32](1, func(int32) uint64 { return 42 })
	a, ha := s.Intern([]int32{1, 2})
	b, hb := s.Intern([]int32{3, 4})
	if ha == hb {
		t.Fatal("colliding sequences share a handle")
	}
	if !equal(s.Get(ha), a) || !equal(s.Get(hb), b) {
		t.Fatal("collision chain lost a sequence")
	}
}

// TestInternBlockSpill interns more elements than one block holds and
// checks sequences never straddle blocks.
func TestInternBlockSpill(t *testing.T) {
	s := NewSeq[int32](1, hashInt32)
	seq := make([]int32, 100)
	var handles []Handle
	var canons [][]int32
	for i := 0; i < 2*blockLen/len(seq)+4; i++ {
		for j := range seq {
			seq[j] = int32(i*1000 + j)
		}
		canon, h := s.Intern(seq)
		handles = append(handles, h)
		canons = append(canons, canon)
	}
	for i, h := range handles {
		if !equal(s.Get(h), canons[i]) {
			t.Fatalf("sequence %d corrupted after spill", i)
		}
	}
	if st := s.Stats(); st.Blocks < 2 {
		t.Fatalf("expected multiple blocks, got %+v", st)
	}
}

// TestInternOversized checks sequences beyond MaxSeqLen come back intact,
// unshared, under the zero handle.
func TestInternOversized(t *testing.T) {
	s := NewSeq[int32](1, hashInt32)
	big := make([]int32, MaxSeqLen+5)
	for i := range big {
		big[i] = int32(i)
	}
	got, h := s.Intern(big)
	if h != 0 {
		t.Fatalf("oversized handle = %x, want 0", h)
	}
	if !equal(got, big) {
		t.Fatal("oversized sequence corrupted")
	}
	if &got[0] == &big[0] {
		t.Fatal("oversized sequence not copied")
	}
}

// TestInternConcurrent hammers one interner from many goroutines; run
// under -race this is the shard-locking test.
func TestInternConcurrent(t *testing.T) {
	s := NewSeq[int32](8, hashInt32)
	const goroutines = 8
	var wg sync.WaitGroup
	results := make([]map[string]Handle, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			got := make(map[string]Handle)
			for i := 0; i < 2000; i++ {
				n := 1 + rng.Intn(8)
				seq := make([]int32, n)
				for j := range seq {
					seq[j] = int32(rng.Intn(32)) // heavy overlap across goroutines
				}
				_, h := s.Intern(seq)
				got[fmt.Sprint(seq)] = h
			}
			results[g] = got
		}(g)
	}
	wg.Wait()
	// The same sequence must have the same handle regardless of which
	// goroutine interned it.
	merged := make(map[string]Handle)
	for _, m := range results {
		for k, h := range m {
			if prev, ok := merged[k]; ok && prev != h {
				t.Fatalf("sequence %s interned to %x and %x", k, prev, h)
			}
			merged[k] = h
		}
	}
}

// TestInternZeroAlloc checks that re-interning a warm sequence does not
// allocate.
func TestInternZeroAlloc(t *testing.T) {
	s := NewSeq[int32](4, hashInt32)
	seq := []int32{5, 6, 7, 8, 9}
	s.Intern(seq)
	allocs := testing.AllocsPerRun(200, func() {
		s.Intern(seq)
	})
	if allocs != 0 {
		t.Fatalf("warm Intern allocates %.1f times per call, want 0", allocs)
	}
}

func BenchmarkInternWarm(b *testing.B) {
	s := NewSeq[int32](8, hashInt32)
	seq := []int32{1, 2, 3, 4, 5, 6}
	s.Intern(seq)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Intern(seq)
	}
}
