package obs

import (
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
)

// TrapShutdown installs a SIGINT/SIGTERM handler and returns a checker
// that reports whether a shutdown was requested. Long-running commands
// poll it to drain gracefully — finish the round or request in flight,
// flush sinks and the flight record, exit 0 — instead of dying mid-write.
//
// A second signal restores the default disposition and re-raises, so an
// operator who really means it (^C ^C) still gets an immediate kill.
func TrapShutdown() func() bool {
	var requested atomic.Bool
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig := <-ch
		requested.Store(true)
		<-ch
		signal.Reset(sig)
		if s, ok := sig.(syscall.Signal); ok {
			syscall.Kill(os.Getpid(), s)
		}
		os.Exit(130)
	}()
	return requested.Load
}
