// Package ops is the embeddable HTTP ops surface: one `-ops :port` flag on
// any CLI starts a server exposing the run's live state —
//
//	/metrics       Prometheus text from the obs.Registry
//	/healthz       OK / degraded (503) with one line per active alert
//	/runz          JSON run state: virtual clock, rounds, tasks, per-worker
//	               utilization, checkpoint position, active alerts
//	/analysisz     JSON streaming-analysis state: per-analysis pair coverage,
//	               windows evaluated, findings so far, top-K changing pairs
//	/flight/tail   streaming JSONL tee off the flight recorder (?max=N to
//	               stop after N lines), the transport `s2sobs watch` attaches to
//	/debug/pprof/  the standard pprof handlers
//
// The server is observation-only: every handler reads atomic registry
// instruments or recorder taps, never state the simulation writes
// unsynchronized, so a run with `-ops` emits a byte-identical dataset
// record stream to one without (asserted by TestOpsDoesNotPerturbRecords).
package ops

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flight"
)

// Health aggregates degradation reasons for /healthz. It implements
// alert.Health; the alert engine sets and clears reasons as rules fire and
// resolve. The zero value is unusable — use NewHealth.
type Health struct {
	mu      sync.Mutex
	reasons map[string]string
}

// NewHealth returns an empty (healthy) Health.
func NewHealth() *Health {
	return &Health{reasons: make(map[string]string)}
}

// SetReason marks the process degraded for the given rule.
func (h *Health) SetReason(rule, detail string) {
	h.mu.Lock()
	h.reasons[rule] = detail
	h.mu.Unlock()
}

// ClearReason removes the rule's degradation.
func (h *Health) ClearReason(rule string) {
	h.mu.Lock()
	delete(h.reasons, rule)
	h.mu.Unlock()
}

// Reasons returns a copy of the active degradation reasons.
func (h *Health) Reasons() map[string]string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]string, len(h.reasons))
	for k, v := range h.reasons {
		out[k] = v
	}
	return out
}

// OK reports whether no degradation reason is active.
func (h *Health) OK() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.reasons) == 0
}

// AnalysisSource exposes the live state of a streaming-analysis stage
// (analysis.Stage implements it). The returned value must be
// JSON-encodable; it is served verbatim on /analysisz.
type AnalysisSource interface {
	AnalysisStatus() any
}

// Options configure a Server.
type Options struct {
	// Tool names the process in /runz.
	Tool string
	// Registry backs /metrics and the counters in /runz.
	Registry *obs.Registry
	// Recorder backs /flight/tail and the checkpoint/phase fields of
	// /runz. Optional; without it /flight/tail returns 404.
	Recorder *flight.Recorder
	// Analysis backs /analysisz. Optional; without it /analysisz
	// returns 404.
	Analysis AnalysisSource
	// Logger, when set, logs the bound address at startup.
	Logger *obs.Logger
	// Extra mounts additional handlers onto the ops mux — the query
	// service's /api/* endpoints ride on the same port as /metrics and
	// /healthz this way. Patterns must not collide with the built-ins.
	Extra map[string]http.Handler
}

// CheckpointInfo is the last checkpoint the run wrote (from the flight
// record's checkpoint events).
type CheckpointInfo struct {
	VirtualNS int64 `json:"virtual_ns"`
	Records   int64 `json:"records"`
	SinkPos   int64 `json:"sink_pos"`
}

// WorkerInfo is one engine worker's cumulative busy time.
type WorkerInfo struct {
	ID     int   `json:"id"`
	BusyNS int64 `json:"busy_ns"`
}

// RunInfo is the /runz payload.
type RunInfo struct {
	Tool       string            `json:"tool"`
	PID        int               `json:"pid"`
	WallNS     int64             `json:"wall_ns"`
	VirtualNS  int64             `json:"virtual_ns"`
	Rounds     int64             `json:"rounds"`
	Tasks      int64             `json:"tasks"`
	Records    int64             `json:"records"`
	LastPhase  string            `json:"last_phase,omitempty"`
	LastVTNS   int64             `json:"last_vt_ns,omitempty"`
	Workers    []WorkerInfo      `json:"workers,omitempty"`
	Checkpoint *CheckpointInfo   `json:"checkpoint,omitempty"`
	Alerts     map[string]string `json:"alerts,omitempty"`
	Flags      map[string]string `json:"flags,omitempty"`
}

// Server is a running ops endpoint. Close shuts it down.
type Server struct {
	tool     string
	reg      *obs.Registry
	rec      *flight.Recorder
	analysis AnalysisSource
	health   *Health
	srv      *http.Server
	ln       net.Listener
	start    time.Time

	mu       sync.Mutex
	lastCkpt *CheckpointInfo
	lastPh   string
	lastVT   int64
	flags    map[string]string
}

// Start listens on addr (e.g. ":9090" or "127.0.0.1:0") and serves the ops
// endpoints in a background goroutine.
func Start(addr string, o Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ops: listen %s: %w", addr, err)
	}
	s := &Server{
		tool:     o.Tool,
		reg:      o.Registry,
		rec:      o.Recorder,
		analysis: o.Analysis,
		health:   NewHealth(),
		ln:       ln,
		start:    time.Now(),
		flags:    flight.FlagsSet(),
	}
	if s.rec != nil {
		s.rec.Observe(s.observe)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.index)
	mux.HandleFunc("/metrics", s.metrics)
	mux.HandleFunc("/healthz", s.healthz)
	mux.HandleFunc("/runz", s.runz)
	mux.HandleFunc("/analysisz", s.analysisz)
	mux.HandleFunc("/flight/tail", s.tail)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for pattern, h := range o.Extra {
		mux.Handle(pattern, h)
	}
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln)
	o.Logger.Printf("ops server listening on http://%s", ln.Addr())
	return s, nil
}

// Health returns the server's health sink, for wiring into an
// alert.Engine.
func (s *Server) Health() *Health { return s.health }

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down, severing any in-flight tails.
func (s *Server) Close() error { return s.srv.Close() }

// Shutdown drains in-flight requests before closing the listener (Close
// severs them). Open /flight/tail streams are not drained — they never
// finish on their own — so callers should bound ctx.
func (s *Server) Shutdown(ctx context.Context) error { return s.srv.Shutdown(ctx) }

// observe is the recorder tap feeding /runz's checkpoint and phase fields.
func (s *Server) observe(rec *flight.Record) {
	if rec.K != flight.KSpan && rec.K != flight.KEvent {
		return
	}
	s.mu.Lock()
	s.lastPh = rec.Ph
	if rec.VT > 0 {
		s.lastVT = rec.VT
	}
	if rec.K == flight.KEvent && rec.Ph == flight.PhCheckpoint {
		s.lastCkpt = &CheckpointInfo{VirtualNS: rec.VT, Records: rec.N, SinkPos: rec.M}
	}
	s.mu.Unlock()
}

func (s *Server) index(w http.ResponseWriter, req *http.Request) {
	if req.URL.Path != "/" {
		http.NotFound(w, req)
		return
	}
	fmt.Fprintf(w, "%s ops server\n\n/metrics\n/healthz\n/runz\n/analysisz\n/flight/tail\n/debug/pprof/\n", s.tool)
}

func (s *Server) metrics(w http.ResponseWriter, req *http.Request) {
	if s.reg == nil {
		http.Error(w, "no metrics registry", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.reg.Snapshot().WritePrometheus(w)
}

func (s *Server) healthz(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	reasons := s.health.Reasons()
	if len(reasons) == 0 {
		fmt.Fprintln(w, "ok")
		return
	}
	w.WriteHeader(http.StatusServiceUnavailable)
	fmt.Fprintln(w, "degraded")
	rules := make([]string, 0, len(reasons))
	for rule := range reasons {
		rules = append(rules, rule)
	}
	sort.Strings(rules)
	for _, rule := range rules {
		fmt.Fprintf(w, "%s: %s\n", rule, reasons[rule])
	}
}

func (s *Server) runz(w http.ResponseWriter, req *http.Request) {
	info := RunInfo{
		Tool:   s.tool,
		PID:    os.Getpid(),
		WallNS: time.Since(s.start).Nanoseconds(),
		Alerts: s.health.Reasons(),
	}
	if len(info.Alerts) == 0 {
		info.Alerts = nil
	}
	if s.reg != nil {
		snap := s.reg.Snapshot()
		info.VirtualNS = int64(snap.Gauges["s2s_campaign_virtual_ns"])
		info.Rounds = snap.SumFamily("s2s_engine_rounds_total")
		info.Tasks = snap.SumFamily("s2s_engine_tasks_total")
		info.Records = snap.SumFamily("s2s_run_records_total")
		info.Workers = workerInfos(snap)
	}
	s.mu.Lock()
	info.Checkpoint = s.lastCkpt
	info.LastPhase = s.lastPh
	info.LastVTNS = s.lastVT
	info.Flags = s.flags
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(&info)
}

// analysisz serves the live streaming-analysis state: per-analysis pair
// coverage, windows evaluated, findings so far, top-K changing pairs.
func (s *Server) analysisz(w http.ResponseWriter, req *http.Request) {
	if s.analysis == nil {
		http.Error(w, "no streaming analysis attached", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.analysis.AnalysisStatus())
}

// workerInfos extracts the per-worker busy counters
// (s2s_engine_worker_busy_ns_total{worker="N"}) into a sorted slice.
func workerInfos(snap *obs.Snapshot) []WorkerInfo {
	const prefix = `s2s_engine_worker_busy_ns_total{worker="`
	var out []WorkerInfo
	for name, v := range snap.Counters {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		rest := name[len(prefix):]
		end := strings.IndexByte(rest, '"')
		if end < 0 {
			continue
		}
		id, err := strconv.Atoi(rest[:end])
		if err != nil {
			continue
		}
		out = append(out, WorkerInfo{ID: id, BusyNS: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (s *Server) tail(w http.ResponseWriter, req *http.Request) {
	if s.rec == nil {
		http.Error(w, "no flight recorder", http.StatusNotFound)
		return
	}
	max := 0
	if q := req.URL.Query().Get("max"); q != "" {
		if n, err := strconv.Atoi(q); err == nil && n > 0 {
			max = n
		}
	}
	lines, cancel := s.rec.Subscribe(256)
	defer cancel()
	w.Header().Set("Content-Type", "application/x-ndjson")
	fl, _ := w.(http.Flusher)
	if fl != nil {
		fl.Flush() // commit headers so clients see the stream open
	}
	sent := 0
	for {
		select {
		case <-req.Context().Done():
			return
		case line, ok := <-lines:
			if !ok {
				return
			}
			if _, err := w.Write(line); err != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
			sent++
			if max > 0 && sent >= max {
				return
			}
		}
	}
}
