package ops

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flight"
)

// startTestServer brings up an ops server on a loopback port with a live
// registry and recorder.
func startTestServer(t *testing.T) (*Server, *obs.Registry, *flight.Recorder) {
	t.Helper()
	reg := obs.NewRegistry()
	rec := flight.New(io.Discard, flight.Options{
		Tool: "ops-test", Registry: reg, MetricsInterval: time.Hour,
	})
	s, err := Start("127.0.0.1:0", Options{Tool: "ops-test", Registry: reg, Recorder: rec})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { s.Close(); rec.Close() })
	return s, reg, rec
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s read: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	s, reg, _ := startTestServer(t)
	reg.Counter("ops_test_requests_total", "requests served").Add(7)

	code, body := get(t, "http://"+s.Addr()+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(body, "ops_test_requests_total 7") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
	if !strings.Contains(body, "# TYPE ops_test_requests_total counter") {
		t.Fatalf("/metrics missing TYPE metadata:\n%s", body)
	}
	if !strings.Contains(body, "# HELP ops_test_requests_total requests served") {
		t.Fatalf("/metrics missing HELP metadata:\n%s", body)
	}
	if problems := obs.LintPrometheus(strings.NewReader(body)); len(problems) != 0 {
		t.Fatalf("/metrics fails exposition lint:\n%s", strings.Join(problems, "\n"))
	}
}

func TestHealthzTransitions(t *testing.T) {
	s, _, _ := startTestServer(t)
	url := "http://" + s.Addr() + "/healthz"

	if code, body := get(t, url); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("healthy server: status %d body %q", code, body)
	}
	s.Health().SetReason("retry_storm", "0.50 retries per task")
	code, body := get(t, url)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("degraded server: status %d, want 503", code)
	}
	if !strings.Contains(body, "degraded") || !strings.Contains(body, "retry_storm: 0.50 retries per task") {
		t.Fatalf("degraded body missing reason:\n%s", body)
	}
	s.Health().ClearReason("retry_storm")
	if code, _ := get(t, url); code != 200 {
		t.Fatalf("recovered server: status %d, want 200", code)
	}
}

func TestRunzEndpoint(t *testing.T) {
	s, reg, rec := startTestServer(t)
	reg.Counter("s2s_engine_rounds_total", "").Add(12)
	reg.Counter("s2s_engine_tasks_total", "").Add(3456)
	reg.Gauge("s2s_campaign_virtual_ns", "").Set(float64(36 * time.Hour))
	for w := 0; w < 3; w++ {
		reg.Counter(fmt.Sprintf(`s2s_engine_worker_busy_ns_total{worker="%d"}`, w), "").Add(int64(1000 * (w + 1)))
	}
	rec.Event(flight.PhCheckpoint, 24*time.Hour, flight.Attrs{N: 5000, M: 123456})

	code, body := get(t, "http://"+s.Addr()+"/runz")
	if code != 200 {
		t.Fatalf("/runz status %d", code)
	}
	var info RunInfo
	if err := json.Unmarshal([]byte(body), &info); err != nil {
		t.Fatalf("/runz not JSON: %v\n%s", err, body)
	}
	if info.Tool != "ops-test" || info.Rounds != 12 || info.Tasks != 3456 {
		t.Fatalf("bad run info: %+v", info)
	}
	if info.VirtualNS != int64(36*time.Hour) {
		t.Fatalf("virtual clock %d, want %d", info.VirtualNS, int64(36*time.Hour))
	}
	if len(info.Workers) != 3 || info.Workers[2].ID != 2 || info.Workers[2].BusyNS != 3000 {
		t.Fatalf("bad workers: %+v", info.Workers)
	}
	if info.Checkpoint == nil || info.Checkpoint.VirtualNS != int64(24*time.Hour) ||
		info.Checkpoint.Records != 5000 || info.Checkpoint.SinkPos != 123456 {
		t.Fatalf("bad checkpoint: %+v", info.Checkpoint)
	}
}

// TestFlightTailStreams: a tail client sees the meta line plus events
// emitted after attaching, and ?max=N closes the stream after N lines.
func TestFlightTailStreams(t *testing.T) {
	s, _, rec := startTestServer(t)

	resp, err := http.Get("http://" + s.Addr() + "/flight/tail?max=3")
	if err != nil {
		t.Fatalf("GET /flight/tail: %v", err)
	}
	defer resp.Body.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			rec.Event(flight.PhProbeBatch, time.Duration(i)*time.Minute, flight.Attrs{N: int64(i)})
			time.Sleep(time.Millisecond)
		}
	}()
	defer func() { done <- struct{}{}; <-done }()

	sc := bufio.NewScanner(resp.Body)
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if len(lines) != 3 {
		t.Fatalf("tail with max=3 delivered %d lines", len(lines))
	}
	if !strings.Contains(lines[0], `"k":"meta"`) {
		t.Fatalf("first tailed line is not the meta header: %s", lines[0])
	}
	for _, l := range lines[1:] {
		if !strings.Contains(l, `"k":"ev"`) {
			t.Fatalf("tailed line is not an event: %s", l)
		}
	}
}

func TestPprofIndex(t *testing.T) {
	s, _, _ := startTestServer(t)
	code, body := get(t, "http://"+s.Addr()+"/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ status %d body %.100q", code, body)
	}
}
