package ops

import (
	"repro/internal/obs"
	"repro/internal/obs/alert"
	"repro/internal/obs/flight"
)

// StartRun wires a CLI's live-telemetry stack in one call, so every
// command gets the same behavior from the same three inputs:
//
//   - addr != ""  → an ops server on addr (/metrics, /healthz, /runz,
//     /analysisz, /flight/tail, /debug/pprof)
//   - rec != nil  → a standard alert engine attached to the recorder,
//     degrading the ops server's /healthz while rules fire (stderr-only
//     when there is no server)
//   - src != nil  → /analysisz serves the streaming-analysis state
//
// The returned stop func shuts the server down; it is never nil.
func StartRun(addr, tool string, reg *obs.Registry, rec *flight.Recorder, src AnalysisSource, log *obs.Logger) (stop func(), err error) {
	var srv *Server
	if addr != "" {
		srv, err = Start(addr, Options{Tool: tool, Registry: reg, Recorder: rec, Analysis: src, Logger: log})
		if err != nil {
			return nil, err
		}
	}
	if rec != nil {
		var health alert.Health
		if srv != nil {
			health = srv.Health()
		}
		alert.New(alert.Options{Registry: reg, Logger: log, Health: health}).Attach(rec)
	}
	if srv == nil {
		return func() {}, nil
	}
	return func() { srv.Close() }, nil
}
