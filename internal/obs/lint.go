package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// LintPrometheus audits a Prometheus text exposition against the
// invariants this repo's exporter promises (a promtool-style check, kept
// in-tree so CI needs no external binary):
//
//   - every line is a series, `# HELP`, or `# TYPE` with a known kind
//   - every series has a preceding `# TYPE` for its family, families are
//     contiguous blocks in sorted order, and no series repeats
//   - series values parse as floats; label keys within a series are sorted
//   - counter family names end in `_total`
//   - histogram bucket `le` bounds strictly increase and end at `+Inf`,
//     bucket counts are cumulative (non-decreasing), and the family's
//     `_count` equals its `+Inf` bucket
//
// It returns one message per problem; an empty slice means the exposition
// is clean.
func LintPrometheus(r io.Reader) []string {
	var problems []string
	bad := func(lineNo int, format string, args ...any) {
		problems = append(problems, fmt.Sprintf("line %d: %s", lineNo, fmt.Sprintf(format, args...)))
	}

	kinds := make(map[string]string) // family -> TYPE
	seenSeries := make(map[string]int)
	famOrder := []string{}
	famClosed := make(map[string]bool)
	curFam := ""

	// Histogram state, validated when its family block ends.
	type histGroup struct {
		lastLE     float64
		lastCount  int64
		sawInf     bool
		infCount   int64
		firstLine  int
		hasCount   bool
		countValue int64
	}
	hists := make(map[string]*histGroup) // per labeled sub-series (labels minus le)

	closeFam := func() {
		for key, g := range hists {
			if !g.sawInf {
				bad(g.firstLine, "histogram %s has no +Inf bucket", key)
			}
			if g.hasCount && g.sawInf && g.countValue != g.infCount {
				bad(g.firstLine, "histogram %s _count %d != +Inf bucket %d", key, g.countValue, g.infCount)
			}
		}
		hists = make(map[string]*histGroup)
	}

	enterFam := func(fam string, lineNo int) {
		if fam == curFam {
			return
		}
		closeFam()
		if famClosed[fam] {
			bad(lineNo, "family %s reappears after other families (blocks must be contiguous)", fam)
		}
		if curFam != "" {
			famClosed[curFam] = true
			if fam < curFam {
				bad(lineNo, "family %s out of order after %s (families must sort)", fam, curFam)
			}
		}
		curFam = fam
		famOrder = append(famOrder, fam)
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				bad(lineNo, "malformed comment %q (want # HELP or # TYPE)", line)
				continue
			}
			if fields[1] == "TYPE" {
				if len(fields) < 4 {
					bad(lineNo, "TYPE without kind: %q", line)
					continue
				}
				fam, kind := fields[2], fields[3]
				switch kind {
				case "counter", "gauge", "histogram":
				default:
					bad(lineNo, "unknown TYPE kind %q for %s", kind, fam)
				}
				if _, dup := kinds[fam]; dup {
					bad(lineNo, "duplicate TYPE for %s", fam)
				}
				kinds[fam] = kind
				enterFam(fam, lineNo)
				if kind == "counter" && !strings.HasSuffix(fam, "_total") {
					bad(lineNo, "counter family %s does not end in _total", fam)
				}
			}
			continue
		}

		name, value, ok := splitSeries(line)
		if !ok {
			bad(lineNo, "malformed series line %q", line)
			continue
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			bad(lineNo, "series %s has non-numeric value %q", name, value)
		}
		if prev, dup := seenSeries[name]; dup {
			bad(lineNo, "duplicate series %s (first at line %d)", name, prev)
		}
		seenSeries[name] = lineNo

		labels, lerr := labelKeys(name)
		if lerr != "" {
			bad(lineNo, "series %s: %s", name, lerr)
		} else if !sort.StringsAreSorted(labels) {
			bad(lineNo, "series %s label keys not sorted: %v", name, labels)
		}

		fam := seriesFamily(name, kinds)
		if fam == "" {
			bad(lineNo, "series %s has no preceding # TYPE", name)
			continue
		}
		enterFam(fam, lineNo)

		if kinds[fam] == "histogram" {
			base := familyOf(name)
			switch {
			case strings.HasSuffix(base, "_bucket"):
				le, key, perr := bucketLE(name)
				if perr != "" {
					bad(lineNo, "bucket %s: %s", name, perr)
					continue
				}
				g := hists[key]
				if g == nil {
					g = &histGroup{lastLE: negInf, firstLine: lineNo}
					hists[key] = g
				}
				if g.sawInf {
					bad(lineNo, "bucket %s after the +Inf bucket", name)
				}
				if le <= g.lastLE {
					bad(lineNo, "bucket %s le %v not increasing (prev %v)", name, le, g.lastLE)
				}
				count, _ := strconv.ParseInt(value, 10, 64)
				if count < g.lastCount {
					bad(lineNo, "bucket %s count %d below previous bucket %d (buckets are cumulative)", name, count, g.lastCount)
				}
				g.lastLE, g.lastCount = le, count
				if le == inf {
					g.sawInf, g.infCount = true, count
				}
			case strings.HasSuffix(base, "_count"):
				key := strings.TrimSuffix(base, "_count") + labelsOf(name)
				g := hists[key]
				if g == nil {
					g = &histGroup{lastLE: negInf, firstLine: lineNo}
					hists[key] = g
				}
				g.hasCount = true
				g.countValue, _ = strconv.ParseInt(value, 10, 64)
			case strings.HasSuffix(base, "_sum"):
				// value already checked numeric; nothing structural
			default:
				bad(lineNo, "histogram family %s has non-histogram series %s", fam, name)
			}
		}
	}
	closeFam()
	if err := sc.Err(); err != nil {
		problems = append(problems, fmt.Sprintf("read: %v", err))
	}
	return problems
}

var negInf = -inf

// splitSeries divides a series line into name (with inline labels) and
// value. The name may contain spaces only inside quoted label values.
func splitSeries(line string) (name, value string, ok bool) {
	// Find the space that terminates the name: after the closing brace if
	// labels are present, else the first space.
	end := strings.IndexByte(line, '{')
	if end >= 0 {
		close := strings.IndexByte(line[end:], '}')
		if close < 0 {
			return "", "", false
		}
		end += close + 1
	} else {
		end = strings.IndexByte(line, ' ')
		if end < 0 {
			return "", "", false
		}
	}
	name = line[:end]
	rest := strings.TrimSpace(line[end:])
	if name == "" || rest == "" || strings.ContainsAny(rest, " \t") {
		return "", "", false
	}
	return name, rest, true
}

// labelKeys extracts the label keys of a series name in order of
// appearance; the second return is a parse problem ("" when fine).
func labelKeys(name string) ([]string, string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return nil, ""
	}
	if !strings.HasSuffix(name, "}") {
		return nil, "unterminated label set"
	}
	body := name[i+1 : len(name)-1]
	var keys []string
	for _, part := range strings.Split(body, ",") {
		eq := strings.IndexByte(part, '=')
		if eq <= 0 {
			return nil, fmt.Sprintf("malformed label %q", part)
		}
		v := part[eq+1:]
		if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
			return nil, fmt.Sprintf("unquoted label value %q", part)
		}
		keys = append(keys, part[:eq])
	}
	return keys, ""
}

// labelsOf returns the inline label set of a name including braces ("" if
// none).
func labelsOf(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[i:]
	}
	return ""
}

// seriesFamily resolves the declared family a series belongs to: its base
// name, or for histogram sub-series the base minus _bucket/_sum/_count.
func seriesFamily(name string, kinds map[string]string) string {
	base := familyOf(name)
	if _, ok := kinds[base]; ok {
		return base
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		trimmed := strings.TrimSuffix(base, suffix)
		if trimmed != base {
			if kinds[trimmed] == "histogram" {
				return trimmed
			}
		}
	}
	return ""
}

// bucketLE parses a bucket series' le label, returning the bound and the
// group key (family + labels minus le).
func bucketLE(name string) (le float64, key string, problem string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return 0, "", "bucket without labels"
	}
	base := strings.TrimSuffix(familyOf(name), "_bucket")
	body := name[i+1 : len(name)-1]
	var rest []string
	leStr := ""
	for _, part := range strings.Split(body, ",") {
		if strings.HasPrefix(part, `le="`) && strings.HasSuffix(part, `"`) {
			leStr = part[4 : len(part)-1]
			continue
		}
		rest = append(rest, part)
	}
	if leStr == "" {
		return 0, "", "bucket without le label"
	}
	if leStr == "+Inf" {
		le = inf
	} else {
		v, err := strconv.ParseFloat(leStr, 64)
		if err != nil {
			return 0, "", fmt.Sprintf("unparseable le %q", leStr)
		}
		le = v
	}
	key = base
	if len(rest) > 0 {
		key += "{" + strings.Join(rest, ",") + "}"
	}
	return le, key, ""
}
