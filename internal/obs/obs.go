// Package obs is the platform's observability layer: a dependency-free
// metrics registry (counters, gauges, fixed-bucket histograms) with
// snapshot export as Prometheus text format or JSON, plus the shared
// stderr logger the command-line tools route diagnostics through.
//
// The design constraints come from the measurement pipeline it instruments:
//
//   - Hot-path safe: every instrument update is a single atomic operation
//     (histograms: two adds and a CAS loop on the sum) with no locks and no
//     allocation. Instruments are created once, at Instrument() time.
//   - Deterministic-safe: metrics observe the computation, they never feed
//     back into it. Nothing in this package produces a value a measurement
//     depends on, so instrumented and uninstrumented runs emit byte-identical
//     datasets (the campaign determinism tests assert exactly this).
//   - Optional: all instrument methods are nil-receiver no-ops, so a
//     subsystem holds possibly-nil instrument fields and pays one predicted
//     branch per event when nobody asked for metrics.
//
// Series names follow Prometheus conventions (`s2s_<subsystem>_<what>_total`)
// and may carry a literal label set in the name itself, e.g.
// `s2s_engine_worker_busy_ns_total{worker="3"}`: the exporter groups series
// into families by the name before the brace, emitting one HELP/TYPE pair
// per family.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64.
type Counter struct {
	v atomic.Int64
}

// Inc adds one. Safe on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n must be >= 0 to keep the counter monotonic). Safe on a nil
// receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. Safe on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta with a CAS loop. Safe on a nil receiver.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Bucket i counts
// observations v <= bounds[i]; the last implicit bucket is +Inf. The bound
// slice is fixed at creation, so Observe is lock- and allocation-free.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one value. Safe on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Bucket counts are small (tens); a linear scan beats binary search's
	// branch misses and keeps the code allocation-free.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// ExpBuckets returns n exponentially growing bucket bounds starting at
// start, each factor times the previous.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n bounds start, start+step, ...
func LinearBuckets(start, step float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*step
	}
	return out
}

// DurationBuckets spans 1µs to ~4200s in powers of four — wide enough for
// both per-tree computations and whole-epoch rebuilds, in seconds.
func DurationBuckets() []float64 { return ExpBuckets(1e-6, 4, 12) }

// Run-level metric names the commands share: whole-process wall time, the
// records a run produced, and the resulting throughput.
const (
	MetricRunWallSeconds   = "s2s_run_wall_seconds"
	MetricRunRecords       = "s2s_run_records_total"
	MetricRunRecordsPerSec = "s2s_run_records_per_sec"
)

// Registry is a named collection of instruments. Lookups are get-or-create
// and return the same instrument for the same name, so independent callers
// (a subsystem and a progress reporter, say) can share a series by name.
// All methods are safe for concurrent use and nil-receiver no-ops.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	help       map[string]string // keyed by family name
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		help:       make(map[string]string),
	}
}

// familyOf strips an inline label set: `name{worker="3"}` -> `name`.
func familyOf(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == '{' {
			return name[:i]
		}
	}
	return name
}

func (r *Registry) setHelpLocked(name, help string) {
	fam := familyOf(name)
	if _, ok := r.help[fam]; !ok && help != "" {
		r.help[fam] = help
	}
}

// Counter returns the counter registered under name, creating it if
// needed. The first non-empty help string for a family wins. Returns nil
// on a nil registry.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	r.setHelpLocked(name, help)
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
// Returns nil on a nil registry.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	r.setHelpLocked(name, help)
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket bounds if needed (nil bounds select DurationBuckets).
// Bounds are sorted and deduplicated; later registrations reuse the first
// creation's buckets. Returns nil on a nil registry.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		if bounds == nil {
			bounds = DurationBuckets()
		}
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		uniq := bs[:0]
		for i, b := range bs {
			if i == 0 || b != bs[i-1] {
				uniq = append(uniq, b)
			}
		}
		h = &Histogram{bounds: uniq, buckets: make([]atomic.Int64, len(uniq)+1)}
		r.histograms[name] = h
	}
	r.setHelpLocked(name, help)
	return h
}
