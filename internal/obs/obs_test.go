package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "a counter")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value = %d, want 42", got)
	}
	if again := r.Counter("x_total", "ignored"); again != c {
		t.Fatal("same name must return the same counter")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth", "a gauge")
	g.Set(3.5)
	g.Add(-1.5)
	if got := g.Value(); got != 2 {
		t.Fatalf("Value = %v, want 2", got)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "a histogram", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-556.5) > 1e-9 {
		t.Fatalf("Sum = %v, want 556.5", h.Sum())
	}
	s := r.Snapshot().Histograms["lat"]
	// Cumulative: <=1: 2 (0.5 and the boundary value 1), <=10: 3, <=100: 4, +Inf: 5.
	want := []int64{2, 3, 4, 5}
	for i, b := range s.Buckets {
		if b.Count != want[i] {
			t.Fatalf("bucket %d (le=%v) = %d, want %d", i, b.LE, b.Count, want[i])
		}
	}
	if !math.IsInf(s.Buckets[len(s.Buckets)-1].LE, 1) {
		t.Fatal("last bucket must be +Inf")
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	g := r.Gauge("y", "")
	h := r.Histogram("z", "", nil)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	// All of these must be no-ops, not panics.
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
	var l *Logger
	l.Printf("no panic")
	l.Errorf("no panic")
}

func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	h := r.Histogram("h", "", []float64{10})
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != goroutines*per {
		t.Fatalf("counter = %d, want %d", c.Value(), goroutines*per)
	}
	if h.Count() != goroutines*per || h.Sum() != goroutines*per {
		t.Fatalf("histogram count/sum = %d/%v", h.Count(), h.Sum())
	}
}

func TestPrometheusExport(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "counts b").Add(7)
	r.Counter(`a_total{shard="1"}`, "counts a").Add(1)
	r.Counter(`a_total{shard="0"}`, "counts a").Add(2)
	r.Gauge("g", "a gauge").Set(1.25)
	r.Histogram("h_seconds", "a histogram", []float64{0.5}).Observe(0.1)

	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	// Families in sorted order, one TYPE line each, labeled series grouped.
	wantOrder := []string{
		"# HELP a_total counts a",
		"# TYPE a_total counter",
		`a_total{shard="0"} 2`,
		`a_total{shard="1"} 1`,
		"# TYPE b_total counter",
		"b_total 7",
		"# TYPE g gauge",
		"g 1.25",
		"# TYPE h_seconds histogram",
		`h_seconds_bucket{le="0.5"} 1`,
		`h_seconds_bucket{le="+Inf"} 1`,
		"h_seconds_sum 0.1",
		"h_seconds_count 1",
	}
	pos := -1
	for _, want := range wantOrder {
		i := strings.Index(out, want)
		if i < 0 {
			t.Fatalf("missing line %q in:\n%s", want, out)
		}
		if i < pos {
			t.Fatalf("line %q out of order in:\n%s", want, out)
		}
		pos = i
	}
	// Every non-comment line must be exactly "name value" with a numeric value.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed line %q", line)
		}
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			t.Fatalf("non-numeric value in line %q", line)
		}
	}
	if n := strings.Count(out, "# TYPE a_total"); n != 1 {
		t.Fatalf("family a_total has %d TYPE lines, want 1", n)
	}
}

func TestJSONExport(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "").Add(3)
	r.Gauge("g", "").Set(2.5)
	r.Histogram("h", "", []float64{1}).Observe(4)

	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got struct {
		Counters   map[string]int64 `json:"counters"`
		Gauges     map[string]float64
		Histograms map[string]struct {
			Buckets []struct {
				LE    string `json:"le"`
				Count int64  `json:"count"`
			} `json:"buckets"`
			Sum   float64 `json:"sum"`
			Count int64   `json:"count"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v\n%s", err, buf.String())
	}
	if got.Counters["c_total"] != 3 || got.Gauges["g"] != 2.5 {
		t.Fatalf("bad values: %+v", got)
	}
	h := got.Histograms["h"]
	if h.Count != 1 || h.Sum != 4 || h.Buckets[len(h.Buckets)-1].LE != "+Inf" {
		t.Fatalf("bad histogram: %+v", h)
	}
}

func TestWriteFile(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "").Add(1)
	dir := t.TempDir()
	for _, name := range []string{"snap.prom", "snap.json"} {
		path := dir + "/" + name
		if err := WriteFile(path, r); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSumFamily(t *testing.T) {
	r := NewRegistry()
	r.Counter(`hits_total{shard="0"}`, "").Add(2)
	r.Counter(`hits_total{shard="1"}`, "").Add(3)
	r.Counter("hits_total_other", "").Add(100)
	if got := r.Snapshot().SumFamily("hits_total"); got != 5 {
		t.Fatalf("SumFamily = %d, want 5", got)
	}
}

// TestPrometheusHistogramExposition checks the invariants the text format
// demands of histograms: `le` bounds strictly increasing with +Inf last,
// bucket counts cumulative (non-decreasing), the +Inf bucket equal to
// `_count`, and `_sum` agreeing with the observations.
func TestPrometheusHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("rtt_ms", "round-trip time", LinearBuckets(10, 10, 5)) // 10..50
	obsvs := []float64{1, 10, 15, 35, 49.5, 50, 120, 3000}
	var wantSum float64
	for _, v := range obsvs {
		h.Observe(v)
		wantSum += v
	}

	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}

	var les []float64
	var counts []int64
	var gotSum float64
	var gotCount int64 = -1
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 || strings.HasPrefix(line, "#") {
			continue
		}
		name, val := fields[0], fields[1]
		switch {
		case strings.HasPrefix(name, "rtt_ms_bucket{le=\""):
			leStr := strings.TrimSuffix(strings.TrimPrefix(name, "rtt_ms_bucket{le=\""), "\"}")
			le := math.Inf(1)
			if leStr != "+Inf" {
				var err error
				if le, err = strconv.ParseFloat(leStr, 64); err != nil {
					t.Fatalf("unparseable le in %q: %v", line, err)
				}
			}
			les = append(les, le)
			c, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				t.Fatalf("unparseable count in %q: %v", line, err)
			}
			counts = append(counts, c)
		case name == "rtt_ms_sum":
			gotSum, _ = strconv.ParseFloat(val, 64)
		case name == "rtt_ms_count":
			gotCount, _ = strconv.ParseInt(val, 10, 64)
		}
	}

	if len(les) != 6 {
		t.Fatalf("got %d buckets, want 6 (5 bounds + +Inf):\n%s", len(les), buf.String())
	}
	for i := 1; i < len(les); i++ {
		if les[i] <= les[i-1] {
			t.Errorf("le bounds not increasing: %v", les)
		}
		if counts[i] < counts[i-1] {
			t.Errorf("bucket counts not cumulative: %v", counts)
		}
	}
	if !math.IsInf(les[len(les)-1], 1) {
		t.Errorf("last bucket le = %v, want +Inf", les[len(les)-1])
	}
	// Observations 1,10 ≤10; 15 ≤20; — ≤30; 35 ≤40; 49.5,50 ≤50; 120,3000 only in +Inf.
	wantCounts := []int64{2, 3, 3, 4, 6, 8}
	for i, want := range wantCounts {
		if counts[i] != want {
			t.Fatalf("cumulative counts = %v, want %v", counts, wantCounts)
		}
	}
	if gotCount != counts[len(counts)-1] {
		t.Errorf("_count = %d, +Inf bucket = %d; must agree", gotCount, counts[len(counts)-1])
	}
	if gotCount != int64(len(obsvs)) {
		t.Errorf("_count = %d, want %d", gotCount, len(obsvs))
	}
	if math.Abs(gotSum-wantSum) > 1e-9 {
		t.Errorf("_sum = %v, want %v", gotSum, wantSum)
	}
}

func TestLoggerQuiet(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger("tool", true)
	l.SetOutput(&buf)
	l.Printf("progress %d", 1)
	if buf.Len() != 0 {
		t.Fatalf("quiet logger wrote %q", buf.String())
	}
	l.Errorf("boom")
	if got := buf.String(); got != "tool: boom\n" {
		t.Fatalf("Errorf wrote %q", got)
	}

	buf.Reset()
	loud := NewLogger("tool", false)
	loud.SetOutput(&buf)
	loud.Printf("hello %s", "world")
	if got := buf.String(); got != "tool: hello world\n" {
		t.Fatalf("Printf wrote %q", got)
	}
}

// TestLoggerProgress pins the in-place rendering protocol: a progress line
// is drawn without a newline, cleared with CR+erase before any ordinary
// line, redrawn after it, and retired by EndProgress with one newline.
func TestLoggerProgress(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger("tool", false)
	l.SetOutput(&buf)
	l.SetANSI(true)

	l.Progress("round %d/%d", 1, 4)
	l.Printf("paris flip")
	l.Progress("round %d/%d", 2, 4)
	l.EndProgress()
	l.Printf("done")

	const clear = "\r\x1b[2K"
	want := "tool: round 1/4" +
		clear + "tool: paris flip\n" + "tool: round 1/4" +
		clear + "tool: round 2/4" +
		"\n" +
		"tool: done\n"
	if got := buf.String(); got != want {
		t.Fatalf("progress protocol mismatch:\n got %q\nwant %q", got, want)
	}

	// EndProgress with nothing on screen is a no-op.
	buf.Reset()
	l.EndProgress()
	if buf.Len() != 0 {
		t.Fatalf("idle EndProgress wrote %q", buf.String())
	}

	// Without ANSI (piped stderr) every update is an ordinary line.
	buf.Reset()
	l.SetANSI(false)
	l.Progress("round %d/%d", 3, 4)
	if got := buf.String(); got != "tool: round 3/4\n" {
		t.Fatalf("non-ansi Progress wrote %q", got)
	}
}

// TestLoggerBlock pins the multi-line block protocol: the first Block
// draws its lines, a redraw moves the cursor up over the previous block
// and clears to end of screen first, interleaved lines land above the
// block, and EndBlock leaves the last state on screen.
func TestLoggerBlock(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger("tool", false)
	l.SetOutput(&buf)
	l.SetANSI(true)

	l.Block([]string{"head", "row1"})
	l.Block([]string{"head", "row1", "row2"})
	l.Printf("note")
	l.EndBlock()
	l.Printf("after")

	const up2 = "\x1b[2A\r\x1b[0J"
	const up3 = "\x1b[3A\r\x1b[0J"
	want := "head\nrow1\n" +
		up2 + "head\nrow1\nrow2\n" +
		up3 + "tool: note\n" + "head\nrow1\nrow2\n" +
		"tool: after\n"
	if got := buf.String(); got != want {
		t.Fatalf("block protocol mismatch:\n got %q\nwant %q", got, want)
	}

	// Without ANSI, each Block call prints its lines once, plainly.
	buf.Reset()
	l.SetANSI(false)
	l.Block([]string{"a", "b"})
	if got := buf.String(); got != "a\nb\n" {
		t.Fatalf("non-ansi Block wrote %q", got)
	}
}

// TestLoggerConcurrent hammers the logger from many goroutines — the mutex
// must keep every line whole. Run under -race this also proves the
// progress state is properly guarded.
func TestLoggerConcurrent(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger("t", false)
	l.SetOutput(&buf)
	l.SetANSI(true)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if id%2 == 0 {
					l.Progress("worker %d step %d", id, j)
				} else {
					l.Printf("worker %d line %d", id, j)
				}
			}
		}(i)
	}
	wg.Wait()
	l.EndProgress()
	// Every newline-terminated segment must be a whole line: after
	// stripping clear sequences, each starts with the prefix.
	out := strings.ReplaceAll(buf.String(), "\r\x1b[2K", "\x00")
	for _, seg := range strings.Split(out, "\n") {
		for _, piece := range strings.Split(seg, "\x00") {
			if piece != "" && !strings.HasPrefix(piece, "t: ") {
				t.Fatalf("torn output piece %q", piece)
			}
		}
	}
}

func TestEvery(t *testing.T) {
	var mu sync.Mutex
	n := 0
	stop := Every(time.Millisecond, func() {
		mu.Lock()
		n++
		mu.Unlock()
	})
	time.Sleep(20 * time.Millisecond)
	stop()
	mu.Lock()
	after := n
	mu.Unlock()
	if after == 0 {
		t.Fatal("ticker never fired")
	}
	time.Sleep(5 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if n != after {
		t.Fatal("ticker fired after stop")
	}
	stop() // second stop must not panic
}
