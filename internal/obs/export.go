package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// BucketSnapshot is one cumulative histogram bucket.
type BucketSnapshot struct {
	LE    float64 `json:"-"` // +Inf for the last bucket
	Count int64   `json:"count"`
}

// MarshalJSON renders the bound as a string so the +Inf bucket (which
// encoding/json cannot represent as a number) survives the round trip.
func (b BucketSnapshot) MarshalJSON() ([]byte, error) {
	return []byte(`{"le":"` + formatLE(b.LE) + `","count":` + strconv.FormatInt(b.Count, 10) + `}`), nil
}

// HistogramSnapshot is a point-in-time histogram reading.
type HistogramSnapshot struct {
	Buckets []BucketSnapshot `json:"buckets"`
	Sum     float64          `json:"sum"`
	Count   int64            `json:"count"`
}

// Snapshot is a point-in-time reading of every instrument in a registry,
// with deterministic (sorted) iteration order in both export formats.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	help       map[string]string
}

// Snapshot captures the registry's current values. Instruments keep
// counting afterwards; the snapshot does not. Returns an empty snapshot on
// a nil registry.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
		help:       make(map[string]string),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		hs := HistogramSnapshot{Sum: h.Sum(), Count: h.Count()}
		cum := int64(0)
		for i := range h.buckets {
			cum += h.buckets[i].Load()
			le := inf
			if i < len(h.bounds) {
				le = h.bounds[i]
			}
			hs.Buckets = append(hs.Buckets, BucketSnapshot{LE: le, Count: cum})
		}
		s.Histograms[name] = hs
	}
	for fam, help := range r.help {
		s.help[fam] = help
	}
	return s
}

var inf = math.Inf(1)

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// series is one exportable line: a full series name (possibly labeled) and
// its rendered value.
type series struct {
	name  string
	value string
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func formatLE(v float64) string {
	if v == inf {
		return "+Inf"
	}
	return formatFloat(v)
}

// withLabel appends a label to a series name, merging with an existing
// inline label set: withLabel(`x{a="1"}`, `le`, `0.5`) -> `x{a="1",le="0.5"}`.
func withLabel(name, key, value string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:len(name)-1] + `,` + key + `="` + value + `"}`
	}
	return name + `{` + key + `="` + value + `"}`
}

// suffixed inserts a suffix before any inline label set:
// suffixed(`x{a="1"}`, `_sum`) -> `x_sum{a="1"}`.
func suffixed(name, suffix string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i] + suffix + name[i:]
	}
	return name + suffix
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format, families sorted by name and series sorted within each family.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)

	type family struct {
		name, kind string
		series     []series
	}
	families := make(map[string]*family)
	add := func(name, kind string, lines ...series) {
		fam := familyOf(name)
		f, ok := families[fam]
		if !ok {
			f = &family{name: fam, kind: kind}
			families[fam] = f
		}
		f.series = append(f.series, lines...)
	}
	for _, name := range sortedKeys(s.Counters) {
		add(name, "counter", series{name, strconv.FormatInt(s.Counters[name], 10)})
	}
	for _, name := range sortedKeys(s.Gauges) {
		add(name, "gauge", series{name, formatFloat(s.Gauges[name])})
	}
	// Histogram series keep their bucket order (increasing le, +Inf last)
	// rather than sorting lexically, as the exposition format requires.
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		lines := make([]series, 0, len(h.Buckets)+2)
		for _, b := range h.Buckets {
			lines = append(lines, series{withLabel(suffixed(name, "_bucket"), "le", formatLE(b.LE)), strconv.FormatInt(b.Count, 10)})
		}
		lines = append(lines,
			series{suffixed(name, "_sum"), formatFloat(h.Sum)},
			series{suffixed(name, "_count"), strconv.FormatInt(h.Count, 10)},
		)
		add(name, "histogram", lines...)
	}

	names := make([]string, 0, len(families))
	for name := range families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := families[name]
		if help := s.help[f.name]; help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, help)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, line := range f.series {
			fmt.Fprintf(bw, "%s %s\n", line.name, line.value)
		}
	}
	return bw.Flush()
}

// WriteJSON renders the snapshot as indented JSON (keys sort
// deterministically under encoding/json).
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteFile snapshots the registry and writes it to path: JSON when the
// path ends in .json, Prometheus text format otherwise.
func WriteFile(path string, r *Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	s := r.Snapshot()
	if strings.HasSuffix(path, ".json") {
		err = s.WriteJSON(f)
	} else {
		err = s.WritePrometheus(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// SumFamily sums every counter series in the family (e.g. all shards of
// `s2s_simnet_path_cache_hits_total`). Bare names match themselves only.
func (s *Snapshot) SumFamily(family string) int64 {
	var total int64
	for name, v := range s.Counters {
		if familyOf(name) == family {
			total += v
		}
	}
	return total
}
