// Package flight is the run flight recorder: a low-overhead execution
// tracing layer that records typed spans and events — campaign rounds,
// engine worker batches, BGP epoch rebuilds, probe batches, path-cache
// sweeps — to a streaming JSONL file, stamped with both monotonic wall
// time and the campaign's virtual clock.
//
// On top of the span stream the recorder periodically appends
// delta-compressed snapshots of an obs.Registry, keyed to virtual-time
// boundaries (typically virtual days), so every metric becomes a time
// series instead of a single end-of-run number. A final run manifest
// (tool, flags, seed, Go version, topology digest, record counts, final
// metrics) makes two runs diffable by `s2sobs diff`.
//
// The design rules mirror internal/obs:
//
//   - Optional: every method is a nil-receiver no-op, so an untraced run
//     pays one predicted branch per potential span.
//   - Observation only: the recorder writes to its own file and never
//     produces a value the simulation reads, so a traced campaign emits a
//     byte-identical record stream to an untraced one (asserted by
//     TestTraceDoesNotPerturbRecords).
//   - Coarse-grained: spans wrap rounds, worker batches, and epoch
//     rebuilds — never individual measurements. Per-measurement subsystems
//     (probe) coalesce into batch events.
package flight

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Version is the flight-record format version, written in the meta line.
const Version = 1

// Record kinds (the "k" field of every line).
const (
	KMeta     = "meta"     // first line: format version, tool, snapshot interval
	KSpan     = "span"     // a timed phase: t = start offset, d = duration
	KEvent    = "ev"       // a point event
	KSnap     = "snap"     // delta-compressed registry snapshot at a virtual boundary
	KManifest = "manifest" // last line: the run manifest
)

// Standard span/event phases (the "ph" field). CLIs may add their own;
// these are the ones the instrumented subsystems emit and s2sobs knows how
// to interpret specially.
const (
	PhCampaign   = "campaign"       // span: one whole campaign; s = campaign kind, n = rounds
	PhRound      = "round"          // span: one engine round; n = tasks, vt = round timestamp
	PhWorker     = "worker"         // span: one worker's batch within a round; id = worker, n = tasks
	PhEngine     = "engine"         // event: engine pool came up; n = worker count
	PhEpochBuild = "epoch_build"    // span: BGP routing-view build; id = epoch, n = trees carried, m = delta events, s = plane
	PhCacheSweep = "cache_sweep"    // event: path-cache shard sweep; id = shard, n = stale drops, m = full-reset evictions, s = family
	PhProbeBatch = "probe_batch"    // event: probe measurement batch milestone; n = cumulative measurements
	PhShardScan  = "shard_scan"     // span: one store shard decode during a scan; s = shard file, n = records, m = payload bytes
	PhFault      = "fault"          // event: one scheduled fault window; vt = start, id = target, n = length ns, s = fault kind
	PhDegraded   = "round_degraded" // event: round booked degraded results; n = agent-down tasks, m = watchdog-abandoned tasks
	PhQuarantine = "quarantine"     // event: pair quarantine transition; n = src cluster, m = dst cluster, s = "add"/"release"
	PhCheckpoint = "checkpoint"     // event: campaign checkpoint written; vt = resume point, n = records, m = sink position
	PhResume     = "resume"         // event: campaign resumed from a checkpoint; vt = resume point, n = rounds already done
	PhSinkError  = "sink_error"     // event: first dataset-sink write failure; s = error text
	PhAlert      = "alert"          // event: alert-rule transition; s = rule, id = severity (0 warn, 1 crit), n = 1 firing / 0 resolved

	// Streaming-analysis event families (internal/analysis). Both are
	// emitted via Announce so attaching operators never perturbs the
	// snapshot clock of the run they observe.
	PhFinding         = "finding"          // event: one analysis finding; vt = finding time, s = analysis name (+ "_v6"), n = src cluster, m = dst cluster, id = magnitude
	PhAnalysisPartial = "analysis_partial" // event: windowed partial-result snapshot of one operator at a virtual-day flush; vt = day boundary, s = analysis name, n = pairs covered, m = findings so far, id = windows evaluated
)

// Attrs are the optional attributes of a span or event. Zero-valued
// fields are omitted from the encoded line; the decoded zero value is
// indistinguishable from "absent" by design (all attributes default to 0).
type Attrs struct {
	ID int64  // generic identifier: worker, shard, or epoch index
	N  int64  // primary count (tasks, trees carried, entries dropped, ...)
	M  int64  // secondary count (delta events, evictions, ...)
	S  string // string attribute (campaign kind, plane, family, ...)
}

// Record is one flight-record line. A single struct covers every kind so
// the schema round-trips losslessly through encoding/json (see the fuzz
// and golden tests, which pin the format for s2sobs).
type Record struct {
	K string `json:"k"`
	// Meta fields.
	V    int    `json:"v,omitempty"`    // format version
	Tool string `json:"tool,omitempty"` // emitting command
	IV   int64  `json:"iv,omitempty"`   // snapshot interval, virtual ns
	// Span/event fields.
	Ph string `json:"ph,omitempty"` // phase
	T  int64  `json:"t,omitempty"`  // wall-clock offset from recorder start, ns
	D  int64  `json:"d,omitempty"`  // duration, ns (spans only)
	VT int64  `json:"vt,omitempty"` // virtual-clock position, ns
	ID int64  `json:"id,omitempty"`
	N  int64  `json:"n,omitempty"`
	M  int64  `json:"m,omitempty"`
	S  string `json:"s,omitempty"`
	// Snapshot payload: counter deltas, absolute gauges, histogram
	// [count delta, sum delta] since the previous snapshot.
	C map[string]int64      `json:"c,omitempty"`
	G map[string]float64    `json:"g,omitempty"`
	H map[string][2]float64 `json:"h,omitempty"`
	// Manifest payload.
	Man *Manifest `json:"manifest,omitempty"`
}

// Manifest identifies a run well enough to reproduce and to diff it.
type Manifest struct {
	Tool       string                `json:"tool"`
	Go         string                `json:"go,omitempty"`
	Seed       int64                 `json:"seed"`
	Flags      map[string]string     `json:"flags,omitempty"`
	TopoDigest string                `json:"topo_digest,omitempty"`
	Records    int64                 `json:"records,omitempty"`
	WallNS     int64                 `json:"wall_ns,omitempty"`
	Counters   map[string]int64      `json:"counters,omitempty"`
	Gauges     map[string]float64    `json:"gauges,omitempty"`
	Histograms map[string][2]float64 `json:"histograms,omitempty"` // [count, sum]
}

// Options configure a Recorder.
type Options struct {
	// Tool names the emitting command in the meta line.
	Tool string
	// Registry, with MetricsInterval, enables periodic metric snapshots.
	Registry *obs.Registry
	// MetricsInterval is the virtual time between registry snapshots
	// (e.g. 24h = one snapshot per virtual day). 0 disables snapshots.
	MetricsInterval time.Duration
	// Clock overrides time.Now (test hook for deterministic traces).
	Clock func() time.Time
}

// Recorder streams flight records to a writer. All methods are safe for
// concurrent use and are no-ops on a nil receiver.
//
// Besides the file stream, a live recorder can be tapped three ways, all
// observation-only (none of them can slow or change the record file):
//
//   - Subscribe tees every encoded line to a channel — the transport
//     behind the ops server's /flight/tail endpoint. Slow subscribers
//     lose lines rather than stalling the run.
//   - Observe delivers every record, decoded, to a callback — how the
//     alert engine watches checkpoint and sink events.
//   - OnBoundary fires a callback at every metrics-interval boundary the
//     virtual clock crosses (even when the interval's delta snapshot was
//     empty and skipped) — the alert engine's evaluation clock.
//
// Observer and boundary callbacks run outside the recorder's lock, so
// they may themselves emit records (the alert engine writes alert events
// from inside its boundary callback).
type Recorder struct {
	mu     sync.Mutex
	bw     *bufio.Writer
	file   io.Closer
	buf    bytes.Buffer  // encode scratch; one line at a time
	enc    *json.Encoder // encodes into buf
	now    func() time.Time
	start  time.Time
	reg    *obs.Registry
	iv     int64
	next   atomic.Int64 // next snapshot boundary, virtual ns
	last   *obs.Snapshot
	err    error
	closed bool

	// Live taps. metaLine replays the header to late subscribers.
	metaLine    []byte
	subs        map[int]chan []byte
	subID       int
	observers   []func(*Record)
	boundaryFns []func(time.Duration)
	// pending holds callback work queued under the lock, dispatched by the
	// public entry points after releasing it.
	pending []pendingCallback
}

// pendingCallback is one deferred observer notification: a written record
// or a crossed snapshot boundary.
type pendingCallback struct {
	rec      *Record
	boundary int64
}

// New returns a Recorder streaming to w and writes the meta line.
func New(w io.Writer, o Options) *Recorder {
	now := o.Clock
	if now == nil {
		now = time.Now
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	r := &Recorder{
		bw:  bw,
		now: now,
		reg: o.Registry,
		iv:  int64(o.MetricsInterval),
	}
	r.enc = json.NewEncoder(&r.buf)
	r.start = r.now()
	if r.iv > 0 {
		r.next.Store(r.iv)
	}
	r.writeLocked(&Record{K: KMeta, V: Version, Tool: o.Tool, IV: r.iv})
	return r
}

// Create opens path for writing and returns a Recorder over it. Close
// flushes and closes the file.
func Create(path string, o Options) (*Recorder, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	r := New(f, o)
	r.file = f
	return r, nil
}

// Enabled reports whether the recorder is live (false on nil), for callers
// that guard non-trivial attribute computation.
func (r *Recorder) Enabled() bool { return r != nil }

// Interval returns the configured snapshot interval (0 when snapshots are
// disabled or the recorder is nil).
func (r *Recorder) Interval() time.Duration {
	if r == nil {
		return 0
	}
	return time.Duration(r.iv)
}

// Span is an in-flight timed phase. The zero Span (from a nil Recorder)
// is inert: End is a no-op.
type Span struct {
	r  *Recorder
	ph string
	vt int64
	t0 time.Time
}

// Begin starts a span of the given phase at virtual time vt. On a nil
// receiver it returns an inert Span at the cost of one predicted branch.
func (r *Recorder) Begin(ph string, vt time.Duration) Span {
	if r == nil {
		return Span{}
	}
	return Span{r: r, ph: ph, vt: int64(vt), t0: r.now()}
}

// End closes the span and writes it with the given attributes.
func (s Span) End(a Attrs) {
	if s.r == nil {
		return
	}
	end := s.r.now()
	s.r.emit(&Record{
		K: KSpan, Ph: s.ph,
		T: s.t0.Sub(s.r.start).Nanoseconds(), D: end.Sub(s.t0).Nanoseconds(),
		VT: s.vt, ID: a.ID, N: a.N, M: a.M, S: a.S,
	})
}

// Event writes a point event at virtual time vt.
func (r *Recorder) Event(ph string, vt time.Duration, a Attrs) {
	if r == nil {
		return
	}
	r.emit(&Record{
		K: KEvent, Ph: ph,
		T:  r.now().Sub(r.start).Nanoseconds(),
		VT: int64(vt), ID: a.ID, N: a.N, M: a.M, S: a.S,
	})
}

// Announce writes a point event describing a future virtual time without
// advancing the snapshot clock. Schedule announcements — a fault plan
// emitted at run start, say — declare what will happen rather than report
// that the clock got there, so they must not consume metric-snapshot
// boundaries the way Event's vt does. On disk the line is identical to an
// Event's.
func (r *Recorder) Announce(ph string, vt time.Duration, a Attrs) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.writeLocked(&Record{
		K: KEvent, Ph: ph,
		T:  r.now().Sub(r.start).Nanoseconds(),
		VT: int64(vt), ID: a.ID, N: a.N, M: a.M, S: a.S,
	})
	r.mu.Unlock()
	r.dispatch()
}

// Advance tells the recorder the virtual clock reached vt without emitting
// a span, flushing any metric snapshots whose boundary passed. Callers on
// tight loops (e.g. a dataset reader walking record timestamps) can call
// it per item: before the next boundary it is one atomic load.
func (r *Recorder) Advance(vt time.Duration) {
	if r == nil || r.reg == nil || r.iv <= 0 {
		return
	}
	if int64(vt) < r.next.Load() {
		return
	}
	r.mu.Lock()
	r.snapUpToLocked(int64(vt))
	r.mu.Unlock()
	r.dispatch()
}

// WriteManifest completes m (Go version, wall time, final metrics from the
// registry) and writes it. Call once, just before Close.
func (r *Recorder) WriteManifest(m Manifest) {
	if r == nil {
		return
	}
	if m.Go == "" {
		m.Go = runtime.Version()
	}
	r.mu.Lock()
	if m.WallNS == 0 {
		m.WallNS = r.now().Sub(r.start).Nanoseconds()
	}
	if r.reg != nil {
		s := r.reg.Snapshot()
		m.Counters = s.Counters
		m.Gauges = s.Gauges
		if len(s.Histograms) > 0 {
			m.Histograms = make(map[string][2]float64, len(s.Histograms))
			for name, h := range s.Histograms {
				m.Histograms[name] = [2]float64{float64(h.Count), h.Sum}
			}
		}
	}
	r.writeLocked(&Record{K: KManifest, T: r.now().Sub(r.start).Nanoseconds(), Man: &m})
	r.mu.Unlock()
	r.dispatch()
}

// Close flushes the stream and closes the underlying file (when the
// Recorder came from Create). It returns the first error the recorder hit.
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return r.err
	}
	r.closed = true
	for id, ch := range r.subs {
		delete(r.subs, id)
		close(ch)
	}
	if err := r.bw.Flush(); err != nil && r.err == nil {
		r.err = err
	}
	if r.file != nil {
		if err := r.file.Close(); err != nil && r.err == nil {
			r.err = err
		}
	}
	return r.err
}

// Err returns the first write error, if any.
func (r *Recorder) Err() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// emit writes rec, first flushing any metric-snapshot boundaries the
// record's virtual time has crossed (so snapshots appear in virtual-time
// order relative to the spans that drove the clock forward).
func (r *Recorder) emit(rec *Record) {
	r.mu.Lock()
	if rec.VT > 0 {
		r.snapUpToLocked(rec.VT)
	}
	r.writeLocked(rec)
	r.mu.Unlock()
	r.dispatch()
}

func (r *Recorder) writeLocked(rec *Record) {
	if r.err != nil || r.closed {
		return
	}
	r.buf.Reset()
	if err := r.enc.Encode(rec); err != nil {
		r.err = err
		return
	}
	line := r.buf.Bytes()
	if _, err := r.bw.Write(line); err != nil && r.err == nil {
		r.err = err
	}
	if rec.K == KMeta && r.metaLine == nil {
		r.metaLine = append([]byte(nil), line...)
	}
	if len(r.subs) > 0 {
		// One shared copy per line; a subscriber whose buffer is full loses
		// the line (a live tail must never stall the run).
		cp := append([]byte(nil), line...)
		for _, ch := range r.subs {
			select {
			case ch <- cp:
			default:
			}
		}
	}
	if len(r.observers) > 0 {
		r.pending = append(r.pending, pendingCallback{rec: rec})
	}
}

// Subscribe tees every encoded line (including the already-written meta
// header) into a fresh channel with the given buffer size. The channel is
// closed when the recorder closes or cancel is called; lines that arrive
// while the buffer is full are dropped. On a nil recorder it returns a
// closed channel.
func (r *Recorder) Subscribe(buffer int) (lines <-chan []byte, cancel func()) {
	if r == nil {
		ch := make(chan []byte)
		close(ch)
		return ch, func() {}
	}
	if buffer < 1 {
		buffer = 1
	}
	ch := make(chan []byte, buffer)
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	if r.subs == nil {
		r.subs = make(map[int]chan []byte)
	}
	id := r.subID
	r.subID++
	r.subs[id] = ch
	if r.metaLine != nil {
		ch <- r.metaLine // buffer >= 1, channel is fresh: never blocks
	}
	r.mu.Unlock()
	return ch, func() {
		r.mu.Lock()
		if sub, ok := r.subs[id]; ok {
			delete(r.subs, id)
			close(sub)
		}
		r.mu.Unlock()
	}
}

// Observe registers fn to receive every record the recorder writes, after
// the write. Callbacks run outside the recorder lock (so fn may emit
// records itself) but on the emitting goroutine. Register before the run
// starts; a nil recorder is a no-op.
func (r *Recorder) Observe(fn func(*Record)) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.observers = append(r.observers, fn)
	r.mu.Unlock()
}

// OnBoundary registers fn to run each time the virtual clock crosses a
// metrics-interval boundary, whether or not that interval's delta
// snapshot was empty. Like Observe callbacks, fn runs outside the
// recorder lock and may emit records. A nil recorder (or a recorder
// without snapshots configured) never fires.
func (r *Recorder) OnBoundary(fn func(vt time.Duration)) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.boundaryFns = append(r.boundaryFns, fn)
	r.mu.Unlock()
}

// dispatch drains the pending callback queue outside the lock. Callbacks
// may emit records, queueing more work; the loop runs until the queue is
// empty.
func (r *Recorder) dispatch() {
	for {
		r.mu.Lock()
		if len(r.pending) == 0 {
			r.mu.Unlock()
			return
		}
		work := r.pending
		r.pending = nil
		obsFns := r.observers
		bFns := r.boundaryFns
		r.mu.Unlock()
		for _, p := range work {
			if p.rec != nil {
				for _, fn := range obsFns {
					fn(p.rec)
				}
			} else {
				for _, fn := range bFns {
					fn(time.Duration(p.boundary))
				}
			}
		}
	}
}

// snapUpToLocked emits one delta snapshot per crossed boundary ≤ vt. Empty
// deltas (nothing changed in the interval) are skipped but still advance
// the boundary, so quiet intervals cost nothing in the file.
func (r *Recorder) snapUpToLocked(vt int64) {
	if r.reg == nil || r.iv <= 0 {
		return
	}
	next := r.next.Load()
	if vt < next {
		return
	}
	for vt >= next {
		r.snapAtLocked(next)
		if len(r.boundaryFns) > 0 {
			r.pending = append(r.pending, pendingCallback{boundary: next})
		}
		next += r.iv
	}
	r.next.Store(next)
}

// snapAtLocked captures the registry and writes the delta against the
// previous snapshot, keyed to the virtual boundary vt.
func (r *Recorder) snapAtLocked(vt int64) {
	cur := r.reg.Snapshot()
	rec := &Record{K: KSnap, T: r.now().Sub(r.start).Nanoseconds(), VT: vt}
	prev := r.last
	for name, v := range cur.Counters {
		var pv int64
		if prev != nil {
			pv = prev.Counters[name]
		}
		if d := v - pv; d != 0 {
			if rec.C == nil {
				rec.C = make(map[string]int64)
			}
			rec.C[name] = d
		}
	}
	for name, v := range cur.Gauges {
		pv, ok := 0.0, false
		if prev != nil {
			pv, ok = prev.Gauges[name]
		}
		if !ok || v != pv {
			if rec.G == nil {
				rec.G = make(map[string]float64)
			}
			rec.G[name] = v
		}
	}
	for name, h := range cur.Histograms {
		var pc int64
		var ps float64
		if prev != nil {
			if ph, ok := prev.Histograms[name]; ok {
				pc, ps = ph.Count, ph.Sum
			}
		}
		if dc := h.Count - pc; dc != 0 {
			if rec.H == nil {
				rec.H = make(map[string][2]float64)
			}
			rec.H[name] = [2]float64{float64(dc), h.Sum - ps}
		}
	}
	r.last = cur
	if rec.C == nil && rec.G == nil && rec.H == nil {
		return
	}
	r.writeLocked(rec)
}

// FlagsSet returns the command-line flags that were explicitly set, as a
// name→value map — the manifest's record of how the run was invoked.
// Defaulted flags are omitted so two runs diff on intent, not noise.
func FlagsSet() map[string]string {
	m := make(map[string]string)
	flag.Visit(func(f *flag.Flag) { m[f.Name] = f.Value.String() })
	if len(m) == 0 {
		return nil
	}
	return m
}
