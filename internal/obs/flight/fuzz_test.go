package flight

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/obs"
)

// FuzzRead throws arbitrary bytes at the strict reader: it must either
// reject the input with an error or return records that survive a
// re-encode/re-read round trip unchanged.
func FuzzRead(f *testing.F) {
	// Seed with a real recorder-produced trace.
	var buf bytes.Buffer
	reg := obs.NewRegistry()
	reg.Counter("c", "c").Add(7)
	r := New(&buf, Options{Tool: "fuzz", Registry: reg, MetricsInterval: time.Hour, Clock: testClock(time.Millisecond)})
	sp := r.Begin(PhRound, 90*time.Minute)
	sp.End(Attrs{N: 3})
	r.Event(PhCacheSweep, 2*time.Hour, Attrs{ID: 1, N: 2, S: "v6"})
	r.WriteManifest(Manifest{Tool: "fuzz", Seed: 1, Flags: map[string]string{"days": "1"}})
	r.Close()
	f.Add(buf.Bytes())

	f.Add([]byte(""))
	f.Add([]byte("{\"k\":\"meta\",\"v\":1,\"tool\":\"x\"}\n"))
	f.Add([]byte("{\"k\":\"span\",\"ph\":\"round\",\"t\":5,\"d\":9,\"n\":-1}\n"))
	f.Add([]byte("{\"k\":\"snap\",\"vt\":86400000000000,\"c\":{\"a\":1},\"g\":{\"b\":2.5},\"h\":{\"c\":[3,4]}}\n"))
	f.Add([]byte("{\"k\":\"manifest\",\"manifest\":{\"tool\":\"t\",\"seed\":2}}\n"))
	f.Add([]byte("{\"k\":\"event\",\"ph\":\"finding\",\"vt\":97200000000000,\"id\":2,\"n\":3,\"m\":9,\"s\":\"routing_v6\"}\n"))
	f.Add([]byte("{\"k\":\"event\",\"ph\":\"analysis_partial\",\"vt\":86400000000000,\"id\":40,\"n\":12,\"m\":-2,\"s\":\"congestion\"}\n"))
	f.Add([]byte("not json\n"))
	f.Add([]byte("{\"k\":\"meta\"}\n{\"k\":5}\n"))
	f.Add([]byte{0xff, 0xfe, '\n'})

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected is fine; the round trip applies to accepted input
		}
		// Re-encode what was accepted and read it back: the reader must
		// accept its own records and preserve them exactly. Compare the
		// combined meta+record sequence — a meta line after a blank first
		// line lands in Records on the first read but in Meta on the
		// second, which is a position change, not a data change.
		all := func(tr *Trace) []Record {
			var out []Record
			if tr.Meta.K != "" {
				out = append(out, tr.Meta)
			}
			return append(out, tr.Records...)
		}
		recs := all(tr)
		var out bytes.Buffer
		enc := json.NewEncoder(&out)
		for i := range recs {
			if err := enc.Encode(&recs[i]); err != nil {
				t.Fatal(err)
			}
		}
		tr2, err := Read(&out)
		if err != nil {
			t.Fatalf("re-read of re-encoded trace failed: %v", err)
		}
		recs2 := all(tr2)
		if len(recs2) != len(recs) {
			t.Fatalf("round trip changed record count: %d -> %d", len(recs), len(recs2))
		}
		for i := range recs {
			a, _ := json.Marshal(&recs[i])
			b, _ := json.Marshal(&recs2[i])
			if !bytes.Equal(a, b) {
				t.Fatalf("record %d changed across round trip:\n a: %s\n b: %s", i, a, b)
			}
		}
		// The digests the CLI computes must not panic on any accepted trace.
		Summarize(tr)
		MetricSeries(tr)
	})
}
