package flight

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Trace is a fully parsed flight record.
type Trace struct {
	// Meta is the header line (zero-valued when the file lacks one).
	Meta Record
	// Records are all lines after the meta line, in file order.
	Records []Record
	// Manifest is the last manifest line, when present.
	Manifest *Manifest
}

// Read parses a flight-record stream. It is strict: any line that is not
// a valid record fails with its line number, so format drift is caught at
// read time, not deep inside an analysis.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	tr := &Trace{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("flight: line %d: %w", lineNo, err)
		}
		if rec.K == "" {
			return nil, fmt.Errorf("flight: line %d: missing record kind", lineNo)
		}
		switch rec.K {
		case KMeta:
			if lineNo == 1 {
				tr.Meta = rec
				continue
			}
		case KManifest:
			if rec.Man == nil {
				return nil, fmt.Errorf("flight: line %d: manifest record without payload", lineNo)
			}
			tr.Manifest = rec.Man
		}
		tr.Records = append(tr.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("flight: %w", err)
	}
	return tr, nil
}

// Truncation describes how a tolerantly-read trace fell short of a
// complete file: a torn (undecodable) final line, a missing manifest, or
// both. The zero value means the trace was complete.
type Truncation struct {
	// Torn is set when the final line failed to decode — the signature of
	// a writer killed mid-line. LineNo is that line's 1-based number.
	Torn   bool
	LineNo int
	// NoManifest is set when no manifest record was found: the run never
	// reached WriteManifest (still running, crashed, or truncated).
	NoManifest bool
}

// Truncated reports whether the trace is incomplete in any way.
func (tn Truncation) Truncated() bool { return tn.Torn || tn.NoManifest }

// ReadTolerant parses a flight-record stream that may still be growing or
// may have been torn by a crash. Unlike Read, an undecodable *final* line
// is tolerated (reported via Truncation, the decodable prefix returned);
// an undecodable line in the middle of the file is still a hard error —
// that is corruption, not truncation.
func ReadTolerant(r io.Reader) (*Trace, Truncation, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	tr := &Trace{}
	var tn Truncation
	lineNo := 0
	badLine := 0 // deferred: only an error if another line follows
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if badLine != 0 {
			return nil, tn, fmt.Errorf("flight: line %d: undecodable record mid-file (corrupt, not torn)", badLine)
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil || rec.K == "" {
			badLine = lineNo
			continue
		}
		switch rec.K {
		case KMeta:
			if lineNo == 1 {
				tr.Meta = rec
				continue
			}
		case KManifest:
			if rec.Man == nil {
				badLine = lineNo
				continue
			}
			tr.Manifest = rec.Man
		}
		tr.Records = append(tr.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, tn, fmt.Errorf("flight: %w", err)
	}
	if badLine != 0 {
		tn.Torn = true
		tn.LineNo = badLine
	}
	if tr.Manifest == nil {
		tn.NoManifest = true
	}
	return tr, tn, nil
}

// ReadFileTolerant parses the (possibly growing or torn) flight record at
// path.
func ReadFileTolerant(path string) (*Trace, Truncation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, Truncation{}, err
	}
	defer f.Close()
	tr, tn, err := ReadTolerant(f)
	if err != nil {
		return nil, tn, fmt.Errorf("%s: %w", path, err)
	}
	return tr, tn, nil
}

// ReadFile parses the flight record at path.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tr, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return tr, nil
}

// Spans returns the records of kind span, in file order.
func (t *Trace) Spans() []Record {
	var out []Record
	for _, r := range t.Records {
		if r.K == KSpan {
			out = append(out, r)
		}
	}
	return out
}

// Snaps returns the metric-snapshot records, in file order (which is also
// virtual-time order).
func (t *Trace) Snaps() []Record {
	var out []Record
	for _, r := range t.Records {
		if r.K == KSnap {
			out = append(out, r)
		}
	}
	return out
}
