package flight

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// testClock returns a deterministic clock: each call advances the wall
// clock by step, starting at the Unix epoch.
func testClock(step time.Duration) func() time.Time {
	t0 := time.Unix(0, 0)
	n := 0
	return func() time.Time {
		t := t0.Add(time.Duration(n) * step)
		n++
		return t
	}
}

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	sp := r.Begin(PhRound, time.Hour)
	sp.End(Attrs{N: 5})
	r.Event(PhEngine, 0, Attrs{N: 4})
	r.Advance(48 * time.Hour)
	r.WriteManifest(Manifest{Tool: "x"})
	if err := r.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("nil Err: %v", err)
	}
}

func TestRecorderStream(t *testing.T) {
	var buf bytes.Buffer
	reg := obs.NewRegistry()
	c := reg.Counter("jobs_total", "jobs")
	g := reg.Gauge("depth", "queue depth")
	r := New(&buf, Options{
		Tool:            "unit",
		Registry:        reg,
		MetricsInterval: 24 * time.Hour,
		Clock:           testClock(time.Millisecond),
	})

	c.Add(3)
	g.Set(7)
	sp := r.Begin(PhRound, 25*time.Hour) // crosses the day-1 boundary
	sp.End(Attrs{N: 10})
	c.Add(2)
	r.Event(PhCacheSweep, 49*time.Hour, Attrs{ID: 3, N: 8, S: "v4"}) // crosses day 2
	r.WriteManifest(Manifest{Tool: "unit", Seed: 9})
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	tr, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Meta.K != KMeta || tr.Meta.V != Version || tr.Meta.Tool != "unit" {
		t.Fatalf("meta = %+v", tr.Meta)
	}
	if tr.Manifest == nil || tr.Manifest.Seed != 9 {
		t.Fatalf("manifest = %+v", tr.Manifest)
	}
	if tr.Manifest.Counters["jobs_total"] != 5 {
		t.Errorf("manifest counter = %d, want 5", tr.Manifest.Counters["jobs_total"])
	}
	if tr.Manifest.Go == "" || tr.Manifest.WallNS == 0 {
		t.Errorf("manifest missing Go version or wall time: %+v", tr.Manifest)
	}

	snaps := tr.Snaps()
	if len(snaps) != 2 {
		t.Fatalf("got %d snapshots, want 2 (day 1 and day 2)", len(snaps))
	}
	// Snapshot 1 (vt=24h) carries the pre-span state; snapshot 2 (vt=48h)
	// carries only the delta since.
	if snaps[0].VT != int64(24*time.Hour) || snaps[0].C["jobs_total"] != 3 || snaps[0].G["depth"] != 7 {
		t.Errorf("snap[0] = %+v", snaps[0])
	}
	if snaps[1].VT != int64(48*time.Hour) || snaps[1].C["jobs_total"] != 2 {
		t.Errorf("snap[1] = %+v", snaps[1])
	}
	if _, repeated := snaps[1].G["depth"]; repeated {
		t.Error("unchanged gauge repeated in delta snapshot")
	}

	// Ordering: the day-1 snapshot must precede the span that crossed it.
	var kinds []string
	for _, rec := range tr.Records {
		kinds = append(kinds, rec.K)
	}
	joined := strings.Join(kinds, ",")
	if want := "snap,span,snap,ev,manifest"; joined != want {
		t.Errorf("record order = %s, want %s", joined, want)
	}

	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Ph != PhRound || spans[0].N != 10 || spans[0].D <= 0 {
		t.Fatalf("spans = %+v", spans)
	}
}

func TestAdvanceEmitsSnapshots(t *testing.T) {
	var buf bytes.Buffer
	reg := obs.NewRegistry()
	c := reg.Counter("n", "n")
	r := New(&buf, Options{Registry: reg, MetricsInterval: time.Hour, Clock: testClock(time.Microsecond)})
	c.Inc()
	r.Advance(30 * time.Minute) // before the boundary: nothing
	r.Advance(3*time.Hour + time.Minute)
	r.Close()
	tr, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	snaps := tr.Snaps()
	// Boundary 1h has the counter delta; 2h and 3h are empty and skipped.
	if len(snaps) != 1 || snaps[0].VT != int64(time.Hour) || snaps[0].C["n"] != 1 {
		t.Fatalf("snaps = %+v", snaps)
	}
	// The boundary still advanced past 3h: a change at 3.5h lands at 4h.
	c.Inc()
	// Recorder is closed; use a fresh one to assert boundary semantics.
	var buf2 bytes.Buffer
	r2 := New(&buf2, Options{Registry: reg, MetricsInterval: time.Hour, Clock: testClock(time.Microsecond)})
	r2.Advance(time.Hour)
	r2.Close()
	tr2, err := Read(&buf2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr2.Snaps()) != 1 {
		t.Fatalf("fresh recorder snaps = %d, want 1", len(tr2.Snaps()))
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"not json\n",
		"{\"k\":\"meta\"}\n{}\n",         // second line lacks a kind
		"{\"k\":\"manifest\"}\n",         // manifest without payload
		"{\"k\":\"meta\"}\n[1,2,3]\n",    // wrong JSON shape
		"{\"k\":\"meta\"}\n{\"k\":5}\n",  // kind of the wrong type
		"{\"k\":\"span\",\"t\":\"x\"}\n", // field of the wrong type
	}
	for _, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("Read(%q) accepted invalid input", in)
		} else if !strings.Contains(err.Error(), "line") {
			t.Errorf("Read(%q) error lacks a line number: %v", in, err)
		}
	}
	// Blank lines are tolerated.
	if _, err := Read(strings.NewReader("{\"k\":\"meta\",\"v\":1}\n\n{\"k\":\"ev\",\"ph\":\"x\"}\n")); err != nil {
		t.Errorf("Read rejected blank line: %v", err)
	}
}

func TestCreateWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.trace")
	r, err := Create(path, Options{Tool: "t", Clock: testClock(time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	sp := r.Begin(PhCampaign, 0)
	sp.End(Attrs{S: "x", N: 1})
	r.WriteManifest(Manifest{Tool: "t"})
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Spans()) != 1 || tr.Manifest == nil {
		t.Fatalf("trace = %d spans, manifest %v", len(tr.Spans()), tr.Manifest)
	}
}

// goldenTrace emits the reference trace pinned by testdata/golden.trace:
// a deterministic clock, one metric of each type, spans and events of each
// instrumented phase, and a manifest.
func goldenTrace() []byte {
	var buf bytes.Buffer
	reg := obs.NewRegistry()
	c := reg.Counter("s2s_engine_tasks_total", "tasks")
	g := reg.Gauge("s2s_campaign_virtual_ns", "virtual clock")
	h := reg.Histogram("s2s_probe_traceroute_hops", "hops", obs.LinearBuckets(4, 4, 4))
	r := New(&buf, Options{
		Tool:            "golden",
		Registry:        reg,
		MetricsInterval: 24 * time.Hour,
		Clock:           testClock(time.Millisecond),
	})
	r.Event(PhEngine, 0, Attrs{N: 4})
	c.Add(60)
	g.Set(3 * 3600e9)
	h.Observe(6)
	h.Observe(13)
	sp := r.Begin(PhRound, 3*time.Hour)
	sp.End(Attrs{N: 60})
	sp = r.Begin(PhEpochBuild, 20*time.Hour)
	sp.End(Attrs{ID: 2, N: 117, M: 3, S: "v4"})
	r.Event(PhCacheSweep, 26*time.Hour, Attrs{ID: 7, N: 12, M: 0, S: "v6"})
	r.Event(PhProbeBatch, 27*time.Hour, Attrs{N: 1024})
	// Streaming-analysis families ride on Announce: same line on disk, but
	// no snapshot-clock advance (the golden snap count pins that).
	r.Announce(PhFinding, 25*time.Hour, Attrs{S: "routing", N: 3, M: 9, ID: 2})
	r.Announce(PhFinding, 26*time.Hour, Attrs{S: "congestion_v6", N: 3, M: 9, ID: 18})
	r.Announce(PhAnalysisPartial, 24*time.Hour, Attrs{S: "routing", N: 12, M: 2, ID: 0})
	c.Add(40)
	r.Advance(49 * time.Hour)
	sp = r.Begin(PhCampaign, 0)
	sp.End(Attrs{S: "longterm", N: 8})
	r.WriteManifest(Manifest{
		Tool: "golden", Seed: 42, Go: "go0.0.0",
		Flags:      map[string]string{"days": "4", "campaign": "longterm"},
		TopoDigest: "00deadbeef00cafe",
		Records:    120,
	})
	r.Close()
	return buf.Bytes()
}

var update = os.Getenv("UPDATE_GOLDEN") != ""

// TestGolden pins the on-disk format: any change to the encoding shows up
// as a diff against testdata/golden.trace, and the golden file must parse
// and summarize. Set UPDATE_GOLDEN=1 to regenerate after an intentional
// format change (and bump Version).
func TestGolden(t *testing.T) {
	got := goldenTrace()
	path := filepath.Join("testdata", "golden.trace")
	if update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("encoded trace differs from %s:\n got: %s\nwant: %s", path, got, want)
	}

	tr, err := Read(bytes.NewReader(got))
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(tr)
	if s.Tool != "golden" || s.Rounds != 1 || s.Tasks != 60 || s.Workers != 4 || s.Records != 120 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Snaps != 2 {
		t.Fatalf("snaps = %d, want 2", s.Snaps)
	}
	series := MetricSeries(tr)
	tasks := series["s2s_engine_tasks_total"]
	if len(tasks) != 2 || tasks[0].Value != 60 || tasks[1].Value != 40 {
		t.Fatalf("tasks series = %+v", tasks)
	}
	hops := series["s2s_probe_traceroute_hops_count"]
	if len(hops) != 1 || hops[0].Value != 2 {
		t.Fatalf("hops series = %+v", hops)
	}
}
