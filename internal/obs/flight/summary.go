package flight

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// PhaseStat aggregates every span of one phase.
type PhaseStat struct {
	Phase              string
	Count              int
	Total, Mean        time.Duration
	P50, P95, Min, Max time.Duration
}

// Summary is the digested view of one trace that `s2sobs summary` prints
// and `s2sobs diff` compares.
type Summary struct {
	Tool    string
	Wall    time.Duration // manifest wall time, or the last span end
	Rounds  int64
	Tasks   int64 // tasks executed across all round spans
	Workers int   // engine pool size (0 when no engine event is present)
	Records int64 // dataset records, from the manifest
	Snaps   int
	Phases  []PhaseStat // sorted by Total descending

	// Utilization is the worker-busy fraction per wall-time bucket
	// (UtilBuckets columns spanning [0, Wall]), empty without worker spans.
	Utilization []float64
}

// UtilBuckets is the resolution of the worker-utilization timeline.
const UtilBuckets = 60

// Summarize digests a trace.
func Summarize(tr *Trace) *Summary {
	s := &Summary{Tool: tr.Meta.Tool}
	if tr.Manifest != nil {
		s.Records = tr.Manifest.Records
		s.Wall = time.Duration(tr.Manifest.WallNS)
		if s.Tool == "" {
			s.Tool = tr.Manifest.Tool
		}
	}
	durs := make(map[string][]time.Duration)
	var lastEnd int64
	var workerSpans []Record
	for _, r := range tr.Records {
		switch r.K {
		case KSnap:
			s.Snaps++
		case KEvent:
			if r.Ph == PhEngine && r.N > int64(s.Workers) {
				s.Workers = int(r.N)
			}
		case KSpan:
			durs[r.Ph] = append(durs[r.Ph], time.Duration(r.D))
			if end := r.T + r.D; end > lastEnd {
				lastEnd = end
			}
			switch r.Ph {
			case PhRound:
				s.Rounds++
				s.Tasks += r.N
			case PhWorker:
				workerSpans = append(workerSpans, r)
			}
		}
	}
	if s.Wall == 0 {
		s.Wall = time.Duration(lastEnd)
	}
	for ph, ds := range durs {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		st := PhaseStat{Phase: ph, Count: len(ds), Min: ds[0], Max: ds[len(ds)-1]}
		for _, d := range ds {
			st.Total += d
		}
		st.Mean = st.Total / time.Duration(len(ds))
		st.P50 = ds[len(ds)/2]
		st.P95 = ds[len(ds)*95/100]
		s.Phases = append(s.Phases, st)
	}
	sort.Slice(s.Phases, func(i, j int) bool {
		if s.Phases[i].Total != s.Phases[j].Total {
			return s.Phases[i].Total > s.Phases[j].Total
		}
		return s.Phases[i].Phase < s.Phases[j].Phase
	})
	s.Utilization = utilization(workerSpans, int64(s.Wall), s.Workers)
	return s
}

// utilization buckets worker-span busy time over [0, wall).
func utilization(spans []Record, wall int64, workers int) []float64 {
	if len(spans) == 0 || wall <= 0 {
		return nil
	}
	if workers == 0 {
		// Without an engine event, infer the pool from the largest id seen.
		for _, sp := range spans {
			if int(sp.ID)+1 > workers {
				workers = int(sp.ID) + 1
			}
		}
	}
	busy := make([]float64, UtilBuckets)
	bucket := float64(wall) / UtilBuckets
	for _, sp := range spans {
		t0, t1 := float64(sp.T), float64(sp.T+sp.D)
		lo := int(t0 / bucket)
		hi := int(t1 / bucket)
		for b := lo; b <= hi && b < UtilBuckets; b++ {
			if b < 0 {
				continue
			}
			s0, s1 := float64(b)*bucket, float64(b+1)*bucket
			ov := min64(t1, s1) - max64(t0, s0)
			if ov > 0 {
				busy[b] += ov
			}
		}
	}
	for i := range busy {
		busy[i] /= bucket * float64(workers)
		if busy[i] > 1 {
			busy[i] = 1
		}
	}
	return busy
}

func min64(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders vals as a unicode bar string, scaling to [0, max].
// A non-positive max autoscales to the largest value.
func Sparkline(vals []float64, max float64) string {
	if len(vals) == 0 {
		return ""
	}
	if max <= 0 {
		for _, v := range vals {
			if v > max {
				max = v
			}
		}
	}
	var b strings.Builder
	for _, v := range vals {
		i := 0
		if max > 0 {
			i = int(v / max * float64(len(sparkRunes)-1))
		}
		if i < 0 {
			i = 0
		}
		if i >= len(sparkRunes) {
			i = len(sparkRunes) - 1
		}
		b.WriteRune(sparkRunes[i])
	}
	return b.String()
}

// familyOf strips an inline label set: `name{worker="3"}` -> `name`.
func familyOf(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// SeriesPoint is one metric reading at a virtual-time boundary.
type SeriesPoint struct {
	VT    time.Duration
	Value float64
}

// MetricSeries reconstructs per-family metric time series from the trace's
// delta snapshots. Counter families accumulate interval deltas (the value
// at vt is the per-interval increment summed over the family's labeled
// series); gauge families carry the last absolute value; histogram
// families report the per-interval observation count under the family
// name with a "_count" suffix.
func MetricSeries(tr *Trace) map[string][]SeriesPoint {
	out := make(map[string][]SeriesPoint)
	for _, r := range tr.Snaps() {
		vt := time.Duration(r.VT)
		perFam := make(map[string]float64)
		for name, d := range r.C {
			perFam[familyOf(name)] += float64(d)
		}
		for fam, v := range perFam {
			out[fam] = append(out[fam], SeriesPoint{VT: vt, Value: v})
		}
		gaugeFam := make(map[string]float64)
		for name, v := range r.G {
			gaugeFam[familyOf(name)] += v
		}
		for fam, v := range gaugeFam {
			out[fam] = append(out[fam], SeriesPoint{VT: vt, Value: v})
		}
		histFam := make(map[string]float64)
		for name, cs := range r.H {
			histFam[familyOf(name)+"_count"] += cs[0]
		}
		for fam, v := range histFam {
			out[fam] = append(out[fam], SeriesPoint{VT: vt, Value: v})
		}
	}
	return out
}

// days renders a virtual duration in days with one decimal.
func days(d time.Duration) string {
	return fmt.Sprintf("%.1fd", d.Hours()/24)
}

// WriteSummary renders a Summary as the `s2sobs summary` report.
func (s *Summary) WriteSummary(w io.Writer) {
	fmt.Fprintf(w, "tool %s\n", orDash(s.Tool))
	fmt.Fprintf(w, "wall %v  rounds %d  tasks %d  workers %d  records %d  snapshots %d\n",
		s.Wall.Round(time.Millisecond), s.Rounds, s.Tasks, s.Workers, s.Records, s.Snaps)
	if len(s.Phases) > 0 {
		fmt.Fprintf(w, "\nphase wall-time breakdown\n")
		fmt.Fprintf(w, "  %-14s %8s %12s %10s %10s %10s %10s\n", "phase", "count", "total", "mean", "p50", "p95", "max")
		for _, p := range s.Phases {
			fmt.Fprintf(w, "  %-14s %8d %12v %10v %10v %10v %10v\n",
				p.Phase, p.Count, rd(p.Total), rd(p.Mean), rd(p.P50), rd(p.P95), rd(p.Max))
		}
	}
	if len(s.Utilization) > 0 {
		var sum float64
		for _, v := range s.Utilization {
			sum += v
		}
		fmt.Fprintf(w, "\nworker utilization (%d buckets over %v, avg %.0f%%)\n  %s\n",
			len(s.Utilization), s.Wall.Round(time.Millisecond),
			100*sum/float64(len(s.Utilization)), Sparkline(s.Utilization, 1))
	}
}

// WriteSeries renders the reconstructed metric time series; match filters
// family names by substring ("" keeps all).
func WriteSeries(w io.Writer, tr *Trace, match string) {
	series := MetricSeries(tr)
	var fams []string
	for fam := range series {
		if match == "" || strings.Contains(fam, match) {
			fams = append(fams, fam)
		}
	}
	sort.Strings(fams)
	if len(fams) == 0 {
		fmt.Fprintln(w, "no metric snapshots match (was the run traced with -metrics-interval?)")
		return
	}
	iv := time.Duration(tr.Meta.IV)
	fmt.Fprintf(w, "metric time series (%d snapshots, interval %s virtual)\n", len(tr.Snaps()), days(iv))
	for _, fam := range fams {
		pts := series[fam]
		vals := make([]float64, len(pts))
		var total, maxV float64
		for i, p := range pts {
			vals[i] = p.Value
			total += p.Value
			if p.Value > maxV {
				maxV = p.Value
			}
		}
		fmt.Fprintf(w, "  %-52s %s  last-vt %s  peak %.6g  sum %.6g\n",
			fam, Sparkline(vals, 0), days(pts[len(pts)-1].VT), maxV, total)
	}
}

// WriteDiff renders an A/B comparison of two traces: manifest fields that
// differ, then per-phase wall-time totals side by side.
func WriteDiff(w io.Writer, a, b *Trace, nameA, nameB string) {
	sa, sb := Summarize(a), Summarize(b)
	fmt.Fprintf(w, "diff %s vs %s\n", nameA, nameB)

	fmt.Fprintf(w, "\nmanifest\n")
	rows := manifestRows(a.Manifest, sa)
	rowsB := manifestRows(b.Manifest, sb)
	keys := make(map[string]bool)
	for k := range rows {
		keys[k] = true
	}
	for k := range rowsB {
		keys[k] = true
	}
	var sorted []string
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	fmt.Fprintf(w, "  %-24s %-24s %-24s\n", "field", "a", "b")
	for _, k := range sorted {
		va, vb := orDash(rows[k]), orDash(rowsB[k])
		marker := " "
		if va != vb {
			marker = "*"
		}
		fmt.Fprintf(w, "%s %-24s %-24s %-24s\n", marker, k, va, vb)
	}

	fmt.Fprintf(w, "\nphase timings\n")
	fmt.Fprintf(w, "  %-14s %12s %12s %9s\n", "phase", "a-total", "b-total", "delta")
	phases := make(map[string][2]time.Duration)
	order := []string{}
	for _, p := range sa.Phases {
		phases[p.Phase] = [2]time.Duration{p.Total, 0}
		order = append(order, p.Phase)
	}
	for _, p := range sb.Phases {
		v, ok := phases[p.Phase]
		if !ok {
			order = append(order, p.Phase)
		}
		v[1] = p.Total
		phases[p.Phase] = v
	}
	for _, ph := range order {
		v := phases[ph]
		fmt.Fprintf(w, "  %-14s %12v %12v %9s\n", ph, rd(v[0]), rd(v[1]), pctDelta(v[0], v[1]))
	}
	fmt.Fprintf(w, "  %-14s %12v %12v %9s\n", "run wall", rd(sa.Wall), rd(sb.Wall), pctDelta(sa.Wall, sb.Wall))
}

// manifestRows flattens the diffable manifest fields.
func manifestRows(m *Manifest, s *Summary) map[string]string {
	rows := map[string]string{
		"rounds":  fmt.Sprintf("%d", s.Rounds),
		"tasks":   fmt.Sprintf("%d", s.Tasks),
		"workers": fmt.Sprintf("%d", s.Workers),
	}
	if m == nil {
		return rows
	}
	rows["tool"] = m.Tool
	rows["go"] = m.Go
	rows["seed"] = fmt.Sprintf("%d", m.Seed)
	rows["records"] = fmt.Sprintf("%d", m.Records)
	if m.TopoDigest != "" {
		rows["topo_digest"] = m.TopoDigest
	}
	for k, v := range m.Flags {
		rows["flag."+k] = v
	}
	return rows
}

func pctDelta(a, b time.Duration) string {
	if a == 0 {
		if b == 0 {
			return "0%"
		}
		return "new"
	}
	return fmt.Sprintf("%+.1f%%", 100*(float64(b)-float64(a))/float64(a))
}

func rd(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(time.Microsecond)
	default:
		return d
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
