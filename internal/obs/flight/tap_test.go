package flight

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestSubscribeTee checks that a subscriber sees the meta header plus every
// line written after it joined, byte-identical to the file stream.
func TestSubscribeTee(t *testing.T) {
	var buf bytes.Buffer
	r := New(&buf, Options{Tool: "tap-test", Clock: testClock(time.Millisecond)})
	lines, cancel := r.Subscribe(64)
	defer cancel()

	r.Event(PhEngine, 0, Attrs{N: 4})
	sp := r.Begin(PhRound, time.Hour)
	sp.End(Attrs{N: 7})
	r.WriteManifest(Manifest{Tool: "tap-test", Seed: 1})
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	var got bytes.Buffer
	for line := range lines {
		got.Write(line)
	}
	if got.String() != buf.String() {
		t.Fatalf("subscriber stream differs from file:\nsub:  %q\nfile: %q", got.String(), buf.String())
	}
	if n := strings.Count(got.String(), "\n"); n != 4 {
		t.Fatalf("want 4 lines (meta, ev, span, manifest), got %d", n)
	}
}

// TestSubscribeLateJoinerGetsMeta: a subscriber attaching mid-run replays
// the meta header first, so a tailing client can always identify the format.
func TestSubscribeLateJoinerGetsMeta(t *testing.T) {
	var buf bytes.Buffer
	r := New(&buf, Options{Tool: "late", Clock: testClock(time.Millisecond)})
	r.Event(PhEngine, 0, Attrs{N: 2}) // before subscribing: lost to the tail

	lines, cancel := r.Subscribe(8)
	defer cancel()
	r.Event(PhProbeBatch, time.Hour, Attrs{N: 1024})
	r.Close()

	var seen []string
	for line := range lines {
		seen = append(seen, string(line))
	}
	if len(seen) != 2 {
		t.Fatalf("want meta + 1 event, got %d lines: %v", len(seen), seen)
	}
	if !strings.Contains(seen[0], `"k":"meta"`) {
		t.Fatalf("first replayed line is not meta: %s", seen[0])
	}
	if !strings.Contains(seen[1], PhProbeBatch) {
		t.Fatalf("second line is not the post-subscribe event: %s", seen[1])
	}
}

// TestSubscribeSlowClientDropsLines: a full subscriber buffer drops lines
// instead of blocking the writer.
func TestSubscribeSlowClientDropsLines(t *testing.T) {
	var buf bytes.Buffer
	r := New(&buf, Options{Tool: "slow", Clock: testClock(time.Millisecond)})
	lines, cancel := r.Subscribe(1)
	defer cancel()
	// Buffer of 1 already holds the meta line; these must not block.
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			r.Event(PhProbeBatch, 0, Attrs{N: int64(i)})
		}
		r.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("writer blocked on a slow subscriber")
	}
	n := 0
	for range lines {
		n++
	}
	if n > 2 { // meta + at most one buffered event
		t.Fatalf("slow subscriber saw %d lines, want <= 2", n)
	}
}

func TestSubscribeCancelIdempotent(t *testing.T) {
	var buf bytes.Buffer
	r := New(&buf, Options{Tool: "cancel"})
	_, cancel := r.Subscribe(4)
	cancel()
	cancel() // second cancel must not panic (double close)
	r.Close()

	// Subscribing to a closed recorder returns a closed channel.
	lines, cancel2 := r.Subscribe(4)
	defer cancel2()
	if _, ok := <-lines; ok {
		t.Fatal("subscription on closed recorder delivered a line")
	}
}

// TestObserveSeesEveryRecord: observers receive each record after it is
// written, including snapshots and the manifest.
func TestObserveSeesEveryRecord(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("tap_obs_total", "")
	var buf bytes.Buffer
	r := New(&buf, Options{
		Tool: "observe", Registry: reg, MetricsInterval: time.Hour,
		Clock: testClock(time.Millisecond),
	})
	var kinds []string
	r.Observe(func(rec *Record) { kinds = append(kinds, rec.K) })

	c.Inc()
	r.Event(PhEngine, 90*time.Minute, Attrs{N: 1}) // crosses the 1h boundary
	r.WriteManifest(Manifest{Tool: "observe"})
	r.Close()

	want := []string{KSnap, KEvent, KManifest}
	if len(kinds) != len(want) {
		t.Fatalf("observer saw %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("observer saw %v, want %v", kinds, want)
		}
	}
}

// TestOnBoundaryFiresPerInterval: boundary callbacks fire once per crossed
// interval, even when the interval's delta snapshot was empty, and the
// callback may itself emit records without deadlocking.
func TestOnBoundaryFiresPerInterval(t *testing.T) {
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	r := New(&buf, Options{
		Tool: "boundary", Registry: reg, MetricsInterval: time.Hour,
		Clock: testClock(time.Millisecond),
	})
	var fired []time.Duration
	r.OnBoundary(func(vt time.Duration) {
		fired = append(fired, vt)
		r.Event(PhAlert, vt, Attrs{S: "test_rule", N: 1}) // reentrant emit
	})

	r.Advance(3*time.Hour + 30*time.Minute) // crosses 1h, 2h, 3h — all quiet
	r.Close()

	want := []time.Duration{time.Hour, 2 * time.Hour, 3 * time.Hour}
	if len(fired) != len(want) {
		t.Fatalf("boundaries fired at %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("boundaries fired at %v, want %v", fired, want)
		}
	}
	if n := strings.Count(buf.String(), `"ph":"alert"`); n != 3 {
		t.Fatalf("want 3 alert events from the callback, got %d\n%s", n, buf.String())
	}
}

// TestTapsDoNotPerturbStream: the file bytes with taps attached equal the
// file bytes without any taps.
func TestTapsDoNotPerturbStream(t *testing.T) {
	run := func(tap bool) string {
		reg := obs.NewRegistry()
		c := reg.Counter("tap_perturb_total", "")
		var buf bytes.Buffer
		r := New(&buf, Options{
			Tool: "perturb", Registry: reg, MetricsInterval: time.Hour,
			Clock: testClock(time.Millisecond),
		})
		if tap {
			lines, cancel := r.Subscribe(4)
			defer cancel()
			go func() {
				for range lines {
				}
			}()
			r.Observe(func(*Record) {})
			r.OnBoundary(func(time.Duration) {})
		}
		c.Inc()
		r.Event(PhEngine, 2*time.Hour, Attrs{N: 1})
		r.WriteManifest(Manifest{Tool: "perturb", Seed: 9})
		r.Close()
		return buf.String()
	}
	if plain, tapped := run(false), run(true); plain != tapped {
		t.Fatalf("taps perturbed the stream:\nplain:  %q\ntapped: %q", plain, tapped)
	}
}

// TestReadTolerant covers the three truncation shapes: complete file, torn
// final line, and missing manifest; plus mid-file corruption as hard error.
func TestReadTolerant(t *testing.T) {
	var buf bytes.Buffer
	r := New(&buf, Options{Tool: "tol", Clock: testClock(time.Millisecond)})
	r.Event(PhEngine, 0, Attrs{N: 4})
	r.WriteManifest(Manifest{Tool: "tol"})
	r.Close()
	full := buf.String()

	t.Run("complete", func(t *testing.T) {
		tr, tn, err := ReadTolerant(strings.NewReader(full))
		if err != nil {
			t.Fatalf("ReadTolerant: %v", err)
		}
		if tn.Truncated() {
			t.Fatalf("complete file reported truncated: %+v", tn)
		}
		if tr.Manifest == nil || len(tr.Records) != 2 {
			t.Fatalf("bad parse: manifest=%v records=%d", tr.Manifest, len(tr.Records))
		}
	})
	t.Run("torn final line", func(t *testing.T) {
		torn := full[:len(full)-10] // cut into the manifest line
		tr, tn, err := ReadTolerant(strings.NewReader(torn))
		if err != nil {
			t.Fatalf("ReadTolerant on torn file: %v", err)
		}
		if !tn.Torn || !tn.NoManifest {
			t.Fatalf("want Torn+NoManifest, got %+v", tn)
		}
		if len(tr.Records) != 1 {
			t.Fatalf("want the decodable prefix (1 record), got %d", len(tr.Records))
		}
	})
	t.Run("no manifest", func(t *testing.T) {
		idx := strings.LastIndex(full[:len(full)-1], "\n")
		_, tn, err := ReadTolerant(strings.NewReader(full[:idx+1]))
		if err != nil {
			t.Fatalf("ReadTolerant: %v", err)
		}
		if tn.Torn || !tn.NoManifest {
			t.Fatalf("want NoManifest only, got %+v", tn)
		}
	})
	t.Run("mid-file corruption", func(t *testing.T) {
		corrupt := strings.Replace(full, `"k":"ev"`, `!garbage!`, 1)
		if _, _, err := ReadTolerant(strings.NewReader(corrupt)); err == nil {
			t.Fatal("mid-file corruption not reported as error")
		}
	})
}

// TestAnnounceDoesNotAdvanceBoundaries pins the schedule-announcement
// contract: an event announced at a far-future virtual time (a fault plan
// emitted at run start) is written to the stream but leaves the snapshot
// clock alone, so the boundaries still fire as the run actually reaches
// them. Before this distinction existed, a faulted run's upfront schedule
// consumed every boundary against a zeroed registry and the run produced
// no snapshots at all.
func TestAnnounceDoesNotAdvanceBoundaries(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("s2s_test_events_total", "test counter")
	var buf bytes.Buffer
	r := New(&buf, Options{
		Tool: "announce", Registry: reg, MetricsInterval: time.Hour,
		Clock: testClock(time.Millisecond),
	})
	var fired []time.Duration
	r.OnBoundary(func(vt time.Duration) { fired = append(fired, vt) })

	// Announce the whole "schedule" upfront, far past several boundaries.
	for i := 1; i <= 5; i++ {
		r.Announce("fault", time.Duration(i)*24*time.Hour, Attrs{ID: int64(i), S: "outage"})
	}
	if len(fired) != 0 {
		t.Fatalf("announcements fired %d boundaries, want 0", len(fired))
	}

	// Real progress still snapshots at each crossed boundary.
	c.Add(3)
	r.Advance(2 * time.Hour)
	if want := []time.Duration{time.Hour, 2 * time.Hour}; len(fired) != len(want) {
		t.Fatalf("boundaries fired at %v, want %v", fired, want)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	tr, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	snaps := 0
	for _, rec := range tr.Records {
		if rec.K == KSnap {
			snaps++
		}
	}
	if snaps == 0 {
		t.Fatal("no snapshots after real progress")
	}
	events := 0
	for _, rec := range tr.Records {
		if rec.K == KEvent && rec.Ph == "fault" {
			events++
		}
	}
	if events != 5 {
		t.Fatalf("got %d announced events in the stream, want 5", events)
	}
}
