package obs

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Logger is the single diagnostic channel of a command-line tool. It
// writes to stderr so dataset and report output on stdout stays clean for
// piping, and a quiet flag silences progress without silencing errors.
type Logger struct {
	mu     sync.Mutex
	w      io.Writer
	prefix string
	quiet  bool
}

// NewLogger returns a stderr logger. prefix is the tool name; quiet
// silences Printf (but never Errorf).
func NewLogger(prefix string, quiet bool) *Logger {
	return &Logger{w: os.Stderr, prefix: prefix, quiet: quiet}
}

// SetOutput redirects the logger (test hook).
func (l *Logger) SetOutput(w io.Writer) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.w = w
}

// Printf writes one prefixed diagnostic line, unless quiet.
func (l *Logger) Printf(format string, args ...any) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.quiet {
		return
	}
	fmt.Fprintf(l.w, "%s: %s\n", l.prefix, fmt.Sprintf(format, args...))
}

// Errorf writes one prefixed error line even when quiet.
func (l *Logger) Errorf(format string, args ...any) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	fmt.Fprintf(l.w, "%s: %s\n", l.prefix, fmt.Sprintf(format, args...))
}

// Every invokes fn every interval on its own goroutine until the returned
// stop function is called. stop waits for any in-flight fn to finish, so
// callers may stop and then immediately write a final summary without
// interleaving.
func Every(interval time.Duration, fn func()) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				fn()
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-finished
		})
	}
}
