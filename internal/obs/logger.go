package obs

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Logger is the single diagnostic channel of a command-line tool. It
// writes to stderr so dataset and report output on stdout stays clean for
// piping, and a quiet flag silences progress without silencing errors.
//
// Progress draws an in-place updating status line; every method holds one
// mutex, so progress updates and ordinary lines may race from different
// goroutines (a ticker updating progress while the main goroutine logs)
// without interleaving mid-line. When a normal line lands while a
// progress line is on screen, the progress line is cleared first and
// redrawn after, so it never shears through other output.
type Logger struct {
	mu     sync.Mutex
	w      io.Writer
	prefix string
	quiet  bool
	ansi   bool
	// progress is the currently drawn in-place line ("" when none).
	progress string
	// block is the currently drawn multi-line status block (nil when none).
	block []string
}

// NewLogger returns a stderr logger. prefix is the tool name; quiet
// silences Printf and Progress (but never Errorf). In-place progress
// rendering is enabled when stderr is a terminal.
func NewLogger(prefix string, quiet bool) *Logger {
	l := &Logger{w: os.Stderr, prefix: prefix, quiet: quiet}
	if fi, err := os.Stderr.Stat(); err == nil && fi.Mode()&os.ModeCharDevice != 0 {
		l.ansi = true
	}
	return l
}

// SetOutput redirects the logger (test hook). In-place rendering is
// turned off; use SetANSI to re-enable it for the new writer.
func (l *Logger) SetOutput(w io.Writer) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.w = w
	l.ansi = false
}

// SetANSI forces in-place progress rendering on or off, overriding the
// terminal autodetection.
func (l *Logger) SetANSI(on bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ansi = on
}

// clearLocked erases the drawn progress line or status block, if any.
func (l *Logger) clearLocked() {
	if len(l.block) > 0 {
		// Cursor up over the block, then clear to end of screen.
		fmt.Fprintf(l.w, "\x1b[%dA\r\x1b[0J", len(l.block))
		return
	}
	if l.progress != "" {
		fmt.Fprint(l.w, "\r\x1b[2K")
	}
}

// redrawLocked re-draws the progress line or status block after other
// output, if any.
func (l *Logger) redrawLocked() {
	if len(l.block) > 0 {
		for _, line := range l.block {
			fmt.Fprintln(l.w, line)
		}
		return
	}
	if l.progress != "" {
		fmt.Fprint(l.w, l.progress)
	}
}

// lineLocked writes one prefixed line, keeping any progress line intact
// around it.
func (l *Logger) lineLocked(format string, args ...any) {
	l.clearLocked()
	fmt.Fprintf(l.w, "%s: %s\n", l.prefix, fmt.Sprintf(format, args...))
	l.redrawLocked()
}

// Printf writes one prefixed diagnostic line, unless quiet.
func (l *Logger) Printf(format string, args ...any) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.quiet {
		return
	}
	l.lineLocked(format, args...)
}

// Errorf writes one prefixed error line even when quiet.
func (l *Logger) Errorf(format string, args ...any) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lineLocked(format, args...)
}

// Progress draws (or redraws, in place) the tool's status line. When
// in-place rendering is off — stderr is not a terminal — each update is
// an ordinary line instead, so piped and logged output stays readable.
// Call EndProgress before the final summary.
func (l *Logger) Progress(format string, args ...any) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.quiet {
		return
	}
	if !l.ansi {
		l.lineLocked(format, args...)
		return
	}
	l.clearLocked()
	l.progress = fmt.Sprintf("%s: %s", l.prefix, fmt.Sprintf(format, args...))
	fmt.Fprint(l.w, l.progress)
}

// EndProgress retires the in-place progress line: the last drawn state is
// finished with a newline and subsequent output resumes normally. A no-op
// when no progress line is on screen.
func (l *Logger) EndProgress() {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.progress == "" {
		return
	}
	fmt.Fprintln(l.w)
	l.progress = ""
}

// Block draws (or redraws, in place) a multi-line status block — the
// machinery behind `s2sobs watch`'s live dashboard. Each call replaces the
// previous block on screen. When in-place rendering is off the lines are
// printed once per call as ordinary output (suitable for -once snapshots;
// a follow loop should throttle itself). Interleaved Printf/Errorf lines
// land above the block, which is cleared and redrawn around them like the
// single-line progress display. Call EndBlock to retire the block, leaving
// its last state on screen.
func (l *Logger) Block(lines []string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.ansi {
		for _, line := range lines {
			fmt.Fprintln(l.w, line)
		}
		return
	}
	l.clearLocked()
	l.progress = ""
	l.block = append(l.block[:0], lines...)
	for _, line := range l.block {
		fmt.Fprintln(l.w, line)
	}
}

// EndBlock retires the status block: the last drawn state stays on screen
// and subsequent output resumes normally.
func (l *Logger) EndBlock() {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.block = nil
}

// Every invokes fn every interval on its own goroutine until the returned
// stop function is called. stop waits for any in-flight fn to finish, so
// callers may stop and then immediately write a final summary without
// interleaving.
func Every(interval time.Duration, fn func()) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				fn()
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-finished
		})
	}
}
