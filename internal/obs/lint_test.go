package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestLintCleanExposition checks that a populated registry's own export
// passes the linter: the exporter and the linter agree on the format.
func TestLintCleanExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("s2s_test_tasks_total", "tasks started").Add(42)
	r.Counter(`s2s_test_worker_busy_ns_total{worker="0"}`, "busy time").Add(100)
	r.Counter(`s2s_test_worker_busy_ns_total{worker="1"}`, "busy time").Add(200)
	r.Gauge("s2s_test_virtual_ns", "virtual clock").Set(5e9)
	h := r.Histogram("s2s_test_hops", "hop counts", []float64{1, 4, 16})
	for _, v := range []float64{0.5, 2, 3, 20} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if problems := LintPrometheus(&buf); len(problems) != 0 {
		t.Fatalf("registry export should lint clean, got:\n%s", strings.Join(problems, "\n"))
	}
}

// TestLintCatchesViolations feeds hand-broken expositions through the
// linter and checks each violation is caught by name.
func TestLintCatchesViolations(t *testing.T) {
	cases := []struct {
		name string
		text string
		want string // substring of some reported problem
	}{
		{
			name: "counter without _total",
			text: "# TYPE s2s_bad_counter counter\ns2s_bad_counter 1\n",
			want: "does not end in _total",
		},
		{
			name: "series without TYPE",
			text: "s2s_orphan_total 3\n",
			want: "no preceding # TYPE",
		},
		{
			name: "duplicate series",
			text: "# TYPE s2s_x_total counter\ns2s_x_total 1\ns2s_x_total 2\n",
			want: "duplicate series",
		},
		{
			name: "unsorted label keys",
			text: "# TYPE s2s_x_total counter\n" +
				`s2s_x_total{role="probe",az="use1"} 1` + "\n",
			want: "label keys not sorted",
		},
		{
			name: "families out of order",
			text: "# TYPE s2s_b_total counter\ns2s_b_total 1\n" +
				"# TYPE s2s_a_total counter\ns2s_a_total 1\n",
			want: "out of order",
		},
		{
			name: "family block not contiguous",
			text: "# TYPE s2s_a_total counter\ns2s_a_total 1\n" +
				"# TYPE s2s_b_total counter\ns2s_b_total 1\n" +
				`s2s_a_total{k="v"} 2` + "\n",
			want: "reappears",
		},
		{
			name: "non-numeric value",
			text: "# TYPE s2s_x_total counter\ns2s_x_total NaN-ish\n",
			want: "non-numeric value",
		},
		{
			name: "unknown TYPE kind",
			text: "# TYPE s2s_x_total summary\ns2s_x_total 1\n",
			want: "unknown TYPE kind",
		},
		{
			name: "histogram missing +Inf bucket",
			text: "# TYPE s2s_h histogram\n" +
				`s2s_h_bucket{le="1"} 2` + "\n" +
				`s2s_h_bucket{le="4"} 3` + "\n" +
				"s2s_h_sum 4\ns2s_h_count 3\n",
			want: "no +Inf bucket",
		},
		{
			name: "histogram buckets not cumulative",
			text: "# TYPE s2s_h histogram\n" +
				`s2s_h_bucket{le="1"} 5` + "\n" +
				`s2s_h_bucket{le="4"} 3` + "\n" +
				`s2s_h_bucket{le="+Inf"} 6` + "\n" +
				"s2s_h_sum 4\ns2s_h_count 6\n",
			want: "cumulative",
		},
		{
			name: "histogram le not increasing",
			text: "# TYPE s2s_h histogram\n" +
				`s2s_h_bucket{le="4"} 2` + "\n" +
				`s2s_h_bucket{le="1"} 2` + "\n" +
				`s2s_h_bucket{le="+Inf"} 2` + "\n" +
				"s2s_h_sum 4\ns2s_h_count 2\n",
			want: "not increasing",
		},
		{
			name: "histogram count disagrees with +Inf",
			text: "# TYPE s2s_h histogram\n" +
				`s2s_h_bucket{le="1"} 2` + "\n" +
				`s2s_h_bucket{le="+Inf"} 4` + "\n" +
				"s2s_h_sum 4\ns2s_h_count 9\n",
			want: "_count 9 != +Inf bucket 4",
		},
		{
			name: "malformed comment",
			text: "# NOTE whatever\n",
			want: "malformed comment",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			problems := LintPrometheus(strings.NewReader(tc.text))
			for _, p := range problems {
				if strings.Contains(p, tc.want) {
					return
				}
			}
			t.Fatalf("want a problem containing %q, got %v", tc.want, problems)
		})
	}
}
