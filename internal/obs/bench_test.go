package obs

import "testing"

// The instrumentation budget: increments must stay low-ns and zero-alloc,
// because they sit on the path cache and engine hot paths. DESIGN.md
// records the measured numbers; regressions show up as allocs/op != 0 or a
// jump in ns/op.

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkCounterIncNil(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkGaugeSet(b *testing.B) {
	g := NewRegistry().Gauge("bench", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "", DurationBuckets())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(1e-4)
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "", DurationBuckets())
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(1e-4)
		}
	})
}
