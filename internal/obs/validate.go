package obs

import (
	"fmt"
	"net"
	"strconv"
	"time"
)

// ValidateOpsAddr rejects a malformed -ops listen address before the run
// starts, so a typo fails with a usage error instead of a late listen
// failure mid-campaign. Empty means "no ops server" and is always valid.
func ValidateOpsAddr(addr string) error {
	if addr == "" {
		return nil
	}
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return fmt.Errorf("-ops %q: %v (want HOST:PORT or :PORT)", addr, err)
	}
	n, err := strconv.Atoi(port)
	if err != nil || n < 0 || n > 65535 {
		return fmt.Errorf("-ops %q: port %q must be a number in 0..65535", addr, port)
	}
	_ = host // empty host (":6060") binds all interfaces — fine
	return nil
}

// ValidateMetricsInterval rejects a zero or negative -metrics-interval,
// which would otherwise make the flight recorder's snapshot clock spin.
func ValidateMetricsInterval(d time.Duration) error {
	if d <= 0 {
		return fmt.Errorf("-metrics-interval %v: must be a positive duration", d)
	}
	return nil
}

// ValidateRunFlags bundles the shared telemetry flag checks for CLIs that
// expose both -metrics-interval and -ops.
func ValidateRunFlags(metricsInterval time.Duration, opsAddr string) error {
	if err := ValidateMetricsInterval(metricsInterval); err != nil {
		return err
	}
	return ValidateOpsAddr(opsAddr)
}
