package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles begins CPU profiling to cpuPath and arranges a heap
// profile at memPath; either path may be empty to skip that profile. It
// returns a stop function that must be called at the end of the run (a
// defer right after a successful StartProfiles is the intended shape):
// stop ends the CPU profile and, after a GC to settle live objects,
// writes the heap profile. Both the CLIs' -cpuprofile and -memprofile
// flags route through this one helper.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
	}
	stopped := false
	return func() error {
		if stopped {
			return nil
		}
		stopped = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			mf, err := os.Create(memPath)
			if err != nil {
				return err
			}
			defer mf.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(mf); err != nil {
				return fmt.Errorf("obs: heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
