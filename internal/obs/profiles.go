package obs

import (
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sync"
	"syscall"
)

// Profiles names the profile outputs of one run; empty paths skip that
// profile. It backs the CLIs' -cpuprofile/-memprofile/-blockprofile/
// -mutexprofile flags.
type Profiles struct {
	// CPU streams a CPU profile to this path for the whole run.
	CPU string
	// Mem writes a heap profile at stop, after a GC settles live objects.
	Mem string
	// Block enables the blocking profiler (rate 1: every blocking event)
	// and writes the profile at stop.
	Block string
	// Mutex enables mutex contention profiling (fraction 1) and writes
	// the profile at stop.
	Mutex string
}

// StartProfiles begins the requested profiles and returns a stop function
// that must be called at the end of the run (a defer right after a
// successful StartProfiles is the intended shape): stop ends the CPU
// profile, writes the heap/block/mutex profiles, and restores the
// runtime's profiling rates.
func StartProfiles(p Profiles) (stop func() error, err error) {
	var cpuFile *os.File
	if p.CPU != "" {
		cpuFile, err = os.Create(p.CPU)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
	}
	if p.Block != "" {
		runtime.SetBlockProfileRate(1)
	}
	if p.Mutex != "" {
		runtime.SetMutexProfileFraction(1)
	}
	stopped := false
	return func() error {
		if stopped {
			return nil
		}
		stopped = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if p.Mem != "" {
			mf, err := os.Create(p.Mem)
			if err != nil {
				return err
			}
			defer mf.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(mf); err != nil {
				return fmt.Errorf("obs: heap profile: %w", err)
			}
		}
		if p.Block != "" {
			if err := writeLookupProfile("block", p.Block); err != nil {
				return err
			}
			runtime.SetBlockProfileRate(0)
		}
		if p.Mutex != "" {
			if err := writeLookupProfile("mutex", p.Mutex); err != nil {
				return err
			}
			runtime.SetMutexProfileFraction(0)
		}
		return nil
	}, nil
}

// writeLookupProfile writes one of the runtime's named profiles to path.
func writeLookupProfile(name, path string) error {
	prof := pprof.Lookup(name)
	if prof == nil {
		return fmt.Errorf("obs: no %s profile", name)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = prof.WriteTo(f, 0)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("obs: %s profile: %w", name, err)
	}
	return nil
}

var sigquitOnce sync.Once

// DumpOnSIGQUIT installs a SIGQUIT handler that dumps every goroutine's
// stack to stderr and keeps running — unlike the Go runtime default, which
// dumps and dies. Every CLI installs it at startup, so a wedged run can
// always be inspected with `kill -QUIT <pid>` (or ^\ at a terminal)
// without losing the run. Safe to call more than once.
func DumpOnSIGQUIT() {
	sigquitOnce.Do(func() {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, syscall.SIGQUIT)
		go func() {
			for range ch {
				buf := make([]byte, 1<<20)
				for {
					n := runtime.Stack(buf, true)
					if n < len(buf) {
						buf = buf[:n]
						break
					}
					buf = make([]byte, 2*len(buf))
				}
				fmt.Fprintf(os.Stderr, "=== SIGQUIT goroutine dump (pid %d) ===\n", os.Getpid())
				os.Stderr.Write(buf)
				fmt.Fprintf(os.Stderr, "=== end goroutine dump ===\n")
			}
		}()
	})
}
