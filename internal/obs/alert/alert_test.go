package alert

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/campaign"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/serve"
	"repro/internal/simnet"
)

// fakeHealth counts transitions per rule.
type fakeHealth struct {
	mu     sync.Mutex
	sets   map[string]int
	clears map[string]int
	active map[string]string
}

func newFakeHealth() *fakeHealth {
	return &fakeHealth{sets: map[string]int{}, clears: map[string]int{}, active: map[string]string{}}
}

func (h *fakeHealth) SetReason(rule, detail string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sets[rule]++
	h.active[rule] = detail
}

func (h *fakeHealth) ClearReason(rule string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.clears[rule]++
	delete(h.active, rule)
}

// newEngine builds an engine over a fresh registry with the given rules,
// a capturing health, and a steady fake heap.
func newEngine(t *testing.T, cfg Config) (*Engine, *obs.Registry, *fakeHealth) {
	t.Helper()
	reg := obs.NewRegistry()
	h := newFakeHealth()
	e := New(Options{
		Registry: reg,
		Health:   h,
		Rules:    StandardRules(cfg),
		Interval: time.Hour,
		Heap:     func() uint64 { return 1 << 20 },
	})
	return e, reg, h
}

// TestRetryStormEpisode: a storm that persists across boundaries fires
// exactly once, and resolves exactly once when it subsides.
func TestRetryStormEpisode(t *testing.T) {
	e, reg, h := newEngine(t, Config{})
	tasks := reg.Counter(famTasks, "")
	retries := reg.Counter(famRetriesAttempt, "")

	tasks.Add(1000) // boundary 1: quiet
	e.EvalBoundary(1 * time.Hour)
	tasks.Add(1000) // boundaries 2,3: storming (0.5 retries/task)
	retries.Add(500)
	e.EvalBoundary(2 * time.Hour)
	tasks.Add(1000)
	retries.Add(500)
	e.EvalBoundary(3 * time.Hour)
	tasks.Add(1000) // boundary 4: subsided
	e.EvalBoundary(4 * time.Hour)

	if got := h.sets["retry_storm"]; got != 1 {
		t.Fatalf("retry_storm fired %d times, want exactly 1", got)
	}
	if got := h.clears["retry_storm"]; got != 1 {
		t.Fatalf("retry_storm resolved %d times, want exactly 1", got)
	}
}

// TestRoundStallEpisode: watchdog-abandoned fraction over threshold fires
// once per episode; two separate episodes fire twice.
func TestRoundStallEpisode(t *testing.T) {
	e, reg, h := newEngine(t, Config{})
	tasks := reg.Counter(famTasks, "")
	abandoned := reg.Counter(famAbandonedTasks, "")

	episode := func(stalled bool) {
		tasks.Add(1000)
		if stalled {
			abandoned.Add(200) // 20% > 10% threshold
		}
	}
	vt := time.Duration(0)
	for _, stalled := range []bool{false, true, true, false, true, false} {
		episode(stalled)
		vt += time.Hour
		e.EvalBoundary(vt)
	}
	if got := h.sets["round_stall"]; got != 2 {
		t.Fatalf("round_stall fired %d times, want 2 (two episodes)", got)
	}
	if got := h.clears["round_stall"]; got != 2 {
		t.Fatalf("round_stall resolved %d times, want 2", got)
	}
}

// TestCheckpointStaleEpisode: a run that checkpointed once, then stopped,
// fires after CheckpointStaleIntervals intervals — and resolves when
// checkpoints resume. A run that never checkpointed never fires.
func TestCheckpointStaleEpisode(t *testing.T) {
	e, reg, h := newEngine(t, Config{CheckpointStaleIntervals: 3})
	tasks := reg.Counter(famTasks, "")

	ckpt := func(vt time.Duration) {
		e.Ingest(&flight.Record{K: flight.KEvent, Ph: flight.PhCheckpoint, VT: int64(vt)})
	}
	tasks.Add(10)
	ckpt(30 * time.Minute)
	for hrs := 1; hrs <= 3; hrs++ { // stale 0.5h..2.5h, limit 3h: quiet
		e.EvalBoundary(time.Duration(hrs) * time.Hour)
	}
	if len(h.active) != 0 {
		t.Fatalf("stale fired early: %v", h.active)
	}
	e.EvalBoundary(4 * time.Hour) // stale 3.5h > 3h: fires
	if got := h.sets["checkpoint_stale"]; got != 1 {
		t.Fatalf("checkpoint_stale fired %d times, want 1", got)
	}
	e.EvalBoundary(5 * time.Hour) // still stale: no re-fire
	if got := h.sets["checkpoint_stale"]; got != 1 {
		t.Fatalf("checkpoint_stale re-fired while active (%d sets)", got)
	}
	ckpt(5*time.Hour + 30*time.Minute)
	e.EvalBoundary(6 * time.Hour) // fresh checkpoint: resolves
	if got := h.clears["checkpoint_stale"]; got != 1 {
		t.Fatalf("checkpoint_stale resolved %d times, want 1", got)
	}

	// A run with no checkpoints at all stays quiet forever.
	e2, _, h2 := newEngine(t, Config{CheckpointStaleIntervals: 3})
	for hrs := 1; hrs <= 10; hrs++ {
		e2.EvalBoundary(time.Duration(hrs) * time.Hour)
	}
	if got := h2.sets["checkpoint_stale"]; got != 0 {
		t.Fatalf("checkpoint_stale fired on a non-checkpointing run")
	}
}

// TestSinkErrorSticky: sink errors fire critically once and never resolve,
// carrying the error text from the flight event.
func TestSinkErrorSticky(t *testing.T) {
	e, reg, h := newEngine(t, Config{})
	errs := reg.Counter(famSinkWriteErrors, "")

	e.EvalBoundary(1 * time.Hour)
	errs.Inc()
	e.Ingest(&flight.Record{K: flight.KEvent, Ph: flight.PhSinkError, S: "disk full"})
	e.EvalBoundary(2 * time.Hour)
	e.EvalBoundary(3 * time.Hour)
	e.EvalBoundary(4 * time.Hour)

	if got := h.sets["sink_error"]; got != 1 {
		t.Fatalf("sink_error fired %d times, want exactly 1", got)
	}
	if got := h.clears["sink_error"]; got != 0 {
		t.Fatalf("sink_error resolved (%d clears); must be sticky", got)
	}
	if detail := h.active["sink_error"]; !strings.Contains(detail, "disk full") {
		t.Fatalf("sink_error detail %q missing event text", detail)
	}
}

// TestCacheCollapse: low hit rate fires only with enough lookups.
func TestCacheCollapse(t *testing.T) {
	e, reg, h := newEngine(t, Config{})
	hits := reg.Counter(famCacheHits, "")
	misses := reg.Counter(famCacheMisses, "")

	hits.Add(10) // tiny interval: 10% hit rate but only 100 lookups
	misses.Add(90)
	e.EvalBoundary(1 * time.Hour)
	if len(h.sets) != 0 {
		t.Fatalf("cache_collapse fired under min lookups: %v", h.sets)
	}
	hits.Add(100) // 10% over 1000 lookups: fires
	misses.Add(900)
	e.EvalBoundary(2 * time.Hour)
	if got := h.sets["cache_collapse"]; got != 1 {
		t.Fatalf("cache_collapse fired %d times, want 1", got)
	}
	hits.Add(900) // healthy again: resolves
	misses.Add(100)
	e.EvalBoundary(3 * time.Hour)
	if got := h.clears["cache_collapse"]; got != 1 {
		t.Fatalf("cache_collapse resolved %d times, want 1", got)
	}
}

// TestHeapGrowth: only a full window of monotonic growth above the
// threshold fires; a single dip resets the episode.
func TestHeapGrowth(t *testing.T) {
	reg := obs.NewRegistry()
	h := newFakeHealth()
	heap := uint64(0)
	e := New(Options{
		Registry: reg,
		Health:   h,
		Rules:    StandardRules(Config{HeapWindow: 3, HeapMinGrowth: 300}),
		Interval: time.Hour,
		Heap:     func() uint64 { return heap },
	})
	vt := time.Duration(0)
	step := func(v uint64) {
		heap = v
		vt += time.Hour
		e.EvalBoundary(vt)
	}
	step(100)
	step(200)
	step(150) // dip: window resets
	step(250)
	step(350)
	if len(h.sets) != 0 {
		t.Fatalf("heap_growth fired without a full monotonic window: %v", h.sets)
	}
	step(460) // 4th consecutive growth point: 150→460 = 310 >= 300
	if got := h.sets["heap_growth"]; got != 1 {
		t.Fatalf("heap_growth fired %d times, want 1", got)
	}
	step(400) // dip: resolves
	if got := h.clears["heap_growth"]; got != 1 {
		t.Fatalf("heap_growth resolved %d times, want 1", got)
	}
}

// TestAttachedEngineEmitsAlertEvents: wired to a real recorder, a firing
// rule lands as a typed alert event in the flight stream and resolves with
// n=0 — and the engine's own alert events are not re-ingested.
func TestAttachedEngineEmitsAlertEvents(t *testing.T) {
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	rec := flight.New(&buf, flight.Options{
		Tool: "alert-test", Registry: reg, MetricsInterval: time.Hour,
	})
	h := newFakeHealth()
	e := New(Options{
		Registry: reg,
		Health:   h,
		Rules:    StandardRules(Config{}),
		Heap:     func() uint64 { return 1 << 20 },
	})
	e.Attach(rec)

	tasks := reg.Counter(famTasks, "")
	retries := reg.Counter(famRetriesAttempt, "")
	tasks.Add(100)
	retries.Add(90)
	rec.Advance(1 * time.Hour) // boundary 1: fires
	tasks.Add(100)
	rec.Advance(2 * time.Hour) // boundary 2: resolves
	rec.Close()

	out := buf.String()
	firing := strings.Count(out, `"ph":"alert"`)
	if firing != 2 {
		t.Fatalf("want 2 alert events (fire + resolve), got %d\n%s", firing, out)
	}
	if !strings.Contains(out, `"s":"retry_storm"`) {
		t.Fatalf("alert event missing rule name:\n%s", out)
	}
	idx1 := strings.Index(out, `"ph":"alert"`)
	idx2 := strings.LastIndex(out, `"ph":"alert"`)
	line1 := out[idx1 : strings.Index(out[idx1:], "\n")+idx1]
	line2 := out[idx2 : strings.Index(out[idx2:], "\n")+idx2]
	if !strings.Contains(line1, `"n":1`) {
		t.Fatalf("first alert event is not a firing (n=1): %s", line1)
	}
	if strings.Contains(line2, `"n":1`) {
		t.Fatalf("second alert event is not a resolve (n=0): %s", line2)
	}
	if got := h.sets["retry_storm"]; got != 1 {
		t.Fatalf("retry_storm fired %d times through recorder, want 1", got)
	}
}

// TestViewFlapRule: repeated replication view changes within one interval
// fire the flap alert; the steady trickle of a single failover does not.
func TestViewFlapRule(t *testing.T) {
	e, reg, h := newEngine(t, Config{})
	changes := reg.Counter(famViewChanges, "")

	changes.Add(1) // one failover this interval: fine
	e.EvalBoundary(1 * time.Hour)
	if len(h.active) != 0 {
		t.Fatalf("view_flap fired on a single view change: %v", h.active)
	}
	changes.Add(4) // churning
	e.EvalBoundary(2 * time.Hour)
	if got := h.sets["view_flap"]; got != 1 {
		t.Fatalf("view_flap fired %d times, want 1", got)
	}
	e.EvalBoundary(3 * time.Hour) // quiet again: resolves
	if got := h.clears["view_flap"]; got != 1 {
		t.Fatalf("view_flap resolved %d times, want 1", got)
	}
}

// TestServeCacheCollapseRule: a hit rate under the floor fires only once
// the lookup volume is meaningful.
func TestServeCacheCollapseRule(t *testing.T) {
	e, reg, h := newEngine(t, Config{})
	hits := reg.Counter(famServeCacheHits, "")
	misses := reg.Counter(famServeCacheMiss, "")

	misses.Add(50) // all misses, but under the volume gate: quiet
	e.EvalBoundary(1 * time.Hour)
	if len(h.active) != 0 {
		t.Fatalf("collapse fired under the lookup gate: %v", h.active)
	}
	hits.Add(10) // 10/510 ≈ 2% hit rate over 500+ lookups: fires
	misses.Add(500)
	e.EvalBoundary(2 * time.Hour)
	if got := h.sets["serve_cache_collapse"]; got != 1 {
		t.Fatalf("serve_cache_collapse fired %d times, want 1", got)
	}
	hits.Add(400) // healthy again
	misses.Add(100)
	e.EvalBoundary(3 * time.Hour)
	if got := h.clears["serve_cache_collapse"]; got != 1 {
		t.Fatalf("serve_cache_collapse resolved %d times, want 1", got)
	}
}

// TestLoadShedRule: an interval's worth of admission-control refusals
// fires once and resolves when the overload subsides.
func TestLoadShedRule(t *testing.T) {
	e, reg, h := newEngine(t, Config{})
	shed := reg.Counter(famServeShed, "")

	shed.Add(5) // under the threshold: quiet
	e.EvalBoundary(1 * time.Hour)
	if len(h.active) != 0 {
		t.Fatalf("load_shed fired under threshold: %v", h.active)
	}
	shed.Add(40) // overload: fires
	e.EvalBoundary(2 * time.Hour)
	if got := h.sets["load_shed"]; got != 1 {
		t.Fatalf("load_shed fired %d times, want 1", got)
	}
	e.EvalBoundary(3 * time.Hour) // no sheds this interval: resolves
	if got := h.clears["load_shed"]; got != 1 {
		t.Fatalf("load_shed resolved %d times, want 1", got)
	}
}

// TestPartitionSuspectRule: sustained view-service ping failures fire;
// a single dropped ping does not.
func TestPartitionSuspectRule(t *testing.T) {
	e, reg, h := newEngine(t, Config{})
	fails := reg.Counter(famServePingFails, "")

	fails.Add(1) // one lost ping: fine
	e.EvalBoundary(1 * time.Hour)
	if len(h.active) != 0 {
		t.Fatalf("partition_suspect fired on one lost ping: %v", h.active)
	}
	fails.Add(12) // the link is down
	e.EvalBoundary(2 * time.Hour)
	if got := h.sets["partition_suspect"]; got != 1 {
		t.Fatalf("partition_suspect fired %d times, want 1", got)
	}
	e.EvalBoundary(3 * time.Hour) // healed: resolves
	if got := h.clears["partition_suspect"]; got != 1 {
		t.Fatalf("partition_suspect resolved %d times, want 1", got)
	}
}

// TestStandardRuleFamilies pins the metric families the rules read to the
// constants the instrumented packages actually export, so a rename there
// breaks this test instead of silently muting an alert.
func TestStandardRuleFamilies(t *testing.T) {
	pairs := map[string]string{
		famTasks:           campaign.MetricTasks,
		famAbandonedTasks:  campaign.MetricAbandonedTasks,
		famRetriesAttempt:  campaign.MetricRetriesAttempted,
		famQuarantineAdds:  campaign.MetricQuarantineAdds,
		famSinkWriteErrors: campaign.MetricSinkWriteErrors,
		famCacheHits:       simnet.MetricCacheHits,
		famCacheMisses:     simnet.MetricCacheMisses,
		famFindings:        analysis.MetricFindings,
		famServeCacheHits:  serve.MetricCacheHits,
		famServeCacheMiss:  serve.MetricCacheMisses,
		famViewChanges:     serve.MetricViewChanges,
		famServeShed:       serve.MetricShed,
		famServePingFails:  serve.MetricPingFailures,
	}
	for local, canonical := range pairs {
		if local != canonical {
			t.Errorf("alert family %q != instrumented constant %q", local, canonical)
		}
	}
}
