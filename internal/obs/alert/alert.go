// Package alert is the live alerting layer: a small rule engine that
// watches a run through the flight recorder's observation taps and flags
// operational pathologies — stalled rounds, retry storms, sink failures,
// stale checkpoints, cache collapse, runaway heap — while the run is still
// executing.
//
// The engine evaluates its rules at every -metrics-interval boundary of
// the virtual clock (via flight.Recorder.OnBoundary), over a Sample
// holding the registry snapshot now and at the previous boundary plus the
// flight events seen in between. Each rule is edge-triggered: it fires
// exactly once when its condition becomes true (one flight event, one log
// line, one health degradation reason) and once more when it resolves —
// never per-boundary spam while a condition persists.
//
// Alerting is observation-only, like everything else in internal/obs: the
// engine reads snapshots and emits alert events into the flight record,
// but nothing in the simulation reads alert state, so a run with alerting
// attached emits a byte-identical dataset record stream to one without.
// Rules marked WallClock depend on wall time or process memory — their
// firing pattern may differ between machines or runs, which is fine for
// the flight record (wall timestamps differ anyway) and irrelevant to the
// dataset stream.
package alert

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flight"
)

// Severity ranks an alert. The numeric values appear in the flight
// record's id field.
type Severity int64

const (
	Warn Severity = 0
	Crit Severity = 1
)

func (s Severity) String() string {
	if s == Crit {
		return "crit"
	}
	return "warn"
}

// Health receives degradation state for a /healthz-style endpoint.
// Implemented by ops.Health; a nil Health is ignored.
type Health interface {
	// SetReason marks the process degraded for the given rule.
	SetReason(rule, detail string)
	// ClearReason removes the rule's degradation.
	ClearReason(rule string)
}

// Sample is the window a rule evaluates: the state of the world at one
// metrics-interval boundary, relative to the previous one.
type Sample struct {
	// VT is the virtual-clock boundary being evaluated.
	VT time.Duration
	// Interval is the metrics interval (boundary spacing).
	Interval time.Duration
	// Cur and Prev are the registry snapshots at this boundary and the
	// previous one. Prev is nil at the first boundary.
	Cur, Prev *obs.Snapshot
	// Events are the watched flight events recorded since the previous
	// boundary, in emission order.
	Events []flight.Record
	// Wall is wall time since the engine started (WallClock rules only).
	Wall time.Duration
	// HeapBytes is the live heap at this boundary (WallClock rules only).
	HeapBytes uint64
}

// Counter returns the cumulative sum of a counter family in the current
// snapshot (labels aggregated).
func (s *Sample) Counter(family string) int64 {
	return s.Cur.SumFamily(family)
}

// DeltaCounter returns the growth of a counter family since the previous
// boundary (the whole cumulative value at the first boundary).
func (s *Sample) DeltaCounter(family string) int64 {
	d := s.Cur.SumFamily(family)
	if s.Prev != nil {
		d -= s.Prev.SumFamily(family)
	}
	return d
}

// Rule is one alert condition. Check returns whether the condition holds
// for the sample, plus a human-readable detail used when the state
// changes. Check functions may be stateful closures (the engine serializes
// all calls); they must not mutate the sample.
type Rule struct {
	Name     string
	Severity Severity
	// WallClock marks rules whose signal depends on wall time or process
	// state rather than the virtual-time-deterministic counters; their
	// firings can differ across machines without breaking determinism.
	WallClock bool
	Check     func(s *Sample) (detail string, firing bool)
}

// ruleState pairs a rule with its edge-trigger latch.
type ruleState struct {
	Rule
	active bool
}

// Options configure an Engine.
type Options struct {
	// Registry is snapshotted at every boundary. Required.
	Registry *obs.Registry
	// Logger, when set, receives one stderr line per alert transition.
	Logger *obs.Logger
	// Health, when set, receives degradation reasons.
	Health Health
	// Rules defaults to StandardRules(DefaultConfig()).
	Rules []Rule
	// Interval is the boundary spacing, for staleness windows. Attach
	// overwrites it with the recorder's snapshot interval when set there.
	Interval time.Duration
	// Clock overrides time.Now (test hook).
	Clock func() time.Time
	// Heap overrides the live-heap reading (test hook).
	Heap func() uint64
}

// Engine evaluates alert rules at metric-snapshot boundaries. All methods
// are safe for concurrent use and no-ops on a nil receiver.
type Engine struct {
	mu     sync.Mutex
	reg    *obs.Registry
	rec    *flight.Recorder
	log    *obs.Logger
	health Health
	rules  []*ruleState
	prev   *obs.Snapshot
	events []flight.Record
	iv     time.Duration
	now    func() time.Time
	start  time.Time
	heapFn func() uint64
}

// New builds an Engine. It does nothing until attached to a recorder (or
// driven directly via Ingest/EvalBoundary in tests).
func New(o Options) *Engine {
	now := o.Clock
	if now == nil {
		now = time.Now
	}
	heap := o.Heap
	if heap == nil {
		heap = liveHeap
	}
	rules := o.Rules
	if rules == nil {
		rules = StandardRules(DefaultConfig())
	}
	e := &Engine{
		reg:    o.Registry,
		log:    o.Logger,
		health: o.Health,
		iv:     o.Interval,
		now:    now,
		heapFn: heap,
	}
	e.start = now()
	for i := range rules {
		e.rules = append(e.rules, &ruleState{Rule: rules[i]})
	}
	return e
}

func liveHeap() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// watchedPhases are the event phases buffered between boundaries for rules
// to inspect. Everything else (probe batches, cache sweeps, alerts
// themselves) is dropped at the tap, bounding the buffer.
var watchedPhases = map[string]bool{
	flight.PhCheckpoint: true,
	flight.PhResume:     true,
	flight.PhSinkError:  true,
	flight.PhDegraded:   true,
}

// Attach wires the engine to a recorder: watched events feed Ingest, and
// every metrics-interval boundary triggers an evaluation whose alert
// transitions are emitted back into the same recorder. Attach once, before
// the run starts.
func (e *Engine) Attach(rec *flight.Recorder) {
	if e == nil || rec == nil {
		return
	}
	e.mu.Lock()
	e.rec = rec
	if iv := rec.Interval(); iv > 0 {
		e.iv = iv
	}
	e.mu.Unlock()
	rec.Observe(func(r *flight.Record) {
		if r.K == flight.KEvent && watchedPhases[r.Ph] {
			e.Ingest(r)
		}
	})
	rec.OnBoundary(e.EvalBoundary)
}

// Ingest buffers one flight event for the next evaluation.
func (e *Engine) Ingest(r *flight.Record) {
	if e == nil || r == nil {
		return
	}
	e.mu.Lock()
	e.events = append(e.events, *r)
	e.mu.Unlock()
}

// transition is one rule edge (fired or resolved) produced by an
// evaluation, notified outside the engine lock.
type transition struct {
	rule   Rule
	detail string
	firing bool
}

// EvalBoundary evaluates every rule against the interval ending at vt.
// The recorder calls it from its boundary tap; tests call it directly.
func (e *Engine) EvalBoundary(vt time.Duration) {
	if e == nil || e.reg == nil {
		return
	}
	e.mu.Lock()
	cur := e.reg.Snapshot()
	iv := e.iv
	if iv <= 0 {
		iv = vt // direct-driven (tests): treat the whole span as one interval
	}
	s := &Sample{
		VT:        vt,
		Interval:  iv,
		Cur:       cur,
		Prev:      e.prev,
		Events:    e.events,
		Wall:      e.now().Sub(e.start),
		HeapBytes: e.heapFn(),
	}
	e.prev = cur
	e.events = nil
	var trans []transition
	for _, rs := range e.rules {
		detail, firing := rs.Check(s)
		if firing != rs.active {
			rs.active = firing
			trans = append(trans, transition{rule: rs.Rule, detail: detail, firing: firing})
		}
	}
	rec := e.rec
	e.mu.Unlock()
	// Side effects run unlocked: emitting into the recorder re-enters its
	// dispatch loop, which may deliver unrelated pending events back into
	// Ingest.
	for _, tr := range trans {
		e.notify(rec, vt, tr)
	}
}

func (e *Engine) notify(rec *flight.Recorder, vt time.Duration, tr transition) {
	firing := int64(0)
	if tr.firing {
		firing = 1
	}
	rec.Event(flight.PhAlert, vt, flight.Attrs{
		S: tr.rule.Name, ID: int64(tr.rule.Severity), N: firing,
	})
	if tr.firing {
		if tr.rule.Severity >= Crit {
			e.log.Errorf("ALERT [%s] %s: %s", tr.rule.Severity, tr.rule.Name, tr.detail)
		} else {
			e.log.Printf("alert [%s] %s: %s", tr.rule.Severity, tr.rule.Name, tr.detail)
		}
		if e.health != nil {
			e.health.SetReason(tr.rule.Name, tr.detail)
		}
	} else {
		e.log.Printf("alert resolved: %s", tr.rule.Name)
		if e.health != nil {
			e.health.ClearReason(tr.rule.Name)
		}
	}
}

// Active returns the names of currently-firing rules, sorted by rule
// registration order.
func (e *Engine) Active() []string {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []string
	for _, rs := range e.rules {
		if rs.active {
			out = append(out, rs.Name)
		}
	}
	return out
}
