package alert

import (
	"fmt"
	"time"

	"repro/internal/obs/flight"
)

// Metric families the standard rules read. Kept as local constants (rather
// than importing internal/campaign and internal/simnet) so the alert layer
// stays leaf-level: the families are part of the exposition contract
// pinned by the metrics-smoke CI step and TestStandardRuleFamilies.
const (
	famTasks           = "s2s_engine_tasks_total"
	famAbandonedTasks  = "s2s_campaign_abandoned_tasks_total"
	famRetriesAttempt  = "s2s_campaign_retries_attempted_total"
	famQuarantineAdds  = "s2s_campaign_quarantine_adds_total"
	famSinkWriteErrors = "s2s_sink_write_errors_total"
	famCacheHits       = "s2s_simnet_path_cache_hits_total"
	famCacheMisses     = "s2s_simnet_path_cache_misses_total"
	famFindings        = "s2s_analysis_findings_total"
	famServeCacheHits  = "s2s_serve_cache_hits_total"
	famServeCacheMiss  = "s2s_serve_cache_misses_total"
	famViewChanges     = "s2s_serve_view_changes_total"
	famServeShed       = "s2s_serve_shed_total"
	famServePingFails  = "s2s_serve_ping_failures_total"
)

// Config holds the thresholds of the standard rules.
type Config struct {
	// StallFraction: round_stall fires when the watchdog abandoned more
	// than this fraction of the interval's tasks.
	StallFraction float64
	// RetryFraction: retry_storm fires when retries attempted per task
	// executed in the interval exceeds this.
	RetryFraction float64
	// QuarantineFraction: quarantine_storm fires when pairs quarantined
	// per task executed in the interval exceeds this.
	QuarantineFraction float64
	// CheckpointStaleIntervals: checkpoint_stale fires when a
	// checkpointing run goes this many metric intervals without one.
	CheckpointStaleIntervals int
	// CacheHitFloor and CacheMinLookups: cache_collapse fires when the
	// interval's path-cache hit rate drops below the floor with at least
	// CacheMinLookups lookups (quiet intervals can't collapse).
	CacheHitFloor   float64
	CacheMinLookups int64
	// HeapWindow and HeapMinGrowth: heap_growth fires when the live heap
	// grew monotonically across HeapWindow consecutive intervals by at
	// least HeapMinGrowth bytes in total.
	HeapWindow    int
	HeapMinGrowth uint64
	// FindingFraction: finding_surge fires when the streaming-analysis
	// operators emit more findings per executed task than this in one
	// interval — the observed network is churning far above baseline.
	FindingFraction float64
	// ViewFlapChanges: view_flap fires when the replication view service
	// moved through this many view changes in one interval — replicas are
	// flapping between alive and dead instead of settling.
	ViewFlapChanges int64
	// ServeCacheHitFloor and ServeCacheMinLookups: serve_cache_collapse
	// fires when the query service's hot-pair cache hit rate drops below
	// the floor with at least that many lookups in the interval.
	ServeCacheHitFloor   float64
	ServeCacheMinLookups int64
	// ShedMin: load_shed fires when admission control shed at least this
	// many queries in one interval.
	ShedMin int64
	// PingFailMin: partition_suspect fires when at least this many
	// view-service pings failed in one interval — the replica↔viewservice
	// link is partitioned or the view service is down.
	PingFailMin int64
}

// DefaultConfig returns the standard thresholds.
func DefaultConfig() Config {
	return Config{
		StallFraction:            0.10,
		RetryFraction:            0.25,
		QuarantineFraction:       0.05,
		CheckpointStaleIntervals: 3,
		CacheHitFloor:            0.50,
		CacheMinLookups:          1000,
		HeapWindow:               6,
		HeapMinGrowth:            512 << 20,
		FindingFraction:          0.10,
		ViewFlapChanges:          3,
		ServeCacheHitFloor:       0.20,
		ServeCacheMinLookups:     200,
		ShedMin:                  10,
		PingFailMin:              3,
	}
}

// fill replaces zero fields with defaults, so callers can override just
// the thresholds they care about.
func (c Config) fill() Config {
	d := DefaultConfig()
	if c.StallFraction == 0 {
		c.StallFraction = d.StallFraction
	}
	if c.RetryFraction == 0 {
		c.RetryFraction = d.RetryFraction
	}
	if c.QuarantineFraction == 0 {
		c.QuarantineFraction = d.QuarantineFraction
	}
	if c.CheckpointStaleIntervals == 0 {
		c.CheckpointStaleIntervals = d.CheckpointStaleIntervals
	}
	if c.CacheHitFloor == 0 {
		c.CacheHitFloor = d.CacheHitFloor
	}
	if c.CacheMinLookups == 0 {
		c.CacheMinLookups = d.CacheMinLookups
	}
	if c.HeapWindow == 0 {
		c.HeapWindow = d.HeapWindow
	}
	if c.HeapMinGrowth == 0 {
		c.HeapMinGrowth = d.HeapMinGrowth
	}
	if c.FindingFraction == 0 {
		c.FindingFraction = d.FindingFraction
	}
	if c.ViewFlapChanges == 0 {
		c.ViewFlapChanges = d.ViewFlapChanges
	}
	if c.ServeCacheHitFloor == 0 {
		c.ServeCacheHitFloor = d.ServeCacheHitFloor
	}
	if c.ServeCacheMinLookups == 0 {
		c.ServeCacheMinLookups = d.ServeCacheMinLookups
	}
	if c.ShedMin == 0 {
		c.ShedMin = d.ShedMin
	}
	if c.PingFailMin == 0 {
		c.PingFailMin = d.PingFailMin
	}
	return c
}

// StandardRules builds the standard rules with the given thresholds. The
// returned rules carry private state (edge windows, last-checkpoint
// tracking) and must be given to exactly one Engine.
func StandardRules(cfg Config) []Rule {
	cfg = cfg.fill()
	return []Rule{
		roundStall(cfg),
		retryStorm(cfg),
		quarantineStorm(cfg),
		sinkError(),
		checkpointStale(cfg),
		cacheCollapse(cfg),
		heapGrowth(cfg),
		findingSurge(cfg),
		viewFlap(cfg),
		serveCacheCollapse(cfg),
		loadShed(cfg),
		partitionSuspect(cfg),
	}
}

// roundStall: the wall-clock watchdog abandoned a significant fraction of
// the interval's tasks — workers are wedged or starved.
func roundStall(cfg Config) Rule {
	return Rule{
		Name: "round_stall", Severity: Warn, WallClock: true,
		Check: func(s *Sample) (string, bool) {
			tasks := s.DeltaCounter(famTasks)
			if tasks <= 0 {
				return "", false
			}
			abandoned := s.DeltaCounter(famAbandonedTasks)
			f := float64(abandoned) / float64(tasks)
			return fmt.Sprintf("watchdog abandoned %d/%d tasks (%.0f%%) this interval",
				abandoned, tasks, f*100), f > cfg.StallFraction
		},
	}
}

// retryStorm: retries per executed task spiked — widespread transient
// failure (fault wave, overload) rather than the odd flaky pair.
func retryStorm(cfg Config) Rule {
	return Rule{
		Name: "retry_storm", Severity: Warn,
		Check: func(s *Sample) (string, bool) {
			tasks := s.DeltaCounter(famTasks)
			if tasks <= 0 {
				return "", false
			}
			retries := s.DeltaCounter(famRetriesAttempt)
			f := float64(retries) / float64(tasks)
			return fmt.Sprintf("%.2f retries per task (%d retries / %d tasks) this interval",
				f, retries, tasks), f > cfg.RetryFraction
		},
	}
}

// quarantineStorm: pairs entering quarantine per executed task spiked —
// persistent failures are spreading faster than re-probes release them.
func quarantineStorm(cfg Config) Rule {
	return Rule{
		Name: "quarantine_storm", Severity: Warn,
		Check: func(s *Sample) (string, bool) {
			tasks := s.DeltaCounter(famTasks)
			if tasks <= 0 {
				return "", false
			}
			adds := s.DeltaCounter(famQuarantineAdds)
			f := float64(adds) / float64(tasks)
			return fmt.Sprintf("%d pairs quarantined against %d tasks this interval",
				adds, tasks), f > cfg.QuarantineFraction
		},
	}
}

// sinkError: the dataset sink reported a write error. Critical and sticky —
// the error counter never decreases, so this fires once and stays active.
func sinkError() Rule {
	var lastText string
	return Rule{
		Name: "sink_error", Severity: Crit,
		Check: func(s *Sample) (string, bool) {
			for _, ev := range s.Events {
				if ev.Ph == flight.PhSinkError && ev.S != "" {
					lastText = ev.S
				}
			}
			n := s.Counter(famSinkWriteErrors)
			if n == 0 {
				return "", false
			}
			detail := fmt.Sprintf("%d dataset sink write errors", n)
			if lastText != "" {
				detail += ": " + lastText
			}
			return detail, true
		},
	}
}

// checkpointStale: a run that has written (or resumed from) a checkpoint
// stopped writing them — a crash now would replay much more than the
// configured interval.
func checkpointStale(cfg Config) Rule {
	last := time.Duration(-1)
	return Rule{
		Name: "checkpoint_stale", Severity: Warn,
		Check: func(s *Sample) (string, bool) {
			for _, ev := range s.Events {
				if ev.Ph == flight.PhCheckpoint || ev.Ph == flight.PhResume {
					last = time.Duration(ev.VT)
				}
			}
			if last < 0 {
				return "", false // never checkpointed: not a checkpointing run
			}
			stale := s.VT - last
			limit := time.Duration(cfg.CheckpointStaleIntervals) * s.Interval
			return fmt.Sprintf("no checkpoint for %s of virtual time (limit %s)",
				stale, limit), stale > limit
		},
	}
}

// cacheCollapse: the simnet path cache stopped hitting — epoch churn is
// outpacing reuse or the cache bound is too tight for the mesh.
func cacheCollapse(cfg Config) Rule {
	return Rule{
		Name: "cache_collapse", Severity: Warn,
		Check: func(s *Sample) (string, bool) {
			hits := s.DeltaCounter(famCacheHits)
			misses := s.DeltaCounter(famCacheMisses)
			total := hits + misses
			if total < cfg.CacheMinLookups {
				return "", false
			}
			rate := float64(hits) / float64(total)
			return fmt.Sprintf("path-cache hit rate %.0f%% over %d lookups this interval",
				rate*100, total), rate < cfg.CacheHitFloor
		},
	}
}

// findingSurge: the streaming-analysis operators are emitting findings at
// a rate far above baseline — the observed network is churning (or a
// detector threshold is badly tuned). Inert without `-analyze`: the
// findings family never moves, so the rule never fires.
func findingSurge(cfg Config) Rule {
	return Rule{
		Name: "finding_surge", Severity: Warn,
		Check: func(s *Sample) (string, bool) {
			tasks := s.DeltaCounter(famTasks)
			if tasks <= 0 {
				return "", false
			}
			findings := s.DeltaCounter(famFindings)
			f := float64(findings) / float64(tasks)
			return fmt.Sprintf("%d analysis findings against %d tasks this interval",
				findings, tasks), f > cfg.FindingFraction
		},
	}
}

// viewFlap: the replication view service is cycling through views — a
// replica (or the network between it and the view service) is flapping,
// so every few intervals availability pays another failover. Inert
// outside the query service: the view-change family never moves. Wall
// clock, like everything in the serving path.
func viewFlap(cfg Config) Rule {
	return Rule{
		Name: "view_flap", Severity: Warn, WallClock: true,
		Check: func(s *Sample) (string, bool) {
			changes := s.DeltaCounter(famViewChanges)
			return fmt.Sprintf("%d replication view changes this interval (limit %d)",
				changes, cfg.ViewFlapChanges), changes >= cfg.ViewFlapChanges
		},
	}
}

// serveCacheCollapse: the query service's hot-pair cache stopped hitting —
// the working set outgrew the cache bound (or the request population
// stopped being zipfian) and every query is paying a store read.
func serveCacheCollapse(cfg Config) Rule {
	return Rule{
		Name: "serve_cache_collapse", Severity: Warn, WallClock: true,
		Check: func(s *Sample) (string, bool) {
			hits := s.DeltaCounter(famServeCacheHits)
			misses := s.DeltaCounter(famServeCacheMiss)
			total := hits + misses
			if total < cfg.ServeCacheMinLookups {
				return "", false
			}
			rate := float64(hits) / float64(total)
			return fmt.Sprintf("hot-pair cache hit rate %.0f%% over %d lookups this interval",
				rate*100, total), rate < cfg.ServeCacheHitFloor
		},
	}
}

// loadShed: the query service's admission control is refusing work —
// the offered load exceeds what MaxInFlight queries can absorb, and
// clients are seeing 503s. Degradation is working as designed, but the
// operator should know it is happening. Inert outside the query
// service. Wall clock, like everything in the serving path.
func loadShed(cfg Config) Rule {
	return Rule{
		Name: "load_shed", Severity: Warn, WallClock: true,
		Check: func(s *Sample) (string, bool) {
			shed := s.DeltaCounter(famServeShed)
			return fmt.Sprintf("admission control shed %d queries this interval (limit %d)",
				shed, cfg.ShedMin), shed >= cfg.ShedMin
		},
	}
}

// partitionSuspect: a replica's pings to the view service keep failing —
// either the view service is down or the replica↔viewservice link is
// partitioned. Either way the replica is flying blind on a stale view
// and a failover may already be in progress around it.
func partitionSuspect(cfg Config) Rule {
	return Rule{
		Name: "partition_suspect", Severity: Warn, WallClock: true,
		Check: func(s *Sample) (string, bool) {
			fails := s.DeltaCounter(famServePingFails)
			return fmt.Sprintf("%d view-service pings failed this interval (limit %d)",
				fails, cfg.PingFailMin), fails >= cfg.PingFailMin
		},
	}
}

// heapGrowth: the live heap grew monotonically across the whole window —
// the signature of a leak rather than a working-set plateau.
func heapGrowth(cfg Config) Rule {
	var window []uint64
	return Rule{
		Name: "heap_growth", Severity: Warn, WallClock: true,
		Check: func(s *Sample) (string, bool) {
			window = append(window, s.HeapBytes)
			if len(window) > cfg.HeapWindow+1 {
				window = window[1:]
			}
			if len(window) < cfg.HeapWindow+1 {
				return "", false
			}
			for i := 1; i < len(window); i++ {
				if window[i] <= window[i-1] {
					return "", false
				}
			}
			growth := window[len(window)-1] - window[0]
			return fmt.Sprintf("heap grew %d MiB over %d consecutive intervals",
				growth>>20, cfg.HeapWindow), growth >= cfg.HeapMinGrowth
		},
	}
}
