package campaign

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/netip"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/store"
	"repro/internal/trace"
)

// BenchmarkLongTermCampaign measures the long-term campaign end to end at
// several worker counts. On a multi-core host the 8-worker variant should
// run well over 2x faster than the sequential one while producing the
// byte-identical dataset (see TestLongTermBitIdentical).
// benchCorpus synthesizes a campaign-shaped record stream: rounds of
// monotone timestamps, both protocols of each directed pair adjacent.
func benchCorpus(servers, days, roundsPerDay int) []any {
	rng := rand.New(rand.NewSource(7))
	addr := func(id int) netip.Addr {
		return netip.AddrFrom4([4]byte{10, byte(id >> 8), byte(id), 1})
	}
	var out []any
	interval := 24 * time.Hour / time.Duration(roundsPerDay)
	for r := 0; r < days*roundsPerDay; r++ {
		at := time.Duration(r) * interval
		for s := 0; s < servers; s++ {
			for d := 0; d < servers; d++ {
				if s == d {
					continue
				}
				for _, v6 := range []bool{false, true} {
					tr := &trace.Traceroute{
						SrcID: s, DstID: d, V6: v6,
						Src: addr(s), Dst: addr(d),
						At: at, Complete: true, Paris: true,
						RTT: time.Duration(rng.Intn(150)) * time.Millisecond,
					}
					for h := 0; h < 8; h++ {
						tr.Hops = append(tr.Hops, trace.Hop{
							Addr: addr(2000 + rng.Intn(400)),
							RTT:  time.Duration(rng.Intn(80)) * time.Millisecond,
						})
					}
					out = append(out, tr)
				}
			}
		}
	}
	return out
}

type countConsumer struct{ n int }

func (c *countConsumer) OnTraceroute(*trace.Traceroute) { c.n++ }
func (c *countConsumer) OnPing(*trace.Ping)             { c.n++ }

// BenchmarkStoreScan compares a full store scan at several worker counts
// against the single-threaded flat-file read of the same dataset (the
// compatibility baseline). The workers=8 variant should beat the flat
// read by well over 3x on a multi-core host: the flat read decodes one
// record at a time on one core, the store decodes whole shards in
// parallel and only restores delivery order.
func BenchmarkStoreScan(b *testing.B) {
	corpus := benchCorpus(10, 8, 8)
	dir := b.TempDir()
	flat := filepath.Join(dir, "dataset.bin")
	f, err := os.Create(flat)
	if err != nil {
		b.Fatal(err)
	}
	bw := trace.NewBinaryWriter(f)
	sw, err := store.Create(filepath.Join(dir, "dataset.store"), store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, rec := range corpus {
		tr := rec.(*trace.Traceroute)
		if err := bw.WriteTraceroute(tr); err != nil {
			b.Fatal(err)
		}
		if err := sw.WriteTraceroute(tr); err != nil {
			b.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		b.Fatal(err)
	}

	b.Run("flat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f, err := os.Open(flat)
			if err != nil {
				b.Fatal(err)
			}
			r := trace.NewBinaryReader(f)
			n := 0
			for {
				_, err := r.Next()
				if errors.Is(err, io.EOF) {
					break
				}
				if err != nil {
					b.Fatal(err)
				}
				n++
			}
			f.Close()
			if n != len(corpus) {
				b.Fatalf("read %d records, want %d", n, len(corpus))
			}
		}
	})
	// Open once: footer reads are store-open cost, not scan cost, and the
	// opened store is safe for repeated reads.
	s, err := store.Open(filepath.Join(dir, "dataset.store"))
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var c countConsumer
				if err := s.Scan(w, &c); err != nil {
					b.Fatal(err)
				}
				if c.n != len(corpus) {
					b.Fatalf("scanned %d records, want %d", c.n, len(corpus))
				}
			}
		})
	}
}

func BenchmarkLongTermCampaign(b *testing.B) {
	for _, w := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			p, platform := newProber(b, 41, 10, 80)
			servers := SelectMesh(platform, 10, 41)
			cfg := LongTermConfig{
				Servers:       servers,
				Duration:      5 * 24 * time.Hour,
				Interval:      3 * time.Hour,
				ParisSwitchAt: 60 * time.Hour,
				Workers:       w,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := LongTerm(p, cfg, Funcs{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
