package campaign

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkLongTermCampaign measures the long-term campaign end to end at
// several worker counts. On a multi-core host the 8-worker variant should
// run well over 2x faster than the sequential one while producing the
// byte-identical dataset (see TestLongTermBitIdentical).
func BenchmarkLongTermCampaign(b *testing.B) {
	for _, w := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			p, platform := newProber(b, 41, 10, 80)
			servers := SelectMesh(platform, 10, 41)
			cfg := LongTermConfig{
				Servers:       servers,
				Duration:      5 * 24 * time.Hour,
				Interval:      3 * time.Hour,
				ParisSwitchAt: 60 * time.Hour,
				Workers:       w,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := LongTerm(p, cfg, Funcs{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
