package campaign

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// TestMetricsDoNotPerturbRecords runs the same long-term campaign with and
// without an attached registry and asserts the record streams are
// identical — instrumentation observes execution, it never steers it — and
// that the engine's counters account for the work done.
func TestMetricsDoNotPerturbRecords(t *testing.T) {
	cfg := LongTermConfig{
		Duration: 12 * time.Hour,
		Interval: 3 * time.Hour,
		Workers:  2,
	}

	p1, plat1 := newProber(t, 12, 2, 60)
	cfg.Servers = SelectMesh(plat1, 5, 12)
	var plain Collector
	if err := LongTerm(p1, cfg, &plain); err != nil {
		t.Fatal(err)
	}

	p2, plat2 := newProber(t, 12, 2, 60)
	cfg.Servers = SelectMesh(plat2, 5, 12)
	reg := obs.NewRegistry()
	cfg.Metrics = reg
	var inst Collector
	if err := LongTerm(p2, cfg, &inst); err != nil {
		t.Fatal(err)
	}

	if len(plain.Traceroutes) != len(inst.Traceroutes) {
		t.Fatalf("record counts differ: %d vs %d", len(plain.Traceroutes), len(inst.Traceroutes))
	}
	for i := range plain.Traceroutes {
		a, b := plain.Traceroutes[i], inst.Traceroutes[i]
		if a.SrcID != b.SrcID || a.DstID != b.DstID || a.At != b.At ||
			a.V6 != b.V6 || a.RTT != b.RTT || a.Complete != b.Complete ||
			len(a.Hops) != len(b.Hops) {
			t.Fatalf("record %d differs:\n%+v\n%+v", i, a, b)
		}
		for h := range a.Hops {
			if a.Hops[h] != b.Hops[h] {
				t.Fatalf("record %d hop %d differs", i, h)
			}
		}
	}

	snap := reg.Snapshot()
	if got := snap.Counters[MetricTasks]; got != int64(len(inst.Traceroutes)) {
		t.Errorf("tasks counter = %d, want %d (one per record)", got, len(inst.Traceroutes))
	}
	rounds := int64(cfg.Duration / cfg.Interval)
	if got := snap.Counters[MetricRounds]; got != rounds {
		t.Errorf("rounds counter = %d, want %d", got, rounds)
	}
	if got := snap.SumFamily(MetricWorkerBusyNS); got <= 0 {
		t.Errorf("worker busy time = %d ns, want > 0", got)
	}
	wantVirtual := float64(cfg.Duration - cfg.Interval) // last round timestamp
	if got := snap.Gauges[MetricVirtualNS]; got != wantVirtual {
		t.Errorf("virtual-clock gauge = %v, want %v", got, wantVirtual)
	}
}
